// Observability layer: end-to-end trace spans + a metrics registry with
// per-stage latency histograms, threaded through the plan/service/shard
// tiers (the ISSUE-10 "see WHY a request was slow" subsystem).
//
// Two independent planes, both record-only — neither ever changes an output
// bit, only observes it:
//
// TRACING (default OFF; enable via obs::set_enabled, the CF_TRACE env knob
// resolved by ServiceConfig::observability, or cfs_obs_enable):
//   Every Request gets a 64-bit trace ID at submit; spans are recorded at
//   admission (block/shed wait), queue-enter, group join, coalescing-window
//   open/close, plan-registry hit/miss, set_points (build vs fingerprint
//   reuse), execute (with the plan's Breakdown stage timings imported as
//   child spans), shard routing, and future-resolve. Spans land in
//   per-thread fixed-capacity ring buffers: a thread only ever writes its
//   own ring (no locks, no sharing on the hot path), memory is bounded at
//   ring_capacity spans per thread, and the oldest span is overwritten when
//   a ring wraps. export_chrome_trace() walks every ring into Chrome
//   `trace_event` JSON (load in chrome://tracing or Perfetto).
//
// METRICS (always on; the cost per request is a handful of relaxed atomic
// adds, invisible next to a millisecond-scale transform):
//   Each service owns a ServiceMetrics bundle: a mutex-guarded admission
//   Ledger whose snapshot is CONSISTENT under concurrent submits — the
//   invariant submitted == completed + failed + outstanding holds on every
//   snapshot, not just at quiescence — plus named counters and log-bucketed
//   histograms (queue wait, window wait, batch size, execute time,
//   end-to-end latency, per-stage plan breakdown). Live bundles register
//   here so snapshot_all()/json_string()/prometheus_string() can export the
//   whole process, asserting the ledger invariant on the exported snapshot
//   itself.
//
// A slow-request log (ServiceConfig::observability.slow_request_ms or the
// CF_SLOW_MS env knob) prints the span chain of any request whose
// end-to-end latency crosses the threshold.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "core/plan.hpp"

namespace cf::obs {

// ---- trace spans ------------------------------------------------------------

enum class SpanKind : std::uint8_t {
  Admission = 0,  ///< dur = block wait; arg: 0 immediate, 1 waited, -1 shed
  QueueEnter,     ///< request pushed; arg = group pending size after the join
  GroupJoin,      ///< joined a group that already had pending requests
  WindowOpen,     ///< coalescing window armed; arg = pending at open
  WindowClose,    ///< dur = waited; arg = CloseReason
  PlanHit,        ///< registry signature hit (no plan construction)
  PlanMiss,       ///< dur = plan construction time
  SetPoints,      ///< dur = set_points; arg: 1 built, 0 fingerprint reuse
  Execute,        ///< dur = batched execute; arg = batch size
  StageSort,      ///< Breakdown children (laid out sequentially from the
  StageCacheBuild,///< parent span's t0 — the paper's per-stage cost anatomy)
  StageSpread,
  StageFft,
  StageDeconvolve,
  StageInterp,
  Route,          ///< sharded front tier; arg = target shard
  RouteMigrate,   ///< signature moved off a saturated shard; arg = new shard
  FutureResolve,  ///< dur = end-to-end latency (submit arrival -> resolve)
  kCount,
};

const char* span_name(SpanKind k);

/// WindowClose arg values.
enum CloseReason : std::int64_t {
  kCloseDeadline = 0,     ///< full window elapsed
  kCloseBatchFull = 1,    ///< adaptive: batch cannot grow
  kCloseShutdown = 2,     ///< service stopping
  kCloseInteractive = 3,  ///< adaptive: latency-class request pending
  kCloseIdle = 4,         ///< adaptive: no coalescing partner can show up
};

struct Span {
  std::uint64_t trace = 0;  ///< 0 = not tied to one request (batch-level)
  double t0_us = 0;         ///< start, microseconds since mono::epoch()
  double dur_us = 0;
  std::int64_t arg = 0;     ///< kind-specific (see SpanKind)
  SpanKind kind = SpanKind::Admission;
};

/// Tracing master switch (process-global; default off).
bool enabled();
void set_enabled(bool on);

/// Resolves the CF_TRACE env knob once (strict 0/1 parse). Used by services
/// whose ObsOptions::trace is the -1 "auto" sentinel.
bool env_trace_enabled();
/// CF_TRACE_PATH, or empty: where a service destructor auto-exports the
/// Chrome trace when tracing is enabled.
std::string env_trace_path();

/// Fresh trace ID for one request; 0 when tracing is disabled (spans with
/// trace 0 still export, they just can't be grouped into a request chain).
std::uint64_t trace_begin();

/// Records a span into the calling thread's ring. No-op when disabled; the
/// hot path is one relaxed atomic load + a ring store, no locks.
void span(SpanKind kind, std::uint64_t trace, double t0_us, double dur_us,
          std::int64_t arg = 0);

/// Imports a Breakdown's execute-stage timings as child spans of an Execute
/// span starting at t0_us (children laid out sequentially — Breakdown holds
/// durations, not stamps). Emits nothing when tracing is disabled.
void execute_spans(std::uint64_t trace, double t0_us, double exec_us,
                   const core::Breakdown& bd, int batch);
/// Same for set_points-time stages (sort, cache build).
void setpts_spans(std::uint64_t trace, double t0_us, double setpts_us,
                  const core::Breakdown& bd);

/// Snapshot of every thread ring: (thread index, spans oldest-first).
std::vector<std::pair<std::uint32_t, std::vector<Span>>> collect();
/// All recorded spans for one trace ID, time-ordered (slow-request log).
std::vector<Span> collect_trace(std::uint64_t trace);
/// Writes Chrome trace_event JSON ({"traceEvents":[...]}); false on IO error.
bool export_chrome_trace(const std::string& path);
/// Drops every recorded span (rings stay allocated). Trace IDs keep rising.
void reset_trace();

struct TraceConfig {
  std::size_t ring_capacity = 8192;  ///< spans per thread ring (40 B each)
};
/// Applies to rings created AFTER the call (each thread allocates its ring
/// on first span). Call before the traffic of interest for a clean bound.
void configure(const TraceConfig& cfg);

/// Prints `trace`'s span chain to stderr (the slow-request log body).
void log_slow_request(std::uint64_t trace, double e2e_ms, double threshold_ms);

// ---- metrics registry -------------------------------------------------------

/// Monotonic named counter (relaxed atomic).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Monotonic-max update (e.g. max_batch_seen); exported like a counter.
  void observe_max(std::uint64_t v) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log-bucketed histogram: bucket 0 counts samples < 1, bucket i >= 1 counts
/// [2^(i-1), 2^i). 48 buckets span 2^47 — over four years in microseconds —
/// so every latency metric fits one shape. record() is a few relaxed atomic
/// adds; snapshots may tear against concurrent records (count vs buckets),
/// which is harmless for monitoring and avoided in tests by quiescing.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void record(double v);

  struct Snap {
    std::uint64_t count = 0;
    double sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    /// Approximate percentile (q in [0, 100]) by linear interpolation inside
    /// the bucket where the rank falls; 0 on an empty histogram.
    double percentile(double q) const;
    std::uint64_t bucket_total() const;
  };
  Snap snap() const;

  /// Upper bound (`le` label) of bucket i: 1, 2, 4, ... 2^(kBuckets-1).
  static double bucket_le(int i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double sum via CAS (portable
                                            ///< pre-fetch_add-for-floats)
};

/// Named counters + histograms with stable pointers: creation takes a mutex
/// once; holders then update lock-free. Names are per-registry unique.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, Histogram::Snap>> histograms;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> hists_;
};

/// The admission ledger: every transition updates its counters ATOMICALLY
/// with respect to snap(), so the invariant
///   submitted == completed + failed + outstanding
/// holds on a snapshot taken at ANY instant — mid-storm, mid-shed — not just
/// after a drain. This is the source of truth the service tiers' admission
/// gates and drain() waits run on (the mutex was already paid there; the
/// ledger just makes the counters ride the same critical section).
class Ledger {
 public:
  /// Claims a slot: submitted++/outstanding++. With cap > 0 and outstanding
  /// at the cap: blocks until a slot frees when `block`, else records a shed
  /// (submitted++/failed++/shed++) and returns false. `waited`, when
  /// non-null, reports whether the call actually parked at the cap.
  bool admit(std::size_t cap, bool block, bool* waited = nullptr);
  /// Unconditional claim (front tier already owns admission).
  void admit_routed();
  /// Structurally invalid request that never entered: submitted++/failed++.
  void reject();
  /// Frees n slots; n - nfailed completed, nfailed failed. Wakes admission
  /// and drain waiters.
  void fulfill(std::size_t n, std::size_t nfailed);
  /// Blocks until outstanding == 0.
  void wait_drained();

  std::size_t outstanding() const;

  struct Snap {
    std::uint64_t submitted = 0, completed = 0, failed = 0, shed = 0;
    std::uint64_t outstanding = 0;
    bool consistent() const {
      return submitted == completed + failed + outstanding;
    }
  };
  Snap snap() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t submitted_ = 0, completed_ = 0, failed_ = 0, shed_ = 0;
  std::size_t outstanding_ = 0;
};

/// One service tier's metrics bundle: ledger + registry, with the hot-path
/// counter/histogram handles resolved once at construction. Registers itself
/// in the process-wide export list (snapshot_all / json / prometheus) for its
/// lifetime. `name` gets a process-unique "#<n>" suffix.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(const std::string& name);
  ~ServiceMetrics();
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  const std::string& name() const { return name_; }
  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }
  MetricsRegistry& registry() { return reg_; }

  // Resolved handles (stable for the bundle's lifetime).
  Counter* batches;
  Counter* batched_requests;
  Counter* max_batch_seen;
  Counter* plan_hits;
  Counter* plan_misses;
  Counter* plan_evictions;
  Counter* setpts_builds;
  Counter* setpts_reuses;
  Histogram* queue_wait_us;   ///< submit arrival -> dispatch start, per request
  Histogram* window_wait_us;  ///< coalescing-window park time, per window
  Histogram* batch_size;      ///< coalesced requests per execute
  Histogram* setpts_us;       ///< set_points builds (fingerprint reuses skip)
  Histogram* execute_us;      ///< batched execute wall time
  Histogram* e2e_us;          ///< submit arrival -> future resolve, per request
  Histogram* stage_sort_us;
  Histogram* stage_spread_us;
  Histogram* stage_fft_us;
  Histogram* stage_deconvolve_us;
  Histogram* stage_interp_us;

  /// Batched-execute bookkeeping: batch/execute histograms, batch counters,
  /// and the per-stage breakdown histograms in one call.
  void record_execute(const core::Breakdown& bd, int batch, double exec_us);

  struct Snapshot {
    std::string name;
    Ledger::Snap ledger;
    MetricsRegistry::Snapshot metrics;
  };
  Snapshot snapshot() const;

 private:
  std::string name_;
  Ledger ledger_;
  MetricsRegistry reg_;
};

/// Snapshots of every live ServiceMetrics bundle (registration order).
std::vector<ServiceMetrics::Snapshot> snapshot_all();
/// JSON dump of snapshot_all(): one object per service with the ledger (and
/// its "consistent" verdict — the exported snapshot asserts the invariant
/// itself), counters, and histograms (nonzero buckets as [le, count] pairs).
/// `all_consistent`, when non-null, reports the AND of the ledger verdicts.
std::string json_string(bool* all_consistent = nullptr);
/// Prometheus text exposition of the same snapshot (counters plus
/// cumulative _bucket/_sum/_count histogram series, service label per line).
std::string prometheus_string();
/// Writes `text` to `path`; false on IO error.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace cf::obs
