#include "obs/obs.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/env.hpp"

namespace cf::obs {

// ---- trace rings ------------------------------------------------------------

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::size_t> g_ring_capacity{8192};

/// One thread's span storage. The owning thread is the only writer: it bumps
/// `head` (total spans ever, monotonically) with release order after filling
/// the slot, so a reader that acquires `head` sees complete slots for
/// everything below it. When head exceeds capacity the ring wraps and the
/// oldest span is overwritten — bounded memory, newest data wins.
struct Ring {
  explicit Ring(std::size_t cap) : spans(cap) {}
  std::vector<Span> spans;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

std::mutex& rings_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<std::unique_ptr<Ring>>& rings() {
  static std::vector<std::unique_ptr<Ring>> r;
  return r;
}

Ring& my_ring() {
  thread_local Ring* ring = [] {
    auto r = std::make_unique<Ring>(g_ring_capacity.load(std::memory_order_relaxed));
    Ring* raw = r.get();
    std::lock_guard lk(rings_mu());
    raw->tid = static_cast<std::uint32_t>(rings().size());
    rings().push_back(std::move(r));
    return raw;
  }();
  return *ring;
}

/// Reader-side copy of one ring, oldest-first. Safe against a concurrent
/// writer: slots at indices >= head are unpublished and skipped, and the ring
/// is sized so the writer lapping the reader mid-copy is the oldest-wins
/// overwrite the design already accepts.
std::vector<Span> drain_ring(const Ring& r) {
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t cap = r.spans.size();
  const std::uint64_t n = std::min(head, cap);
  const std::uint64_t first = head - n;  // oldest surviving span index
  std::vector<Span> out;
  out.reserve(n);
  for (std::uint64_t i = first; i < head; ++i) out.push_back(r.spans[i % cap]);
  return out;
}

}  // namespace

const char* span_name(SpanKind k) {
  switch (k) {
    case SpanKind::Admission: return "admission";
    case SpanKind::QueueEnter: return "queue_enter";
    case SpanKind::GroupJoin: return "group_join";
    case SpanKind::WindowOpen: return "window_open";
    case SpanKind::WindowClose: return "window_close";
    case SpanKind::PlanHit: return "plan_hit";
    case SpanKind::PlanMiss: return "plan_build";
    case SpanKind::SetPoints: return "set_points";
    case SpanKind::Execute: return "execute";
    case SpanKind::StageSort: return "stage.sort";
    case SpanKind::StageCacheBuild: return "stage.cache_build";
    case SpanKind::StageSpread: return "stage.spread";
    case SpanKind::StageFft: return "stage.fft";
    case SpanKind::StageDeconvolve: return "stage.deconvolve";
    case SpanKind::StageInterp: return "stage.interp";
    case SpanKind::Route: return "route";
    case SpanKind::RouteMigrate: return "route_migrate";
    case SpanKind::FutureResolve: return "resolve";
    case SpanKind::kCount: break;
  }
  return "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool env_trace_enabled() {
  static const bool on = env_int_strict("CF_TRACE", 0, 0, 1) == 1;
  return on;
}

std::string env_trace_path() {
  const char* v = std::getenv("CF_TRACE_PATH");
  return (v && *v) ? std::string(v) : std::string();
}

std::uint64_t trace_begin() {
  if (!enabled()) return 0;
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

void span(SpanKind kind, std::uint64_t trace, double t0_us, double dur_us,
          std::int64_t arg) {
  if (!enabled()) return;
  Ring& r = my_ring();
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  Span& s = r.spans[head % r.spans.size()];
  s.trace = trace;
  s.t0_us = t0_us;
  s.dur_us = dur_us < 0 ? 0 : dur_us;
  s.arg = arg;
  s.kind = kind;
  r.head.store(head + 1, std::memory_order_release);
}

void execute_spans(std::uint64_t trace, double t0_us, double exec_us,
                   const core::Breakdown& bd, int batch) {
  if (!enabled()) return;
  span(SpanKind::Execute, trace, t0_us, exec_us, batch);
  // Breakdown carries stage DURATIONS (seconds), not start stamps; lay the
  // children out sequentially from the parent's t0 in pipeline order.
  double t = t0_us;
  const std::pair<SpanKind, double> stages[] = {
      {SpanKind::StageSpread, bd.spread},
      {SpanKind::StageFft, bd.fft},
      {SpanKind::StageDeconvolve, bd.deconvolve},
      {SpanKind::StageInterp, bd.interp},
  };
  for (const auto& [kind, sec] : stages) {
    if (sec <= 0) continue;
    const double dur = sec * 1e6;
    span(kind, trace, t, dur);
    t += dur;
  }
}

void setpts_spans(std::uint64_t trace, double t0_us, double setpts_us,
                  const core::Breakdown& bd) {
  if (!enabled()) return;
  span(SpanKind::SetPoints, trace, t0_us, setpts_us, /*arg=built*/ 1);
  double t = t0_us;
  const std::pair<SpanKind, double> stages[] = {
      {SpanKind::StageSort, bd.sort},
      {SpanKind::StageCacheBuild, bd.cache_build},
  };
  for (const auto& [kind, sec] : stages) {
    if (sec <= 0) continue;
    const double dur = sec * 1e6;
    span(kind, trace, t, dur);
    t += dur;
  }
}

std::vector<std::pair<std::uint32_t, std::vector<Span>>> collect() {
  std::lock_guard lk(rings_mu());
  std::vector<std::pair<std::uint32_t, std::vector<Span>>> out;
  out.reserve(rings().size());
  for (const auto& r : rings()) out.emplace_back(r->tid, drain_ring(*r));
  return out;
}

std::vector<Span> collect_trace(std::uint64_t trace) {
  std::vector<Span> out;
  if (trace == 0) return out;
  for (const auto& [tid, spans] : collect()) {
    (void)tid;
    for (const Span& s : spans)
      if (s.trace == trace) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.t0_us < b.t0_us; });
  return out;
}

namespace {

void append_trace_event(std::string& out, std::uint32_t tid, const Span& s,
                        bool first) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                "\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"trace\":%" PRIu64 ",\"arg\":%" PRId64 "}}",
                first ? "" : ",\n", span_name(s.kind), tid, s.t0_us,
                s.dur_us, s.trace, s.arg);
  out += buf;
}

}  // namespace

bool export_chrome_trace(const std::string& path) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [tid, spans] : collect()) {
    for (const Span& s : spans) {
      append_trace_event(out, tid, s, first);
      first = false;
    }
  }
  out += "\n]}\n";
  return write_text_file(path, out);
}

void reset_trace() {
  std::lock_guard lk(rings_mu());
  for (auto& r : rings()) r->head.store(0, std::memory_order_release);
}

void configure(const TraceConfig& cfg) {
  if (cfg.ring_capacity > 0)
    g_ring_capacity.store(cfg.ring_capacity, std::memory_order_relaxed);
}

void log_slow_request(std::uint64_t trace, double e2e_ms, double threshold_ms) {
  std::string line;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "cf-obs: SLOW request trace=%" PRIu64 " e2e=%.3f ms (threshold %.3f ms)",
                trace, e2e_ms, threshold_ms);
  line = buf;
  for (const Span& s : collect_trace(trace)) {
    std::snprintf(buf, sizeof buf, "\n  +%10.1f us %-14s dur=%10.1f us arg=%" PRId64,
                  s.t0_us, span_name(s.kind), s.dur_us, s.arg);
    line += buf;
  }
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

// ---- histogram --------------------------------------------------------------

namespace {

int bucket_index(double v) {
  if (!(v >= 1)) return 0;  // v < 1, NaN, negative all land in bucket 0
  const int i = std::ilogb(v) + 1;  // [2^(i-1), 2^i) -> bucket i
  return std::min(i, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::record(double v) {
  if (!(v >= 0)) v = 0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double cur;
  do {
    std::memcpy(&cur, &bits, sizeof cur);
    const double next = cur + v;
    std::uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof next_bits);
    if (sum_bits_.compare_exchange_weak(bits, next_bits, std::memory_order_relaxed))
      break;
  } while (true);
}

double Histogram::bucket_le(int i) { return std::ldexp(1.0, i); }

Histogram::Snap Histogram::snap() const {
  Snap s;
  for (int i = 0; i < kBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  std::memcpy(&s.sum, &bits, sizeof s.sum);
  return s;
}

std::uint64_t Histogram::Snap::bucket_total() const {
  std::uint64_t t = 0;
  for (auto b : buckets) t += b;
  return t;
}

double Histogram::Snap::percentile(double q) const {
  const std::uint64_t total = bucket_total();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= rank) {
      const double lo = i == 0 ? 0.0 : bucket_le(i - 1);
      const double hi = bucket_le(i);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += buckets[i];
  }
  return bucket_le(kBuckets - 1);
}

// ---- registry ---------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [n, c] : counters_) s.counters.emplace_back(n, c->value());
  s.histograms.reserve(hists_.size());
  for (const auto& [n, h] : hists_) s.histograms.emplace_back(n, h->snap());
  return s;
}

// ---- ledger -----------------------------------------------------------------

bool Ledger::admit(std::size_t cap, bool block, bool* waited) {
  std::unique_lock lk(mu_);
  if (waited) *waited = false;
  if (cap > 0) {
    if (block) {
      if (waited && outstanding_ >= cap) *waited = true;
      cv_.wait(lk, [&] { return outstanding_ < cap; });
    } else if (outstanding_ >= cap) {
      ++submitted_;
      ++failed_;
      ++shed_;
      return false;
    }
  }
  ++submitted_;
  ++outstanding_;
  return true;
}

void Ledger::admit_routed() {
  std::lock_guard lk(mu_);
  ++submitted_;
  ++outstanding_;
}

void Ledger::reject() {
  std::lock_guard lk(mu_);
  ++submitted_;
  ++failed_;
}

void Ledger::fulfill(std::size_t n, std::size_t nfailed) {
  {
    std::lock_guard lk(mu_);
    outstanding_ -= n;
    completed_ += n - nfailed;
    failed_ += nfailed;
  }
  cv_.notify_all();
}

void Ledger::wait_drained() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return outstanding_ == 0; });
}

std::size_t Ledger::outstanding() const {
  std::lock_guard lk(mu_);
  return outstanding_;
}

Ledger::Snap Ledger::snap() const {
  std::lock_guard lk(mu_);
  Snap s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.shed = shed_;
  s.outstanding = outstanding_;
  return s;
}

// ---- service metrics bundle -------------------------------------------------

namespace {

std::mutex& services_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<ServiceMetrics*>& services() {
  static std::vector<ServiceMetrics*> v;
  return v;
}
std::atomic<std::uint64_t> g_next_service{0};

}  // namespace

ServiceMetrics::ServiceMetrics(const std::string& name) {
  name_ = name + "#" +
          std::to_string(g_next_service.fetch_add(1, std::memory_order_relaxed));
  batches = &reg_.counter("batches");
  batched_requests = &reg_.counter("batched_requests");
  max_batch_seen = &reg_.counter("max_batch_seen");
  plan_hits = &reg_.counter("plan_hits");
  plan_misses = &reg_.counter("plan_misses");
  plan_evictions = &reg_.counter("plan_evictions");
  setpts_builds = &reg_.counter("setpts_builds");
  setpts_reuses = &reg_.counter("setpts_reuses");
  queue_wait_us = &reg_.histogram("queue_wait_us");
  window_wait_us = &reg_.histogram("window_wait_us");
  batch_size = &reg_.histogram("batch_size");
  setpts_us = &reg_.histogram("setpts_us");
  execute_us = &reg_.histogram("execute_us");
  e2e_us = &reg_.histogram("e2e_us");
  stage_sort_us = &reg_.histogram("stage_sort_us");
  stage_spread_us = &reg_.histogram("stage_spread_us");
  stage_fft_us = &reg_.histogram("stage_fft_us");
  stage_deconvolve_us = &reg_.histogram("stage_deconvolve_us");
  stage_interp_us = &reg_.histogram("stage_interp_us");
  std::lock_guard lk(services_mu());
  services().push_back(this);
}

ServiceMetrics::~ServiceMetrics() {
  std::lock_guard lk(services_mu());
  auto& v = services();
  v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

void ServiceMetrics::record_execute(const core::Breakdown& bd, int batch,
                                    double exec_us) {
  batches->add(1);
  batched_requests->add(static_cast<std::uint64_t>(batch));
  max_batch_seen->observe_max(static_cast<std::uint64_t>(batch));
  batch_size->record(static_cast<double>(batch));
  execute_us->record(exec_us);
  // stage_sort_us is NOT recorded here: Breakdown carries the LAST
  // set_points' sort time on every execute snapshot, so the caller records
  // it only on dispatches that actually rebuilt the point set.
  if (bd.spread > 0) stage_spread_us->record(bd.spread * 1e6);
  if (bd.fft > 0) stage_fft_us->record(bd.fft * 1e6);
  if (bd.deconvolve > 0) stage_deconvolve_us->record(bd.deconvolve * 1e6);
  if (bd.interp > 0) stage_interp_us->record(bd.interp * 1e6);
}

ServiceMetrics::Snapshot ServiceMetrics::snapshot() const {
  Snapshot s;
  s.name = name_;
  s.ledger = ledger_.snap();
  s.metrics = reg_.snapshot();
  return s;
}

std::vector<ServiceMetrics::Snapshot> snapshot_all() {
  std::lock_guard lk(services_mu());
  std::vector<ServiceMetrics::Snapshot> out;
  out.reserve(services().size());
  for (const ServiceMetrics* m : services()) out.push_back(m->snapshot());
  return out;
}

// ---- exports ----------------------------------------------------------------

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_hist_json(std::string& out, const Histogram::Snap& h) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"count\":%" PRIu64 ",\"sum\":%.3f,\"buckets\":[",
                h.count, h.sum);
  out += buf;
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    std::snprintf(buf, sizeof buf, "%s[%.0f,%" PRIu64 "]", first ? "" : ",",
                  Histogram::bucket_le(i), h.buckets[i]);
    out += buf;
    first = false;
  }
  out += "]}";
}

}  // namespace

std::string json_string(bool* all_consistent) {
  bool ok = true;
  std::string out = "{\"services\":[\n";
  bool first_svc = true;
  for (const auto& s : snapshot_all()) {
    const bool cons = s.ledger.consistent();
    ok = ok && cons;
    if (!first_svc) out += ",\n";
    first_svc = false;
    out += "{\"name\":\"";
    json_escape_into(out, s.name);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "\",\"ledger\":{\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
                  ",\"failed\":%" PRIu64 ",\"shed\":%" PRIu64
                  ",\"outstanding\":%" PRIu64 ",\"consistent\":%s},",
                  s.ledger.submitted, s.ledger.completed, s.ledger.failed,
                  s.ledger.shed, s.ledger.outstanding, cons ? "true" : "false");
    out += buf;
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [n, v] : s.metrics.counters) {
      out += first ? "\"" : ",\"";
      first = false;
      json_escape_into(out, n);
      std::snprintf(buf, sizeof buf, "\":%" PRIu64, v);
      out += buf;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [n, h] : s.metrics.histograms) {
      out += first ? "\"" : ",\"";
      first = false;
      json_escape_into(out, n);
      out += "\":";
      append_hist_json(out, h);
    }
    out += "}}";
  }
  out += "\n]}\n";
  if (all_consistent) *all_consistent = ok;
  return out;
}

std::string prometheus_string() {
  std::string out;
  char buf[256];
  for (const auto& s : snapshot_all()) {
    const char* svc = s.name.c_str();
    std::snprintf(buf, sizeof buf,
                  "cf_submitted_total{service=\"%s\"} %" PRIu64 "\n"
                  "cf_completed_total{service=\"%s\"} %" PRIu64 "\n"
                  "cf_failed_total{service=\"%s\"} %" PRIu64 "\n"
                  "cf_shed_total{service=\"%s\"} %" PRIu64 "\n"
                  "cf_outstanding{service=\"%s\"} %" PRIu64 "\n",
                  svc, s.ledger.submitted, svc, s.ledger.completed, svc,
                  s.ledger.failed, svc, s.ledger.shed, svc,
                  s.ledger.outstanding);
    out += buf;
    for (const auto& [n, v] : s.metrics.counters) {
      std::snprintf(buf, sizeof buf, "cf_%s_total{service=\"%s\"} %" PRIu64 "\n",
                    n.c_str(), svc, v);
      out += buf;
    }
    for (const auto& [n, h] : s.metrics.histograms) {
      std::uint64_t cum = 0;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        cum += h.buckets[i];
        std::snprintf(buf, sizeof buf,
                      "cf_%s_bucket{service=\"%s\",le=\"%.0f\"} %" PRIu64 "\n",
                      n.c_str(), svc, Histogram::bucket_le(i), cum);
        out += buf;
      }
      std::snprintf(buf, sizeof buf,
                    "cf_%s_bucket{service=\"%s\",le=\"+Inf\"} %" PRIu64 "\n"
                    "cf_%s_sum{service=\"%s\"} %.3f\n"
                    "cf_%s_count{service=\"%s\"} %" PRIu64 "\n",
                    n.c_str(), svc, h.bucket_total(), n.c_str(), svc, h.sum,
                    n.c_str(), svc, h.count);
      out += buf;
    }
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cf::obs
