// Device-wide data-parallel primitives used by the bin-sorting pipeline:
// fill, histogram, exclusive scan, stable counting-sort scatter. These are the
// Thrust-style building blocks the CUDA library leans on.
#pragma once

#include <cstdint>

#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::vgpu {

/// Sets every element of `buf` to `value`.
template <typename T>
void fill(Device& dev, std::span<T> buf, T value) {
  dev.launch_items(buf.size(), 256, [&](std::size_t i, BlockCtx&) { buf[i] = value; });
}

/// Device-to-device copy (cudaMemcpyDeviceToDevice analogue): runs as a
/// kernel on the device's workers so it is counted and parallel, unlike a
/// host-side std::copy of device memory. Sizes must match.
template <typename T>
void copy(Device& dev, std::span<const T> src, std::span<T> dst) {
  if (src.size() != dst.size())
    throw std::invalid_argument("vgpu::copy: size mismatch");
  dev.launch_items(src.size(), 256, [&](std::size_t i, BlockCtx&) { dst[i] = src[i]; });
}

/// counts[keys[i]] += 1 for every i, with device atomics.
inline void histogram(Device& dev, std::span<const std::uint32_t> keys,
                      std::span<std::uint32_t> counts) {
  dev.launch_items(keys.size(), 256, [&](std::size_t i, BlockCtx& blk) {
    blk.atomic_add(&counts[keys[i]], 1u);
  });
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// Two-pass chunked scan (per-chunk sums, serial scan of sums, chunk offsets),
/// the standard device-scan decomposition.
inline std::uint64_t exclusive_scan(Device& dev, std::span<const std::uint32_t> in,
                                    std::span<std::uint32_t> out) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  const std::size_t chunk = 4096;
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  std::vector<std::uint64_t> sums(nchunks, 0);
  dev.launch(nchunks, 1, [&](BlockCtx& blk) {
    const std::size_t c = blk.block_id;
    const std::size_t lo = c * chunk, hi = std::min(lo + chunk, n);
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += in[i];
    sums[c] = s;
  });
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::uint64_t s = sums[c];
    sums[c] = total;
    total += s;
  }
  dev.launch(nchunks, 1, [&](BlockCtx& blk) {
    const std::size_t c = blk.block_id;
    const std::size_t lo = c * chunk, hi = std::min(lo + chunk, n);
    std::uint64_t run = sums[c];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = static_cast<std::uint32_t>(run);
      run += in[i];
    }
  });
  return total;
}

/// Stable-ish counting-sort scatter: given per-item keys and the exclusive
/// scan of key counts (`starts`, consumed as running cursors), writes item
/// indices grouped by key into `order`. Order within a key is nondeterministic
/// under concurrency — exactly like the CUDA atomic-cursor implementation —
/// which is fine since spreading is order-insensitive within a bin.
inline void counting_scatter(Device& dev, std::span<const std::uint32_t> keys,
                             std::span<std::uint32_t> cursors,
                             std::span<std::uint32_t> order) {
  dev.launch_items(keys.size(), 256, [&](std::size_t i, BlockCtx&) {
    const std::uint32_t pos =
        std::atomic_ref<std::uint32_t>(cursors[keys[i]]).fetch_add(1, std::memory_order_relaxed);
    order[pos] = static_cast<std::uint32_t>(i);
  });
}

}  // namespace cf::vgpu
