#include "vgpu/device.hpp"

#include <vector>

namespace cf::vgpu {

Device::Device(std::size_t workers, DeviceProps p)
    : props(p), pool_(std::make_unique<ThreadPool>(workers)) {
  arenas_.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i)
    arenas_.push_back(std::make_unique<std::byte[]>(props.shared_mem_per_block));
}

void Device::note_alloc(std::size_t bytes) {
  const std::size_t now = bytes_in_use_.fetch_add(bytes) + bytes;
  std::size_t peak = peak_bytes_.load();
  while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
  }
}

void Device::note_free(std::size_t bytes) { bytes_in_use_.fetch_sub(bytes); }

void Device::reset_peak() { peak_bytes_.store(bytes_in_use_.load()); }

// Launches run synchronously, so one buffer per OS thread suffices even when
// several devices are in play; sized to the largest request seen.
std::byte* Device::inline_arena() {
  thread_local std::vector<std::byte> arena;
  if (arena.size() < props.shared_mem_per_block)
    arena.resize(props.shared_mem_per_block);
  return arena.data();
}

}  // namespace cf::vgpu
