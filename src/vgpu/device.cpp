#include "vgpu/device.hpp"

namespace cf::vgpu {

Device::Device(std::size_t workers, DeviceProps p)
    : props(p), pool_(std::make_unique<ThreadPool>(workers)) {
  arenas_.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i)
    arenas_.push_back(std::make_unique<std::byte[]>(props.shared_mem_per_block));
}

void Device::note_alloc(std::size_t bytes) {
  const std::size_t now = bytes_in_use_.fetch_add(bytes) + bytes;
  std::size_t peak = peak_bytes_.load();
  while (now > peak && !peak_bytes_.compare_exchange_weak(peak, now)) {
  }
}

void Device::note_free(std::size_t bytes) { bytes_in_use_.fetch_sub(bytes); }

void Device::reset_peak() { peak_bytes_.store(bytes_in_use_.load()); }

}  // namespace cf::vgpu
