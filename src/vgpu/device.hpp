// Virtual GPU device: the CUDA-runtime substitute this reproduction runs on.
//
// The paper's library is CUDA; this environment has no GPU, so we model the
// execution hierarchy that the paper's algorithms are written against:
//
//   * a Device owns a fixed pool of workers (the "SMs"),
//   * kernels are launched as a grid of thread blocks; each block runs to
//     completion on one worker and gets a private shared-memory arena with
//     the V100's 48 KiB per-block budget,
//   * global memory is plain host memory; cross-block accumulation uses real
//     `std::atomic_ref` atomics (so atomic contention is physically real),
//   * device memory is accounted (bytes in use / peak) to reproduce the
//     paper's Table I RAM numbers,
//   * hardware-ish counters (global atomics, shared-memory ops) are
//     aggregated per block and reported by benches.
//
// Within a block, "threads" are executed sequentially by the owning worker
// (BlockCtx::for_each_thread); a barrier between two for_each_thread loops is
// therefore implicit. This preserves the block-level parallelism and the
// memory-system effects (coalescing = CPU cache locality, atomic collisions =
// cache-line contention) that the paper's spreading schemes target.
#pragma once

#include <atomic>
#include <cassert>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace cf::vgpu {

/// Counters aggregated across kernel launches; reset between timed sections.
struct DeviceCounters {
  std::atomic<std::uint64_t> kernels_launched{0};
  std::atomic<std::uint64_t> blocks_executed{0};
  std::atomic<std::uint64_t> global_atomics{0};
  std::atomic<std::uint64_t> shared_ops{0};
  std::atomic<std::uint64_t> tile_merge_ops{0};  ///< plain halo-merge adds
                                                 ///< (tiled spread writeback)

  void reset() {
    kernels_launched = 0;
    blocks_executed = 0;
    global_atomics = 0;
    shared_ops = 0;
    tile_merge_ops = 0;
  }
};

/// Static device properties (defaults model an NVIDIA Tesla V100).
struct DeviceProps {
  std::size_t shared_mem_per_block = 49152;  ///< bytes, the paper's 49 kB
  unsigned max_threads_per_block = 1024;
};

class Device;

/// Per-block execution context handed to kernels.
class BlockCtx {
 public:
  unsigned block_id = 0;    ///< blockIdx.x
  unsigned nblocks = 0;     ///< gridDim.x
  unsigned nthreads = 0;    ///< blockDim.x
  std::size_t worker = 0;   ///< stable worker id, for per-worker scratch

  /// Allocates `count` Ts from the block's shared-memory arena. Throws
  /// (mirroring a CUDA launch failure) if the 48 KiB budget is exceeded.
  template <typename T>
  std::span<T> shared(std::size_t count) {
    const std::size_t align = alignof(T);
    std::size_t off = (smem_used_ + align - 1) / align * align;
    if (off + count * sizeof(T) > smem_size_)
      throw std::runtime_error("vgpu: shared memory request exceeds per-block limit");
    smem_used_ = off + count * sizeof(T);
    return {reinterpret_cast<T*>(smem_base_ + off), count};
  }

  /// Runs f(t) for every thread index t in [0, nthreads). Sequential within
  /// the block; two consecutive calls have barrier semantics between them.
  template <typename F>
  void for_each_thread(F&& f) {
    for (unsigned t = 0; t < nthreads; ++t) f(t);
  }

  /// Barrier between in-block phases. A no-op under sequential-thread
  /// execution, kept so kernels read like their CUDA counterparts.
  void sync_threads() const {}

  /// Global-memory atomic add with counter accounting (atomicAdd analogue).
  template <typename T>
  void atomic_add(T* p, T v) {
    std::atomic_ref<T>(*p).fetch_add(v, std::memory_order_relaxed);
    ++n_global_atomics;
  }

  /// Complex atomic add = two scalar atomic adds, exactly as CUDA code does.
  template <typename T>
  void atomic_add(std::complex<T>* p, std::complex<T> v) {
    T* f = reinterpret_cast<T*>(p);
    std::atomic_ref<T>(f[0]).fetch_add(v.real(), std::memory_order_relaxed);
    std::atomic_ref<T>(f[1]).fetch_add(v.imag(), std::memory_order_relaxed);
    n_global_atomics += 2;
  }

  /// Packed complex<float> atomic add: one 8-byte CAS updates both halves at
  /// once (the atomicCAS-on-ull trick CUDA code uses for 64-bit payloads),
  /// halving CAS traffic under contention versus the two-float form. The
  /// counter records what the hardware does: ONE global atomic per packed
  /// complex write (the two-float form records 2), so the atomic-count
  /// reduction of the toggle is visible in the counters.
  void atomic_add_packed(std::complex<float>* p, std::complex<float> v) {
    static_assert(sizeof(std::complex<float>) == sizeof(std::uint64_t));
    // atomic_ref<uint64_t> needs 8-byte alignment; complex<float> only
    // guarantees 4. Every fw target comes from a device_buffer (vector
    // storage, >= 16-byte aligned base, 8-byte elements), so this holds —
    // assert it rather than assume silently.
    assert(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t) == 0);
    std::atomic_ref<std::uint64_t> a(*reinterpret_cast<std::uint64_t*>(p));
    std::uint64_t seen = a.load(std::memory_order_relaxed);
    for (;;) {
      float re, im;
      std::memcpy(&re, &seen, sizeof(float));
      std::memcpy(&im, reinterpret_cast<const std::byte*>(&seen) + sizeof(float),
                  sizeof(float));
      re += v.real();
      im += v.imag();
      std::uint64_t want;
      std::memcpy(&want, &re, sizeof(float));
      std::memcpy(reinterpret_cast<std::byte*>(&want) + sizeof(float), &im,
                  sizeof(float));
      if (a.compare_exchange_weak(seen, want, std::memory_order_relaxed)) break;
    }
    n_global_atomics += 1;
  }

  /// Count a shared-memory accumulate (the op itself is a plain add since
  /// in-block execution is sequential).
  void note_shared_op(std::uint64_t n = 1) { n_shared_ops += n; }

  /// Count plain (non-atomic) halo-merge adds of the tiled spread writeback,
  /// so benches can report the traffic that replaced the global atomics.
  void note_tile_merge(std::uint64_t n = 1) { n_tile_merge_ops += n; }

 private:
  friend class Device;
  std::byte* smem_base_ = nullptr;
  std::size_t smem_size_ = 0;
  std::size_t smem_used_ = 0;
  std::uint64_t n_global_atomics = 0;
  std::uint64_t n_shared_ops = 0;
  std::uint64_t n_tile_merge_ops = 0;
};

/// One virtual GPU. Multi-"GPU" experiments construct several Devices.
class Device {
 public:
  /// `workers` host threads act as the device's SMs (0 = all cores).
  explicit Device(std::size_t workers = 0, DeviceProps props = {});

  DeviceProps props;
  DeviceCounters counters;

  ThreadPool& pool() { return *pool_; }
  std::size_t n_workers() const { return pool_->size(); }

  /// Launches `nblocks` blocks of `nthreads` threads running `kernel(blk)`.
  /// Synchronous (returns when the grid completes), matching how the paper's
  /// timings wrap kernels with cudaDeviceSynchronize.
  template <typename K>
  void launch(std::size_t nblocks, unsigned nthreads, K&& kernel) {
    if (nthreads == 0 || nthreads > props.max_threads_per_block)
      throw std::invalid_argument("vgpu: bad block size");
    counters.kernels_launched.fetch_add(1, std::memory_order_relaxed);
    counters.blocks_executed.fetch_add(nblocks, std::memory_order_relaxed);
    if (nblocks == 0) return;
    pool_->parallel_for(0, nblocks, block_runner(nblocks, nthreads, kernel),
                        /*grain=*/1);
  }

  /// Like launch(), but schedules the blocks over the pool's work-stealing
  /// path (ThreadPool::parallel_steal): block ids are dealt round-robin to
  /// the workers in launch order and idle workers steal the front pending
  /// block of the most-loaded peer. Pass block ids pre-sorted largest-work-
  /// first so the deal and the steals both move the biggest pending block.
  /// Blocks must be mutually independent (no inter-block ordering is
  /// preserved). Returns the number of blocks that ran on a worker other
  /// than the one they were dealt to (0 on single-worker devices).
  template <typename K>
  std::uint64_t launch_stealing(std::size_t nblocks, unsigned nthreads, K&& kernel) {
    if (nthreads == 0 || nthreads > props.max_threads_per_block)
      throw std::invalid_argument("vgpu: bad block size");
    counters.kernels_launched.fetch_add(1, std::memory_order_relaxed);
    counters.blocks_executed.fetch_add(nblocks, std::memory_order_relaxed);
    if (nblocks == 0) return 0;
    return pool_->parallel_steal(nblocks, block_runner(nblocks, nthreads, kernel));
  }

  /// Convenience: grid-stride launch over `n` independent items with block
  /// size `block`; f(item_index, blk).
  template <typename F>
  void launch_items(std::size_t n, unsigned block, F&& f) {
    const std::size_t nblocks = (n + block - 1) / block;
    launch(nblocks, block, [&, n, block](BlockCtx& blk) {
      const std::size_t base = static_cast<std::size_t>(blk.block_id) * block;
      blk.for_each_thread([&](unsigned t) {
        const std::size_t i = base + t;
        if (i < n) f(i, blk);
      });
    });
  }

  // -- device memory accounting (models cudaMalloc bookkeeping) ------------
  void note_alloc(std::size_t bytes);
  void note_free(std::size_t bytes);
  std::size_t bytes_in_use() const { return bytes_in_use_.load(); }
  std::size_t peak_bytes() const { return peak_bytes_.load(); }
  void reset_peak();

 private:
  /// Per-block driver shared by launch() and launch_stealing(): builds the
  /// BlockCtx, runs the kernel, and flushes the block-local counters.
  template <typename K>
  auto block_runner(std::size_t nblocks, unsigned nthreads, K& kernel) {
    return [&kernel, this, nblocks, nthreads](std::size_t b, std::size_t wid) {
      BlockCtx blk;
      blk.block_id = static_cast<unsigned>(b);
      blk.nblocks = static_cast<unsigned>(nblocks);
      blk.nthreads = nthreads;
      blk.worker = wid;
      // ThreadPool's tiny-range fast path runs blocks INLINE on the calling
      // thread with wid = 0; with concurrent executes (the service layer)
      // the real worker 0 may simultaneously run another plan's block, so
      // inline blocks get a per-THREAD arena instead of worker 0's.
      blk.smem_base_ =
          ThreadPool::on_worker_thread() ? smem_arena(wid) : inline_arena();
      blk.smem_size_ = props.shared_mem_per_block;
      kernel(blk);
      if (blk.n_global_atomics)
        counters.global_atomics.fetch_add(blk.n_global_atomics, std::memory_order_relaxed);
      if (blk.n_shared_ops)
        counters.shared_ops.fetch_add(blk.n_shared_ops, std::memory_order_relaxed);
      if (blk.n_tile_merge_ops)
        counters.tile_merge_ops.fetch_add(blk.n_tile_merge_ops,
                                          std::memory_order_relaxed);
    };
  }

  std::byte* smem_arena(std::size_t wid) { return arenas_[wid].get(); }
  std::byte* inline_arena();  ///< per-OS-thread arena for inline-run blocks

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<std::byte[]>> arenas_;
  std::atomic<std::size_t> bytes_in_use_{0};
  std::atomic<std::size_t> peak_bytes_{0};
};

}  // namespace cf::vgpu
