// RAII device memory. Allocation size is registered with the owning Device so
// benches can report GPU-RAM figures (paper Table I). Host<->device copies are
// real memcpys, giving the "total+mem" timings a physical transfer cost.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "vgpu/device.hpp"

namespace cf::vgpu {

/// Device-resident array of T (cudaMalloc + cudaMemcpy analogue).
template <typename T>
class device_buffer {
 public:
  device_buffer() = default;

  device_buffer(Device& dev, std::size_t n) : dev_(&dev), data_(n) {
    dev_->note_alloc(bytes());
  }

  device_buffer(Device& dev, std::span<const T> host) : device_buffer(dev, host.size()) {
    copy_from_host(host);
  }

  ~device_buffer() { release(); }

  device_buffer(device_buffer&& o) noexcept { *this = std::move(o); }
  device_buffer& operator=(device_buffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      data_ = std::move(o.data_);
      o.dev_ = nullptr;
      o.data_.clear();
    }
    return *this;
  }
  device_buffer(const device_buffer&) = delete;
  device_buffer& operator=(const device_buffer&) = delete;

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  bool empty() const { return data_.empty(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Host-to-device transfer (sizes must match).
  void copy_from_host(std::span<const T> host) {
    if (host.size() != data_.size())
      throw std::invalid_argument("device_buffer: size mismatch in copy_from_host");
    if (!host.empty()) std::memcpy(data_.data(), host.data(), bytes());
  }

  /// Device-to-host transfer (sizes must match).
  void copy_to_host(std::span<T> host) const {
    if (host.size() != data_.size())
      throw std::invalid_argument("device_buffer: size mismatch in copy_to_host");
    if (!host.empty()) std::memcpy(host.data(), data_.data(), bytes());
  }

  std::vector<T> to_host() const {
    std::vector<T> out(data_.size());
    copy_to_host(out);
    return out;
  }

  /// Releases the allocation early (destructor is then a no-op).
  void release() {
    if (dev_ && !data_.empty()) dev_->note_free(bytes());
    data_.clear();
    data_.shrink_to_fit();
    dev_ = nullptr;
  }

 private:
  Device* dev_ = nullptr;
  std::vector<T> data_;
};

}  // namespace cf::vgpu
