// Batched multi-dimensional FFT execution over a thread pool.
//
// FftNd plays the role cuFFT plays in the paper: a planned, in-place,
// unnormalized d-dimensional complex transform executed with device
// parallelism (the vgpu Device hands its pool to this class; the CPU
// comparator library hands its host pool).
#pragma once

#include <algorithm>
#include <complex>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "fft/fft.hpp"

namespace cf::fft {

/// Planned d-dimensional (d = 1..3) in-place complex FFT; dims[0] is the
/// fastest-varying (contiguous) axis, matching the NUFFT fine-grid layout.
template <typename T>
class FftNd {
 public:
  using cplx = std::complex<T>;

  FftNd(ThreadPool& pool, std::vector<std::size_t> dims)
      : pool_(&pool), dims_(std::move(dims)) {
    if (dims_.empty() || dims_.size() > 3)
      throw std::invalid_argument("FftNd: 1..3 dims supported");
    total_ = 1;
    for (std::size_t d : dims_) {
      if (d == 0) throw std::invalid_argument("FftNd: zero dim");
      total_ *= d;
    }
    std::size_t nmax = 0, wsmax = 0;
    for (std::size_t d : dims_) {
      plans_.emplace_back(d);
      nmax = std::max(nmax, d);
      wsmax = std::max(wsmax, plans_.back().workspace_size());
    }
    // Per-worker scratch: gather line + output line + FFT workspace.
    scratch_.resize(pool_->size());
    for (auto& s : scratch_) s.resize(2 * nmax + wsmax);
    nmax_ = nmax;
  }

  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& dims() const { return dims_; }

  /// In-place transform of `data` (length total()); sign = -1 forward, +1
  /// backward, both unnormalized.
  void exec(cplx* data, int sign) {
    for (std::size_t axis = 0; axis < dims_.size(); ++axis)
      exec_axis(data, 1, 0, axis, sign);
  }

  /// Batched in-place transform: `nbatch` grids at data + b*batch_stride
  /// (b = 0..nbatch-1), each of length total(). Planes are transformed
  /// PLANE-major (all axes of grid b before grid b+1): every axis pass then
  /// rereads the one plane the previous pass just wrote — the cache reuse a
  /// B = 1 execute gets implicitly — instead of streaming the whole
  /// nbatch-plane stack per axis. Each per-axis launch still spreads its
  /// total()/n lines over the pool, so multi-worker devices stay saturated;
  /// the per-stage twiddle tables are shared across planes either way.
  void exec_batch(cplx* data, std::size_t nbatch, std::size_t batch_stride, int sign) {
    for (std::size_t b = 0; b < nbatch; ++b)
      for (std::size_t axis = 0; axis < dims_.size(); ++axis)
        exec_axis(data + b * batch_stride, 1, 0, axis, sign);
  }

  /// Fused batched transform: the first (contiguous) axis's input rows are
  /// produced by `fill(row, line, b)` instead of read from `data` — the
  /// caller's pre-processing (e.g. the NUFFT type-2 amplify + zero-pad)
  /// writes each row straight into FFT scratch, eliminating one full
  /// write+read pass over the nbatch-plane grid. `fill` must either populate
  /// all dims()[0] entries of `row` and return true, or return false to
  /// declare the row identically zero — in which case the transform is
  /// skipped (the DFT of zero is zero) and the row in `data` is zero-filled.
  /// `data` need not be initialized beforehand; `fill` may be called
  /// concurrently from pool workers.
  template <typename RowFill>
  void exec_batch_fused(cplx* data, std::size_t nbatch, std::size_t batch_stride,
                        int sign, RowFill&& fill) {
    exec_axis0_fused(data, nbatch, batch_stride, sign, fill);
    for (std::size_t axis = 1; axis < dims_.size(); ++axis)
      exec_axis(data, nbatch, batch_stride, axis, sign);
  }

 private:
  template <typename RowFill>
  void exec_axis0_fused(cplx* data, std::size_t nbatch, std::size_t batch_stride,
                        int sign, RowFill&& fill) {
    const std::size_t n = dims_[0];
    const std::size_t nlines = total_ / n;
    const Fft1d<T>& plan = plans_[0];
    auto body = [&](std::size_t lo, std::size_t hi, std::size_t wid) {
      auto& s = scratch_[wid];
      cplx* gather = s.data();
      cplx* outline = s.data() + nmax_;
      cplx* work = s.data() + 2 * nmax_;
      for (std::size_t idx = lo; idx < hi; ++idx) {
        const std::size_t line = idx % nlines;
        const std::size_t b = idx / nlines;
        cplx* base = data + b * batch_stride + line * n;
        if (fill(gather, line, b)) {
          if (n == 1) {
            base[0] = gather[0];
            continue;
          }
          plan.exec(gather, 1, outline, sign, work);
          std::memcpy(base, outline, n * sizeof(cplx));
        } else {
          std::memset(base, 0, n * sizeof(cplx));
        }
      }
    };
    pool_->parallel_chunks(0, nbatch * nlines, pool_->size() * 4, body);
  }

  void exec_axis(cplx* data, std::size_t nbatch, std::size_t batch_stride,
                 std::size_t axis, int sign) {
    const std::size_t n = dims_[axis];
    if (n == 1) return;
    std::size_t stride = 1;
    for (std::size_t a = 0; a < axis; ++a) stride *= dims_[a];
    const std::size_t nlines = total_ / n;
    const Fft1d<T>& plan = plans_[axis];
    auto body = [&](std::size_t lo, std::size_t hi, std::size_t wid) {
      auto& s = scratch_[wid];
      cplx* gather = s.data();
      cplx* outline = s.data() + nmax_;
      cplx* work = s.data() + 2 * nmax_;
      for (std::size_t idx = lo; idx < hi; ++idx) {
        // Flat index = (line within grid, batch); line = (inner, outer) with
        // inner in [0, stride).
        const std::size_t line = idx % nlines;
        const std::size_t b = idx / nlines;
        const std::size_t inner = line % stride;
        const std::size_t outer = line / stride;
        cplx* base = data + b * batch_stride + outer * stride * n + inner;
        if (stride == 1) {
          plan.exec(base, 1, outline, sign, work);
          std::memcpy(base, outline, n * sizeof(cplx));
        } else {
          for (std::size_t j = 0; j < n; ++j) gather[j] = base[j * stride];
          plan.exec(gather, 1, outline, sign, work);
          for (std::size_t j = 0; j < n; ++j) base[j * stride] = outline[j];
        }
      }
    };
    pool_->parallel_chunks(0, nbatch * nlines, pool_->size() * 4, body);
  }

  ThreadPool* pool_;
  std::vector<std::size_t> dims_;
  std::vector<Fft1d<T>> plans_;
  std::vector<std::vector<cplx>> scratch_;
  std::size_t total_ = 0;
  std::size_t nmax_ = 0;
};

}  // namespace cf::fft
