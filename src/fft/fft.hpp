// Complex FFT substrate — the cuFFT substitute.
//
// The NUFFT fine grid is always sized to 2^a 3^b 5^c (see next235), handled by
// a recursive mixed-radix decimation-in-time transform with a single
// precomputed twiddle table per plan. Arbitrary sizes (used in tests and by
// Bluestein itself) fall back to Bluestein's algorithm over a power-of-two
// convolution. Transforms are unnormalized in both directions, matching the
// paper's eqs. (9) and (12).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace cf::fft {

/// Smallest integer of the form 2^a 3^b 5^c that is >= n (n >= 1).
/// This is the fine-grid size rule of FINUFFT/cuFINUFFT.
std::size_t next235(std::size_t n);

/// True if n factors completely into 2, 3, and 5.
bool is_235(std::size_t n);

/// One-dimensional complex FFT plan of fixed size n for element type T
/// (float or double). Thread-safe: exec() is const and all mutable state
/// lives in the caller-provided workspace.
template <typename T>
class Fft1d {
 public:
  using cplx = std::complex<T>;

  explicit Fft1d(std::size_t n);
  ~Fft1d();
  Fft1d(Fft1d&&) noexcept;
  Fft1d& operator=(Fft1d&&) noexcept;
  Fft1d(const Fft1d&) = delete;
  Fft1d& operator=(const Fft1d&) = delete;

  std::size_t size() const { return n_; }

  /// Number of cplx elements of scratch exec() requires.
  std::size_t workspace_size() const;

  /// Computes out[k] = sum_j in[j*stride] * exp(sign * 2*pi*i * j*k / n),
  /// k = 0..n-1, out contiguous. sign must be -1 (forward) or +1 (backward);
  /// both are unnormalized. `work` must hold workspace_size() elements.
  void exec(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign, cplx* work) const;

 private:
  void exec_mixed(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign, cplx* work) const;
  void exec_bluestein(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign,
                      cplx* work) const;
  void rec(const cplx* x, std::ptrdiff_t stride, cplx* dst, cplx* scratch, std::size_t n,
           std::size_t fi, int sign) const;

  std::size_t n_ = 0;
  bool bluestein_ = false;
  std::vector<unsigned> factors_;  // radix sequence, each in {2,3,5}
  std::vector<cplx> tw_;           // exp(-2*pi*i*j/n), j in [0, n)

  // Per-recursion-depth twiddle tables, precomputed at plan time so the
  // combine loops index contiguous memory with no `idx % n` reduction:
  //  stage_tw_[fi][(q-1)*m + t] = w_n^{q*t*stride_fi}   (child twiddles)
  //  stage_dft_[fi][s*r + q]    = w_r^{q*s}             (radix-r DFT matrix)
  // where, at depth fi, r = factors_[fi], the subtransform length is m and
  // stride_fi = prod of factors_[0..fi). All depth-fi recursion nodes share
  // these tables.
  std::vector<std::vector<cplx>> stage_tw_;
  std::vector<std::vector<cplx>> stage_dft_;

  // Bluestein state (only when !is_235(n)): convolution length nb (pow2),
  // chirp a_j = exp(-i*pi*j^2/n), and FFT of the padded chirp filter.
  std::size_t nb_ = 0;
  std::unique_ptr<Fft1d<T>> sub_;
  std::vector<cplx> chirp_;
  std::vector<cplx> bhat_;
};

extern template class Fft1d<float>;
extern template class Fft1d<double>;

}  // namespace cf::fft
