#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cf::fft {

bool is_235(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t p : {2, 3, 5})
    while (n % p == 0) n /= p;
  return n == 1;
}

std::size_t next235(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t m = n;
  while (!is_235(m)) ++m;
  return m;
}

namespace {

std::vector<unsigned> factorize235(std::size_t n) {
  std::vector<unsigned> f;
  // Larger radices first gives slightly better locality in the recursion.
  for (unsigned p : {5u, 3u, 2u})
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  return f;
}

}  // namespace

template <typename T>
Fft1d<T>::Fft1d(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("Fft1d: n must be >= 1");
  tw_.resize(n_);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n_);
  for (std::size_t j = 0; j < n_; ++j)
    tw_[j] = cplx(static_cast<T>(std::cos(step * double(j))),
                  static_cast<T>(std::sin(step * double(j))));
  if (is_235(n_)) {
    factors_ = factorize235(n_);
    // Per-depth twiddle tables (all recursion nodes at one depth share the
    // same (n, stride) pair), so rec()'s combine loop reads contiguous
    // precomputed factors instead of computing `idx % n` per butterfly.
    stage_tw_.resize(factors_.size());
    stage_dft_.resize(factors_.size());
    std::size_t n_fi = n_, stride = 1;
    for (std::size_t fi = 0; fi < factors_.size(); ++fi) {
      const std::size_t r = factors_[fi];
      const std::size_t m = n_fi / r;
      auto& st = stage_tw_[fi];
      st.resize((r - 1) * m);
      for (std::size_t q = 1; q < r; ++q)
        for (std::size_t t = 0; t < m; ++t)
          st[(q - 1) * m + t] = tw_[(q * t * stride) % n_];
      auto& dm = stage_dft_[fi];
      dm.resize(r * r);
      const std::size_t step_r = n_ / r;
      for (std::size_t s = 0; s < r; ++s)
        for (std::size_t q = 0; q < r; ++q) dm[s * r + q] = tw_[(q * s * step_r) % n_];
      n_fi = m;
      stride *= r;
    }
    return;
  }
  // Bluestein: circular convolution of length nb >= 2n-1, nb a power of two.
  bluestein_ = true;
  nb_ = 1;
  while (nb_ < 2 * n_ - 1) nb_ *= 2;
  sub_ = std::make_unique<Fft1d<T>>(nb_);
  chirp_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    // exp(-i*pi*j^2/n); reduce j^2 mod 2n to keep the argument accurate.
    const std::size_t j2 = (j * j) % (2 * n_);
    const double ang = -std::numbers::pi * double(j2) / double(n_);
    chirp_[j] = cplx(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
  }
  // Filter b_j = conj(a_j) placed at 0..n-1 and mirrored at nb-j; FFT once.
  std::vector<cplx> b(nb_, cplx(0, 0));
  for (std::size_t j = 0; j < n_; ++j) {
    b[j] = std::conj(chirp_[j]);
    if (j > 0) b[nb_ - j] = std::conj(chirp_[j]);
  }
  bhat_.resize(nb_);
  std::vector<cplx> work(sub_->workspace_size());
  sub_->exec(b.data(), 1, bhat_.data(), -1, work.data());
}

template <typename T>
Fft1d<T>::~Fft1d() = default;
template <typename T>
Fft1d<T>::Fft1d(Fft1d&&) noexcept = default;
template <typename T>
Fft1d<T>& Fft1d<T>::operator=(Fft1d&&) noexcept = default;

template <typename T>
std::size_t Fft1d<T>::workspace_size() const {
  if (!bluestein_) return n_;
  // u (nb) + uhat (nb) + sub workspace (nb)
  return 3 * nb_;
}

template <typename T>
void Fft1d<T>::exec(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign,
                    cplx* work) const {
  if (sign != -1 && sign != 1) throw std::invalid_argument("Fft1d: sign must be +-1");
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (bluestein_)
    exec_bluestein(in, stride, out, sign, work);
  else
    exec_mixed(in, stride, out, sign, work);
}

template <typename T>
void Fft1d<T>::exec_mixed(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign,
                          cplx* work) const {
  rec(in, stride, out, work, n_, 0, sign);
}

// Recursive DIT step: n = r * m. Child q transforms the subsequence starting
// at x + q*stride with stride*r, writing into scratch[q*m .. q*m+m) and using
// dst[q*m ..) as its own scratch (disjoint). The combine stage applies
// twiddles w_n^{q t} and an r-point DFT across the children:
//   dst[t + s*m] = sum_q w_r^{q s} * (w_n^{q t} * scratch[q*m + t]),
// reading both factors from the per-depth tables built at plan time.
template <typename T>
void Fft1d<T>::rec(const cplx* x, std::ptrdiff_t stride, cplx* dst, cplx* scratch,
                   std::size_t n, std::size_t fi, int sign) const {
  if (n == 1) {
    dst[0] = x[0];
    return;
  }
  const std::size_t r = factors_[fi];
  const std::size_t m = n / r;
  for (std::size_t q = 0; q < r; ++q)
    rec(x + std::ptrdiff_t(q) * stride, stride * std::ptrdiff_t(r), scratch + q * m,
        dst + q * m, m, fi + 1, sign);

  const cplx* st = stage_tw_[fi].data();    // st[(q-1)*m + t]
  const cplx* dm = stage_dft_[fi].data();   // dm[s*r + q]
  const bool conj = sign > 0;
  auto twc = [conj](cplx w) { return conj ? std::conj(w) : w; };
  cplx g[5];
  for (std::size_t t = 0; t < m; ++t) {
    g[0] = scratch[t];
    for (std::size_t q = 1; q < r; ++q)
      g[q] = scratch[q * m + t] * twc(st[(q - 1) * m + t]);
    if (r == 2) {
      dst[t] = g[0] + g[1];
      dst[t + m] = g[0] - g[1];
    } else {
      for (std::size_t s = 0; s < r; ++s) {
        cplx acc = g[0];
        for (std::size_t q = 1; q < r; ++q) acc += g[q] * twc(dm[s * r + q]);
        dst[t + s * m] = acc;
      }
    }
  }
}

template <typename T>
void Fft1d<T>::exec_bluestein(const cplx* in, std::ptrdiff_t stride, cplx* out, int sign,
                              cplx* work) const {
  // Implemented natively for sign=-1; sign=+1 uses conj(FFT(conj(x))).
  cplx* u = work;
  cplx* uhat = work + nb_;
  cplx* subw = work + 2 * nb_;
  const bool flip = (sign > 0);
  for (std::size_t j = 0; j < n_; ++j) {
    const cplx xj = flip ? std::conj(in[std::ptrdiff_t(j) * stride])
                         : in[std::ptrdiff_t(j) * stride];
    u[j] = xj * chirp_[j];
  }
  for (std::size_t j = n_; j < nb_; ++j) u[j] = cplx(0, 0);
  sub_->exec(u, 1, uhat, -1, subw);
  for (std::size_t j = 0; j < nb_; ++j) uhat[j] *= bhat_[j];
  sub_->exec(uhat, 1, u, +1, subw);
  const T scale = T(1) / static_cast<T>(nb_);
  for (std::size_t k = 0; k < n_; ++k) {
    const cplx v = u[k] * scale * chirp_[k];
    out[k] = flip ? std::conj(v) : v;
  }
}

template class Fft1d<float>;
template class Fft1d<double>;

}  // namespace cf::fft
