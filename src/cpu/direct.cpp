#include "cpu/direct.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::cpu {

namespace {

struct ModeIter {
  std::int64_t N[3];
  int dim;

  explicit ModeIter(std::span<const std::int64_t> n) {
    dim = static_cast<int>(n.size());
    for (int d = 0; d < 3; ++d) N[d] = d < dim ? n[d] : 1;
  }
  std::int64_t total() const { return N[0] * N[1] * N[2]; }
  /// Linear index -> signed mode (k0, k1, k2); unused dims give 0.
  void modes(std::int64_t i, std::int64_t k[3]) const {
    k[0] = i % N[0] - N[0] / 2;
    k[1] = (i / N[0]) % N[1] - (dim >= 2 ? N[1] / 2 : 0);
    k[2] = i / (N[0] * N[1]) - (dim >= 3 ? N[2] / 2 : 0);
  }
};

}  // namespace

template <typename T>
void direct_type1(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<const std::complex<T>> c, int iflag,
                  std::span<const std::int64_t> N, std::span<std::complex<T>> f) {
  const ModeIter mi(N);
  if (f.size() != static_cast<std::size_t>(mi.total()))
    throw std::invalid_argument("direct_type1: output size mismatch");
  const double sign = iflag >= 0 ? 1.0 : -1.0;
  const std::size_t M = x.size();
  pool.parallel_for(0, f.size(), [&](std::size_t i, std::size_t) {
    std::int64_t k[3];
    mi.modes(static_cast<std::int64_t>(i), k);
    double re = 0, im = 0;
    for (std::size_t j = 0; j < M; ++j) {
      double phase = double(k[0]) * double(x[j]);
      if (mi.dim >= 2) phase += double(k[1]) * double(y[j]);
      if (mi.dim >= 3) phase += double(k[2]) * double(z[j]);
      phase *= sign;
      const double cr = std::cos(phase), sr = std::sin(phase);
      re += double(c[j].real()) * cr - double(c[j].imag()) * sr;
      im += double(c[j].real()) * sr + double(c[j].imag()) * cr;
    }
    f[i] = std::complex<T>(static_cast<T>(re), static_cast<T>(im));
  }, 16);
}

template <typename T>
void direct_type2(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<std::complex<T>> c, int iflag,
                  std::span<const std::int64_t> N, std::span<const std::complex<T>> f) {
  const ModeIter mi(N);
  if (f.size() != static_cast<std::size_t>(mi.total()))
    throw std::invalid_argument("direct_type2: input size mismatch");
  const double sign = iflag >= 0 ? 1.0 : -1.0;
  pool.parallel_for(0, c.size(), [&](std::size_t j, std::size_t) {
    double re = 0, im = 0;
    for (std::int64_t i = 0; i < mi.total(); ++i) {
      std::int64_t k[3];
      mi.modes(i, k);
      double phase = double(k[0]) * double(x[j]);
      if (mi.dim >= 2) phase += double(k[1]) * double(y[j]);
      if (mi.dim >= 3) phase += double(k[2]) * double(z[j]);
      phase *= sign;
      const double cr = std::cos(phase), sr = std::sin(phase);
      const auto& fv = f[static_cast<std::size_t>(i)];
      re += double(fv.real()) * cr - double(fv.imag()) * sr;
      im += double(fv.real()) * sr + double(fv.imag()) * cr;
    }
    c[j] = std::complex<T>(static_cast<T>(re), static_cast<T>(im));
  }, 16);
}

template <typename T>
void direct_type3(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<const std::complex<T>> c, int iflag,
                  std::span<const T> s, std::span<const T> t, std::span<const T> u,
                  std::span<std::complex<T>> f) {
  const double sign = iflag >= 0 ? 1.0 : -1.0;
  const std::size_t M = x.size();
  const int dim = !z.empty() ? 3 : (!y.empty() ? 2 : 1);
  pool.parallel_for(0, f.size(), [&](std::size_t k, std::size_t) {
    double re = 0, im = 0;
    for (std::size_t j = 0; j < M; ++j) {
      double phase = double(s[k]) * double(x[j]);
      if (dim >= 2) phase += double(t[k]) * double(y[j]);
      if (dim >= 3) phase += double(u[k]) * double(z[j]);
      phase *= sign;
      const double cr = std::cos(phase), sr = std::sin(phase);
      re += double(c[j].real()) * cr - double(c[j].imag()) * sr;
      im += double(c[j].real()) * sr + double(c[j].imag()) * cr;
    }
    f[k] = std::complex<T>(static_cast<T>(re), static_cast<T>(im));
  }, 16);
}

template <typename T>
double rel_l2_error(std::span<const std::complex<T>> a, std::span<const std::complex<T>> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rel_l2_error: size mismatch");
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double dr = double(a[i].real()) - double(b[i].real());
    const double di = double(a[i].imag()) - double(b[i].imag());
    num += dr * dr + di * di;
    den += double(b[i].real()) * double(b[i].real()) +
           double(b[i].imag()) * double(b[i].imag());
  }
  return den == 0 ? std::sqrt(num) : std::sqrt(num / den);
}

#define CF_INST(T)                                                                      \
  template void direct_type1<T>(ThreadPool&, std::span<const T>, std::span<const T>,   \
                                std::span<const T>, std::span<const std::complex<T>>,  \
                                int, std::span<const std::int64_t>,                    \
                                std::span<std::complex<T>>);                           \
  template void direct_type2<T>(ThreadPool&, std::span<const T>, std::span<const T>,   \
                                std::span<const T>, std::span<std::complex<T>>, int,   \
                                std::span<const std::int64_t>,                         \
                                std::span<const std::complex<T>>);                     \
  template void direct_type3<T>(ThreadPool&, std::span<const T>, std::span<const T>,   \
                                std::span<const T>, std::span<const std::complex<T>>,  \
                                int, std::span<const T>, std::span<const T>,           \
                                std::span<const T>, std::span<std::complex<T>>);       \
  template double rel_l2_error<T>(std::span<const std::complex<T>>,                    \
                                  std::span<const std::complex<T>>);

CF_INST(float)
CF_INST(double)
#undef CF_INST

}  // namespace cf::cpu
