#include "cpu/cpu_plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::cpu {

namespace {

template <typename T>
spread::GridSpec make_grid(std::span<const std::int64_t> nmodes, double upsampfac, int w) {
  spread::GridSpec g;
  g.dim = static_cast<int>(nmodes.size());
  for (int d = 0; d < g.dim; ++d) {
    const auto lower =
        static_cast<std::int64_t>(std::ceil(upsampfac * double(nmodes[d])));
    g.nf[d] = static_cast<std::int64_t>(fft::next235(
        static_cast<std::size_t>(std::max<std::int64_t>(lower, 2 * w))));
  }
  return g;
}

template <typename T>
inline void atomic_add_cplx(std::complex<T>* p, std::complex<T> v) {
  T* f = reinterpret_cast<T*>(p);
  std::atomic_ref<T>(f[0]).fetch_add(v.real(), std::memory_order_relaxed);
  std::atomic_ref<T>(f[1]).fetch_add(v.imag(), std::memory_order_relaxed);
}

}  // namespace

template <typename T>
CpuPlan<T>::CpuPlan(ThreadPool& pool, int type, std::span<const std::int64_t> nmodes,
                    int iflag, double tol, Options opts)
    : pool_(&pool),
      type_(type),
      iflag_(iflag >= 0 ? 1 : -1),
      opts_(opts),
      kp_(spread::KernelParams<T>::from_width(
          spread::width_from_tol(tol, opts.upsampfac), opts.upsampfac)) {
  if (type_ != 1 && type_ != 2) throw std::invalid_argument("CpuPlan: type must be 1 or 2");
  if (nmodes.empty() || nmodes.size() > 3)
    throw std::invalid_argument("CpuPlan: dim must be 1..3");
  if (opts_.upsampfac != 2.0 && opts_.upsampfac != 1.25)
    throw std::invalid_argument("CpuPlan: upsampfac must be 2.0 or 1.25");
  for (std::size_t d = 0; d < nmodes.size(); ++d) N_[d] = nmodes[d];
  grid_ = make_grid<T>(nmodes, opts_.upsampfac, kp_.w);
  if (opts_.kerevalmeth == 1)
    spread::horner_cache<T>(kp_.w, opts_.upsampfac).attach(kp_);
  auto bsz = opts_.binsize[0] > 0 ? opts_.binsize : spread::BinSpec::default_size(grid_.dim);
  bins_ = spread::BinSpec::make(grid_, bsz);

  std::vector<std::size_t> dims;
  for (int d = 0; d < grid_.dim; ++d) dims.push_back(static_cast<std::size_t>(grid_.nf[d]));
  fft_ = std::make_unique<fft::FftNd<T>>(*pool_, dims);
  fw_.resize(static_cast<std::size_t>(std::max(1, opts_.ntransf)) *
             static_cast<std::size_t>(grid_.total()));

  const T beta = kp_.beta;
  auto kernel = [beta](double z) { return double(spread::es_eval(T(z), beta)); };
  for (int d = 0; d < grid_.dim; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(N_[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), kp_.w,
                                        kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = grid_.dim; d < 3; ++d) fser_[d].assign(1, T(1));
}

template <typename T>
void CpuPlan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z) {
  if (grid_.dim >= 2 && !y) throw std::invalid_argument("set_points: y required");
  if (grid_.dim >= 3 && !z) throw std::invalid_argument("set_points: z required");
  std::lock_guard lk(mu_);  // a shared plan may be re-pointed while others wait
  Timer t;
  M_ = M;
  const int dim = grid_.dim;
  xg_.resize(M);
  if (dim >= 2) yg_.resize(M);
  if (dim >= 3) zg_.resize(M);
  pool_->parallel_for(0, M, [&](std::size_t j, std::size_t) {
    xg_[j] = spread::fold_rescale(x[j], grid_.nf[0]);
    if (dim >= 2) yg_[j] = spread::fold_rescale(y[j], grid_.nf[1]);
    if (dim >= 3) zg_[j] = spread::fold_rescale(z[j], grid_.nf[2]);
  }, 1024);

  // Counting sort by bin (parallel histogram with atomics, serial scan).
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());
  std::vector<std::uint32_t> binidx(M);
  std::vector<std::uint32_t> counts(nbins, 0);
  pool_->parallel_for(0, M, [&](std::size_t j, std::size_t) {
    std::int64_t b[3] = {0, 0, 0};
    const T* coords[3] = {xg_.data(), yg_.data(), zg_.data()};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l = static_cast<std::int64_t>(coords[d][j]);
      b[d] = std::min<std::int64_t>(l / bins_.m[d], bins_.nbins[d] - 1);
    }
    const auto bi = static_cast<std::uint32_t>(
        b[0] + bins_.nbins[0] * (b[1] + bins_.nbins[1] * b[2]));
    binidx[j] = bi;
    std::atomic_ref<std::uint32_t>(counts[bi]).fetch_add(1, std::memory_order_relaxed);
  }, 1024);
  bin_start_.assign(nbins + 1, 0);
  for (std::size_t i = 0; i < nbins; ++i) bin_start_[i + 1] = bin_start_[i] + counts[i];
  order_.resize(M);
  // Serial stable scatter: points within a bin keep their original index
  // order regardless of pool size, so the tiled spread merge (and any other
  // bin-ordered accumulation) is bitwise-deterministic. The comparator's
  // sort is not a hot path; determinism is worth the serial pass.
  std::vector<std::uint32_t> cursors(bin_start_.begin(), bin_start_.end() - 1);
  for (std::size_t j = 0; j < M; ++j)
    order_[cursors[binidx[j]]++] = static_cast<std::uint32_t>(j);
  build_tile_cache();
  bd_ = CpuBreakdown{};
  bd_.sort = t.seconds();
}

// Set_points-time half of the tile-owned merge (the setpts-amortization
// contract: nothing point-dependent is rebuilt per execute): the geometry
// gate — same as the device engine's (padded extent <= nf per axis, so every
// (tile, cell) contribution has a unique scratch coordinate) — plus the
// active-bin compaction and the arena, sized for ntransf stacked planes
// under the shared byte cap.
template <typename T>
void CpuPlan<T>::build_tile_cache() {
  tile_ok_ = false;
  tile_active_.clear();
  tile_slot_of_.clear();
  tile_arena_.clear();
  tile_chunk0_.clear();
  chunk_tile_.clear();
  chunk_off_.clear();
  chunk_cnt_.clear();
  chunk_plane_.clear();
  chunk_sched_.clear();
  split_tile_.clear();
  chunk_arena_.clear();
  if (!opts_.tiled_spread || type_ != 1) return;  // spread-only machinery
  const int pad = (kp_.w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid_.dim; ++d) {
    const std::int64_t p = bins_.m[d] + 2 * pad;
    if (p > grid_.nf[d]) return;
    padded *= static_cast<std::size_t>(p);
  }
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());
  tile_slot_of_.assign(nbins, 0xffffffffu);
  for (std::size_t b = 0; b < nbins; ++b)
    if (bin_start_[b + 1] > bin_start_[b]) {
      tile_slot_of_[b] = static_cast<std::uint32_t>(tile_active_.size());
      tile_active_.push_back(static_cast<std::uint32_t>(b));
    }
  // Chunk the batch like the device's build_tile_set: hold as many planes
  // per tile as the byte cap allows (at least one, else atomic fallback).
  const std::size_t B = static_cast<std::size_t>(std::max(1, opts_.ntransf));
  const std::size_t per_plane = tile_active_.size() * padded * sizeof(cplx);
  if (per_plane > spread::kTileArenaMaxBytes) {
    tile_active_.clear();
    tile_slot_of_.clear();
    return;  // bins too large for the arena: atomic fallback
  }
  tile_nb_ = static_cast<int>(
      std::min(B, std::max<std::size_t>(1, spread::kTileArenaMaxBytes / per_plane)));
  tile_arena_.resize(tile_active_.size() * padded * tile_nb_);

  // Canonical chunk split (the CPU mirror of build_tile_set's): cap
  // resolution, balanced per-bin cuts, and the largest-first schedule are all
  // pure functions of the points — never of the pool size — so the summation
  // split (and with it the output bits) is identical at every pool size.
  std::uint32_t cap;
  int req = opts_.tile_chunk_cap;
  if (req == 0)
    if (const char* e = std::getenv("CF_TILE_CHUNK"); e && *e) req = std::atoi(e);
  if (req < 0) {
    cap = 0xffffffffu;
  } else if (req > 0) {
    cap = static_cast<std::uint32_t>(req);
  } else {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    cap = static_cast<std::uint32_t>(std::max<std::size_t>(
        spread::kTileChunkMin, (M_ + 4 * hw - 1) / (4 * hw)));
  }
  // Split-chunk planes live in a separate budget; double the cap until the
  // split fits (terminates: cap = UINT32_MAX means no splits at all).
  std::size_t nsplitch = 0;
  for (;;) {
    nsplitch = 0;
    for (const std::uint32_t b : tile_active_) {
      const std::uint32_t cnt = bin_start_[b + 1] - bin_start_[b];
      if (cnt > cap) nsplitch += (cnt + cap - 1) / cap;
    }
    if (cap == 0xffffffffu ||
        nsplitch * padded * static_cast<std::size_t>(tile_nb_) * sizeof(cplx) <=
            spread::kTileChunkArenaMaxBytes)
      break;
    cap = cap > 0x7fffffffu ? 0xffffffffu : cap * 2;
  }
  chunk_cap_ = cap;
  tile_chunk0_.reserve(tile_active_.size() + 1);
  std::uint32_t plane_id = 0;
  for (const std::uint32_t b : tile_active_) {
    tile_chunk0_.push_back(static_cast<std::uint32_t>(chunk_tile_.size()));
    const std::uint32_t cnt = bin_start_[b + 1] - bin_start_[b];
    const std::uint32_t k = cnt > cap ? (cnt + cap - 1) / cap : 1;
    const std::uint32_t base = cnt / k, rem = cnt % k;
    std::uint32_t off = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
      chunk_tile_.push_back(tile_chunk0_.size() - 1);
      chunk_off_.push_back(off);
      const std::uint32_t sz = base + (i < rem ? 1 : 0);
      chunk_cnt_.push_back(sz);
      chunk_plane_.push_back(k > 1 ? plane_id++ : 0xffffffffu);
      off += sz;
    }
    if (k > 1)
      split_tile_.push_back(static_cast<std::uint32_t>(tile_chunk0_.size() - 1));
  }
  tile_chunk0_.push_back(static_cast<std::uint32_t>(chunk_tile_.size()));
  chunk_sched_.resize(chunk_tile_.size());
  for (std::size_t i = 0; i < chunk_sched_.size(); ++i)
    chunk_sched_[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(chunk_sched_.begin(), chunk_sched_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return chunk_cnt_[a] > chunk_cnt_[b];
                   });
  chunk_arena_.resize(static_cast<std::size_t>(plane_id) * padded *
                      static_cast<std::size_t>(tile_nb_));
  tile_ok_ = true;
}

// Spread sorted points in subproblem chunks: each chunk targets one bin (or a
// slice of one), accumulates into a worker-local padded-bin buffer (B stacked
// planes), then merges into the fine grid with atomic adds (FINUFFT's
// parallel strategy). Kernel weights are evaluated once per point and applied
// to all B vectors; the point loops run through the same compile-time width
// dispatch as the device kernels (W = 0 is the runtime-width fallback).
template <typename T>
void CpuPlan<T>::spread_sorted(const cplx* c, int B) {
  const int dim = grid_.dim;
  const int w = kp_.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < dim; ++d) p[d] = bins_.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());

  // Build the chunk list: (bin, offset) pairs capped at msub points.
  struct Chunk {
    std::uint32_t bin, off;
  };
  std::vector<Chunk> chunks;
  for (std::size_t b = 0; b < nbins; ++b) {
    const std::uint32_t cnt = bin_start_[b + 1] - bin_start_[b];
    for (std::uint32_t off = 0; off < cnt; off += opts_.msub)
      chunks.push_back({static_cast<std::uint32_t>(b), off});
  }

  std::vector<std::vector<cplx>> local(pool_->size());
  auto run = [&](auto WC) {
    // WC::value > 0: compile-time width (tap loops fully unroll); 0: runtime.
    constexpr int W = decltype(WC)::value;
    pool_->parallel_for(0, chunks.size(), [&](std::size_t ci, std::size_t wid) {
      const int wl = W > 0 ? W : kp_.w;
      auto& buf = local[wid];
      buf.assign(padded * B, cplx(0, 0));
      const auto [b, off] = chunks[ci];
      const std::uint32_t cnt =
          std::min(opts_.msub, bin_start_[b + 1] - bin_start_[b] - off);
      std::int64_t delta[3];
      spread::detail::subprob_delta(bins_, b, dim, pad, delta);

      for (std::uint32_t i = 0; i < cnt; ++i) {
        const std::size_t j = order_[bin_start_[b] + off + i];
        T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
        T vals[3][spread::kMaxWidth];
        std::int64_t li0[3] = {0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          if constexpr (W > 0)
            li0[d] = spread::es_values_fixed<W>(kp_, px[d], vals[d]) - delta[d];
          else
            li0[d] = spread::es_values(kp_, px[d], vals[d]) - delta[d];
        }
        for (int bb = 0; bb < B; ++bb) {
          const cplx cj = c[bb * M_ + j];
          cplx* bufb = buf.data() + padded * bb;
          if (dim == 1) {
            for (int i0 = 0; i0 < wl; ++i0) bufb[li0[0] + i0] += cj * vals[0][i0];
          } else if (dim == 2) {
            for (int i1 = 0; i1 < wl; ++i1) {
              const cplx c1 = cj * vals[1][i1];
              const std::int64_t row = (li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < wl; ++i0) bufb[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          } else {
            for (int i2 = 0; i2 < wl; ++i2) {
              const cplx c2 = cj * vals[2][i2];
              for (int i1 = 0; i1 < wl; ++i1) {
                const cplx c1 = c2 * vals[1][i1];
                const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
                for (int i0 = 0; i0 < wl; ++i0)
                  bufb[row + li0[0] + i0] += c1 * vals[0][i0];
              }
            }
          }
        }
      }
      // Merge into the fine grid, wrap resolved once per contiguous row run
      // (the same for_padded_rows helper as the device SM writeback).
      const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);
      auto merge_rows = [&](auto DC) {
        constexpr int DIM = decltype(DC)::value;
        spread::detail::for_padded_rows<DIM, T>(
            grid_, p, delta, 0, nrows,
            [&](std::size_t src, std::int64_t dst, std::int64_t run) {
              for (int bb = 0; bb < B; ++bb) {
                const cplx* bufb = buf.data() + padded * bb;
                cplx* fwb = fw_.data() + ftot * bb;
                for (std::int64_t i = 0; i < run; ++i) {
                  const cplx v = bufb[src + i];
                  if (v == cplx(0, 0)) continue;
                  atomic_add_cplx(&fwb[dst + i], v);
                }
              }
            });
      };
      spread::detail::dispatch_dim(
          dim, [&] { merge_rows(std::integral_constant<int, 1>{}); },
          [&] { merge_rows(std::integral_constant<int, 2>{}); },
          [&] { merge_rows(std::integral_constant<int, 3>{}); });
    });
  };
  if (!spread::detail::dispatch_width(kp_.w, run)) run(std::integral_constant<int, 0>{});
}

// Tile-owned spread (the CPU mirror of spread_tiled.cpp): each active bin's
// points are accumulated into a per-tile padded buffer in sorted order, the
// disjoint in-range core is added to the fine grid with plain stores, and a
// second pass merges every tile's halo into the neighboring cores in the
// fixed canonical order of spread_impl.hpp — no atomics, and the result is
// bitwise-identical at every pool size (the sort is stable and serial).
// All point-dependent setup (gate, active list, arena) comes from the
// set_points-time tile cache.
template <typename T>
void CpuPlan<T>::spread_tiled(const cplx* c, int B) {
  namespace sd = spread::detail;
  const int dim = grid_.dim;
  const int w = kp_.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < dim; ++d) p[d] = bins_.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());
  const auto nf = grid_.nf;
  const auto& active = tile_active_;
  const auto& slot_of = tile_slot_of_;
  auto& arena = tile_arena_;

  // The batch runs in chunks of tile_nb_ planes (cap-chunked like the device
  // engine), phase 1 + phase 2 per chunk.
  for (int b0 = 0; b0 < B; b0 += tile_nb_) {
  const int nb = std::min(tile_nb_, B - b0);

  // Phase 1 helpers, shared by the chunk accumulation and the split-tile
  // reduce: accumulate a canonical slice [first, first+cnt) of bin b's sorted
  // run into `buf`, and add a tile's owned core to the fine grid.
  auto accum = [&](std::uint32_t b, std::uint32_t first, std::uint32_t cnt,
                   cplx* buf) {
    std::int64_t delta[3];
    sd::subprob_delta(bins_, b, dim, pad, delta);
    auto run = [&](auto WC) {
      constexpr int W = decltype(WC)::value;
      const int wl = W > 0 ? W : kp_.w;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        const std::size_t j = order_[bin_start_[b] + first + i];
        T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
        T vals[3][spread::kMaxWidth];
        std::int64_t li0[3] = {0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          if constexpr (W > 0)
            li0[d] = spread::es_values_fixed<W>(kp_, px[d], vals[d]) - delta[d];
          else
            li0[d] = spread::es_values(kp_, px[d], vals[d]) - delta[d];
        }
        for (int bb = 0; bb < nb; ++bb) {
          const cplx cj = c[(b0 + bb) * M_ + j];
          cplx* bufb = buf + padded * bb;
          if (dim == 1) {
            for (int i0 = 0; i0 < wl; ++i0) bufb[li0[0] + i0] += cj * vals[0][i0];
          } else if (dim == 2) {
            for (int i1 = 0; i1 < wl; ++i1) {
              const cplx c1 = cj * vals[1][i1];
              const std::int64_t row = (li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < wl; ++i0) bufb[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          } else {
            for (int i2 = 0; i2 < wl; ++i2) {
              const cplx c2 = cj * vals[2][i2];
              for (int i1 = 0; i1 < wl; ++i1) {
                const cplx c1 = c2 * vals[1][i1];
                const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
                for (int i0 = 0; i0 < wl; ++i0)
                  bufb[row + li0[0] + i0] += c1 * vals[0][i0];
              }
            }
          }
        }
      }
    };
    if (!sd::dispatch_width(kp_.w, run)) run(std::integral_constant<int, 0>{});
  };
  // Owned core writeback: plain accumulating stores, no wrap possible.
  auto core_writeback = [&](std::uint32_t b, const cplx* buf) {
    std::int64_t bc[3];
    sd::bin_coords(bins_, b, bc);
    std::int64_t c0[3] = {0, 0, 0}, ce[3] = {1, 1, 1};
    for (int d = 0; d < dim; ++d) sd::tile_core(bc[d], bins_.m[d], nf[d], c0[d], ce[d]);
    for (std::int64_t s2 = 0; s2 < ce[2]; ++s2) {
      for (std::int64_t s1 = 0; s1 < ce[1]; ++s1) {
        const std::int64_t s1p = dim > 1 ? pad + s1 : 0;
        const std::int64_t s2p = dim > 2 ? pad + s2 : 0;
        const std::size_t src =
            static_cast<std::size_t>((s2p * p[1] + s1p) * p[0] + pad);
        const std::int64_t dst = c0[0] + nf[0] * ((c0[1] + s1) + nf[1] * (c0[2] + s2));
        for (int bb = 0; bb < nb; ++bb) {
          const cplx* bufb = buf + padded * bb + src;
          cplx* fwb = fw_.data() + ftot * (b0 + bb) + dst;
          for (std::int64_t i = 0; i < ce[0]; ++i) fwb[i] += bufb[i];
        }
      }
    }
  };

  // Phase 1a: every (tile, chunk) work item, largest-first over the pool's
  // work-stealing path. An unsplit tile runs the whole per-tile pipeline; a
  // chunk of a split tile only accumulates its canonical point slice into its
  // dedicated plane (the reduce and writeback happen in phase 1b, in fixed
  // chunk order — the schedule never touches the summation order).
  pool_->parallel_steal(chunk_sched_.size(), [&](std::size_t si, std::size_t) {
    const std::uint32_t ck = chunk_sched_[si];
    const std::uint32_t ai = chunk_tile_[ck];
    const std::uint32_t b = active[ai];
    if (chunk_plane_[ck] == 0xffffffffu) {
      cplx* buf = arena.data() + ai * padded * static_cast<std::size_t>(tile_nb_);
      std::fill(buf, buf + padded * nb, cplx(0, 0));
      accum(b, 0, bin_start_[b + 1] - bin_start_[b], buf);
      core_writeback(b, buf);
    } else {
      cplx* buf = chunk_arena_.data() +
                  chunk_plane_[ck] * padded * static_cast<std::size_t>(tile_nb_);
      std::fill(buf, buf + padded * nb, cplx(0, 0));
      accum(b, chunk_off_[ck], chunk_cnt_[ck], buf);
    }
  });

  // Phase 1b: split tiles fold their chunk planes in ascending chunk order
  // into the tile's arena slot, then write the owned core.
  if (!split_tile_.empty())
    pool_->parallel_for(0, split_tile_.size(), [&](std::size_t si, std::size_t) {
      const std::uint32_t ai = split_tile_[si];
      const std::uint32_t b = active[ai];
      cplx* buf = arena.data() + ai * padded * static_cast<std::size_t>(tile_nb_);
      std::fill(buf, buf + padded * nb, cplx(0, 0));
      for (std::uint32_t ck = tile_chunk0_[ai]; ck < tile_chunk0_[ai + 1]; ++ck) {
        const cplx* src = chunk_arena_.data() +
                          chunk_plane_[ck] * padded * static_cast<std::size_t>(tile_nb_);
        for (std::size_t i = 0; i < padded * static_cast<std::size_t>(nb); ++i)
          buf[i] += src[i];
      }
      core_writeback(b, buf);
    });

  // Phase 2: each owner merges its neighbors' halos in the fixed order.
  pool_->parallel_for(0, nbins, [&](std::size_t bown, std::size_t) {
    std::int64_t bc[3];
    sd::bin_coords(bins_, static_cast<std::uint32_t>(bown), bc);
    sd::TileNbr nbr[3][sd::kMaxTileNbrs];
    int nn[3] = {1, 1, 1};
    for (int d = 0; d < dim; ++d)
      nn[d] = sd::tile_axis_nbrs(bc[d], bins_.m[d], bins_.nbins[d], nf[d], pad, nbr[d]);
    for (int iz = 0; iz < nn[2]; ++iz) {
      for (int iy = 0; iy < nn[1]; ++iy) {
        for (int ix = 0; ix < nn[0]; ++ix) {
          const std::int64_t q0 = nbr[0][ix].q;
          const std::int64_t q1 = dim > 1 ? nbr[1][iy].q : 0;
          const std::int64_t q2 = dim > 2 ? nbr[2][iz].q : 0;
          if (q0 == bc[0] && q1 == bc[1] && q2 == bc[2]) continue;  // self core
          const std::uint32_t slot = slot_of[static_cast<std::size_t>(
              q0 + bins_.nbins[0] * (q1 + bins_.nbins[1] * q2))];
          if (slot == 0xffffffffu) continue;  // empty tile
          const cplx* sbuf =
              arena.data() + slot * padded * static_cast<std::size_t>(tile_nb_);
          const int nsz = dim > 2 ? nbr[2][iz].nsegs : 1;
          const int nsy = dim > 1 ? nbr[1][iy].nsegs : 1;
          for (int sz = 0; sz < nsz; ++sz) {
            const sd::TileSeg zseg =
                dim > 2 ? nbr[2][iz].segs[sz] : sd::TileSeg{0, 0, 1};
            for (int sy = 0; sy < nsy; ++sy) {
              const sd::TileSeg yseg =
                  dim > 1 ? nbr[1][iy].segs[sy] : sd::TileSeg{0, 0, 1};
              for (int sx = 0; sx < nbr[0][ix].nsegs; ++sx) {
                const sd::TileSeg xseg = nbr[0][ix].segs[sx];
                for (std::int64_t gz = 0; gz < zseg.len; ++gz) {
                  for (std::int64_t gy = 0; gy < yseg.len; ++gy) {
                    const std::size_t src = static_cast<std::size_t>(
                        ((zseg.s0 + gz) * p[1] + (yseg.s0 + gy)) * p[0] + xseg.s0);
                    const std::int64_t dst =
                        xseg.g0 + nf[0] * ((yseg.g0 + gy) + nf[1] * (zseg.g0 + gz));
                    for (int bb = 0; bb < nb; ++bb) {
                      const cplx* sb = sbuf + padded * bb + src;
                      cplx* fwb = fw_.data() + ftot * (b0 + bb) + dst;
                      for (std::int64_t i = 0; i < xseg.len; ++i) fwb[i] += sb[i];
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  });
  }  // batch chunk
}

template <typename T>
void CpuPlan<T>::interp_sorted(cplx* c, int B) {
  const int dim = grid_.dim;
  const int w = kp_.w;
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  pool_->parallel_for(0, M_, [&](std::size_t jj, std::size_t) {
    const std::size_t j = order_.empty() ? jj : order_[jj];
    T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
    T vals[3][spread::kMaxWidth];
    std::int64_t idx[3][spread::kMaxWidth];
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l0 = spread::es_values(kp_, px[d], vals[d]);
      for (int i = 0; i < w; ++i) idx[d][i] = spread::wrap_index(l0 + i, grid_.nf[d]);
    }
    for (int bb = 0; bb < B; ++bb) {
      const cplx* fwb = fw_.data() + ftot * bb;
      cplx acc(0, 0);
      if (dim == 1) {
        for (int i0 = 0; i0 < w; ++i0) acc += fwb[idx[0][i0]] * vals[0][i0];
      } else if (dim == 2) {
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = idx[1][i1] * grid_.nf[0];
          cplx rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0) rowacc += fwb[row + idx[0][i0]] * vals[0][i0];
          acc += rowacc * vals[1][i1];
        }
      } else {
        for (int i2 = 0; i2 < w; ++i2) {
          cplx planeacc(0, 0);
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (idx[2][i2] * grid_.nf[1] + idx[1][i1]) * grid_.nf[0];
            cplx rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += fwb[row + idx[0][i0]] * vals[0][i0];
            planeacc += rowacc * vals[1][i1];
          }
          acc += planeacc * vals[2][i2];
        }
      }
      c[bb * M_ + j] = acc;
    }
  }, 64);
}

template <typename T>
void CpuPlan<T>::deconvolve_type1(cplx* f, int B) {
  const auto& N = N_;
  const auto& nf = grid_.nf;
  const int mo = opts_.modeord;
  const std::int64_t ntot = modes_total();
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  pool_->parallel_for(0, static_cast<std::size_t>(ntot), [&](std::size_t i, std::size_t) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % N[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / N[0]) % N[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (N[0] * N[1]);
    const std::int64_t k0 = spread::index_to_mode(i0, N[0], mo);
    const std::int64_t k1 = spread::index_to_mode(i1, N[1], mo);
    const std::int64_t k2 = spread::index_to_mode(i2, N[2], mo);
    const std::int64_t g0 = spread::wrap_index(k0, nf[0]);
    const std::int64_t g1 = spread::wrap_index(k1, nf[1]);
    const std::int64_t g2 = spread::wrap_index(k2, nf[2]);
    const T p =
        fser_[0][k0 + N[0] / 2] * fser_[1][k1 + N[1] / 2] * fser_[2][k2 + N[2] / 2];
    const std::size_t lin =
        static_cast<std::size_t>(g0 + nf[0] * (g1 + nf[1] * g2));
    for (int b = 0; b < B; ++b)
      f[b * static_cast<std::size_t>(ntot) + i] = fw_[ftot * b + lin] * p;
  }, 1024);
}

template <typename T>
CpuBreakdown CpuPlan<T>::execute(cplx* c, cplx* f, int B) {
  std::lock_guard lk(mu_);  // shared plans serialize; each caller snapshots
  if (B <= 0) B = std::max(1, opts_.ntransf);
  if (M_ == 0) {
    if (type_ == 1)
      for (std::int64_t i = 0; i < B * modes_total(); ++i) f[i] = cplx(0, 0);
    return bd_;
  }
  CpuBreakdown bd = bd_;  // per-execute snapshot over the set_points-era sort
  bd.spread = bd.fft = bd.deconvolve = bd.interp = 0;
  // One stage pipeline for every batch size, mirroring the device library; a
  // coalesced batch beyond the constructed ntransf grows the stack once.
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  if (static_cast<std::size_t>(B) * ftot > fw_.size())
    fw_.resize(static_cast<std::size_t>(B) * ftot);
  Timer t;
  if (type_ == 1) {
    std::fill(fw_.begin(), fw_.begin() + static_cast<std::ptrdiff_t>(B * ftot),
              cplx(0, 0));
    if (tile_ok_)
      spread_tiled(c, B);
    else
      spread_sorted(c, B);
    bd.spread = t.seconds();
    t.reset();
    fft_->exec_batch(fw_.data(), static_cast<std::size_t>(B), ftot, iflag_);
    bd.fft = t.seconds();
    t.reset();
    deconvolve_type1(f, B);
    bd.deconvolve = t.seconds();
  } else {
    // Fused amplify + FFT, sharing the row producer with the device library.
    fft_->exec_batch_fused(
        fw_.data(), static_cast<std::size_t>(B), ftot, iflag_,
        [&](cplx* row, std::size_t line, std::size_t b) {
          return spread::amplify_fine_row(
              row, line, f + b * static_cast<std::size_t>(modes_total()), grid_.dim,
              N_, grid_.nf, fser_, opts_.modeord);
        });
    bd.fft = t.seconds();
    t.reset();
    interp_sorted(c, B);
    bd.interp = t.seconds();
  }
  bd_ = bd;
  return bd;
}

template class CpuPlan<float>;
template class CpuPlan<double>;

}  // namespace cf::cpu
