#include "cpu/cpu_plan.hpp"

#include <atomic>
#include <stdexcept>

#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::cpu {

namespace {

template <typename T>
spread::GridSpec make_grid(std::span<const std::int64_t> nmodes, int w) {
  spread::GridSpec g;
  g.dim = static_cast<int>(nmodes.size());
  for (int d = 0; d < g.dim; ++d)
    g.nf[d] = static_cast<std::int64_t>(fft::next235(
        static_cast<std::size_t>(std::max<std::int64_t>(2 * nmodes[d], 2 * w))));
  return g;
}

template <typename T>
inline void atomic_add_cplx(std::complex<T>* p, std::complex<T> v) {
  T* f = reinterpret_cast<T*>(p);
  std::atomic_ref<T>(f[0]).fetch_add(v.real(), std::memory_order_relaxed);
  std::atomic_ref<T>(f[1]).fetch_add(v.imag(), std::memory_order_relaxed);
}

}  // namespace

template <typename T>
CpuPlan<T>::CpuPlan(ThreadPool& pool, int type, std::span<const std::int64_t> nmodes,
                    int iflag, double tol, Options opts)
    : pool_(&pool),
      type_(type),
      iflag_(iflag >= 0 ? 1 : -1),
      opts_(opts),
      kp_(spread::KernelParams<T>::from_width(spread::width_from_tol(tol))) {
  if (type_ != 1 && type_ != 2) throw std::invalid_argument("CpuPlan: type must be 1 or 2");
  if (nmodes.empty() || nmodes.size() > 3)
    throw std::invalid_argument("CpuPlan: dim must be 1..3");
  for (std::size_t d = 0; d < nmodes.size(); ++d) N_[d] = nmodes[d];
  grid_ = make_grid<T>(nmodes, kp_.w);
  if (opts_.kerevalmeth == 1) {
    horner_ = spread::HornerTable<T>(kp_);
    horner_.attach(kp_);
  }
  auto bsz = opts_.binsize[0] > 0 ? opts_.binsize : spread::BinSpec::default_size(grid_.dim);
  bins_ = spread::BinSpec::make(grid_, bsz);

  std::vector<std::size_t> dims;
  for (int d = 0; d < grid_.dim; ++d) dims.push_back(static_cast<std::size_t>(grid_.nf[d]));
  fft_ = std::make_unique<fft::FftNd<T>>(*pool_, dims);
  fw_.resize(static_cast<std::size_t>(std::max(1, opts_.ntransf)) *
             static_cast<std::size_t>(grid_.total()));

  const T beta = kp_.beta;
  auto kernel = [beta](double z) { return double(spread::es_eval(T(z), beta)); };
  for (int d = 0; d < grid_.dim; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(N_[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), kp_.w,
                                        kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = grid_.dim; d < 3; ++d) fser_[d].assign(1, T(1));
}

template <typename T>
void CpuPlan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z) {
  if (grid_.dim >= 2 && !y) throw std::invalid_argument("set_points: y required");
  if (grid_.dim >= 3 && !z) throw std::invalid_argument("set_points: z required");
  Timer t;
  M_ = M;
  const int dim = grid_.dim;
  xg_.resize(M);
  if (dim >= 2) yg_.resize(M);
  if (dim >= 3) zg_.resize(M);
  pool_->parallel_for(0, M, [&](std::size_t j, std::size_t) {
    xg_[j] = spread::fold_rescale(x[j], grid_.nf[0]);
    if (dim >= 2) yg_[j] = spread::fold_rescale(y[j], grid_.nf[1]);
    if (dim >= 3) zg_[j] = spread::fold_rescale(z[j], grid_.nf[2]);
  }, 1024);

  // Counting sort by bin (parallel histogram with atomics, serial scan).
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());
  std::vector<std::uint32_t> binidx(M);
  std::vector<std::uint32_t> counts(nbins, 0);
  pool_->parallel_for(0, M, [&](std::size_t j, std::size_t) {
    std::int64_t b[3] = {0, 0, 0};
    const T* coords[3] = {xg_.data(), yg_.data(), zg_.data()};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l = static_cast<std::int64_t>(coords[d][j]);
      b[d] = std::min<std::int64_t>(l / bins_.m[d], bins_.nbins[d] - 1);
    }
    const auto bi = static_cast<std::uint32_t>(
        b[0] + bins_.nbins[0] * (b[1] + bins_.nbins[1] * b[2]));
    binidx[j] = bi;
    std::atomic_ref<std::uint32_t>(counts[bi]).fetch_add(1, std::memory_order_relaxed);
  }, 1024);
  bin_start_.assign(nbins + 1, 0);
  for (std::size_t i = 0; i < nbins; ++i) bin_start_[i + 1] = bin_start_[i] + counts[i];
  order_.resize(M);
  std::vector<std::uint32_t> cursors(bin_start_.begin(), bin_start_.end() - 1);
  pool_->parallel_for(0, M, [&](std::size_t j, std::size_t) {
    const std::uint32_t pos = std::atomic_ref<std::uint32_t>(cursors[binidx[j]])
                                  .fetch_add(1, std::memory_order_relaxed);
    order_[pos] = static_cast<std::uint32_t>(j);
  }, 1024);
  bd_ = CpuBreakdown{};
  bd_.sort = t.seconds();
}

// Spread sorted points in subproblem chunks: each chunk targets one bin (or a
// slice of one), accumulates into a worker-local padded-bin buffer (B stacked
// planes), then merges into the fine grid with atomic adds (FINUFFT's
// parallel strategy). Kernel weights are evaluated once per point and applied
// to all B vectors; the point loops run through the same compile-time width
// dispatch as the device kernels (W = 0 is the runtime-width fallback).
template <typename T>
void CpuPlan<T>::spread_sorted(const cplx* c, int B) {
  const int dim = grid_.dim;
  const int w = kp_.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < dim; ++d) p[d] = bins_.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  const std::size_t nbins = static_cast<std::size_t>(bins_.total_bins());

  // Build the chunk list: (bin, offset) pairs capped at msub points.
  struct Chunk {
    std::uint32_t bin, off;
  };
  std::vector<Chunk> chunks;
  for (std::size_t b = 0; b < nbins; ++b) {
    const std::uint32_t cnt = bin_start_[b + 1] - bin_start_[b];
    for (std::uint32_t off = 0; off < cnt; off += opts_.msub)
      chunks.push_back({static_cast<std::uint32_t>(b), off});
  }

  std::vector<std::vector<cplx>> local(pool_->size());
  auto run = [&](auto WC) {
    // WC::value > 0: compile-time width (tap loops fully unroll); 0: runtime.
    constexpr int W = decltype(WC)::value;
    pool_->parallel_for(0, chunks.size(), [&](std::size_t ci, std::size_t wid) {
      const int wl = W > 0 ? W : kp_.w;
      auto& buf = local[wid];
      buf.assign(padded * B, cplx(0, 0));
      const auto [b, off] = chunks[ci];
      const std::uint32_t cnt =
          std::min(opts_.msub, bin_start_[b + 1] - bin_start_[b] - off);
      std::int64_t delta[3];
      spread::detail::subprob_delta(bins_, b, dim, pad, delta);

      for (std::uint32_t i = 0; i < cnt; ++i) {
        const std::size_t j = order_[bin_start_[b] + off + i];
        T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
        T vals[3][spread::kMaxWidth];
        std::int64_t li0[3] = {0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          if constexpr (W > 0)
            li0[d] = spread::es_values_fixed<W>(kp_, px[d], vals[d]) - delta[d];
          else
            li0[d] = spread::es_values(kp_, px[d], vals[d]) - delta[d];
        }
        for (int bb = 0; bb < B; ++bb) {
          const cplx cj = c[bb * M_ + j];
          cplx* bufb = buf.data() + padded * bb;
          if (dim == 1) {
            for (int i0 = 0; i0 < wl; ++i0) bufb[li0[0] + i0] += cj * vals[0][i0];
          } else if (dim == 2) {
            for (int i1 = 0; i1 < wl; ++i1) {
              const cplx c1 = cj * vals[1][i1];
              const std::int64_t row = (li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < wl; ++i0) bufb[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          } else {
            for (int i2 = 0; i2 < wl; ++i2) {
              const cplx c2 = cj * vals[2][i2];
              for (int i1 = 0; i1 < wl; ++i1) {
                const cplx c1 = c2 * vals[1][i1];
                const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
                for (int i0 = 0; i0 < wl; ++i0)
                  bufb[row + li0[0] + i0] += c1 * vals[0][i0];
              }
            }
          }
        }
      }
      // Merge into the fine grid, wrap resolved once per contiguous row run
      // (the same for_padded_rows helper as the device SM writeback).
      const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);
      auto merge_rows = [&](auto DC) {
        constexpr int DIM = decltype(DC)::value;
        spread::detail::for_padded_rows<DIM, T>(
            grid_, p, delta, 0, nrows,
            [&](std::size_t src, std::int64_t dst, std::int64_t run) {
              for (int bb = 0; bb < B; ++bb) {
                const cplx* bufb = buf.data() + padded * bb;
                cplx* fwb = fw_.data() + ftot * bb;
                for (std::int64_t i = 0; i < run; ++i) {
                  const cplx v = bufb[src + i];
                  if (v == cplx(0, 0)) continue;
                  atomic_add_cplx(&fwb[dst + i], v);
                }
              }
            });
      };
      spread::detail::dispatch_dim(
          dim, [&] { merge_rows(std::integral_constant<int, 1>{}); },
          [&] { merge_rows(std::integral_constant<int, 2>{}); },
          [&] { merge_rows(std::integral_constant<int, 3>{}); });
    });
  };
  if (!spread::detail::dispatch_width(kp_.w, run)) run(std::integral_constant<int, 0>{});
}

template <typename T>
void CpuPlan<T>::interp_sorted(cplx* c, int B) {
  const int dim = grid_.dim;
  const int w = kp_.w;
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  pool_->parallel_for(0, M_, [&](std::size_t jj, std::size_t) {
    const std::size_t j = order_.empty() ? jj : order_[jj];
    T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
    T vals[3][spread::kMaxWidth];
    std::int64_t idx[3][spread::kMaxWidth];
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l0 = spread::es_values(kp_, px[d], vals[d]);
      for (int i = 0; i < w; ++i) idx[d][i] = spread::wrap_index(l0 + i, grid_.nf[d]);
    }
    for (int bb = 0; bb < B; ++bb) {
      const cplx* fwb = fw_.data() + ftot * bb;
      cplx acc(0, 0);
      if (dim == 1) {
        for (int i0 = 0; i0 < w; ++i0) acc += fwb[idx[0][i0]] * vals[0][i0];
      } else if (dim == 2) {
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = idx[1][i1] * grid_.nf[0];
          cplx rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0) rowacc += fwb[row + idx[0][i0]] * vals[0][i0];
          acc += rowacc * vals[1][i1];
        }
      } else {
        for (int i2 = 0; i2 < w; ++i2) {
          cplx planeacc(0, 0);
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (idx[2][i2] * grid_.nf[1] + idx[1][i1]) * grid_.nf[0];
            cplx rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += fwb[row + idx[0][i0]] * vals[0][i0];
            planeacc += rowacc * vals[1][i1];
          }
          acc += planeacc * vals[2][i2];
        }
      }
      c[bb * M_ + j] = acc;
    }
  }, 64);
}

template <typename T>
void CpuPlan<T>::deconvolve_type1(cplx* f, int B) {
  const auto& N = N_;
  const auto& nf = grid_.nf;
  const int mo = opts_.modeord;
  const std::int64_t ntot = modes_total();
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  pool_->parallel_for(0, static_cast<std::size_t>(ntot), [&](std::size_t i, std::size_t) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % N[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / N[0]) % N[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (N[0] * N[1]);
    const std::int64_t k0 = spread::index_to_mode(i0, N[0], mo);
    const std::int64_t k1 = spread::index_to_mode(i1, N[1], mo);
    const std::int64_t k2 = spread::index_to_mode(i2, N[2], mo);
    const std::int64_t g0 = spread::wrap_index(k0, nf[0]);
    const std::int64_t g1 = spread::wrap_index(k1, nf[1]);
    const std::int64_t g2 = spread::wrap_index(k2, nf[2]);
    const T p =
        fser_[0][k0 + N[0] / 2] * fser_[1][k1 + N[1] / 2] * fser_[2][k2 + N[2] / 2];
    const std::size_t lin =
        static_cast<std::size_t>(g0 + nf[0] * (g1 + nf[1] * g2));
    for (int b = 0; b < B; ++b)
      f[b * static_cast<std::size_t>(ntot) + i] = fw_[ftot * b + lin] * p;
  }, 1024);
}

template <typename T>
void CpuPlan<T>::execute(cplx* c, cplx* f) {
  const int B = std::max(1, opts_.ntransf);
  if (M_ == 0) {
    if (type_ == 1)
      for (std::int64_t i = 0; i < B * modes_total(); ++i) f[i] = cplx(0, 0);
    return;
  }
  bd_.spread = bd_.fft = bd_.deconvolve = bd_.interp = 0;
  // One stage pipeline for every batch size, mirroring the device library.
  const std::size_t ftot = static_cast<std::size_t>(grid_.total());
  Timer t;
  if (type_ == 1) {
    std::fill(fw_.begin(), fw_.end(), cplx(0, 0));
    spread_sorted(c, B);
    bd_.spread = t.seconds();
    t.reset();
    fft_->exec_batch(fw_.data(), static_cast<std::size_t>(B), ftot, iflag_);
    bd_.fft = t.seconds();
    t.reset();
    deconvolve_type1(f, B);
    bd_.deconvolve = t.seconds();
  } else {
    // Fused amplify + FFT, sharing the row producer with the device library.
    fft_->exec_batch_fused(
        fw_.data(), static_cast<std::size_t>(B), ftot, iflag_,
        [&](cplx* row, std::size_t line, std::size_t b) {
          return spread::amplify_fine_row(
              row, line, f + b * static_cast<std::size_t>(modes_total()), grid_.dim,
              N_, grid_.nf, fser_, opts_.modeord);
        });
    bd_.fft = t.seconds();
    t.reset();
    interp_sorted(c, B);
    bd_.interp = t.seconds();
  }
}

template class CpuPlan<float>;
template class CpuPlan<double>;

}  // namespace cf::cpu
