// FINUFFT-like multithreaded CPU NUFFT — the paper's CPU comparator.
//
// Same ES kernel, width rule, upsampled fine grid (sigma = 2 or 1.25), and
// deconvolution as the device library, but organized the way the parallel
// CPU code is: bin-sorted
// points are spread in subproblems into thread-local padded-bin buffers that
// are merged into the fine grid — by default with the same tile-owned
// atomic-free core/halo scheme as the device library (deterministic at any
// pool size), with FINUFFT's atomic padded-bin merge as the
// Options::tiled_spread = 0 fallback; interpolation is a plain parallel
// gather over sorted points; the FFT runs on the host pool.
//
// Mirrors the device library's stage-pipeline shape: every stage is
// batch-strided (ntransf = B stacked vectors, weights evaluated once per
// point) with B = 1 as the plain single-vector case, the spread point loops
// get the same compile-time width dispatch as the device kernels, and
// type-2's amplify is fused into the FFT's first-axis gather.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "fft/fftnd.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"

namespace cf::cpu {

/// Stage timings (seconds) from the last set_points()/execute().
struct CpuBreakdown {
  double sort = 0;
  double spread = 0;
  double fft = 0;        ///< for type 2 includes the fused amplify
  double deconvolve = 0;
  double interp = 0;
  double total() const { return spread + fft + deconvolve + interp; }
};

/// CPU NUFFT plan; same plan/setpts/execute lifecycle and mode conventions as
/// core::Plan (k from -N/2 to N/2-1 per axis, x-fastest).
template <typename T>
class CpuPlan {
 public:
  using cplx = std::complex<T>;

  struct Options {
    std::uint32_t msub = 16384;           ///< CPU subproblem cap (larger caches)
    std::array<int, 3> binsize{0, 0, 0};  ///< 0 = defaults
    double upsampfac = 2.0;               ///< fine-grid sigma: 2.0 or 1.25
    int ntransf = 1;                      ///< stacked vectors per execute
    int modeord = 0;                      ///< 0 = CMCL (-N/2..), 1 = FFT-style
    int kerevalmeth = 0;                  ///< 0 = exp/sqrt; 1 = Horner table
    int tiled_spread = 1;  ///< 1 = tile-owned atomic-free spread merge (same
                           ///< scheme as the device library: disjoint core
                           ///< writes + fixed-order halo merge, bitwise-
                           ///< deterministic at any pool size); 0 = atomic
                           ///< padded-bin merge (FINUFFT's strategy)
    int tile_chunk_cap = 0;  ///< tiled-spread chunk cap (points per work item),
                             ///< same encoding as the device library: 0 = auto
                             ///< (CF_TILE_CHUNK env override), > 0 = explicit,
                             ///< < 0 = never split a tile
  };

  CpuPlan(ThreadPool& pool, int type, std::span<const std::int64_t> nmodes, int iflag,
          double tol, Options opts = {});

  int type() const { return type_; }
  int dim() const { return grid_.dim; }
  int kernel_width() const { return kp_.w; }
  std::int64_t modes_total() const { return N_[0] * N_[1] * N_[2]; }
  const spread::GridSpec& fine_grid() const { return grid_; }

  /// Copy of the most recent set_points()/execute() snapshot.
  CpuBreakdown last_breakdown() const {
    std::lock_guard lk(mu_);
    return bd_;
  }

  /// Registers M points (host pointers; y/z null below dim 2/3) and bin-sorts.
  void set_points(std::size_t M, const T* x, const T* y, const T* z);

  /// Type 1: reads c (length M), writes f (modes). Type 2: reads f, writes c.
  /// With batch size B > 1, c/f hold B stacked vectors; every stage runs once
  /// over the whole stack. B = 0 (default) uses Options::ntransf; any
  /// positive B works (the service layer coalesces a variable number of
  /// requests), growing the fine-grid stack on first use. Thread-safe like
  /// core::Plan: concurrent executes on a shared plan serialize internally
  /// and each caller receives its own per-execute snapshot.
  CpuBreakdown execute(cplx* c, cplx* f, int B = 0);

 private:
  // Batch-strided stages; B = 1 is the single-vector case. The fused type-2
  // amplify row producer is the shared spread::amplify_fine_row.
  void spread_sorted(const cplx* c, int B);
  void spread_tiled(const cplx* c, int B);
  void build_tile_cache();
  void interp_sorted(cplx* c, int B);
  void deconvolve_type1(cplx* f, int B);

  ThreadPool* pool_;
  int type_;
  int iflag_;
  Options opts_;

  std::array<std::int64_t, 3> N_{1, 1, 1};
  spread::GridSpec grid_;
  spread::BinSpec bins_;
  spread::KernelParams<T> kp_;  ///< kerevalmeth=1 tables live in the
                                ///< process-wide per-(w, sigma) horner_cache
  std::unique_ptr<fft::FftNd<T>> fft_;

  std::vector<cplx> fw_;  ///< fine grid (ntransf stacked planes)
  std::array<std::vector<T>, 3> fser_;

  std::vector<T> xg_, yg_, zg_;
  std::size_t M_ = 0;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> bin_start_;  // size nbins+1

  // Tile-ownership cache for the atomic-free merge, built in set_points
  // (mirrors the device library's build_tile_set): geometry gate, active-bin
  // compaction, and the per-tile arena reused by every execute.
  bool tile_ok_ = false;
  int tile_nb_ = 1;  ///< batch planes held per tile (cap-chunked, like device)
  std::vector<std::uint32_t> tile_active_, tile_slot_of_;
  std::vector<cplx> tile_arena_;

  // Canonical (tile, chunk) split mirroring the device TileSet: overfull bins
  // are cut into balanced point-chunks (pure function of the points, never of
  // the pool size), scheduled largest-first over the pool's work-stealing
  // path; split tiles reduce their chunk planes in fixed chunk order before
  // the core writeback, so the merge stays bitwise-deterministic.
  std::uint32_t chunk_cap_ = 0;  ///< applied cap (UINT32_MAX = no splitting)
  std::vector<std::uint32_t> tile_chunk0_;  ///< slot -> first chunk (size +1)
  std::vector<std::uint32_t> chunk_tile_, chunk_off_, chunk_cnt_, chunk_plane_;
  std::vector<std::uint32_t> chunk_sched_;  ///< chunk ids largest-first
  std::vector<std::uint32_t> split_tile_;   ///< slots with > 1 chunk
  std::vector<cplx> chunk_arena_;  ///< split-chunk planes (plane-major)

  mutable std::mutex mu_;  ///< serializes set_points/execute; guards bd_
  CpuBreakdown bd_;
};

extern template class CpuPlan<float>;
extern template class CpuPlan<double>;

}  // namespace cf::cpu
