// Exact (O(N*M)) nonuniform DFT evaluation — the accuracy ground truth used
// by every test and by the error columns of the benchmark harnesses.
#pragma once

#include <complex>
#include <cstdint>
#include <span>

#include "common/thread_pool.hpp"

namespace cf::cpu {

/// f_k = sum_j c_j exp(iflag * i * k . x_j) for the full mode grid
/// (k from -N/2 to N/2-1 per axis, x-fastest ordering). y/z may be empty for
/// lower dims. Accumulates in double regardless of T.
template <typename T>
void direct_type1(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<const std::complex<T>> c, int iflag,
                  std::span<const std::int64_t> N, std::span<std::complex<T>> f);

/// c_j = sum_k f_k exp(iflag * i * k . x_j); same conventions.
template <typename T>
void direct_type2(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<std::complex<T>> c, int iflag,
                  std::span<const std::int64_t> N, std::span<const std::complex<T>> f);

/// Type-3: f_k = sum_j c_j exp(iflag * i * s_k . x_j) for arbitrary source
/// points x and target frequencies s (paper Sec. VI future work; [30]).
template <typename T>
void direct_type3(ThreadPool& pool, std::span<const T> x, std::span<const T> y,
                  std::span<const T> z, std::span<const std::complex<T>> c, int iflag,
                  std::span<const T> s, std::span<const T> t, std::span<const T> u,
                  std::span<std::complex<T>> f);

/// Relative l2 error ||a - b|| / ||b|| (b is the reference).
template <typename T>
double rel_l2_error(std::span<const std::complex<T>> a, std::span<const std::complex<T>> b);

}  // namespace cf::cpu
