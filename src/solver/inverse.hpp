// Inverse NUFFT: iterative least-squares inversion of type-2 sampling.
//
// The paper's Sec. I motivates the plan/setpts/execute interface with
// "iterative methods for NUFFT inversion" — this module packages that use
// case. Given off-grid samples y_j ~ sum_k f_k e^{i iflag k.x_j} (a type-2
// forward model A), recover the modes f by conjugate gradients on the
// (optionally weighted) normal equations
//
//     (A^H W A + lambda I) f = A^H W y,
//
// where A is a type-2 plan, A^H the type-1 plan with the opposite iflag,
// W a diagonal of sample weights (e.g. density compensation), and lambda a
// Tikhonov damping. Each CG iteration costs one type-2 plus one type-1
// execute on points that were sorted once — the "exec" fast path.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "vgpu/device.hpp"

namespace cf::solver {

struct InverseOptions {
  int max_iters = 50;
  double tol = 1e-6;        ///< stop when relative residual norm falls below
  double lambda = 0.0;      ///< Tikhonov damping
  double nufft_tol = 1e-8;  ///< tolerance for the inner transforms
  core::Options plan_opts;  ///< forwarded to both plans
};

struct InverseReport {
  int iters = 0;
  double rel_residual = 0;  ///< ||r|| / ||A^H W y|| at exit
  std::vector<double> history;  ///< per-iteration relative residuals
};

/// CG-based inverse NUFFT operator for a fixed geometry. T = float/double.
template <typename T>
class InverseNufft {
 public:
  using cplx = std::complex<T>;

  /// nmodes: recovered mode grid (dim = 1..3); iflag: sign in the *forward*
  /// (type-2) model.
  InverseNufft(vgpu::Device& dev, std::span<const std::int64_t> nmodes, int iflag,
               InverseOptions opts = {});

  /// Registers the M sample locations (device pointers) and optional
  /// positive weights w (nullptr = unweighted). Sorts once for both plans.
  void set_points(std::size_t M, const T* x, const T* y, const T* z,
                  const T* weights = nullptr);

  /// Solves for f (modes_total() entries) from samples yv (length M).
  /// f's initial content is the starting guess (zeros is fine).
  InverseReport solve(const cplx* yv, cplx* f);

  std::int64_t modes_total() const { return ntot_; }
  std::size_t npoints() const { return M_; }

 private:
  void apply_normal(const cplx* in, cplx* out);  ///< out = (A^H W A + lambda) in

  vgpu::Device* dev_;
  InverseOptions opts_;
  std::int64_t ntot_ = 0;
  std::size_t M_ = 0;
  std::unique_ptr<core::Plan<T>> fwd_;   ///< type 2, iflag
  std::unique_ptr<core::Plan<T>> adj_;   ///< type 1, -iflag
  std::vector<T> weights_;
  std::vector<cplx> sample_ws_;          ///< sample-space workspace
};

extern template class InverseNufft<float>;
extern template class InverseNufft<double>;

}  // namespace cf::solver
