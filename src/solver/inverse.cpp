#include "solver/inverse.hpp"

#include <cmath>
#include <stdexcept>

namespace cf::solver {

template <typename T>
InverseNufft<T>::InverseNufft(vgpu::Device& dev, std::span<const std::int64_t> nmodes,
                              int iflag, InverseOptions opts)
    : dev_(&dev), opts_(opts) {
  ntot_ = 1;
  for (auto n : nmodes) ntot_ *= n;
  // SM applies to type 1 only; for the type-2 forward model fall back to
  // Auto so a user-supplied SM preference still benefits the adjoint.
  core::Options fwd_opts = opts.plan_opts;
  if (fwd_opts.method == core::Method::SM) fwd_opts.method = core::Method::Auto;
  fwd_ = std::make_unique<core::Plan<T>>(dev, 2, nmodes, iflag, opts.nufft_tol,
                                         fwd_opts);
  // The adjoint of e^{+i k.x} sampling is summation with e^{-i k.x}: type 1
  // with the opposite sign.
  adj_ = std::make_unique<core::Plan<T>>(dev, 1, nmodes, -iflag, opts.nufft_tol,
                                         opts.plan_opts);
}

template <typename T>
void InverseNufft<T>::set_points(std::size_t M, const T* x, const T* y, const T* z,
                                 const T* weights) {
  M_ = M;
  fwd_->set_points(M, x, y, z);
  adj_->set_points(M, x, y, z);
  if (weights) {
    weights_.assign(weights, weights + M);
    for (const T w : weights_)
      if (!(w >= 0)) throw std::invalid_argument("InverseNufft: weights must be >= 0");
  } else {
    weights_.clear();
  }
  sample_ws_.resize(M);
}

template <typename T>
void InverseNufft<T>::apply_normal(const cplx* in, cplx* out) {
  // sample_ws = A in ; apply W ; out = A^H sample_ws (+ lambda * in).
  fwd_->execute(sample_ws_.data(), const_cast<cplx*>(in));
  if (!weights_.empty())
    for (std::size_t j = 0; j < M_; ++j) sample_ws_[j] *= weights_[j];
  adj_->execute(sample_ws_.data(), out);
  if (opts_.lambda != 0.0) {
    const T lam = static_cast<T>(opts_.lambda);
    for (std::int64_t i = 0; i < ntot_; ++i) out[i] += lam * in[i];
  }
}

template <typename T>
InverseReport InverseNufft<T>::solve(const cplx* yv, cplx* f) {
  if (M_ == 0) throw std::logic_error("InverseNufft: set_points not called");
  const std::size_t n = static_cast<std::size_t>(ntot_);

  // b = A^H W y.
  std::vector<cplx> b(n);
  for (std::size_t j = 0; j < M_; ++j)
    sample_ws_[j] = weights_.empty() ? yv[j] : yv[j] * weights_[j];
  adj_->execute(sample_ws_.data(), b.data());

  // CG on the (Hermitian positive semidefinite) normal operator.
  std::vector<cplx> r(n), p(n), Ap(n);
  apply_normal(f, Ap.data());  // residual of the starting guess
  double bnorm2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - Ap[i];
    bnorm2 += std::norm(b[i]);
  }
  p = r;
  double rs = 0;
  for (auto& v : r) rs += std::norm(v);
  const double stop2 = opts_.tol * opts_.tol * (bnorm2 > 0 ? bnorm2 : 1.0);

  InverseReport rep;
  rep.history.push_back(std::sqrt(rs / (bnorm2 > 0 ? bnorm2 : 1.0)));
  while (rep.iters < opts_.max_iters && rs > stop2) {
    apply_normal(p.data(), Ap.data());
    std::complex<double> pAp(0, 0);
    for (std::size_t i = 0; i < n; ++i)
      pAp += std::complex<double>(std::conj(p[i]) * Ap[i]);
    if (pAp.real() <= 0) break;  // flat direction: semidefinite operator
    const double alpha = rs / pAp.real();
    double rs_new = 0;
    for (std::size_t i = 0; i < n; ++i) {
      f[i] += static_cast<T>(alpha) * p[i];
      r[i] -= static_cast<T>(alpha) * Ap[i];
      rs_new += std::norm(r[i]);
    }
    const double beta = rs_new / rs;
    rs = rs_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + static_cast<T>(beta) * p[i];
    ++rep.iters;
    rep.history.push_back(std::sqrt(rs / (bnorm2 > 0 ? bnorm2 : 1.0)));
  }
  rep.rel_residual = rep.history.back();
  return rep;
}

template class InverseNufft<float>;
template class InverseNufft<double>;

}  // namespace cf::solver
