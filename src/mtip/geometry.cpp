#include "mtip/geometry.hpp"

#include <cmath>

namespace cf::mtip {

Rotation random_rotation(Rng& rng) {
  // Uniform unit quaternion (Marsaglia) -> rotation matrix.
  double q[4];
  double norm2 = 0;
  do {
    norm2 = 0;
    for (double& qi : q) {
      qi = rng.normal();
      norm2 += qi * qi;
    }
  } while (norm2 < 1e-12);
  const double inv = 1.0 / std::sqrt(norm2);
  const double w = q[0] * inv, x = q[1] * inv, y = q[2] * inv, z = q[3] * inv;
  Rotation r;
  r.m = {{{1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)},
          {2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)},
          {2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)}}};
  return r;
}

std::vector<Rotation> random_rotations(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rotation> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_rotation(rng));
  return out;
}

void ewald_slice_points(const Rotation& R, const DetectorSpec& det, std::vector<double>& x,
                        std::vector<double>& y, std::vector<double>& z) {
  const int n = det.ndet;
  for (int iv = 0; iv < n; ++iv) {
    for (int iu = 0; iu < n; ++iu) {
      // Pixel centers on [-qmax, qmax]^2.
      const double u = det.qmax * (2.0 * (iu + 0.5) / n - 1.0);
      const double v = det.qmax * (2.0 * (iv + 0.5) / n - 1.0);
      const double w = (u * u + v * v) / (2.0 * det.k_beam);  // Ewald lift
      const auto k = R.apply({u, v, w});
      x.push_back(k[0]);
      y.push_back(k[1]);
      z.push_back(k[2]);
    }
  }
}

}  // namespace cf::mtip
