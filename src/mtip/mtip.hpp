// M-TIP single-particle reconstruction pipeline (paper Sec. V).
//
// One MtipRank models one MPI rank: it owns its share of diffraction images
// and a device, and runs the NUFFT-heavy steps of an M-TIP iteration:
//   i)   slicing  — 3D type-2 NUFFT evaluates the model's Fourier transform
//                   on every image's Ewald slice (grid N_slice^3),
//   iii) merging  — two 3D type-1 NUFFTs (values and unit weights) merge the
//                   slice data back onto a uniform grid (N_merge^3),
//   iv)  phasing  — error-reduction iterations with a support constraint.
// Step ii (orientation matching) is not NUFFT-bound and the orientations are
// known here, so it is a no-op in this substrate.
//
// The paper runs these at eps = 1e-12, hence double precision throughout.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "mtip/density.hpp"
#include "mtip/geometry.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::mtip {

struct MtipConfig {
  std::int64_t N_slice = 41;  ///< slicing grid per axis (paper Table II)
  std::int64_t N_merge = 81;  ///< merging grid per axis (paper Table II)
  DetectorSpec det;           ///< per-image detector
  int nimages = 100;          ///< images handled by this rank
  double tol = 1e-12;         ///< paper's M-TIP tolerance
  std::uint64_t seed = 42;
};

/// One rank of the reconstruction. All NUFFT work runs on the given device.
class MtipRank {
 public:
  using cplx = std::complex<double>;

  MtipRank(vgpu::Device& dev, MtipConfig cfg, const BlobDensity& truth);

  std::size_t npoints() const { return M_; }
  const MtipConfig& config() const { return cfg_; }

  /// Builds geometry + data, transfers to the device, and plans/sorts both
  /// NUFFTs. Returns elapsed seconds (the Fig. 9 "setup" time).
  double setup();

  /// Slicing: evaluates the current model on all slices. Returns seconds
  /// (the Fig. 9/Table II type-2 "exec" time).
  double slicing();

  /// Merging: two type-1 NUFFTs — the density-compensated data adjoint
  /// (sum_j w_j y_j e^{i n.x_j}) and the weight/PSF transform (sum_j w_j
  /// e^{i n.x_j}) — exactly the paper's "two 3D type 1 NUFFTs".
  /// Returns seconds.
  double merging();

  /// Normalizes the compensated adjoint into the rank's real-space model
  /// estimate. (After multi-rank reduction in the multi-GPU setting.)
  void finalize_merge();

  /// Error-reduction phasing iterations with the spherical support
  /// constraint. Returns the final real-space support residual.
  double phasing(int iters);

  /// Normalized cross-correlation of the merged real-space model against the
  /// true blob density (reconstruction quality diagnostic, in [-1, 1]).
  double real_space_correlation() const;

  std::vector<cplx>& merged_numerator() { return merged_num_; }
  std::vector<cplx>& merged_weights() { return merged_den_; }
  const std::vector<cplx>& model() const { return model_; }

 private:
  vgpu::Device* dev_;
  MtipConfig cfg_;
  const BlobDensity* truth_;

  // Slice geometry and measurements (host + device copies). dmeas_ holds the
  // density-compensated data w_j*y_j; dweights_ the compensation weights.
  std::vector<double> hx_, hy_, hz_;
  std::vector<cplx> hmeas_;
  vgpu::device_buffer<double> dx_, dy_, dz_;
  vgpu::device_buffer<cplx> dmeas_, dweights_, dslice_out_;
  vgpu::device_buffer<cplx> dslice_grid_, dmerge_grid_;
  double wsum_ = 0;  ///< sum of compensation weights (normalization)
  std::size_t M_ = 0;

  std::unique_ptr<core::Plan<double>> slice_plan_;  // type 2, N_slice^3
  std::unique_ptr<core::Plan<double>> merge_plan_;  // type 1, N_merge^3

  std::vector<cplx> merged_num_, merged_den_, model_;
};

/// Node model for weak scaling (paper Fig. 9): `ngpus` devices, each with
/// cores/ngpus workers; rank r runs on device r % ngpus. Ranks beyond ngpus
/// oversubscribe a device, which is where the paper sees scaling collapse.
struct NodeSpec {
  int ngpus = 8;          ///< Cori GPU: 8 V100 per node (Summit: 6)
  std::size_t cores = 0;  ///< 0 = all host cores
};

struct WeakScalingPoint {
  int nranks = 0;
  double setup_s = 0;   ///< max over ranks
  double slice_s = 0;   ///< max over ranks (type-2 exec)
  double merge_s = 0;   ///< max over ranks (type-1 exec)
};

/// Runs `nranks` concurrent ranks (one thread each, fixed per-rank problem
/// size = weak scaling) and reports per-step times.
WeakScalingPoint run_weak_scaling(int nranks, const MtipConfig& cfg, const NodeSpec& node,
                                  const BlobDensity& truth);

}  // namespace cf::mtip
