#include "mtip/density.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace cf::mtip {

BlobDensity::BlobDensity(int nblobs, double support_radius, std::uint64_t seed)
    : radius_(support_radius) {
  Rng rng(seed);
  blobs_.reserve(nblobs);
  for (int i = 0; i < nblobs; ++i) {
    // Rejection-sample a center inside the ball of radius ~0.7*support so the
    // blob tails stay within the support.
    double cx, cy, cz;
    do {
      cx = rng.uniform(-radius_, radius_);
      cy = rng.uniform(-radius_, radius_);
      cz = rng.uniform(-radius_, radius_);
    } while (cx * cx + cy * cy + cz * cz > 0.49 * radius_ * radius_);
    Blob b;
    b.cx = cx;
    b.cy = cy;
    b.cz = cz;
    b.sigma = rng.uniform(0.05, 0.15) * radius_;
    b.amp = rng.uniform(0.5, 1.5);
    blobs_.push_back(b);
  }
}

double BlobDensity::real_space(double x, double y, double z) const {
  double acc = 0;
  for (const auto& b : blobs_) {
    const double dx = x - b.cx, dy = y - b.cy, dz = z - b.cz;
    acc += b.amp * std::exp(-(dx * dx + dy * dy + dz * dz) / (2 * b.sigma * b.sigma));
  }
  return acc;
}

std::vector<std::complex<double>> BlobDensity::sample_grid(std::int64_t N) const {
  std::vector<std::complex<double>> g(static_cast<std::size_t>(N) * N * N);
  const double h = 2.0 * std::numbers::pi / double(N);
  std::size_t idx = 0;
  for (std::int64_t iz = 0; iz < N; ++iz) {
    const double z = -std::numbers::pi + h * (iz + 0.5);
    for (std::int64_t iy = 0; iy < N; ++iy) {
      const double y = -std::numbers::pi + h * (iy + 0.5);
      for (std::int64_t ix = 0; ix < N; ++ix, ++idx) {
        const double x = -std::numbers::pi + h * (ix + 0.5);
        g[idx] = real_space(x, y, z);
      }
    }
  }
  return g;
}

std::complex<double> BlobDensity::fourier(double kx, double ky, double kz) const {
  // Gaussian FT: amp * (2*pi)^{3/2} sigma^3 exp(-sigma^2 |k|^2/2) exp(-i k.c).
  const double k2 = kx * kx + ky * ky + kz * kz;
  std::complex<double> acc(0, 0);
  constexpr double c0 = 15.749609945722419;  // (2*pi)^{3/2}
  for (const auto& b : blobs_) {
    const double mag =
        b.amp * c0 * b.sigma * b.sigma * b.sigma * std::exp(-0.5 * b.sigma * b.sigma * k2);
    const double phase = -(kx * b.cx + ky * b.cy + kz * b.cz);
    acc += std::complex<double>(mag * std::cos(phase), mag * std::sin(phase));
  }
  return acc;
}

}  // namespace cf::mtip
