#include "mtip/mtip.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <thread>

#include "common/timer.hpp"
#include "fft/fftnd.hpp"

namespace cf::mtip {

MtipRank::MtipRank(vgpu::Device& dev, MtipConfig cfg, const BlobDensity& truth)
    : dev_(&dev), cfg_(cfg), truth_(&truth) {}

double MtipRank::setup() {
  Timer t;
  // Geometry: one Ewald slice per image, orientations from the rank seed.
  const auto rots = random_rotations(static_cast<std::size_t>(cfg_.nimages), cfg_.seed);
  hx_.clear();
  hy_.clear();
  hz_.clear();
  for (const auto& R : rots) ewald_slice_points(R, cfg_.det, hx_, hy_, hz_);
  M_ = hx_.size();

  // Synthetic measurements from the analytic blob transform. NUFFT domain
  // coordinate x maps to physical wavenumber k = x * N_merge / (2*pi).
  // Density compensation w_j ~ |k_j|: slices through the origin sample a
  // shell of radius k with density ~ 1/k, so the compensated adjoint
  // sum_j w_j y_j e^{i n.x_j} approximates the Fourier-inversion integral.
  const double s = double(cfg_.N_merge) / (2.0 * std::numbers::pi);
  hmeas_.resize(M_);
  std::vector<cplx> hweights(M_);
  wsum_ = 0;
  for (std::size_t j = 0; j < M_; ++j) {
    const double kx = hx_[j] * s, ky = hy_[j] * s, kz = hz_[j] * s;
    const double w = std::sqrt(kx * kx + ky * ky + kz * kz) + 0.5;
    hmeas_[j] = truth_->fourier(kx, ky, kz) * w;
    hweights[j] = cplx(w, 0);
    wsum_ += w;
  }

  // Host -> device transfers.
  dx_ = vgpu::device_buffer<double>(*dev_, std::span<const double>(hx_));
  dy_ = vgpu::device_buffer<double>(*dev_, std::span<const double>(hy_));
  dz_ = vgpu::device_buffer<double>(*dev_, std::span<const double>(hz_));
  dmeas_ = vgpu::device_buffer<cplx>(*dev_, std::span<const cplx>(hmeas_));
  dweights_ = vgpu::device_buffer<cplx>(*dev_, std::span<const cplx>(hweights));
  dslice_out_ = vgpu::device_buffer<cplx>(*dev_, M_);

  const std::int64_t ns3 = cfg_.N_slice * cfg_.N_slice * cfg_.N_slice;
  const std::int64_t nm3 = cfg_.N_merge * cfg_.N_merge * cfg_.N_merge;
  dslice_grid_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(ns3));
  dmerge_grid_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(nm3));

  // Plans: slicing is type 2 on the N_slice grid; merging is type 1 on the
  // N_merge grid; both reuse the same nonuniform points (sorted once here).
  const std::int64_t ns[3] = {cfg_.N_slice, cfg_.N_slice, cfg_.N_slice};
  const std::int64_t nm[3] = {cfg_.N_merge, cfg_.N_merge, cfg_.N_merge};
  slice_plan_ = std::make_unique<core::Plan<double>>(*dev_, 2, std::span(ns, 3), -1,
                                                     cfg_.tol);
  merge_plan_ = std::make_unique<core::Plan<double>>(*dev_, 1, std::span(nm, 3), +1,
                                                     cfg_.tol);
  slice_plan_->set_points(M_, dx_.data(), dy_.data(), dz_.data());
  merge_plan_->set_points(M_, dx_.data(), dy_.data(), dz_.data());

  // Initial Fourier model on the slicing grid: the merged data (zeros until
  // the first merge), seeded here with the measurements' band via the truth
  // so slicing has sensible input.
  std::fill(dslice_grid_.data(), dslice_grid_.data() + ns3, cplx(0, 0));
  return t.seconds();
}

double MtipRank::slicing() {
  Timer t;
  slice_plan_->execute(dslice_out_.data(), dslice_grid_.data());
  return t.seconds();
}

double MtipRank::merging() {
  Timer t;
  merged_num_.resize(dmerge_grid_.size());
  merged_den_.resize(dmerge_grid_.size());
  merge_plan_->execute(dmeas_.data(), dmerge_grid_.data());
  dmerge_grid_.copy_to_host(merged_num_);
  merge_plan_->execute(dweights_.data(), dmerge_grid_.data());
  dmerge_grid_.copy_to_host(merged_den_);
  return t.seconds();
}

void MtipRank::finalize_merge() {
  // The type-1 output at mode n is sum_j w_j y_j e^{i n.x_j}; since
  // x_j = k_j * 2*pi/N, this is the compensated Fourier-inversion sum at the
  // real-space grid point r_n = n * 2*pi/N, i.e. a real-space model estimate
  // (up to an overall scale, normalized here by the weight sum).
  model_.resize(merged_num_.size());
  const double inv = wsum_ > 0 ? 1.0 / wsum_ : 1.0;
  for (std::size_t i = 0; i < merged_num_.size(); ++i) model_[i] = merged_num_[i] * inv;
}

double MtipRank::real_space_correlation() const {
  // Pearson correlation of Re(model) with the true density over the grid.
  const std::int64_t N = cfg_.N_merge;
  const double h = 2.0 * std::numbers::pi / double(N);
  double sm = 0, st = 0, smm = 0, stt = 0, smt = 0;
  std::size_t n = 0;
  for (std::int64_t iz = 0; iz < N; ++iz) {
    const double z = double(iz - N / 2) * h;
    for (std::int64_t iy = 0; iy < N; ++iy) {
      const double y = double(iy - N / 2) * h;
      for (std::int64_t ix = 0; ix < N; ++ix, ++n) {
        const double x = double(ix - N / 2) * h;
        const double m = model_[static_cast<std::size_t>(ix + N * (iy + N * iz))].real();
        const double t = truth_->real_space(x, y, z);
        sm += m;
        st += t;
        smm += m * m;
        stt += t * t;
        smt += m * t;
      }
    }
  }
  const double dn = double(n);
  const double cov = smt - sm * st / dn;
  const double vm = smm - sm * sm / dn;
  const double vt = stt - st * st / dn;
  return (vm > 0 && vt > 0) ? cov / std::sqrt(vm * vt) : 0.0;
}

double MtipRank::phasing(int iters) {
  // Error reduction on the real-space model (index i <-> r = (i - N/2)*h):
  // alternate the Fourier-modulus constraint (modulus of the merged
  // estimate's transform plays the role of the measured intensities) with
  // the real-space support/realness/positivity projection.
  const std::int64_t N = cfg_.N_merge;
  const std::size_t total = model_.size();
  fft::FftNd<double> fftp(dev_->pool(), {static_cast<std::size_t>(N),
                                         static_cast<std::size_t>(N),
                                         static_cast<std::size_t>(N)});
  const double h = 2.0 * std::numbers::pi / double(N);
  const double rad2 = truth_->support_radius() * truth_->support_radius();

  // Measured moduli from the merged estimate.
  std::vector<cplx> fhat = model_;
  fftp.exec(fhat.data(), -1);
  std::vector<double> modulus(total);
  for (std::size_t i = 0; i < total; ++i) modulus[i] = std::abs(fhat[i]);

  std::vector<cplx> g = model_;
  double resid = 0;
  for (int it = 0; it < iters; ++it) {
    // Real-space projection; track the out-of-support mass fraction.
    double out_of_support = 0, in_support = 0;
    for (std::int64_t iz = 0; iz < N; ++iz) {
      const double z = double(iz - N / 2) * h;
      for (std::int64_t iy = 0; iy < N; ++iy) {
        const double y = double(iy - N / 2) * h;
        for (std::int64_t ix = 0; ix < N; ++ix) {
          const double x = double(ix - N / 2) * h;
          const std::size_t i = static_cast<std::size_t>(ix + N * (iy + N * iz));
          cplx v = g[i];
          const bool inside = x * x + y * y + z * z <= rad2;
          (inside ? in_support : out_of_support) += std::norm(v);
          g[i] = inside ? cplx(std::max(v.real(), 0.0), 0.0) : cplx(0, 0);
        }
      }
    }
    resid = (in_support + out_of_support) > 0
                ? std::sqrt(out_of_support / (in_support + out_of_support))
                : 0;
    // Fourier-modulus projection.
    fftp.exec(g.data(), -1);
    for (std::size_t i = 0; i < total; ++i) {
      const double a = std::abs(g[i]);
      g[i] = a > 1e-300 ? g[i] * (modulus[i] / a) : cplx(modulus[i], 0);
    }
    fftp.exec(g.data(), +1);
    const double scale = 1.0 / double(total);
    for (auto& v : g) v *= scale;
  }
  model_ = g;
  return resid;
}

WeakScalingPoint run_weak_scaling(int nranks, const MtipConfig& cfg, const NodeSpec& node,
                                  const BlobDensity& truth) {
  const std::size_t cores =
      node.cores ? node.cores : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t per_gpu = std::max<std::size_t>(1, cores / node.ngpus);

  // Fixed node hardware: ngpus devices regardless of rank count.
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  for (int g = 0; g < node.ngpus; ++g)
    devices.push_back(std::make_unique<vgpu::Device>(per_gpu));

  std::vector<std::unique_ptr<MtipRank>> ranks;
  for (int r = 0; r < nranks; ++r) {
    MtipConfig c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 1000003ULL;
    ranks.push_back(
        std::make_unique<MtipRank>(*devices[r % node.ngpus], c, truth));
  }

  WeakScalingPoint out;
  out.nranks = nranks;
  std::vector<double> setup(nranks), slice(nranks), merge(nranks);
  // Phase-synchronized: all ranks run each step concurrently (MPI style).
  auto run_phase = [&](auto&& fn) {
    std::vector<std::thread> ts;
    ts.reserve(nranks);
    for (int r = 0; r < nranks; ++r) ts.emplace_back([&, r] { fn(r); });
    for (auto& t : ts) t.join();
  };
  run_phase([&](int r) { setup[r] = ranks[r]->setup(); });
  run_phase([&](int r) { slice[r] = ranks[r]->slicing(); });
  run_phase([&](int r) { merge[r] = ranks[r]->merging(); });
  out.setup_s = *std::max_element(setup.begin(), setup.end());
  out.slice_s = *std::max_element(slice.begin(), slice.end());
  out.merge_s = *std::max_element(merge.begin(), merge.end());
  return out;
}

}  // namespace cf::mtip
