// Orientation and Ewald-sphere slice geometry for the M-TIP reconstruction
// application (paper Sec. V). Each diffraction image measures the Fourier
// transform of the density on a spherical-cap slice through the origin of
// reciprocal space, rotated by the (unknown) molecular orientation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cf::mtip {

/// 3x3 rotation matrix.
struct Rotation {
  std::array<std::array<double, 3>, 3> m;

  std::array<double, 3> apply(const std::array<double, 3>& v) const {
    return {m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2]};
  }
};

/// Uniform random rotation via a uniform unit quaternion.
Rotation random_rotation(Rng& rng);

/// n independent uniform rotations from a deterministic seed.
std::vector<Rotation> random_rotations(std::size_t n, std::uint64_t seed);

/// Geometry of one detector: ndet x ndet pixels covering transverse
/// wavenumbers |q_t| <= qmax (in NUFFT coordinate units, i.e. the usable
/// k-band is [-pi, pi)); the Ewald curvature lifts each pixel to
/// q_z = (q_x^2 + q_y^2) / (2 * k_beam).
struct DetectorSpec {
  int ndet = 32;
  double qmax = 2.0;    ///< transverse band edge; rotated |k| stays < pi*0.91
  double k_beam = 12.0; ///< beam wavenumber; larger = flatter Ewald sphere
};

/// Appends the 3D sample points of one image's Ewald slice, rotated by R,
/// to x/y/z (NUFFT domain coordinates in [-pi, pi)).
void ewald_slice_points(const Rotation& R, const DetectorSpec& det, std::vector<double>& x,
                        std::vector<double>& y, std::vector<double>& z);

}  // namespace cf::mtip
