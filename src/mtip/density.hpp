// Synthetic molecular electron density: a sum of Gaussian blobs inside a
// spherical support. Substitutes the paper's experimental LCLS diffraction
// data — the blobs give an analytic Fourier transform, so slice "measurements"
// can be generated exactly and the NUFFT call pattern is identical.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace cf::mtip {

struct Blob {
  double cx, cy, cz;  ///< center in the real-space box [-pi, pi)^3
  double sigma;       ///< Gaussian width
  double amp;
};

class BlobDensity {
 public:
  /// nblobs random blobs inside a ball of the given radius (< pi).
  BlobDensity(int nblobs, double support_radius, std::uint64_t seed);

  const std::vector<Blob>& blobs() const { return blobs_; }
  double support_radius() const { return radius_; }

  /// Real-space density at a point.
  double real_space(double x, double y, double z) const;

  /// Samples the density on an N^3 grid over [-pi, pi)^3; index n fastest in
  /// x; grid point g = -pi + 2*pi*(i + 0.5)/N per axis.
  std::vector<std::complex<double>> sample_grid(std::int64_t N) const;

  /// Continuous Fourier transform rho_hat(k) = int rho(r) exp(-i k.r) dr
  /// (analytic for Gaussians); used to synthesize slice measurements.
  std::complex<double> fourier(double kx, double ky, double kz) const;

 private:
  std::vector<Blob> blobs_;
  double radius_;
};

}  // namespace cf::mtip
