#include "service/shard_router.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/clock.hpp"

namespace cf::service {

ShardedNufftService::ShardedNufftService(ShardedConfig cfg) : cfg_(cfg) {
  routed_c_ = &metrics_.registry().counter("routed");
  sticky_hits_c_ = &metrics_.registry().counter("sticky_hits");
  migrations_c_ = &metrics_.registry().counter("migrations");
  if (cfg_.shards <= 0) cfg_.shards = env_int_strict("CF_SERVICE_SHARDS", 1, 1, 256);
  cfg_.shard.max_batch = std::max(1, cfg_.shard.max_batch);
  if (cfg_.spill_threshold == 0)
    cfg_.spill_threshold = 2 * static_cast<std::size_t>(cfg_.shard.max_batch);
  if (cfg_.device_workers == 0) {
    // Split the host between the shard devices: the per-call completion
    // tracking in ThreadPool tolerates oversubscription, but splitting keeps
    // the 1-shard and N-shard configurations comparable on one box.
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    cfg_.device_workers =
        std::max<std::size_t>(1, hw / static_cast<std::size_t>(cfg_.shards));
  }

  shards_.resize(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) {
    Shard& sh = shards_[static_cast<std::size_t>(i)];
    sh.dev = std::make_unique<vgpu::Device>(cfg_.device_workers);
    ServiceConfig sc = cfg_.shard;
    // The front tier owns admission (global Block/Shed) and the fulfillment
    // ledger; shards run unbounded and report every served batch back.
    sc.max_outstanding = 0;
    sc.on_fulfilled = [this, i](const GroupKey& key, std::size_t n,
                                std::size_t nfailed) {
      on_fulfilled(i, key, n, nfailed);
    };
    sh.svc = std::make_unique<NufftService>(*sh.dev, sc);
  }
}

ShardedNufftService::~ShardedNufftService() {
  drain();
  // Tear the shards down in the destructor BODY: their flush can still fire
  // on_fulfilled into this router, which must outlive them.
  shards_.clear();
}

std::future<ExecReport> ShardedNufftService::submit(const Request<float>& req) {
  return submit_impl(req);
}

std::future<ExecReport> ShardedNufftService::submit(const Request<double>& req) {
  return submit_impl(req);
}

template <typename T>
std::future<ExecReport> ShardedNufftService::submit_impl(const Request<T>& req) {
  const std::uint64_t trace = obs::trace_begin();
  // Pre-validate with the exact checks a shard would apply: the router only
  // admits requests guaranteed to reach dispatch (and thus to fire
  // on_fulfilled), so the global outstanding ledger can never leak.
  if (const char* bad = validate_request(req)) {
    std::promise<ExecReport> promise;
    auto fut = promise.get_future();
    metrics_.ledger().reject();
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(bad)));
    return fut;
  }

  // O(M [+ K]) signature + fingerprint hashing OUTSIDE the routing lock,
  // computed once and handed to the shard (submit_routed does not re-hash).
  const GroupKey key = make_group_key(req);

  // Global admission: one atomic ledger transition (claim or shed), so a
  // concurrent stats()/obs snapshot is always consistent mid-storm.
  const bool tracing = obs::enabled();
  const double adm_t0 = tracing ? mono::now_us() : 0;
  bool waited = false;
  if (!metrics_.ledger().admit(cfg_.max_outstanding,
                               cfg_.admission == Admission::Block, &waited)) {
    if (tracing)
      obs::span(obs::SpanKind::Admission, trace, adm_t0, mono::now_us() - adm_t0,
                /*arg=*/-1);
    std::promise<ExecReport> promise;
    auto fut = promise.get_future();
    promise.set_exception(
        std::make_exception_ptr(OverloadedError(cfg_.max_outstanding)));
    return fut;
  }
  if (tracing)
    obs::span(obs::SpanKind::Admission, trace, adm_t0, mono::now_us() - adm_t0,
              waited ? 1 : 0);

  int target;
  bool sticky = false, migrated = false;
  {
    std::lock_guard lk(mu_);
    target = route(key.plan, &sticky, &migrated);
  }
  if (tracing) {
    const double now = mono::now_us();
    obs::span(obs::SpanKind::Route, trace, now, 0, target);
    if (migrated) obs::span(obs::SpanKind::RouteMigrate, trace, now, 0, target);
  }
  return shards_[static_cast<std::size_t>(target)].svc->submit_routed(req, key,
                                                                      trace);
}

int ShardedNufftService::route(const PlanKey& key, bool* sticky, bool* migrated) {
  const int n = static_cast<int>(shards_.size());
  const int home = static_cast<int>(PlanKeyHash{}(key) % static_cast<std::size_t>(n));
  auto [it, fresh] = table_.try_emplace(key, Route{home, 0});
  Route& r = it->second;
  if (!fresh) {
    ++sticky_hits_;
    sticky_hits_c_->add(1);
    *sticky = true;
  }

  const std::size_t cur = shards_[static_cast<std::size_t>(r.shard)].outstanding;
  if (n > 1 && cur >= cfg_.spill_threshold) {
    int best = 0;
    for (int i = 1; i < n; ++i)
      if (shards_[static_cast<std::size_t>(i)].outstanding <
          shards_[static_cast<std::size_t>(best)].outstanding)
        best = i;
    // Migrate only when the load the signature does NOT own on its resident
    // shard strictly exceeds the least-loaded shard's total: a lone hot
    // signature saturating its shard has other-load 0 and never migrates
    // (keeping its plan, point cache, and coalescing runway intact), while a
    // signature crowded out by neighbors spills to the idle shard. The
    // signature's own in-flight count may momentarily straddle two shards
    // right after a migration, making this check transiently conservative —
    // harmless for a heuristic that only picks placement, never bits.
    const std::size_t other = cur > r.inflight ? cur - r.inflight : 0;
    if (best != r.shard &&
        other > shards_[static_cast<std::size_t>(best)].outstanding) {
      r.shard = best;
      ++migrations_;
      migrations_c_->add(1);
      *migrated = true;
    }
  }

  ++r.inflight;
  ++shards_[static_cast<std::size_t>(r.shard)].outstanding;
  ++routed_;
  routed_c_->add(1);
  return r.shard;
}

void ShardedNufftService::on_fulfilled(int shard, const GroupKey& key,
                                       std::size_t n, std::size_t nfailed) {
  {
    std::lock_guard lk(mu_);
    Shard& sh = shards_[static_cast<std::size_t>(shard)];
    sh.outstanding -= std::min(n, sh.outstanding);
    if (auto it = table_.find(key.plan); it != table_.end())
      it->second.inflight -= std::min(n, it->second.inflight);
  }
  // The global ledger settles completed/failed and frees the admission slots
  // in one transition (also waking Block submitters and drain() waiters), so
  // front-tier snapshots never tear against shard-tier fulfillment.
  metrics_.ledger().fulfill(n, nfailed);
}

void ShardedNufftService::drain() { metrics_.ledger().wait_drained(); }

std::size_t ShardedNufftService::outstanding() const {
  return metrics_.ledger().outstanding();
}

ShardedStats ShardedNufftService::stats() const {
  ShardedStats s;
  const obs::Ledger::Snap led = metrics_.ledger().snap();
  std::lock_guard lk(mu_);
  s.routed = routed_;
  s.sticky_hits = sticky_hits_;
  s.migrations = migrations_;
  s.front_shed = led.shed;
  s.shards.reserve(shards_.size());
  s.shard_outstanding.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    s.shards.push_back(sh.svc->stats());
    s.shard_outstanding.push_back(sh.outstanding);
  }
  // Roll-up: the front ledger is the global source of truth for the request
  // lifecycle counters (one consistent snapshot — shard-tier failures flow
  // back through on_fulfilled), while the work counters sum the shards.
  s.total.submitted = led.submitted;
  s.total.completed = led.completed;
  s.total.failed = led.failed;
  s.total.shed = led.shed;
  for (const ServiceStats& st : s.shards) {
    s.total.batches += st.batches;
    s.total.batched_requests += st.batched_requests;
    s.total.max_batch_seen = std::max(s.total.max_batch_seen, st.max_batch_seen);
    s.total.plan_hits += st.plan_hits;
    s.total.plan_misses += st.plan_misses;
    s.total.plan_evictions += st.plan_evictions;
    s.total.setpts_builds += st.setpts_builds;
    s.total.setpts_reuses += st.setpts_reuses;
  }
  return s;
}

}  // namespace cf::service
