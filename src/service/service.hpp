// Concurrent NUFFT service layer: plan registry + request coalescing +
// async futures (the ROADMAP "serve heavy traffic" north star).
//
// The paper's many-vector batching amortizes all point handling — tap
// evaluation, bin-sorted streaming, the tile-owned writeback — across the
// ntransf stacked vectors of ONE caller's execute. NufftService makes that
// amortization happen automatically ACROSS callers: submit() hands back a
// std::future immediately; dispatch workers coalesce every pending request
// with the same transform signature and point set into one batched execute
// (ntransf = number of coalesced requests) and scatter the planes back
// per-future. A signature-keyed LRU plan registry reuses plan construction,
// and point-set fingerprinting reuses set_points (the expensive bin-sort /
// tap-table / tile-set precomputation) across requests and batches.
//
// Determinism: with the default tiled spread the batched execute is
// bitwise-deterministic and treats every plane independently, so a response
// is bitwise-identical whether it ran alone, in any batch composition, at
// any position, and at any service/worker thread count.
//
// Threading: dispatch workers only gather/scatter and block in
// Plan::execute; the actual kernels run on the device's worker pool, whose
// per-call completion tracking lets concurrent executes share the pool
// without oversubscribing the host (see common/thread_pool.hpp).
//
// Usage:
//   vgpu::Device dev;
//   service::NufftService svc(dev);
//   service::Request<float> req;
//   req.type = 1; req.modes = {64, 64}; req.tol = 1e-5;
//   req.M = M; req.x = x; req.y = y; req.input = c; req.output = f;
//   auto fut = svc.submit(req);       // caller buffers live until get()
//   fut.get();                        // throws on invalid requests
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "obs/obs.hpp"
#include "service/request_queue.hpp"

namespace cf::service {

/// Admission policy once ServiceConfig::max_outstanding is reached.
enum class Admission : std::uint8_t {
  Block = 0,  ///< backpressure: submit() blocks until a slot frees
  Shed = 1,   ///< fail fast: the future throws OverloadedError, submit() never blocks
};

/// Request latency class.
enum class Priority : std::uint8_t {
  Bulk = 0,         ///< throughput traffic: rides the coalescing window
  Interactive = 1,  ///< latency traffic: closes windows early, jumps the ready FIFO
};

/// Delivered through the future when Admission::Shed rejects a submission at
/// the max_outstanding cap. A distinct type (not std::invalid_argument) so
/// callers can tell "overloaded, retry later" from "bad request".
class OverloadedError : public std::runtime_error {
 public:
  explicit OverloadedError(std::size_t cap)
      : std::runtime_error("NufftService: shed at max_outstanding = " +
                           std::to_string(cap)) {}
};

/// Per-service observability knobs (see src/obs/obs.hpp). Tracing is
/// process-global and OFF by default; metrics are always on (their cost is a
/// few relaxed atomic adds per request).
struct ObsOptions {
  /// Trace spans: 1 = enable, 0 = force off, -1 (default) = auto — enable
  /// iff the strict-parsed CF_TRACE env knob is 1. Note the underlying
  /// switch is process-global (obs::set_enabled), so an explicit 0/1 here
  /// flips it for every service in the process.
  int trace = -1;
  /// Slow-request log threshold in milliseconds: any request whose
  /// end-to-end latency crosses it gets its span chain printed to stderr.
  /// 0 disables; negative (default) = auto — read CF_SLOW_MS (ms), else off.
  double slow_request_ms = -1;
};

struct ServiceConfig {
  /// Dispatch worker count; 0 reads CF_SERVICE_THREADS (else 2). More
  /// workers overlap independent signatures; one worker maximizes
  /// coalescing for a single hot signature.
  int threads = 0;
  std::size_t max_plans = 16;  ///< LRU plan registry capacity
  int max_batch = 8;           ///< coalescing cap = plan ntransf
  /// Extra time a dispatcher waits (measured from a group's oldest pending
  /// request) so near-simultaneous same-signature submitters coalesce.
  /// Negative (default) = auto: read CF_SERVICE_WINDOW_US, else 0. 0 =
  /// dispatch whatever is queued, which under sustained load already batches.
  std::chrono::microseconds coalesce_window{-1};
  /// true: the window closes early when the batch is full, the group holds
  /// an interactive request, or the service is otherwise idle (see
  /// RequestQueue::pop_ready) — pay window latency only when a coalescing
  /// partner could actually show up. false: fixed window (ablation
  /// baseline); shutdown still interrupts it.
  bool adaptive_window = true;
  /// Admission cap: submitted-but-unfulfilled requests the service holds
  /// before `admission` applies. 0 = unbounded (memory grows with the
  /// submit/serve rate gap — fine for bounded clients, not for open load).
  std::size_t max_outstanding = 0;
  Admission admission = Admission::Block;
  ObsOptions observability;
  /// Internal hook for the sharded front tier: invoked by the dispatcher
  /// right after a batch's admission slots are freed (before its promises
  /// resolve), once per batch with the group key, the number of requests
  /// served, and how many of them failed (0 or n — a batch fails as a unit).
  /// Runs on the dispatch thread — keep it cheap and never call back into
  /// this service from it.
  std::function<void(const GroupKey&, std::size_t n, std::size_t nfailed)>
      on_fulfilled;
};

/// Service counters (monotonic since construction).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;      ///< futures fulfilled with a result
  std::uint64_t failed = 0;         ///< futures fulfilled with an exception
  std::uint64_t shed = 0;           ///< rejected at max_outstanding (subset of failed)
  std::uint64_t batches = 0;        ///< coalesced executes dispatched
  std::uint64_t batched_requests = 0;  ///< requests those executes served
  std::uint64_t max_batch_seen = 0; ///< largest coalesced batch so far
  std::uint64_t plan_hits = 0;      ///< registry signature hits
  std::uint64_t plan_misses = 0;    ///< plans constructed
  std::uint64_t plan_evictions = 0; ///< LRU evictions
  std::uint64_t setpts_builds = 0;  ///< set_points actually run
  std::uint64_t setpts_reuses = 0;  ///< dispatches served by a fingerprint hit
};

/// One transform request. All pointers are borrowed and must stay valid
/// until the returned future resolves. ntransf in `opts` is ignored — the
/// service chooses the batch size by coalescing.
template <typename T>
struct Request {
  int type = 1;                     ///< 1, 2, or 3
  /// N per axis (size = dim, 1..3). Type 3 has no mode grid: modes then only
  /// fixes the dimension (entry values are ignored by the plan signature).
  std::vector<std::int64_t> modes;
  int iflag = 1;                    ///< +1 or -1; 0 is rejected (ambiguous)
  double tol = 1e-6;
  core::Options opts{};
  Backend backend = Backend::Device;
  Priority priority = Priority::Bulk;
  std::size_t M = 0;
  const T* x = nullptr;
  const T* y = nullptr;  ///< required for dim >= 2
  const T* z = nullptr;  ///< required for dim >= 3
  /// Type-3 target frequencies (required iff type == 3; device backend only).
  std::size_t K = 0;
  const T* s = nullptr;
  const T* t = nullptr;  ///< required for dim >= 2
  const T* u = nullptr;  ///< required for dim >= 3
  const std::complex<T>* input = nullptr;  ///< type 1/3: c[M]; type 2: f[prod(N)]
  std::complex<T>* output = nullptr;  ///< type 1: f[prod(N)]; type 2: c[M]; type 3: f[K]
};

/// Structural validation shared by NufftService::submit and the sharded
/// front tier (which must admit only requests guaranteed to reach dispatch,
/// so its global outstanding ledger never leaks). Returns nullptr when the
/// request can be keyed and dispatched, else the rejection message.
template <typename T>
const char* validate_request(const Request<T>& req);

/// Builds the (plan signature, point fingerprint) coalescing key exactly as
/// submit would — O(M [+ K]) hashing, so front tiers call it once and hand
/// the result to submit_routed.
template <typename T>
GroupKey make_group_key(const Request<T>& req);

class NufftService {
 public:
  explicit NufftService(vgpu::Device& dev, ServiceConfig cfg = {});

  /// Stops the dispatch workers after flushing every queued request
  /// (futures are always fulfilled). Residual coalescing windows are closed
  /// immediately, so destruction never waits them out.
  ~NufftService();

  NufftService(const NufftService&) = delete;
  NufftService& operator=(const NufftService&) = delete;

  /// Enqueues a transform; returns immediately unless the service is at
  /// max_outstanding under Admission::Block (backpressure: blocks until a
  /// slot frees). The future yields the request's ExecReport, or rethrows
  /// the dispatch failure (bad type / modes / method — the same
  /// std::invalid_argument a direct Plan would throw, plus eager rejection
  /// of missing buffers and iflag == 0), or OverloadedError when
  /// Admission::Shed rejects the request at the cap.
  std::future<ExecReport> submit(const Request<float>& req);
  std::future<ExecReport> submit(const Request<double>& req);

  /// Front-tier entry: enqueue an ALREADY validated request whose group key
  /// was computed by make_group_key — skips re-validation, re-hashing, and
  /// this service's admission gate (the sharded tier owns admission
  /// globally). Every request accepted here reaches dispatch and fires
  /// ServiceConfig::on_fulfilled exactly once as part of a batch. `trace`
  /// carries the obs trace ID the front tier minted at its own submit (0
  /// when tracing is off), so the request's span chain crosses the tiers.
  template <typename T>
  std::future<ExecReport> submit_routed(const Request<T>& req, const GroupKey& key,
                                        std::uint64_t trace = 0);

  /// Blocks until every submitted request has been fulfilled.
  void drain();

  int n_threads() const { return static_cast<int>(workers_.size()); }
  const ServiceConfig& config() const { return cfg_; }
  /// ServiceStats is a VIEW over the obs metrics bundle: the ledger counters
  /// (submitted/completed/failed/shed) come from one consistent snapshot, so
  /// submitted == completed + failed holds whenever outstanding() == 0 — and
  /// submitted == completed + failed + outstanding holds at ANY instant.
  ServiceStats stats() const;
  /// Admitted but not yet fulfilled requests (the drain/admission ledger).
  std::size_t outstanding() const;
  /// This service's observability bundle (ledger + counters + histograms).
  const obs::ServiceMetrics& metrics() const { return metrics_; }

 private:
  template <typename T>
  std::future<ExecReport> submit_impl(const Request<T>& req);
  template <typename T>
  std::future<ExecReport> enqueue(const Request<T>& req, const GroupKey& key,
                                  std::uint64_t trace,
                                  std::promise<ExecReport> promise,
                                  std::future<ExecReport> fut);
  void worker_loop();
  template <typename T>
  void dispatch(Group& g, std::vector<Pending> batch);
  void fulfilled(const GroupKey& key, std::size_t n, std::size_t nfailed);

  vgpu::Device* dev_;
  ServiceConfig cfg_;
  /// Ledger (admission/drain source of truth) + counters + histograms.
  /// Declared before registry_/queue_ so the pointers they bind outlive them.
  obs::ServiceMetrics metrics_{"service"};
  PlanRegistry registry_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
  double slow_ms_ = 0;  ///< resolved slow-request log threshold (0 = off)
};

}  // namespace cf::service
