#include "service/service.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace cf::service {

/// Strict env parse: anything that is not a whole integer in [min_v, max_v]
/// gets a one-line stderr diagnostic and the fallback. (The old atoi path
/// silently treated CF_SERVICE_THREADS="four" as "use the default", which
/// hides deployment typos behind correct-looking behavior.)
int env_int_strict(const char* name, int fallback, int min_v, int max_v) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || n < min_v || n > max_v) {
    std::fprintf(stderr,
                 "NufftService: ignoring invalid %s='%s' (want an integer in "
                 "[%d, %d]); using %d\n",
                 name, v, min_v, max_v, fallback);
    return fallback;
  }
  return static_cast<int>(n);
}

namespace {

int resolve_threads(int configured) {
  if (configured > 0) return configured;
  return env_int_strict("CF_SERVICE_THREADS", 2, 1, 4096);
}

std::int64_t modes_product(const PlanKey& key) {
  std::int64_t n = 1;
  for (int d = 0; d < key.dim; ++d) n *= key.N[d];
  return n;
}

}  // namespace

NufftService::NufftService(vgpu::Device& dev, ServiceConfig cfg)
    : dev_(&dev), cfg_(cfg), registry_(cfg.max_plans) {
  cfg_.threads = resolve_threads(cfg_.threads);
  cfg_.max_batch = std::max(1, cfg_.max_batch);
  // Negative window = auto: the CF_SERVICE_WINDOW_US env knob, else no
  // window. An explicit config value (>= 0) always wins over the env.
  if (cfg_.coalesce_window.count() < 0)
    cfg_.coalesce_window = std::chrono::microseconds(
        env_int_strict("CF_SERVICE_WINDOW_US", 0, 0, 10'000'000));
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int t = 0; t < cfg_.threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

NufftService::~NufftService() {
  // Signal stop FIRST: pop_ready skips/closes coalescing windows once stop_
  // is set, and workers keep popping until the ready FIFO is empty, so every
  // queued request is still fulfilled — just without waiting out residual
  // windows. (The old drain()-then-shutdown() order made a destructing
  // service with a nonzero window stall up to window x groups.)
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

std::future<ExecReport> NufftService::submit(const Request<float>& req) {
  return submit_impl(req);
}

std::future<ExecReport> NufftService::submit(const Request<double>& req) {
  return submit_impl(req);
}

// Eager rejection of structurally unusable requests (the dispatcher could
// not even form a signature or touch the buffers); everything else — bad
// type, bad modes, method constraints — fails in plan construction on the
// dispatch thread and reaches the caller through the request future.
template <typename T>
const char* validate_request(const Request<T>& req) {
  const int dim = static_cast<int>(req.modes.size());
  if (dim < 1 || dim > 3) return "NufftService: dim must be 1..3";
  if (req.iflag == 0)
    // The plan key folds iflag to its sign; accepting 0 would silently serve
    // the +1 transform for a request that never chose a direction.
    return "NufftService: iflag must be +1 or -1 (0 is ambiguous)";
  if (!req.input || !req.output) return "NufftService: input/output required";
  if (req.M > 0 && (!req.x || (dim >= 2 && !req.y) || (dim >= 3 && !req.z)))
    return "NufftService: coordinate arrays required for M > 0";
  if (req.type == 3) {
    // Type3Plan::set_points rejects empty point sets anyway; rejecting here
    // keeps the front-tier promise that every admitted request dispatches.
    if (req.M == 0 || req.K == 0)
      return "NufftService: type 3 requires nonempty source and target sets";
    if (!req.s || (dim >= 2 && !req.t) || (dim >= 3 && !req.u))
      return "NufftService: target frequency arrays required for type 3";
    if (req.backend == Backend::Cpu)
      return "NufftService: type-3 requests run on the device backend only";
  }
  return nullptr;
}

template <typename T>
GroupKey make_group_key(const Request<T>& req) {
  const int dim = static_cast<int>(req.modes.size());
  GroupKey key;
  key.plan = make_plan_key<T>(req.backend, req.type, dim, req.modes.data(), req.iflag,
                              req.tol, req.opts);
  // O(M) hash on the SUBMITTING thread: fingerprint work parallelizes across
  // callers instead of serializing on the dispatchers.
  key.fingerprint =
      req.type == 3
          ? point_fingerprint3<T>(dim, req.M, req.x, req.y, req.z, req.K, req.s,
                                  req.t, req.u)
          : point_fingerprint<T>(dim, req.M, req.x, req.y, req.z);
  return key;
}

template <typename T>
std::future<ExecReport> NufftService::submit_impl(const Request<T>& req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<ExecReport> promise;
  auto fut = promise.get_future();

  if (const char* bad = validate_request(req)) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(bad)));
    return fut;
  }

  const GroupKey key = make_group_key(req);

  // Admission gate. The fingerprint above ran OUTSIDE the lock on purpose:
  // a Shed rejection still cost O(M), but a Block wait never serializes
  // other submitters' hashing.
  {
    std::unique_lock lk(drain_mu_);
    if (cfg_.max_outstanding > 0 && outstanding_ >= cfg_.max_outstanding) {
      if (cfg_.admission == Admission::Shed) {
        lk.unlock();
        // Shed requests count in failed too, so the invariant
        // submitted == completed + failed survives every policy; `shed`
        // refines failed with the overload share.
        shed_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(1, std::memory_order_relaxed);
        promise.set_exception(
            std::make_exception_ptr(OverloadedError(cfg_.max_outstanding)));
        return fut;
      }
      drain_cv_.wait(lk, [&] { return outstanding_ < cfg_.max_outstanding; });
    }
    ++outstanding_;
  }
  return enqueue(req, key, std::move(promise), std::move(fut));
}

template <typename T>
std::future<ExecReport> NufftService::submit_routed(const Request<T>& req,
                                                    const GroupKey& key) {
  // The front tier validated and keyed the request (and owns admission
  // globally), so this path never rejects and never blocks: it only claims
  // the drain ledger slot and enqueues.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<ExecReport> promise;
  auto fut = promise.get_future();
  {
    std::lock_guard lk(drain_mu_);
    ++outstanding_;
  }
  return enqueue(req, key, std::move(promise), std::move(fut));
}

template <typename T>
std::future<ExecReport> NufftService::enqueue(const Request<T>& req,
                                              const GroupKey& key,
                                              std::promise<ExecReport> promise,
                                              std::future<ExecReport> fut) {
  Pending p;
  p.M = req.M;
  p.x = req.x;
  p.y = req.y;
  p.z = req.z;
  p.K = req.K;
  p.s = req.s;
  p.t = req.t;
  p.u = req.u;
  p.input = req.input;
  p.output = req.output;
  p.interactive = req.priority == Priority::Interactive;
  p.promise = std::move(promise);
  queue_.push(key, std::move(p));
  return fut;
}

void NufftService::worker_loop() {
  while (auto g = queue_.pop_ready(cfg_.coalesce_window, cfg_.max_batch,
                                   cfg_.adaptive_window)) {
    auto batch = queue_.take_batch(g, cfg_.max_batch);
    if (!batch.empty()) {
      if (g->key.plan.precision == 1)
        dispatch<double>(*g, std::move(batch));
      else
        dispatch<float>(*g, std::move(batch));
    }
    queue_.finish(g);
  }
}

// Serves one coalesced batch: acquire (or build) the signature's plan, reuse
// or rebuild its point set, gather the requests' inputs into one stacked
// buffer, run ONE batched execute with ntransf = batch size, and scatter the
// planes back through the futures.
template <typename T>
void NufftService::dispatch(Group& g, std::vector<Pending> batch) {
  const int B = static_cast<int>(batch.size());
  // Coordinates come from a request IN THIS BATCH (its future is still
  // pending, so its buffers are alive) — never from an earlier arrival
  // whose future may already have been consumed and its buffers freed.
  const Pending& head = batch.front();
  ExecReport report;
  std::exception_ptr err;
  try {
    auto entry = registry_.acquire(g.key.plan);
    std::lock_guard plan_lk(entry->mu);
    const bool plan_reused = entry->plan != nullptr;
    if (!entry->plan)
      entry->plan = make_backend_plan(g.key.plan, *dev_, cfg_.max_batch);
    auto& plan = static_cast<TypedPlan<T>&>(*entry->plan);

    const bool type3 = g.key.plan.type == 3;
    const bool points_reused = entry->fingerprint == g.key.fingerprint &&
                               entry->M == head.M && entry->K == head.K;
    if (!points_reused) {
      if (type3)
        plan.set_points3(head.M, static_cast<const T*>(head.x),
                         static_cast<const T*>(head.y), static_cast<const T*>(head.z),
                         head.K, static_cast<const T*>(head.s),
                         static_cast<const T*>(head.t), static_cast<const T*>(head.u));
      else
        plan.set_points(head.M, static_cast<const T*>(head.x),
                        static_cast<const T*>(head.y), static_cast<const T*>(head.z));
      entry->fingerprint = g.key.fingerprint;
      entry->M = head.M;
      entry->K = head.K;  // 0 for types 1/2
      setpts_builds_.fetch_add(1, std::memory_order_relaxed);
    } else {
      setpts_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    entry->executes += 1;

    const std::size_t ntot = static_cast<std::size_t>(modes_product(g.key.plan));
    const std::size_t nc = head.M, nf = ntot;
    const bool type1 = g.key.plan.type == 1;
    core::Breakdown bd;
    if (type3) {
      // Type 3 has no batched pipeline (yet): coalescing amortizes the
      // geometry-heavy set_points — the dominant cost, shared by the whole
      // group via the fingerprint — and the executes run per-request on the
      // callers' buffers, each bitwise-identical to a direct Type3Plan run.
      for (int b = 0; b < B; ++b) {
        auto* in = const_cast<std::complex<T>*>(
            static_cast<const std::complex<T>*>(batch[b].input));
        auto* out = static_cast<std::complex<T>*>(batch[b].output);
        plan.execute3(in, out);
      }
    } else if (B == 1) {
      // No coalescing happened: run straight on the caller's buffers — the
      // input is only read (type-1 c by spread, type-2 f by the fused
      // amplify), so the const_cast never turns into a write.
      auto* in = const_cast<std::complex<T>*>(
          static_cast<const std::complex<T>*>(head.input));
      auto* out = static_cast<std::complex<T>*>(head.output);
      bd = type1 ? plan.execute(in, out, 1) : plan.execute(out, in, 1);
    } else {
      // Gather -> one batched execute -> scatter. The staging stack is what
      // lets independent callers' vectors share every per-point cost of the
      // batch-strided pipeline.
      std::vector<std::complex<T>> cbuf(static_cast<std::size_t>(B) * nc);
      std::vector<std::complex<T>> fbuf(static_cast<std::size_t>(B) * nf);
      for (int b = 0; b < B; ++b) {
        const auto* src = static_cast<const std::complex<T>*>(batch[b].input);
        if (type1)
          std::memcpy(cbuf.data() + b * nc, src, nc * sizeof(std::complex<T>));
        else
          std::memcpy(fbuf.data() + b * nf, src, nf * sizeof(std::complex<T>));
      }
      bd = plan.execute(cbuf.data(), fbuf.data(), B);
      for (int b = 0; b < B; ++b) {
        auto* dst = static_cast<std::complex<T>*>(batch[b].output);
        if (type1)
          std::memcpy(dst, fbuf.data() + b * nf, nf * sizeof(std::complex<T>));
        else
          std::memcpy(dst, cbuf.data() + b * nc, nc * sizeof(std::complex<T>));
      }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(static_cast<std::uint64_t>(B),
                                std::memory_order_relaxed);
    std::uint64_t seen = max_batch_seen_.load(std::memory_order_relaxed);
    while (static_cast<std::uint64_t>(B) > seen &&
           !max_batch_seen_.compare_exchange_weak(seen, static_cast<std::uint64_t>(B),
                                                  std::memory_order_relaxed)) {
    }

    report.breakdown = bd;
    report.batch = B;
    report.plan_reused = plan_reused;
    report.points_reused = points_reused;
  } catch (...) {
    // One failure fails the whole batch identically — every request in it
    // carried the same signature, so they would all have failed alone too.
    err = std::current_exception();
  }

  // Counters AND the admission slots land BEFORE the promises: a caller
  // acting right after future.get() must see its own request counted by
  // stats() and its outstanding slot already freed — otherwise a client
  // that resubmits the moment its future resolves can be spuriously shed
  // (or blocked) at the max_outstanding gate by its own completed request.
  // The user-visible outputs were written by execute above, so nothing a
  // drain()ed caller can touch is still pending here; the promises only
  // publish the report.
  if (err)
    failed_.fetch_add(static_cast<std::uint64_t>(B), std::memory_order_relaxed);
  else
    completed_.fetch_add(static_cast<std::uint64_t>(B), std::memory_order_relaxed);
  fulfilled(g.key, batch.size());
  for (int b = 0; b < B; ++b) {
    if (err) {
      batch[b].promise.set_exception(err);
    } else {
      report.batch_index = b;
      batch[b].promise.set_value(report);
    }
  }
}

void NufftService::fulfilled(const GroupKey& key, std::size_t n) {
  {
    std::lock_guard lk(drain_mu_);
    outstanding_ -= n;
  }
  // Unconditional: every decrement can release Block-policy submitters
  // waiting at the admission cap, not just the drop to zero that drain()
  // watches. Both waits share drain_cv_.
  drain_cv_.notify_all();
  // After the slots are freed, before the promises resolve — the sharded
  // front tier mirrors this ledger, so its global admission inherits the
  // same resubmit-after-get guarantee as the local gate.
  if (cfg_.on_fulfilled) cfg_.on_fulfilled(key, n);
}

void NufftService::drain() {
  std::unique_lock lk(drain_mu_);
  drain_cv_.wait(lk, [&] { return outstanding_ == 0; });
}

std::size_t NufftService::outstanding() const {
  std::lock_guard lk(drain_mu_);
  return outstanding_;
}

ServiceStats NufftService::stats() const {
  const RegistryStats reg = registry_.stats();
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  s.plan_hits = reg.hits;
  s.plan_misses = reg.misses;
  s.plan_evictions = reg.evictions;
  s.setpts_builds = setpts_builds_.load(std::memory_order_relaxed);
  s.setpts_reuses = setpts_reuses_.load(std::memory_order_relaxed);
  return s;
}

// The front-tier entry points are called from shard_router.cpp.
#define CF_INSTANTIATE(T)                                                        \
  template const char* validate_request<T>(const Request<T>&);                   \
  template GroupKey make_group_key<T>(const Request<T>&);                        \
  template std::future<ExecReport> NufftService::submit_routed<T>(               \
      const Request<T>&, const GroupKey&);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::service
