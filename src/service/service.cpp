#include "service/service.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/clock.hpp"

namespace cf::service {

namespace {

int resolve_threads(int configured) {
  if (configured > 0) return configured;
  return env_int_strict("CF_SERVICE_THREADS", 2, 1, 4096);
}

std::int64_t modes_product(const PlanKey& key) {
  std::int64_t n = 1;
  for (int d = 0; d < key.dim; ++d) n *= key.N[d];
  return n;
}

}  // namespace

NufftService::NufftService(vgpu::Device& dev, ServiceConfig cfg)
    : dev_(&dev), cfg_(cfg), registry_(cfg.max_plans) {
  cfg_.threads = resolve_threads(cfg_.threads);
  cfg_.max_batch = std::max(1, cfg_.max_batch);
  // Negative window = auto: the CF_SERVICE_WINDOW_US env knob, else no
  // window. An explicit config value (>= 0) always wins over the env.
  if (cfg_.coalesce_window.count() < 0)
    cfg_.coalesce_window = std::chrono::microseconds(
        env_int_strict("CF_SERVICE_WINDOW_US", 0, 0, 10'000'000));
  // Observability: an explicit 0/1 flips the process-global trace switch;
  // the -1 auto default only ever turns it ON (from CF_TRACE=1), so one
  // service's defaults never silence another's explicit enable.
  if (cfg_.observability.trace >= 0)
    obs::set_enabled(cfg_.observability.trace == 1);
  else if (obs::env_trace_enabled())
    obs::set_enabled(true);
  slow_ms_ = cfg_.observability.slow_request_ms >= 0
                 ? cfg_.observability.slow_request_ms
                 : static_cast<double>(env_int_strict("CF_SLOW_MS", 0, 0, 3'600'000));
  registry_.bind_counters(metrics_.plan_hits, metrics_.plan_misses,
                          metrics_.plan_evictions);
  queue_.bind(&metrics_);
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int t = 0; t < cfg_.threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

NufftService::~NufftService() {
  // Signal stop FIRST: pop_ready skips/closes coalescing windows once stop_
  // is set, and workers keep popping until the ready FIFO is empty, so every
  // queued request is still fulfilled — just without waiting out residual
  // windows. (The old drain()-then-shutdown() order made a destructing
  // service with a nonzero window stall up to window x groups.)
  queue_.shutdown();
  for (auto& w : workers_) w.join();
  // Auto-export: CF_TRACE_PATH (with tracing on) gets the Chrome trace at
  // teardown. Rings are process-global, so the last service destroyed writes
  // the most complete file; earlier writes are supersets-in-progress.
  if (obs::enabled()) {
    const std::string path = obs::env_trace_path();
    if (!path.empty() && !obs::export_chrome_trace(path))
      std::fprintf(stderr, "NufftService: failed to write CF_TRACE_PATH='%s'\n",
                   path.c_str());
  }
}

std::future<ExecReport> NufftService::submit(const Request<float>& req) {
  return submit_impl(req);
}

std::future<ExecReport> NufftService::submit(const Request<double>& req) {
  return submit_impl(req);
}

// Eager rejection of structurally unusable requests (the dispatcher could
// not even form a signature or touch the buffers); everything else — bad
// type, bad modes, method constraints — fails in plan construction on the
// dispatch thread and reaches the caller through the request future.
template <typename T>
const char* validate_request(const Request<T>& req) {
  const int dim = static_cast<int>(req.modes.size());
  if (dim < 1 || dim > 3) return "NufftService: dim must be 1..3";
  if (req.iflag == 0)
    // The plan key folds iflag to its sign; accepting 0 would silently serve
    // the +1 transform for a request that never chose a direction.
    return "NufftService: iflag must be +1 or -1 (0 is ambiguous)";
  if (!req.input || !req.output) return "NufftService: input/output required";
  if (req.M > 0 && (!req.x || (dim >= 2 && !req.y) || (dim >= 3 && !req.z)))
    return "NufftService: coordinate arrays required for M > 0";
  if (req.type == 3) {
    // Type3Plan::set_points rejects empty point sets anyway; rejecting here
    // keeps the front-tier promise that every admitted request dispatches.
    if (req.M == 0 || req.K == 0)
      return "NufftService: type 3 requires nonempty source and target sets";
    if (!req.s || (dim >= 2 && !req.t) || (dim >= 3 && !req.u))
      return "NufftService: target frequency arrays required for type 3";
    if (req.backend == Backend::Cpu)
      return "NufftService: type-3 requests run on the device backend only";
  }
  return nullptr;
}

template <typename T>
GroupKey make_group_key(const Request<T>& req) {
  const int dim = static_cast<int>(req.modes.size());
  GroupKey key;
  key.plan = make_plan_key<T>(req.backend, req.type, dim, req.modes.data(), req.iflag,
                              req.tol, req.opts);
  // O(M) hash on the SUBMITTING thread: fingerprint work parallelizes across
  // callers instead of serializing on the dispatchers.
  key.fingerprint =
      req.type == 3
          ? point_fingerprint3<T>(dim, req.M, req.x, req.y, req.z, req.K, req.s,
                                  req.t, req.u)
          : point_fingerprint<T>(dim, req.M, req.x, req.y, req.z);
  return key;
}

template <typename T>
std::future<ExecReport> NufftService::submit_impl(const Request<T>& req) {
  const std::uint64_t trace = obs::trace_begin();
  std::promise<ExecReport> promise;
  auto fut = promise.get_future();

  if (const char* bad = validate_request(req)) {
    metrics_.ledger().reject();
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(bad)));
    return fut;
  }

  const GroupKey key = make_group_key(req);

  // Admission gate: the ledger claims the slot (or sheds) as one atomic
  // transition, so a concurrent stats() snapshot can never see a submitted
  // request that is neither outstanding nor failed. The fingerprint above
  // ran OUTSIDE the ledger lock on purpose: a Shed rejection still cost
  // O(M), but a Block wait never serializes other submitters' hashing.
  const bool tracing = obs::enabled();
  const double adm_t0 = tracing ? mono::now_us() : 0;
  bool waited = false;
  if (!metrics_.ledger().admit(cfg_.max_outstanding,
                               cfg_.admission == Admission::Block, &waited)) {
    // Shed requests count in failed too, so the invariant
    // submitted == completed + failed survives every policy; `shed`
    // refines failed with the overload share.
    if (tracing)
      obs::span(obs::SpanKind::Admission, trace, adm_t0, mono::now_us() - adm_t0,
                /*arg=*/-1);
    promise.set_exception(
        std::make_exception_ptr(OverloadedError(cfg_.max_outstanding)));
    return fut;
  }
  if (tracing)
    obs::span(obs::SpanKind::Admission, trace, adm_t0, mono::now_us() - adm_t0,
              waited ? 1 : 0);
  return enqueue(req, key, trace, std::move(promise), std::move(fut));
}

template <typename T>
std::future<ExecReport> NufftService::submit_routed(const Request<T>& req,
                                                    const GroupKey& key,
                                                    std::uint64_t trace) {
  // The front tier validated and keyed the request (and owns admission
  // globally), so this path never rejects and never blocks: it only claims
  // the drain ledger slot and enqueues.
  metrics_.ledger().admit_routed();
  std::promise<ExecReport> promise;
  auto fut = promise.get_future();
  return enqueue(req, key, trace, std::move(promise), std::move(fut));
}

template <typename T>
std::future<ExecReport> NufftService::enqueue(const Request<T>& req,
                                              const GroupKey& key,
                                              std::uint64_t trace,
                                              std::promise<ExecReport> promise,
                                              std::future<ExecReport> fut) {
  Pending p;
  p.trace = trace;
  p.M = req.M;
  p.x = req.x;
  p.y = req.y;
  p.z = req.z;
  p.K = req.K;
  p.s = req.s;
  p.t = req.t;
  p.u = req.u;
  p.input = req.input;
  p.output = req.output;
  p.interactive = req.priority == Priority::Interactive;
  p.promise = std::move(promise);
  queue_.push(key, std::move(p));
  return fut;
}

void NufftService::worker_loop() {
  while (auto g = queue_.pop_ready(cfg_.coalesce_window, cfg_.max_batch,
                                   cfg_.adaptive_window)) {
    auto batch = queue_.take_batch(g, cfg_.max_batch);
    if (!batch.empty()) {
      if (g->key.plan.precision == 1)
        dispatch<double>(*g, std::move(batch));
      else
        dispatch<float>(*g, std::move(batch));
    }
    queue_.finish(g);
  }
}

// Serves one coalesced batch: acquire (or build) the signature's plan, reuse
// or rebuild its point set, gather the requests' inputs into one stacked
// buffer, run ONE batched execute with ntransf = batch size, and scatter the
// planes back through the futures.
template <typename T>
void NufftService::dispatch(Group& g, std::vector<Pending> batch) {
  const int B = static_cast<int>(batch.size());
  // Coordinates come from a request IN THIS BATCH (its future is still
  // pending, so its buffers are alive) — never from an earlier arrival
  // whose future may already have been consumed and its buffers freed.
  const Pending& head = batch.front();
  // Batch-level spans (plan, set_points, execute) carry the oldest member's
  // trace ID: the whole batch shares the work, and the head waited longest.
  const std::uint64_t btrace = head.trace;
  const double dispatch_t0 = mono::now_us();
  for (const Pending& p : batch)
    metrics_.queue_wait_us->record(dispatch_t0 - mono::us(p.at));
  ExecReport report;
  std::exception_ptr err;
  try {
    const double plan_t0 = dispatch_t0;
    auto entry = registry_.acquire(g.key.plan);
    std::lock_guard plan_lk(entry->mu);
    const bool plan_reused = entry->plan != nullptr;
    if (!entry->plan)
      entry->plan = make_backend_plan(g.key.plan, *dev_, cfg_.max_batch);
    if (obs::enabled())
      obs::span(plan_reused ? obs::SpanKind::PlanHit : obs::SpanKind::PlanMiss,
                btrace, plan_t0, plan_reused ? 0 : mono::now_us() - plan_t0);
    auto& plan = static_cast<TypedPlan<T>&>(*entry->plan);

    const bool type3 = g.key.plan.type == 3;
    const bool points_reused = entry->fingerprint == g.key.fingerprint &&
                               entry->M == head.M && entry->K == head.K;
    double setpts_t0 = 0, setpts_dur = 0;
    if (!points_reused) {
      mono::Stopwatch sp_sw;
      if (type3)
        plan.set_points3(head.M, static_cast<const T*>(head.x),
                         static_cast<const T*>(head.y), static_cast<const T*>(head.z),
                         head.K, static_cast<const T*>(head.s),
                         static_cast<const T*>(head.t), static_cast<const T*>(head.u));
      else
        plan.set_points(head.M, static_cast<const T*>(head.x),
                        static_cast<const T*>(head.y), static_cast<const T*>(head.z));
      entry->fingerprint = g.key.fingerprint;
      entry->M = head.M;
      entry->K = head.K;  // 0 for types 1/2
      setpts_t0 = sp_sw.start_us();
      setpts_dur = sp_sw.us();
      metrics_.setpts_builds->add(1);
      metrics_.setpts_us->record(setpts_dur);
    } else {
      metrics_.setpts_reuses->add(1);
      if (obs::enabled())  // zero-duration marker: served by fingerprint reuse
        obs::span(obs::SpanKind::SetPoints, btrace, mono::now_us(), 0, /*built=*/0);
    }
    entry->executes += 1;
    mono::Stopwatch exec_sw;

    const std::size_t ntot = static_cast<std::size_t>(modes_product(g.key.plan));
    const std::size_t nc = head.M, nf = ntot;
    const bool type1 = g.key.plan.type == 1;
    core::Breakdown bd;
    if (type3) {
      // Type 3 has no batched pipeline (yet): coalescing amortizes the
      // geometry-heavy set_points — the dominant cost, shared by the whole
      // group via the fingerprint — and the executes run per-request on the
      // callers' buffers, each bitwise-identical to a direct Type3Plan run.
      for (int b = 0; b < B; ++b) {
        auto* in = const_cast<std::complex<T>*>(
            static_cast<const std::complex<T>*>(batch[b].input));
        auto* out = static_cast<std::complex<T>*>(batch[b].output);
        plan.execute3(in, out);
      }
    } else if (B == 1) {
      // No coalescing happened: run straight on the caller's buffers — the
      // input is only read (type-1 c by spread, type-2 f by the fused
      // amplify), so the const_cast never turns into a write.
      auto* in = const_cast<std::complex<T>*>(
          static_cast<const std::complex<T>*>(head.input));
      auto* out = static_cast<std::complex<T>*>(head.output);
      bd = type1 ? plan.execute(in, out, 1) : plan.execute(out, in, 1);
    } else {
      // Gather -> one batched execute -> scatter. The staging stack is what
      // lets independent callers' vectors share every per-point cost of the
      // batch-strided pipeline.
      std::vector<std::complex<T>> cbuf(static_cast<std::size_t>(B) * nc);
      std::vector<std::complex<T>> fbuf(static_cast<std::size_t>(B) * nf);
      for (int b = 0; b < B; ++b) {
        const auto* src = static_cast<const std::complex<T>*>(batch[b].input);
        if (type1)
          std::memcpy(cbuf.data() + b * nc, src, nc * sizeof(std::complex<T>));
        else
          std::memcpy(fbuf.data() + b * nf, src, nf * sizeof(std::complex<T>));
      }
      bd = plan.execute(cbuf.data(), fbuf.data(), B);
      for (int b = 0; b < B; ++b) {
        auto* dst = static_cast<std::complex<T>*>(batch[b].output);
        if (type1)
          std::memcpy(dst, fbuf.data() + b * nf, nf * sizeof(std::complex<T>));
        else
          std::memcpy(dst, cbuf.data() + b * nc, nc * sizeof(std::complex<T>));
      }
    }

    const double exec_us = exec_sw.us();
    metrics_.record_execute(bd, B, exec_us);
    if (setpts_dur > 0 && bd.sort > 0) metrics_.stage_sort_us->record(bd.sort * 1e6);
    if (obs::enabled()) {
      // The set_points span waits until here because its sort/cache_build
      // child durations ride the execute's Breakdown snapshot.
      if (setpts_dur > 0) obs::setpts_spans(btrace, setpts_t0, setpts_dur, bd);
      obs::execute_spans(btrace, exec_sw.start_us(), exec_us, bd, B);
    }

    report.breakdown = bd;
    report.batch = B;
    report.plan_reused = plan_reused;
    report.points_reused = points_reused;
  } catch (...) {
    // One failure fails the whole batch identically — every request in it
    // carried the same signature, so they would all have failed alone too.
    err = std::current_exception();
  }

  // The ledger transition (counters AND the admission slots, one atomic
  // unit) lands BEFORE the promises: a caller acting right after
  // future.get() must see its own request counted by stats() and its
  // outstanding slot already freed — otherwise a client that resubmits the
  // moment its future resolves can be spuriously shed (or blocked) at the
  // max_outstanding gate by its own completed request. The user-visible
  // outputs were written by execute above, so nothing a drain()ed caller
  // can touch is still pending here; the promises only publish the report.
  fulfilled(g.key, batch.size(), err ? batch.size() : 0);
  const bool tracing = obs::enabled();
  for (int b = 0; b < B; ++b) {
    const double resolve_us = mono::now_us();
    const double e2e = resolve_us - mono::us(batch[b].at);
    metrics_.e2e_us->record(e2e);
    if (tracing)
      obs::span(obs::SpanKind::FutureResolve, batch[b].trace, mono::us(batch[b].at),
                e2e, b);
    // The slow log prints BEFORE the promise resolves so a caller returning
    // from get() can rely on the diagnostic already being on stderr.
    if (slow_ms_ > 0 && e2e * 1e-3 >= slow_ms_)
      obs::log_slow_request(batch[b].trace, e2e * 1e-3, slow_ms_);
    if (err) {
      batch[b].promise.set_exception(err);
    } else {
      report.batch_index = b;
      report.trace = batch[b].trace;
      batch[b].promise.set_value(report);
    }
  }
}

void NufftService::fulfilled(const GroupKey& key, std::size_t n,
                             std::size_t nfailed) {
  // One ledger transition frees the admission slots and settles the
  // completed/failed counters together; it also wakes Block-policy
  // submitters at the cap and drain() waiters (both park on the ledger cv).
  metrics_.ledger().fulfill(n, nfailed);
  // After the slots are freed, before the promises resolve — the sharded
  // front tier mirrors this ledger, so its global admission inherits the
  // same resubmit-after-get guarantee as the local gate.
  if (cfg_.on_fulfilled) cfg_.on_fulfilled(key, n, nfailed);
}

void NufftService::drain() { metrics_.ledger().wait_drained(); }

std::size_t NufftService::outstanding() const {
  return metrics_.ledger().outstanding();
}

ServiceStats NufftService::stats() const {
  const RegistryStats reg = registry_.stats();
  const obs::Ledger::Snap led = metrics_.ledger().snap();
  ServiceStats s;
  s.submitted = led.submitted;
  s.completed = led.completed;
  s.failed = led.failed;
  s.shed = led.shed;
  s.batches = metrics_.batches->value();
  s.batched_requests = metrics_.batched_requests->value();
  s.max_batch_seen = metrics_.max_batch_seen->value();
  s.plan_hits = reg.hits;
  s.plan_misses = reg.misses;
  s.plan_evictions = reg.evictions;
  s.setpts_builds = metrics_.setpts_builds->value();
  s.setpts_reuses = metrics_.setpts_reuses->value();
  return s;
}

// The front-tier entry points are called from shard_router.cpp.
#define CF_INSTANTIATE(T)                                                        \
  template const char* validate_request<T>(const Request<T>&);                   \
  template GroupKey make_group_key<T>(const Request<T>&);                        \
  template std::future<ExecReport> NufftService::submit_routed<T>(               \
      const Request<T>&, const GroupKey&, std::uint64_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::service
