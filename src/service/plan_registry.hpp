// Signature-keyed LRU plan registry for the concurrent NUFFT service.
//
// Plan construction (FFT twiddle tables, Horner coefficients, deconvolution
// factors) and set_points (fold-rescale, bin sort, tap table, tile set) are
// the two expensive per-problem setups the paper's plan/setpts/execute
// lifecycle amortizes. The registry extends that amortization ACROSS
// independent callers: requests carrying the same transform signature
// (backend, precision, type, dim, modes, iflag, tol, and every
// result-affecting option) share one plan, and a 64-bit fingerprint of the
// point coordinates lets a repeated geometry skip set_points entirely — the
// service-level analogue of the plan-resident PointCache.
//
// Entries are handed out as shared_ptr: eviction (LRU, capacity-bounded)
// only drops the registry's reference, so in-flight dispatches finish on the
// plan they hold. Each entry carries its own mutex serializing plan
// construction, set_points, and execute for that signature.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "obs/obs.hpp"

namespace cf::service {

/// Which library executes the transform. Both run on the device's worker
/// pool, so service concurrency never oversubscribes the host.
enum class Backend : std::uint8_t { Device = 0, Cpu = 1 };

/// Transform signature: everything that must match for two requests to share
/// a plan (and therefore to coalesce into one batched execute). ntransf is
/// deliberately absent — the service picks the batch size per dispatch.
/// Fields the chosen backend ignores are NORMALIZED by make_plan_key (e.g.
/// the device-only fastpath/packed_atomics/point_cache/interior_fastpath
/// knobs under Backend::Cpu), so option noise a backend cannot observe never
/// splits otherwise-identical requests into plans that refuse to coalesce.
struct PlanKey {
  std::uint8_t backend = 0;    ///< Backend enum value
  std::uint8_t precision = 0;  ///< 0 = float, 1 = double
  std::int32_t type = 1;
  std::int32_t dim = 1;
  std::int32_t iflag = 1;
  std::int64_t N[3] = {1, 1, 1};
  double tol = 1e-6;
  std::int32_t method = 0;  ///< core::Method as int
  std::int32_t msub = 0;
  std::int32_t binsize[3] = {0, 0, 0};
  std::int32_t kerevalmeth = 0;
  std::int32_t modeord = 0;
  std::int32_t fastpath = 1;
  std::int32_t packed_atomics = 0;
  std::int32_t point_cache = 1;
  std::int32_t interior_fastpath = 1;
  std::int32_t tiled_spread = 1;
  std::int32_t tile_chunk_cap = 0;  ///< 0 = auto; caps change tile geometry & bits
  double upsampfac = 2.0;  ///< fine-grid sigma; changes width, grid, and bits,
                           ///< so two sigma values are two plans

  bool operator==(const PlanKey&) const = default;
};

/// Builds the signature of a request (T selects the precision tag).
template <typename T>
PlanKey make_plan_key(Backend backend, int type, int dim, const std::int64_t* nmodes,
                      int iflag, double tol, const core::Options& opts);

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

/// 64-bit FNV-1a over the raw coordinate arrays (plus M and dim), computed on
/// the submitting thread. Matching fingerprints let the dispatcher reuse the
/// plan's current set_points; the probability of a spurious 64-bit match is
/// negligible next to hardware fault rates, mirroring content-addressed
/// caches elsewhere.
template <typename T>
std::uint64_t point_fingerprint(int dim, std::size_t M, const T* x, const T* y,
                                const T* z);

/// Type-3 fingerprint: hashes BOTH point sets (sources and target
/// frequencies), since set_points binds the plan's geometry-derived fine
/// grid, corrections, and phases to the pair.
template <typename T>
std::uint64_t point_fingerprint3(int dim, std::size_t M, const T* x, const T* y,
                                 const T* z, std::size_t K, const T* s, const T* t,
                                 const T* u);

/// Type-erased plan: the registry stores one of four concrete instantiations
/// (Device/Cpu x float/double) behind the precision- and backend-agnostic
/// base, and dispatchers downcast through typed_plan<T>().
class PlanBase {
 public:
  virtual ~PlanBase() = default;
};

/// The typed backend interface the service drives. Breakdown is the device
/// library's; the CPU adapter maps its CpuBreakdown stage fields onto it.
template <typename T>
class TypedPlan : public PlanBase {
 public:
  virtual void set_points(std::size_t M, const T* x, const T* y, const T* z) = 0;
  virtual core::Breakdown execute(std::complex<T>* c, std::complex<T>* f, int B) = 0;
  virtual std::int64_t modes_total() const = 0;

  /// Type-3 surface (sources AND target frequencies; single-vector execute).
  /// Only Type3BackendPlan overrides these — PlanKey::type routes each
  /// registry entry to exactly one surface, so these defaults firing means a
  /// dispatcher bug, not a user error.
  virtual void set_points3(std::size_t /*M*/, const T*, const T*, const T*,
                           std::size_t /*K*/, const T*, const T*, const T*) {
    throw std::logic_error("TypedPlan: set_points3 on a type-1/2 plan");
  }
  virtual void execute3(std::complex<T>*, std::complex<T>*) {
    throw std::logic_error("TypedPlan: execute3 on a type-1/2 plan");
  }
};

/// Constructs the backend plan for `key` (batched executes sized up to
/// max_batch planes). Throws std::invalid_argument for bad signatures — the
/// service propagates that through the request futures.
std::unique_ptr<PlanBase> make_backend_plan(const PlanKey& key, vgpu::Device& dev,
                                            int max_batch);

/// One registry entry; `mu` serializes construction, set_points, and execute
/// for this signature (different signatures run concurrently).
struct PlanEntry {
  PlanKey key;
  std::mutex mu;
  std::unique_ptr<PlanBase> plan;    ///< built under mu by the first dispatcher
  std::uint64_t fingerprint = 0;     ///< point set currently loaded (0 = none)
  std::size_t M = 0;
  std::size_t K = 0;                 ///< type-3 target count currently loaded
  std::uint64_t executes = 0;        ///< dispatches served by this entry
};

/// Registry counters (monotonic; read via PlanRegistry::stats).
struct RegistryStats {
  std::uint64_t hits = 0;        ///< acquire found the signature cached
  std::uint64_t misses = 0;      ///< acquire created a fresh entry
  std::uint64_t evictions = 0;   ///< LRU entries dropped at capacity
  std::size_t size = 0;          ///< entries currently resident
};

/// LRU map PlanKey -> PlanEntry. acquire() is the only mutator; it touches
/// the entry to most-recently-used and evicts the tail beyond `capacity`.
class PlanRegistry {
 public:
  explicit PlanRegistry(std::size_t capacity);

  /// Returns the entry for `key`, creating (plan unbuilt) and evicting as
  /// needed. Thread-safe; the returned shared_ptr pins the entry against
  /// eviction for the caller's lifetime.
  std::shared_ptr<PlanEntry> acquire(const PlanKey& key);

  RegistryStats stats() const;

  /// Mirrors future hit/miss/eviction increments into the owning service's
  /// obs counters (additive; RegistryStats stays the source of truth). Call
  /// before any acquire; null pointers skip the mirror.
  void bind_counters(obs::Counter* hits, obs::Counter* misses,
                     obs::Counter* evictions) {
    hits_obs_ = hits;
    misses_obs_ = misses;
    evictions_obs_ = evictions;
  }

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::list<std::shared_ptr<PlanEntry>> lru_;  ///< front = most recent
  std::unordered_map<PlanKey, std::list<std::shared_ptr<PlanEntry>>::iterator,
                     PlanKeyHash>
      map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  obs::Counter* hits_obs_ = nullptr;
  obs::Counter* misses_obs_ = nullptr;
  obs::Counter* evictions_obs_ = nullptr;
};

}  // namespace cf::service
