#include "service/request_queue.hpp"

#include <algorithm>

#include "common/clock.hpp"

namespace cf::service {

void RequestQueue::push(const GroupKey& key, Pending p) {
  p.at = std::chrono::steady_clock::now();
  const bool interactive = p.interactive;
  const std::uint64_t trace = p.trace;
  std::size_t depth = 0;  // group pending size after this join
  {
    std::lock_guard lk(mu_);
    auto& g = groups_[key];
    if (!g) {
      g = std::make_shared<Group>();
      g->key = key;
    }
    g->pending.push_back(std::move(p));
    depth = g->pending.size();
    if (interactive) ++g->interactive;
    // A draining group is NOT re-enqueued here: the worker that owns it
    // re-checks on finish(), which both serializes per-plan execution and
    // lets late arrivals catch the next batch. (If the owner is still parked
    // in its window, the notify below closes it early for interactive
    // arrivals — the interactive request rides THAT batch immediately.)
    if (!g->queued && !g->draining) {
      g->queued = true;
      if (interactive)
        ready_.push_front(g);
      else
        ready_.push_back(g);
    } else if (g->queued && interactive && ready_.front() != g) {
      // Priority jump: promote an already-queued group the moment it gains
      // an interactive request. Linear scan is fine — the ready FIFO holds
      // distinct (signature, points) pairs, not requests.
      auto it = std::find(ready_.begin(), ready_.end(), g);
      if (it != ready_.end()) {
        ready_.erase(it);
        ready_.push_front(g);
      }
    }
  }
  // notify_all: window-waiters share cv_ with idle poppers, so a notify_one
  // could land on a waiter whose predicate the push does not satisfy and the
  // wakeup would be lost to the worker that needed it.
  cv_.notify_all();
  if (obs::enabled()) {
    const double now = mono::now_us();
    obs::span(obs::SpanKind::QueueEnter, trace, now, 0,
              static_cast<std::int64_t>(depth));
    if (depth > 1)  // joined a group that was already coalescing
      obs::span(obs::SpanKind::GroupJoin, trace, now, 0,
                static_cast<std::int64_t>(depth - 1));
  }
}

std::shared_ptr<Group> RequestQueue::pop_ready(std::chrono::microseconds window,
                                               int max_batch, bool adaptive) {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
  if (ready_.empty()) return nullptr;  // stop requested, queue drained
  auto g = ready_.front();
  ready_.pop_front();
  g->queued = false;
  g->draining = true;
  if (window.count() > 0 && !stop_) {
    const double wt0 = mono::now_us();
    const std::uint64_t wtrace = g->pending.front().trace;
    if (obs::enabled())
      obs::span(obs::SpanKind::WindowOpen, wtrace, wt0, 0,
                static_cast<std::int64_t>(g->pending.size()));
    // Coalescing window: give near-simultaneous submitters of the same
    // (signature, points) pair time to land in this batch. Measured from the
    // OLDEST pending request's own arrival stamp (leftovers from a full
    // batch keep theirs; only take_batch shrinks pending, and only the
    // draining owner calls it), so a window never adds more than `window`
    // latency to any request it delays. A condition-variable wait, not a
    // sleep: shutdown() interrupts it, so a destructing service never waits
    // out residual windows.
    const auto deadline = g->pending.front().at + window;
    if (adaptive) {
      // Close early once waiting cannot pay for itself: the batch is already
      // full, the group carries an interactive (latency-class) request, or
      // nothing else is in flight or queued — an idle service has no
      // coalescing partner a window could capture, so waiting is pure added
      // latency. executing_ deliberately excludes workers parked in their
      // own windows (see header) so two idle waiters don't hold each other
      // hostage.
      cv_.wait_until(lk, deadline, [&] {
        return stop_ || g->interactive > 0 ||
               g->pending.size() >= static_cast<std::size_t>(max_batch) ||
               (executing_ == 0 && ready_.empty());
      });
    } else {
      cv_.wait_until(lk, deadline, [&] { return stop_; });
    }
    const double waited = mono::now_us() - wt0;
    if (metrics_) metrics_->window_wait_us->record(waited);
    if (obs::enabled()) {
      std::int64_t reason = obs::kCloseDeadline;
      if (stop_)
        reason = obs::kCloseShutdown;
      else if (adaptive && g->interactive > 0)
        reason = obs::kCloseInteractive;
      else if (adaptive && g->pending.size() >= static_cast<std::size_t>(max_batch))
        reason = obs::kCloseBatchFull;
      else if (adaptive && executing_ == 0 && ready_.empty() &&
               mono::clock::now() < deadline)
        reason = obs::kCloseIdle;
      obs::span(obs::SpanKind::WindowClose, wtrace, wt0, waited, reason);
    }
  }
  ++executing_;  // window over: this worker is now mid-dispatch
  return g;
}

std::vector<Pending> RequestQueue::take_batch(const std::shared_ptr<Group>& g,
                                              int max_batch) {
  std::vector<Pending> batch;
  std::lock_guard lk(mu_);
  const std::size_t n =
      std::min(g->pending.size(), static_cast<std::size_t>(std::max(1, max_batch)));
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (g->pending[i].interactive) --g->interactive;
    batch.push_back(std::move(g->pending[i]));
  }
  g->pending.erase(g->pending.begin(), g->pending.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

void RequestQueue::finish(const std::shared_ptr<Group>& g) {
  {
    std::lock_guard lk(mu_);
    --executing_;
    g->draining = false;
    if (!g->pending.empty()) {
      if (!g->queued) {
        g->queued = true;
        // Leftovers that include an interactive request keep their priority
        // across the re-queue (the request arrived mid-drain and missed the
        // batch; it must not now sit behind every bulk group).
        if (g->interactive > 0)
          ready_.push_front(g);
        else
          ready_.push_back(g);
      }
    } else if (auto it = groups_.find(g->key);
               it != groups_.end() && it->second == g) {
      groups_.erase(it);  // keep the index bounded by live point sets
    }
  }
  // Unconditional: the executing_ decrement (and any re-queue) can satisfy
  // both idle poppers and adaptive window-waiters watching for service-idle.
  cv_.notify_all();
}

void RequestQueue::shutdown() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

}  // namespace cf::service
