#include "service/request_queue.hpp"

namespace cf::service {

void RequestQueue::push(const GroupKey& key, Pending p) {
  p.at = std::chrono::steady_clock::now();
  {
    std::lock_guard lk(mu_);
    auto& g = groups_[key];
    if (!g) {
      g = std::make_shared<Group>();
      g->key = key;
    }
    g->pending.push_back(std::move(p));
    // A draining group is NOT re-enqueued here: the worker that owns it
    // re-checks on finish(), which both serializes per-plan execution and
    // lets late arrivals catch the next batch.
    if (!g->queued && !g->draining) {
      g->queued = true;
      ready_.push_back(g);
    }
  }
  // notify_all: window-waiters share cv_ with idle poppers, so a notify_one
  // could land on a waiter whose predicate the push does not satisfy and the
  // wakeup would be lost to the worker that needed it.
  cv_.notify_all();
}

std::shared_ptr<Group> RequestQueue::pop_ready(std::chrono::microseconds window) {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
  if (ready_.empty()) return nullptr;  // stop requested, queue drained
  auto g = ready_.front();
  ready_.pop_front();
  g->queued = false;
  g->draining = true;
  if (window.count() > 0 && !stop_) {
    // Coalescing window: give near-simultaneous submitters of the same
    // (signature, points) pair time to land in this batch. Measured from the
    // OLDEST pending request's own arrival stamp (leftovers from a full
    // batch keep theirs; only take_batch shrinks pending, and only the
    // draining owner calls it), so a window never adds more than `window`
    // latency to any request it delays. A condition-variable wait, not a
    // sleep: shutdown() interrupts it, so a destructing service never waits
    // out residual windows.
    cv_.wait_until(lk, g->pending.front().at + window, [&] { return stop_; });
  }
  return g;
}

std::vector<Pending> RequestQueue::take_batch(const std::shared_ptr<Group>& g,
                                              int max_batch) {
  std::vector<Pending> batch;
  std::lock_guard lk(mu_);
  const std::size_t n =
      std::min(g->pending.size(), static_cast<std::size_t>(std::max(1, max_batch)));
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(std::move(g->pending[i]));
  g->pending.erase(g->pending.begin(), g->pending.begin() + static_cast<std::ptrdiff_t>(n));
  return batch;
}

void RequestQueue::finish(const std::shared_ptr<Group>& g) {
  bool notify = false;
  {
    std::lock_guard lk(mu_);
    g->draining = false;
    if (!g->pending.empty()) {
      if (!g->queued) {
        g->queued = true;
        ready_.push_back(g);
        notify = true;
      }
    } else if (auto it = groups_.find(g->key);
               it != groups_.end() && it->second == g) {
      groups_.erase(it);  // keep the index bounded by live point sets
    }
  }
  if (notify) cv_.notify_all();
}

void RequestQueue::shutdown() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

}  // namespace cf::service
