#include "service/plan_registry.hpp"

#include <span>
#include <stdexcept>

#include "core/type3.hpp"

namespace cf::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename V>
inline std::uint64_t fnv1a_value(std::uint64_t h, const V& v) {
  return fnv1a(h, &v, sizeof(V));
}

core::Options options_from_key(const PlanKey& key, int max_batch) {
  core::Options o;
  o.method = static_cast<core::Method>(key.method);
  if (key.msub > 0) o.msub = static_cast<std::uint32_t>(key.msub);
  o.binsize = {key.binsize[0], key.binsize[1], key.binsize[2]};
  o.ntransf = max_batch;  // batched executes up to the coalescing cap
  o.kerevalmeth = key.kerevalmeth;
  o.modeord = key.modeord;
  o.fastpath = key.fastpath;
  o.packed_atomics = key.packed_atomics;
  // Service plans serve repeated batched executes, so the default point
  // cache is promoted to the aggressive mode (2): the tiled GM-sort spread
  // streams a plan-resident tap table instead of re-evaluating taps every
  // execute. Output is bitwise-identical; an explicit 0 (the ablation
  // baseline) is honored.
  o.point_cache = key.point_cache ? 2 : 0;
  o.interior_fastpath = key.interior_fastpath;
  o.tiled_spread = key.tiled_spread;
  o.tile_chunk_cap = key.tile_chunk_cap;
  o.upsampfac = key.upsampfac;
  return o;
}

/// Device-library backend: core::Plan is already batch-strided and returns
/// per-execute Breakdown snapshots.
template <typename T>
class DevicePlan final : public TypedPlan<T> {
 public:
  DevicePlan(const PlanKey& key, vgpu::Device& dev, int max_batch)
      : plan_(dev, key.type, std::span(key.N, static_cast<std::size_t>(key.dim)),
              key.iflag, key.tol, options_from_key(key, max_batch)) {}

  void set_points(std::size_t M, const T* x, const T* y, const T* z) override {
    plan_.set_points(M, x, y, z);
  }
  core::Breakdown execute(std::complex<T>* c, std::complex<T>* f, int B) override {
    return plan_.execute(c, f, B);
  }
  std::int64_t modes_total() const override { return plan_.modes_total(); }

 private:
  core::Plan<T> plan_;
};

/// CPU-comparator backend behind the same interface; it shares the device's
/// worker pool, so service traffic never oversubscribes the host. Stage
/// timings map onto the device Breakdown fields; device-only counters stay 0.
template <typename T>
class CpuBackendPlan final : public TypedPlan<T> {
 public:
  CpuBackendPlan(const PlanKey& key, vgpu::Device& dev, int max_batch)
      : plan_(dev.pool(), key.type, std::span(key.N, static_cast<std::size_t>(key.dim)),
              key.iflag, key.tol, cpu_options(key, max_batch)) {}

  void set_points(std::size_t M, const T* x, const T* y, const T* z) override {
    plan_.set_points(M, x, y, z);
  }
  core::Breakdown execute(std::complex<T>* c, std::complex<T>* f, int B) override {
    const cpu::CpuBreakdown cb = plan_.execute(c, f, B);
    core::Breakdown bd;
    bd.sort = cb.sort;
    bd.spread = cb.spread;
    bd.fft = cb.fft;
    bd.deconvolve = cb.deconvolve;
    bd.interp = cb.interp;
    return bd;
  }
  std::int64_t modes_total() const override { return plan_.modes_total(); }

 private:
  static typename cpu::CpuPlan<T>::Options cpu_options(const PlanKey& key,
                                                       int max_batch) {
    typename cpu::CpuPlan<T>::Options o;
    if (key.msub > 0) o.msub = static_cast<std::uint32_t>(key.msub);
    o.binsize = {key.binsize[0], key.binsize[1], key.binsize[2]};
    o.ntransf = max_batch;
    o.modeord = key.modeord;
    o.kerevalmeth = key.kerevalmeth;
    o.tiled_spread = key.tiled_spread;
    o.tile_chunk_cap = key.tile_chunk_cap;
    o.upsampfac = key.upsampfac;
    return o;
  }

  cpu::CpuPlan<T> plan_;
};

/// Type-3 backend (nonuniform -> nonuniform): wraps core::Type3Plan behind
/// the registry interface so type-3 traffic shares the LRU / fingerprint /
/// coalescing substrate. The fine grid is geometry-derived in set_points3,
/// so the plan construction here is cheap (validation + kernel parameters)
/// and the fingerprint reuse is what amortizes the expensive part.
template <typename T>
class Type3BackendPlan final : public TypedPlan<T> {
 public:
  Type3BackendPlan(const PlanKey& key, vgpu::Device& dev, int max_batch)
      : plan_(dev, key.dim, key.iflag, key.tol, options_from_key(key, max_batch)) {}

  void set_points(std::size_t, const T*, const T*, const T*) override {
    throw std::logic_error("TypedPlan: set_points on a type-3 plan");
  }
  core::Breakdown execute(std::complex<T>*, std::complex<T>*, int) override {
    throw std::logic_error("TypedPlan: batched execute on a type-3 plan");
  }
  std::int64_t modes_total() const override { return 0; }  // grid is geometry-derived

  void set_points3(std::size_t M, const T* x, const T* y, const T* z, std::size_t K,
                   const T* s, const T* t, const T* u) override {
    plan_.set_points(M, x, y, z, K, s, t, u);
  }
  void execute3(std::complex<T>* c, std::complex<T>* f) override {
    plan_.execute(c, f);
  }

 private:
  core::Type3Plan<T> plan_;
};

}  // namespace

template <typename T>
PlanKey make_plan_key(Backend backend, int type, int dim, const std::int64_t* nmodes,
                      int iflag, double tol, const core::Options& opts) {
  PlanKey k;
  k.backend = static_cast<std::uint8_t>(backend);
  k.precision = std::is_same_v<T, double> ? 1 : 0;
  k.type = type;
  k.dim = dim;
  // Sign fold only: submit_impl has already rejected iflag == 0, so the fold
  // never silently turns "no direction chosen" into the +1 transform.
  k.iflag = iflag > 0 ? 1 : -1;
  for (int d = 0; d < dim && d < 3; ++d) k.N[d] = nmodes[d];
  k.tol = tol;
  k.method = static_cast<std::int32_t>(opts.method);
  k.msub = static_cast<std::int32_t>(opts.msub);
  k.binsize[0] = opts.binsize[0];
  k.binsize[1] = opts.binsize[1];
  k.binsize[2] = opts.binsize[2];
  k.kerevalmeth = opts.kerevalmeth;
  k.modeord = opts.modeord;
  k.fastpath = opts.fastpath;
  k.packed_atomics = opts.packed_atomics;
  k.point_cache = opts.point_cache;
  k.interior_fastpath = opts.interior_fastpath;
  k.tiled_spread = opts.tiled_spread;
  k.tile_chunk_cap = opts.tile_chunk_cap;
  // Unset (<= 0) folds to the default sigma so a zero-initialized options
  // struct lands on the same plan as an explicit 2.0.
  k.upsampfac = opts.upsampfac > 0 ? opts.upsampfac : 2.0;
  if (type == 3) {
    // Type 3 has no mode grid: the fine grid is geometry-derived in
    // set_points (next235(sigma*(2*gamma*S + w)) per axis), so mode counts
    // and mode ordering are dead signature bits — normalize them or
    // requests differing only there would never share a plan.
    k.N[0] = k.N[1] = k.N[2] = 1;
    k.modeord = 0;
  }
  if (backend == Backend::Cpu) {
    // CpuBackendPlan::cpu_options consumes none of these device-only knobs,
    // so under Backend::Cpu they are dead signature bits: two requests
    // differing only here would build two registry entries that serve
    // byte-identical transforms yet never coalesce (and double-pay plan
    // construction and set_points). Normalize them to the field defaults.
    k.method = 0;
    k.fastpath = 1;
    k.packed_atomics = 0;
    k.point_cache = 1;
    k.interior_fastpath = 1;
  }
  return k;
}

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  // Field-by-field (never raw-struct: padding bytes are indeterminate).
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, k.backend);
  h = fnv1a_value(h, k.precision);
  h = fnv1a_value(h, k.type);
  h = fnv1a_value(h, k.dim);
  h = fnv1a_value(h, k.iflag);
  h = fnv1a(h, k.N, sizeof(k.N));
  h = fnv1a_value(h, k.tol);
  h = fnv1a_value(h, k.method);
  h = fnv1a_value(h, k.msub);
  h = fnv1a(h, k.binsize, sizeof(k.binsize));
  h = fnv1a_value(h, k.kerevalmeth);
  h = fnv1a_value(h, k.modeord);
  h = fnv1a_value(h, k.fastpath);
  h = fnv1a_value(h, k.packed_atomics);
  h = fnv1a_value(h, k.point_cache);
  h = fnv1a_value(h, k.interior_fastpath);
  h = fnv1a_value(h, k.tiled_spread);
  h = fnv1a_value(h, k.tile_chunk_cap);
  h = fnv1a_value(h, k.upsampfac);
  return static_cast<std::size_t>(h);
}

template <typename T>
std::uint64_t point_fingerprint(int dim, std::size_t M, const T* x, const T* y,
                                const T* z) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, dim);
  h = fnv1a_value(h, M);
  if (x) h = fnv1a(h, x, M * sizeof(T));
  if (dim >= 2 && y) h = fnv1a(h, y, M * sizeof(T));
  if (dim >= 3 && z) h = fnv1a(h, z, M * sizeof(T));
  // 0 is the "no points loaded" sentinel in PlanEntry; avoid colliding it.
  return h ? h : 1;
}

template <typename T>
std::uint64_t point_fingerprint3(int dim, std::size_t M, const T* x, const T* y,
                                 const T* z, std::size_t K, const T* s, const T* t,
                                 const T* u) {
  std::uint64_t h = point_fingerprint<T>(dim, M, x, y, z);
  h = fnv1a_value(h, K);
  if (s) h = fnv1a(h, s, K * sizeof(T));
  if (dim >= 2 && t) h = fnv1a(h, t, K * sizeof(T));
  if (dim >= 3 && u) h = fnv1a(h, u, K * sizeof(T));
  return h ? h : 1;
}

std::unique_ptr<PlanBase> make_backend_plan(const PlanKey& key, vgpu::Device& dev,
                                            int max_batch) {
  const bool f64 = key.precision == 1;
  if (key.type == 3) {
    if (key.backend == static_cast<std::uint8_t>(Backend::Cpu))
      throw std::invalid_argument(
          "NufftService: type-3 requests run on the device backend only");
    if (f64) return std::make_unique<Type3BackendPlan<double>>(key, dev, max_batch);
    return std::make_unique<Type3BackendPlan<float>>(key, dev, max_batch);
  }
  if (key.backend == static_cast<std::uint8_t>(Backend::Cpu)) {
    if (f64) return std::make_unique<CpuBackendPlan<double>>(key, dev, max_batch);
    return std::make_unique<CpuBackendPlan<float>>(key, dev, max_batch);
  }
  if (f64) return std::make_unique<DevicePlan<double>>(key, dev, max_batch);
  return std::make_unique<DevicePlan<float>>(key, dev, max_batch);
}

PlanRegistry::PlanRegistry(std::size_t capacity) : cap_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<PlanEntry> PlanRegistry::acquire(const PlanKey& key) {
  std::lock_guard lk(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch to most recent
    ++hits_;
    if (hits_obs_) hits_obs_->add(1);
    return *it->second;
  }
  auto entry = std::make_shared<PlanEntry>();
  entry->key = key;
  lru_.push_front(entry);
  map_[key] = lru_.begin();
  ++misses_;
  if (misses_obs_) misses_obs_->add(1);
  while (lru_.size() > cap_) {
    map_.erase(lru_.back()->key);  // in-flight holders keep the plan alive
    lru_.pop_back();
    ++evictions_;
    if (evictions_obs_) evictions_obs_->add(1);
  }
  return entry;
}

RegistryStats PlanRegistry::stats() const {
  std::lock_guard lk(mu_);
  return {hits_, misses_, evictions_, lru_.size()};
}

#define CF_INSTANTIATE(T)                                                               \
  template PlanKey make_plan_key<T>(Backend, int, int, const std::int64_t*, int,        \
                                    double, const core::Options&);                      \
  template std::uint64_t point_fingerprint<T>(int, std::size_t, const T*, const T*,     \
                                              const T*);                                \
  template std::uint64_t point_fingerprint3<T>(int, std::size_t, const T*, const T*,    \
                                               const T*, std::size_t, const T*,         \
                                               const T*, const T*);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::service
