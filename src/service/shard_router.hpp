// Multi-device sharded service tier: N NufftService shards (each wrapping
// its own vgpu::Device + worker pool) behind one submit() — the ROADMAP
// "millions of users" horizontal-scale piece.
//
// Routing is STICKY BY SIGNATURE: a request's home shard is
// hash(PlanKey) % nshards, and every request carrying the same transform
// signature lands on the same shard, so plan construction, Horner refits,
// fingerprint set_points reuse, and coalescing windows all stay shard-local
// and hot. Routing only ever picks WHERE a batch runs, never its bits: each
// shard's tiled execute is bitwise-deterministic at any worker count, so a
// response is bitwise-identical at any shard count, routing decision, or
// migration timing.
//
// Rebalancing: a signature migrates off its resident shard only when that
// shard is saturated (outstanding >= spill_threshold) AND the load it does
// NOT own there (other signatures' in-flight requests) strictly exceeds the
// least-loaded shard's total — so a lone hot signature never migrates (its
// own load is the saturation) and a signature crowded out by neighbors
// spills to an idle shard. Migration moves FUTURE routing only; in-flight
// requests finish where they were routed.
//
// Admission (max_outstanding / Admission::Block/Shed) is enforced HERE, at
// the front tier, against the global outstanding count — shards run
// unbounded internally, so Block/Shed semantics are global, not per-shard.
// The ledger closes through ServiceConfig::on_fulfilled: every admitted
// request is pre-validated (validate_request) so it is guaranteed to reach a
// shard dispatcher and free its slot.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "service/service.hpp"
#include "vgpu/device.hpp"

namespace cf::service {

struct ShardedConfig {
  /// Shard count; 0 reads CF_SERVICE_SHARDS (else 1). Each shard owns a
  /// private vgpu::Device, plan registry, queue, and dispatch workers.
  int shards = 0;
  /// Device workers per shard; 0 = auto (hardware threads / shards, min 1)
  /// so the tier as a whole does not oversubscribe the host.
  std::size_t device_workers = 0;
  /// Per-shard service template. max_outstanding/admission in here are
  /// OVERRIDDEN to "unbounded" — the front tier owns admission — and
  /// on_fulfilled is claimed by the router.
  ServiceConfig shard;
  /// Global admission cap across all shards (0 = unbounded) and the policy
  /// applied once it is reached; same semantics as the per-service gate.
  std::size_t max_outstanding = 0;
  Admission admission = Admission::Block;
  /// Saturation bar for migration, in outstanding requests on the resident
  /// shard; 0 = auto (2 x shard.max_batch). Raise to pin signatures harder,
  /// lower to spill sooner.
  std::size_t spill_threshold = 0;
};

/// Front-tier roll-up. `total`'s submitted/completed/failed/shed come from
/// ONE consistent snapshot of the front tier's own obs::Ledger (closed by the
/// shards' on_fulfilled callbacks), so submitted == completed + failed +
/// outstanding holds at any instant and submitted == completed + failed
/// whenever the tier is drained — validation failures and front-tier sheds
/// never reach a shard but still count. The remaining counters sum the shard
/// services' registries.
struct ShardedStats {
  ServiceStats total;
  std::vector<ServiceStats> shards;     ///< per-shard counters (index = shard)
  std::vector<std::uint64_t> shard_outstanding;  ///< in-flight per shard (snapshot)
  std::uint64_t routed = 0;       ///< requests handed to a shard
  std::uint64_t sticky_hits = 0;  ///< routed to an already-resident signature
  std::uint64_t migrations = 0;   ///< signatures moved off a saturated shard
  std::uint64_t front_shed = 0;   ///< shed at the front-tier cap (subset of total.shed)
};

class ShardedNufftService {
 public:
  explicit ShardedNufftService(ShardedConfig cfg = {});

  /// Drains every shard (all futures fulfilled) before tearing them down.
  ~ShardedNufftService();

  ShardedNufftService(const ShardedNufftService&) = delete;
  ShardedNufftService& operator=(const ShardedNufftService&) = delete;

  /// Same contract as NufftService::submit, with admission applied against
  /// the GLOBAL outstanding count. Types 1/2/3, both precisions.
  std::future<ExecReport> submit(const Request<float>& req);
  std::future<ExecReport> submit(const Request<double>& req);

  /// Blocks until every admitted request has been fulfilled on its shard.
  void drain();

  int n_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedConfig& config() const { return cfg_; }
  NufftService& shard(int i) { return *shards_[static_cast<std::size_t>(i)].svc; }
  vgpu::Device& device(int i) { return *shards_[static_cast<std::size_t>(i)].dev; }
  ShardedStats stats() const;
  std::size_t outstanding() const;
  /// The front tier's observability bundle (global admission ledger +
  /// routing counters); each shard's bundle is at shard(i).metrics().
  const obs::ServiceMetrics& metrics() const { return metrics_; }

 private:
  struct Shard {
    std::unique_ptr<vgpu::Device> dev;  ///< declared before svc: destroyed after it
    std::unique_ptr<NufftService> svc;
    std::size_t outstanding = 0;  ///< guarded by mu_
  };
  /// Routing-table entry for one signature.
  struct Route {
    int shard = 0;
    std::size_t inflight = 0;  ///< this signature's admitted-unfulfilled count
  };

  template <typename T>
  std::future<ExecReport> submit_impl(const Request<T>& req);
  /// Picks (and commits) the shard for `key` under mu_: sticky home,
  /// spill-aware. Increments the per-shard/per-signature routing counts.
  /// `sticky`/`migrated` report how the decision was made (for trace spans).
  int route(const PlanKey& key, bool* sticky, bool* migrated);
  void on_fulfilled(int shard, const GroupKey& key, std::size_t n,
                    std::size_t nfailed);

  ShardedConfig cfg_;
  /// Front-tier bundle: the GLOBAL admission/drain ledger (the source of
  /// truth for submitted/completed/failed/shed/outstanding across shards)
  /// plus routing counters. Declared before shards_ so the shards'
  /// on_fulfilled callbacks never outlive it.
  obs::ServiceMetrics metrics_{"sharded-front"};
  std::vector<Shard> shards_;

  mutable std::mutex mu_;  ///< routing table + per-shard outstanding
  std::unordered_map<PlanKey, Route, PlanKeyHash> table_;
  std::uint64_t routed_ = 0, sticky_hits_ = 0, migrations_ = 0;
  /// Registry mirrors of the routing counters (for the obs JSON/Prometheus
  /// dumps); the mu_-guarded members above stay the stats() source.
  obs::Counter* routed_c_;
  obs::Counter* sticky_hits_c_;
  obs::Counter* migrations_c_;
};

}  // namespace cf::service
