// Coalescing request queue for the concurrent NUFFT service.
//
// Pending requests are grouped by (plan signature, point fingerprint): every
// request in a group can legally ride the SAME batched execute (one plan, one
// set_points, ntransf = group size). Dispatch workers pop ready groups in
// FIFO order and take up to max_batch requests at once — under load the queue
// depth converts directly into batch size, which is what turns the paper's
// many-vector batching into a cross-caller throughput multiplier.
//
// A group is handed to exactly one worker at a time (`draining`): requests
// arriving while it executes accumulate and are re-queued when the drain
// finishes, so per-plan execution is naturally serialized without holding any
// lock across an execute.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "service/plan_registry.hpp"

namespace cf::service {

/// Per-request result delivered through the future: the batched execute's
/// Breakdown snapshot plus how the request was served.
struct ExecReport {
  core::Breakdown breakdown;  ///< snapshot of the coalesced execute
  int batch = 1;              ///< requests coalesced into that execute
  int batch_index = 0;        ///< this request's plane in the batch
  bool plan_reused = false;   ///< registry hit (no plan construction)
  bool points_reused = false; ///< fingerprint hit (no set_points)
  std::uint64_t trace = 0;    ///< the request's trace ID (0 when tracing off)
};

/// One queued request, type-erased: the precision lives in the group key,
/// and the dispatcher casts the pointers back to T / std::complex<T>. The
/// coordinate pointers ride on EVERY request (not the group): a request's
/// buffers are only guaranteed alive until its own future resolves, so a
/// dispatch must read coordinates from a request in the batch it is about to
/// serve, never from an earlier one whose future may already be consumed.
struct Pending {
  std::size_t M = 0;
  const void* x = nullptr;
  const void* y = nullptr;
  const void* z = nullptr;
  std::size_t K = 0;            ///< type 3: target frequency count
  const void* s = nullptr;      ///< type 3: target frequencies per axis
  const void* t = nullptr;
  const void* u = nullptr;
  const void* input = nullptr;  ///< type 1/3: c[M]; type 2: f[prod(N)]
  void* output = nullptr;       ///< type 1: f[prod(N)]; type 2: c[M]; type 3: f[K]
  bool interactive = false;     ///< latency class: skips windows, jumps the FIFO
  std::uint64_t trace = 0;      ///< obs trace ID minted at submit (0 = off)
  std::chrono::steady_clock::time_point at;  ///< arrival (stamped by push)
  std::promise<ExecReport> promise;
};

/// Batch compatibility key: same signature AND same point set.
struct GroupKey {
  PlanKey plan;
  std::uint64_t fingerprint = 0;

  bool operator==(const GroupKey&) const = default;
};

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const {
    const std::size_t h = PlanKeyHash{}(k.plan);
    return h ^ (static_cast<std::size_t>(k.fingerprint) + 0x9e3779b97f4a7c15ull +
                (h << 6) + (h >> 2));
  }
};

/// Requests awaiting dispatch for one (signature, point set) pair.
struct Group {
  GroupKey key;
  std::vector<Pending> pending;
  bool queued = false;    ///< sitting in the ready FIFO
  bool draining = false;  ///< a worker currently owns it
  int interactive = 0;    ///< pending requests with the interactive class
};

class RequestQueue {
 public:
  /// Points the queue at the owning service's metrics bundle (window-wait
  /// histogram). Call once before any push; nullptr (the default) skips the
  /// histogram but trace spans still record.
  void bind(obs::ServiceMetrics* m) { metrics_ = m; }

  /// Appends a request; enqueues the group if idle. Interactive requests
  /// jump the FIFO: a newly-enqueued group goes to the FRONT of the ready
  /// deque, and a group already queued is promoted to the front. Thread-safe.
  void push(const GroupKey& key, Pending p);

  /// Blocks for the next ready group (nullptr on shutdown with nothing
  /// left). The group is marked draining — no other worker can pop it. When
  /// `window` > 0 the worker then waits out the remainder of the window
  /// since the group's oldest pending request's ARRIVAL, letting
  /// near-simultaneous submitters coalesce into the same batch while never
  /// delaying any request by more than `window`.
  ///
  /// With `adaptive` set the window also closes EARLY as soon as waiting can
  /// no longer help: the group already holds max_batch requests (the batch
  /// cannot grow), it contains an interactive request (latency class — never
  /// hold it for throughput), or no other worker is mid-dispatch AND nothing
  /// else is queued (the service is otherwise idle, so no coalescing partner
  /// can be in flight that a window would capture). With `adaptive` false
  /// the window is fixed — the ablation baseline. Either way the wait is
  /// interruptible: shutdown() closes it immediately, so stopping the
  /// service flushes the queue without residual window sleeps.
  std::shared_ptr<Group> pop_ready(std::chrono::microseconds window, int max_batch,
                                   bool adaptive);

  /// Takes up to max_batch pending requests (FIFO) from a draining group.
  std::vector<Pending> take_batch(const std::shared_ptr<Group>& g, int max_batch);

  /// Ends the drain: re-queues the group if requests arrived meanwhile
  /// (front of the FIFO if any of them is interactive), drops it from the
  /// index otherwise. Pairs with pop_ready: also releases the "mid-dispatch"
  /// mark that keeps other workers' adaptive windows open.
  void finish(const std::shared_ptr<Group>& g);

  /// Wakes all poppers; pop_ready returns nullptr once the FIFO is empty.
  void shutdown();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<GroupKey, std::shared_ptr<Group>, GroupKeyHash> groups_;
  std::deque<std::shared_ptr<Group>> ready_;
  bool stop_ = false;
  /// Groups popped and past their window (dispatch in progress). Counted at
  /// the END of pop_ready — a worker still parked in its own window is not
  /// "busy" for another window-waiter's idle check, otherwise two waiters
  /// would each see the other as activity and both sit out their windows on
  /// an idle service.
  int executing_ = 0;
  obs::ServiceMetrics* metrics_ = nullptr;  ///< owning service's bundle (may be null)
};

}  // namespace cf::service
