#include "core/c_api.h"

#include <complex>
#include <future>
#include <mutex>
#include <new>
#include <unordered_map>

#include "core/plan.hpp"
#include "core/type3.hpp"
#include "obs/obs.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "vgpu/device.hpp"

namespace {

using cf::core::Method;
using cf::core::Options;
using cf::core::Plan;

Options to_options(const cfs_opts* opts) {
  Options o;
  if (!opts) return o;
  switch (opts->gpu_method) {
    case CFS_METHOD_GM: o.method = Method::GM; break;
    case CFS_METHOD_GMSORT: o.method = Method::GMSort; break;
    case CFS_METHOD_SM: o.method = Method::SM; break;
    default: o.method = Method::Auto; break;
  }
  if (opts->gpu_maxsubprobsize > 0)
    o.msub = static_cast<std::uint32_t>(opts->gpu_maxsubprobsize);
  if (opts->gpu_binsizex > 0)
    o.binsize = {opts->gpu_binsizex, opts->gpu_binsizey > 0 ? opts->gpu_binsizey : 1,
                 opts->gpu_binsizez > 0 ? opts->gpu_binsizez : 1};
  if (opts->ntransf > 0) o.ntransf = opts->ntransf;
  o.kerevalmeth = opts->gpu_kerevalmeth == 1 ? 1 : 0;
  o.modeord = opts->modeord == 1 ? 1 : 0;
  o.fastpath = opts->gpu_fastpath == -1 ? 0 : 1;
  o.packed_atomics = opts->gpu_packed_atomics == 1 ? 1 : 0;
  o.point_cache =
      opts->gpu_point_cache == -1 ? 0 : opts->gpu_point_cache == 2 ? 2 : 1;
  o.interior_fastpath = opts->gpu_interior_fastpath == -1 ? 0 : 1;
  o.tiled_spread = opts->gpu_tiled_spread == -1 ? 0 : 1;
  o.tile_chunk_cap = opts->gpu_tile_chunk_cap;  /* same encoding both sides */
  if (opts->upsampfac > 0) o.upsampfac = opts->upsampfac;
  return o;
}

template <typename P>
int plan_stats_impl(P* p, uint64_t* tile_chunks, uint64_t* chunk_steals,
                    uint64_t* max_tile_points, uint64_t* tiles_active, int* tiled) {
  if (!p) return CFS_ERR_INVALID_ARG;
  const auto bd = p->last_breakdown();
  if (tile_chunks) *tile_chunks = bd.tile_chunks;
  if (chunk_steals) *chunk_steals = bd.chunk_steals;
  if (max_tile_points) *max_tile_points = bd.max_tile_points;
  if (tiles_active) *tiles_active = bd.tiles_active;
  if (tiled) *tiled = bd.tiled;
  return CFS_SUCCESS;
}

/// C-side service wrapper: the futures API becomes handle + wait.
struct ServiceHandle {
  explicit ServiceHandle(cf::vgpu::Device& dev, cf::service::ServiceConfig cfg)
      : svc(dev, cfg) {}

  cf::service::NufftService svc;
  std::mutex mu;
  std::unordered_map<int64_t, std::future<cf::service::ExecReport>> inflight;
  int64_t next_id = 1;
};

template <typename T>
int service_submit_impl(cfs_service svc, int type, int dim, const int64_t* nmodes,
                        int iflag, double tol, const cfs_opts* opts, size_t M,
                        const T* x, const T* y, const T* z, const T* input, T* output,
                        int priority, cfs_request* req) {
  if (!svc || !nmodes || !req || dim < 1 || dim > 3) return CFS_ERR_INVALID_ARG;
  if (priority != CFS_PRIORITY_BULK && priority != CFS_PRIORITY_INTERACTIVE)
    return CFS_ERR_INVALID_ARG;
  try {
    auto* h = reinterpret_cast<ServiceHandle*>(svc);
    cf::service::Request<T> r;
    r.type = type;
    r.modes.assign(nmodes, nmodes + dim);
    r.iflag = iflag;
    r.tol = tol;
    r.opts = to_options(opts);
    r.priority = priority == CFS_PRIORITY_INTERACTIVE
                     ? cf::service::Priority::Interactive
                     : cf::service::Priority::Bulk;
    r.M = M;
    r.x = x;
    r.y = y;
    r.z = z;
    r.input = reinterpret_cast<const std::complex<T>*>(input);
    r.output = reinterpret_cast<std::complex<T>*>(output);
    auto fut = h->svc.submit(r);
    std::lock_guard lk(h->mu);
    const int64_t id = h->next_id++;
    h->inflight.emplace(id, std::move(fut));
    *req = id;
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

/// C-side sharded-tier wrapper; owns its devices through the router.
struct ShardedHandle {
  explicit ShardedHandle(cf::service::ShardedConfig cfg) : svc(cfg) {}

  cf::service::ShardedNufftService svc;
  std::mutex mu;
  std::unordered_map<int64_t, std::future<cf::service::ExecReport>> inflight;
  int64_t next_id = 1;
};

template <typename T>
int sharded_submit_impl(cfs_sharded svc, cf::service::Request<T>& r,
                        cfs_request* req) {
  try {
    auto* h = reinterpret_cast<ShardedHandle*>(svc);
    auto fut = h->svc.submit(r);
    std::lock_guard lk(h->mu);
    const int64_t id = h->next_id++;
    h->inflight.emplace(id, std::move(fut));
    *req = id;
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

template <typename T>
int sharded_submit12_impl(cfs_sharded svc, int type, int dim, const int64_t* nmodes,
                          int iflag, double tol, const cfs_opts* opts, size_t M,
                          const T* x, const T* y, const T* z, const T* input,
                          T* output, cfs_request* req) {
  if (!svc || !nmodes || !req || dim < 1 || dim > 3) return CFS_ERR_INVALID_ARG;
  cf::service::Request<T> r;
  r.type = type;
  r.modes.assign(nmodes, nmodes + dim);
  r.iflag = iflag;
  r.tol = tol;
  r.opts = to_options(opts);
  r.M = M;
  r.x = x;
  r.y = y;
  r.z = z;
  r.input = reinterpret_cast<const std::complex<T>*>(input);
  r.output = reinterpret_cast<std::complex<T>*>(output);
  return sharded_submit_impl(svc, r, req);
}

template <typename T, typename PlanPtr>
int make_plan_impl(cfs_device dev, int type, int dim, const int64_t* nmodes, int iflag,
                   double tol, const cfs_opts* opts, PlanPtr* out) {
  if (!dev || !nmodes || !out || dim < 1 || dim > 3) return CFS_ERR_INVALID_ARG;
  try {
    auto* d = reinterpret_cast<cf::vgpu::Device*>(dev);
    auto* p = new Plan<T>(*d, type, std::span(nmodes, static_cast<std::size_t>(dim)),
                          iflag, tol, to_options(opts));
    *out = reinterpret_cast<PlanPtr>(p);
    return CFS_SUCCESS;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (const std::bad_alloc&) {
    return CFS_ERR_INTERNAL;
  } catch (...) {
    return CFS_ERR_METHOD_UNAVAILABLE;
  }
}

}  // namespace

extern "C" {

void cfs_default_opts(cfs_opts* opts) {
  if (!opts) return;
  opts->gpu_method = CFS_METHOD_AUTO;
  opts->gpu_maxsubprobsize = 0;
  opts->gpu_binsizex = opts->gpu_binsizey = opts->gpu_binsizez = 0;
  opts->ntransf = 0;
  opts->gpu_kerevalmeth = 0;
  opts->modeord = 0;
  opts->gpu_fastpath = 0;
  opts->gpu_packed_atomics = 0;
  opts->gpu_point_cache = 0;
  opts->gpu_interior_fastpath = 0;
  opts->gpu_tiled_spread = 0;
  opts->gpu_tile_chunk_cap = 0;
  opts->upsampfac = 0.0; /* default sigma = 2 */
}

int cfs_device_create(cfs_device* dev, int workers) {
  if (!dev || workers < 0) return CFS_ERR_INVALID_ARG;
  try {
    *dev = reinterpret_cast<cfs_device>(
        new cf::vgpu::Device(static_cast<std::size_t>(workers)));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_device_destroy(cfs_device dev) {
  delete reinterpret_cast<cf::vgpu::Device*>(dev);
  return CFS_SUCCESS;
}

size_t cfs_device_bytes_in_use(cfs_device dev) {
  if (!dev) return 0;
  return reinterpret_cast<cf::vgpu::Device*>(dev)->bytes_in_use();
}

int cfs_makeplan(cfs_device dev, int type, int dim, const int64_t* nmodes, int iflag,
                 double tol, const cfs_opts* opts, cfs_plan* plan) {
  return make_plan_impl<double>(dev, type, dim, nmodes, iflag, tol, opts, plan);
}

int cfs_setpts(cfs_plan plan, size_t M, const double* x, const double* y,
               const double* z) {
  if (!plan || !x) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<Plan<double>*>(plan)->set_points(M, x, y, z);
    return CFS_SUCCESS;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_execute(cfs_plan plan, double* c, double* f) {
  if (!plan) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<Plan<double>*>(plan)->execute(
        reinterpret_cast<std::complex<double>*>(c),
        reinterpret_cast<std::complex<double>*>(f));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_destroy(cfs_plan plan) {
  delete reinterpret_cast<Plan<double>*>(plan);
  return CFS_SUCCESS;
}

int cfs_plan_stats(cfs_plan plan, uint64_t* tile_chunks, uint64_t* chunk_steals,
                   uint64_t* max_tile_points, uint64_t* tiles_active, int* tiled) {
  return plan_stats_impl(reinterpret_cast<Plan<double>*>(plan), tile_chunks,
                         chunk_steals, max_tile_points, tiles_active, tiled);
}

int cfs_makeplanf(cfs_device dev, int type, int dim, const int64_t* nmodes, int iflag,
                  double tol, const cfs_opts* opts, cfs_planf* plan) {
  return make_plan_impl<float>(dev, type, dim, nmodes, iflag, tol, opts, plan);
}

int cfs_setptsf(cfs_planf plan, size_t M, const float* x, const float* y,
                const float* z) {
  if (!plan || !x) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<Plan<float>*>(plan)->set_points(M, x, y, z);
    return CFS_SUCCESS;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_executef(cfs_planf plan, float* c, float* f) {
  if (!plan) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<Plan<float>*>(plan)->execute(
        reinterpret_cast<std::complex<float>*>(c),
        reinterpret_cast<std::complex<float>*>(f));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_destroyf(cfs_planf plan) {
  delete reinterpret_cast<Plan<float>*>(plan);
  return CFS_SUCCESS;
}

int cfs_plan_statsf(cfs_planf plan, uint64_t* tile_chunks, uint64_t* chunk_steals,
                    uint64_t* max_tile_points, uint64_t* tiles_active, int* tiled) {
  return plan_stats_impl(reinterpret_cast<Plan<float>*>(plan), tile_chunks,
                         chunk_steals, max_tile_points, tiles_active, tiled);
}

int cfs_service_create(cfs_service* svc, cfs_device dev, int threads, int max_plans,
                       int max_batch) {
  return cfs_service_create_ex(svc, dev, threads, max_plans, max_batch, 0,
                               CFS_ADMIT_BLOCK, -1);
}

int cfs_service_create_ex(cfs_service* svc, cfs_device dev, int threads,
                          int max_plans, int max_batch, int64_t max_outstanding,
                          int admission, int64_t window_us) {
  if (!svc || !dev || threads < 0 || max_plans < 0 || max_batch < 0 ||
      max_outstanding < 0 ||
      (admission != CFS_ADMIT_BLOCK && admission != CFS_ADMIT_SHED))
    return CFS_ERR_INVALID_ARG;
  try {
    cf::service::ServiceConfig cfg;
    cfg.threads = threads;
    if (max_plans > 0) cfg.max_plans = static_cast<std::size_t>(max_plans);
    if (max_batch > 0) cfg.max_batch = max_batch;
    cfg.max_outstanding = static_cast<std::size_t>(max_outstanding);
    cfg.admission = admission == CFS_ADMIT_SHED ? cf::service::Admission::Shed
                                                : cf::service::Admission::Block;
    // window_us < 0 keeps the config's auto sentinel (CF_SERVICE_WINDOW_US).
    if (window_us >= 0) cfg.coalesce_window = std::chrono::microseconds(window_us);
    *svc = reinterpret_cast<cfs_service>(
        new ServiceHandle(*reinterpret_cast<cf::vgpu::Device*>(dev), cfg));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_service_destroy(cfs_service svc) {
  delete reinterpret_cast<ServiceHandle*>(svc);
  return CFS_SUCCESS;
}

int cfs_service_submit(cfs_service svc, int type, int dim, const int64_t* nmodes,
                       int iflag, double tol, const cfs_opts* opts, size_t M,
                       const double* x, const double* y, const double* z,
                       const double* input, double* output, cfs_request* req) {
  return service_submit_impl<double>(svc, type, dim, nmodes, iflag, tol, opts, M, x, y,
                                     z, input, output, CFS_PRIORITY_BULK, req);
}

int cfs_service_submitf(cfs_service svc, int type, int dim, const int64_t* nmodes,
                        int iflag, double tol, const cfs_opts* opts, size_t M,
                        const float* x, const float* y, const float* z,
                        const float* input, float* output, cfs_request* req) {
  return service_submit_impl<float>(svc, type, dim, nmodes, iflag, tol, opts, M, x, y,
                                    z, input, output, CFS_PRIORITY_BULK, req);
}

int cfs_service_submit_pri(cfs_service svc, int type, int dim, const int64_t* nmodes,
                           int iflag, double tol, const cfs_opts* opts, size_t M,
                           const double* x, const double* y, const double* z,
                           const double* input, double* output, int priority,
                           cfs_request* req) {
  return service_submit_impl<double>(svc, type, dim, nmodes, iflag, tol, opts, M, x, y,
                                     z, input, output, priority, req);
}

int cfs_service_submitf_pri(cfs_service svc, int type, int dim, const int64_t* nmodes,
                            int iflag, double tol, const cfs_opts* opts, size_t M,
                            const float* x, const float* y, const float* z,
                            const float* input, float* output, int priority,
                            cfs_request* req) {
  return service_submit_impl<float>(svc, type, dim, nmodes, iflag, tol, opts, M, x, y,
                                    z, input, output, priority, req);
}

int cfs_service_wait(cfs_service svc, cfs_request req) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  auto* h = reinterpret_cast<ServiceHandle*>(svc);
  std::future<cf::service::ExecReport> fut;
  {
    std::lock_guard lk(h->mu);
    auto it = h->inflight.find(req);
    if (it == h->inflight.end()) return CFS_ERR_INVALID_ARG;
    fut = std::move(it->second);
    h->inflight.erase(it);
  }
  try {
    fut.get();
    return CFS_SUCCESS;
  } catch (const cf::service::OverloadedError&) {
    return CFS_ERR_OVERLOADED;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_service_stats(cfs_service svc, uint64_t* batches, uint64_t* batched_requests,
                      uint64_t* plan_misses, uint64_t* setpts_reuses) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  const auto s = reinterpret_cast<ServiceHandle*>(svc)->svc.stats();
  if (batches) *batches = s.batches;
  if (batched_requests) *batched_requests = s.batched_requests;
  if (plan_misses) *plan_misses = s.plan_misses;
  if (setpts_reuses) *setpts_reuses = s.setpts_reuses;
  return CFS_SUCCESS;
}

int cfs_service_stats_ex(cfs_service svc, uint64_t* submitted, uint64_t* completed,
                         uint64_t* failed, uint64_t* shed) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  const auto s = reinterpret_cast<ServiceHandle*>(svc)->svc.stats();
  if (submitted) *submitted = s.submitted;
  if (completed) *completed = s.completed;
  if (failed) *failed = s.failed;
  if (shed) *shed = s.shed;
  return CFS_SUCCESS;
}

int cfs_sharded_create(cfs_sharded* svc, int shards, int device_workers, int threads,
                       int max_plans, int max_batch) {
  return cfs_sharded_create_ex(svc, shards, device_workers, threads, max_plans,
                               max_batch, 0, CFS_ADMIT_BLOCK, -1);
}

int cfs_sharded_create_ex(cfs_sharded* svc, int shards, int device_workers,
                          int threads, int max_plans, int max_batch,
                          int64_t max_outstanding, int admission, int64_t window_us) {
  if (!svc || shards < 0 || device_workers < 0 || threads < 0 || max_plans < 0 ||
      max_batch < 0 || max_outstanding < 0 ||
      (admission != CFS_ADMIT_BLOCK && admission != CFS_ADMIT_SHED))
    return CFS_ERR_INVALID_ARG;
  try {
    cf::service::ShardedConfig cfg;
    cfg.shards = shards;
    cfg.device_workers = static_cast<std::size_t>(device_workers);
    cfg.shard.threads = threads;
    if (max_plans > 0) cfg.shard.max_plans = static_cast<std::size_t>(max_plans);
    if (max_batch > 0) cfg.shard.max_batch = max_batch;
    if (window_us >= 0)
      cfg.shard.coalesce_window = std::chrono::microseconds(window_us);
    cfg.max_outstanding = static_cast<std::size_t>(max_outstanding);
    cfg.admission = admission == CFS_ADMIT_SHED ? cf::service::Admission::Shed
                                                : cf::service::Admission::Block;
    *svc = reinterpret_cast<cfs_sharded>(new ShardedHandle(cfg));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_sharded_destroy(cfs_sharded svc) {
  delete reinterpret_cast<ShardedHandle*>(svc);
  return CFS_SUCCESS;
}

int cfs_sharded_submit(cfs_sharded svc, int type, int dim, const int64_t* nmodes,
                       int iflag, double tol, const cfs_opts* opts, size_t M,
                       const double* x, const double* y, const double* z,
                       const double* input, double* output, cfs_request* req) {
  return sharded_submit12_impl<double>(svc, type, dim, nmodes, iflag, tol, opts, M, x,
                                       y, z, input, output, req);
}

int cfs_sharded_submitf(cfs_sharded svc, int type, int dim, const int64_t* nmodes,
                        int iflag, double tol, const cfs_opts* opts, size_t M,
                        const float* x, const float* y, const float* z,
                        const float* input, float* output, cfs_request* req) {
  return sharded_submit12_impl<float>(svc, type, dim, nmodes, iflag, tol, opts, M, x,
                                      y, z, input, output, req);
}

int cfs_sharded_submit3(cfs_sharded svc, int dim, int iflag, double tol,
                        const cfs_opts* opts, size_t M, const double* x,
                        const double* y, const double* z, size_t K, const double* s,
                        const double* t, const double* u, const double* input,
                        double* output, cfs_request* req) {
  if (!svc || !req || dim < 1 || dim > 3) return CFS_ERR_INVALID_ARG;
  cf::service::Request<double> r;
  r.type = 3;
  r.modes.assign(static_cast<std::size_t>(dim), 1);  // type 3: dim only
  r.iflag = iflag;
  r.tol = tol;
  r.opts = to_options(opts);
  r.M = M;
  r.x = x;
  r.y = y;
  r.z = z;
  r.K = K;
  r.s = s;
  r.t = t;
  r.u = u;
  r.input = reinterpret_cast<const std::complex<double>*>(input);
  r.output = reinterpret_cast<std::complex<double>*>(output);
  return sharded_submit_impl(svc, r, req);
}

int cfs_sharded_wait(cfs_sharded svc, cfs_request req) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  auto* h = reinterpret_cast<ShardedHandle*>(svc);
  std::future<cf::service::ExecReport> fut;
  {
    std::lock_guard lk(h->mu);
    auto it = h->inflight.find(req);
    if (it == h->inflight.end()) return CFS_ERR_INVALID_ARG;
    fut = std::move(it->second);
    h->inflight.erase(it);
  }
  try {
    fut.get();
    return CFS_SUCCESS;
  } catch (const cf::service::OverloadedError&) {
    return CFS_ERR_OVERLOADED;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_sharded_stats(cfs_sharded svc, int* shards, uint64_t* routed,
                      uint64_t* sticky_hits, uint64_t* migrations,
                      uint64_t* plan_misses, uint64_t* setpts_reuses) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  auto* h = reinterpret_cast<ShardedHandle*>(svc);
  const auto s = h->svc.stats();
  if (shards) *shards = h->svc.n_shards();
  if (routed) *routed = s.routed;
  if (sticky_hits) *sticky_hits = s.sticky_hits;
  if (migrations) *migrations = s.migrations;
  if (plan_misses) *plan_misses = s.total.plan_misses;
  if (setpts_reuses) *setpts_reuses = s.total.setpts_reuses;
  return CFS_SUCCESS;
}

int cfs_sharded_stats_ex(cfs_sharded svc, uint64_t* submitted, uint64_t* completed,
                         uint64_t* failed, uint64_t* shed) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  const auto s = reinterpret_cast<ShardedHandle*>(svc)->svc.stats();
  if (submitted) *submitted = s.total.submitted;
  if (completed) *completed = s.total.completed;
  if (failed) *failed = s.total.failed;
  if (shed) *shed = s.total.shed;
  return CFS_SUCCESS;
}

int cfs_sharded_shard_stats(cfs_sharded svc, int shard, uint64_t* submitted,
                            uint64_t* completed, uint64_t* batches,
                            uint64_t* plan_misses) {
  if (!svc) return CFS_ERR_INVALID_ARG;
  auto* h = reinterpret_cast<ShardedHandle*>(svc);
  if (shard < 0 || shard >= h->svc.n_shards()) return CFS_ERR_INVALID_ARG;
  const auto s = h->svc.shard(shard).stats();
  if (submitted) *submitted = s.submitted;
  if (completed) *completed = s.completed;
  if (batches) *batches = s.batches;
  if (plan_misses) *plan_misses = s.plan_misses;
  return CFS_SUCCESS;
}

int cfs_obs_enable(int on) {
  cf::obs::set_enabled(on != 0);
  return CFS_SUCCESS;
}

int cfs_obs_enabled(void) { return cf::obs::enabled() ? 1 : 0; }

int cfs_obs_snapshot_json(const char* path) {
  if (!path) return CFS_ERR_INVALID_ARG;
  bool consistent = true;
  const std::string json = cf::obs::json_string(&consistent);
  if (!cf::obs::write_text_file(path, json)) return CFS_ERR_INTERNAL;
  // The exported snapshot asserts the ledger invariant on itself: a torn or
  // leaking ledger is an internal error, not a caller mistake.
  return consistent ? CFS_SUCCESS : CFS_ERR_INTERNAL;
}

int cfs_obs_prometheus(const char* path) {
  if (!path) return CFS_ERR_INVALID_ARG;
  return cf::obs::write_text_file(path, cf::obs::prometheus_string())
             ? CFS_SUCCESS
             : CFS_ERR_INTERNAL;
}

int cfs_obs_trace_export(const char* path) {
  if (!path) return CFS_ERR_INVALID_ARG;
  return cf::obs::export_chrome_trace(path) ? CFS_SUCCESS : CFS_ERR_INTERNAL;
}

int cfs_obs_trace_reset(void) {
  cf::obs::reset_trace();
  return CFS_SUCCESS;
}

int cfs_makeplan3(cfs_device dev, int dim, int iflag, double tol, const cfs_opts* opts,
                  cfs_plan3* plan) {
  if (!dev || !plan || dim < 1 || dim > 3) return CFS_ERR_INVALID_ARG;
  try {
    auto* d = reinterpret_cast<cf::vgpu::Device*>(dev);
    *plan = reinterpret_cast<cfs_plan3>(
        new cf::core::Type3Plan<double>(*d, dim, iflag, tol, to_options(opts)));
    return CFS_SUCCESS;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_setpts3(cfs_plan3 plan, size_t M, const double* x, const double* y,
                const double* z, size_t K, const double* s, const double* t,
                const double* u) {
  if (!plan || !x || !s) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<cf::core::Type3Plan<double>*>(plan)->set_points(M, x, y, z, K, s, t,
                                                                     u);
    return CFS_SUCCESS;
  } catch (const std::invalid_argument&) {
    return CFS_ERR_INVALID_ARG;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_execute3(cfs_plan3 plan, double* c, double* f) {
  if (!plan) return CFS_ERR_INVALID_ARG;
  try {
    reinterpret_cast<cf::core::Type3Plan<double>*>(plan)->execute(
        reinterpret_cast<std::complex<double>*>(c),
        reinterpret_cast<std::complex<double>*>(f));
    return CFS_SUCCESS;
  } catch (...) {
    return CFS_ERR_INTERNAL;
  }
}

int cfs_destroy3(cfs_plan3 plan) {
  delete reinterpret_cast<cf::core::Type3Plan<double>*>(plan);
  return CFS_SUCCESS;
}

}  // extern "C"
