#include "core/type3.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fft/fft.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/primitives.hpp"

namespace cf::core {

namespace {

/// Center and half-width of a coordinate array (host-side reduction).
template <typename T>
void center_halfwidth(const T* v, std::size_t n, double& center, double& half) {
  double lo = v[0], hi = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, double(v[i]));
    hi = std::max(hi, double(v[i]));
  }
  center = 0.5 * (lo + hi);
  half = std::max(0.5 * (hi - lo), 1e-6);  // clamp degenerate clouds
}

}  // namespace

template <typename T>
Type3Plan<T>::Type3Plan(vgpu::Device& dev, int dim, int iflag, double tol, Options opts)
    : dev_(&dev),
      dim_(dim),
      iflag_(iflag >= 0 ? 1 : -1),
      tol_(tol),
      opts_(opts),
      kp_(spread::KernelParams<T>::from_width(
          spread::width_from_tol(tol, opts.upsampfac), opts.upsampfac)) {
  if (dim < 1 || dim > 3) throw std::invalid_argument("Type3Plan: dim must be 1..3");
  if (opts_.upsampfac != 2.0 && opts_.upsampfac != 1.25)
    throw std::invalid_argument("Type3Plan: upsampfac must be 2.0 or 1.25");
  kp_.fast = opts_.fastpath != 0;
  kp_.packed = opts_.packed_atomics != 0;
  if (opts_.kerevalmeth == 1)
    spread::horner_cache<T>(kp_.w, opts_.upsampfac).attach(kp_);
}

template <typename T>
void Type3Plan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z,
                              std::size_t K, const T* s, const T* t, const T* u) {
  const T* xs[3] = {x, y, z};
  const T* ss[3] = {s, t, u};
  for (int d = 0; d < dim_; ++d)
    if (!xs[d] || !ss[d])
      throw std::invalid_argument("Type3Plan: missing coordinate array");
  if (M == 0 || K == 0) throw std::invalid_argument("Type3Plan: empty point sets");
  M_ = M;
  K_ = K;

  // Geometry: centers, half-widths, scales, fine grid (see header comment).
  const double sigma = opts_.upsampfac;
  const int w = kp_.w;
  // Source-packing factor: rescaled sources span [-pi/sigma_s, pi/sigma_s].
  // Kept at 2 even when the grid runs at sigma = 1.25: the per-source
  // correction divides by psihat2((w/2) xt), and at sigma = 1.25 packing
  // (xt up to pi/1.25) that divisor's dynamic range is ~e^{0.50 w} per dim
  // vs ~e^{0.18 w} at pi/2 — for w = 19 in 3D that puts ~1e12 prefactors on
  // corner sources whose contributions must then cancel through the FFT,
  // flooring accuracy near 1e-8 regardless of kernel quality. Packing at
  // pi/2 keeps the roundoff floor below 1e-11 while the fine grid still
  // shrinks (8/5)^dim vs sigma = 2.
  const double sigma_s = std::max(sigma, 2.0);
  grid_.dim = dim_;
  double Sw[3] = {0, 0, 0};
  for (int d = 0; d < dim_; ++d) {
    double X;
    center_halfwidth(xs[d], M, xc_[d], X);
    center_halfwidth(ss[d], K, sc_[d], Sw[d]);
    gam_[d] = sigma_s * X / std::numbers::pi;
    const double band = 2.0 * gam_[d] * Sw[d] + w;  // modes the targets touch
    grid_.nf[d] = static_cast<std::int64_t>(fft::next235(static_cast<std::size_t>(
        std::max(std::ceil(sigma * band), double(2 * w)))));
  }
  auto bsz = opts_.binsize[0] > 0 ? opts_.binsize : spread::BinSpec::default_size(dim_);
  bins_ = spread::BinSpec::make(grid_, bsz);
  method_ = opts_.method;
  if (method_ == Method::Auto)
    method_ = spread::sm_fits<T>(*dev_, grid_, bins_, w) ? Method::SM : Method::GMSort;
  if (method_ == Method::SM && !spread::sm_fits<T>(*dev_, grid_, bins_, w))
    throw std::invalid_argument("Type3Plan: SM padded bin exceeds shared memory");

  std::vector<std::size_t> dims;
  for (int d = 0; d < dim_; ++d) dims.push_back(static_cast<std::size_t>(grid_.nf[d]));
  fft_ = std::make_unique<fft::FftNd<T>>(dev_->pool(), dims);
  fw_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(grid_.total()));
  hgrid_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(grid_.total()));

  // Deconvolution factors over ALL nf modes per dim (the type-1 inside type-3
  // needs the full band; targets only read |m| <= gam*S + w/2, safely inside
  // the region where phihat stays positive since w*pi/2 < beta at every
  // supported sigma: beta = 2.30w at sigma = 2, 1.84w at sigma = 1.25, both
  // above pi/2 * w ~ 1.57w).
  const T beta = kp_.beta;
  auto kernel = [beta](double zz) { return double(spread::es_eval(T(zz), beta)); };
  for (int d = 0; d < dim_; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(grid_.nf[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), w, kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = dim_; d < 3; ++d) fser_[d].assign(1, T(1));

  // Scaled coordinates. Sources: xt = (x - xc)/gam in [-pi/sigma_s, pi/sigma_s],
  // stored as fine-grid coords. Targets: xi = gam*(s - sc), stored as grid
  // coords u = xi + nf/2 (never wraps: |xi| + w/2 < nf/2).
  xg_ = vgpu::device_buffer<T>(*dev_, M);
  if (dim_ >= 2) yg_ = vgpu::device_buffer<T>(*dev_, M);
  if (dim_ >= 3) zg_ = vgpu::device_buffer<T>(*dev_, M);
  sg_ = vgpu::device_buffer<T>(*dev_, K);
  if (dim_ >= 2) tg_ = vgpu::device_buffer<T>(*dev_, K);
  if (dim_ >= 3) ug_ = vgpu::device_buffer<T>(*dev_, K);
  T* xgs[3] = {xg_.data(), yg_.data(), zg_.data()};
  T* sgs[3] = {sg_.data(), tg_.data(), ug_.data()};
  const auto xc = xc_;
  const auto sc = sc_;
  const auto gam = gam_;
  const auto nf = grid_.nf;
  const int dim = dim_;
  dev_->launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    for (int d = 0; d < dim; ++d) {
      const T xt = static_cast<T>((double(xs[d][j]) - xc[d]) / gam[d]);
      xgs[d][j] = spread::fold_rescale(xt, nf[d]);
    }
  });
  dev_->launch_items(K, 256, [&](std::size_t k, vgpu::BlockCtx&) {
    for (int d = 0; d < dim; ++d)
      sgs[d][k] = static_cast<T>(gam[d] * (double(ss[d][k]) - sc[d]) +
                                 double(nf[d] / 2));  // mode m sits at m+floor(nf/2)
  });

  // Per-source prefactor: 1/prod_d psihat2(xt_jd) times the shift phase
  // e^{i iflag sc.(x_j - xc)}. psihat2(xt) = (w/2)*phihat(w/2 * xt), with
  // phihat via the same Gauss-Legendre quadrature as the deconvolution.
  src_prefac_ = vgpu::device_buffer<cplx>(*dev_, M);
  chat_ = vgpu::device_buffer<cplx>(*dev_, M);
  const int q = 2 + 2 * w + 8;
  std::vector<double> nodes, weights;
  spread::gauss_legendre(q, nodes, weights);
  std::vector<double> zq(q), fq(q);
  for (int i = 0; i < q; ++i) {
    zq[i] = 0.5 * (nodes[i] + 1.0);
    fq[i] = kernel(zq[i]) * weights[i];
  }
  const double halfw = double(w) / 2;
  const int ifl = iflag_;
  dev_->launch_items(M, 64, [&](std::size_t j, vgpu::BlockCtx&) {
    double corr = 1.0, phase = 0.0;
    for (int d = 0; d < dim; ++d) {
      // xt recovered from the folded grid coordinate (inverse of the map
      // above; xt in [-pi/sigma_s, pi/sigma_s] so the fold never wrapped).
      double g = double(xgs[d][j]) / double(nf[d]);
      if (g >= 0.5) g -= 1.0;
      const double xt = g * 2.0 * std::numbers::pi;
      const double xi = halfw * xt;
      double ph = 0;
      for (int i = 0; i < q; ++i) ph += fq[i] * std::cos(xi * zq[i]);
      corr *= halfw * ph;
      phase += sc[d] * (double(xs[d][j]) - xc[d]);
    }
    phase *= ifl;
    src_prefac_[j] = cplx(static_cast<T>(std::cos(phase) / corr),
                          static_cast<T>(std::sin(phase) / corr));
  });

  // Per-target phase e^{i iflag s_k . x_c}.
  trg_phase_ = vgpu::device_buffer<cplx>(*dev_, K);
  dev_->launch_items(K, 256, [&](std::size_t k, vgpu::BlockCtx&) {
    double phase = 0;
    for (int d = 0; d < dim; ++d) phase += double(ss[d][k]) * xc[d];
    phase *= ifl;
    trg_phase_[k] = cplx(static_cast<T>(std::cos(phase)), static_cast<T>(std::sin(phase)));
  });

  // Bin-sort sources (spread) and targets (interp reads).
  spread::bin_sort(*dev_, grid_, bins_, xg_.data(), dim_ >= 2 ? yg_.data() : nullptr,
                   dim_ >= 3 ? zg_.data() : nullptr, M, src_sort_);
  spread::NuPoints<T> srcs{xg_.data(), dim_ >= 2 ? yg_.data() : nullptr,
                           dim_ >= 3 ? zg_.data() : nullptr, M_};
  // Tile-ownership set for the atomic-free source spread (SM and GM-sort).
  src_tiles_ = spread::TileSet<T>{};
  if (opts_.tiled_spread && (method_ == Method::SM || method_ == Method::GMSort))
    spread::build_tile_set(*dev_, grid_, bins_, kp_.w, src_sort_, 1,
                           spread::kTileArenaMaxBytes, src_tiles_);
  subs_ = spread::SubprobSetup{};
  if (method_ == Method::SM) {
    // Subproblems only matter on the atomic fallback (the tile engine works
    // per bin); the source tap table feeds both writebacks. Paid once here
    // and reused by every execute (Options::point_cache = 0 keeps the
    // per-execute-rebuild baseline, same contract as Plan).
    if (!src_tiles_.usable)
      subs_ = spread::build_subproblems(*dev_, src_sort_, opts_.msub);
    src_taps_ = spread::TapTable<T>{};
    if (opts_.point_cache)
      spread::build_tap_table(*dev_, dim_, kp_, srcs, src_sort_.order.data(),
                              src_taps_);
  }
  spread::bin_sort(*dev_, grid_, bins_, sg_.data(), dim_ >= 2 ? tg_.data() : nullptr,
                   dim_ >= 3 ? ug_.data() : nullptr, K, trg_sort_);
  // Interior-first partitions for the no-wrap fast path (sources feed the
  // inner spread when the tile engine is unavailable; targets the interp).
  // GM partitions USER order (the unsorted baseline must stay unsorted, as
  // in Plan); GM-sort partitions the bin-sort order. When the tile engine
  // will serve the spread the source partition would be dead work — skip it.
  src_part_ = spread::InteriorPartition{};
  trg_part_ = spread::InteriorPartition{};
  if (opts_.interior_fastpath && method_ != Method::SM && !src_tiles_.usable)
    spread::classify_interior(
        *dev_, grid_, kp_, srcs,
        method_ == Method::GMSort ? src_sort_.order.data() : nullptr, src_part_);
  if (opts_.interior_fastpath) {
    spread::NuPoints<T> trgs{sg_.data(), dim_ >= 2 ? tg_.data() : nullptr,
                             dim_ >= 3 ? ug_.data() : nullptr, K_};
    spread::classify_interior(*dev_, grid_, kp_, trgs, trg_sort_.order.data(),
                              trg_part_);
  }
}

template <typename T>
void Type3Plan<T>::execute(cplx* c, cplx* f) {
  if (M_ == 0) throw std::logic_error("Type3Plan: set_points not called");
  // 1. Kernel-corrected, phase-shifted strengths.
  dev_->launch_items(M_, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    chat_[j] = c[j] * src_prefac_[j];
  });

  // 2. Inner type 1: spread -> FFT -> deconvolve over the full fine grid.
  spread::NuPoints<T> pts{xg_.data(), dim_ >= 2 ? yg_.data() : nullptr,
                          dim_ >= 3 ? zg_.data() : nullptr, M_};
  vgpu::fill(*dev_, fw_.span(), cplx(0, 0));
  if (src_tiles_.usable && (method_ == Method::SM || method_ == Method::GMSort)) {
    // Tile-owned atomic-free writeback; SM streams its cached taps, GM-sort
    // evaluates inline (bitwise-identical values either way).
    spread::spread_tiled_batch<T>(*dev_, grid_, bins_, kp_, pts, chat_.data(),
                                  fw_.data(), src_sort_, src_tiles_,
                                  src_taps_.empty() ? nullptr : &src_taps_, 1, 0, 0);
  } else if (method_ == Method::SM) {
    if (src_taps_.empty())  // point_cache = 0: transient table per execute
      spread::spread_sm<T>(*dev_, grid_, bins_, kp_, pts, chat_.data(), fw_.data(),
                           src_sort_, subs_, opts_.msub);
    else
      spread::spread_sm<T>(*dev_, grid_, bins_, kp_, pts, chat_.data(), fw_.data(),
                           src_sort_, subs_, opts_.msub, src_taps_);
  } else {
    const std::uint32_t* order = method_ == Method::GMSort
                                     ? src_sort_.order.data()
                                     : nullptr;
    if (!src_part_.empty()) {  // interior-first partition (no-wrap fast path)
      order = src_part_.order.data();
      pts.n_nowrap = src_part_.n_interior;
    }
    spread::spread_gm<T>(*dev_, grid_, kp_, pts, chat_.data(), fw_.data(), order);
  }
  fft_->exec(fw_.data(), iflag_);

  const auto nf = grid_.nf;
  const T* p0 = fser_[0].data();
  const T* p1 = fser_[1].data();
  const T* p2 = fser_[2].data();
  const cplx* fw = fw_.data();
  cplx* hg = hgrid_.data();
  dev_->launch_items(static_cast<std::size_t>(grid_.total()), 256,
                     [=](std::size_t i, vgpu::BlockCtx&) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % nf[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / nf[0]) % nf[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (nf[0] * nf[1]);
    const std::int64_t g0 = spread::wrap_index(i0 - nf[0] / 2, nf[0]);
    const std::int64_t g1 = spread::wrap_index(i1 - nf[1] / 2, nf[1]);
    const std::int64_t g2 = spread::wrap_index(i2 - nf[2] / 2, nf[2]);
    hg[i] = fw[g0 + nf[0] * (g1 + nf[1] * g2)] * (p0[i0] * p1[i1] * p2[i2]);
  });

  // 3. Interpolate H at the scaled targets, then apply the target phases.
  spread::NuPoints<T> trg{sg_.data(), dim_ >= 2 ? tg_.data() : nullptr,
                          dim_ >= 3 ? ug_.data() : nullptr, K_};
  const std::uint32_t* trg_order = trg_sort_.order.data();
  if (!trg_part_.empty()) {  // interior-first partition (no-wrap fast path)
    trg_order = trg_part_.order.data();
    trg.n_nowrap = trg_part_.n_interior;
  }
  spread::interp<T>(*dev_, grid_, kp_, trg, hgrid_.data(), f, trg_order);
  dev_->launch_items(K_, 256, [&](std::size_t k, vgpu::BlockCtx&) {
    f[k] *= trg_phase_[k];
  });
}

template class Type3Plan<float>;
template class Type3Plan<double>;

}  // namespace cf::core
