// Public cuFINUFFT-equivalent API: a "plan, set points, execute, destroy"
// interface (paper Sec. I-A) for type-1 and type-2 NUFFTs in 1-3 dimensions,
// single or double precision, on a vgpu Device.
//
//   Type 1 (nonuniform -> uniform), paper eq. (1):
//     f_k = sum_j c_j exp(iflag * i * k . x_j),   k in I_{N1 x ... x Nd}
//   Type 2 (uniform -> nonuniform), paper eq. (3):
//     c_j = sum_k f_k exp(iflag * i * k . x_j)
//
// Fourier modes are ordered with k increasing from -N/2 to N/2-1 per axis,
// x-fastest in memory. Accuracy follows the requested tolerance through the
// ES kernel width rule (eq. (6) at the paper's sigma = 2; the FINUFFT rule
// at the low-upsampling sigma = 1.25, see Options::upsampfac).
//
// Execute is a stage pipeline over batch-strided stages (spread | fft |
// deconvolve for type 1; fused amplify+fft | interp for type 2); ntransf = B
// stacked vectors run every stage once, and B = 1 is simply the same pipeline
// at batch size one. All point-dependent precomputation — fold-rescale,
// bin-sort, the SM tap table, the interior-first iteration partition, and
// the tile-ownership set of the atomic-free spread writeback — lives in a
// plan-resident PointCache built by set_points and reused by every execute
// (the paper's setpts amortization argument). With the default
// Options::tiled_spread, type-1 SM and GM-sort spreading performs ZERO
// global atomics and the whole execute is bitwise-deterministic at any
// worker count.
//
// Usage:
//   vgpu::Device dev;
//   core::Plan<float> plan(dev, 1, {{N1, N2}}, +1, 1e-5);
//   plan.set_points(M, d_x.data(), d_y.data(), nullptr);
//   plan.execute(d_c.data(), d_f.data());   // repeatable with new strengths
#pragma once

#include <array>
#include <atomic>
#include <complex>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "fft/fftnd.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/point_cache.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::core {

/// Spreading method selection (paper Sec. III-A). Auto picks SM for type 1
/// when the padded bin fits shared memory (it does not for 3D double
/// precision with default bins — paper Rmk. 2), else GM-sort; interpolation
/// always uses GM-sort under Auto (paper Sec. III-B).
enum class Method { Auto, GM, GMSort, SM };

const char* method_name(Method m);

/// Tunable options; defaults are the paper's hand-tuned values.
struct Options {
  Method method = Method::Auto;
  std::uint32_t msub = 1024;            ///< max subproblem size (paper Rmk. 1)
  std::array<int, 3> binsize{0, 0, 0};  ///< 0 = paper defaults (32x32 / 16x16x2)
  double upsampfac = 2.0;               ///< fine-grid sigma: 2.0 (paper) or 1.25
                                        ///< (low-upsampling: ~2x 3D volume
                                        ///< instead of 8x, wider kernel)
  int ntransf = 1;  ///< vectors per execute (cuFINUFFT's many-vector batching)
  int kerevalmeth = 0;  ///< 0 = direct exp/sqrt; 1 = piecewise-poly Horner
  int modeord = 0;  ///< 0 = CMCL (-N/2..N/2-1); 1 = FFT-style (0..,-N/2..-1)
  int fastpath = 1;  ///< 1 = width-specialized SIMD kernels; 0 = runtime-w scalar
  int packed_atomics = 0;  ///< 1 = single 8-byte CAS per complex<float> global
                           ///< writeback (two-float atomic adds otherwise)
  int point_cache = 1;     ///< 1 = build the SM tap table once in set_points;
                           ///< 2 = ALSO cache the tap table for the tiled
                           ///< GM-sort spread (instead of re-evaluating taps
                           ///< inline every execute) — SM's memory profile
                           ///< traded for repeat/batch throughput; the
                           ///< service layer's batched plans run this mode.
                           ///< Bitwise-identical output in every mode.
                           ///< 0 = rebuild per execute (ablation baseline)
  int interior_fastpath = 1;  ///< 1 = interior-first iteration partition with
                              ///< branch-free no-wrap indexing in GM/GM-sort
                              ///< spread and interp; 0 = always wrap
  int tiled_spread = 1;  ///< 1 = tile-owned atomic-free spread writeback with
                         ///< deterministic halo merge for SM and GM-sort type 1
                         ///< (zero global atomics; output bitwise-identical at
                         ///< any worker count); 0 = atomic writeback (ablation
                         ///< baseline). Falls back to atomics automatically
                         ///< when the tile geometry gate or arena cap fails.
  int tile_chunk_cap = 0;  ///< tiled-spread chunk cap (points per work item):
                           ///< 0 = auto (points-per-worker heuristic; the
                           ///< CF_TILE_CHUNK env var overrides the auto value),
                           ///< > 0 = explicit cap, < 0 = never split (one
                           ///< chunk per tile — PR-5's per-tile schedule).
                           ///< The applied cap is a pure function of the
                           ///< points, never of the worker count, so output
                           ///< stays bitwise-identical at any worker count for
                           ///< a FIXED cap (different caps re-associate the
                           ///< per-tile sums and agree to rounding).
};

/// Stage timings (seconds) and PointCache statistics. execute() returns a
/// per-execute snapshot (safe when several threads share one plan — each
/// caller sees its own execute's timings, not a concurrent writer's);
/// last_breakdown() returns a copy of the most recent snapshot. The cache
/// counters are plan-lifetime totals (atomic under the hood) so tests can
/// assert that repeated executes perform zero tap-table construction while
/// re-set_points rebuilds exactly once.
struct Breakdown {
  double sort = 0;        ///< bin-sort (in set_points)
  double cache_build = 0; ///< PointCache build incl. tile set / subproblem
                          ///< setup where needed (in set_points)
  double spread = 0;      ///< type-1 step 1
  double fft = 0;         ///< step 2 (for type 2 includes the fused amplify)
  double deconvolve = 0;  ///< type-1 step 3 (type-2 amplify is fused into fft)
  double interp = 0;      ///< type-2 step 3
  std::uint64_t tap_builds = 0;   ///< lifetime SM tap-table constructions
  std::uint64_t cache_hits = 0;   ///< lifetime executes served by the cache
  std::size_t interior_points = 0;  ///< no-wrap-classified points (last set_points)
  std::size_t boundary_points = 0;  ///< wrap-path points (last set_points)
  int tiled = 0;  ///< last execute's spread used the tile-owned writeback
  std::size_t tiles_active = 0;  ///< tiles holding points (last set_points)
  std::size_t tiles_merge = 0;   ///< tiles receiving halo merges (last set_points)
  std::size_t arena_bytes = 0;   ///< tiled-spread arena allocation: shell-only
                                 ///< halo slots + per-worker padded scratch
                                 ///< + split-chunk planes
                                 ///< (last set_points; 0 on atomic fallback)
  std::size_t tile_chunks = 0;   ///< (tile, chunk) work items in the tiled
                                 ///< spread schedule (last set_points;
                                 ///< == tiles_active when nothing split)
  std::size_t max_tile_points = 0;  ///< largest bin population (last set_points)
  std::uint64_t chunk_steals = 0;   ///< work items the tiled spread's stealing
                                    ///< scheduler moved across workers (last
                                    ///< execute; 0 single-worker / untiled)
  double total() const { return spread + fft + deconvolve + interp; }
};

/// NUFFT plan bound to one device. T is float or double.
template <typename T>
class Plan {
 public:
  using cplx = std::complex<T>;

  /// type: 1 or 2; nmodes: N per axis (size = dim, 1..3); iflag: sign of i in
  /// the exponentials (+-1); tol: requested relative accuracy.
  Plan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes, int iflag,
       double tol, Options opts = {});

  // -- inspectors -----------------------------------------------------------
  int type() const { return type_; }
  int dim() const { return grid_.dim; }
  int iflag() const { return iflag_; }
  double tol() const { return tol_; }
  int kernel_width() const { return kp_.w; }
  Method resolved_method() const { return method_; }
  std::int64_t modes_total() const { return N_[0] * N_[1] * N_[2]; }
  std::array<std::int64_t, 3> modes() const { return N_; }
  const spread::GridSpec& fine_grid() const { return grid_; }
  std::size_t npoints() const { return M_; }
  vgpu::Device& device() const { return *dev_; }

  /// Copy of the most recent set_points()/execute() snapshot.
  Breakdown last_breakdown() const {
    std::lock_guard lk(mu_);
    return bd_;
  }

  /// Registers M nonuniform points (device pointers; y/z null for dim<2/3).
  /// Performs fold-rescale, the GM-sort/SM bin-sort, and the PointCache build
  /// (SM tap table, interior classification) whose cost is amortized over
  /// repeated execute() calls. Invalidates any previous PointCache.
  void set_points(std::size_t M, const T* x, const T* y, const T* z);

  /// Runs the transform: type 1 reads c (length M) and writes f (modes);
  /// type 2 reads f and writes c. Both are device pointers. Callable
  /// repeatedly after one set_points (the paper's "exec" timing) — repeated
  /// calls perform no point-dependent precomputation.
  ///
  /// With batch size B > 1, c holds B stacked strength vectors (length B*M)
  /// and f B stacked mode grids (length B*modes_total()); the whole stack
  /// runs through the same batch-strided stage pipeline with each point's tap
  /// weights applied once for all B vectors. `B = 0` (the default) uses
  /// Options::ntransf; any positive B works on any plan (the service layer
  /// coalesces a variable number of requests into one execute) — B beyond
  /// the constructed ntransf grows the fine-grid stack on first use.
  ///
  /// Thread-safe: concurrent execute()s on one shared plan serialize on an
  /// internal mutex, and each caller gets its OWN Breakdown snapshot.
  Breakdown execute(cplx* c, cplx* f, int B = 0);

 private:
  void spread_step(const cplx* c, int B, Breakdown& bd);
  void interp_step(cplx* c, int B);
  void deconvolve_type1(cplx* f, int B);
  spread::NuPoints<T> nu_points() const;
  const std::uint32_t* iter_order(std::size_t& n_nowrap) const;

  vgpu::Device* dev_;
  int type_;
  int iflag_;
  double tol_;
  Options opts_;
  Method method_ = Method::Auto;

  std::array<std::int64_t, 3> N_{1, 1, 1};
  spread::GridSpec grid_;
  spread::BinSpec bins_;
  spread::KernelParams<T> kp_;  ///< kerevalmeth=1 tables live in the
                                ///< process-wide per-(w, sigma) horner_cache

  fft::FftNd<T> fft_;
  vgpu::device_buffer<cplx> fw_;          ///< fine grid (ntransf stacked planes)
  std::array<std::vector<T>, 3> fser_;    ///< per-dim correction factors

  vgpu::device_buffer<T> xg_, yg_, zg_;   ///< fold-rescaled coords
  std::size_t M_ = 0;
  spread::DeviceSort sort_;
  spread::SubprobSetup subs_;
  bool need_sort_ = false;

  spread::PointCache<T> cache_;  ///< built in set_points, reused by execute
  std::atomic<std::uint64_t> tap_builds_{0};  ///< plan-lifetime totals: atomic
  std::atomic<std::uint64_t> cache_hits_{0};  ///< so shared-plan executes count
                                              ///< correctly under concurrency

  mutable std::mutex mu_;  ///< serializes set_points/execute; guards bd_
  Breakdown bd_;
};

extern template class Plan<float>;
extern template class Plan<double>;

}  // namespace cf::core
