// Public cuFINUFFT-equivalent API: a "plan, set points, execute, destroy"
// interface (paper Sec. I-A) for type-1 and type-2 NUFFTs in 1-3 dimensions,
// single or double precision, on a vgpu Device.
//
//   Type 1 (nonuniform -> uniform), paper eq. (1):
//     f_k = sum_j c_j exp(iflag * i * k . x_j),   k in I_{N1 x ... x Nd}
//   Type 2 (uniform -> nonuniform), paper eq. (3):
//     c_j = sum_k f_k exp(iflag * i * k . x_j)
//
// Fourier modes are ordered with k increasing from -N/2 to N/2-1 per axis,
// x-fastest in memory. Accuracy follows the requested tolerance through the
// ES kernel width rule (eq. (6)); sigma = 2 is fixed as in the paper.
//
// Usage:
//   vgpu::Device dev;
//   core::Plan<float> plan(dev, 1, {{N1, N2}}, +1, 1e-5);
//   plan.set_points(M, d_x.data(), d_y.data(), nullptr);
//   plan.execute(d_c.data(), d_f.data());   // repeatable with new strengths
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "fft/fftnd.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::core {

/// Spreading method selection (paper Sec. III-A). Auto picks SM for type 1
/// when the padded bin fits shared memory (it does not for 3D double
/// precision with default bins — paper Rmk. 2), else GM-sort; interpolation
/// always uses GM-sort under Auto (paper Sec. III-B).
enum class Method { Auto, GM, GMSort, SM };

const char* method_name(Method m);

/// Tunable options; defaults are the paper's hand-tuned values.
struct Options {
  Method method = Method::Auto;
  std::uint32_t msub = 1024;            ///< max subproblem size (paper Rmk. 1)
  std::array<int, 3> binsize{0, 0, 0};  ///< 0 = paper defaults (32x32 / 16x16x2)
  double upsampfac = 2.0;               ///< fixed sigma = 2 (paper limitation (3))
  int ntransf = 1;  ///< vectors per execute (cuFINUFFT's many-vector batching)
  int kerevalmeth = 0;  ///< 0 = direct exp/sqrt; 1 = piecewise-poly Horner
  int modeord = 0;  ///< 0 = CMCL (-N/2..N/2-1); 1 = FFT-style (0..,-N/2..-1)
  int fastpath = 1;  ///< 1 = width-specialized SIMD kernels; 0 = runtime-w scalar
  int packed_atomics = 0;  ///< 1 = single 8-byte CAS per complex<float> global
                           ///< writeback (two-float atomic adds otherwise)
};

/// Stage timings (seconds) recorded by the last set_points()/execute().
struct Breakdown {
  double sort = 0;       ///< bin-sort + subproblem setup (in set_points)
  double spread = 0;     ///< type-1 step 1
  double fft = 0;        ///< step 2
  double deconvolve = 0; ///< type-1 step 3 / type-2 step 1
  double interp = 0;     ///< type-2 step 3
  double total() const { return spread + fft + deconvolve + interp; }
};

/// NUFFT plan bound to one device. T is float or double.
template <typename T>
class Plan {
 public:
  using cplx = std::complex<T>;

  /// type: 1 or 2; nmodes: N per axis (size = dim, 1..3); iflag: sign of i in
  /// the exponentials (+-1); tol: requested relative accuracy.
  Plan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes, int iflag,
       double tol, Options opts = {});

  // -- inspectors -----------------------------------------------------------
  int type() const { return type_; }
  int dim() const { return grid_.dim; }
  int iflag() const { return iflag_; }
  double tol() const { return tol_; }
  int kernel_width() const { return kp_.w; }
  Method resolved_method() const { return method_; }
  std::int64_t modes_total() const { return N_[0] * N_[1] * N_[2]; }
  std::array<std::int64_t, 3> modes() const { return N_; }
  const spread::GridSpec& fine_grid() const { return grid_; }
  std::size_t npoints() const { return M_; }
  vgpu::Device& device() const { return *dev_; }
  const Breakdown& last_breakdown() const { return bd_; }

  /// Registers M nonuniform points (device pointers; y/z null for dim<2/3).
  /// Performs fold-rescale plus, for GM-sort/SM, the bin-sort precomputation
  /// whose cost is amortized over repeated execute() calls.
  void set_points(std::size_t M, const T* x, const T* y, const T* z);

  /// Runs the transform: type 1 reads c (length M) and writes f (modes);
  /// type 2 reads f and writes c. Both are device pointers. Callable
  /// repeatedly after one set_points (the paper's "exec" timing).
  ///
  /// With Options::ntransf = B > 1, c holds B stacked strength vectors
  /// (length B*M) and f B stacked mode grids (length B*modes_total()). The
  /// whole stack runs through the batched pipeline: batch-strided
  /// spread/interp kernels evaluate each point's tap weights once for all B
  /// vectors, the FFT executes the B fine grids as one batched launch, and
  /// deconvolve/amplify cover the stack in a single launch — so the
  /// point-dependent work (and the sort precomputation from set_points) is
  /// amortized across the batch.
  void execute(cplx* c, cplx* f);

 private:
  void spread_step(const cplx* c);
  void interp_step(cplx* c);
  void deconvolve_type1(cplx* f);
  void amplify_type2(const cplx* f);
  void spread_batch_step(const cplx* c, int B);
  void interp_batch_step(cplx* c, int B);
  void deconvolve_type1_batch(cplx* f, int B);
  void amplify_type2_batch(const cplx* f, int B);

  vgpu::Device* dev_;
  int type_;
  int iflag_;
  double tol_;
  Options opts_;
  Method method_ = Method::Auto;

  std::array<std::int64_t, 3> N_{1, 1, 1};
  spread::GridSpec grid_;
  spread::BinSpec bins_;
  spread::KernelParams<T> kp_;
  spread::HornerTable<T> horner_;  ///< owns kerevalmeth=1 coefficients

  fft::FftNd<T> fft_;
  vgpu::device_buffer<cplx> fw_;          ///< fine grid (ntransf stacked planes)
  std::array<std::vector<T>, 3> fser_;    ///< per-dim correction factors

  vgpu::device_buffer<T> xg_, yg_, zg_;   ///< fold-rescaled coords
  std::size_t M_ = 0;
  spread::DeviceSort sort_;
  spread::SubprobSetup subs_;
  bool need_sort_ = false;

  Breakdown bd_;
};

extern template class Plan<float>;
extern template class Plan<double>;

}  // namespace cf::core
