#include "core/plan.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/timer.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "vgpu/primitives.hpp"

namespace cf::core {

const char* method_name(Method m) {
  switch (m) {
    case Method::Auto: return "auto";
    case Method::GM: return "GM";
    case Method::GMSort: return "GM-sort";
    case Method::SM: return "SM";
  }
  return "?";
}

namespace {

template <typename T>
spread::GridSpec make_grid(std::span<const std::int64_t> nmodes, double upsampfac, int w) {
  spread::GridSpec g;
  g.dim = static_cast<int>(nmodes.size());
  for (int d = 0; d < g.dim; ++d) {
    // ceil: a non-integral sigma * N (possible at sigma = 1.25) must round up
    // so the fine grid never under-samples. No-op at sigma = 2.
    const auto lower = static_cast<std::int64_t>(std::ceil(upsampfac * double(nmodes[d])));
    g.nf[d] = static_cast<std::int64_t>(
        fft::next235(static_cast<std::size_t>(std::max<std::int64_t>(lower, 2 * w))));
  }
  return g;
}

std::vector<std::size_t> fft_dims(const spread::GridSpec& g) {
  std::vector<std::size_t> dims;
  for (int d = 0; d < g.dim; ++d) dims.push_back(static_cast<std::size_t>(g.nf[d]));
  return dims;
}

}  // namespace

template <typename T>
Plan<T>::Plan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes, int iflag,
              double tol, Options opts)
    : dev_(&dev),
      type_(type),
      iflag_(iflag >= 0 ? 1 : -1),
      tol_(tol),
      opts_(opts),
      kp_(spread::KernelParams<T>::from_width(
          spread::width_from_tol(tol, opts.upsampfac), opts.upsampfac)),
      fft_(dev.pool(), fft_dims(make_grid<T>(nmodes, opts.upsampfac,
                                             spread::width_from_tol(tol, opts.upsampfac)))) {
  if (type_ != 1 && type_ != 2) throw std::invalid_argument("Plan: type must be 1 or 2");
  if (nmodes.empty() || nmodes.size() > 3)
    throw std::invalid_argument("Plan: dim must be 1..3");
  if (opts_.upsampfac != 2.0 && opts_.upsampfac != 1.25)
    throw std::invalid_argument("Plan: upsampfac must be 2.0 or 1.25");
  for (auto n : nmodes)
    if (n < 1) throw std::invalid_argument("Plan: modes must be >= 1");

  for (std::size_t d = 0; d < nmodes.size(); ++d) N_[d] = nmodes[d];
  grid_ = make_grid<T>(nmodes, opts_.upsampfac, kp_.w);

  kp_.fast = opts_.fastpath != 0;
  kp_.packed = opts_.packed_atomics != 0;
  if (opts_.kerevalmeth == 1)
    spread::horner_cache<T>(kp_.w, opts_.upsampfac).attach(kp_);

  auto bsz = opts_.binsize[0] > 0 ? opts_.binsize : spread::BinSpec::default_size(grid_.dim);
  bins_ = spread::BinSpec::make(grid_, bsz);

  // Method resolution (paper Sec. III + Rmk. 2).
  method_ = opts_.method;
  if (method_ == Method::Auto) {
    if (type_ == 1 && spread::sm_fits<T>(*dev_, grid_, bins_, kp_.w))
      method_ = Method::SM;
    else
      method_ = Method::GMSort;
  }
  if (method_ == Method::SM) {
    if (type_ == 2)
      throw std::invalid_argument("Plan: SM applies to type 1 only (paper Sec. III-B)");
    if (!spread::sm_fits<T>(*dev_, grid_, bins_, kp_.w))
      throw std::invalid_argument(
          "Plan: SM padded bin exceeds shared memory for this precision/dim "
          "(paper Rmk. 2); use GM-sort");
  }
  need_sort_ = (method_ == Method::GMSort || method_ == Method::SM);

  // One fine-grid plane per stacked vector, so a batched execute spreads,
  // transforms, and deconvolves the whole ntransf stack without reusing (and
  // thus serializing on) a single plane.
  const std::size_t nplanes = static_cast<std::size_t>(std::max(1, opts_.ntransf));
  fw_ = vgpu::device_buffer<cplx>(*dev_,
                                  nplanes * static_cast<std::size_t>(grid_.total()));

  // Deconvolution factors per dimension (planning-stage precompute).
  const T beta = kp_.beta;
  auto kernel = [beta](double z) { return double(spread::es_eval(T(z), beta)); };
  for (int d = 0; d < grid_.dim; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(N_[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), kp_.w,
                                        kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = grid_.dim; d < 3; ++d) fser_[d].assign(1, T(1));
}

template <typename T>
spread::NuPoints<T> Plan<T>::nu_points() const {
  return spread::NuPoints<T>{xg_.data(), grid_.dim >= 2 ? yg_.data() : nullptr,
                             grid_.dim >= 3 ? zg_.data() : nullptr, M_};
}

// Iteration order + no-wrap prefix for the per-point GM/GM-sort kernels:
// the interior-first partition when built, else the plain sort permutation
// (GM-sort) or user order (GM) with every point on the wrap path.
template <typename T>
const std::uint32_t* Plan<T>::iter_order(std::size_t& n_nowrap) const {
  if (cache_.valid && !cache_.interior.empty()) {
    n_nowrap = cache_.interior.n_interior;
    return cache_.interior.order.data();
  }
  n_nowrap = 0;
  return method_ == Method::GM ? nullptr : sort_.order.data();
}

template <typename T>
void Plan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z) {
  if (grid_.dim >= 2 && !y) throw std::invalid_argument("set_points: y required");
  if (grid_.dim >= 3 && !z) throw std::invalid_argument("set_points: z required");
  std::lock_guard lk(mu_);  // a shared plan may be re-pointed while others wait
  M_ = M;
  cache_.invalidate();  // previous points' caches are stale from here on
  subs_ = spread::SubprobSetup{};  // ...as is the subproblem decomposition
  Timer t;
  xg_ = vgpu::device_buffer<T>(*dev_, M);
  if (grid_.dim >= 2) yg_ = vgpu::device_buffer<T>(*dev_, M);
  if (grid_.dim >= 3) zg_ = vgpu::device_buffer<T>(*dev_, M);
  const std::int64_t nf0 = grid_.nf[0], nf1 = grid_.nf[1], nf2 = grid_.nf[2];
  const int dim = grid_.dim;
  dev_->launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg_[j] = spread::fold_rescale(x[j], nf0);
    if (dim >= 2) yg_[j] = spread::fold_rescale(y[j], nf1);
    if (dim >= 3) zg_[j] = spread::fold_rescale(z[j], nf2);
  });
  if (need_sort_)
    spread::bin_sort(*dev_, grid_, bins_, xg_.data(), dim >= 2 ? yg_.data() : nullptr,
                     dim >= 3 ? zg_.data() : nullptr, M, sort_);
  bd_ = Breakdown{};
  bd_.sort = t.seconds();

  // Plan-resident PointCache: everything that depends on the points but not
  // the strengths is paid here, once, and amortized over repeated executes.
  // The parts toggle independently: point_cache gates only the SM tap table
  // (its 0 setting is the per-execute-rebuild ablation baseline);
  // interior_fastpath gates only the interior-first partition; tiled_spread
  // gates the tile-ownership set of the atomic-free writeback.
  Timer tc;
  if (M_ > 0) {
    spread::NuPoints<T> pts{xg_.data(), dim >= 2 ? yg_.data() : nullptr,
                            dim >= 3 ? zg_.data() : nullptr, M_};
    const std::uint32_t* order = need_sort_ ? sort_.order.data() : nullptr;
    if (opts_.tiled_spread && type_ == 1 &&
        (method_ == Method::SM || method_ == Method::GMSort)) {
      // Chunk cap: explicit option wins; at the 0 (auto) setting the
      // CF_TILE_CHUNK env var can force a cap (CI runs the suite with
      // CF_TILE_CHUNK=1 to exercise maximal splitting everywhere).
      int chunk_cap = opts_.tile_chunk_cap;
      if (chunk_cap == 0)
        if (const char* e = std::getenv("CF_TILE_CHUNK"); e && *e)
          chunk_cap = std::atoi(e);
      spread::build_tile_set(*dev_, grid_, bins_, kp_.w, sort_,
                             std::max(1, opts_.ntransf), spread::kTileArenaMaxBytes,
                             cache_.tiles, chunk_cap);
    }
    // SM always consumes a tap table, so point_cache >= 1 persists it. The
    // tiled GM-sort engine can stream the same table instead of evaluating
    // taps inline (bitwise-identical either way — see spread_tiled.cpp);
    // point_cache = 2 opts into that SM-memory-profile throughput mode
    // (the service layer's batched plans), closing the per-execute
    // evaluation cost that batching otherwise only amortizes per chunk.
    if ((opts_.point_cache && method_ == Method::SM) ||
        (opts_.point_cache > 1 && method_ == Method::GMSort && type_ == 1 &&
         cache_.tiles.usable)) {
      spread::build_tap_table(*dev_, grid_.dim, kp_, pts, order, cache_.taps);
      ++tap_builds_;
    }
    // The partition only feeds the atomic GM/GM-sort kernels and interp;
    // when the tile engine will serve the (type-1) spread it would be dead
    // work, so skip it — interior_points then reads 0 for such plans. The
    // SM subproblem decomposition is gated the same way: the tile engine
    // works per bin, so subproblems only matter on the atomic fallback.
    if (opts_.interior_fastpath && method_ != Method::SM && !cache_.tiles.usable)
      spread::classify_interior(*dev_, grid_, kp_, pts, order, cache_.interior);
    if (method_ == Method::SM && !cache_.tiles.usable)
      subs_ = spread::build_subproblems(*dev_, sort_, opts_.msub);
    // Valid only when something was actually built — cache_hits must mean
    // "an execute consumed plan-resident data".
    cache_.valid =
        !cache_.taps.empty() || !cache_.interior.empty() || cache_.tiles.usable;
  }
  bd_.cache_build = tc.seconds();
  bd_.tap_builds = tap_builds_.load(std::memory_order_relaxed);
  bd_.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  bd_.interior_points = cache_.interior.n_interior;
  bd_.boundary_points = cache_.interior.n_boundary;
  bd_.tiles_active = cache_.tiles.n_active;
  bd_.tiles_merge = cache_.tiles.n_merge;
  bd_.arena_bytes = cache_.tiles.usable ? cache_.tiles.arena_bytes : 0;
  bd_.tile_chunks = cache_.tiles.usable ? cache_.tiles.n_chunks : 0;
  bd_.max_tile_points = cache_.tiles.usable ? cache_.tiles.max_tile_points : 0;
}

template <typename T>
void Plan<T>::spread_step(const cplx* c, int B, Breakdown& bd) {
  auto pts = nu_points();
  const std::size_t fwstride = static_cast<std::size_t>(grid_.total());
  vgpu::fill(*dev_, std::span(fw_.data(), static_cast<std::size_t>(B) * fwstride),
             cplx(0, 0));
  bd.tiled = 0;
  switch (method_) {
    case Method::GM: {
      // GM stays on the atomic path by definition (the unsorted baseline);
      // it still benefits from the interior-first partition.
      std::size_t nowrap = 0;
      const std::uint32_t* order = iter_order(nowrap);
      pts.n_nowrap = nowrap;
      spread::spread_gm_batch<T>(*dev_, grid_, kp_, pts, c, fw_.data(), order, B, M_,
                                 fwstride);
      break;
    }
    case Method::GMSort:
      if (cache_.tiles.usable) {
        // Tile-owned writeback; taps evaluated inline (same values as the
        // table, see spread_tiled.cpp) so GM-sort keeps its memory profile,
        // unless point_cache = 2 persisted the table in set_points.
        bd.chunk_steals = spread::spread_tiled_batch<T>(
            *dev_, grid_, bins_, kp_, pts, c, fw_.data(), sort_, cache_.tiles,
            cache_.taps.empty() ? nullptr : &cache_.taps, B, M_, fwstride);
        bd.tiled = 1;
      } else {
        std::size_t nowrap = 0;
        const std::uint32_t* order = iter_order(nowrap);
        pts.n_nowrap = nowrap;
        spread::spread_gm_batch<T>(*dev_, grid_, kp_, pts, c, fw_.data(), order, B, M_,
                                   fwstride);
      }
      break;
    case Method::SM: {
      // SM always consumes a tap table; the per-execute rebuild is the
      // Options::point_cache == 0 ablation baseline (the pre-cache
      // pipeline's cost model), bitwise-identical to the cached table.
      spread::TapTable<T> transient;
      const spread::TapTable<T>* taps = &cache_.taps;
      if (cache_.taps.empty()) {
        spread::build_tap_table(*dev_, grid_.dim, kp_, pts, sort_.order.data(),
                                transient);
        ++tap_builds_;
        taps = &transient;
      }
      if (cache_.tiles.usable) {
        bd.chunk_steals = spread::spread_tiled_batch<T>(
            *dev_, grid_, bins_, kp_, pts, c, fw_.data(), sort_, cache_.tiles, taps, B,
            M_, fwstride);
        bd.tiled = 1;
      } else {
        spread::spread_sm_batch<T>(*dev_, grid_, bins_, kp_, pts, c, fw_.data(), sort_,
                                   subs_, opts_.msub, *taps, B, M_, fwstride);
      }
      break;
    }
    default:
      throw std::logic_error("unresolved method");
  }
}

template <typename T>
void Plan<T>::interp_step(cplx* c, int B) {
  auto pts = nu_points();
  std::size_t nowrap = 0;
  const std::uint32_t* order = iter_order(nowrap);
  pts.n_nowrap = nowrap;
  spread::interp_batch<T>(*dev_, grid_, kp_, pts, fw_.data(), c, order, B, M_,
                          static_cast<std::size_t>(grid_.total()));
}

// Type-1 step 3 (paper eq. (10)): truncate to the central modes and scale.
// One launch covers the whole ntransf stack, with the per-mode index math and
// correction-factor product computed once per mode.
template <typename T>
void Plan<T>::deconvolve_type1(cplx* f, int B) {
  const auto N = N_;
  const auto nf = grid_.nf;
  const int mo = opts_.modeord;
  const std::int64_t ntot = modes_total();
  const std::size_t fwstride = static_cast<std::size_t>(grid_.total());
  const T* p0 = fser_[0].data();
  const T* p1 = fser_[1].data();
  const T* p2 = fser_[2].data();
  const cplx* fw = fw_.data();
  dev_->launch_items(static_cast<std::size_t>(ntot), 256,
                     [=, this](std::size_t i, vgpu::BlockCtx&) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % N[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / N[0]) % N[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (N[0] * N[1]);
    const std::int64_t k0 = spread::index_to_mode(i0, N[0], mo);
    const std::int64_t k1 = spread::index_to_mode(i1, N[1], mo);
    const std::int64_t k2 = spread::index_to_mode(i2, N[2], mo);
    const std::int64_t g0 = spread::wrap_index(k0, nf[0]);
    const std::int64_t g1 = spread::wrap_index(k1, nf[1]);
    const std::int64_t g2 = spread::wrap_index(k2, nf[2]);
    const T p = p0[k0 + N[0] / 2] * p1[k1 + N[1] / 2] * p2[k2 + N[2] / 2];
    const std::int64_t lin = g0 + nf[0] * (g1 + nf[1] * g2);
    for (int b = 0; b < B; ++b)
      f[b * static_cast<std::size_t>(ntot) + i] = fw[b * fwstride + lin] * p;
  });
}

template <typename T>
Breakdown Plan<T>::execute(cplx* c, cplx* f, int B) {
  std::lock_guard lk(mu_);  // shared plans serialize; each caller snapshots
  if (B <= 0) B = std::max(1, opts_.ntransf);
  if (M_ == 0) {
    // No points set: type 1 yields zero output; type 2 writes nothing.
    if (type_ == 1)
      for (std::int64_t i = 0; i < B * modes_total(); ++i) f[i] = cplx(0, 0);
    return bd_;
  }
  // Per-execute snapshot: starts from the set_points-era fields (sort /
  // cache_build / classification) and records THIS execute's stage timings,
  // so concurrent callers on a shared plan never see each other's numbers.
  Breakdown bd = bd_;
  bd.spread = bd.fft = bd.deconvolve = bd.interp = 0;
  bd.chunk_steals = 0;  // per-execute counter, refilled by a tiled spread_step
  if (cache_.valid) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  // A coalesced batch larger than the constructed ntransf grows the fine-grid
  // stack once; the batch-strided stages take B as a plain parameter.
  const std::size_t fwstride = static_cast<std::size_t>(grid_.total());
  if (static_cast<std::size_t>(B) * fwstride > fw_.size())
    fw_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(B) * fwstride);
  // One stage pipeline for every batch size: batch-strided spread/interp,
  // one batched FFT launch over the B planes, one deconvolve launch (type-2's
  // amplify is fused into the FFT's first-axis pass). B = 1 runs the same
  // kernels at batch size one.
  Timer t;
  if (type_ == 1) {
    spread_step(c, B, bd);
    bd.spread = t.seconds();
    t.reset();
    fft_.exec_batch(fw_.data(), static_cast<std::size_t>(B), fwstride, iflag_);
    bd.fft = t.seconds();
    t.reset();
    deconvolve_type1(f, B);
    bd.deconvolve = t.seconds();
  } else {
    // Fused amplify + FFT (type-2 step 1, paper eq. (11)): fw_'s rows are
    // produced by amplify_fine_row inside the first-axis pass (zero-padding
    // rows skip their transforms entirely), removing the separate amplify
    // write pass over the B-plane fine grid. Its cost is reported under
    // bd.fft.
    fft_.exec_batch_fused(
        fw_.data(), static_cast<std::size_t>(B), fwstride, iflag_,
        [&](cplx* row, std::size_t line, std::size_t b) {
          return spread::amplify_fine_row(
              row, line, f + b * static_cast<std::size_t>(modes_total()), grid_.dim,
              N_, grid_.nf, fser_, opts_.modeord);
        });
    bd.fft = t.seconds();
    t.reset();
    interp_step(c, B);
    bd.interp = t.seconds();
  }
  bd.tap_builds = tap_builds_.load(std::memory_order_relaxed);
  bd.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  bd_ = bd;
  return bd;
}

template class Plan<float>;
template class Plan<double>;

}  // namespace cf::core
