// Type-3 NUFFT (nonuniform -> nonuniform), the paper's first-named future
// work item (Sec. VI; ref [30] Lee & Greengard):
//
//   f_k = sum_j c_j exp(iflag * i * s_k . x_j),   x_j, s_k arbitrary reals.
//
// Algorithm (the standard two-kernel reduction, per dimension):
//  * center and scale: x' = x - x_c with half-width X; s' = s - s_c with
//    half-width S; pick gamma = sigma_s*X/pi (sigma_s = max(sigma, 2), see
//    set_points) so xt = x'/gamma fits in [-pi/sigma_s, pi/sigma_s], and a
//    fine grid nf ~ next235(sigma*(2*gamma*S + w)).
//  * the reduced F(xi) = sum_j c~_j e^{i xi xt_j} is interpolated at
//    xi_k = gamma*s'_k from its integer samples H_m, which are exactly a
//    type-1 NUFFT of kernel-corrected strengths
//       c~_j = c_j * e^{i iflag s_c . x'_j} / prod_d psihat2(xt_jd),
//    where psihat2 is the Fourier transform of the frequency-domain
//    interpolation kernel — so the whole pipeline is
//       spread (GM-sort/SM) -> FFT -> deconvolve (all nf modes) ->
//       interpolate at xi_k -> multiply target phases e^{i iflag s_k . x_c}.
//
// Everything reuses the library's spreading/interp/FFT substrates, so the
// load-balancing properties of the paper's methods carry over to type 3.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "fft/fftnd.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/point_cache.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::core {

/// Type-3 plan. Unlike types 1/2 the fine grid depends on the point/target
/// geometry, so all planning happens in set_points.
template <typename T>
class Type3Plan {
 public:
  using cplx = std::complex<T>;

  Type3Plan(vgpu::Device& dev, int dim, int iflag, double tol, Options opts = {});

  int dim() const { return dim_; }
  int kernel_width() const { return kp_.w; }
  std::size_t nsources() const { return M_; }
  std::size_t ntargets() const { return K_; }
  const spread::GridSpec& fine_grid() const { return grid_; }

  /// Registers M source points (x/y/z, device pointers, unused = null) and
  /// K target frequencies (s/t/u). Computes the geometry-dependent fine
  /// grid, precomputes per-point corrections and phases, and bin-sorts both
  /// point sets.
  void set_points(std::size_t M, const T* x, const T* y, const T* z, std::size_t K,
                  const T* s, const T* t, const T* u);

  /// f_k = sum_j c_j exp(iflag i s_k.x_j); c has length M, f length K.
  void execute(cplx* c, cplx* f);

 private:
  vgpu::Device* dev_;
  int dim_;
  int iflag_;
  double tol_;
  Options opts_;
  spread::KernelParams<T> kp_;  ///< kerevalmeth=1 tables live in the
                                ///< process-wide per-(w, sigma) horner_cache

  // Geometry (per dim): centers, half-widths, scale gamma.
  std::array<double, 3> xc_{0, 0, 0}, sc_{0, 0, 0}, gam_{1, 1, 1};
  spread::GridSpec grid_;
  spread::BinSpec bins_;
  Method method_ = Method::GMSort;

  std::unique_ptr<fft::FftNd<T>> fft_;
  vgpu::device_buffer<cplx> fw_;      ///< fine grid (spread target)
  vgpu::device_buffer<cplx> hgrid_;   ///< deconvolved modes H_m, CMCL layout
  std::array<std::vector<T>, 3> fser_;  ///< deconvolution over all nf modes

  std::size_t M_ = 0, K_ = 0;
  vgpu::device_buffer<T> xg_, yg_, zg_;     ///< scaled sources, grid coords
  vgpu::device_buffer<T> sg_, tg_, ug_;     ///< scaled targets, grid coords
  vgpu::device_buffer<cplx> src_prefac_;    ///< kernel correction * phase, per source
  vgpu::device_buffer<cplx> trg_phase_;     ///< e^{i iflag s_k.x_c}, per target
  vgpu::device_buffer<cplx> chat_;          ///< corrected strengths workspace
  spread::DeviceSort src_sort_, trg_sort_;
  spread::SubprobSetup subs_;
  spread::TapTable<T> src_taps_;  ///< SM tap table, built once per set_points
  /// Interior-first partitions for the GM-sort no-wrap fast path: sources
  /// feed the inner type-1 spread, targets the final interpolation (the
  /// ROADMAP "wire NuPoints interior through type 3" follow-up).
  spread::InteriorPartition src_part_, trg_part_;
  /// Tile-ownership set for the atomic-free source spread (same gates and
  /// semantics as Plan's Options::tiled_spread).
  spread::TileSet<T> src_tiles_;
};

extern template class Type3Plan<float>;
extern template class Type3Plan<double>;

}  // namespace cf::core
