/* C API mirroring cuFINUFFT's interface (cufinufft_makeplan / setpts /
 * execute / destroy), so C and FFI callers can drive the library without C++.
 *
 * Differences from the CUDA original: a device handle replaces the implicit
 * CUDA device (create one per "GPU"), and pointers are host-visible device
 * pointers (see vgpu). Single-precision entry points carry the `f` suffix,
 * exactly as cufinufft does.
 *
 * All functions return 0 on success, nonzero error codes otherwise.
 */
#ifndef CUFINUFFT_SIM_C_API_H_
#define CUFINUFFT_SIM_C_API_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct cfs_device_s* cfs_device;
typedef struct cfs_plan_s* cfs_plan;
typedef struct cfs_planf_s* cfs_planf;

/* Error codes. */
enum {
  CFS_SUCCESS = 0,
  CFS_ERR_INVALID_ARG = 1,
  CFS_ERR_METHOD_UNAVAILABLE = 2, /* e.g. SM in 3D double (paper Rmk. 2) */
  CFS_ERR_INTERNAL = 3,
  CFS_ERR_OVERLOADED = 4 /* shed at the service admission cap; retry later */
};

/* Spreading method selector (matches cufinufft's gpu_method option). */
enum {
  CFS_METHOD_AUTO = 0,
  CFS_METHOD_GM = 1,      /* input-driven, unsorted (baseline) */
  CFS_METHOD_GMSORT = 2,  /* bin-sorted global-memory */
  CFS_METHOD_SM = 3       /* shared-memory subproblems (type 1 only) */
};

/* Tunable options; zero-initialize then override (cufinufft_default_opts). */
typedef struct {
  int gpu_method;        /* CFS_METHOD_* */
  int gpu_maxsubprobsize; /* Msub; 0 = 1024 */
  int gpu_binsizex, gpu_binsizey, gpu_binsizez; /* 0 = paper defaults */
  int ntransf;            /* stacked vectors per execute; 0 = 1 */
  int gpu_kerevalmeth;    /* 0 = direct exp/sqrt, 1 = Horner table */
  int modeord;            /* 0 = CMCL (-N/2..N/2-1), 1 = FFT-style */
  int gpu_fastpath;       /* 0 = default (width-specialized SIMD kernels),
                             -1 = runtime-width scalar fallback */
  int gpu_packed_atomics; /* 1 = packed 8-byte CAS for complex<float>
                             writeback; 0 = two float atomic adds (default) */
  int gpu_point_cache;    /* 0 = default (plan-resident tap table built in
                             setpts), 2 = also cache taps for the tiled
                             GM-sort spread (throughput mode; the service
                             layer's plans use it), -1 = rebuild per execute */
  int gpu_interior_fastpath; /* 0 = default (interior-first no-wrap partition
                                for GM/GM-sort), -1 = always wrap */
  int gpu_tiled_spread;   /* 0 = default (tile-owned atomic-free spread
                             writeback with deterministic halo merge),
                             -1 = atomic writeback */
  int gpu_tile_chunk_cap; /* tiled-spread chunk cap (points per work item):
                             0 = auto (points-per-worker heuristic; the
                             CF_TILE_CHUNK env var overrides the auto value),
                             > 0 = explicit cap, -1 = never split a tile */
  double upsampfac;       /* fine-grid sigma: 0 = default (2.0); 1.25 = the
                             low-upsampling mode (~2x 3D fine-grid volume
                             instead of 8x, wider kernel). Other values are
                             rejected at plan creation. */
} cfs_opts;

void cfs_default_opts(cfs_opts* opts);

/* Device lifecycle: workers = 0 uses all host cores. */
int cfs_device_create(cfs_device* dev, int workers);
int cfs_device_destroy(cfs_device dev);
/* Current device memory in use (bytes), for RAM accounting. */
size_t cfs_device_bytes_in_use(cfs_device dev);

/* Double-precision plan: type 1 or 2; dim = 1..3; nmodes has dim entries;
 * iflag is the sign of i in the exponent; tol the requested accuracy. */
int cfs_makeplan(cfs_device dev, int type, int dim, const int64_t* nmodes, int iflag,
                 double tol, const cfs_opts* opts, cfs_plan* plan);
int cfs_setpts(cfs_plan plan, size_t M, const double* x, const double* y,
               const double* z);
/* Type 1 reads c (M complex interleaved) and writes f (prod(nmodes));
 * type 2 reads f and writes c. */
int cfs_execute(cfs_plan plan, double* c, double* f);
int cfs_destroy(cfs_plan plan);

/* Tiled-spread statistics from the plan's most recent setpts/execute:
 * tile_chunks = (tile, chunk) work items in the spread schedule (equals
 * tiles_active when no tile was split), chunk_steals = work items the
 * stealing scheduler moved across workers in the last execute,
 * max_tile_points = largest bin population, tiles_active = non-empty tiles,
 * tiled = 1 when the last execute used the atomic-free tile writeback.
 * Any output pointer may be NULL. */
int cfs_plan_stats(cfs_plan plan, uint64_t* tile_chunks, uint64_t* chunk_steals,
                   uint64_t* max_tile_points, uint64_t* tiles_active, int* tiled);

/* Single-precision variants. */
int cfs_makeplanf(cfs_device dev, int type, int dim, const int64_t* nmodes, int iflag,
                  double tol, const cfs_opts* opts, cfs_planf* plan);
int cfs_setptsf(cfs_planf plan, size_t M, const float* x, const float* y, const float* z);
int cfs_executef(cfs_planf plan, float* c, float* f);
int cfs_destroyf(cfs_planf plan);
int cfs_plan_statsf(cfs_planf plan, uint64_t* tile_chunks, uint64_t* chunk_steals,
                    uint64_t* max_tile_points, uint64_t* tiles_active, int* tiled);

/* ---- Concurrent NUFFT service ------------------------------------------- *
 * A service instance owns dispatch threads that coalesce pending requests
 * with the same transform signature and point set into one batched execute
 * (amortizing point handling across callers), reusing plans through a
 * signature-keyed LRU registry and set_points through point fingerprints.
 * Submissions return a request handle immediately; cfs_service_wait blocks
 * for one request and yields its status. All request buffers (points,
 * input, output) must stay valid until the wait returns. */
typedef struct cfs_service_s* cfs_service;
typedef int64_t cfs_request;

/* Admission policy at the max_outstanding cap. */
enum {
  CFS_ADMIT_BLOCK = 0, /* backpressure: submit blocks until a slot frees */
  CFS_ADMIT_SHED = 1   /* fail fast: wait returns CFS_ERR_OVERLOADED */
};

/* Request latency class. */
enum {
  CFS_PRIORITY_BULK = 0,       /* rides the coalescing window */
  CFS_PRIORITY_INTERACTIVE = 1 /* closes windows early, jumps the queue */
};

/* threads = 0 reads CF_SERVICE_THREADS (else 2); max_plans = 0 -> 16 plans;
 * max_batch = 0 -> 8 coalesced requests per execute. Equivalent to
 * cfs_service_create_ex(..., 0, CFS_ADMIT_BLOCK, -1). */
int cfs_service_create(cfs_service* svc, cfs_device dev, int threads, int max_plans,
                       int max_batch);
/* Serving-quality variant. max_outstanding = 0 admits unboundedly; otherwise
 * `admission` (CFS_ADMIT_*) decides what happens to submissions past the cap.
 * window_us is the coalescing window in microseconds: dispatchers hold a
 * batch open that long (measured from its oldest request) so near-simultaneous
 * same-signature submitters coalesce; the window is adaptive — it closes
 * early when the batch is full, holds an interactive request, or the service
 * is otherwise idle. window_us < 0 reads CF_SERVICE_WINDOW_US (else 0);
 * 0 = dispatch immediately. */
int cfs_service_create_ex(cfs_service* svc, cfs_device dev, int threads,
                          int max_plans, int max_batch, int64_t max_outstanding,
                          int admission, int64_t window_us);
/* Drains outstanding requests, then stops the workers. */
int cfs_service_destroy(cfs_service svc);

/* Async transform, double precision: type 1 reads input = c (M complex
 * interleaved) and writes output = f (prod(nmodes) complex); type 2 the
 * reverse. opts->ntransf is ignored (the service batches). */
int cfs_service_submit(cfs_service svc, int type, int dim, const int64_t* nmodes,
                       int iflag, double tol, const cfs_opts* opts, size_t M,
                       const double* x, const double* y, const double* z,
                       const double* input, double* output, cfs_request* req);
/* Single-precision variant. */
int cfs_service_submitf(cfs_service svc, int type, int dim, const int64_t* nmodes,
                        int iflag, double tol, const cfs_opts* opts, size_t M,
                        const float* x, const float* y, const float* z,
                        const float* input, float* output, cfs_request* req);

/* Priority variants: `priority` is CFS_PRIORITY_BULK or
 * CFS_PRIORITY_INTERACTIVE. The plain submit calls are the BULK class. */
int cfs_service_submit_pri(cfs_service svc, int type, int dim, const int64_t* nmodes,
                           int iflag, double tol, const cfs_opts* opts, size_t M,
                           const double* x, const double* y, const double* z,
                           const double* input, double* output, int priority,
                           cfs_request* req);
int cfs_service_submitf_pri(cfs_service svc, int type, int dim, const int64_t* nmodes,
                            int iflag, double tol, const cfs_opts* opts, size_t M,
                            const float* x, const float* y, const float* z,
                            const float* input, float* output, int priority,
                            cfs_request* req);

/* Blocks until the request completes; returns its status (CFS_SUCCESS, the
 * mapped dispatch error, or CFS_ERR_OVERLOADED when the request was shed at
 * the admission cap). A handle can be waited on once. */
int cfs_service_wait(cfs_service svc, cfs_request req);

/* Monotonic counters; any pointer may be NULL. */
int cfs_service_stats(cfs_service svc, uint64_t* batches, uint64_t* batched_requests,
                      uint64_t* plan_misses, uint64_t* setpts_reuses);
/* Admission accounting. After every submitted request has been waited on,
 * submitted == completed + failed always holds; `shed` is the subset of
 * failed rejected at the admission cap. Any pointer may be NULL. */
int cfs_service_stats_ex(cfs_service svc, uint64_t* submitted, uint64_t* completed,
                         uint64_t* failed, uint64_t* shed);

/* ---- Sharded service tier ----------------------------------------------- *
 * N service shards, each owning a private device + worker pool, behind one
 * submit: requests are routed sticky-by-signature (same transform signature
 * -> same shard, keeping plan and set_points reuse hot), a saturated shard
 * spills crowded-out signatures to the least-loaded one, and the
 * max_outstanding/admission gate is GLOBAL across shards. Outputs are
 * bitwise-identical at any shard count or routing decision. The tier owns
 * its devices (no cfs_device argument). */
typedef struct cfs_sharded_s* cfs_sharded;

/* shards = 0 reads CF_SERVICE_SHARDS (else 1); device_workers = 0 splits the
 * hardware threads evenly across shards; threads/max_plans/max_batch are
 * per-shard with the cfs_service_create defaults. Equivalent to
 * cfs_sharded_create_ex(..., 0, CFS_ADMIT_BLOCK, -1). */
int cfs_sharded_create(cfs_sharded* svc, int shards, int device_workers, int threads,
                       int max_plans, int max_batch);
/* Serving-quality variant; max_outstanding/admission/window_us as in
 * cfs_service_create_ex, with the admission cap applied globally. */
int cfs_sharded_create_ex(cfs_sharded* svc, int shards, int device_workers,
                          int threads, int max_plans, int max_batch,
                          int64_t max_outstanding, int admission, int64_t window_us);
/* Drains every shard, then tears them (and their devices) down. */
int cfs_sharded_destroy(cfs_sharded svc);

/* Async type-1/2 submits, same buffer contract as cfs_service_submit(f). */
int cfs_sharded_submit(cfs_sharded svc, int type, int dim, const int64_t* nmodes,
                       int iflag, double tol, const cfs_opts* opts, size_t M,
                       const double* x, const double* y, const double* z,
                       const double* input, double* output, cfs_request* req);
int cfs_sharded_submitf(cfs_sharded svc, int type, int dim, const int64_t* nmodes,
                        int iflag, double tol, const cfs_opts* opts, size_t M,
                        const float* x, const float* y, const float* z,
                        const float* input, float* output, cfs_request* req);
/* Async type-3 submit, double precision: M sources (x/y/z) and K target
 * frequencies (s/t/u); input = c (M complex interleaved), output = f (K
 * complex). Requests with the same (dim, iflag, tol, opts) signature AND the
 * same source/target geometry coalesce onto one shard-resident plan,
 * amortizing its geometry-heavy set_points. */
int cfs_sharded_submit3(cfs_sharded svc, int dim, int iflag, double tol,
                        const cfs_opts* opts, size_t M, const double* x,
                        const double* y, const double* z, size_t K, const double* s,
                        const double* t, const double* u, const double* input,
                        double* output, cfs_request* req);

/* Blocks for one request; same status mapping as cfs_service_wait. */
int cfs_sharded_wait(cfs_sharded svc, cfs_request req);

/* Front-tier roll-up counters; any pointer may be NULL. plan_misses and
 * setpts_reuses are summed over the shards, so a single-signature stream
 * shows plan_misses == 1 at any shard count (sticky routing). */
int cfs_sharded_stats(cfs_sharded svc, int* shards, uint64_t* routed,
                      uint64_t* sticky_hits, uint64_t* migrations,
                      uint64_t* plan_misses, uint64_t* setpts_reuses);
/* Global admission ledger: submitted == completed + failed holds across all
 * shards once every request has been waited on; shed counts global-cap
 * rejections. Any pointer may be NULL. */
int cfs_sharded_stats_ex(cfs_sharded svc, uint64_t* submitted, uint64_t* completed,
                         uint64_t* failed, uint64_t* shed);
/* One shard's own counters (shard in [0, shards)). Any pointer may be NULL. */
int cfs_sharded_shard_stats(cfs_sharded svc, int shard, uint64_t* submitted,
                            uint64_t* completed, uint64_t* batches,
                            uint64_t* plan_misses);

/* ---- observability (src/obs): process-global tracing + metrics ---------- */

/* Master trace switch (default off; also settable via CF_TRACE=1). Spans
 * record into per-thread ring buffers; enabling mid-run is safe. Tracing
 * never changes output bits — it only records timings. */
int cfs_obs_enable(int on);
/* 1 if tracing is currently enabled, else 0. */
int cfs_obs_enabled(void);
/* Writes a JSON snapshot of every live service's metrics (ledger, counters,
 * log-bucketed latency histograms) to `path`. Returns CFS_ERR_INTERNAL if
 * any service's ledger snapshot violates submitted == completed + failed +
 * outstanding (the exported snapshot asserts the invariant itself). */
int cfs_obs_snapshot_json(const char* path);
/* Same snapshot as Prometheus text exposition. */
int cfs_obs_prometheus(const char* path);
/* Exports all recorded spans as Chrome trace_event JSON (load the file in
 * chrome://tracing or Perfetto). */
int cfs_obs_trace_export(const char* path);
/* Drops all recorded spans (ring buffers stay allocated). */
int cfs_obs_trace_reset(void);

/* Type-3 (nonuniform -> nonuniform) plans, double precision. setpts takes
 * both the M source points (x/y/z) and the K target frequencies (s/t/u);
 * execute writes f[k] = sum_j c_j exp(iflag*i*s_k.x_j). */
typedef struct cfs_plan3_s* cfs_plan3;
int cfs_makeplan3(cfs_device dev, int dim, int iflag, double tol, const cfs_opts* opts,
                  cfs_plan3* plan);
int cfs_setpts3(cfs_plan3 plan, size_t M, const double* x, const double* y,
                const double* z, size_t K, const double* s, const double* t,
                const double* u);
int cfs_execute3(cfs_plan3 plan, double* c, double* f);
int cfs_destroy3(cfs_plan3 plan);

#ifdef __cplusplus
}
#endif

#endif /* CUFINUFFT_SIM_C_API_H_ */
