// gpuNUFFT-style comparator library (paper Sec. IV-C, [24]).
//
// Reproduces gpuNUFFT's behavioural signature:
//
//  1. Output-driven, sector-based gridding: the grid is split into fixed
//     sectors of width 8; one thread block per sector accumulates *all* of
//     its points into a padded sector buffer in shared memory. There is no
//     subproblem cap, so a clustered distribution serializes into a few
//     blocks — robust ordering but poor load balance (the paper's
//     [18, Rmk. 12] criticism of naive output-driven schemes).
//  2. A precomputed Kaiser-Bessel kernel lookup table (texture analogue)
//     with the width capped at 5, giving the accuracy floor (eps >~ 1e-3/1e-4)
//     the paper observes ("gpuNUFFT's eps appears always to exceed 1e-3").
//  3. Sector sorting happens at operator build (set_points) on the host —
//     the paper notes gpuNUFFT sorts on the CPU and excludes that cost.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fft/fftnd.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::baselines {

/// gpuNUFFT's fixed sector width (the paper uses its demo value 8).
inline constexpr int kSectorWidth = 8;
/// Kernel width cap producing the observed accuracy floor.
inline constexpr int kMaxKbWidth = 5;

template <typename T>
class GpunufftPlan {
 public:
  using cplx = std::complex<T>;

  GpunufftPlan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes,
               int iflag, double tol);

  int type() const { return type_; }
  int dim() const { return grid_.dim; }
  int kernel_width() const { return w_; }
  std::int64_t modes_total() const { return N_[0] * N_[1] * N_[2]; }

  /// Builds the "operator": fold-rescale + host-side sector sort.
  void set_points(std::size_t M, const T* x, const T* y, const T* z);

  /// Type 1: c -> f ("adjoint" in gpuNUFFT terms); type 2: f -> c ("forward").
  void execute(cplx* c, cplx* f);

 private:
  T kb_eval(T z) const;  ///< table lookup with linear interpolation
  void spread(const cplx* c);
  void interp(cplx* c);
  void deconvolve(cplx* f, bool forward);

  vgpu::Device* dev_;
  int type_;
  int iflag_;
  int w_;
  T beta_;

  std::array<std::int64_t, 3> N_{1, 1, 1};
  spread::GridSpec grid_;
  spread::BinSpec sectors_;
  std::unique_ptr<fft::FftNd<T>> fft_;
  vgpu::device_buffer<cplx> fw_;
  std::array<std::vector<T>, 3> fser_;
  std::vector<T> kb_table_;

  vgpu::device_buffer<T> xg_, yg_, zg_;
  std::size_t M_ = 0;
  spread::DeviceSort sort_;
};

extern template class GpunufftPlan<float>;
extern template class GpunufftPlan<double>;

}  // namespace cf::baselines
