#include "baselines/gpunufft_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fft/fft.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "vgpu/primitives.hpp"

namespace cf::baselines {

namespace {

/// Modified Bessel I0 by its power series (adequate for beta <= ~40; used
/// only at plan build for the lookup table and deconvolution quadrature).
double bessel_i0(double x) {
  const double q = x * x / 4.0;
  double term = 1.0, sum = 1.0;
  for (int k = 1; k < 200; ++k) {
    term *= q / (double(k) * double(k));
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

/// Beatty et al. optimal KB shape for oversampling sigma = 2.
double kb_beta(int w) {
  const double sigma = 2.0;
  const double t = double(w) * (sigma - 0.5) / sigma;
  return 3.141592653589793 * std::sqrt(std::max(t * t - 0.8, 0.1));
}

int kb_width_from_tol(double tol) {
  const int w = static_cast<int>(std::ceil(std::log10(1.0 / tol))) + 1;
  return std::clamp(w, 2, kMaxKbWidth);
}

constexpr int kTableSize = 4096;

}  // namespace

template <typename T>
GpunufftPlan<T>::GpunufftPlan(vgpu::Device& dev, int type,
                              std::span<const std::int64_t> nmodes, int iflag, double tol)
    : dev_(&dev),
      type_(type),
      iflag_(iflag >= 0 ? 1 : -1),
      w_(kb_width_from_tol(tol)),
      beta_(static_cast<T>(kb_beta(kb_width_from_tol(tol)))) {
  if (type_ != 1 && type_ != 2)
    throw std::invalid_argument("GpunufftPlan: type must be 1 or 2");
  if (nmodes.size() < 2 || nmodes.size() > 3)
    throw std::invalid_argument("GpunufftPlan: dims 2..3 (as the real library)");
  for (std::size_t d = 0; d < nmodes.size(); ++d) N_[d] = nmodes[d];
  grid_.dim = static_cast<int>(nmodes.size());
  for (int d = 0; d < grid_.dim; ++d)
    grid_.nf[d] = static_cast<std::int64_t>(fft::next235(
        static_cast<std::size_t>(std::max<std::int64_t>(2 * N_[d], 2 * w_))));
  sectors_ = spread::BinSpec::make(grid_, {kSectorWidth, kSectorWidth, kSectorWidth});

  std::vector<std::size_t> dims;
  for (int d = 0; d < grid_.dim; ++d) dims.push_back(static_cast<std::size_t>(grid_.nf[d]));
  fft_ = std::make_unique<fft::FftNd<T>>(dev_->pool(), dims);
  fw_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(grid_.total()));

  // Kernel lookup table on z in [0, 1] (texture analogue).
  const double beta = double(beta_);
  const double i0b = bessel_i0(beta);
  kb_table_.resize(kTableSize + 1);
  for (int i = 0; i <= kTableSize; ++i) {
    const double z = double(i) / kTableSize;
    kb_table_[i] =
        static_cast<T>(bessel_i0(beta * std::sqrt(std::max(1.0 - z * z, 0.0))) / i0b);
  }

  auto kernel = [beta, i0b](double z) {
    return bessel_i0(beta * std::sqrt(std::max(1.0 - z * z, 0.0))) / i0b;
  };
  for (int d = 0; d < grid_.dim; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(N_[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), w_, kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = grid_.dim; d < 3; ++d) fser_[d].assign(1, T(1));
}

template <typename T>
T GpunufftPlan<T>::kb_eval(T z) const {
  const T az = std::abs(z);
  if (az >= T(1)) return T(0);
  const T pos = az * T(kTableSize);
  const int i = static_cast<int>(pos);
  const T frac = pos - T(i);
  return kb_table_[i] * (T(1) - frac) + kb_table_[i + 1] * frac;
}

template <typename T>
void GpunufftPlan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z) {
  if (grid_.dim >= 2 && !y) throw std::invalid_argument("set_points: y required");
  if (grid_.dim >= 3 && !z) throw std::invalid_argument("set_points: z required");
  M_ = M;
  xg_ = vgpu::device_buffer<T>(*dev_, M);
  yg_ = vgpu::device_buffer<T>(*dev_, M);
  if (grid_.dim >= 3) zg_ = vgpu::device_buffer<T>(*dev_, M);
  const int dim = grid_.dim;
  const auto nf = grid_.nf;
  dev_->launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg_[j] = spread::fold_rescale(x[j], nf[0]);
    yg_[j] = spread::fold_rescale(y[j], nf[1]);
    if (dim >= 3) zg_[j] = spread::fold_rescale(z[j], nf[2]);
  });
  spread::bin_sort(*dev_, grid_, sectors_, xg_.data(), yg_.data(),
                   dim >= 3 ? zg_.data() : nullptr, M, sort_);
}

// Output-driven sector gridding: one block per sector processes every point
// of that sector — no cap, hence the load imbalance on clustered data.
template <typename T>
void GpunufftPlan<T>::spread(const cplx* c) {
  vgpu::fill(*dev_, fw_.span(), cplx(0, 0));
  const int dim = grid_.dim;
  const int w = w_;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < dim; ++d) p[d] = sectors_.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const auto nf = grid_.nf;
  const T inv_half_w = T(2) / T(w);
  cplx* fw = fw_.data();

  dev_->launch(static_cast<std::size_t>(sectors_.total_bins()), 128,
               [=, this](vgpu::BlockCtx& blk) {
    const std::uint32_t b = blk.block_id;
    const std::uint32_t cnt = sort_.bin_counts[b];
    if (cnt == 0) return;
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % sectors_.nbins[d];
      rem /= sectors_.nbins[d];
    }
    for (int d = 0; d < dim; ++d) delta[d] = bc[d] * sectors_.m[d] - pad;

    auto sm = blk.shared<cplx>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) sm[i] = cplx(0, 0);
    });

    const std::uint32_t start = sort_.bin_start[b];
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort_.order[start + i];
        const T px[3] = {xg_[j], yg_[j], dim >= 3 ? zg_[j] : T(0)};
        const cplx cj = c[j];
        T vals[3][kMaxKbWidth];
        std::int64_t li0[3] = {0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          const std::int64_t l0 =
              static_cast<std::int64_t>(std::ceil(double(px[d]) - double(w) / 2));
          for (int i2 = 0; i2 < w; ++i2)
            vals[d][i2] = kb_eval((static_cast<T>(l0 + i2) - px[d]) * inv_half_w);
          li0[d] = l0 - delta[d];
        }
        if (dim == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const cplx c1 = cj * vals[1][i1];
            const std::int64_t row = (li0[1] + i1) * p[0];
            for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            const cplx c2 = cj * vals[2][i2];
            for (int i1 = 0; i1 < w; ++i1) {
              const cplx c1 = c2 * vals[1][i1];
              const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          }
        }
        blk.note_shared_op(static_cast<std::uint64_t>(w) * w * (dim > 2 ? w : 1));
      }
    });

    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < dim; ++d) g[d] = spread::wrap_index(delta[d] + s[d], nf[d]);
        blk.atomic_add(&fw[g[0] + nf[0] * (g[1] + nf[1] * g[2])], sm[i]);
      }
    });
  });
}

template <typename T>
void GpunufftPlan<T>::interp(cplx* c) {
  const int dim = grid_.dim;
  const int w = w_;
  const auto nf = grid_.nf;
  const T inv_half_w = T(2) / T(w);
  const cplx* fw = fw_.data();
  // Forward op: sector blocks gather; points visited in sector order.
  dev_->launch(static_cast<std::size_t>(sectors_.total_bins()), 128,
               [=, this](vgpu::BlockCtx& blk) {
    const std::uint32_t b = blk.block_id;
    const std::uint32_t cnt = sort_.bin_counts[b];
    if (cnt == 0) return;
    const std::uint32_t start = sort_.bin_start[b];
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort_.order[start + i];
        const T px[3] = {xg_[j], yg_[j], dim >= 3 ? zg_[j] : T(0)};
        T vals[3][kMaxKbWidth];
        std::int64_t idx[3][kMaxKbWidth];
        for (int d = 0; d < dim; ++d) {
          const std::int64_t l0 =
              static_cast<std::int64_t>(std::ceil(double(px[d]) - double(w) / 2));
          for (int i2 = 0; i2 < w; ++i2) {
            vals[d][i2] = kb_eval((static_cast<T>(l0 + i2) - px[d]) * inv_half_w);
            idx[d][i2] = spread::wrap_index(l0 + i2, nf[d]);
          }
        }
        cplx acc(0, 0);
        if (dim == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = idx[1][i1] * nf[0];
            cplx rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + idx[0][i0]] * vals[0][i0];
            acc += rowacc * vals[1][i1];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            cplx planeacc(0, 0);
            for (int i1 = 0; i1 < w; ++i1) {
              const std::int64_t row = (idx[2][i2] * nf[1] + idx[1][i1]) * nf[0];
              cplx rowacc(0, 0);
              for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + idx[0][i0]] * vals[0][i0];
              planeacc += rowacc * vals[1][i1];
            }
            acc += planeacc * vals[2][i2];
          }
        }
        c[j] = acc;
      }
    });
  });
}

template <typename T>
void GpunufftPlan<T>::deconvolve(cplx* f, bool forward) {
  const auto N = N_;
  const auto nf = grid_.nf;
  const std::int64_t ntot = modes_total();
  const T* p0 = fser_[0].data();
  const T* p1 = fser_[1].data();
  const T* p2 = fser_[2].data();
  cplx* fw = fw_.data();
  if (!forward) vgpu::fill(*dev_, fw_.span(), cplx(0, 0));
  dev_->launch_items(static_cast<std::size_t>(ntot), 256,
                     [=](std::size_t i, vgpu::BlockCtx&) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % N[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / N[0]) % N[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (N[0] * N[1]);
    const std::int64_t g0 = spread::wrap_index(i0 - N[0] / 2, nf[0]);
    const std::int64_t g1 = spread::wrap_index(i1 - N[1] / 2, nf[1]);
    const std::int64_t g2 = spread::wrap_index(i2 - N[2] / 2, nf[2]);
    const std::int64_t lin = g0 + nf[0] * (g1 + nf[1] * g2);
    const T p = p0[i0] * p1[i1] * p2[i2];
    if (forward)
      f[i] = fw[lin] * p;
    else
      fw[lin] = f[i] * p;
  });
}

template <typename T>
void GpunufftPlan<T>::execute(cplx* c, cplx* f) {
  if (M_ == 0) {
    if (type_ == 1)
      for (std::int64_t i = 0; i < modes_total(); ++i) f[i] = cplx(0, 0);
    return;
  }
  if (type_ == 1) {
    spread(c);
    fft_->exec(fw_.data(), iflag_);
    deconvolve(f, true);
  } else {
    deconvolve(f, false);
    fft_->exec(fw_.data(), iflag_);
    interp(c);
  }
}

template class GpunufftPlan<float>;
template class GpunufftPlan<double>;

}  // namespace cf::baselines
