#include "baselines/cunfft_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fft/fft.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "vgpu/primitives.hpp"

namespace cf::baselines {

int gaussian_width_from_tol(double tol) {
  // Truncated-Gaussian error at sigma = 2 decays like exp(-1.11 w) with the
  // optimal shape below, i.e. w ~ 2.1 log10(1/eps) — about double the ES rule.
  const int w = static_cast<int>(std::ceil(2.1 * std::log10(1.0 / tol))) + 2;
  return std::clamp(w, 4, kMaxGaussWidth);
}

namespace {

// Optimal truncated-Gaussian shape for sigma = 2 on the normalized support
// z in [-1, 1]: phi(z) = exp(-a z^2). Balancing the truncation error
// exp(-a) against the aliasing error exp(-pi^2 s^2), where s^2 = w^2/(8a) in
// grid units and the nearest alias sits at 2*pi - pi/sigma, gives
// a = pi*w/(2*sqrt(2)) ~ 1.11 w.
template <typename T>
T gauss_exponent(int w) {
  return static_cast<T>(3.141592653589793 / (2.0 * std::sqrt(2.0)) * double(w));
}

/// Fast Gaussian gridding (COM_FG_PSI): per point and axis, vals[i] =
/// exp(-a (z0 + i dz)^2) via 3 exponentials and multiplicative recurrences.
template <typename T>
inline std::int64_t gauss_values(T x, int w, T a, T* vals) {
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(double(x) - double(w) / 2));
  const T dz = T(2) / T(w);
  const T z0 = (static_cast<T>(l0) - x) * dz;
  const T e0 = std::exp(-a * z0 * z0);
  const T r = std::exp(-2 * a * z0 * dz);
  const T s = std::exp(-a * dz * dz);
  T val = e0;
  T factor = r * s;
  const T s2 = s * s;
  vals[0] = val;
  for (int i = 1; i < w; ++i) {
    val *= factor;
    factor *= s2;
    vals[i] = val;
  }
  return l0;
}

}  // namespace

template <typename T>
CunfftPlan<T>::CunfftPlan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes,
                          int iflag, double tol)
    : dev_(&dev),
      type_(type),
      iflag_(iflag >= 0 ? 1 : -1),
      w_(gaussian_width_from_tol(tol)),
      a_(gauss_exponent<T>(gaussian_width_from_tol(tol))) {
  if (type_ != 1 && type_ != 2)
    throw std::invalid_argument("CunfftPlan: type must be 1 or 2");
  if (nmodes.empty() || nmodes.size() > 3)
    throw std::invalid_argument("CunfftPlan: dim must be 1..3");
  for (std::size_t d = 0; d < nmodes.size(); ++d) N_[d] = nmodes[d];
  grid_.dim = static_cast<int>(nmodes.size());
  for (int d = 0; d < grid_.dim; ++d)
    grid_.nf[d] = static_cast<std::int64_t>(fft::next235(
        static_cast<std::size_t>(std::max<std::int64_t>(2 * N_[d], 2 * w_))));

  std::vector<std::size_t> dims;
  for (int d = 0; d < grid_.dim; ++d) dims.push_back(static_cast<std::size_t>(grid_.nf[d]));
  fft_ = std::make_unique<fft::FftNd<T>>(dev_->pool(), dims);
  fw_ = vgpu::device_buffer<cplx>(*dev_, static_cast<std::size_t>(grid_.total()));

  const double a = double(a_);
  auto kernel = [a](double z) { return std::exp(-a * z * z); };
  for (int d = 0; d < grid_.dim; ++d) {
    auto p = spread::correction_factors(static_cast<std::size_t>(N_[d]),
                                        static_cast<std::size_t>(grid_.nf[d]), w_, kernel);
    fser_[d].assign(p.begin(), p.end());
  }
  for (int d = grid_.dim; d < 3; ++d) fser_[d].assign(1, T(1));
}

template <typename T>
void CunfftPlan<T>::set_points(std::size_t M, const T* x, const T* y, const T* z) {
  if (grid_.dim >= 2 && !y) throw std::invalid_argument("set_points: y required");
  if (grid_.dim >= 3 && !z) throw std::invalid_argument("set_points: z required");
  M_ = M;
  xg_ = vgpu::device_buffer<T>(*dev_, M);
  if (grid_.dim >= 2) yg_ = vgpu::device_buffer<T>(*dev_, M);
  if (grid_.dim >= 3) zg_ = vgpu::device_buffer<T>(*dev_, M);
  const int dim = grid_.dim;
  const auto nf = grid_.nf;
  dev_->launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg_[j] = spread::fold_rescale(x[j], nf[0]);
    if (dim >= 2) yg_[j] = spread::fold_rescale(y[j], nf[1]);
    if (dim >= 3) zg_[j] = spread::fold_rescale(z[j], nf[2]);
  });
}

template <typename T>
void CunfftPlan<T>::spread(const cplx* c) {
  vgpu::fill(*dev_, fw_.span(), cplx(0, 0));
  const int dim = grid_.dim;
  const int w = w_;
  const T a = a_;
  const auto nf = grid_.nf;
  cplx* fw = fw_.data();
  dev_->launch_items(M_, 256, [=, this](std::size_t j, vgpu::BlockCtx& blk) {
    T vals[3][kMaxGaussWidth];
    std::int64_t idx[3][kMaxGaussWidth];
    const T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l0 = gauss_values(px[d], w, a, vals[d]);
      for (int i = 0; i < w; ++i) idx[d][i] = spread::wrap_index(l0 + i, nf[d]);
    }
    const cplx cj = c[j];
    if (dim == 1) {
      for (int i0 = 0; i0 < w; ++i0) blk.atomic_add(&fw[idx[0][i0]], cj * vals[0][i0]);
    } else if (dim == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const cplx c1 = cj * vals[1][i1];
        const std::int64_t row = idx[1][i1] * nf[0];
        for (int i0 = 0; i0 < w; ++i0)
          blk.atomic_add(&fw[row + idx[0][i0]], c1 * vals[0][i0]);
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        const cplx c2 = cj * vals[2][i2];
        for (int i1 = 0; i1 < w; ++i1) {
          const cplx c1 = c2 * vals[1][i1];
          const std::int64_t row = (idx[2][i2] * nf[1] + idx[1][i1]) * nf[0];
          for (int i0 = 0; i0 < w; ++i0)
            blk.atomic_add(&fw[row + idx[0][i0]], c1 * vals[0][i0]);
        }
      }
    }
  });
}

template <typename T>
void CunfftPlan<T>::interp(cplx* c) {
  const int dim = grid_.dim;
  const int w = w_;
  const T a = a_;
  const auto nf = grid_.nf;
  const cplx* fw = fw_.data();
  dev_->launch_items(M_, 256, [=, this](std::size_t j, vgpu::BlockCtx&) {
    T vals[3][kMaxGaussWidth];
    std::int64_t idx[3][kMaxGaussWidth];
    const T px[3] = {xg_[j], dim >= 2 ? yg_[j] : T(0), dim >= 3 ? zg_[j] : T(0)};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l0 = gauss_values(px[d], w, a, vals[d]);
      for (int i = 0; i < w; ++i) idx[d][i] = spread::wrap_index(l0 + i, nf[d]);
    }
    cplx acc(0, 0);
    if (dim == 1) {
      for (int i0 = 0; i0 < w; ++i0) acc += fw[idx[0][i0]] * vals[0][i0];
    } else if (dim == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const std::int64_t row = idx[1][i1] * nf[0];
        cplx rowacc(0, 0);
        for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + idx[0][i0]] * vals[0][i0];
        acc += rowacc * vals[1][i1];
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        cplx planeacc(0, 0);
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = (idx[2][i2] * nf[1] + idx[1][i1]) * nf[0];
          cplx rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + idx[0][i0]] * vals[0][i0];
          planeacc += rowacc * vals[1][i1];
        }
        acc += planeacc * vals[2][i2];
      }
    }
    c[j] = acc;
  });
}

template <typename T>
void CunfftPlan<T>::deconvolve(cplx* f, bool forward) {
  const auto N = N_;
  const auto nf = grid_.nf;
  const std::int64_t ntot = modes_total();
  const T* p0 = fser_[0].data();
  const T* p1 = fser_[1].data();
  const T* p2 = fser_[2].data();
  cplx* fw = fw_.data();
  if (!forward) vgpu::fill(*dev_, fw_.span(), cplx(0, 0));
  dev_->launch_items(static_cast<std::size_t>(ntot), 256,
                     [=](std::size_t i, vgpu::BlockCtx&) {
    const std::int64_t i0 = static_cast<std::int64_t>(i) % N[0];
    const std::int64_t i1 = (static_cast<std::int64_t>(i) / N[0]) % N[1];
    const std::int64_t i2 = static_cast<std::int64_t>(i) / (N[0] * N[1]);
    const std::int64_t g0 = spread::wrap_index(i0 - N[0] / 2, nf[0]);
    const std::int64_t g1 = spread::wrap_index(i1 - N[1] / 2, nf[1]);
    const std::int64_t g2 = spread::wrap_index(i2 - N[2] / 2, nf[2]);
    const std::int64_t lin = g0 + nf[0] * (g1 + nf[1] * g2);
    const T p = p0[i0] * p1[i1] * p2[i2];
    if (forward)
      f[i] = fw[lin] * p;
    else
      fw[lin] = f[i] * p;
  });
}

template <typename T>
void CunfftPlan<T>::execute(cplx* c, cplx* f) {
  if (M_ == 0) {
    if (type_ == 1)
      for (std::int64_t i = 0; i < modes_total(); ++i) f[i] = cplx(0, 0);
    return;
  }
  if (type_ == 1) {
    spread(c);
    fft_->exec(fw_.data(), iflag_);
    deconvolve(f, true);
  } else {
    deconvolve(f, false);
    fft_->exec(fw_.data(), iflag_);
    interp(c);
  }
}

template class CunfftPlan<float>;
template class CunfftPlan<double>;

}  // namespace cf::baselines
