// CUNFFT-style comparator library (paper Sec. IV-C, [22]).
//
// Reproduces the two properties that drive CUNFFT's benchmark behaviour:
//
//  1. Input-driven GM spreading in *user order* with global atomics and no
//     bin sorting — fast on small/uniform problems, collapses on clustered
//     type-1 distributions (paper reports a 200x slowdown).
//  2. A truncated Gaussian kernel with "fast Gaussian gridding" (the
//     -DCOM_FG_PSI option the paper benchmarks), which needs roughly twice
//     the ES kernel width for the same tolerance — so at fixed accuracy it
//     does ~4x (2D) / ~8x (3D) the spreading work of cuFINUFFT.
//
// Same plan/setpts/execute lifecycle and mode conventions as core::Plan.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fft/fftnd.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::baselines {

/// Gaussian kernel width rule: the truncated Gaussian at sigma = 2 has
/// aliasing error ~ exp(-1.05 w), i.e. w ~ 2.2 log10(1/eps) — about double
/// the ES width (paper [18] Sec. 1.1). Capped at 24.
int gaussian_width_from_tol(double tol);

/// Max Gaussian width (eps floors at ~1e-10 in double).
inline constexpr int kMaxGaussWidth = 24;

template <typename T>
class CunfftPlan {
 public:
  using cplx = std::complex<T>;

  CunfftPlan(vgpu::Device& dev, int type, std::span<const std::int64_t> nmodes, int iflag,
             double tol);

  int type() const { return type_; }
  int dim() const { return grid_.dim; }
  int kernel_width() const { return w_; }
  std::int64_t modes_total() const { return N_[0] * N_[1] * N_[2]; }

  /// Stores device pointers to the points and fold-rescales them. No sorting
  /// happens here (CUNFFT has none).
  void set_points(std::size_t M, const T* x, const T* y, const T* z);

  /// Type 1: c (M) -> f (modes). Type 2: f -> c. Device pointers.
  void execute(cplx* c, cplx* f);

 private:
  void spread(const cplx* c);
  void interp(cplx* c);
  void deconvolve(cplx* f, bool forward);

  vgpu::Device* dev_;
  int type_;
  int iflag_;
  int w_;
  T a_;  ///< Gaussian exponent: phi(z) = exp(-a z^2) on |z| <= 1

  std::array<std::int64_t, 3> N_{1, 1, 1};
  spread::GridSpec grid_;
  std::unique_ptr<fft::FftNd<T>> fft_;
  vgpu::device_buffer<cplx> fw_;
  std::array<std::vector<T>, 3> fser_;

  vgpu::device_buffer<T> xg_, yg_, zg_;
  std::size_t M_ = 0;
};

extern template class CunfftPlan<float>;
extern template class CunfftPlan<double>;

}  // namespace cf::baselines
