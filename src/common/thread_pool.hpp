// Minimal blocking-queue thread pool used by both the host ("CPU library")
// and each virtual-GPU device. One pool instance = one set of long-lived
// worker threads; parallel_for carves an index range into contiguous chunks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cf {

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// Tasks are `void(std::size_t worker_id)` callables; the worker id is stable
/// in [0, size()) so callers can maintain per-worker scratch buffers without
/// locking. The pool is intentionally simple (no work stealing): every task
/// submitted through parallel_for is a contiguous chunk big enough that queue
/// overhead is negligible.
///
/// parallel_for / parallel_chunks may be called concurrently from several
/// external threads (the service layer's dispatch workers all drive one
/// device pool): each call tracks completion of ITS OWN tasks, so a caller
/// returns as soon as its range is done instead of waiting for the global
/// queue to drain — and cannot be starved by another caller keeping the
/// queue busy. Parallelism stays capped at size(): concurrent callers share
/// the same workers rather than oversubscribing the host.
class ThreadPool {
 public:
  /// Creates `nthreads` workers (0 = hardware_concurrency).
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i, worker_id) for every i in [begin, end), distributing
  /// contiguous chunks over the workers, and blocks until all complete.
  /// `grain` is the minimum chunk size (tasks never get fewer indices unless
  /// the range is exhausted). Executes inline when the range is tiny or the
  /// pool has a single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Runs fn(chunk_begin, chunk_end, worker_id) over ~nchunk contiguous
  /// chunks; useful when per-chunk setup (scratch, accumulators) dominates.
  void parallel_chunks(
      std::size_t begin, std::size_t end, std::size_t nchunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Work-stealing schedule over `n` independent, pre-prioritized items:
  /// fn(i, worker_id) runs exactly once for every i in [0, n). Items are
  /// dealt round-robin into per-worker lists (item i belongs to worker
  /// i % size()), which preserves the caller's order within each list — pass
  /// items sorted largest-first and every list stays largest-first. A worker
  /// drains its own list front to back; once empty it steals the front
  /// pending item of the currently most-loaded victim, so the biggest
  /// remaining work migrates to idle workers. Returns the number of stolen
  /// items (0 on the single-worker inline path). Unlike parallel_for there
  /// is no grain: every item is an independently schedulable unit.
  std::uint64_t parallel_steal(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Enqueues one task; returns immediately. Use wait_idle() to join.
  void submit(std::function<void(std::size_t)> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// True when the calling thread is a pool worker (of any pool). The
  /// parallel_for tiny-range fast path runs the body INLINE on the caller
  /// with worker id 0 while the real worker 0 may concurrently be serving
  /// another caller — so globally shared wid-indexed resources (e.g. the
  /// vgpu per-worker shared-memory arenas) must key off this to give
  /// non-worker callers their own storage instead of worker 0's.
  static bool on_worker_thread();

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(std::size_t)>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace cf
