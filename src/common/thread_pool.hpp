// Minimal blocking-queue thread pool used by both the host ("CPU library")
// and each virtual-GPU device. One pool instance = one set of long-lived
// worker threads; parallel_for carves an index range into contiguous chunks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cf {

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// Tasks are `void(std::size_t worker_id)` callables; the worker id is stable
/// in [0, size()) so callers can maintain per-worker scratch buffers without
/// locking. The pool is intentionally simple (no work stealing): every task
/// submitted through parallel_for is a contiguous chunk big enough that queue
/// overhead is negligible.
class ThreadPool {
 public:
  /// Creates `nthreads` workers (0 = hardware_concurrency).
  explicit ThreadPool(std::size_t nthreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i, worker_id) for every i in [begin, end), distributing
  /// contiguous chunks over the workers, and blocks until all complete.
  /// `grain` is the minimum chunk size (tasks never get fewer indices unless
  /// the range is exhausted). Executes inline when the range is tiny or the
  /// pool has a single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Runs fn(chunk_begin, chunk_end, worker_id) over ~nchunk contiguous
  /// chunks; useful when per-chunk setup (scratch, accumulators) dominates.
  void parallel_chunks(
      std::size_t begin, std::size_t end, std::size_t nchunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Enqueues one task; returns immediately. Use wait_idle() to join.
  void submit(std::function<void(std::size_t)> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(std::size_t)>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace cf
