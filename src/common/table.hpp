// Plain-text table printing for the benchmark binaries, so each bench can
// emit rows shaped like the paper's tables/figure series.
#pragma once

#include <string>
#include <vector>

namespace cf {

/// Accumulates rows of strings and prints an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; missing cells are blank, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a separator under the header.
  std::string str() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  static std::string fmt(double v, int prec = 3);
  static std::string fmt_sci(double v, int prec = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cf
