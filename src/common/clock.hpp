// The ONE monotonic-clock utility for the whole tree.
//
// Every timing consumer — the bench Timer, the Breakdown stage stopwatches in
// the plans, and the observability layer's span timestamps and latency
// histograms (src/obs) — reads the same steady_clock through this header, so
// a span's t0, a histogram sample, and a Breakdown stage duration are all
// directly comparable on one process-wide microsecond timeline.
//
// The epoch is pinned on first use (thread-safe function-local static);
// mono::now_us() is "microseconds since that pin" as a double, which holds
// sub-microsecond resolution for ~272 years of uptime.
#pragma once

#include <algorithm>
#include <chrono>
#include <vector>

namespace cf::mono {

using clock = std::chrono::steady_clock;

/// Process-wide epoch, pinned the first time any timing code runs.
inline clock::time_point epoch() {
  static const clock::time_point e = clock::now();
  return e;
}

/// Microseconds since the process epoch for an arbitrary steady_clock stamp
/// (e.g. a request's queue-arrival time_point).
inline double us(clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - epoch()).count();
}

inline double now_us() { return us(clock::now()); }

/// Monotonic stopwatch over the shared timeline. Replaces the ad-hoc
/// per-file stopwatches that used to live in plan.cpp/cpu_plan.cpp/timer.hpp.
class Stopwatch {
 public:
  Stopwatch() : t0_(now_us()) {}
  void reset() { t0_ = now_us(); }
  double us() const { return now_us() - t0_; }
  double millis() const { return us() * 1e-3; }
  double seconds() const { return us() * 1e-6; }
  /// Start stamp (microseconds since epoch) — what a trace span records as t0.
  double start_us() const { return t0_; }

 private:
  double t0_;
};

}  // namespace cf::mono

namespace cf {

/// Linear-interpolated percentile (q in [0, 100]) of an unsorted sample;
/// sorts a copy. Returns 0 for an empty sample. Shared by the bench
/// harnesses (exact, from raw samples) and mirrored in spirit by
/// obs::Histogram::percentile (approximate, from log buckets).
inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (rank - static_cast<double>(lo));
}

}  // namespace cf
