// Tiny `--flag value` command-line parser shared by benches and examples.
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

namespace cf {

/// Looks up "--name <value>" or "--name=<value>" style flags in argv.
class Cli {
 public:
  Cli(int argc, char** argv) : argc_(argc), argv_(argv) {}

  std::string get(std::string_view name, std::string_view def) const {
    for (int i = 1; i < argc_; ++i) {
      std::string_view a(argv_[i]);
      if (a.size() > 2 && a.substr(0, 2) == "--") {
        a.remove_prefix(2);
        auto eq = a.find('=');
        if (eq != std::string_view::npos) {
          if (a.substr(0, eq) == name) return std::string(a.substr(eq + 1));
        } else if (a == name && i + 1 < argc_) {
          return argv_[i + 1];
        } else if (a == name) {
          return "1";  // bare flag
        }
      }
    }
    return std::string(def);
  }

  double get_double(std::string_view name, double def) const {
    auto s = get(name, "");
    return s.empty() ? def : std::strtod(s.c_str(), nullptr);
  }

  long long get_int(std::string_view name, long long def) const {
    auto s = get(name, "");
    return s.empty() ? def : std::strtoll(s.c_str(), nullptr, 10);
  }

  bool has(std::string_view name) const { return !get(name, "").empty(); }

 private:
  int argc_;
  char** argv_;
};

}  // namespace cf
