// Strict environment-variable parsing shared by the service tier and the
// observability layer (CF_SERVICE_THREADS, CF_SERVICE_WINDOW_US,
// CF_SERVICE_SHARDS, CF_TRACE, CF_SLOW_MS, ...).
//
// Anything that is not a whole integer in [min_v, max_v] gets a one-line
// stderr diagnostic and the fallback. (An atoi-style path would silently
// treat CF_SERVICE_THREADS="four" as "use the default", hiding deployment
// typos behind correct-looking behavior.)
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cf {

inline int env_int_strict(const char* name, int fallback, int min_v, int max_v) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || n < min_v || n > max_v) {
    std::fprintf(stderr,
                 "cf: ignoring invalid %s='%s' (want an integer in "
                 "[%d, %d]); using %d\n",
                 name, v, min_v, max_v, fallback);
    return fallback;
  }
  return static_cast<int>(n);
}

}  // namespace cf
