#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace cf {

namespace {

/// Per-call completion latch shared by the tasks one parallel_for submits.
/// Heap-owned (shared_ptr) so a task outliving an early-exiting caller could
/// never dangle, and so concurrent callers each wait on their own latch.
struct CallSync {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining;

  explicit CallSync(std::size_t n) : remaining(n) {}

  void done() {
    std::unique_lock lk(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void wait() {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return remaining == 0; });
  }
};

thread_local bool t_pool_worker = false;

}  // namespace

bool ThreadPool::on_worker_thread() { return t_pool_worker; }

ThreadPool::ThreadPool(std::size_t nthreads) {
  if (nthreads == 0) nthreads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(nthreads);
  for (std::size_t i = 0; i < nthreads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t id) {
  t_pool_worker = true;
  for (;;) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task(id);
    {
      std::unique_lock lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void(std::size_t)> task) {
  {
    std::unique_lock lk(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t nw = size();
  if (nw <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  // ~4 chunks per worker for light dynamic balance, respecting the grain.
  std::size_t nchunks = std::min(n / std::max<std::size_t>(grain, 1), nw * 4);
  nchunks = std::max<std::size_t>(nchunks, 1);
  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  std::atomic<std::size_t> next{begin};
  auto sync = std::make_shared<CallSync>(nw);
  auto body = [&, sync](std::size_t wid) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + chunk, end);
      for (std::size_t i = lo; i < hi; ++i) fn(i, wid);
    }
    sync->done();
  };
  for (std::size_t t = 0; t < nw; ++t) submit(body);
  sync->wait();
}

std::uint64_t ThreadPool::parallel_steal(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return 0;
  const std::size_t nw = size();
  if (nw <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return 0;
  }
  // List k holds items k, k + nw, k + 2nw, ... — the round-robin deal keeps
  // each list in the caller's priority order. Per-list monotone cursors make
  // claiming an item a single fetch_add whether the claimant is the owner or
  // a thief; a cursor racing past the list length just yields a failed claim.
  auto len = [n, nw](std::size_t k) { return k < n ? (n - k - 1) / nw + 1 : 0; };
  auto cursors = std::make_unique<std::atomic<std::size_t>[]>(nw);
  for (std::size_t k = 0; k < nw; ++k) cursors[k].store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> steals{0};
  auto sync = std::make_shared<CallSync>(nw);
  auto body = [&, sync](std::size_t wid) {
    for (;;) {
      const std::size_t t = cursors[wid].fetch_add(1, std::memory_order_relaxed);
      if (t >= len(wid)) break;
      fn(wid + t * nw, wid);
    }
    std::uint64_t stolen = 0;
    for (;;) {
      // Steal from the most-loaded victim: its front pending item is the
      // largest unit of work still waiting anywhere.
      std::size_t victim = nw, best = 0;
      for (std::size_t k = 0; k < nw; ++k) {
        const std::size_t lk = len(k);
        const std::size_t ck = cursors[k].load(std::memory_order_relaxed);
        const std::size_t rem = ck < lk ? lk - ck : 0;
        if (rem > best) {
          best = rem;
          victim = k;
        }
      }
      if (victim == nw) break;
      const std::size_t t = cursors[victim].fetch_add(1, std::memory_order_relaxed);
      if (t >= len(victim)) continue;  // lost the claim race; rescan
      ++stolen;
      fn(victim + t * nw, wid);
    }
    if (stolen) steals.fetch_add(stolen, std::memory_order_relaxed);
    sync->done();
  };
  for (std::size_t t = 0; t < nw; ++t) submit(body);
  sync->wait();
  return steals.load();
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end, std::size_t nchunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  nchunks = std::max<std::size_t>(1, std::min(nchunks, n));
  const std::size_t chunk = (n + nchunks - 1) / nchunks;
  std::atomic<std::size_t> next{begin};
  const std::size_t nw = std::min(size(), nchunks);
  if (nw <= 1) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      fn(lo, std::min(lo + chunk, end), 0);
    }
  }
  auto sync = std::make_shared<CallSync>(nw);
  auto body = [&, sync](std::size_t wid) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      fn(lo, std::min(lo + chunk, end), wid);
    }
    sync->done();
  };
  for (std::size_t t = 0; t < nw; ++t) submit(body);
  sync->wait();
}

}  // namespace cf
