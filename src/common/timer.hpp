// Wall-clock timing helpers for the benchmark harnesses. Timer is a thin
// seconds-oriented view over the shared monotonic clock in common/clock.hpp
// (the single timing utility also backing the Breakdown stage stopwatches
// and the obs-layer histograms).
#pragma once

#include "common/clock.hpp"

namespace cf {

/// Monotonic stopwatch; seconds as double.
class Timer {
 public:
  void reset() { sw_.reset(); }
  double seconds() const { return sw_.seconds(); }
  double millis() const { return sw_.millis(); }

 private:
  mono::Stopwatch sw_;
};

/// Times a callable once and returns elapsed seconds.
template <typename F>
double time_once(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

/// Runs `f` `reps` times (after `warmup` untimed runs) and returns the
/// minimum elapsed seconds — the standard robust estimator for benchmarks.
template <typename F>
double time_best(F&& f, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) f();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double s = time_once(f);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace cf
