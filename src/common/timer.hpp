// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>

namespace cf {

/// Monotonic stopwatch; seconds as double.
class Timer {
 public:
  Timer() : t0_(clock::now()) {}
  void reset() { t0_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_;
};

/// Times a callable once and returns elapsed seconds.
template <typename F>
double time_once(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

/// Runs `f` `reps` times (after `warmup` untimed runs) and returns the
/// minimum elapsed seconds — the standard robust estimator for benchmarks.
template <typename F>
double time_best(F&& f, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) f();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double s = time_once(f);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace cf
