#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::fmt_sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", prec, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << (c ? "  " : "");
      os << r[c];
      os << std::string(w[c] - r[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace cf
