// Deterministic, splittable random number generation for workload synthesis.
// All experiment workloads ("rand", "cluster", blob densities, orientations)
// are generated through this so runs are reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace cf {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Each instance is a
/// stateless function of its seed sequence, so parallel generators can be
/// derived by seeding with (seed, stream_index).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}
  Rng(std::uint64_t seed, std::uint64_t stream) : state_(seed ^ (stream * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL)) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform over the periodic NUFFT domain [-pi, pi).
  double angle() { return uniform(-std::numbers::pi, std::numbers::pi); }

  /// Standard normal via Box-Muller (one value per call; wastes the pair,
  /// simplicity over throughput — only used in workload generation).
  double normal() {
    double u1 = uniform(), u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace cf
