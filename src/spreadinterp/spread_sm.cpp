// SM spreading (paper Sec. III-A, Fig. 1): one thread block per subproblem,
// accumulation into a padded-bin shared-memory copy, then one pass of global
// atomic adds with the periodic wrap resolved per row run.
//
// Per-point tap values come from a TapTable (point_cache.hpp) built in
// bin-sorted order — by the plan once per set_points, or transiently by the
// table-less convenience overload — so execute-time work is pure
// accumulation: no exp/sqrt/Horner evaluation per point per call. The batch
// is processed in chunks of as many padded-bin planes as fit the
// shared-memory arena; B = 1 (the single-vector entry point) is one chunk of
// one plane.
#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::spread {

namespace {

using namespace detail;

template <int DIM, int W, typename T>
void spread_sm_batch_fast(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const DeviceSort& sort, const SubprobSetup& subs,
                          std::uint32_t msub, const TapTable<T>& tt, int B,
                          std::size_t cstride, std::size_t fwstride) {
  constexpr int pad = (W + 1) / 2;
  constexpr int WP = pad_width(W);       // x-tap loops run the full padded width
  constexpr std::size_t slack = WP - W;  // rows may overhang by this many lanes
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const std::size_t plane = padded + slack;  // per-batch-plane scratch stride
  // Planes held at once: as many deinterleaved padded bins as the arena
  // holds. The batch chunks loop INSIDE each subproblem block, so a
  // subproblem's tap-table slice is streamed from global memory once and hit
  // in cache by the remaining chunks.
  const int nbmax = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(B),
      std::max<std::size_t>(1, dev.props.shared_mem_per_block / (2 * plane * sizeof(T)))));

  dev.launch(subs.nsubprob, 128, [&, padded, plane, nbmax](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t delta[3];
    subprob_delta(bins, b, DIM, pad, delta);
    const std::uint32_t start = sort.bin_start[b] + off;
    const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);

    // Deinterleaved padded-bin scratch: same byte budget as the complex
    // arena (plus the tap-pad slack), but the accumulation loops see two
    // contiguous T streams. The x-loops below write WP lanes per row; the
    // lanes past W carry exact-zero kernel values, so the overhang into the
    // next row (or the slack after the last one) adds nothing.
    auto smre = blk.shared<T>(plane * nbmax);
    auto smim = blk.shared<T>(plane * nbmax);
    for (int b0 = 0; b0 < B; b0 += nbmax) {
      const int nb = std::min(nbmax, B - b0);
      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(plane * nb, t, blk.nthreads);
        for (std::size_t i = lo; i < hi; ++i) smre[i] = T(0);
        for (std::size_t i = lo; i < hi; ++i) smim[i] = T(0);
      });
      blk.sync_threads();

      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t j = sort.order[start + i];
          if (i + kPointPrefetch < cnt) {
            // The strength reads go through the sort permutation — random
            // access into every active c plane; prefetch them ahead.
            const std::size_t jn = sort.order[start + i + kPointPrefetch];
            for (int bb = 0; bb < nb; ++bb)
              CF_PREFETCH(&c[(b0 + bb) * cstride + jn], 0);
          }
          const T* row = &tt.vals[(start + i) * static_cast<std::size_t>(DIM * WP)];
          const std::int32_t* lrow = &tt.l0[(start + i) * DIM];
          // Stage the tap row into stack arrays: the accumulation loops then
          // compile exactly like the inline-evaluation kernel's (the
          // in-memory operands otherwise defeat the vectorizer).
          T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
          for (int i0 = 0; i0 < WP; ++i0) v0[i0] = row[i0];
          if constexpr (DIM > 1)
            for (int i1 = 0; i1 < W; ++i1) v1[i1] = row[WP + i1];
          if constexpr (DIM > 2)
            for (int i2 = 0; i2 < W; ++i2) v2[i2] = row[2 * WP + i2];
          std::int64_t li0[DIM];
          for (int d = 0; d < DIM; ++d) li0[d] = lrow[d] - delta[d];
          for (int bb = 0; bb < nb; ++bb) {
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            const T cr = cj.real(), ci = cj.imag();
            T* CF_RESTRICT sre = &smre[plane * bb];
            T* CF_RESTRICT sim = &smim[plane * bb];
            if constexpr (DIM == 1) {
              T* CF_RESTRICT rre = sre + li0[0];
              T* CF_RESTRICT rim = sim + li0[0];
              for (int i0 = 0; i0 < WP; ++i0) rre[i0] += cr * v0[i0];
              for (int i0 = 0; i0 < WP; ++i0) rim[i0] += ci * v0[i0];
            } else if constexpr (DIM == 2) {
              for (int i1 = 0; i1 < W; ++i1) {
                const T wr = cr * v1[i1], wi = ci * v1[i1];
                const std::int64_t rrow = (li0[1] + i1) * p[0] + li0[0];
                T* CF_RESTRICT rre = sre + rrow;
                T* CF_RESTRICT rim = sim + rrow;
                for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
              }
            } else {
              for (int i2 = 0; i2 < W; ++i2) {
                const T c2r = cr * v2[i2], c2i = ci * v2[i2];
                const std::int64_t pl = (li0[2] + i2) * p[1];
                for (int i1 = 0; i1 < W; ++i1) {
                  const T wr = c2r * v1[i1], wi = c2i * v1[i1];
                  const std::int64_t rrow = (pl + li0[1] + i1) * p[0] + li0[0];
                  T* CF_RESTRICT rre = sre + rrow;
                  T* CF_RESTRICT rim = sim + rrow;
                  for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                  for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
                }
              }
            }
          }
          blk.note_shared_op(static_cast<std::uint64_t>(nb) * W * (DIM > 1 ? W : 1) *
                             (DIM > 2 ? W : 1));
        }
      });
      blk.sync_threads();

      // Step 3 writeback, row-run structured: contiguous global atomic adds
      // with the periodic wrap resolved once per run. Untouched scratch cells
      // (exact zeros) are skipped — they cannot change fw.
      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
        for (int bb = 0; bb < nb; ++bb) {
          std::complex<T>* fwb = fw + (b0 + bb) * fwstride;
          const T* sre = &smre[plane * bb];
          const T* sim = &smim[plane * bb];
          for_padded_rows<DIM, T>(
              grid, p, delta, lo, hi,
              [&](std::size_t src, std::int64_t dst, std::int64_t run) {
                for (std::int64_t i = 0; i < run; ++i) {
                  const T re = sre[src + i], im = sim[src + i];
                  if (re != T(0) || im != T(0))
                    accum_global(blk, kp.packed, &fwb[dst + i], std::complex<T>(re, im));
                }
              });
        }
      });
      blk.sync_threads();
    }
  });
}

template <int DIM, typename T>
void spread_sm_batch_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const DeviceSort& sort, const SubprobSetup& subs,
                          std::uint32_t msub, const TapTable<T>& tt, int B,
                          std::size_t cstride, std::size_t fwstride) {
  const int w = kp.w;
  const int wpad = tt.wpad;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const int nbmax = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(B),
      std::max<std::size_t>(
          1, dev.props.shared_mem_per_block / (padded * sizeof(std::complex<T>)))));

  dev.launch(subs.nsubprob, 128, [&, w, wpad, pad, padded, nbmax](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t delta[3];
    subprob_delta(bins, b, DIM, pad, delta);
    const std::uint32_t start = sort.bin_start[b] + off;

    // Batch chunks loop inside the block (see the fast variant): one
    // tap-table stream per subproblem, not one per chunk.
    auto sm = blk.shared<std::complex<T>>(padded * nbmax);
    for (int b0 = 0; b0 < B; b0 += nbmax) {
      const int nb = std::min(nbmax, B - b0);
      blk.for_each_thread([&](unsigned t) {
        for (std::size_t i = t; i < padded * nb; i += blk.nthreads)
          sm[i] = std::complex<T>(0, 0);
      });
      blk.sync_threads();

      blk.for_each_thread([&](unsigned t) {
        for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
          const std::size_t j = sort.order[start + i];
          if (i + kPointPrefetch < cnt) {
            const std::size_t jn = sort.order[start + i + kPointPrefetch];
            for (int bb = 0; bb < nb; ++bb)
              CF_PREFETCH(&c[(b0 + bb) * cstride + jn], 0);
          }
          const T* row = &tt.vals[(start + i) * static_cast<std::size_t>(DIM * wpad)];
          const std::int32_t* lrow = &tt.l0[(start + i) * DIM];
          std::int64_t li0[DIM];
          for (int d = 0; d < DIM; ++d) li0[d] = lrow[d] - delta[d];
          for (int bb = 0; bb < nb; ++bb) {
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            std::complex<T>* smb = &sm[padded * bb];
            if constexpr (DIM == 1) {
              for (int i0 = 0; i0 < w; ++i0) smb[li0[0] + i0] += cj * row[i0];
            } else if constexpr (DIM == 2) {
              for (int i1 = 0; i1 < w; ++i1) {
                const std::complex<T> c1 = cj * row[wpad + i1];
                const std::int64_t rrow = (li0[1] + i1) * p[0];
                for (int i0 = 0; i0 < w; ++i0)
                  smb[rrow + li0[0] + i0] += c1 * row[i0];
              }
            } else {
              for (int i2 = 0; i2 < w; ++i2) {
                const std::complex<T> c2 = cj * row[2 * wpad + i2];
                const std::int64_t pl = (li0[2] + i2) * p[1];
                for (int i1 = 0; i1 < w; ++i1) {
                  const std::complex<T> c1 = c2 * row[wpad + i1];
                  const std::int64_t rrow = (pl + li0[1] + i1) * p[0];
                  for (int i0 = 0; i0 < w; ++i0)
                    smb[rrow + li0[0] + i0] += c1 * row[i0];
                }
              }
            }
          }
          blk.note_shared_op(static_cast<std::uint64_t>(nb) * w * (DIM > 1 ? w : 1) *
                             (DIM > 2 ? w : 1));
        }
      });
      blk.sync_threads();

      // Writeback: resolve each padded cell's wrap once, then add all planes.
      blk.for_each_thread([&](unsigned t) {
        for (std::size_t i = t; i < padded; i += blk.nthreads) {
          std::int64_t s[3];
          std::int64_t r = static_cast<std::int64_t>(i);
          s[0] = r % p[0];
          r /= p[0];
          s[1] = r % p[1];
          s[2] = r / p[1];
          std::int64_t g[3] = {0, 0, 0};
          for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
          const std::int64_t lin = g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2]);
          for (int bb = 0; bb < nb; ++bb)
            accum_global(blk, kp.packed, &fw[(b0 + bb) * fwstride + lin],
                         sm[padded * bb + i]);
        }
      });
      blk.sync_threads();
    }
  });
}

template <int DIM, typename T>
void spread_sm_batch_any(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                         const KernelParams<T>& kp, const NuPoints<T>& pts,
                         const std::complex<T>* c, std::complex<T>* fw,
                         const DeviceSort& sort, const SubprobSetup& subs,
                         std::uint32_t msub, const TapTable<T>& tt, int B,
                         std::size_t cstride, std::size_t fwstride) {
  if (kp.fast && sm_scratch_fits<T>(dev, grid, bins, kp.w) &&
      tt.wpad == pad_width(kp.w) &&
      dispatch_width(kp.w, [&](auto W) {
        spread_sm_batch_fast<DIM, decltype(W)::value>(dev, grid, bins, kp, pts, c, fw,
                                                      sort, subs, msub, tt, B, cstride,
                                                      fwstride);
      }))
    return;
  spread_sm_batch_impl<DIM>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, tt, B,
                            cstride, fwstride);
}

}  // namespace

template <typename T>
bool sm_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  return padded * sizeof(std::complex<T>) <= dev.props.shared_mem_per_block;
}

template <typename T>
void spread_sm_batch(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                     const KernelParams<T>& kp, const NuPoints<T>& pts,
                     const std::complex<T>* c, std::complex<T>* fw,
                     const DeviceSort& sort, const SubprobSetup& subs, std::uint32_t msub,
                     const TapTable<T>& taps, int B, std::size_t cstride,
                     std::size_t fwstride) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("spread_sm: padded bin exceeds shared memory (use GM-sort)");
  if (taps.empty() && pts.M > 0)
    throw std::invalid_argument("spread_sm: tap table not built for these points");
  B = std::max(1, B);
  detail::dispatch_dim(
      grid.dim,
      [&] {
        spread_sm_batch_any<1>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, taps,
                               B, cstride, fwstride);
      },
      [&] {
        spread_sm_batch_any<2>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, taps,
                               B, cstride, fwstride);
      },
      [&] {
        spread_sm_batch_any<3>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, taps,
                               B, cstride, fwstride);
      });
}

template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub, const TapTable<T>& taps) {
  spread_sm_batch<T>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, taps, 1, 0, 0);
}

template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("spread_sm: padded bin exceeds shared memory (use GM-sort)");
  TapTable<T> taps;
  build_tap_table(dev, grid.dim, kp, pts, sort.order.data(), taps);
  spread_sm<T>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, taps);
}

#define CF_INSTANTIATE(T)                                                                \
  template bool sm_fits<T>(const vgpu::Device&, const GridSpec&, const BinSpec&, int);  \
  template void spread_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*, const DeviceSort&,\
                             const SubprobSetup&, std::uint32_t, const TapTable<T>&);   \
  template void spread_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*, const DeviceSort&,\
                             const SubprobSetup&, std::uint32_t);                       \
  template void spread_sm_batch<T>(vgpu::Device&, const GridSpec&, const BinSpec&,      \
                                   const KernelParams<T>&, const NuPoints<T>&,          \
                                   const std::complex<T>*, std::complex<T>*,            \
                                   const DeviceSort&, const SubprobSetup&,              \
                                   std::uint32_t, const TapTable<T>&, int, std::size_t, \
                                   std::size_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
