// The "exponential of semicircle" (ES) spreading kernel of FINUFFT/cuFINUFFT:
//
//   phi_beta(z) = exp(beta * (sqrt(1 - z^2) - 1))  for |z| <= 1, else 0,
//
// with width (in fine-grid points) w = ceil(log10(1/eps)) + 1 and
// beta = 2.30 * w at the paper's sigma = 2 upsampling (eq. (5)-(6)). The
// low-upsampling mode (sigma = 1.25) uses the FINUFFT-family generalization
// beta = 0.976 * pi * w * (1 - 1/(2 sigma)) with a wider width rule
// w = ceil(ln(1/eps) / (pi * sqrt(1 - 1/sigma))); see es_beta /
// width_from_tol below.
//
// Two evaluation layers:
//  * es_values      — runtime-width scalar path (the portable fallback),
//  * es_values_fixed<W> — compile-time-width path whose tap loops fully
//    unroll and whose Horner evaluation runs fused multiply-adds *across
//    taps* (degree-major coefficient layout padded to a multiple of 4), the
//    shape that auto-vectorizes. The spreading kernels dispatch w=2..16 to
//    the fixed-width path and fall back to es_values otherwise.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cf::spread {

/// Maximum supported kernel width; bounds every stack array in the kernels.
/// At sigma = 2, w = 16 already covers eps ~ 1e-15; the sigma = 1.25 width
/// rule needs up to w = 23 at eps = 1e-14, so the bound is 24. Widths above
/// 16 skip the compile-time dispatch and run the runtime-width fallback.
inline constexpr int kMaxWidth = 24;

/// Horner coefficient rows are padded to a multiple of this many taps so the
/// across-tap FMA loop works on full SIMD lanes.
inline constexpr int kTapPad = 4;

/// Width rounded up to the Horner-row padding.
inline constexpr int pad_width(int w) { return (w + kTapPad - 1) / kTapPad * kTapPad; }

/// ES exponent selection: beta = gamma * pi * w * (1 - 1/(2 sigma)) with
/// gamma = 0.976 (the FINUFFT fit), which reproduces the paper's 2.30 * w at
/// sigma = 2 to three digits. The sigma = 2 branch keeps the exact 2.30 * w
/// constant so existing plans keep their output bits.
inline double es_beta(int w, double sigma) {
  if (sigma == 2.0) return 2.30 * w;
  return 0.976 * 3.141592653589793 * w * (1.0 - 1.0 / (2.0 * sigma));
}

/// Aliasing-error scale of a width-w kernel at upsampling sigma:
/// eps ~ exp(-pi * w * sqrt(1 - 1/sigma)). At sigma = 2 this tracks the
/// paper's 10^{-(w-1)} heuristic; the fit cache uses it as the accuracy
/// target a Horner refit must stay below.
inline double kernel_alias_eps(int w, double sigma) {
  return std::exp(-3.141592653589793 * w * std::sqrt(1.0 - 1.0 / sigma));
}

/// Kernel shape parameters for one transform. When `horner` is non-null the
/// kernels evaluate the piecewise polynomial it points at instead of the
/// exp/sqrt form (cuFINUFFT's kerevalmeth=1 fast path); the table is owned
/// by whoever built it (see HornerTable) and must outlive the transform.
template <typename T>
struct KernelParams {
  int w;        ///< width in fine-grid points
  T beta;       ///< ES exponent
  T half_w;     ///< w/2 as T
  T inv_half_w; ///< 2/w as T
  /// Degree-major padded Horner coefficients: horner[k*horner_wpad + i] is
  /// the delta^k coefficient of tap i (taps >= w are zero). Null = exp/sqrt.
  const T* horner = nullptr;
  int horner_degree = 0;
  int horner_wpad = 0;
  /// Allow the width-specialized kernels; false forces the runtime-w scalar
  /// fallback (used by tests and benches to compare the two pipelines).
  bool fast = true;
  /// Use the packed 8-byte CAS for complex<float> global writeback instead of
  /// two float atomic adds (Options::packed_atomics). Ignored for double.
  bool packed = false;

  static KernelParams from_width(int width, double sigma = 2.0) {
    // Every kernel buffer (tap values, Horner accumulators) is sized by
    // kMaxWidth; a wider request would overflow them.
    if (width < 1 || width > kMaxWidth)
      throw std::invalid_argument("KernelParams: width must be in [1, kMaxWidth]");
    if (!(sigma > 1.0))
      throw std::invalid_argument("KernelParams: upsampfac must be > 1");
    KernelParams p;
    p.w = width;
    // sigma = 2 keeps the original per-factor cast so beta is bit-identical
    // to every previous release.
    p.beta = sigma == 2.0 ? static_cast<T>(2.30) * static_cast<T>(width)
                          : static_cast<T>(es_beta(width, sigma));
    p.half_w = static_cast<T>(width) / 2;
    p.inv_half_w = static_cast<T>(2) / static_cast<T>(width);
    return p;
  }
};

/// Width rule. sigma = 2: paper eq. (6), w = ceil(log10(1/eps)) + 1, clamped
/// to [2, 16] (the original bound — w = 16 is already eps ~ 1e-15). Other
/// sigma: w = ceil(ln(1/eps) / (pi * sqrt(1 - 1/sigma))) (the FINUFFT rule),
/// clamped to [2, kMaxWidth] — lower upsampling needs a wider kernel for the
/// same tolerance (sigma = 1.25 is roughly 1.6x wider).
inline int width_from_tol(double tol, double sigma = 2.0) {
  if (sigma == 2.0) {
    const int w = static_cast<int>(std::ceil(std::log10(1.0 / tol))) + 1;
    return std::clamp(w, 2, 16);
  }
  if (!(sigma > 1.0))
    throw std::invalid_argument("width_from_tol: upsampfac must be > 1");
  const int w = static_cast<int>(std::ceil(
      std::log(1.0 / tol) / (3.141592653589793 * std::sqrt(1.0 - 1.0 / sigma))));
  return std::clamp(w, 2, kMaxWidth);
}

/// phi_beta(z) on the normalized support [-1, 1].
template <typename T>
inline T es_eval(T z, T beta) {
  const T t = 1 - z * z;
  if (t < 0) return 0;
  return std::exp(beta * (std::sqrt(t) - 1));
}

/// Evaluates the kernel at the w grid offsets covering one nonuniform point.
///
/// `x` is the point's fine-grid coordinate in [0, nf); `l0` (returned) is the
/// leftmost grid index touched (possibly negative; caller wraps); vals[i] =
/// phi((l0 + i - x) * 2/w) for i = 0..w-1.
///
/// Two evaluation methods, as in cuFINUFFT's kerevalmeth option: direct
/// exp/sqrt (default), or piecewise-polynomial Horner evaluation when the
/// KernelParams carries a coefficient table (see HornerTable).
template <typename T>
inline std::int64_t es_values(const KernelParams<T>& p, T x, T* vals) {
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(x - p.half_w));
  if (p.horner) {
    // delta in [0, 1): position of the leftmost grid point within its cell.
    const T delta = static_cast<T>(l0) - (x - p.half_w);
    const int d = p.horner_degree;
    const int wp = p.horner_wpad;
    const T* co = p.horner;
    T acc[kMaxWidth];
    const T* ctop = co + static_cast<std::size_t>(d) * wp;
    for (int i = 0; i < p.w; ++i) acc[i] = ctop[i];
    for (int k = d - 1; k >= 0; --k) {
      const T* ck = co + static_cast<std::size_t>(k) * wp;
      for (int i = 0; i < p.w; ++i) acc[i] = acc[i] * delta + ck[i];
    }
    for (int i = 0; i < p.w; ++i) vals[i] = acc[i];
    return l0;
  }
  for (int i = 0; i < p.w; ++i) {
    const T z = (static_cast<T>(l0 + i) - x) * p.inv_half_w;
    vals[i] = es_eval(z, p.beta);
  }
  return l0;
}

/// Compile-time-width kernel evaluation: identical math to es_values, but
/// every tap loop has a constant bound (fully unrolled / vectorized) and the
/// exp/sqrt fallback is staged through per-point tap buffers so the sqrt
/// lane vectorizes and the exp calls run back to back.
template <int W, typename T>
inline std::int64_t es_values_fixed(const KernelParams<T>& p, T x, T* vals) {
  static_assert(W >= 2 && W <= kMaxWidth);
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(x - p.half_w));
  if (p.horner) {
    constexpr int WP = pad_width(W);
    assert(p.horner_wpad == WP);
    const T delta = static_cast<T>(l0) - (x - p.half_w);
    const int d = p.horner_degree;
    const T* co = p.horner;
    T acc[WP];
    const T* ctop = co + static_cast<std::size_t>(d) * WP;
    for (int i = 0; i < WP; ++i) acc[i] = ctop[i];
    for (int k = d - 1; k >= 0; --k) {
      const T* ck = co + static_cast<std::size_t>(k) * WP;
      for (int i = 0; i < WP; ++i) acc[i] = acc[i] * delta + ck[i];
    }
    for (int i = 0; i < W; ++i) vals[i] = acc[i];
    return l0;
  }
  T t[W], s[W];
  for (int i = 0; i < W; ++i) {
    const T z = (static_cast<T>(l0 + i) - x) * p.inv_half_w;
    t[i] = 1 - z * z;
  }
  for (int i = 0; i < W; ++i) s[i] = std::sqrt(t[i] > 0 ? t[i] : T(0));
  for (int i = 0; i < W; ++i)
    vals[i] = t[i] < 0 ? T(0) : std::exp(p.beta * (s[i] - 1));
  return l0;
}

/// Like es_values_fixed, but writes pad_width(W) values with an exact-zero
/// tail (taps W..WP-1). The shared-memory kernels run their x-tap loops over
/// the full padded width — whole SIMD vectors, no scalar remainder — and the
/// zero multipliers make the overhanging accumulates exact no-ops.
template <int W, typename T>
inline std::int64_t es_values_padded(const KernelParams<T>& p, T x, T* vals) {
  constexpr int WP = pad_width(W);
  const std::int64_t l0 = es_values_fixed<W>(p, x, vals);
  for (int i = W; i < WP; ++i) vals[i] = T(0);
  return l0;
}

/// Piecewise-polynomial approximation of the ES kernel for Horner evaluation
/// (cuFINUFFT's kerevalmeth=1): for offset i = 0..w-1 the value
/// phi((delta + i - w/2) * 2/w), delta in [0, 1), is interpolated by a
/// Chebyshev-node Newton polynomial expanded to monomials. Replaces the w
/// exp/sqrt calls per point-axis with w Horner evaluations.
///
/// Coefficients are stored degree-major and tap-padded — row k holds the
/// delta^k coefficient for taps 0..wpad-1 (taps >= w zero) — so evaluation
/// is a stream of FMAs across taps rather than a per-tap scalar recurrence.
template <typename T>
class HornerTable {
 public:
  HornerTable() = default;

  explicit HornerTable(const KernelParams<T>& base, int degree = 0)
      : w_(base.w),
        wpad_(pad_width(base.w)),
        degree_(degree > 0 ? degree : default_degree(base.w)) {
    const int d = degree_;
    const int q = d + 1;
    coeffs_.assign(static_cast<std::size_t>(q) * wpad_, T(0));
    // Chebyshev nodes on [0, 1].
    std::vector<double> t(q);
    for (int k = 0; k < q; ++k)
      t[k] = 0.5 + 0.5 * std::cos(3.141592653589793 * (k + 0.5) / q);
    const double beta = double(base.beta);
    const double scale = 2.0 / double(w_);
    std::vector<double> dd(q), mono(q), tmp(q);
    for (int i = 0; i < w_; ++i) {
      // Newton divided differences of f(delta) = phi((delta + i - w/2)*2/w).
      for (int k = 0; k < q; ++k)
        dd[k] = es_eval((t[k] + double(i) - double(w_) / 2) * scale, beta);
      for (int lvl = 1; lvl < q; ++lvl)
        for (int k = q - 1; k >= lvl; --k)
          dd[k] = (dd[k] - dd[k - 1]) / (t[k] - t[k - lvl]);
      // Expand Newton form to monomials: P = dd[d]; P = P*(x - t[k]) + dd[k].
      std::fill(mono.begin(), mono.end(), 0.0);
      mono[0] = dd[d];
      int deg = 0;
      for (int k = d - 1; k >= 0; --k) {
        // tmp = mono * (x - t[k])
        std::fill(tmp.begin(), tmp.end(), 0.0);
        for (int j = 0; j <= deg; ++j) {
          tmp[j + 1] += mono[j];
          tmp[j] -= mono[j] * t[k];
        }
        ++deg;
        tmp[0] += dd[k];
        mono = tmp;
      }
      for (int j = 0; j < q; ++j)
        coeffs_[static_cast<std::size_t>(j) * wpad_ + i] = static_cast<T>(mono[j]);
    }
  }

  bool empty() const { return coeffs_.empty(); }

  /// Points the KernelParams at this table (the table must outlive its use).
  void attach(KernelParams<T>& p) const {
    p.horner = coeffs_.data();
    p.horner_degree = degree_;
    p.horner_wpad = wpad_;
  }

  /// Largest |table - exp/sqrt| over a dense delta sample, evaluated on the
  /// stored precision-T coefficients exactly as the kernels do. The fit
  /// cache checks every refit against this before the fast path relies on
  /// the table for a new (width, sigma) pair.
  double max_residual(const KernelParams<T>& base) const {
    const double scale = 2.0 / double(w_);
    const double beta = double(base.beta);
    double worst = 0.0;
    for (int s = 0; s < 257; ++s) {
      const T delta = static_cast<T>(s / 257.0);
      for (int i = 0; i < w_; ++i) {
        T acc = coeffs_[static_cast<std::size_t>(degree_) * wpad_ + i];
        for (int k = degree_ - 1; k >= 0; --k)
          acc = acc * delta + coeffs_[static_cast<std::size_t>(k) * wpad_ + i];
        const double z = (double(delta) + double(i) - double(w_) / 2) * scale;
        worst = std::max(worst, std::abs(double(acc) - es_eval(z, beta)));
      }
    }
    return worst;
  }

  /// Degree rule: enough for the approximation error to sit below the
  /// aliasing error of width w (roughly 10^{-(w-1)}).
  static int default_degree(int w) { return std::min(16, w + 4); }

 private:
  int w_ = 0;
  int wpad_ = 0;
  int degree_ = 0;
  std::vector<T> coeffs_;
};

/// Process-wide Horner table cache: each (width, sigma) pair is fit once per
/// precision and shared by every plan. Tables are immutable after
/// construction and never evicted (a few KB each, and only widths actually
/// requested are fit). Each fit is residual-checked against es_eval; if the
/// default degree ever missed the width-w aliasing target the degree would
/// be bumped and refit — defensive, since the default degree passes for
/// every supported (w, sigma) at both precisions today.
template <typename T>
inline const HornerTable<T>& horner_cache(int width, double sigma) {
  static std::mutex mu;
  static std::map<std::pair<int, double>, std::unique_ptr<const HornerTable<T>>>
      tables;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = tables[{width, sigma}];
  if (!slot) {
    const auto base = KernelParams<T>::from_width(width, sigma);
    // Coefficients round to T, so the residual can't beat a precision floor;
    // above it, demand a margin under the kernel's own aliasing error.
    const double floor_res = sizeof(T) == 4 ? 5e-6 : 1e-13;
    const double target =
        std::max(floor_res, 0.05 * kernel_alias_eps(width, sigma));
    const int d0 = HornerTable<T>::default_degree(width);
    for (int d = d0; ; d += 2) {
      auto fit = std::make_unique<const HornerTable<T>>(base, d);
      const bool ok = fit->max_residual(base) <= target;
      slot = std::move(fit);
      if (ok || d >= d0 + 4) break;
    }
  }
  return *slot;
}

}  // namespace cf::spread
