// The "exponential of semicircle" (ES) spreading kernel of FINUFFT/cuFINUFFT:
//
//   phi_beta(z) = exp(beta * (sqrt(1 - z^2) - 1))  for |z| <= 1, else 0,
//
// with width (in fine-grid points) w = ceil(log10(1/eps)) + 1 and
// beta = 2.30 * w (paper eq. (5)-(6), sigma = 2 fixed).
//
// Two evaluation layers:
//  * es_values      — runtime-width scalar path (the portable fallback),
//  * es_values_fixed<W> — compile-time-width path whose tap loops fully
//    unroll and whose Horner evaluation runs fused multiply-adds *across
//    taps* (degree-major coefficient layout padded to a multiple of 4), the
//    shape that auto-vectorizes. The spreading kernels dispatch w=2..16 to
//    the fixed-width path and fall back to es_values otherwise.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cf::spread {

/// Maximum supported kernel width; w = 16 corresponds to eps ~ 1e-15, beyond
/// double-precision reach, so this bounds every stack array in the kernels.
inline constexpr int kMaxWidth = 16;

/// Horner coefficient rows are padded to a multiple of this many taps so the
/// across-tap FMA loop works on full SIMD lanes.
inline constexpr int kTapPad = 4;

/// Width rounded up to the Horner-row padding.
inline constexpr int pad_width(int w) { return (w + kTapPad - 1) / kTapPad * kTapPad; }

/// Kernel shape parameters for one transform. When `horner` is non-null the
/// kernels evaluate the piecewise polynomial it points at instead of the
/// exp/sqrt form (cuFINUFFT's kerevalmeth=1 fast path); the table is owned
/// by whoever built it (see HornerTable) and must outlive the transform.
template <typename T>
struct KernelParams {
  int w;        ///< width in fine-grid points
  T beta;       ///< ES exponent
  T half_w;     ///< w/2 as T
  T inv_half_w; ///< 2/w as T
  /// Degree-major padded Horner coefficients: horner[k*horner_wpad + i] is
  /// the delta^k coefficient of tap i (taps >= w are zero). Null = exp/sqrt.
  const T* horner = nullptr;
  int horner_degree = 0;
  int horner_wpad = 0;
  /// Allow the width-specialized kernels; false forces the runtime-w scalar
  /// fallback (used by tests and benches to compare the two pipelines).
  bool fast = true;
  /// Use the packed 8-byte CAS for complex<float> global writeback instead of
  /// two float atomic adds (Options::packed_atomics). Ignored for double.
  bool packed = false;

  static KernelParams from_width(int width) {
    // Every kernel buffer (tap values, Horner accumulators) is sized by
    // kMaxWidth; a wider request would overflow them.
    if (width < 1 || width > kMaxWidth)
      throw std::invalid_argument("KernelParams: width must be in [1, kMaxWidth]");
    KernelParams p;
    p.w = width;
    p.beta = static_cast<T>(2.30) * static_cast<T>(width);
    p.half_w = static_cast<T>(width) / 2;
    p.inv_half_w = static_cast<T>(2) / static_cast<T>(width);
    return p;
  }
};

/// Paper eq. (6): w = ceil(log10(1/eps)) + 1, clamped to [2, kMaxWidth].
inline int width_from_tol(double tol) {
  const int w = static_cast<int>(std::ceil(std::log10(1.0 / tol))) + 1;
  return std::clamp(w, 2, kMaxWidth);
}

/// phi_beta(z) on the normalized support [-1, 1].
template <typename T>
inline T es_eval(T z, T beta) {
  const T t = 1 - z * z;
  if (t < 0) return 0;
  return std::exp(beta * (std::sqrt(t) - 1));
}

/// Evaluates the kernel at the w grid offsets covering one nonuniform point.
///
/// `x` is the point's fine-grid coordinate in [0, nf); `l0` (returned) is the
/// leftmost grid index touched (possibly negative; caller wraps); vals[i] =
/// phi((l0 + i - x) * 2/w) for i = 0..w-1.
///
/// Two evaluation methods, as in cuFINUFFT's kerevalmeth option: direct
/// exp/sqrt (default), or piecewise-polynomial Horner evaluation when the
/// KernelParams carries a coefficient table (see HornerTable).
template <typename T>
inline std::int64_t es_values(const KernelParams<T>& p, T x, T* vals) {
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(x - p.half_w));
  if (p.horner) {
    // delta in [0, 1): position of the leftmost grid point within its cell.
    const T delta = static_cast<T>(l0) - (x - p.half_w);
    const int d = p.horner_degree;
    const int wp = p.horner_wpad;
    const T* co = p.horner;
    T acc[kMaxWidth];
    const T* ctop = co + static_cast<std::size_t>(d) * wp;
    for (int i = 0; i < p.w; ++i) acc[i] = ctop[i];
    for (int k = d - 1; k >= 0; --k) {
      const T* ck = co + static_cast<std::size_t>(k) * wp;
      for (int i = 0; i < p.w; ++i) acc[i] = acc[i] * delta + ck[i];
    }
    for (int i = 0; i < p.w; ++i) vals[i] = acc[i];
    return l0;
  }
  for (int i = 0; i < p.w; ++i) {
    const T z = (static_cast<T>(l0 + i) - x) * p.inv_half_w;
    vals[i] = es_eval(z, p.beta);
  }
  return l0;
}

/// Compile-time-width kernel evaluation: identical math to es_values, but
/// every tap loop has a constant bound (fully unrolled / vectorized) and the
/// exp/sqrt fallback is staged through per-point tap buffers so the sqrt
/// lane vectorizes and the exp calls run back to back.
template <int W, typename T>
inline std::int64_t es_values_fixed(const KernelParams<T>& p, T x, T* vals) {
  static_assert(W >= 2 && W <= kMaxWidth);
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(x - p.half_w));
  if (p.horner) {
    constexpr int WP = pad_width(W);
    assert(p.horner_wpad == WP);
    const T delta = static_cast<T>(l0) - (x - p.half_w);
    const int d = p.horner_degree;
    const T* co = p.horner;
    T acc[WP];
    const T* ctop = co + static_cast<std::size_t>(d) * WP;
    for (int i = 0; i < WP; ++i) acc[i] = ctop[i];
    for (int k = d - 1; k >= 0; --k) {
      const T* ck = co + static_cast<std::size_t>(k) * WP;
      for (int i = 0; i < WP; ++i) acc[i] = acc[i] * delta + ck[i];
    }
    for (int i = 0; i < W; ++i) vals[i] = acc[i];
    return l0;
  }
  T t[W], s[W];
  for (int i = 0; i < W; ++i) {
    const T z = (static_cast<T>(l0 + i) - x) * p.inv_half_w;
    t[i] = 1 - z * z;
  }
  for (int i = 0; i < W; ++i) s[i] = std::sqrt(t[i] > 0 ? t[i] : T(0));
  for (int i = 0; i < W; ++i)
    vals[i] = t[i] < 0 ? T(0) : std::exp(p.beta * (s[i] - 1));
  return l0;
}

/// Like es_values_fixed, but writes pad_width(W) values with an exact-zero
/// tail (taps W..WP-1). The shared-memory kernels run their x-tap loops over
/// the full padded width — whole SIMD vectors, no scalar remainder — and the
/// zero multipliers make the overhanging accumulates exact no-ops.
template <int W, typename T>
inline std::int64_t es_values_padded(const KernelParams<T>& p, T x, T* vals) {
  constexpr int WP = pad_width(W);
  const std::int64_t l0 = es_values_fixed<W>(p, x, vals);
  for (int i = W; i < WP; ++i) vals[i] = T(0);
  return l0;
}

/// Piecewise-polynomial approximation of the ES kernel for Horner evaluation
/// (cuFINUFFT's kerevalmeth=1): for offset i = 0..w-1 the value
/// phi((delta + i - w/2) * 2/w), delta in [0, 1), is interpolated by a
/// Chebyshev-node Newton polynomial expanded to monomials. Replaces the w
/// exp/sqrt calls per point-axis with w Horner evaluations.
///
/// Coefficients are stored degree-major and tap-padded — row k holds the
/// delta^k coefficient for taps 0..wpad-1 (taps >= w zero) — so evaluation
/// is a stream of FMAs across taps rather than a per-tap scalar recurrence.
template <typename T>
class HornerTable {
 public:
  HornerTable() = default;

  explicit HornerTable(const KernelParams<T>& base, int degree = 0)
      : w_(base.w),
        wpad_(pad_width(base.w)),
        degree_(degree > 0 ? degree : default_degree(base.w)) {
    const int d = degree_;
    const int q = d + 1;
    coeffs_.assign(static_cast<std::size_t>(q) * wpad_, T(0));
    // Chebyshev nodes on [0, 1].
    std::vector<double> t(q);
    for (int k = 0; k < q; ++k)
      t[k] = 0.5 + 0.5 * std::cos(3.141592653589793 * (k + 0.5) / q);
    const double beta = double(base.beta);
    const double scale = 2.0 / double(w_);
    std::vector<double> dd(q), mono(q), tmp(q);
    for (int i = 0; i < w_; ++i) {
      // Newton divided differences of f(delta) = phi((delta + i - w/2)*2/w).
      for (int k = 0; k < q; ++k)
        dd[k] = es_eval((t[k] + double(i) - double(w_) / 2) * scale, beta);
      for (int lvl = 1; lvl < q; ++lvl)
        for (int k = q - 1; k >= lvl; --k)
          dd[k] = (dd[k] - dd[k - 1]) / (t[k] - t[k - lvl]);
      // Expand Newton form to monomials: P = dd[d]; P = P*(x - t[k]) + dd[k].
      std::fill(mono.begin(), mono.end(), 0.0);
      mono[0] = dd[d];
      int deg = 0;
      for (int k = d - 1; k >= 0; --k) {
        // tmp = mono * (x - t[k])
        std::fill(tmp.begin(), tmp.end(), 0.0);
        for (int j = 0; j <= deg; ++j) {
          tmp[j + 1] += mono[j];
          tmp[j] -= mono[j] * t[k];
        }
        ++deg;
        tmp[0] += dd[k];
        mono = tmp;
      }
      for (int j = 0; j < q; ++j)
        coeffs_[static_cast<std::size_t>(j) * wpad_ + i] = static_cast<T>(mono[j]);
    }
  }

  bool empty() const { return coeffs_.empty(); }

  /// Points the KernelParams at this table (the table must outlive its use).
  void attach(KernelParams<T>& p) const {
    p.horner = coeffs_.data();
    p.horner_degree = degree_;
    p.horner_wpad = wpad_;
  }

  /// Degree rule: enough for the approximation error to sit below the
  /// aliasing error of width w (roughly 10^{-(w-1)}).
  static int default_degree(int w) { return std::min(16, w + 4); }

 private:
  int w_ = 0;
  int wpad_ = 0;
  int degree_ = 0;
  std::vector<T> coeffs_;
};

}  // namespace cf::spread
