// The "exponential of semicircle" (ES) spreading kernel of FINUFFT/cuFINUFFT:
//
//   phi_beta(z) = exp(beta * (sqrt(1 - z^2) - 1))  for |z| <= 1, else 0,
//
// with width (in fine-grid points) w = ceil(log10(1/eps)) + 1 and
// beta = 2.30 * w (paper eq. (5)-(6), sigma = 2 fixed).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cf::spread {

/// Maximum supported kernel width; w = 16 corresponds to eps ~ 1e-15, beyond
/// double-precision reach, so this bounds every stack array in the kernels.
inline constexpr int kMaxWidth = 16;

/// Kernel shape parameters for one transform. When `horner` is non-null the
/// kernels evaluate the piecewise polynomial it points at instead of the
/// exp/sqrt form (cuFINUFFT's kerevalmeth=1 fast path); the table is owned
/// by whoever built it (see HornerTable) and must outlive the transform.
template <typename T>
struct KernelParams {
  int w;        ///< width in fine-grid points
  T beta;       ///< ES exponent
  T half_w;     ///< w/2 as T
  T inv_half_w; ///< 2/w as T
  const T* horner = nullptr;  ///< w*(degree+1) monomial coefficients, or null
  int horner_degree = 0;

  static KernelParams from_width(int width) {
    KernelParams p;
    p.w = width;
    p.beta = static_cast<T>(2.30) * static_cast<T>(width);
    p.half_w = static_cast<T>(width) / 2;
    p.inv_half_w = static_cast<T>(2) / static_cast<T>(width);
    return p;
  }
};

/// Paper eq. (6): w = ceil(log10(1/eps)) + 1, clamped to [2, kMaxWidth].
inline int width_from_tol(double tol) {
  const int w = static_cast<int>(std::ceil(std::log10(1.0 / tol))) + 1;
  return std::clamp(w, 2, kMaxWidth);
}

/// phi_beta(z) on the normalized support [-1, 1].
template <typename T>
inline T es_eval(T z, T beta) {
  const T t = 1 - z * z;
  if (t < 0) return 0;
  return std::exp(beta * (std::sqrt(t) - 1));
}

/// Evaluates the kernel at the w grid offsets covering one nonuniform point.
///
/// `x` is the point's fine-grid coordinate in [0, nf); `l0` (returned) is the
/// leftmost grid index touched (possibly negative; caller wraps); vals[i] =
/// phi((l0 + i - x) * 2/w) for i = 0..w-1.
///
/// Two evaluation methods, as in cuFINUFFT's kerevalmeth option: direct
/// exp/sqrt (default), or piecewise-polynomial Horner evaluation when the
/// KernelParams carries a coefficient table (see HornerTable).
template <typename T>
inline std::int64_t es_values(const KernelParams<T>& p, T x, T* vals) {
  const std::int64_t l0 = static_cast<std::int64_t>(std::ceil(x - p.half_w));
  if (p.horner) {
    // delta in [0, 1): position of the leftmost grid point within its cell.
    const T delta = static_cast<T>(l0) - (x - p.half_w);
    const int d = p.horner_degree;
    const T* co = p.horner;  // co[i*(d+1) + k]: coefficient of delta^k
    for (int i = 0; i < p.w; ++i, co += d + 1) {
      T acc = co[d];
      for (int k = d - 1; k >= 0; --k) acc = acc * delta + co[k];
      vals[i] = acc;
    }
    return l0;
  }
  for (int i = 0; i < p.w; ++i) {
    const T z = (static_cast<T>(l0 + i) - x) * p.inv_half_w;
    vals[i] = es_eval(z, p.beta);
  }
  return l0;
}

/// Piecewise-polynomial approximation of the ES kernel for Horner evaluation
/// (cuFINUFFT's kerevalmeth=1): for offset i = 0..w-1 the value
/// phi((delta + i - w/2) * 2/w), delta in [0, 1), is interpolated by a
/// Chebyshev-node Newton polynomial expanded to monomials. Replaces the w
/// exp/sqrt calls per point-axis with w Horner evaluations.
template <typename T>
class HornerTable {
 public:
  HornerTable() = default;

  explicit HornerTable(const KernelParams<T>& base, int degree = 0)
      : w_(base.w), degree_(degree > 0 ? degree : default_degree(base.w)) {
    const int d = degree_;
    const int q = d + 1;
    coeffs_.resize(static_cast<std::size_t>(w_) * q);
    // Chebyshev nodes on [0, 1].
    std::vector<double> t(q);
    for (int k = 0; k < q; ++k)
      t[k] = 0.5 + 0.5 * std::cos(3.141592653589793 * (k + 0.5) / q);
    const double beta = double(base.beta);
    const double scale = 2.0 / double(w_);
    std::vector<double> dd(q), mono(q), tmp(q);
    for (int i = 0; i < w_; ++i) {
      // Newton divided differences of f(delta) = phi((delta + i - w/2)*2/w).
      for (int k = 0; k < q; ++k)
        dd[k] = es_eval((t[k] + double(i) - double(w_) / 2) * scale, beta);
      for (int lvl = 1; lvl < q; ++lvl)
        for (int k = q - 1; k >= lvl; --k)
          dd[k] = (dd[k] - dd[k - 1]) / (t[k] - t[k - lvl]);
      // Expand Newton form to monomials: P = dd[d]; P = P*(x - t[k]) + dd[k].
      std::fill(mono.begin(), mono.end(), 0.0);
      mono[0] = dd[d];
      int deg = 0;
      for (int k = d - 1; k >= 0; --k) {
        // tmp = mono * (x - t[k])
        std::fill(tmp.begin(), tmp.end(), 0.0);
        for (int j = 0; j <= deg; ++j) {
          tmp[j + 1] += mono[j];
          tmp[j] -= mono[j] * t[k];
        }
        ++deg;
        tmp[0] += dd[k];
        mono = tmp;
      }
      for (int j = 0; j < q; ++j)
        coeffs_[static_cast<std::size_t>(i) * q + j] = static_cast<T>(mono[j]);
    }
  }

  bool empty() const { return coeffs_.empty(); }

  /// Points the KernelParams at this table (the table must outlive its use).
  void attach(KernelParams<T>& p) const {
    p.horner = coeffs_.data();
    p.horner_degree = degree_;
  }

  /// Degree rule: enough for the approximation error to sit below the
  /// aliasing error of width w (roughly 10^{-(w-1)}).
  static int default_degree(int w) { return std::min(16, w + 4); }

 private:
  int w_ = 0;
  int degree_ = 0;
  std::vector<T> coeffs_;
};

}  // namespace cf::spread
