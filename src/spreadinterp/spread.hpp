// The paper's three spreading methods (Sec. III-A) and the interpolation
// methods (Sec. III-B), running on a vgpu Device.
//
//  * GM       — input-driven: one thread per point in user order, global
//               atomic adds (the CUNFFT-style baseline).
//  * GM-sort  — GM but with points visited in bin-sorted order, which
//               localizes the grid region touched by nearby threads.
//  * SM       — one thread block per subproblem (<= msub bin-sorted points);
//               spread into a padded-bin copy in shared memory, then a single
//               pass of global atomic adds writes the padded bin back.
//
// All functions take fine-grid coordinates (already fold-rescaled to
// [0, nf)) and accumulate into `fw` without zeroing it first.
//
// Every entry point dispatches on the kernel width: widths 2..16 (all the
// tolerance rule can produce) run width-specialized kernels whose tap loops
// fully unroll and whose shared-memory accumulation is deinterleaved into
// real/imag FMA streams; other widths — or KernelParams::fast == false —
// take the runtime-width scalar fallback. Both paths compute the same sums
// (identical per-tap values for exp/sqrt evaluation; the Horner table is a
// shared approximation), so results agree to rounding.
#pragma once

#include <complex>
#include <cstdint>

#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

/// Nonuniform points in fine-grid coordinates; device pointers; unused axes
/// are nullptr.
template <typename T>
struct NuPoints {
  const T* xg = nullptr;
  const T* yg = nullptr;
  const T* zg = nullptr;
  std::size_t M = 0;
};

/// GM / GM-sort spreading: accumulates the M points into fw with global
/// atomics. `order` == nullptr gives user order (GM); a bin-sort permutation
/// gives GM-sort.
template <typename T>
void spread_gm(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
               const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
               const std::uint32_t* order);

/// True if the SM padded bin fits the device's per-block shared memory
/// (paper Rmk. 2: 16*(m1+w)(m2+w)(m3+w) <= 49000 in their fp32 terms).
template <typename T>
bool sm_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w);

/// SM spreading over prebuilt subproblems (paper Fig. 1, Steps 2-3).
template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub);

/// Interpolation (type-2 step 3): c[j] = weighted sum of fw near point j.
/// `order` == nullptr is GM; the bin-sort permutation gives GM-sort (reads
/// coalesce; no write conflicts exist, Sec. III-B).
template <typename T>
void interp(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
            const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
            const std::uint32_t* order);

/// Batch-strided spreading (many-vector "ntransf" execution): the B strength
/// vectors c + b*cstride (b = 0..B-1) are spread into the B stacked fine
/// grids fw + b*fwstride in one call, with each point's tap weights evaluated
/// once for the whole stack. `order` as in spread_gm. B = 1 is valid but the
/// single-vector entry points remain the bit-for-bit fast path.
template <typename T>
void spread_gm_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::complex<T>* c,
                     std::complex<T>* fw, const std::uint32_t* order, int B,
                     std::size_t cstride, std::size_t fwstride);

/// Batch-strided SM spreading: tap weights are precomputed once into a
/// bin-sorted tap table, then the batch is processed in chunks of as many
/// padded-bin planes as fit the shared-memory arena, reusing the sort and
/// subproblem data unchanged.
template <typename T>
void spread_sm_batch(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                     const KernelParams<T>& kp, const NuPoints<T>& pts,
                     const std::complex<T>* c, std::complex<T>* fw,
                     const DeviceSort& sort, const SubprobSetup& subs, std::uint32_t msub,
                     int B, std::size_t cstride, std::size_t fwstride);

/// Batch-strided interpolation: gathers every c + b*cstride from its grid
/// fw + b*fwstride with one weight evaluation per point.
template <typename T>
void interp_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                  const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                  const std::uint32_t* order, int B, std::size_t cstride,
                  std::size_t fwstride);

/// SM-style interpolation: stages each subproblem's padded bin of fw into
/// shared memory before gathering. Implemented to *measure* the paper's
/// Sec. III-B claim that "the benefit of applying an idea like SM to
/// interpolation would be limited" (reads have no conflicts to avoid); see
/// bench_ablation_interp_sm.
template <typename T>
void interp_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub);

}  // namespace cf::spread
