// The paper's three spreading methods (Sec. III-A) and the interpolation
// methods (Sec. III-B), running on a vgpu Device.
//
//  * GM       — input-driven: one thread per point in user order, global
//               atomic adds (the CUNFFT-style baseline).
//  * GM-sort  — GM but with points visited in bin-sorted order, which
//               localizes the grid region touched by nearby threads.
//  * SM       — one thread block per subproblem (<= msub bin-sorted points);
//               spread into a padded-bin copy in shared memory, then a single
//               pass of global atomic adds writes the padded bin back.
//
// All functions take fine-grid coordinates (already fold-rescaled to
// [0, nf)) and accumulate into `fw` without zeroing it first.
//
// Every stage is batch-strided: B strength vectors c + b*cstride run against
// B stacked fine grids fw + b*fwstride with each point's tap weights
// evaluated once for the whole stack. The single-vector entry points are the
// B = 1 instantiations of the same kernels (identical operations in identical
// order), so there is exactly one implementation of each stage.
//
// Every entry point dispatches on the kernel width: widths 2..16 (all the
// tolerance rule can produce) run width-specialized kernels whose tap loops
// fully unroll and whose shared-memory accumulation is deinterleaved into
// real/imag FMA streams; other widths — or KernelParams::fast == false —
// take the runtime-width scalar fallback. Both paths compute the same sums,
// so results agree to rounding.
//
// Point-dependent precomputation (point_cache.hpp) plugs in three ways:
//  * SM/tiled spreading consumes a TapTable (per-point tap values in
//    bin-sorted order). The plan builds it once in set_points; the table-less
//    overload builds a transient one for benches/tests.
//  * The interior-first iteration partition (InteriorPartition) drives the
//    branch-free no-wrap path of GM/GM-sort spread and interp: the caller
//    passes the partitioned order plus NuPoints::n_nowrap, and the kernels
//    run the two segments as separate launches (no per-point flag test).
//  * The TileSet drives the tile-owned atomic-free spread writeback
//    (spread_tiled_batch): blocks own disjoint core regions of the fine
//    grid, halos go to per-tile buffers merged in a fixed neighbor order —
//    zero global atomics and bitwise-deterministic results at any worker
//    count.
#pragma once

#include <complex>
#include <cstdint>

#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/point_cache.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

/// Nonuniform points in fine-grid coordinates; device pointers; unused axes
/// are nullptr.
template <typename T>
struct NuPoints {
  const T* xg = nullptr;
  const T* yg = nullptr;
  const T* zg = nullptr;
  std::size_t M = 0;
  /// Number of leading points in ITERATION order whose taps all lie in
  /// [0, nf) on every axis, so GM/GM-sort spread and interp skip the periodic
  /// wrap for them (bitwise-identical indices, no per-tap modulo, and no
  /// per-point branch — the kernels split the launch at this count).
  /// Requires the iteration order to be partitioned interior-first; pass the
  /// InteriorPartition's order as the kernels' `order` argument and its
  /// n_interior here (see classify_interior). 0 = every point wraps.
  std::size_t n_nowrap = 0;
};

/// GM / GM-sort spreading: accumulates the M points into fw with global
/// atomics. `order` == nullptr gives user order (GM); a bin-sort permutation
/// gives GM-sort.
template <typename T>
void spread_gm(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
               const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
               const std::uint32_t* order);

/// Batch-strided GM / GM-sort spreading (many-vector "ntransf" execution).
template <typename T>
void spread_gm_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::complex<T>* c,
                     std::complex<T>* fw, const std::uint32_t* order, int B,
                     std::size_t cstride, std::size_t fwstride);

/// True if the SM padded bin fits the device's per-block shared memory
/// (paper Rmk. 2: 16*(m1+w)(m2+w)(m3+w) <= 49000 in their fp32 terms).
template <typename T>
bool sm_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w);

/// SM spreading over prebuilt subproblems (paper Fig. 1, Steps 2-3), reading
/// per-point tap values from `taps` (built against the same kp and sort
/// order — the plan's cached table, see point_cache.hpp).
template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub, const TapTable<T>& taps);

/// Convenience overload for benches/tests: builds a transient tap table for
/// this one call. The plan path uses the cached-table overload.
template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub);

/// Batch-strided SM spreading: the batch is processed in chunks of as many
/// padded-bin planes as fit the shared-memory arena, reusing the sort,
/// subproblem, and tap-table data unchanged.
template <typename T>
void spread_sm_batch(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                     const KernelParams<T>& kp, const NuPoints<T>& pts,
                     const std::complex<T>* c, std::complex<T>* fw,
                     const DeviceSort& sort, const SubprobSetup& subs, std::uint32_t msub,
                     const TapTable<T>& taps, int B, std::size_t cstride,
                     std::size_t fwstride);

/// Tile-owned atomic-free spread writeback (Options::tiled_spread): one block
/// per (tile, chunk) work item — scheduled largest-first over the pool's
/// work-stealing path — accumulates a canonical chunk of the bin's sorted
/// points into a deinterleaved padded scratch (taps from `taps` when non-null
/// — the SM cached table — or evaluated inline, identical values either way).
/// Unsplit tiles add their disjoint in-range core box to fw with plain
/// vectorizable stores; split tiles (bins over TileSet::chunk_cap points) are
/// reduced plane by plane in fixed chunk order first. A final kernel merges
/// every tile's halo shell into the neighboring cores in the fixed canonical
/// order of spread_impl.hpp's tile enumeration. Zero global atomics; output
/// is bitwise-identical at every worker count (given the deterministic
/// bin_sort) because the summation split and every reduction order are pure
/// functions of the points, never of the steal schedule. Requires
/// tiles.usable (see build_tile_set); the batch runs in chunks of tiles.nb
/// planes. Returns the number of work items the scheduler stole across
/// workers (0 on single-worker devices and inline runs).
template <typename T>
std::uint64_t spread_tiled_batch(vgpu::Device& dev, const GridSpec& grid,
                                 const BinSpec& bins, const KernelParams<T>& kp,
                                 const NuPoints<T>& pts, const std::complex<T>* c,
                                 std::complex<T>* fw, const DeviceSort& sort,
                                 TileSet<T>& tiles, const TapTable<T>* taps, int B,
                                 std::size_t cstride, std::size_t fwstride);

/// Interpolation (type-2 step 3): c[j] = weighted sum of fw near point j.
/// `order` == nullptr is GM; the bin-sort permutation gives GM-sort (reads
/// coalesce; no write conflicts exist, Sec. III-B).
template <typename T>
void interp(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
            const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
            const std::uint32_t* order);

/// Batch-strided interpolation: gathers every c + b*cstride from its grid
/// fw + b*fwstride with one weight evaluation per point.
template <typename T>
void interp_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                  const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                  const std::uint32_t* order, int B, std::size_t cstride,
                  std::size_t fwstride);

/// SM-style interpolation: stages each subproblem's padded bin of fw into
/// shared memory before gathering. Implemented to *measure* the paper's
/// Sec. III-B claim that "the benefit of applying an idea like SM to
/// interpolation would be limited" (reads have no conflicts to avoid); see
/// bench_ablation_interp_sm.
template <typename T>
void interp_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub);

}  // namespace cf::spread
