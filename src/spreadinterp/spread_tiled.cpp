// Tile-owned atomic-free spread writeback (Options::tiled_spread).
//
// The atomic schemes (spread_gm.cpp, spread_sm.cpp) funnel every subproblem's
// output through global atomic adds — on this vgpu, real locked RMW
// instructions whose cost dominates the writeback and whose float summation
// order varies with worker scheduling. The bins already partition the fine
// grid into disjoint core boxes, so ownership removes both problems:
//
//  Phase 1 (one block per (tile, chunk) work item, work-stealing schedule):
//    accumulate a chunk of the bin's sorted points into a full padded
//    scratch (the per-tile generalization of the SM shared-memory scratch —
//    living in global memory, it is not limited by the 48 KiB shared budget,
//    so the engine also covers configurations where SM cannot run, e.g. 3D
//    double). Unsplit tiles are a single chunk and run the whole per-tile
//    pipeline in the owning WORKER's scratch: add the in-range core box to
//    fw with plain vectorizable stores (no other block ever writes those
//    cells) and persist the SHELL into the tile's shell-compact arena slot
//    (spread_impl.hpp) — the core cells are dead once written to fw, so the
//    arena only stores what the merge reads. Tiles whose bin exceeds the
//    chunk cap (TileSet::chunk_cap) are split into canonical point-chunks
//    that accumulate into dedicated chunk planes; a second launch reduces
//    each split tile's planes in FIXED chunk order and then runs the same
//    core/shell writeback. The work items go through launch_stealing
//    largest-first (TileSet::sched), so a Gaussian clump that lands in one
//    bin is carved across workers instead of serializing behind one block —
//    the msub-capped load-balancing idea of the paper's SM scheme, applied
//    to the tile engine. The per-cell summation order is a pure function of
//    the canonical split, never of the steal schedule.
//
//  Phase 2 (one block per MERGE owner): sum the neighboring tiles' halo
//    contributions into the owner's core, enumerating neighbors in the fixed
//    canonical order of spread_impl.hpp's tile_axis_nbrs. Each fine-grid cell
//    is written by exactly one block and its additions happen in a
//    worker-independent order, so the whole spread is bitwise-deterministic.
//
// Tap values come from the plan's cached TapTable when provided (SM) or are
// evaluated inline (GM-sort) — the same es_values_* routines either way, so
// the two sources are bitwise-identical.
#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::spread {

namespace {

using namespace detail;

/// Phase 1 for batch planes [b0, b0+nb): work-stealing (tile, chunk)
/// accumulation, fixed-order reduce of split tiles, core writeback.
/// W > 0 is the width-specialized deinterleaved fast path; W == 0 the
/// runtime-width fallback. HasTaps selects table rows vs inline evaluation.
/// Returns the number of work items the scheduler stole across workers.
template <int DIM, int W, bool HasTaps, typename T>
std::uint64_t tiled_accumulate(vgpu::Device& dev, const GridSpec& grid,
                               const BinSpec& bins, const KernelParams<T>& kp,
                               const NuPoints<T>& pts, const std::complex<T>* c,
                               std::complex<T>* fw, const DeviceSort& sort,
                               TileSet<T>& ts, const TapTable<T>* tt, int b0, int nb,
                               std::size_t cstride, std::size_t fwstride) {
  constexpr int WP = W > 0 ? pad_width(W > 0 ? W : 2) : 0;
  const int w = kp.w;
  const int wpad = HasTaps ? tt->wpad : 0;
  const int pad = ts.pad;
  const std::int64_t* p = ts.p;
  const std::size_t plane = ts.plane;
  const int nba = ts.nb;  // allocated planes per tile slot / worker scratch
  T* const hre = ts.halo_re.data();
  T* const him = ts.halo_im.data();
  T* const scre = ts.scratch_re.data();
  T* const scim = ts.scratch_im.data();
  T* const cre = ts.chunk_re.data();
  T* const cim = ts.chunk_im.data();
  const std::uint32_t* const shbase = ts.shell_base.data();

  // The per-tile pipeline, split into pieces the (tile, chunk) work items
  // compose: zero a padded scratch, accumulate a slice of the bin's sorted
  // run into it, write the finished tile (core box to fw, shell to the
  // arena). A singleton chunk runs all three back to back — numerically the
  // exact unchunked per-tile path.

  auto zero_planes = [plane, nb](vgpu::BlockCtx& blk, T* zre, T* zim) {
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(plane * nb, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) zre[i] = T(0);
      for (std::size_t i = lo; i < hi; ++i) zim[i] = T(0);
    });
    blk.sync_threads();
  };

  // Accumulates points [first, first + cnt) of bin b's sorted run; tap-table
  // rows are indexed by absolute sorted position, so chunks of one tile read
  // disjoint row ranges.
  auto accum_points = [&, w, wpad, pad, plane, b0, nb](
                          vgpu::BlockCtx& blk, std::uint32_t b, std::uint32_t first,
                          std::uint32_t cnt, T* sre0, T* sim0) {
    const std::uint32_t start = sort.bin_start[b] + first;
    std::int64_t delta[3];
    subprob_delta(bins, b, DIM, pad, delta);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t j = sort.order[start + i];
        if (i + kPointPrefetch < cnt) {
          const std::size_t jn = sort.order[start + i + kPointPrefetch];
          if constexpr (!HasTaps)
            prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr), jn);
          for (int bb = 0; bb < nb; ++bb)
            CF_PREFETCH(&c[(b0 + bb) * cstride + jn], 0);
        }
        // Tap values and LOCAL tile indices. Points of this bin only reach
        // pad cells past the nominal core, so local coords never wrap.
        std::int64_t li0[DIM];
        if constexpr (W > 0) {
          T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
          if constexpr (HasTaps) {
            const T* row = &tt->vals[(start + i) * static_cast<std::size_t>(DIM * WP)];
            const std::int32_t* lrow = &tt->l0[(start + i) * DIM];
            for (int i0 = 0; i0 < WP; ++i0) v0[i0] = row[i0];
            if constexpr (DIM > 1)
              for (int i1 = 0; i1 < W; ++i1) v1[i1] = row[WP + i1];
            if constexpr (DIM > 2)
              for (int i2 = 0; i2 < W; ++i2) v2[i2] = row[2 * WP + i2];
            for (int d = 0; d < DIM; ++d) li0[d] = lrow[d] - delta[d];
          } else {
            T px[3];
            load_point<DIM>(pts, j, px);
            li0[0] = es_values_padded<W>(kp, px[0], v0) - delta[0];
            if constexpr (DIM > 1)
              li0[1] = es_values_fixed<W>(kp, px[1], v1) - delta[1];
            if constexpr (DIM > 2)
              li0[2] = es_values_fixed<W>(kp, px[2], v2) - delta[2];
          }
          for (int bb = 0; bb < nb; ++bb) {
            CF_SCALAR_LOOP();  // plane loop stays scalar; tap loops vectorize
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            const T cr = cj.real(), ci = cj.imag();
            T* CF_RESTRICT sre = sre0 + plane * bb;
            T* CF_RESTRICT sim = sim0 + plane * bb;
            if constexpr (DIM == 1) {
              T* CF_RESTRICT rre = sre + li0[0];
              T* CF_RESTRICT rim = sim + li0[0];
              for (int i0 = 0; i0 < WP; ++i0) rre[i0] += cr * v0[i0];
              for (int i0 = 0; i0 < WP; ++i0) rim[i0] += ci * v0[i0];
            } else if constexpr (DIM == 2) {
              for (int i1 = 0; i1 < W; ++i1) {
                const T wr = cr * v1[i1], wi = ci * v1[i1];
                const std::int64_t rrow = (li0[1] + i1) * p[0] + li0[0];
                T* CF_RESTRICT rre = sre + rrow;
                T* CF_RESTRICT rim = sim + rrow;
                for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
              }
            } else {
              for (int i2 = 0; i2 < W; ++i2) {
                const T c2r = cr * v2[i2], c2i = ci * v2[i2];
                const std::int64_t pl = (li0[2] + i2) * p[1];
                for (int i1 = 0; i1 < W; ++i1) {
                  const T wr = c2r * v1[i1], wi = c2i * v1[i1];
                  const std::int64_t rrow = (pl + li0[1] + i1) * p[0] + li0[0];
                  T* CF_RESTRICT rre = sre + rrow;
                  T* CF_RESTRICT rim = sim + rrow;
                  for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                  for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
                }
              }
            }
          }
        } else {
          // Runtime-width fallback.
          T vals[3][kMaxWidth];
          const T* vrow[3];
          if constexpr (HasTaps) {
            const T* row = &tt->vals[(start + i) * static_cast<std::size_t>(DIM * wpad)];
            const std::int32_t* lrow = &tt->l0[(start + i) * DIM];
            for (int d = 0; d < DIM; ++d) {
              vrow[d] = row + d * wpad;
              li0[d] = lrow[d] - delta[d];
            }
          } else {
            T px[3];
            load_point<DIM>(pts, j, px);
            for (int d = 0; d < DIM; ++d) {
              li0[d] = es_values(kp, px[d], vals[d]) - delta[d];
              vrow[d] = vals[d];
            }
          }
          for (int bb = 0; bb < nb; ++bb) {
            CF_SCALAR_LOOP();  // see the fast-path plane loop above
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            const T cr = cj.real(), ci = cj.imag();
            T* sre = sre0 + plane * bb;
            T* sim = sim0 + plane * bb;
            for (int i2 = 0; i2 < (DIM > 2 ? w : 1); ++i2) {
              const T w2 = DIM > 2 ? vrow[2][i2] : T(1);
              const std::int64_t pl = DIM > 2 ? (li0[2] + i2) * p[1] : 0;
              for (int i1 = 0; i1 < (DIM > 1 ? w : 1); ++i1) {
                const T w1 = DIM > 1 ? w2 * vrow[1][i1] : T(1);
                const std::int64_t rrow =
                    DIM > 1 ? (pl + li0[1] + i1) * p[0] + li0[0] : li0[0];
                const T wr = cr * w1, wi = ci * w1;
                for (int i0 = 0; i0 < w; ++i0) {
                  sre[rrow + i0] += wr * vrow[0][i0];
                  sim[rrow + i0] += wi * vrow[0][i0];
                }
              }
            }
          }
        }
        blk.note_shared_op(static_cast<std::uint64_t>(nb) * w * (DIM > 1 ? w : 1) *
                           (DIM > 2 ? w : 1));
      }
    });
    blk.sync_threads();
  };

  // Writes a finished tile out of scratch (sre0/sim0): core box to fw, shell
  // to the tile's arena slot.
  auto writeback = [&, pad, plane, nba, b0, nb](vgpu::BlockCtx& blk,
                                                std::uint32_t slot, std::uint32_t b,
                                                const T* sre0, const T* sim0) {
    // Core writeback: the in-range core box is owned by this block, so plain
    // accumulating stores — contiguous in x for both the slot and fw.
    std::int64_t bc[3];
    bin_coords(bins, b, bc);
    std::int64_t c0[3] = {0, 0, 0}, ce[3] = {1, 1, 1};
    for (int d = 0; d < DIM; ++d) tile_core(bc[d], bins.m[d], grid.nf[d], c0[d], ce[d]);
    const std::size_t nrows = static_cast<std::size_t>(ce[1] * ce[2]);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
      for (std::size_t r = lo; r < hi; ++r) {
        const std::int64_t s1 = static_cast<std::int64_t>(r) % ce[1];
        const std::int64_t s2 = static_cast<std::int64_t>(r) / ce[1];
        const std::int64_t s1p = DIM > 1 ? pad + s1 : 0;
        const std::int64_t s2p = DIM > 2 ? pad + s2 : 0;
        const std::size_t src =
            static_cast<std::size_t>((s2p * p[1] + s1p) * p[0] + pad);
        const std::int64_t dst =
            c0[0] + grid.nf[0] * ((c0[1] + s1) + grid.nf[1] * (c0[2] + s2));
        for (int bb = 0; bb < nb; ++bb) {
          std::complex<T>* CF_RESTRICT fwb = fw + (b0 + bb) * fwstride + dst;
          const T* CF_RESTRICT sre = sre0 + plane * bb + src;
          const T* CF_RESTRICT sim = sim0 + plane * bb + src;
          for (std::int64_t i = 0; i < ce[0]; ++i)
            fwb[i] += std::complex<T>(sre[i], sim[i]);
        }
      }
    });
    blk.sync_threads();

    // Shell persist: copy everything outside the in-range core box into the
    // tile's shell-compact arena slot for phase 2; the padded scratch is
    // about to be reused by this worker's next tile. Core rows keep only the
    // two x-shell runs, every other row is stored whole (tile_shell_off).
    const std::size_t ssz = tile_shell_cells(DIM, p, ce);
    T* const are0 = hre + static_cast<std::size_t>(shbase[slot]) * nba;
    T* const aim0 = him + static_cast<std::size_t>(shbase[slot]) * nba;
    const std::size_t shrows =
        static_cast<std::size_t>((DIM > 1 ? p[1] : 1) * (DIM > 2 ? p[2] : 1));
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(shrows, t, blk.nthreads);
      for (std::size_t r = lo; r < hi; ++r) {
        const std::int64_t s1 = DIM > 1 ? static_cast<std::int64_t>(r) % p[1] : 0;
        const std::int64_t s2 = DIM > 2 ? static_cast<std::int64_t>(r) / p[1] : 0;
        const bool core_row = (DIM <= 1 || (s1 >= pad && s1 < pad + ce[1])) &&
                              (DIM <= 2 || (s2 >= pad && s2 < pad + ce[2]));
        const std::size_t src0 = r * static_cast<std::size_t>(p[0]);
        const std::size_t dst0 =
            static_cast<std::size_t>(tile_shell_off<DIM>(p, pad, ce, 0, s1, s2));
        for (int bb = 0; bb < nb; ++bb) {
          const T* CF_RESTRICT sre = sre0 + plane * bb + src0;
          const T* CF_RESTRICT sim = sim0 + plane * bb + src0;
          T* CF_RESTRICT are = are0 + ssz * bb + dst0;
          T* CF_RESTRICT aim = aim0 + ssz * bb + dst0;
          if (core_row) {
            for (std::int64_t i = 0; i < pad; ++i) are[i] = sre[i];
            for (std::int64_t i = 0; i < pad; ++i) aim[i] = sim[i];
            const std::int64_t h0 = pad + ce[0];  // high x-shell start
            for (std::int64_t i = h0; i < p[0]; ++i) are[i - ce[0]] = sre[i];
            for (std::int64_t i = h0; i < p[0]; ++i) aim[i - ce[0]] = sim[i];
          } else {
            for (std::int64_t i = 0; i < p[0]; ++i) are[i] = sre[i];
            for (std::int64_t i = 0; i < p[0]; ++i) aim[i] = sim[i];
          }
        }
      }
    });
  };

  // Launch A: every (tile, chunk) work item, scheduled largest-first with
  // stealing so overfull bins spread across workers. Singleton chunks write
  // disjoint fw cores / arena slots; split chunks write disjoint chunk
  // planes — no two blocks of this launch ever touch the same cells.
  const std::uint64_t steals =
      dev.launch_stealing(ts.n_chunks, 128, [&, plane, nba](vgpu::BlockCtx& blk) {
        const std::uint32_t ck = ts.sched[blk.block_id];
        const std::uint32_t slot = ts.chunk_tile[ck];
        const std::uint32_t b = ts.tile_bin[slot];
        const std::uint32_t cpl = ts.chunk_plane[ck];
        if (cpl == TileSet<T>::kNoTile) {
          // Unsplit tile: the whole pipeline in the owning WORKER's scratch
          // (blocks on one worker run sequentially, so reuse is race-free);
          // the arena slot persists only the shell.
          T* const sre0 = scre + blk.worker * (static_cast<std::size_t>(nba) * plane);
          T* const sim0 = scim + blk.worker * (static_cast<std::size_t>(nba) * plane);
          zero_planes(blk, sre0, sim0);
          accum_points(blk, b, 0, sort.bin_counts[b], sre0, sim0);
          writeback(blk, slot, b, sre0, sim0);
        } else {
          // Chunk of a split tile: accumulate this slice of the bin's sorted
          // run into the chunk's dedicated plane; launch B reduces the
          // planes in canonical chunk order.
          T* const dre0 = cre + cpl * (static_cast<std::size_t>(nba) * plane);
          T* const dim0 = cim + cpl * (static_cast<std::size_t>(nba) * plane);
          zero_planes(blk, dre0, dim0);
          accum_points(blk, b, ts.chunk_off[ck], ts.chunk_cnt[ck], dre0, dim0);
        }
      });

  // Launch B: one block per SPLIT tile — fold its chunk planes into the
  // worker scratch in canonical (ascending) chunk order, then the same
  // core/shell writeback. The reduction order is a pure function of the
  // split, so the result is bitwise-identical at every worker count.
  if (ts.n_split > 0) {
    dev.launch(ts.n_split, 128, [&, plane, nba, nb](vgpu::BlockCtx& blk) {
      const std::uint32_t slot = ts.split_tile[blk.block_id];
      const std::uint32_t b = ts.tile_bin[slot];
      T* const sre0 = scre + blk.worker * (static_cast<std::size_t>(nba) * plane);
      T* const sim0 = scim + blk.worker * (static_cast<std::size_t>(nba) * plane);
      zero_planes(blk, sre0, sim0);
      const std::uint32_t ck0 = ts.tile_chunk0[slot];
      const std::uint32_t ck1 = ts.tile_chunk0[slot + 1];
      for (std::uint32_t ck = ck0; ck < ck1; ++ck) {
        const T* const pre = cre + ts.chunk_plane[ck] * (static_cast<std::size_t>(nba) * plane);
        const T* const pim = cim + ts.chunk_plane[ck] * (static_cast<std::size_t>(nba) * plane);
        blk.for_each_thread([&](unsigned t) {
          const auto [lo, hi] = thread_chunk(plane * nb, t, blk.nthreads);
          T* CF_RESTRICT dre = sre0;
          T* CF_RESTRICT dim0 = sim0;
          const T* CF_RESTRICT qre = pre;
          const T* CF_RESTRICT qim = pim;
          for (std::size_t i = lo; i < hi; ++i) dre[i] += qre[i];
          for (std::size_t i = lo; i < hi; ++i) dim0[i] += qim[i];
        });
        blk.sync_threads();
      }
      blk.note_shared_op(static_cast<std::uint64_t>(ck1 - ck0) * plane * nb);
      writeback(blk, slot, b, sre0, sim0);
    });
  }
  return steals;
}

/// Phase 2 for batch planes [b0, b0+nb): one block per merge owner; sums the
/// neighboring tiles' halo contributions into the owner's core in the fixed
/// canonical order. Runs block-sequentially (a real GPU would distribute the
/// core rows across the block's threads; ownership per cell is unchanged).
template <int DIM, typename T>
void tiled_merge(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                 std::complex<T>* fw, TileSet<T>& ts, int b0, int nb,
                 std::size_t fwstride) {
  const int pad = ts.pad;
  const std::int64_t* p = ts.p;
  const int nba = ts.nb;
  const T* const hre = ts.halo_re.data();
  const T* const him = ts.halo_im.data();

  dev.launch(ts.n_merge, 1, [&, pad, nba, b0, nb](vgpu::BlockCtx& blk) {
    const std::uint32_t bown = ts.merge_bin[blk.block_id];
    std::int64_t bc[3];
    bin_coords(bins, bown, bc);
    TileNbr nbr[3][kMaxTileNbrs];
    int nn[3] = {1, 1, 1};
    for (int d = 0; d < DIM; ++d)
      nn[d] = tile_axis_nbrs(bc[d], bins.m[d], bins.nbins[d], grid.nf[d], pad, nbr[d]);
    std::uint64_t merged = 0;
    for (int iz = 0; iz < nn[2]; ++iz) {
      for (int iy = 0; iy < nn[1]; ++iy) {
        for (int ix = 0; ix < nn[0]; ++ix) {
          const std::int64_t q0 = nbr[0][ix].q;
          const std::int64_t q1 = DIM > 1 ? nbr[1][iy].q : 0;
          const std::int64_t q2 = DIM > 2 ? nbr[2][iz].q : 0;
          if (q0 == bc[0] && q1 == bc[1] && q2 == bc[2])
            continue;  // the self core was written in phase 1
          const std::uint32_t slot = ts.slot_of_bin[static_cast<std::size_t>(
              q0 + bins.nbins[0] * (q1 + bins.nbins[1] * q2))];
          if (slot == TileSet<T>::kNoTile) continue;  // empty tile: zero halo
          // q's in-range core extents fix its shell-compact layout; every
          // overlap segment lies in q's shell (cores are disjoint) and never
          // straddles the excluded core run, so runs stay contiguous.
          std::int64_t qc0[3] = {0, 0, 0}, qce[3] = {1, 1, 1};
          const std::int64_t q[3] = {q0, q1, q2};
          for (int d = 0; d < DIM; ++d)
            tile_core(q[d], bins.m[d], grid.nf[d], qc0[d], qce[d]);
          const std::size_t qsz = tile_shell_cells(DIM, p, qce);
          const T* const sre0 =
              hre + static_cast<std::size_t>(ts.shell_base[slot]) * nba;
          const T* const sim0 =
              him + static_cast<std::size_t>(ts.shell_base[slot]) * nba;
          const int nsz = DIM > 2 ? nbr[2][iz].nsegs : 1;
          const int nsy = DIM > 1 ? nbr[1][iy].nsegs : 1;
          for (int sz = 0; sz < nsz; ++sz) {
            const TileSeg zseg = DIM > 2 ? nbr[2][iz].segs[sz] : TileSeg{0, 0, 1};
            for (int sy = 0; sy < nsy; ++sy) {
              const TileSeg yseg = DIM > 1 ? nbr[1][iy].segs[sy] : TileSeg{0, 0, 1};
              for (int sx = 0; sx < nbr[0][ix].nsegs; ++sx) {
                const TileSeg xseg = nbr[0][ix].segs[sx];
                for (std::int64_t gz = 0; gz < zseg.len; ++gz) {
                  for (std::int64_t gy = 0; gy < yseg.len; ++gy) {
                    const std::size_t src =
                        static_cast<std::size_t>(tile_shell_off<DIM>(
                            p, pad, qce, xseg.s0, yseg.s0 + gy, zseg.s0 + gz));
                    const std::int64_t dst =
                        xseg.g0 +
                        grid.nf[0] * ((yseg.g0 + gy) + grid.nf[1] * (zseg.g0 + gz));
                    for (int bb = 0; bb < nb; ++bb) {
                      std::complex<T>* CF_RESTRICT fwb = fw + (b0 + bb) * fwstride + dst;
                      const T* CF_RESTRICT sre = sre0 + qsz * bb + src;
                      const T* CF_RESTRICT sim = sim0 + qsz * bb + src;
                      for (std::int64_t i = 0; i < xseg.len; ++i)
                        fwb[i] += std::complex<T>(sre[i], sim[i]);
                    }
                    merged += static_cast<std::uint64_t>(xseg.len) * nb;
                  }
                }
              }
            }
          }
        }
      }
    }
    blk.note_tile_merge(merged);
  });
}

template <int DIM, typename T>
std::uint64_t spread_tiled_dim(vgpu::Device& dev, const GridSpec& grid,
                               const BinSpec& bins, const KernelParams<T>& kp,
                               const NuPoints<T>& pts, const std::complex<T>* c,
                               std::complex<T>* fw, const DeviceSort& sort,
                               TileSet<T>& ts, const TapTable<T>* taps, int B,
                               std::size_t cstride, std::size_t fwstride) {
  const bool has_taps = taps && !taps->empty();
  std::uint64_t steals = 0;
  for (int b0 = 0; b0 < B; b0 += ts.nb) {
    const int nb = std::min(ts.nb, B - b0);
    auto accum = [&](auto W, auto HasTaps) {
      steals += tiled_accumulate<DIM, decltype(W)::value, decltype(HasTaps)::value>(
          dev, grid, bins, kp, pts, c, fw, sort, ts, taps, b0, nb, cstride, fwstride);
    };
    const bool fast =
        kp.fast && (!has_taps || taps->wpad == pad_width(kp.w)) &&
        dispatch_width(kp.w, [&](auto W) {
          if (has_taps)
            accum(W, std::true_type{});
          else
            accum(W, std::false_type{});
        });
    if (!fast) {
      if (has_taps)
        accum(std::integral_constant<int, 0>{}, std::true_type{});
      else
        accum(std::integral_constant<int, 0>{}, std::false_type{});
    }
    tiled_merge<DIM>(dev, grid, bins, fw, ts, b0, nb, fwstride);
  }
  return steals;
}

}  // namespace

template <typename T>
std::uint64_t spread_tiled_batch(vgpu::Device& dev, const GridSpec& grid,
                                 const BinSpec& bins, const KernelParams<T>& kp,
                                 const NuPoints<T>& pts, const std::complex<T>* c,
                                 std::complex<T>* fw, const DeviceSort& sort,
                                 TileSet<T>& tiles, const TapTable<T>* taps, int B,
                                 std::size_t cstride, std::size_t fwstride) {
  if (!tiles.usable)
    throw std::invalid_argument("spread_tiled: TileSet not usable (atomic fallback)");
  if (pts.M == 0 || tiles.n_active == 0) return 0;
  B = std::max(1, B);
  std::uint64_t steals = 0;
  detail::dispatch_dim(
      grid.dim,
      [&] {
        steals = spread_tiled_dim<1>(dev, grid, bins, kp, pts, c, fw, sort, tiles,
                                     taps, B, cstride, fwstride);
      },
      [&] {
        steals = spread_tiled_dim<2>(dev, grid, bins, kp, pts, c, fw, sort, tiles,
                                     taps, B, cstride, fwstride);
      },
      [&] {
        steals = spread_tiled_dim<3>(dev, grid, bins, kp, pts, c, fw, sort, tiles,
                                     taps, B, cstride, fwstride);
      });
  return steals;
}

#define CF_INSTANTIATE(T)                                                               \
  template std::uint64_t spread_tiled_batch<T>(                                         \
      vgpu::Device&, const GridSpec&, const BinSpec&, const KernelParams<T>&,           \
      const NuPoints<T>&, const std::complex<T>*, std::complex<T>*,                     \
      const DeviceSort&, TileSet<T>&, const TapTable<T>*, int, std::size_t,             \
      std::size_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
