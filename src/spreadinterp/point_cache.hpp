// Plan-resident point-dependent precomputation (the paper's Sec. I-A setpts
// amortization argument): everything that depends only on the nonuniform
// points — not on the strengths — is computed once when the points are set
// and reused by every subsequent execute.
//
// Two caches:
//  * TapTable   — per-point kernel tap values and leftmost grid indices, laid
//                 out in ITERATION order (bin-sorted position when a sort
//                 permutation is in use) so the SM subproblem loops stream it
//                 contiguously. Closes the per-execute tap rebuild of the
//                 batched SM path and removes per-execute exp/sqrt work from
//                 the single-vector SM path.
//  * interior   — per-point classification: 1 when every tap of every axis
//                 already lies in [0, nf), so GM/GM-sort spread and interp
//                 index the fine grid without the periodic wrap (the
//                 overwhelming majority of points when N >> w).
//
// Lifetime: built by Plan::set_points (or a caller's equivalent), invalidated
// by the next set_points; plan options are fixed at construction so no other
// invalidation source exists.
#pragma once

#include <cstdint>

#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

template <typename T>
struct NuPoints;

/// Per-point tap values (rows of dim * wpad, exact-zero tail past w) and
/// leftmost grid indices, in iteration order: row jj describes point
/// order[jj] (or point jj when no permutation was supplied at build time).
template <typename T>
struct TapTable {
  vgpu::device_buffer<T> vals;
  vgpu::device_buffer<std::int32_t> l0;
  int wpad = 0;

  bool empty() const { return vals.empty(); }
};

/// Builds the tap table for M points. `order` selects iteration order (the
/// bin-sort permutation for SM; nullptr = user order). Values are evaluated
/// through the width-specialized path when kp.fast allows (identical numbers
/// to the inline evaluation of the fast kernels), else the runtime-w path.
template <typename T>
void build_tap_table(vgpu::Device& dev, int dim, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::uint32_t* order,
                     TapTable<T>& out);

/// The plan-resident cache: taps (SM spreading) plus the interior/boundary
/// classification (GM/GM-sort spread and interp). Either part may be empty
/// when the owning plan's method does not use it.
template <typename T>
struct PointCache {
  TapTable<T> taps;
  vgpu::device_buffer<std::uint8_t> interior;  ///< iteration order; 1 = no wrap
  std::size_t n_interior = 0;
  std::size_t n_boundary = 0;
  bool valid = false;

  void invalidate() {
    taps = TapTable<T>{};
    interior = vgpu::device_buffer<std::uint8_t>{};
    n_interior = n_boundary = 0;
    valid = false;
  }
};

/// Fills cache.interior (iteration order, like the tap table) and the
/// interior/boundary counts. A point is interior when ceil(x - w/2) >= 0 and
/// ceil(x - w/2) + w <= nf on every axis — exactly the l0 the kernels derive,
/// so the no-wrap indices equal the wrapped ones bit for bit.
template <typename T>
void classify_interior(vgpu::Device& dev, const GridSpec& grid,
                       const KernelParams<T>& kp, const NuPoints<T>& pts,
                       const std::uint32_t* order, PointCache<T>& cache);

}  // namespace cf::spread
