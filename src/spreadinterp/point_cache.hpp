// Plan-resident point-dependent precomputation (the paper's Sec. I-A setpts
// amortization argument): everything that depends only on the nonuniform
// points — not on the strengths — is computed once when the points are set
// and reused by every subsequent execute.
//
// Three caches:
//  * TapTable   — per-point kernel tap values and leftmost grid indices, laid
//                 out in ITERATION order (bin-sorted position when a sort
//                 permutation is in use) so the SM/tiled subproblem loops
//                 stream it contiguously. Closes the per-execute tap rebuild
//                 of the batched SM path and removes per-execute exp/sqrt
//                 work from the single-vector SM path.
//  * InteriorPartition — the iteration order stably partitioned into an
//                 interior-first prefix (every tap of every axis in [0, nf))
//                 and a boundary suffix. GM/GM-sort spread and interp run the
//                 two segments as separate launches, so the no-wrap hot loop
//                 is branch-free instead of testing a per-point flag.
//  * TileSet    — the tile-ownership geometry for the atomic-free spread
//                 writeback: the active (non-empty) bins, the bin -> arena
//                 slot map, the owners that receive halo contributions, and
//                 the per-tile deinterleaved halo arena. See the tile
//                 geometry notes in spread_impl.hpp.
//
// Lifetime: built by Plan::set_points (or a caller's equivalent), invalidated
// by the next set_points; plan options are fixed at construction so no other
// invalidation source exists.
#pragma once

#include <cstdint>

#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

template <typename T>
struct NuPoints;

/// Per-point tap values (rows of dim * wpad, exact-zero tail past w) and
/// leftmost grid indices, in iteration order: row jj describes point
/// order[jj] (or point jj when no permutation was supplied at build time).
template <typename T>
struct TapTable {
  vgpu::device_buffer<T> vals;
  vgpu::device_buffer<std::int32_t> l0;
  int wpad = 0;

  bool empty() const { return vals.empty(); }
};

/// Builds the tap table for M points. `order` selects iteration order (the
/// bin-sort permutation for SM; nullptr = user order). Values are evaluated
/// through the width-specialized path when kp.fast allows (identical numbers
/// to the inline evaluation of the fast kernels), else the runtime-w path.
template <typename T>
void build_tap_table(vgpu::Device& dev, int dim, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::uint32_t* order,
                     TapTable<T>& out);

/// Iteration order stably partitioned interior-first: order[0 .. n_interior)
/// are the points whose taps never wrap (in their original relative order),
/// order[n_interior ..] the boundary points. Consumed as the `order` argument
/// of the GM/GM-sort kernels together with NuPoints::n_nowrap = n_interior.
struct InteriorPartition {
  vgpu::device_buffer<std::uint32_t> order;
  std::size_t n_interior = 0;
  std::size_t n_boundary = 0;

  bool empty() const { return order.empty(); }
};

/// Tile-ownership precomputation for the atomic-free spread writeback
/// (Options::tiled_spread). `usable` is false when the geometry gate fails
/// (some padded tile extent exceeds nf — e.g. a single bin spanning an axis)
/// or the halo arena would exceed the byte cap; callers then keep the atomic
/// writeback.
///
/// Phase 1 accumulates each tile into a PER-WORKER full padded scratch
/// (`scratch_re/im`, `plane` cells per batch plane), writes the core box to
/// fw, and copies the shell into the tile's persistent arena slot. The arena
/// is SHELL-ONLY (spread_impl.hpp's shell-compact layout): core cells are
/// dead after phase 1, so per active tile only `shell cells = padded - core`
/// are stored per batch plane — the ~10% (3D) to ~35% (2D) of padded-tile
/// memory the whole-tile layout wasted on slots the merge never read.
///
/// Chunked scheduling: a tile whose bin holds more than `chunk_cap` points is
/// split into several canonical point-CHUNKS (balanced sizes, fixed order
/// within the bin's sorted run) so workers can cooperate on one overfull bin
/// instead of serializing behind it. Every (tile, chunk) pair is a work item;
/// `sched` lists the items largest-first for the work-stealing launch. A
/// singleton chunk (unsplit tile) runs the whole per-tile pipeline; chunks of
/// a split tile accumulate into dedicated planes of `chunk_re/im` that a
/// second pass reduces in canonical chunk order — the per-cell summation
/// order is a pure function of the split, never of the schedule, keeping the
/// spread bitwise-deterministic across worker counts.
template <typename T>
struct TileSet {
  static constexpr std::uint32_t kNoTile = 0xffffffffu;

  vgpu::device_buffer<std::uint32_t> tile_bin;     ///< arena slot -> bin id
  vgpu::device_buffer<std::uint32_t> slot_of_bin;  ///< bin id -> slot | kNoTile
  vgpu::device_buffer<std::uint32_t> merge_bin;    ///< owners receiving halo
  std::uint32_t n_active = 0;
  std::uint32_t n_merge = 0;
  int pad = 0;
  std::int64_t p[3] = {1, 1, 1};  ///< padded tile dims (unused axes 1)
  std::size_t padded = 0;         ///< cells per padded tile
  std::size_t plane = 0;          ///< scratch stride: padded + fast-path slack
  int nb = 1;                     ///< batch planes held per tile slot
  /// Exclusive prefix of per-tile shell sizes over the arena slots (cells);
  /// slot s's shell plane is shell_base[s] .. shell_base[s] + shell size(s).
  vgpu::device_buffer<std::uint32_t> shell_base;
  std::size_t shell_total = 0;  ///< total shell cells over all active tiles
  vgpu::device_buffer<T> halo_re, halo_im;  ///< shell arena: shell_total * nb
  vgpu::device_buffer<T> scratch_re, scratch_im;  ///< n_workers * nb * plane
  std::size_t arena_bytes = 0;  ///< shell arena + accumulation scratch bytes

  // -- chunked (tile, chunk) work items, canonical order ---------------------
  std::uint32_t n_chunks = 0;       ///< total work items (== n_active unsplit)
  std::uint32_t n_split = 0;        ///< tiles split into more than one chunk
  std::uint32_t n_split_chunks = 0; ///< chunks owning a dedicated scratch plane
  std::uint32_t chunk_cap = 0;      ///< applied cap (UINT32_MAX = no splitting)
  std::uint32_t max_tile_points = 0;       ///< largest bin population
  vgpu::device_buffer<std::uint32_t> tile_chunk0;  ///< slot -> first chunk id
                                                   ///< (size n_active + 1)
  vgpu::device_buffer<std::uint32_t> chunk_tile;   ///< chunk -> arena slot
  vgpu::device_buffer<std::uint32_t> chunk_off;    ///< chunk -> offset in the
                                                   ///< bin's sorted point run
  vgpu::device_buffer<std::uint32_t> chunk_cnt;    ///< chunk -> point count
  vgpu::device_buffer<std::uint32_t> chunk_plane;  ///< chunk -> chunk-scratch
                                                   ///< plane | kNoTile (unsplit)
  vgpu::device_buffer<std::uint32_t> sched;   ///< chunk ids largest-first
                                              ///< (stable by chunk id)
  vgpu::device_buffer<std::uint32_t> split_tile;  ///< slots with > 1 chunk
  vgpu::device_buffer<T> chunk_re, chunk_im;  ///< n_split_chunks * nb * plane

  bool usable = false;
};

/// Default cap on the tiled-writeback halo arena; a spread whose active tiles
/// would need more falls back to the atomic writeback ("bins too large for
/// the arena").
inline constexpr std::size_t kTileArenaMaxBytes = std::size_t(512) << 20;

/// Smallest auto chunk cap: splitting finer than this buys no balance (a
/// chunk this size is cheap next to a launch) but costs chunk-plane zero +
/// reduce traffic.
inline constexpr std::uint32_t kTileChunkMin = 1024;

/// Budget for the per-chunk scratch planes of split tiles; the chunk cap is
/// doubled until the split fits. Deliberately worker-count independent (the
/// worker scratch is budgeted separately) so the applied cap — and with it
/// the summation split — is identical at every worker count.
inline constexpr std::size_t kTileChunkArenaMaxBytes = std::size_t(64) << 20;

/// Builds the TileSet for the current bin sort: geometry gate, active-tile
/// compaction, merge-owner list, the halo arena sized for ntransf = B
/// (chunked to `nb` planes under `max_bytes`), and the canonical chunk split.
/// `chunk_cap` is the per-chunk point cap: 0 = auto (max(kTileChunkMin,
/// ceil(M / (4 * hardware threads))) — a points-per-worker heuristic that is
/// deliberately independent of the device's worker count), > 0 = explicit,
/// < 0 = never split (one chunk per tile). Returns out.usable.
template <typename T>
bool build_tile_set(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w,
                    const DeviceSort& sort, int B, std::size_t max_bytes,
                    TileSet<T>& out, int chunk_cap = 0);

/// The plan-resident cache; any part may be empty when the owning plan's
/// method does not use it.
template <typename T>
struct PointCache {
  TapTable<T> taps;
  InteriorPartition interior;
  TileSet<T> tiles;
  bool valid = false;

  void invalidate() {
    taps = TapTable<T>{};
    interior = InteriorPartition{};
    tiles = TileSet<T>{};
    valid = false;
  }
};

/// Classifies every point (interior = ceil(x - w/2) >= 0 and
/// ceil(x - w/2) + w <= nf on every axis — exactly the l0 the kernels derive,
/// so no-wrap indices equal the wrapped ones bit for bit) and fills `out`
/// with the stably partitioned iteration order. `order` is the incoming
/// iteration order (bin-sort permutation or nullptr = user order); the
/// partition preserves the relative order inside each class, so bin locality
/// survives for the (vast) interior majority.
template <typename T>
void classify_interior(vgpu::Device& dev, const GridSpec& grid,
                       const KernelParams<T>& kp, const NuPoints<T>& pts,
                       const std::uint32_t* order, InteriorPartition& out);

}  // namespace cf::spread
