// Plan-resident point-dependent precomputation (the paper's Sec. I-A setpts
// amortization argument): everything that depends only on the nonuniform
// points — not on the strengths — is computed once when the points are set
// and reused by every subsequent execute.
//
// Three caches:
//  * TapTable   — per-point kernel tap values and leftmost grid indices, laid
//                 out in ITERATION order (bin-sorted position when a sort
//                 permutation is in use) so the SM/tiled subproblem loops
//                 stream it contiguously. Closes the per-execute tap rebuild
//                 of the batched SM path and removes per-execute exp/sqrt
//                 work from the single-vector SM path.
//  * InteriorPartition — the iteration order stably partitioned into an
//                 interior-first prefix (every tap of every axis in [0, nf))
//                 and a boundary suffix. GM/GM-sort spread and interp run the
//                 two segments as separate launches, so the no-wrap hot loop
//                 is branch-free instead of testing a per-point flag.
//  * TileSet    — the tile-ownership geometry for the atomic-free spread
//                 writeback: the active (non-empty) bins, the bin -> arena
//                 slot map, the owners that receive halo contributions, and
//                 the per-tile deinterleaved halo arena. See the tile
//                 geometry notes in spread_impl.hpp.
//
// Lifetime: built by Plan::set_points (or a caller's equivalent), invalidated
// by the next set_points; plan options are fixed at construction so no other
// invalidation source exists.
#pragma once

#include <cstdint>

#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

template <typename T>
struct NuPoints;

/// Per-point tap values (rows of dim * wpad, exact-zero tail past w) and
/// leftmost grid indices, in iteration order: row jj describes point
/// order[jj] (or point jj when no permutation was supplied at build time).
template <typename T>
struct TapTable {
  vgpu::device_buffer<T> vals;
  vgpu::device_buffer<std::int32_t> l0;
  int wpad = 0;

  bool empty() const { return vals.empty(); }
};

/// Builds the tap table for M points. `order` selects iteration order (the
/// bin-sort permutation for SM; nullptr = user order). Values are evaluated
/// through the width-specialized path when kp.fast allows (identical numbers
/// to the inline evaluation of the fast kernels), else the runtime-w path.
template <typename T>
void build_tap_table(vgpu::Device& dev, int dim, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::uint32_t* order,
                     TapTable<T>& out);

/// Iteration order stably partitioned interior-first: order[0 .. n_interior)
/// are the points whose taps never wrap (in their original relative order),
/// order[n_interior ..] the boundary points. Consumed as the `order` argument
/// of the GM/GM-sort kernels together with NuPoints::n_nowrap = n_interior.
struct InteriorPartition {
  vgpu::device_buffer<std::uint32_t> order;
  std::size_t n_interior = 0;
  std::size_t n_boundary = 0;

  bool empty() const { return order.empty(); }
};

/// Tile-ownership precomputation for the atomic-free spread writeback
/// (Options::tiled_spread). `usable` is false when the geometry gate fails
/// (some padded tile extent exceeds nf — e.g. a single bin spanning an axis)
/// or the halo arena would exceed the byte cap; callers then keep the atomic
/// writeback.
///
/// Phase 1 accumulates each tile into a PER-WORKER full padded scratch
/// (`scratch_re/im`, `plane` cells per batch plane), writes the core box to
/// fw, and copies the shell into the tile's persistent arena slot. The arena
/// is SHELL-ONLY (spread_impl.hpp's shell-compact layout): core cells are
/// dead after phase 1, so per active tile only `shell cells = padded - core`
/// are stored per batch plane — the ~10% (3D) to ~35% (2D) of padded-tile
/// memory the whole-tile layout wasted on slots the merge never read.
template <typename T>
struct TileSet {
  static constexpr std::uint32_t kNoTile = 0xffffffffu;

  vgpu::device_buffer<std::uint32_t> tile_bin;     ///< arena slot -> bin id
  vgpu::device_buffer<std::uint32_t> slot_of_bin;  ///< bin id -> slot | kNoTile
  vgpu::device_buffer<std::uint32_t> merge_bin;    ///< owners receiving halo
  std::uint32_t n_active = 0;
  std::uint32_t n_merge = 0;
  int pad = 0;
  std::int64_t p[3] = {1, 1, 1};  ///< padded tile dims (unused axes 1)
  std::size_t padded = 0;         ///< cells per padded tile
  std::size_t plane = 0;          ///< scratch stride: padded + fast-path slack
  int nb = 1;                     ///< batch planes held per tile slot
  /// Exclusive prefix of per-tile shell sizes over the arena slots (cells);
  /// slot s's shell plane is shell_base[s] .. shell_base[s] + shell size(s).
  vgpu::device_buffer<std::uint32_t> shell_base;
  std::size_t shell_total = 0;  ///< total shell cells over all active tiles
  vgpu::device_buffer<T> halo_re, halo_im;  ///< shell arena: shell_total * nb
  vgpu::device_buffer<T> scratch_re, scratch_im;  ///< n_workers * nb * plane
  std::size_t arena_bytes = 0;  ///< shell arena + accumulation scratch bytes
  bool usable = false;
};

/// Default cap on the tiled-writeback halo arena; a spread whose active tiles
/// would need more falls back to the atomic writeback ("bins too large for
/// the arena").
inline constexpr std::size_t kTileArenaMaxBytes = std::size_t(512) << 20;

/// Builds the TileSet for the current bin sort: geometry gate, active-tile
/// compaction, merge-owner list, and the halo arena sized for ntransf = B
/// (chunked to `nb` planes under `max_bytes`). Returns out.usable.
template <typename T>
bool build_tile_set(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w,
                    const DeviceSort& sort, int B, std::size_t max_bytes,
                    TileSet<T>& out);

/// The plan-resident cache; any part may be empty when the owning plan's
/// method does not use it.
template <typename T>
struct PointCache {
  TapTable<T> taps;
  InteriorPartition interior;
  TileSet<T> tiles;
  bool valid = false;

  void invalidate() {
    taps = TapTable<T>{};
    interior = InteriorPartition{};
    tiles = TileSet<T>{};
    valid = false;
  }
};

/// Classifies every point (interior = ceil(x - w/2) >= 0 and
/// ceil(x - w/2) + w <= nf on every axis — exactly the l0 the kernels derive,
/// so no-wrap indices equal the wrapped ones bit for bit) and fills `out`
/// with the stably partitioned iteration order. `order` is the incoming
/// iteration order (bin-sort permutation or nullptr = user order); the
/// partition preserves the relative order inside each class, so bin locality
/// survives for the (vast) interior majority.
template <typename T>
void classify_interior(vgpu::Device& dev, const GridSpec& grid,
                       const KernelParams<T>& kp, const NuPoints<T>& pts,
                       const std::uint32_t* order, InteriorPartition& out);

}  // namespace cf::spread
