#include "spreadinterp/binsort.hpp"

#include <algorithm>

#include "vgpu/primitives.hpp"

namespace cf::spread {

template <typename T>
void compute_bin_index(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                       const T* xg, const T* yg, const T* zg, std::size_t M,
                       std::uint32_t* binidx) {
  const T* coords[3] = {xg, yg, zg};
  const int dim = grid.dim;
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    std::int64_t b[3] = {0, 0, 0};
    for (int d = 0; d < dim; ++d) {
      // No clamp needed: fold_rescale guarantees coords in [0, nf), and
      // nbins = ceil(nf/m) gives (nf-1)/m <= nbins-1, so the division can
      // never reach past the last bin (the ROADMAP's "skip the fold-rescale
      // guard in binsort" follow-up).
      b[d] = static_cast<std::int64_t>(coords[d][j]) / bins.m[d];
    }
    binidx[j] = static_cast<std::uint32_t>(
        b[0] + bins.nbins[0] * (b[1] + bins.nbins[1] * b[2]));
  });
}

// Deterministic, atomic-free counting sort. The CUDA-style scatter (per-bin
// atomic cursors, see vgpu::counting_scatter) orders points within a bin by
// worker scheduling, which would leak nondeterminism into every bin-ordered
// accumulation — fatal for the tiled spread writeback's bitwise guarantee.
// Instead the points are split into a worker-independent number of chunks;
// per-chunk histograms are combined serially per bin into counts and running
// chunk bases, and each chunk then scatters its points with exclusively owned
// cursors. Points within a bin end up ordered by original index (a stable
// sort), independent of worker count — and no stage uses a single atomic.
template <typename T>
void bin_sort(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, const T* xg,
              const T* yg, const T* zg, std::size_t M, DeviceSort& out) {
  const std::size_t nbins = static_cast<std::size_t>(bins.total_bins());
  vgpu::device_buffer<std::uint32_t> binidx(dev, M);
  out.bin_counts = vgpu::device_buffer<std::uint32_t>(dev, nbins);
  out.bin_start = vgpu::device_buffer<std::uint32_t>(dev, nbins);
  out.order = vgpu::device_buffer<std::uint32_t>(dev, M);

  compute_bin_index(dev, grid, bins, xg, yg, zg, M, binidx.data());

  // Chunk count is a pure function of M (NOT the worker count), so the
  // resulting permutation is identical on every device configuration.
  const std::size_t C = std::clamp<std::size_t>(M / 8192, 1, 64);
  const std::size_t csz = (M + C - 1) / C;
  vgpu::device_buffer<std::uint32_t> chist(dev, C * nbins);
  vgpu::fill(dev, chist.span(), 0u);
  dev.launch(C, 1, [&](vgpu::BlockCtx& blk) {
    const std::size_t ch = blk.block_id;
    std::uint32_t* h = &chist[ch * nbins];
    const std::size_t lo = ch * csz, hi = std::min(lo + csz, M);
    for (std::size_t j = lo; j < hi; ++j) ++h[binidx[j]];
  });
  // counts[b] = sum over chunks; then turn each chunk's histogram entry into
  // its running scatter base (bin_start[b] + points of earlier chunks).
  dev.launch_items(nbins, 256, [&](std::size_t b, vgpu::BlockCtx&) {
    std::uint32_t s = 0;
    for (std::size_t ch = 0; ch < C; ++ch) s += chist[ch * nbins + b];
    out.bin_counts[b] = s;
  });
  vgpu::exclusive_scan(dev, out.bin_counts.span(), out.bin_start.span());
  dev.launch_items(nbins, 256, [&](std::size_t b, vgpu::BlockCtx&) {
    std::uint32_t run = out.bin_start[b];
    for (std::size_t ch = 0; ch < C; ++ch) {
      const std::uint32_t t = chist[ch * nbins + b];
      chist[ch * nbins + b] = run;
      run += t;
    }
  });
  dev.launch(C, 1, [&](vgpu::BlockCtx& blk) {
    const std::size_t ch = blk.block_id;
    std::uint32_t* cur = &chist[ch * nbins];  // exclusively owned cursors
    const std::size_t lo = ch * csz, hi = std::min(lo + csz, M);
    for (std::size_t j = lo; j < hi; ++j)
      out.order[cur[binidx[j]]++] = static_cast<std::uint32_t>(j);
  });
}

SubprobSetup build_subproblems(vgpu::Device& dev, const DeviceSort& sort,
                               std::uint32_t msub) {
  const std::size_t nbins = sort.bin_counts.size();
  vgpu::device_buffer<std::uint32_t> nsub_per_bin(dev, nbins);
  dev.launch_items(nbins, 256, [&](std::size_t i, vgpu::BlockCtx&) {
    nsub_per_bin[i] = (sort.bin_counts[i] + msub - 1) / msub;
  });
  vgpu::device_buffer<std::uint32_t> sub_start(dev, nbins);
  const std::uint64_t total = vgpu::exclusive_scan(dev, nsub_per_bin.span(), sub_start.span());

  SubprobSetup out;
  out.nsubprob = static_cast<std::uint32_t>(total);
  out.subprob_bin = vgpu::device_buffer<std::uint32_t>(dev, total);
  out.subprob_offset = vgpu::device_buffer<std::uint32_t>(dev, total);
  dev.launch_items(nbins, 256, [&](std::size_t i, vgpu::BlockCtx&) {
    const std::uint32_t base = sub_start[i];
    const std::uint32_t n = nsub_per_bin[i];
    for (std::uint32_t s = 0; s < n; ++s) {
      out.subprob_bin[base + s] = static_cast<std::uint32_t>(i);
      out.subprob_offset[base + s] = s * msub;
    }
  });
  return out;
}

template void compute_bin_index<float>(vgpu::Device&, const GridSpec&, const BinSpec&,
                                       const float*, const float*, const float*,
                                       std::size_t, std::uint32_t*);
template void compute_bin_index<double>(vgpu::Device&, const GridSpec&, const BinSpec&,
                                        const double*, const double*, const double*,
                                        std::size_t, std::uint32_t*);
template void bin_sort<float>(vgpu::Device&, const GridSpec&, const BinSpec&, const float*,
                              const float*, const float*, std::size_t, DeviceSort&);
template void bin_sort<double>(vgpu::Device&, const GridSpec&, const BinSpec&,
                               const double*, const double*, const double*, std::size_t,
                               DeviceSort&);

}  // namespace cf::spread
