#include "spreadinterp/binsort.hpp"

#include <algorithm>

#include "vgpu/primitives.hpp"

namespace cf::spread {

template <typename T>
void compute_bin_index(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                       const T* xg, const T* yg, const T* zg, std::size_t M,
                       std::uint32_t* binidx) {
  const T* coords[3] = {xg, yg, zg};
  const int dim = grid.dim;
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    std::int64_t b[3] = {0, 0, 0};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l = static_cast<std::int64_t>(coords[d][j]);
      b[d] = std::min<std::int64_t>(l / bins.m[d], bins.nbins[d] - 1);
    }
    binidx[j] = static_cast<std::uint32_t>(
        b[0] + bins.nbins[0] * (b[1] + bins.nbins[1] * b[2]));
  });
}

template <typename T>
void bin_sort(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, const T* xg,
              const T* yg, const T* zg, std::size_t M, DeviceSort& out) {
  const std::size_t nbins = static_cast<std::size_t>(bins.total_bins());
  vgpu::device_buffer<std::uint32_t> binidx(dev, M);
  out.bin_counts = vgpu::device_buffer<std::uint32_t>(dev, nbins);
  out.bin_start = vgpu::device_buffer<std::uint32_t>(dev, nbins);
  out.order = vgpu::device_buffer<std::uint32_t>(dev, M);

  compute_bin_index(dev, grid, bins, xg, yg, zg, M, binidx.data());
  vgpu::fill(dev, out.bin_counts.span(), 0u);
  vgpu::histogram(dev, binidx.span(), out.bin_counts.span());
  vgpu::exclusive_scan(dev, out.bin_counts.span(), out.bin_start.span());
  // Scatter consumes running cursors; keep bin_start intact by copying.
  // The copy runs device-side (a host std::copy of device memory would be
  // uncounted and single-threaded).
  vgpu::device_buffer<std::uint32_t> cursors(dev, nbins);
  vgpu::copy(dev, std::span<const std::uint32_t>(out.bin_start.span()), cursors.span());
  vgpu::counting_scatter(dev, binidx.span(), cursors.span(), out.order.span());
}

SubprobSetup build_subproblems(vgpu::Device& dev, const DeviceSort& sort,
                               std::uint32_t msub) {
  const std::size_t nbins = sort.bin_counts.size();
  vgpu::device_buffer<std::uint32_t> nsub_per_bin(dev, nbins);
  dev.launch_items(nbins, 256, [&](std::size_t i, vgpu::BlockCtx&) {
    nsub_per_bin[i] = (sort.bin_counts[i] + msub - 1) / msub;
  });
  vgpu::device_buffer<std::uint32_t> sub_start(dev, nbins);
  const std::uint64_t total = vgpu::exclusive_scan(dev, nsub_per_bin.span(), sub_start.span());

  SubprobSetup out;
  out.nsubprob = static_cast<std::uint32_t>(total);
  out.subprob_bin = vgpu::device_buffer<std::uint32_t>(dev, total);
  out.subprob_offset = vgpu::device_buffer<std::uint32_t>(dev, total);
  dev.launch_items(nbins, 256, [&](std::size_t i, vgpu::BlockCtx&) {
    const std::uint32_t base = sub_start[i];
    const std::uint32_t n = nsub_per_bin[i];
    for (std::uint32_t s = 0; s < n; ++s) {
      out.subprob_bin[base + s] = static_cast<std::uint32_t>(i);
      out.subprob_offset[base + s] = s * msub;
    }
  });
  return out;
}

template void compute_bin_index<float>(vgpu::Device&, const GridSpec&, const BinSpec&,
                                       const float*, const float*, const float*,
                                       std::size_t, std::uint32_t*);
template void compute_bin_index<double>(vgpu::Device&, const GridSpec&, const BinSpec&,
                                        const double*, const double*, const double*,
                                        std::size_t, std::uint32_t*);
template void bin_sort<float>(vgpu::Device&, const GridSpec&, const BinSpec&, const float*,
                              const float*, const float*, std::size_t, DeviceSort&);
template void bin_sort<double>(vgpu::Device&, const GridSpec&, const BinSpec&,
                               const double*, const double*, const double*, std::size_t,
                               DeviceSort&);

}  // namespace cf::spread
