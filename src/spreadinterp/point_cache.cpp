// Builders for the plan-resident point caches (point_cache.hpp): the
// bin-sorted tap table consumed by SM/tiled spreading, the interior-first
// iteration partition consumed by the branch-free GM/GM-sort no-wrap path,
// and the tile-ownership set consumed by the atomic-free spread writeback.
#include "spreadinterp/point_cache.hpp"

#include <thread>

#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"
#include "vgpu/primitives.hpp"

namespace cf::spread {

namespace {

using namespace detail;

/// W > 0 evaluates through the width-specialized path (identical values to
/// the inline evaluation of the fast kernels); W == 0 through the runtime-w
/// scalar path. Both pad rows to wpad lanes with exact zeros.
template <int DIM, int W, typename T>
void build_tap_table_impl(vgpu::Device& dev, const KernelParams<T>& kp,
                          const NuPoints<T>& pts, const std::uint32_t* order,
                          TapTable<T>& tt) {
  tt.wpad = pad_width(kp.w);
  tt.vals = vgpu::device_buffer<T>(dev, pts.M * static_cast<std::size_t>(DIM * tt.wpad));
  tt.l0 = vgpu::device_buffer<std::int32_t>(dev, pts.M * static_cast<std::size_t>(DIM));
  const int w = kp.w, wpad = tt.wpad;
  dev.launch_items(pts.M, 256, [&, w, wpad](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M)
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr),
                          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch);
    T px[3];
    load_point<DIM>(pts, j, px);
    T* row = &tt.vals[jj * static_cast<std::size_t>(DIM * wpad)];
    std::int32_t* lrow = &tt.l0[jj * DIM];
    for (int d = 0; d < DIM; ++d) {
      T* v = row + d * wpad;
      std::int64_t l0;
      if constexpr (W > 0) {
        l0 = es_values_padded<W>(kp, px[d], v);
      } else {
        l0 = es_values(kp, px[d], v);
        for (int i = w; i < wpad; ++i) v[i] = T(0);
      }
      lrow[d] = static_cast<std::int32_t>(l0);
    }
  });
}

template <int DIM, typename T>
void build_tap_table_dim(vgpu::Device& dev, const KernelParams<T>& kp,
                         const NuPoints<T>& pts, const std::uint32_t* order,
                         TapTable<T>& tt) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        build_tap_table_impl<DIM, decltype(W)::value>(dev, kp, pts, order, tt);
      }))
    return;
  build_tap_table_impl<DIM, 0>(dev, kp, pts, order, tt);
}

}  // namespace

template <typename T>
void build_tap_table(vgpu::Device& dev, int dim, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::uint32_t* order,
                     TapTable<T>& out) {
  detail::dispatch_dim(
      dim, [&] { build_tap_table_dim<1>(dev, kp, pts, order, out); },
      [&] { build_tap_table_dim<2>(dev, kp, pts, order, out); },
      [&] { build_tap_table_dim<3>(dev, kp, pts, order, out); });
}

template <typename T>
void classify_interior(vgpu::Device& dev, const GridSpec& grid,
                       const KernelParams<T>& kp, const NuPoints<T>& pts,
                       const std::uint32_t* order, InteriorPartition& out) {
  const std::size_t M = pts.M;
  out = InteriorPartition{};
  if (M == 0) return;
  const int dim = grid.dim;
  const T half_w = kp.half_w;
  const int w = kp.w;
  const auto nf = grid.nf;
  vgpu::device_buffer<std::uint32_t> flags(dev, M);
  dev.launch_items(M, 256, [&, dim, half_w, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    const T* coords[3] = {pts.xg, pts.yg, pts.zg};
    bool ok = true;
    for (int d = 0; d < dim; ++d) {
      // The exact l0 the kernels derive (es_values): the no-wrap indices of
      // an interior point equal the wrapped ones bit for bit.
      const std::int64_t l0 =
          static_cast<std::int64_t>(std::ceil(coords[d][j] - half_w));
      ok = ok && l0 >= 0 && l0 + w <= nf[d];
    }
    flags[jj] = ok ? 1u : 0u;
  });
  // Stable partition: interior points keep their relative order at the front,
  // boundary points theirs at the back. rank = exclusive scan of the flags.
  vgpu::device_buffer<std::uint32_t> rank(dev, M);
  const std::uint64_t n_in = vgpu::exclusive_scan(dev, flags.span(), rank.span());
  out.order = vgpu::device_buffer<std::uint32_t>(dev, M);
  dev.launch_items(M, 256, [&, n_in](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t pos =
        flags[jj] ? rank[jj] : n_in + (jj - rank[jj]);
    out.order[pos] = order ? order[jj] : static_cast<std::uint32_t>(jj);
  });
  out.n_interior = static_cast<std::size_t>(n_in);
  out.n_boundary = M - out.n_interior;
}

template <typename T>
bool build_tile_set(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w,
                    const DeviceSort& sort, int B, std::size_t max_bytes,
                    TileSet<T>& out, int chunk_cap) {
  out = TileSet<T>{};
  const int dim = grid.dim;
  const int pad = (w + 1) / 2;
  out.pad = pad;
  out.padded = 1;
  for (int d = 0; d < dim; ++d) {
    out.p[d] = bins.m[d] + 2 * pad;
    // Geometry gate: the padded extent must cover each cell at most once so
    // every (tile, cell) contribution has a unique scratch coordinate (see
    // spread_impl.hpp). Violated e.g. by a single bin spanning the axis.
    if (out.p[d] > grid.nf[d]) return false;
    out.padded *= static_cast<std::size_t>(out.p[d]);
  }
  // Fast-path x-loops run pad_width(w) lanes, overhanging the final row by up
  // to the tap-pad slack; give every plane that slack so the overhang stays
  // inside its own slot.
  out.plane = out.padded + static_cast<std::size_t>(pad_width(w) - w);

  const std::size_t nbins = sort.bin_counts.size();
  vgpu::device_buffer<std::uint32_t> flag(dev, nbins), pos(dev, nbins);
  dev.launch_items(nbins, 256, [&](std::size_t b, vgpu::BlockCtx&) {
    flag[b] = sort.bin_counts[b] > 0 ? 1u : 0u;
  });
  out.n_active =
      static_cast<std::uint32_t>(vgpu::exclusive_scan(dev, flag.span(), pos.span()));
  out.tile_bin = vgpu::device_buffer<std::uint32_t>(dev, out.n_active);
  out.slot_of_bin = vgpu::device_buffer<std::uint32_t>(dev, nbins);
  dev.launch_items(nbins, 256, [&](std::size_t b, vgpu::BlockCtx&) {
    if (flag[b]) {
      out.tile_bin[pos[b]] = static_cast<std::uint32_t>(b);
      out.slot_of_bin[b] = pos[b];
    } else {
      out.slot_of_bin[b] = TileSet<T>::kNoTile;
    }
  });

  // Merge owners: bins whose core receives halo from at least one active
  // tile. The enumeration mirrors the merge kernel's exactly.
  vgpu::device_buffer<std::uint32_t> mflag(dev, nbins);
  dev.launch_items(nbins, 256, [&, dim, pad](std::size_t b, vgpu::BlockCtx&) {
    std::int64_t bc[3];
    bin_coords(bins, static_cast<std::uint32_t>(b), bc);
    TileNbr nbr[3][kMaxTileNbrs];
    int nn[3] = {1, 1, 1};
    for (int d = 0; d < dim; ++d)
      nn[d] = tile_axis_nbrs(bc[d], bins.m[d], bins.nbins[d], grid.nf[d], pad, nbr[d]);
    bool any = false;
    for (int iz = 0; iz < nn[2] && !any; ++iz)
      for (int iy = 0; iy < nn[1] && !any; ++iy)
        for (int ix = 0; ix < nn[0] && !any; ++ix) {
          const std::int64_t q0 = nbr[0][ix].q;
          const std::int64_t q1 = dim > 1 ? nbr[1][iy].q : 0;
          const std::int64_t q2 = dim > 2 ? nbr[2][iz].q : 0;
          if (q0 == bc[0] && q1 == bc[1] && q2 == bc[2]) continue;  // self core
          const std::size_t q = static_cast<std::size_t>(
              q0 + bins.nbins[0] * (q1 + bins.nbins[1] * q2));
          if (sort.bin_counts[q] > 0) any = true;
        }
    mflag[b] = any ? 1u : 0u;
  });
  vgpu::device_buffer<std::uint32_t> mpos(dev, nbins);
  out.n_merge =
      static_cast<std::uint32_t>(vgpu::exclusive_scan(dev, mflag.span(), mpos.span()));
  out.merge_bin = vgpu::device_buffer<std::uint32_t>(dev, out.n_merge);
  dev.launch_items(nbins, 256, [&](std::size_t b, vgpu::BlockCtx&) {
    if (mflag[b]) out.merge_bin[mpos[b]] = static_cast<std::uint32_t>(b);
  });

  // Shell-only halo arena: per active tile only the shell cells (padded
  // volume minus the in-range core box, which phase 1 writes straight to fw)
  // are persisted, at shell_base[slot] in the shell-compact layout. The
  // full-padded accumulation scratch is per WORKER, not per tile, so its
  // cost does not scale with the active-tile count.
  B = std::max(1, B);
  if (out.n_active > 0) {
    vgpu::device_buffer<std::uint32_t> ssz(dev, out.n_active);
    dev.launch_items(out.n_active, 256, [&, dim](std::size_t s, vgpu::BlockCtx&) {
      std::int64_t bc[3], c0[3] = {0, 0, 0}, ce[3] = {1, 1, 1};
      bin_coords(bins, out.tile_bin[s], bc);
      for (int d = 0; d < dim; ++d)
        tile_core(bc[d], bins.m[d], grid.nf[d], c0[d], ce[d]);
      ssz[s] = static_cast<std::uint32_t>(tile_shell_cells(dim, out.p, ce));
    });
    out.shell_base = vgpu::device_buffer<std::uint32_t>(dev, out.n_active);
    out.shell_total = static_cast<std::size_t>(
        vgpu::exclusive_scan(dev, ssz.span(), out.shell_base.span()));
    const std::size_t scratch = dev.n_workers() * out.plane;
    const std::size_t per_plane = (out.shell_total + scratch) * 2 * sizeof(T);
    if (per_plane > max_bytes) return false;  // bins too large for the arena

    // -- canonical chunk split (host-side; setpts-time, like the sort) ------
    // Resolve the cap, count chunks at that cap, and double the cap until the
    // split tiles' chunk planes fit kTileChunkArenaMaxBytes. The budget test
    // excludes the per-worker scratch on purpose: the applied cap must be a
    // pure function of the points, so the summation split (and with it the
    // spread output) is bitwise-identical at every worker count.
    std::uint64_t cap;
    if (chunk_cap > 0) {
      cap = static_cast<std::uint64_t>(chunk_cap);
    } else if (chunk_cap < 0) {
      cap = UINT32_MAX;
    } else {
      const std::uint64_t hw = std::max(1u, std::thread::hardware_concurrency());
      const std::uint64_t M = sort.order.size();
      cap = std::max<std::uint64_t>(kTileChunkMin, (M + 4 * hw - 1) / (4 * hw));
    }
    std::uint32_t maxpts = 0;
    for (std::uint32_t s = 0; s < out.n_active; ++s)
      maxpts = std::max(maxpts, sort.bin_counts[out.tile_bin[s]]);
    out.max_tile_points = maxpts;
    std::uint64_t nch = 0, nsplitch = 0, nsplit = 0;
    for (;;) {
      nch = nsplitch = nsplit = 0;
      for (std::uint32_t s = 0; s < out.n_active; ++s) {
        const std::uint64_t cnt = sort.bin_counts[out.tile_bin[s]];
        const std::uint64_t k = (cnt + cap - 1) / cap;
        nch += k;
        if (k > 1) {
          nsplitch += k;
          ++nsplit;
        }
      }
      if (nsplitch == 0 ||
          nsplitch * out.plane * 2 * sizeof(T) <= kTileChunkArenaMaxBytes)
        break;
      cap = cap > UINT32_MAX / 2 ? UINT32_MAX : cap * 2;
    }
    out.chunk_cap = static_cast<std::uint32_t>(std::min<std::uint64_t>(cap, UINT32_MAX));
    out.n_chunks = static_cast<std::uint32_t>(nch);
    out.n_split = static_cast<std::uint32_t>(nsplit);
    out.n_split_chunks = static_cast<std::uint32_t>(nsplitch);
    out.tile_chunk0 = vgpu::device_buffer<std::uint32_t>(dev, out.n_active + 1);
    out.chunk_tile = vgpu::device_buffer<std::uint32_t>(dev, out.n_chunks);
    out.chunk_off = vgpu::device_buffer<std::uint32_t>(dev, out.n_chunks);
    out.chunk_cnt = vgpu::device_buffer<std::uint32_t>(dev, out.n_chunks);
    out.chunk_plane = vgpu::device_buffer<std::uint32_t>(dev, out.n_chunks);
    out.split_tile = vgpu::device_buffer<std::uint32_t>(dev, out.n_split);
    std::uint32_t ck = 0, cpl = 0, sp = 0;
    for (std::uint32_t s = 0; s < out.n_active; ++s) {
      out.tile_chunk0[s] = ck;
      const std::uint64_t cnt = sort.bin_counts[out.tile_bin[s]];
      const std::uint64_t k = (cnt + cap - 1) / cap;
      if (k > 1) out.split_tile[sp++] = s;
      // Balanced sizes (differing by at most one point) beat cap-sized runs
      // with a small remainder chunk for load balance; the split is a pure
      // function of (cnt, cap), hence canonical.
      const std::uint64_t base = cnt / k, rem = cnt % k;
      std::uint64_t off = 0;
      for (std::uint64_t i = 0; i < k; ++i, ++ck) {
        const std::uint64_t sz = base + (i < rem ? 1 : 0);
        out.chunk_tile[ck] = s;
        out.chunk_off[ck] = static_cast<std::uint32_t>(off);
        out.chunk_cnt[ck] = static_cast<std::uint32_t>(sz);
        out.chunk_plane[ck] = k > 1 ? cpl++ : TileSet<T>::kNoTile;
        off += sz;
      }
    }
    out.tile_chunk0[out.n_active] = ck;
    out.sched = vgpu::device_buffer<std::uint32_t>(dev, out.n_chunks);
    for (std::uint32_t i = 0; i < out.n_chunks; ++i) out.sched[i] = i;
    std::stable_sort(out.sched.data(), out.sched.data() + out.n_chunks,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return out.chunk_cnt[a] > out.chunk_cnt[b];
                     });

    out.nb = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(B), std::max<std::size_t>(1, max_bytes / per_plane)));
    out.halo_re = vgpu::device_buffer<T>(dev, out.shell_total * out.nb);
    out.halo_im = vgpu::device_buffer<T>(dev, out.shell_total * out.nb);
    out.scratch_re = vgpu::device_buffer<T>(dev, scratch * out.nb);
    out.scratch_im = vgpu::device_buffer<T>(dev, scratch * out.nb);
    out.chunk_re = vgpu::device_buffer<T>(dev, out.n_split_chunks * out.plane * out.nb);
    out.chunk_im = vgpu::device_buffer<T>(dev, out.n_split_chunks * out.plane * out.nb);
    out.arena_bytes =
        (out.halo_re.bytes() + out.scratch_re.bytes() + out.chunk_re.bytes()) * 2;
  }
  out.usable = true;
  return true;
}

#define CF_INSTANTIATE(T)                                                               \
  template void build_tap_table<T>(vgpu::Device&, int, const KernelParams<T>&,          \
                                   const NuPoints<T>&, const std::uint32_t*,            \
                                   TapTable<T>&);                                       \
  template void classify_interior<T>(vgpu::Device&, const GridSpec&,                    \
                                     const KernelParams<T>&, const NuPoints<T>&,        \
                                     const std::uint32_t*, InteriorPartition&);         \
  template bool build_tile_set<T>(vgpu::Device&, const GridSpec&, const BinSpec&, int,  \
                                  const DeviceSort&, int, std::size_t, TileSet<T>&,     \
                                  int);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
