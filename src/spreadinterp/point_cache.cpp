// Builders for the plan-resident point caches (point_cache.hpp): the
// bin-sorted tap table consumed by SM spreading and the interior/boundary
// classification consumed by the GM/GM-sort no-wrap fast path.
#include "spreadinterp/point_cache.hpp"

#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::spread {

namespace {

using namespace detail;

/// W > 0 evaluates through the width-specialized path (identical values to
/// the inline evaluation of the fast kernels); W == 0 through the runtime-w
/// scalar path. Both pad rows to wpad lanes with exact zeros.
template <int DIM, int W, typename T>
void build_tap_table_impl(vgpu::Device& dev, const KernelParams<T>& kp,
                          const NuPoints<T>& pts, const std::uint32_t* order,
                          TapTable<T>& tt) {
  tt.wpad = pad_width(kp.w);
  tt.vals = vgpu::device_buffer<T>(dev, pts.M * static_cast<std::size_t>(DIM * tt.wpad));
  tt.l0 = vgpu::device_buffer<std::int32_t>(dev, pts.M * static_cast<std::size_t>(DIM));
  const int w = kp.w, wpad = tt.wpad;
  dev.launch_items(pts.M, 256, [&, w, wpad](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M)
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr),
                          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch);
    T px[3];
    load_point<DIM>(pts, j, px);
    T* row = &tt.vals[jj * static_cast<std::size_t>(DIM * wpad)];
    std::int32_t* lrow = &tt.l0[jj * DIM];
    for (int d = 0; d < DIM; ++d) {
      T* v = row + d * wpad;
      std::int64_t l0;
      if constexpr (W > 0) {
        l0 = es_values_padded<W>(kp, px[d], v);
      } else {
        l0 = es_values(kp, px[d], v);
        for (int i = w; i < wpad; ++i) v[i] = T(0);
      }
      lrow[d] = static_cast<std::int32_t>(l0);
    }
  });
}

template <int DIM, typename T>
void build_tap_table_dim(vgpu::Device& dev, const KernelParams<T>& kp,
                         const NuPoints<T>& pts, const std::uint32_t* order,
                         TapTable<T>& tt) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        build_tap_table_impl<DIM, decltype(W)::value>(dev, kp, pts, order, tt);
      }))
    return;
  build_tap_table_impl<DIM, 0>(dev, kp, pts, order, tt);
}

}  // namespace

template <typename T>
void build_tap_table(vgpu::Device& dev, int dim, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::uint32_t* order,
                     TapTable<T>& out) {
  detail::dispatch_dim(
      dim, [&] { build_tap_table_dim<1>(dev, kp, pts, order, out); },
      [&] { build_tap_table_dim<2>(dev, kp, pts, order, out); },
      [&] { build_tap_table_dim<3>(dev, kp, pts, order, out); });
}

template <typename T>
void classify_interior(vgpu::Device& dev, const GridSpec& grid,
                       const KernelParams<T>& kp, const NuPoints<T>& pts,
                       const std::uint32_t* order, PointCache<T>& cache) {
  cache.interior = vgpu::device_buffer<std::uint8_t>(dev, pts.M);
  const int dim = grid.dim;
  const T half_w = kp.half_w;
  const int w = kp.w;
  const auto nf = grid.nf;
  std::uint8_t* flags = cache.interior.data();
  dev.launch_items(pts.M, 256, [&, dim, half_w, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    const T* coords[3] = {pts.xg, pts.yg, pts.zg};
    bool ok = true;
    for (int d = 0; d < dim; ++d) {
      // The exact l0 the kernels derive (es_values): the no-wrap indices of
      // an interior point equal the wrapped ones bit for bit.
      const std::int64_t l0 =
          static_cast<std::int64_t>(std::ceil(coords[d][j] - half_w));
      ok = ok && l0 >= 0 && l0 + w <= nf[d];
    }
    flags[jj] = ok ? 1 : 0;
  });
  std::size_t n_in = 0;
  for (std::size_t jj = 0; jj < pts.M; ++jj) n_in += flags[jj];
  cache.n_interior = n_in;
  cache.n_boundary = pts.M - n_in;
}

#define CF_INSTANTIATE(T)                                                               \
  template void build_tap_table<T>(vgpu::Device&, int, const KernelParams<T>&,          \
                                   const NuPoints<T>&, const std::uint32_t*,            \
                                   TapTable<T>&);                                       \
  template void classify_interior<T>(vgpu::Device&, const GridSpec&,                    \
                                     const KernelParams<T>&, const NuPoints<T>&,        \
                                     const std::uint32_t*, PointCache<T>&);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
