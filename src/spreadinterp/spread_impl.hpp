// Shared machinery for the spread/interp translation units (spread_gm.cpp,
// spread_sm.cpp, interp.cpp, point_cache.cpp) and the CPU comparator: the
// width-dispatch switch, per-point tabulation, subproblem geometry, and the
// small loop helpers the kernels are built from. This header is the single
// home of the dispatch machinery — kernels in any TU get identical
// specialization behavior by construction.
//
// Internal to the library (everything lives in cf::spread::detail); the
// public entry points are declared in spread.hpp.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/device.hpp"

#if defined(_MSC_VER)
#define CF_RESTRICT __restrict
#define CF_PREFETCH(addr, rw) ((void)0)
#else
#define CF_RESTRICT __restrict__
#define CF_PREFETCH(addr, rw) __builtin_prefetch((addr), (rw))
#endif

namespace cf::spread::detail {

/// Global complex accumulate honoring KernelParams::packed: complex<float>
/// writes collapse into one 8-byte CAS when requested; double (and the
/// default) keeps the CUDA-style two-float atomic adds.
template <typename T>
inline void accum_global(vgpu::BlockCtx& blk, bool packed, std::complex<T>* p,
                         std::complex<T> v) {
  if constexpr (std::is_same_v<T, float>) {
    if (packed) {
      blk.atomic_add_packed(p, v);
      return;
    }
  }
  blk.atomic_add(p, v);
}

template <int DIM, typename T>
inline void load_point(const NuPoints<T>& pts, std::size_t j, T* px) {
  px[0] = pts.xg[j];
  if constexpr (DIM > 1) px[1] = pts.yg[j];
  if constexpr (DIM > 2) px[2] = pts.zg[j];
}

/// Distance (in points) the per-point loops prefetch ahead. Bin-sorted
/// traversal reads the coordinate/strength arrays through a permutation —
/// random access that otherwise stalls on a cache miss per point.
inline constexpr std::size_t kPointPrefetch = 8;

template <int DIM, typename T>
inline void prefetch_point(const NuPoints<T>& pts, const std::complex<T>* c,
                           std::size_t j) {
  CF_PREFETCH(&pts.xg[j], 0);
  if constexpr (DIM > 1) CF_PREFETCH(&pts.yg[j], 0);
  if constexpr (DIM > 2) CF_PREFETCH(&pts.zg[j], 0);
  if (c) CF_PREFETCH(&c[j], 0);
}

/// Per-point kernel tabulation with runtime width: w values and global
/// indices per axis. `nowrap` (from the plan's interior classification)
/// skips the periodic wrap — bitwise-identical indices for interior points.
template <int DIM, typename T>
struct PointTab {
  T vals[DIM][kMaxWidth];
  std::int64_t idx[DIM][kMaxWidth];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px,
               bool nowrap) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values(kp, px[d], vals[d]);
      if (nowrap) {
        for (int i = 0; i < kp.w; ++i) idx[d][i] = l0 + i;
      } else {
        for (int i = 0; i < kp.w; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
      }
    }
  }
};

/// Per-point tabulation with compile-time width (the fast path).
template <int DIM, int W, typename T>
struct PointTabF {
  T vals[DIM][W];
  std::int64_t idx[DIM][W];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px,
               bool nowrap) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values_fixed<W>(kp, px[d], vals[d]);
      if (nowrap) {
        for (int i = 0; i < W; ++i) idx[d][i] = l0 + i;
      } else {
        for (int i = 0; i < W; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
      }
    }
  }
};

/// Contiguous [lo, hi) slice of n items for virtual thread t of nthreads.
/// The vgpu executes a block's threads sequentially, so chunked ranges (one
/// contiguous sweep per thread) beat the CUDA-style stride-by-nthreads loop
/// on real caches while keeping the same per-thread work split.
inline std::pair<std::size_t, std::size_t> thread_chunk(std::size_t n, unsigned t,
                                                        unsigned nthreads) {
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  const std::size_t lo = std::min(n, t * chunk);
  return {lo, std::min(n, lo + chunk)};
}

/// Decodes subproblem bin `b` into the padded-bin offset Delta (paper Fig. 1).
inline void subprob_delta(const BinSpec& bins, std::uint32_t b, int dim, int pad,
                          std::int64_t delta[3]) {
  std::int64_t bc[3];
  std::int64_t rem = b;
  for (int d = 0; d < 3; ++d) {
    bc[d] = rem % bins.nbins[d];
    rem /= bins.nbins[d];
  }
  delta[0] = delta[1] = delta[2] = 0;
  for (int d = 0; d < dim; ++d) delta[d] = bc[d] * bins.m[d] - pad;
}

/// Iterates the padded bin row by row, handing `f` maximal runs that are
/// contiguous in both the scratch (src index) and the periodic fine grid
/// (global index): f(scratch_offset, global_linear_index, run_length).
/// One division per row replaces the per-element div/mod + wrap of the
/// scalar path, and the runs give the caller vectorizable/streamed bodies.
template <int DIM, typename T, typename F>
inline void for_padded_rows(const GridSpec& grid, const std::int64_t* p,
                            const std::int64_t* delta, std::size_t row_lo,
                            std::size_t row_hi, F&& f) {
  for (std::size_t rr = row_lo; rr < row_hi; ++rr) {
    std::int64_t g1 = 0, g2 = 0;
    if constexpr (DIM >= 2) {
      const std::int64_t s1 = static_cast<std::int64_t>(rr) % p[1];
      const std::int64_t s2 = static_cast<std::int64_t>(rr) / p[1];
      g1 = wrap_index(delta[1] + s1, grid.nf[1]);
      if constexpr (DIM >= 3) g2 = wrap_index(delta[2] + s2, grid.nf[2]);
    }
    const std::int64_t rowbase = grid.nf[0] * (g1 + grid.nf[1] * g2);
    const std::size_t src0 = rr * static_cast<std::size_t>(p[0]);
    std::int64_t g0 = wrap_index(delta[0], grid.nf[0]);
    for (std::int64_t i = 0; i < p[0];) {
      const std::int64_t run = std::min<std::int64_t>(p[0] - i, grid.nf[0] - g0);
      f(src0 + static_cast<std::size_t>(i), rowbase + g0, run);
      i += run;
      g0 = 0;
    }
  }
}

/// Invokes f(integral_constant<int, w>) for w in [2, kMaxWidth]; returns
/// false (leaving the runtime-w fallback to the caller) otherwise.
template <typename F>
bool dispatch_width(int w, F&& f) {
  switch (w) {
#define CF_WIDTH_CASE(W_)                        \
  case W_:                                       \
    f(std::integral_constant<int, W_>{});        \
    return true;
    CF_WIDTH_CASE(2)
    CF_WIDTH_CASE(3)
    CF_WIDTH_CASE(4)
    CF_WIDTH_CASE(5)
    CF_WIDTH_CASE(6)
    CF_WIDTH_CASE(7)
    CF_WIDTH_CASE(8)
    CF_WIDTH_CASE(9)
    CF_WIDTH_CASE(10)
    CF_WIDTH_CASE(11)
    CF_WIDTH_CASE(12)
    CF_WIDTH_CASE(13)
    CF_WIDTH_CASE(14)
    CF_WIDTH_CASE(15)
    CF_WIDTH_CASE(16)
#undef CF_WIDTH_CASE
  }
  return false;
}

template <typename F1, typename F2, typename F3>
void dispatch_dim(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 3: f3(); break;
    default: throw std::invalid_argument("spread: dim must be 1..3");
  }
}

/// True if the deinterleaved fast-path scratch — padded bin plus the tap-pad
/// slack its overhanging x-loops write — fits the per-block arena. Same byte
/// budget as sm_fits except for the few slack lanes, so this can only veto
/// the fast path in exact-fit corner cases (the scalar fallback still runs).
template <typename T>
inline bool sm_scratch_fits(const vgpu::Device& dev, const GridSpec& grid,
                            const BinSpec& bins, int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  const std::size_t slack = static_cast<std::size_t>(pad_width(w) - w);
  return 2 * (padded + slack) * sizeof(T) <= dev.props.shared_mem_per_block;
}

}  // namespace cf::spread::detail
