// Shared machinery for the spread/interp translation units (spread_gm.cpp,
// spread_sm.cpp, interp.cpp, point_cache.cpp) and the CPU comparator: the
// width-dispatch switch, per-point tabulation, subproblem geometry, and the
// small loop helpers the kernels are built from. This header is the single
// home of the dispatch machinery — kernels in any TU get identical
// specialization behavior by construction.
//
// Internal to the library (everything lives in cf::spread::detail); the
// public entry points are declared in spread.hpp.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/device.hpp"

#if defined(_MSC_VER)
#define CF_RESTRICT __restrict
#define CF_PREFETCH(addr, rw) ((void)0)
#define CF_SCALAR_LOOP() ((void)0)
#else
#define CF_RESTRICT __restrict__
#define CF_PREFETCH(addr, rw) __builtin_prefetch((addr), (rw))
/// Keeps the ENCLOSING loop scalar (an empty asm defeats the loop
/// vectorizer) without touching inner loops. Used on short per-plane loops
/// whose strided group accesses GCC 12 turns into unmasked gap loads that
/// read past the array (wrong-code class of GCC PR107451); the tap loops
/// inside keep their SIMD codegen. Gated to the affected compilers: GCC 13
/// fixed the gap-load masking, and clang never mis-vectorized these loops,
/// so newer toolchains keep full SIMD on the per-plane loops.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12
#define CF_SCALAR_LOOP() asm volatile("")
#else
#define CF_SCALAR_LOOP() ((void)0)
#endif
#endif

namespace cf::spread::detail {

/// Global complex accumulate honoring KernelParams::packed: complex<float>
/// writes collapse into one 8-byte CAS when requested; double (and the
/// default) keeps the CUDA-style two-float atomic adds.
template <typename T>
inline void accum_global(vgpu::BlockCtx& blk, bool packed, std::complex<T>* p,
                         std::complex<T> v) {
  if constexpr (std::is_same_v<T, float>) {
    if (packed) {
      blk.atomic_add_packed(p, v);
      return;
    }
  }
  blk.atomic_add(p, v);
}

template <int DIM, typename T>
inline void load_point(const NuPoints<T>& pts, std::size_t j, T* px) {
  px[0] = pts.xg[j];
  if constexpr (DIM > 1) px[1] = pts.yg[j];
  if constexpr (DIM > 2) px[2] = pts.zg[j];
}

/// Distance (in points) the per-point loops prefetch ahead. Bin-sorted
/// traversal reads the coordinate/strength arrays through a permutation —
/// random access that otherwise stalls on a cache miss per point.
inline constexpr std::size_t kPointPrefetch = 8;

template <int DIM, typename T>
inline void prefetch_point(const NuPoints<T>& pts, const std::complex<T>* c,
                           std::size_t j) {
  CF_PREFETCH(&pts.xg[j], 0);
  if constexpr (DIM > 1) CF_PREFETCH(&pts.yg[j], 0);
  if constexpr (DIM > 2) CF_PREFETCH(&pts.zg[j], 0);
  if (c) CF_PREFETCH(&c[j], 0);
}

/// Per-point kernel tabulation with runtime width: w values and global
/// indices per axis. `nowrap` (from the plan's interior classification)
/// skips the periodic wrap — bitwise-identical indices for interior points.
template <int DIM, typename T>
struct PointTab {
  T vals[DIM][kMaxWidth];
  std::int64_t idx[DIM][kMaxWidth];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px,
               bool nowrap) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values(kp, px[d], vals[d]);
      if (nowrap) {
        for (int i = 0; i < kp.w; ++i) idx[d][i] = l0 + i;
      } else {
        for (int i = 0; i < kp.w; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
      }
    }
  }
};

/// Per-point tabulation with compile-time width (the fast path).
template <int DIM, int W, typename T>
struct PointTabF {
  T vals[DIM][W];
  std::int64_t idx[DIM][W];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px,
               bool nowrap) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values_fixed<W>(kp, px[d], vals[d]);
      if (nowrap) {
        for (int i = 0; i < W; ++i) idx[d][i] = l0 + i;
      } else {
        for (int i = 0; i < W; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
      }
    }
  }
};

/// Contiguous [lo, hi) slice of n items for virtual thread t of nthreads.
/// The vgpu executes a block's threads sequentially, so chunked ranges (one
/// contiguous sweep per thread) beat the CUDA-style stride-by-nthreads loop
/// on real caches while keeping the same per-thread work split.
inline std::pair<std::size_t, std::size_t> thread_chunk(std::size_t n, unsigned t,
                                                        unsigned nthreads) {
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  const std::size_t lo = std::min(n, t * chunk);
  return {lo, std::min(n, lo + chunk)};
}

/// Decodes linear bin id `b` into per-axis bin coordinates.
inline void bin_coords(const BinSpec& bins, std::uint32_t b, std::int64_t bc[3]) {
  std::int64_t rem = b;
  for (int d = 0; d < 3; ++d) {
    bc[d] = rem % bins.nbins[d];
    rem /= bins.nbins[d];
  }
}

/// Decodes subproblem bin `b` into the padded-bin offset Delta (paper Fig. 1).
inline void subprob_delta(const BinSpec& bins, std::uint32_t b, int dim, int pad,
                          std::int64_t delta[3]) {
  std::int64_t bc[3];
  bin_coords(bins, b, bc);
  delta[0] = delta[1] = delta[2] = 0;
  for (int d = 0; d < dim; ++d) delta[d] = bc[d] * bins.m[d] - pad;
}

// ---- tile-ownership geometry (tiled spread writeback) -----------------------
//
// The bins partition the fine grid into disjoint CORE boxes (compute_bin_index
// assigns every cell to exactly one bin). A tile's padded scratch extends the
// core by `pad` cells per side; everything outside the in-range core — the
// halo shell plus, for edge bins, the nominal-core cells past nf — belongs to
// OTHER tiles' cores under the periodic wrap. The tiled writeback exploits
// this: the owning block writes its core with plain stores and a second pass
// merges each tile's halo into the neighboring cores in a fixed order, so no
// two blocks ever write the same fine-grid cell (zero global atomics) and the
// per-cell summation order is worker-count independent (bitwise-deterministic
// spreading).
//
// All helpers require p = m + 2*pad <= nf on the axis: the padded extent then
// covers each fine-grid cell at most once, so for a given (tile, cell) pair
// there is a unique scratch coordinate s = wrap(g - (q*m - pad)) — the merge
// enumeration below visits every contribution exactly once. Axes violating
// this (e.g. a single bin spanning the axis) take the atomic fallback.

/// In-range core of bin `bc` on one axis: cells [c0, c0 + ce).
inline void tile_core(std::int64_t bc, std::int64_t m, std::int64_t nf,
                      std::int64_t& c0, std::int64_t& ce) {
  c0 = bc * m;
  ce = std::min<std::int64_t>((bc + 1) * m, nf) - c0;
}

/// One contiguous run where the owner's core cells g = g0 .. g0+len-1 read
/// tile-local scratch coordinates s = s0 .. s0+len-1 of a neighboring tile.
struct TileSeg {
  std::int64_t g0, s0, len;
};

/// Computes the (at most 2) segments of the core interval [c0, c0+ce) that
/// fall inside the padded extent [qbase - pad, qbase + p - pad) of the tile
/// based at `qbase`, under the periodic wrap. Requires p <= nf.
inline int tile_overlap_segs(std::int64_t c0, std::int64_t ce, std::int64_t qbase,
                             std::int64_t pad, std::int64_t p, std::int64_t nf,
                             TileSeg segs[2]) {
  int n = 0;
  const std::int64_t s0 = wrap_index(c0 - qbase + pad, nf);
  const std::int64_t len1 = std::min(ce, nf - s0);  // before s wraps past nf
  if (s0 < p) segs[n++] = {c0, s0, std::min(len1, p - s0)};
  const std::int64_t len2 = ce - len1;
  if (len2 > 0) segs[n++] = {c0 + len1, 0, std::min(len2, p)};
  return n;
}

/// Per-axis neighbor entry: physical tile index q on this axis plus the
/// overlap segments of the owner's core against q's padded extent.
struct TileNbr {
  std::int64_t q;
  TileSeg segs[2];
  int nsegs;
};

/// Window bound: pad <= (kMaxWidth+1)/2 = 12 and m >= 1 give at most
/// 2*(1 + ceil(pad/m)) + 1 <= 27 candidate tiles per axis (fewer when nbins
/// is small, since the all-tiles branch caps at nbins <= 27).
inline constexpr int kMaxTileNbrs = 28;

/// Enumerates, in a FIXED canonical order, the tiles on one axis whose padded
/// extent overlaps the core of bin `bc`, with the overlap segments. The order
/// is what makes the halo merge deterministic: every owner sums its neighbor
/// contributions in exactly this sequence regardless of worker scheduling.
inline int tile_axis_nbrs(std::int64_t bc, std::int64_t m, std::int64_t nbins,
                          std::int64_t nf, std::int64_t pad, TileNbr out[kMaxTileNbrs]) {
  const std::int64_t p = m + 2 * pad;
  std::int64_t c0, ce;
  tile_core(bc, m, nf, c0, ce);
  const std::int64_t K = 1 + (pad + m - 1) / m;  // K*m >= m + pad covers the reach
  int n = 0;
  auto push = [&](std::int64_t q) {
    TileNbr e;
    e.q = q;
    e.nsegs = tile_overlap_segs(c0, ce, q * m, pad, p, nf, e.segs);
    if (e.nsegs > 0) out[n++] = e;
  };
  if (2 * K + 1 >= nbins) {
    for (std::int64_t q = 0; q < nbins; ++q) push(q);
  } else {
    for (std::int64_t od = -K; od <= K; ++od) push(wrap_index(bc + od, nbins));
  }
  return n;
}

// ---- shell-only halo arena layout ------------------------------------------
//
// After phase 1 of the tiled writeback the core box of a padded tile has been
// added to fw and is never read again; only the SHELL (padded minus core)
// feeds the halo merge. The persistent arena therefore stores each tile's
// shell compacted row by row: rows whose y/z lie inside the tile's core range
// keep only the two x-shell runs ([0, pad) and [pad + ce0, p0)), every other
// row is stored whole. Phase-2 reads are per-axis overlap segments of a
// NEIGHBOR's core against this tile — cores are disjoint, so a segment never
// straddles the excluded core run and stays contiguous in the compact layout.

/// Cells of the shell-compact tile: padded volume minus the core box.
/// `ce` are the in-range core extents (tile_core) of the tile's own bin.
inline std::size_t tile_shell_cells(int dim, const std::int64_t* p,
                                    const std::int64_t* ce) {
  std::int64_t padded = 1, core = 1;
  for (int d = 0; d < dim; ++d) {
    padded *= p[d];
    core *= ce[d];
  }
  return static_cast<std::size_t>(padded - core);
}

/// Offset of padded-tile cell (s0, s1, s2) in the shell-compact layout.
/// Precondition: the cell lies in the shell (outside the core box); unused
/// higher coordinates must be 0. Core rows before this row each save ce[0]
/// cells; within a core row the high x-shell run follows the low one.
template <int DIM>
inline std::int64_t tile_shell_off(const std::int64_t* p, std::int64_t pad,
                                   const std::int64_t* ce, std::int64_t s0,
                                   std::int64_t s1, std::int64_t s2) {
  std::int64_t ncr = 0;  // core rows strictly before row (s2, s1)
  bool core_row = true;
  if constexpr (DIM > 2) {
    ncr = std::clamp<std::int64_t>(s2 - pad, 0, ce[2]) * ce[1];
    core_row = s2 >= pad && s2 < pad + ce[2];
  }
  if constexpr (DIM > 1) {
    if (core_row) {
      ncr += std::clamp<std::int64_t>(s1 - pad, 0, ce[1]);
      core_row = s1 >= pad && s1 < pad + ce[1];
    }
  }
  const std::int64_t row = (DIM > 2 ? s2 * p[1] : 0) + (DIM > 1 ? s1 : 0);
  return row * p[0] - ncr * ce[0] + (core_row && s0 >= pad ? s0 - ce[0] : s0);
}

/// Iterates the padded bin row by row, handing `f` maximal runs that are
/// contiguous in both the scratch (src index) and the periodic fine grid
/// (global index): f(scratch_offset, global_linear_index, run_length).
/// One division per row replaces the per-element div/mod + wrap of the
/// scalar path, and the runs give the caller vectorizable/streamed bodies.
template <int DIM, typename T, typename F>
inline void for_padded_rows(const GridSpec& grid, const std::int64_t* p,
                            const std::int64_t* delta, std::size_t row_lo,
                            std::size_t row_hi, F&& f) {
  for (std::size_t rr = row_lo; rr < row_hi; ++rr) {
    std::int64_t g1 = 0, g2 = 0;
    if constexpr (DIM >= 2) {
      const std::int64_t s1 = static_cast<std::int64_t>(rr) % p[1];
      const std::int64_t s2 = static_cast<std::int64_t>(rr) / p[1];
      g1 = wrap_index(delta[1] + s1, grid.nf[1]);
      if constexpr (DIM >= 3) g2 = wrap_index(delta[2] + s2, grid.nf[2]);
    }
    const std::int64_t rowbase = grid.nf[0] * (g1 + grid.nf[1] * g2);
    const std::size_t src0 = rr * static_cast<std::size_t>(p[0]);
    std::int64_t g0 = wrap_index(delta[0], grid.nf[0]);
    for (std::int64_t i = 0; i < p[0];) {
      const std::int64_t run = std::min<std::int64_t>(p[0] - i, grid.nf[0] - g0);
      f(src0 + static_cast<std::size_t>(i), rowbase + g0, run);
      i += run;
      g0 = 0;
    }
  }
}

/// Grid-stride launch over the iteration positions [lo, hi): f(jj, blk).
/// The per-point kernels use this to run the interior-first partition as two
/// launches — one all-no-wrap, one all-wrap — so the hot loops never test a
/// per-point flag (see PointCache / classify_interior).
template <typename F>
inline void launch_point_range(vgpu::Device& dev, std::size_t lo, std::size_t hi,
                               unsigned block, F&& f) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  dev.launch((n + block - 1) / block, block, [&, lo, n, block](vgpu::BlockCtx& blk) {
    const std::size_t base = lo + static_cast<std::size_t>(blk.block_id) * block;
    blk.for_each_thread([&](unsigned t) {
      const std::size_t jj = base + t;
      if (jj < lo + n) f(jj, blk);
    });
  });
}

/// Invokes f(integral_constant<int, w>) for w in [2, kMaxWidth]; returns
/// false (leaving the runtime-w fallback to the caller) otherwise.
template <typename F>
bool dispatch_width(int w, F&& f) {
  switch (w) {
#define CF_WIDTH_CASE(W_)                        \
  case W_:                                       \
    f(std::integral_constant<int, W_>{});        \
    return true;
    CF_WIDTH_CASE(2)
    CF_WIDTH_CASE(3)
    CF_WIDTH_CASE(4)
    CF_WIDTH_CASE(5)
    CF_WIDTH_CASE(6)
    CF_WIDTH_CASE(7)
    CF_WIDTH_CASE(8)
    CF_WIDTH_CASE(9)
    CF_WIDTH_CASE(10)
    CF_WIDTH_CASE(11)
    CF_WIDTH_CASE(12)
    CF_WIDTH_CASE(13)
    CF_WIDTH_CASE(14)
    CF_WIDTH_CASE(15)
    CF_WIDTH_CASE(16)
    // sigma = 1.25 deep-tolerance widths (width_from_tol clamps [2, 24] at
    // sigma != 2); without these cases they'd fall to the runtime-w scalar
    // fallback precisely on the plans that need the most taps per point.
    CF_WIDTH_CASE(17)
    CF_WIDTH_CASE(18)
    CF_WIDTH_CASE(19)
    CF_WIDTH_CASE(20)
    CF_WIDTH_CASE(21)
    CF_WIDTH_CASE(22)
    CF_WIDTH_CASE(23)
    CF_WIDTH_CASE(24)
#undef CF_WIDTH_CASE
  }
  return false;
}

template <typename F1, typename F2, typename F3>
void dispatch_dim(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 3: f3(); break;
    default: throw std::invalid_argument("spread: dim must be 1..3");
  }
}

/// True if the deinterleaved fast-path scratch — padded bin plus the tap-pad
/// slack its overhanging x-loops write — fits the per-block arena. Same byte
/// budget as sm_fits except for the few slack lanes, so this can only veto
/// the fast path in exact-fit corner cases (the scalar fallback still runs).
template <typename T>
inline bool sm_scratch_fits(const vgpu::Device& dev, const GridSpec& grid,
                            const BinSpec& bins, int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  const std::size_t slack = static_cast<std::size_t>(pad_width(w) - w);
  return 2 * (padded + slack) * sizeof(T) <= dev.props.shared_mem_per_block;
}

}  // namespace cf::spread::detail
