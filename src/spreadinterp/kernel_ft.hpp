// Kernel Fourier-transform machinery for the deconvolution (correction) step.
//
// The correction factors of paper eq. (10)-(11) are, per dimension,
//   p_k = h / psihat(k) = (2/w) / phihat(alpha * k),  alpha = w*pi/n = w*h/2,
// where phihat(xi) = 2 * int_0^1 phi(z) cos(xi z) dz (phi is even). The
// integral is computed by Gauss-Legendre quadrature, as in FINUFFT. The
// quadrature is generic over the kernel functor so the comparator libraries
// (Gaussian, Kaiser-Bessel) reuse it for their own deconvolution.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <numbers>
#include <vector>

#include "spreadinterp/grid.hpp"

namespace cf::spread {

/// Gauss-Legendre nodes/weights on [-1, 1] by Newton iteration on P_q.
/// Accurate to machine precision for q <= ~128.
inline void gauss_legendre(int q, std::vector<double>& nodes, std::vector<double>& weights) {
  nodes.resize(q);
  weights.resize(q);
  for (int i = 0; i < q; ++i) {
    // Chebyshev-like initial guess for the i-th root of P_q.
    double x = std::cos(std::numbers::pi * (i + 0.75) / (q + 0.5));
    double dp = 0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_q(x) and P'_q(x) by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= q; ++k) {
        const double p2 = ((2 * k - 1) * x * p1 - (k - 1) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      dp = q * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes[i] = x;
    weights[i] = 2.0 / ((1.0 - x * x) * dp * dp);
  }
}

/// phihat(xi) = 2 * int_0^1 kernel(z) cos(xi z) dz for a batch of xi values.
/// `kernel` is any even function supported on [-1, 1]; q is the quadrature
/// order (>= ~2+2w gives machine-precision for the ES kernel).
inline std::vector<double> kernel_ft(const std::function<double(double)>& kernel, int q,
                                     const std::vector<double>& xis) {
  std::vector<double> nodes, weights;
  gauss_legendre(q, nodes, weights);
  // Map to [0, 1]: z = (x + 1) / 2, dz = dx / 2.
  std::vector<double> z(q), f(q);
  for (int i = 0; i < q; ++i) {
    z[i] = 0.5 * (nodes[i] + 1.0);
    f[i] = kernel(z[i]) * weights[i];  // weight folded in; 2 * (1/2) = 1 overall
  }
  std::vector<double> out(xis.size());
  for (std::size_t j = 0; j < xis.size(); ++j) {
    double acc = 0;
    for (int i = 0; i < q; ++i) acc += f[i] * std::cos(xis[j] * z[i]);
    out[j] = acc;  // equals 2*int_0^1 kernel(z) cos(xi z) dz
  }
  return out;
}

/// Per-dimension correction factors p_k = (h/alpha) / phihat(alpha*k) for the
/// N output modes k = -N/2 .. N/2-1 (returned indexed by i = k + N/2).
/// `nf` is the fine-grid size, `w` the kernel width; h/alpha = 2/w.
inline std::vector<double> correction_factors(std::size_t N, std::size_t nf, int w,
                                              const std::function<double(double)>& kernel) {
  const double alpha = double(w) * std::numbers::pi / double(nf);
  const std::size_t half = N / 2;
  // phihat is even: evaluate on |k| = 0 .. max(N/2, N - N/2 - 1).
  const std::size_t kmax = (N + 1) / 2;
  std::vector<double> xis(kmax + 1);
  for (std::size_t k = 0; k <= kmax; ++k) xis[k] = alpha * double(k);
  const int q = 2 + 2 * w + 8;
  const std::vector<double> ph = kernel_ft(kernel, q, xis);
  std::vector<double> p(N);
  for (std::size_t i = 0; i < N; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(i) - static_cast<std::int64_t>(half);
    const std::size_t a = static_cast<std::size_t>(k < 0 ? -k : k);
    p[i] = (2.0 / double(w)) / ph[a];
  }
  return p;
}

/// Type-2 step 1 (paper eq. (11)) as a row producer for the fused
/// amplify + first-axis FFT (FftNd::exec_batch_fused), shared by the device
/// and CPU plans: fills the x-row of the fine grid at `line` = (g1, g2) with
/// the pre-corrected, zero-padded copy of its mode row, or returns false when
/// the row lies entirely in the zero padding (no retained mode maps to
/// g1/g2). `fb` is one batch plane's mode grid (length N[0]*N[1]*N[2], the
/// caller applies the batch offset); `fser[d]` are the per-dim correction
/// factors indexed by k + N[d]/2 (unused dims hold a single 1).
template <typename T>
inline bool amplify_fine_row(std::complex<T>* row, std::size_t line,
                             const std::complex<T>* fb, int dim,
                             const std::array<std::int64_t, 3>& N,
                             const std::array<std::int64_t, 3>& nf,
                             const std::array<std::vector<T>, 3>& fser, int modeord) {
  const std::int64_t g1 = dim >= 2 ? static_cast<std::int64_t>(line) % nf[1] : 0;
  const std::int64_t g2 = dim >= 3 ? static_cast<std::int64_t>(line) / nf[1] : 0;
  const std::int64_t i1 = grid_to_index(g1, N[1], nf[1], modeord);
  if (i1 < 0) return false;
  const std::int64_t i2 = grid_to_index(g2, N[2], nf[2], modeord);
  if (i2 < 0) return false;
  const std::int64_t k1 = index_to_mode(i1, N[1], modeord);
  const std::int64_t k2 = index_to_mode(i2, N[2], modeord);
  const T p12 = fser[1][k1 + N[1] / 2] * fser[2][k2 + N[2] / 2];
  const T* p0 = fser[0].data();
  const std::complex<T>* frow = fb + static_cast<std::size_t>((i2 * N[1] + i1) * N[0]);
  for (std::int64_t g = 0; g < nf[0]; ++g) row[g] = std::complex<T>(0, 0);
  for (std::int64_t i0 = 0; i0 < N[0]; ++i0) {
    const std::int64_t k0 = index_to_mode(i0, N[0], modeord);
    row[wrap_index(k0, nf[0])] = frow[i0] * (p0[k0 + N[0] / 2] * p12);
  }
  return true;
}

}  // namespace cf::spread
