// Interpolation (paper Sec. III-B): the type-2 gather of fine-grid values at
// the nonuniform points, plus the SM-staged variant kept to measure the
// paper's claim that shared-memory staging buys little for reads. The
// batch-strided kernels are the only implementation of the GM/GM-sort
// gather; the single-vector entry point is their B = 1 instantiation.
#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::spread {

namespace {

using namespace detail;

template <int DIM, int W, typename T>
void interp_batch_fast(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                       const NuPoints<T>& pts, const std::complex<T>* fw,
                       std::complex<T>* c, const std::uint32_t* order, int B,
                       std::size_t cstride, std::size_t fwstride) {
  // Interior-first partition: two launches with the wrap decision constant-
  // folded (see spread_gm.cpp); per-point outputs are order-independent, so
  // the partition is numerically transparent here.
  auto run = [&](std::size_t lo, std::size_t hi, auto nowrap) {
    launch_point_range(dev, lo, hi, 256, [&](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M) {
      const std::size_t jn =
          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch;
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr), jn);
      for (int b = 0; b < B; ++b) CF_PREFETCH(&c[b * cstride + jn], 1);
    }
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTabF<DIM, W, T> tab;
    tab.compute(grid, kp, px, decltype(nowrap)::value);
    for (int b = 0; b < B; ++b) {
      const std::complex<T>* fwb = fw + b * fwstride;
      // Accumulate per-x-tap lanes across rows/planes (independent FMA lanes,
      // no serial reduction chain), then contract against the x weights once.
      T accre[W] = {}, accim[W] = {};
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < W; ++i0) {
          const std::complex<T> g = fwb[tab.idx[0][i0]];
          accre[i0] = g.real();
          accim[i0] = g.imag();
        }
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < W; ++i1) {
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          const T s = tab.vals[1][i1];
          for (int i0 = 0; i0 < W; ++i0) {
            const std::complex<T> g = fwb[row + tab.idx[0][i0]];
            accre[i0] += g.real() * s;
            accim[i0] += g.imag() * s;
          }
        }
      } else {
        for (int i2 = 0; i2 < W; ++i2) {
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          for (int i1 = 0; i1 < W; ++i1) {
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            const T s = tab.vals[2][i2] * tab.vals[1][i1];
            for (int i0 = 0; i0 < W; ++i0) {
              const std::complex<T> g = fwb[row + tab.idx[0][i0]];
              accre[i0] += g.real() * s;
              accim[i0] += g.imag() * s;
            }
          }
        }
      }
      T re(0), im(0);
      for (int i0 = 0; i0 < W; ++i0) re += accre[i0] * tab.vals[0][i0];
      for (int i0 = 0; i0 < W; ++i0) im += accim[i0] * tab.vals[0][i0];
      c[b * cstride + j] = std::complex<T>(re, im);
    }
    });
  };
  const std::size_t S = std::min(pts.n_nowrap, pts.M);
  run(0, S, std::true_type{});
  run(S, pts.M, std::false_type{});
}

template <int DIM, typename T>
void interp_batch_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                       const NuPoints<T>& pts, const std::complex<T>* fw,
                       std::complex<T>* c, const std::uint32_t* order, int B,
                       std::size_t cstride, std::size_t fwstride) {
  const int w = kp.w;
  auto run = [&](std::size_t lo, std::size_t hi, auto nowrap) {
    launch_point_range(dev, lo, hi, 256, [&, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px, decltype(nowrap)::value);
    for (int b = 0; b < B; ++b) {
      const std::complex<T>* fwb = fw + b * fwstride;
      std::complex<T> acc(0, 0);
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < w; ++i0) acc += fwb[tab.idx[0][i0]] * tab.vals[0][i0];
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          std::complex<T> rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0)
            rowacc += fwb[row + tab.idx[0][i0]] * tab.vals[0][i0];
          acc += rowacc * tab.vals[1][i1];
        }
      } else {
        for (int i2 = 0; i2 < w; ++i2) {
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          std::complex<T> planeacc(0, 0);
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            std::complex<T> rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0)
              rowacc += fwb[row + tab.idx[0][i0]] * tab.vals[0][i0];
            planeacc += rowacc * tab.vals[1][i1];
          }
          acc += planeacc * tab.vals[2][i2];
        }
      }
      c[b * cstride + j] = acc;
    }
    });
  };
  const std::size_t S = std::min(pts.n_nowrap, pts.M);
  run(0, S, std::true_type{});
  run(S, pts.M, std::false_type{});
}

template <int DIM, typename T>
void interp_batch_any(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                      const NuPoints<T>& pts, const std::complex<T>* fw,
                      std::complex<T>* c, const std::uint32_t* order, int B,
                      std::size_t cstride, std::size_t fwstride) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        interp_batch_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, fw, c, order, B,
                                                   cstride, fwstride);
      }))
    return;
  interp_batch_impl<DIM>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride);
}

// ---- SM-staged interpolation ------------------------------------------------

template <int DIM, typename T>
void interp_sm_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* fw, std::complex<T>* c,
                    const DeviceSort& sort, const SubprobSetup& subs,
                    std::uint32_t msub) {
  const int w = kp.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, w, pad, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t delta[3];
    subprob_delta(bins, b, DIM, pad, delta);

    // Stage the padded bin of the fine grid into shared memory.
    auto sm = blk.shared<std::complex<T>>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
        sm[i] = fw[g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2])];
      }
    });
    blk.sync_threads();

    // Gather each point from the staged copy (local coords, no wrap).
    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort.order[start + i];
        T px[3];
        load_point<DIM>(pts, j, px);
        T vals[DIM][kMaxWidth];
        std::int64_t li0[DIM];
        for (int d = 0; d < DIM; ++d)
          li0[d] = es_values(kp, px[d], vals[d]) - delta[d];
        std::complex<T> acc(0, 0);
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0) acc += sm[li0[0] + i0] * vals[0][i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (li0[1] + i1) * p[0];
            std::complex<T> rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += sm[row + li0[0] + i0] * vals[0][i0];
            acc += rowacc * vals[1][i1];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            std::complex<T> planeacc(0, 0);
            for (int i1 = 0; i1 < w; ++i1) {
              const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
              std::complex<T> rowacc(0, 0);
              for (int i0 = 0; i0 < w; ++i0)
                rowacc += sm[row + li0[0] + i0] * vals[0][i0];
              planeacc += rowacc * vals[1][i1];
            }
            acc += planeacc * vals[2][i2];
          }
        }
        c[j] = acc;
      }
    });
  });
}

template <int DIM, int W, typename T>
void interp_sm_fast(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* fw, std::complex<T>* c,
                    const DeviceSort& sort, const SubprobSetup& subs,
                    std::uint32_t msub) {
  constexpr int pad = (W + 1) / 2;
  constexpr int WP = pad_width(W);
  constexpr std::size_t slack = WP - W;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t delta[3];
    subprob_delta(bins, b, DIM, pad, delta);

    // Stage the padded bin of fw deinterleaved, so gathers are contiguous
    // real/imag FMA streams; the copy-in itself runs over contiguous
    // wrap-resolved row segments. The slack lanes after the last row are
    // zeroed because the padded gathers below read (and zero-weight) them.
    auto smre = blk.shared<T>(padded + slack);
    auto smim = blk.shared<T>(padded + slack);
    for (std::size_t i = padded; i < padded + slack; ++i) smre[i] = smim[i] = T(0);
    const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
      for_padded_rows<DIM, T>(grid, p, delta, lo, hi,
                              [&](std::size_t dst, std::int64_t src, std::int64_t run) {
                                for (std::int64_t i = 0; i < run; ++i) {
                                  const std::complex<T> v = fw[src + i];
                                  smre[dst + i] = v.real();
                                  smim[dst + i] = v.imag();
                                }
                              });
    });
    blk.sync_threads();

    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t j = sort.order[start + i];
        if (i + kPointPrefetch < cnt)
          prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr),
                              sort.order[start + i + kPointPrefetch]);
        T px[3];
        load_point<DIM>(pts, j, px);
        T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
        std::int64_t li0[DIM];
        li0[0] = es_values_padded<W>(kp, px[0], v0) - delta[0];
        if constexpr (DIM > 1) li0[1] = es_values_fixed<W>(kp, px[1], v1) - delta[1];
        if constexpr (DIM > 2) li0[2] = es_values_fixed<W>(kp, px[2], v2) - delta[2];
        // Lane-wise accumulation over rows (vector FMA streams on the staged
        // contiguous copies), then one contraction against the x weights.
        T accre[WP] = {}, accim[WP] = {};
        if constexpr (DIM == 1) {
          const T* CF_RESTRICT rre = &smre[li0[0]];
          const T* CF_RESTRICT rim = &smim[li0[0]];
          for (int i0 = 0; i0 < WP; ++i0) accre[i0] = rre[i0];
          for (int i0 = 0; i0 < WP; ++i0) accim[i0] = rim[i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < W; ++i1) {
            const std::int64_t row = (li0[1] + i1) * p[0] + li0[0];
            const T* CF_RESTRICT rre = &smre[row];
            const T* CF_RESTRICT rim = &smim[row];
            const T s = v1[i1];
            for (int i0 = 0; i0 < WP; ++i0) accre[i0] += rre[i0] * s;
            for (int i0 = 0; i0 < WP; ++i0) accim[i0] += rim[i0] * s;
          }
        } else {
          for (int i2 = 0; i2 < W; ++i2) {
            const std::int64_t plane = (li0[2] + i2) * p[1];
            for (int i1 = 0; i1 < W; ++i1) {
              const std::int64_t row = (plane + li0[1] + i1) * p[0] + li0[0];
              const T* CF_RESTRICT rre = &smre[row];
              const T* CF_RESTRICT rim = &smim[row];
              const T s = v2[i2] * v1[i1];
              for (int i0 = 0; i0 < WP; ++i0) accre[i0] += rre[i0] * s;
              for (int i0 = 0; i0 < WP; ++i0) accim[i0] += rim[i0] * s;
            }
          }
        }
        T re(0), im(0);
        for (int i0 = 0; i0 < WP; ++i0) re += accre[i0] * v0[i0];
        for (int i0 = 0; i0 < WP; ++i0) im += accim[i0] * v0[i0];
        c[j] = std::complex<T>(re, im);
      }
    });
  });
}

template <int DIM, typename T>
void interp_sm_any(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                   const KernelParams<T>& kp, const NuPoints<T>& pts,
                   const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
                   const SubprobSetup& subs, std::uint32_t msub) {
  if (kp.fast && sm_scratch_fits<T>(dev, grid, bins, kp.w) &&
      dispatch_width(kp.w, [&](auto W) {
        interp_sm_fast<DIM, decltype(W)::value>(dev, grid, bins, kp, pts, fw, c, sort,
                                                subs, msub);
      }))
    return;
  interp_sm_impl<DIM>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub);
}

}  // namespace

template <typename T>
void interp_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                  const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                  const std::uint32_t* order, int B, std::size_t cstride,
                  std::size_t fwstride) {
  B = std::max(1, B);
  detail::dispatch_dim(
      grid.dim,
      [&] { interp_batch_any<1>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); },
      [&] { interp_batch_any<2>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); },
      [&] { interp_batch_any<3>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); });
}

template <typename T>
void interp(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
            const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
            const std::uint32_t* order) {
  interp_batch<T>(dev, grid, kp, pts, fw, c, order, 1, 0, 0);
}

template <typename T>
void interp_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("interp_sm: padded bin exceeds shared memory");
  detail::dispatch_dim(
      grid.dim,
      [&] { interp_sm_any<1>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_any<2>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_any<3>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); });
}

#define CF_INSTANTIATE(T)                                                                \
  template void interp<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,       \
                          const NuPoints<T>&, const std::complex<T>*, std::complex<T>*, \
                          const std::uint32_t*);                                        \
  template void interp_batch<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&, \
                                const NuPoints<T>&, const std::complex<T>*,             \
                                std::complex<T>*, const std::uint32_t*, int,            \
                                std::size_t, std::size_t);                              \
  template void interp_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*,                  \
                             const DeviceSort&, const SubprobSetup&, std::uint32_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
