// Device-side bin sorting of nonuniform points (paper Sec. III-A) and the
// subproblem decomposition used by the SM spreading method.
//
// The sort is a counting sort in the deterministic chunked formulation
// (per-chunk histograms -> per-bin serial combine -> exclusively owned chunk
// cursors): no atomics anywhere, and the permutation is STABLE (points within
// a bin keep their original index order) independent of the worker count —
// the property the tiled spread writeback's bitwise-determinism guarantee
// rests on. The resulting permutation `order` is the paper's bijection t:
// points order[bin_start[i]] .. order[bin_start[i+1]-1] lie in bin R_i.
#pragma once

#include <cstdint>

#include "spreadinterp/grid.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::spread {

/// Bin-sort result, all device-resident (this is the GM-sort / SM memory
/// overhead the paper's Limitation (1) refers to).
struct DeviceSort {
  vgpu::device_buffer<std::uint32_t> bin_counts;  ///< points per bin
  vgpu::device_buffer<std::uint32_t> bin_start;   ///< exclusive scan of counts
  vgpu::device_buffer<std::uint32_t> order;       ///< permutation t (size M)
};

/// SM subproblem decomposition: bin i contributes ceil(counts[i]/msub)
/// subproblems, each covering at most msub consecutive sorted points.
struct SubprobSetup {
  vgpu::device_buffer<std::uint32_t> subprob_bin;     ///< owning bin id
  vgpu::device_buffer<std::uint32_t> subprob_offset;  ///< start offset inside the bin
  std::uint32_t nsubprob = 0;
};

/// Computes each point's bin index from fine-grid coordinates xg/yg/zg
/// (already fold-rescaled into [0, nf)); unused axes pass nullptr.
template <typename T>
void compute_bin_index(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                       const T* xg, const T* yg, const T* zg, std::size_t M,
                       std::uint32_t* binidx);

/// Full bin sort: fills `out` (buffers are allocated on `dev`).
template <typename T>
void bin_sort(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, const T* xg,
              const T* yg, const T* zg, std::size_t M, DeviceSort& out);

/// Builds the SM subproblem list from bin counts (paper Fig. 1, Step 1).
SubprobSetup build_subproblems(vgpu::Device& dev, const DeviceSort& sort,
                               std::uint32_t msub);

}  // namespace cf::spread
