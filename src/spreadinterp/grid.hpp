// Fine-grid and bin geometry shared by the spreading/interpolation kernels.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>

namespace cf::spread {

/// The upsampled ("fine") grid. Layout is x-fastest: linear index
/// l = l1 + nf1*(l2 + nf2*l3). Unused trailing dims are 1.
struct GridSpec {
  int dim = 2;
  std::array<std::int64_t, 3> nf{1, 1, 1};

  std::int64_t total() const { return nf[0] * nf[1] * nf[2]; }
};

/// Cartesian bins covering the fine grid (paper Sec. III-A). Bins are ordered
/// x-fastest, echoing the fine-grid ordering; edge bins may be smaller.
struct BinSpec {
  std::array<int, 3> m{1, 1, 1};               ///< bin dims in fine-grid points
  std::array<std::int64_t, 3> nbins{1, 1, 1};  ///< bin counts per axis

  std::int64_t total_bins() const { return nbins[0] * nbins[1] * nbins[2]; }

  static BinSpec make(const GridSpec& g, std::array<int, 3> m) {
    BinSpec b;
    for (int d = 0; d < 3; ++d) {
      b.m[d] = d < g.dim ? m[d] : 1;
      if (b.m[d] <= 0) throw std::invalid_argument("BinSpec: bin size must be positive");
      b.nbins[d] = (g.nf[d] + b.m[d] - 1) / b.m[d];
    }
    return b;
  }

  /// Hand-tuned defaults from the paper (Rmk. 1): 32x32 in 2D, 16x16x2 in 3D.
  /// 1D (our future-work extension) uses 1024.
  static std::array<int, 3> default_size(int dim) {
    if (dim == 1) return {1024, 1, 1};
    if (dim == 2) return {32, 32, 1};
    return {16, 16, 2};
  }
};

/// Maps a nonuniform coordinate (any real; typically [-pi, pi)) to its
/// fine-grid coordinate in [0, nf) with periodic folding (the FINUFFT
/// "fold-and-rescale"). Grid index l represents position x = l*h mod 2*pi,
/// so the FFT phase e^{2*pi*i*l*k/nf} equals e^{i*k*x} exactly.
template <typename T>
inline T fold_rescale(T x, std::int64_t nf) {
  constexpr T inv2pi = static_cast<T>(1.0 / (2.0 * std::numbers::pi));
  T z = x * inv2pi;
  z -= std::floor(z);
  T g = z * static_cast<T>(nf);
  if (g >= static_cast<T>(nf)) g = 0;  // guard the z==1-ulp rounding case
  return g;
}

/// Periodic wrap of a (possibly negative) fine-grid index into [0, nf).
inline std::int64_t wrap_index(std::int64_t l, std::int64_t nf) {
  l %= nf;
  return l < 0 ? l + nf : l;
}

/// Output index -> signed mode, honoring the mode-ordering option:
/// modeord 0 (CMCL): k = i - N/2; modeord 1 (FFT-style): k = i, wrapping
/// past the Nyquist to the negative half.
inline std::int64_t index_to_mode(std::int64_t i, std::int64_t N, int modeord) {
  if (modeord == 0) return i - N / 2;
  return i < (N + 1) / 2 ? i : i - N;
}

/// Inverse of index_to_mode composed with wrap_index: the output index whose
/// mode lands on fine-grid position g, or -1 when g lies in the zero-padded
/// band (no retained mode maps there). Requires nf > N - 1 so the positive
/// and negative mode ranges cannot overlap on the fine grid (always true for
/// the upsampled grid at any supported sigma: nf >= ceil(sigma * N) >= N for
/// sigma >= 1.25).
inline std::int64_t grid_to_index(std::int64_t g, std::int64_t N, std::int64_t nf,
                                  int modeord) {
  std::int64_t k;
  if (g <= N - 1 - N / 2)
    k = g;
  else if (g >= nf - N / 2)
    k = g - nf;
  else
    return -1;
  if (modeord == 0) return k + N / 2;
  return k >= 0 ? k : k + N;
}

}  // namespace cf::spread
