// GM / GM-sort spreading (paper Sec. III-A): one thread per point, global
// atomic accumulation. The batch-strided kernels are the only implementation;
// the single-vector entry point is their B = 1 instantiation.
//
// The interior-first partition (NuPoints::n_nowrap with a partitioned
// iteration order, see point_cache.hpp) runs as two launches — the no-wrap
// prefix and the wrapping suffix — so the hot loops carry no per-point flag
// test: the wrap decision is a compile-time constant folded into each launch.
#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"

namespace cf::spread {

namespace {

using namespace detail;

template <int DIM, int W, typename T>
void spread_gm_batch_fast(vgpu::Device& dev, const GridSpec& grid,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const std::uint32_t* order, int B, std::size_t cstride,
                          std::size_t fwstride) {
  auto run = [&](std::size_t lo, std::size_t hi, auto nowrap) {
    launch_point_range(dev, lo, hi, 256, [&](std::size_t jj, vgpu::BlockCtx& blk) {
      const std::size_t j = order ? order[jj] : jj;
      if (jj + kPointPrefetch < pts.M) {
        const std::size_t jn =
            order ? order[jj + kPointPrefetch] : jj + kPointPrefetch;
        prefetch_point<DIM>(pts, c, jn);
        for (int b = 1; b < B; ++b) CF_PREFETCH(&c[b * cstride + jn], 0);
      }
      T px[3];
      load_point<DIM>(pts, j, px);
      PointTabF<DIM, W, T> tab;
      tab.compute(grid, kp, px, decltype(nowrap)::value);
      for (int b = 0; b < B; ++b) {
        const std::complex<T> cj = c[b * cstride + j];
        std::complex<T>* fwb = fw + b * fwstride;
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < W; ++i0)
            accum_global(blk, kp.packed, &fwb[tab.idx[0][i0]], cj * tab.vals[0][i0]);
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < W; ++i1) {
            const std::complex<T> c1 = cj * tab.vals[1][i1];
            const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
            for (int i0 = 0; i0 < W; ++i0)
              accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                           c1 * tab.vals[0][i0]);
          }
        } else {
          for (int i2 = 0; i2 < W; ++i2) {
            const std::complex<T> c2 = cj * tab.vals[2][i2];
            const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
            for (int i1 = 0; i1 < W; ++i1) {
              const std::complex<T> c1 = c2 * tab.vals[1][i1];
              const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
              for (int i0 = 0; i0 < W; ++i0)
                accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                             c1 * tab.vals[0][i0]);
            }
          }
        }
      }
    });
  };
  const std::size_t S = std::min(pts.n_nowrap, pts.M);
  run(0, S, std::true_type{});
  run(S, pts.M, std::false_type{});
}

template <int DIM, typename T>
void spread_gm_batch_impl(vgpu::Device& dev, const GridSpec& grid,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const std::uint32_t* order, int B, std::size_t cstride,
                          std::size_t fwstride) {
  const int w = kp.w;
  auto run = [&](std::size_t lo, std::size_t hi, auto nowrap) {
    launch_point_range(dev, lo, hi, 256, [&, w](std::size_t jj, vgpu::BlockCtx& blk) {
      const std::size_t j = order ? order[jj] : jj;
      T px[3];
      load_point<DIM>(pts, j, px);
      PointTab<DIM, T> tab;
      tab.compute(grid, kp, px, decltype(nowrap)::value);
      for (int b = 0; b < B; ++b) {
        const std::complex<T> cj = c[b * cstride + j];
        std::complex<T>* fwb = fw + b * fwstride;
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0)
            accum_global(blk, kp.packed, &fwb[tab.idx[0][i0]], cj * tab.vals[0][i0]);
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::complex<T> c1 = cj * tab.vals[1][i1];
            const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
            for (int i0 = 0; i0 < w; ++i0)
              accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                           c1 * tab.vals[0][i0]);
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            const std::complex<T> c2 = cj * tab.vals[2][i2];
            const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
            for (int i1 = 0; i1 < w; ++i1) {
              const std::complex<T> c1 = c2 * tab.vals[1][i1];
              const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
              for (int i0 = 0; i0 < w; ++i0)
                accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                             c1 * tab.vals[0][i0]);
            }
          }
        }
      }
    });
  };
  const std::size_t S = std::min(pts.n_nowrap, pts.M);
  run(0, S, std::true_type{});
  run(S, pts.M, std::false_type{});
}

template <int DIM, typename T>
void spread_gm_batch_any(vgpu::Device& dev, const GridSpec& grid,
                         const KernelParams<T>& kp, const NuPoints<T>& pts,
                         const std::complex<T>* c, std::complex<T>* fw,
                         const std::uint32_t* order, int B, std::size_t cstride,
                         std::size_t fwstride) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        spread_gm_batch_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, c, fw, order,
                                                      B, cstride, fwstride);
      }))
    return;
  spread_gm_batch_impl<DIM>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride);
}

}  // namespace

template <typename T>
void spread_gm_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::complex<T>* c,
                     std::complex<T>* fw, const std::uint32_t* order, int B,
                     std::size_t cstride, std::size_t fwstride) {
  B = std::max(1, B);
  detail::dispatch_dim(
      grid.dim,
      [&] { spread_gm_batch_any<1>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); },
      [&] { spread_gm_batch_any<2>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); },
      [&] { spread_gm_batch_any<3>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); });
}

template <typename T>
void spread_gm(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
               const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
               const std::uint32_t* order) {
  spread_gm_batch<T>(dev, grid, kp, pts, c, fw, order, 1, 0, 0);
}

#define CF_INSTANTIATE(T)                                                                \
  template void spread_gm<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,    \
                             const NuPoints<T>&, const std::complex<T>*,                \
                             std::complex<T>*, const std::uint32_t*);                   \
  template void spread_gm_batch<T>(vgpu::Device&, const GridSpec&,                      \
                                   const KernelParams<T>&, const NuPoints<T>&,          \
                                   const std::complex<T>*, std::complex<T>*,            \
                                   const std::uint32_t*, int, std::size_t, std::size_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
