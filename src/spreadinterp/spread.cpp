#include "spreadinterp/spread.hpp"

#include <algorithm>
#include <type_traits>

#if defined(_MSC_VER)
#define CF_RESTRICT __restrict
#define CF_PREFETCH(addr, rw) ((void)0)
#else
#define CF_RESTRICT __restrict__
#define CF_PREFETCH(addr, rw) __builtin_prefetch((addr), (rw))
#endif

namespace cf::spread {

namespace {

/// Global complex accumulate honoring KernelParams::packed: complex<float>
/// writes collapse into one 8-byte CAS when requested; double (and the
/// default) keeps the CUDA-style two-float atomic adds. Counter semantics are
/// identical (2 global atomics per complex write) either way.
template <typename T>
inline void accum_global(vgpu::BlockCtx& blk, bool packed, std::complex<T>* p,
                         std::complex<T> v) {
  if constexpr (std::is_same_v<T, float>) {
    if (packed) {
      blk.atomic_add_packed(p, v);
      return;
    }
  }
  blk.atomic_add(p, v);
}

/// Per-point kernel tabulation: w values and wrapped global indices per axis.
template <int DIM, typename T>
struct PointTab {
  T vals[DIM][kMaxWidth];
  std::int64_t idx[DIM][kMaxWidth];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values(kp, px[d], vals[d]);
      for (int i = 0; i < kp.w; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
    }
  }
};

template <int DIM, typename T>
inline void load_point(const NuPoints<T>& pts, std::size_t j, T* px) {
  px[0] = pts.xg[j];
  if constexpr (DIM > 1) px[1] = pts.yg[j];
  if constexpr (DIM > 2) px[2] = pts.zg[j];
}

template <int DIM, typename T>
void spread_gm_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                    const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
                    const std::uint32_t* order) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx& blk) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    const std::complex<T> cj = c[j];
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < w; ++i0)
        accum_global(blk, kp.packed, &fw[tab.idx[0][i0]], cj * tab.vals[0][i0]);
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const std::complex<T> c1 = cj * tab.vals[1][i1];
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        for (int i0 = 0; i0 < w; ++i0)
          accum_global(blk, kp.packed, &fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        const std::complex<T> c2 = cj * tab.vals[2][i2];
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        for (int i1 = 0; i1 < w; ++i1) {
          const std::complex<T> c1 = c2 * tab.vals[1][i1];
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          for (int i0 = 0; i0 < w; ++i0)
            accum_global(blk, kp.packed, &fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
        }
      }
    }
  });
}

template <int DIM, typename T>
void spread_sm_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
                    const SubprobSetup& subs, std::uint32_t msub) {
  const int w = kp.w;
  const int pad = (w + 1) / 2;  // ceil(w/2)
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;  // paper eq. (13)
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, w, pad, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    // Bin Cartesian coordinates and padded-bin offset Delta (paper Fig. 1).
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    auto sm = blk.shared<std::complex<T>>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) sm[i] = std::complex<T>(0, 0);
    });
    blk.sync_threads();

    // Step 2: spread this subproblem's points into the shared padded bin.
    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort.order[start + i];
        T px[3];
        load_point<DIM>(pts, j, px);
        const std::complex<T> cj = c[j];
        T vals[DIM][kMaxWidth];
        std::int64_t li0[DIM];
        for (int d = 0; d < DIM; ++d)
          li0[d] = es_values(kp, px[d], vals[d]) - delta[d];  // local, no wrap needed
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0) sm[li0[0] + i0] += cj * vals[0][i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::complex<T> c1 = cj * vals[1][i1];
            const std::int64_t row = (li0[1] + i1) * p[0];
            for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            const std::complex<T> c2 = cj * vals[2][i2];
            const std::int64_t plane = (li0[2] + i2) * p[1];
            for (int i1 = 0; i1 < w; ++i1) {
              const std::complex<T> c1 = c2 * vals[1][i1];
              const std::int64_t row = (plane + li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          }
        }
        blk.note_shared_op(static_cast<std::uint64_t>(w) * (DIM > 1 ? w : 1) *
                           (DIM > 2 ? w : 1));
      }
    });
    blk.sync_threads();

    // Step 3: atomic add the padded bin back into global memory, with
    // periodic wrapping (paper eq. (15)).
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
        const std::int64_t lin = g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2]);
        accum_global(blk, kp.packed, &fw[lin], sm[i]);
      }
    });
  });
}

template <int DIM, typename T>
void interp_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                 const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                 const std::uint32_t* order) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    std::complex<T> acc(0, 0);
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < w; ++i0) acc += fw[tab.idx[0][i0]] * tab.vals[0][i0];
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        std::complex<T> rowacc(0, 0);
        for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + tab.idx[0][i0]] * tab.vals[0][i0];
        acc += rowacc * tab.vals[1][i1];
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        std::complex<T> planeacc(0, 0);
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          std::complex<T> rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0)
            rowacc += fw[row + tab.idx[0][i0]] * tab.vals[0][i0];
          planeacc += rowacc * tab.vals[1][i1];
        }
        acc += planeacc * tab.vals[2][i2];
      }
    }
    c[j] = acc;
  });
}

template <int DIM, typename T>
void interp_sm_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* fw, std::complex<T>* c,
                    const DeviceSort& sort, const SubprobSetup& subs,
                    std::uint32_t msub) {
  const int w = kp.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, w, pad, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    // Stage the padded bin of the fine grid into shared memory.
    auto sm = blk.shared<std::complex<T>>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
        sm[i] = fw[g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2])];
      }
    });
    blk.sync_threads();

    // Gather each point from the staged copy (local coords, no wrap).
    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort.order[start + i];
        T px[3];
        load_point<DIM>(pts, j, px);
        T vals[DIM][kMaxWidth];
        std::int64_t li0[DIM];
        for (int d = 0; d < DIM; ++d)
          li0[d] = es_values(kp, px[d], vals[d]) - delta[d];
        std::complex<T> acc(0, 0);
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0) acc += sm[li0[0] + i0] * vals[0][i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (li0[1] + i1) * p[0];
            std::complex<T> rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += sm[row + li0[0] + i0] * vals[0][i0];
            acc += rowacc * vals[1][i1];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            std::complex<T> planeacc(0, 0);
            for (int i1 = 0; i1 < w; ++i1) {
              const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
              std::complex<T> rowacc(0, 0);
              for (int i0 = 0; i0 < w; ++i0)
                rowacc += sm[row + li0[0] + i0] * vals[0][i0];
              planeacc += rowacc * vals[1][i1];
            }
            acc += planeacc * vals[2][i2];
          }
        }
        c[j] = acc;
      }
    });
  });
}

// ---- width-specialized fast path -------------------------------------------
//
// The kernels above keep the kernel width w as a runtime value, which blocks
// unrolling and vectorization of every tap loop. The *_fast variants below
// are templated on the compile-time width W (dispatched for w = 2..16, i.e.
// every width the tolerance rule can produce); their tap loops fully unroll,
// kernel evaluation goes through es_values_fixed<W> (across-tap Horner FMAs
// or staged sqrt/exp), and the shared-memory paths accumulate into
// deinterleaved real/imag arrays so the i0 loops compile to contiguous FMA
// streams instead of interleaved complex arithmetic.

/// Per-point tabulation with compile-time width.
template <int DIM, int W, typename T>
struct PointTabF {
  T vals[DIM][W];
  std::int64_t idx[DIM][W];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values_fixed<W>(kp, px[d], vals[d]);
      for (int i = 0; i < W; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
    }
  }
};

/// Distance (in points) the per-point loops prefetch ahead. Bin-sorted
/// traversal reads the coordinate/strength arrays through a permutation —
/// random access that otherwise stalls on a cache miss per point.
inline constexpr std::size_t kPointPrefetch = 8;

template <int DIM, typename T>
inline void prefetch_point(const NuPoints<T>& pts, const std::complex<T>* c,
                           std::size_t j) {
  CF_PREFETCH(&pts.xg[j], 0);
  if constexpr (DIM > 1) CF_PREFETCH(&pts.yg[j], 0);
  if constexpr (DIM > 2) CF_PREFETCH(&pts.zg[j], 0);
  if (c) CF_PREFETCH(&c[j], 0);
}

/// Contiguous [lo, hi) slice of n items for virtual thread t of nthreads.
/// The vgpu executes a block's threads sequentially, so chunked ranges (one
/// contiguous sweep per thread) beat the CUDA-style stride-by-nthreads loop
/// on real caches while keeping the same per-thread work split.
inline std::pair<std::size_t, std::size_t> thread_chunk(std::size_t n, unsigned t,
                                                        unsigned nthreads) {
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  const std::size_t lo = std::min(n, t * chunk);
  return {lo, std::min(n, lo + chunk)};
}

/// Iterates the padded bin row by row, handing `f` maximal runs that are
/// contiguous in both the scratch (src index) and the periodic fine grid
/// (global index): f(scratch_offset, global_linear_index, run_length).
/// One division per row replaces the per-element div/mod + wrap of the
/// scalar path, and the runs give the caller vectorizable/streamed bodies.
template <int DIM, typename T, typename F>
inline void for_padded_rows(const GridSpec& grid, const std::int64_t* p,
                            const std::int64_t* delta, std::size_t row_lo,
                            std::size_t row_hi, F&& f) {
  for (std::size_t rr = row_lo; rr < row_hi; ++rr) {
    std::int64_t g1 = 0, g2 = 0;
    if constexpr (DIM >= 2) {
      const std::int64_t s1 = static_cast<std::int64_t>(rr) % p[1];
      const std::int64_t s2 = static_cast<std::int64_t>(rr) / p[1];
      g1 = wrap_index(delta[1] + s1, grid.nf[1]);
      if constexpr (DIM >= 3) g2 = wrap_index(delta[2] + s2, grid.nf[2]);
    }
    const std::int64_t rowbase = grid.nf[0] * (g1 + grid.nf[1] * g2);
    const std::size_t src0 = rr * static_cast<std::size_t>(p[0]);
    std::int64_t g0 = wrap_index(delta[0], grid.nf[0]);
    for (std::int64_t i = 0; i < p[0];) {
      const std::int64_t run = std::min<std::int64_t>(p[0] - i, grid.nf[0] - g0);
      f(src0 + static_cast<std::size_t>(i), rowbase + g0, run);
      i += run;
      g0 = 0;
    }
  }
}

template <int DIM, int W, typename T>
void spread_gm_fast(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                    const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
                    const std::uint32_t* order) {
  dev.launch_items(pts.M, 256, [&](std::size_t jj, vgpu::BlockCtx& blk) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M)
      prefetch_point<DIM>(pts, c, order ? order[jj + kPointPrefetch]
                                        : jj + kPointPrefetch);
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTabF<DIM, W, T> tab;
    tab.compute(grid, kp, px);
    const std::complex<T> cj = c[j];
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < W; ++i0)
        accum_global(blk, kp.packed, &fw[tab.idx[0][i0]], cj * tab.vals[0][i0]);
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < W; ++i1) {
        const std::complex<T> c1 = cj * tab.vals[1][i1];
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        for (int i0 = 0; i0 < W; ++i0)
          accum_global(blk, kp.packed, &fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
      }
    } else {
      for (int i2 = 0; i2 < W; ++i2) {
        const std::complex<T> c2 = cj * tab.vals[2][i2];
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        for (int i1 = 0; i1 < W; ++i1) {
          const std::complex<T> c1 = c2 * tab.vals[1][i1];
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          for (int i0 = 0; i0 < W; ++i0)
            accum_global(blk, kp.packed, &fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
        }
      }
    }
  });
}

template <int DIM, int W, typename T>
void spread_sm_fast(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
                    const SubprobSetup& subs, std::uint32_t msub) {
  constexpr int pad = (W + 1) / 2;
  constexpr int WP = pad_width(W);       // x-tap loops run the full padded width
  constexpr std::size_t slack = WP - W;  // rows may overhang by this many lanes
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    // Deinterleaved padded-bin scratch: same byte budget as the complex
    // arena (plus the tap-pad slack), but the accumulation loops see two
    // contiguous T streams. The x-loops below write WP lanes per row; the
    // lanes past W carry exact-zero kernel values, so the overhang into the
    // next row (or the slack after the last one) adds nothing.
    auto smre = blk.shared<T>(padded + slack);
    auto smim = blk.shared<T>(padded + slack);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(padded + slack, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) smre[i] = T(0);
      for (std::size_t i = lo; i < hi; ++i) smim[i] = T(0);
    });
    blk.sync_threads();

    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t j = sort.order[start + i];
        if (i + kPointPrefetch < cnt)
          prefetch_point<DIM>(pts, c, sort.order[start + i + kPointPrefetch]);
        T px[3];
        load_point<DIM>(pts, j, px);
        const T cr = c[j].real(), ci = c[j].imag();
        T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
        std::int64_t li0[DIM];
        li0[0] = es_values_padded<W>(kp, px[0], v0) - delta[0];
        if constexpr (DIM > 1) li0[1] = es_values_fixed<W>(kp, px[1], v1) - delta[1];
        if constexpr (DIM > 2) li0[2] = es_values_fixed<W>(kp, px[2], v2) - delta[2];
        if constexpr (DIM == 1) {
          T* CF_RESTRICT rre = &smre[li0[0]];
          T* CF_RESTRICT rim = &smim[li0[0]];
          for (int i0 = 0; i0 < WP; ++i0) rre[i0] += cr * v0[i0];
          for (int i0 = 0; i0 < WP; ++i0) rim[i0] += ci * v0[i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < W; ++i1) {
            const T wr = cr * v1[i1], wi = ci * v1[i1];
            const std::int64_t row = (li0[1] + i1) * p[0] + li0[0];
            T* CF_RESTRICT rre = &smre[row];
            T* CF_RESTRICT rim = &smim[row];
            for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
            for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
          }
        } else {
          for (int i2 = 0; i2 < W; ++i2) {
            const T c2r = cr * v2[i2], c2i = ci * v2[i2];
            const std::int64_t plane = (li0[2] + i2) * p[1];
            for (int i1 = 0; i1 < W; ++i1) {
              const T wr = c2r * v1[i1], wi = c2i * v1[i1];
              const std::int64_t row = (plane + li0[1] + i1) * p[0] + li0[0];
              T* CF_RESTRICT rre = &smre[row];
              T* CF_RESTRICT rim = &smim[row];
              for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
              for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
            }
          }
        }
        blk.note_shared_op(static_cast<std::uint64_t>(W) * (DIM > 1 ? W : 1) *
                           (DIM > 2 ? W : 1));
      }
    });
    blk.sync_threads();

    // Step 3 writeback, row-run structured: contiguous global atomic adds
    // with the periodic wrap resolved once per run. Untouched scratch cells
    // (exact zeros) are skipped — they cannot change fw.
    const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
      for_padded_rows<DIM, T>(
          grid, p, delta, lo, hi,
          [&](std::size_t src, std::int64_t dst, std::int64_t run) {
            for (std::int64_t i = 0; i < run; ++i) {
              const T re = smre[src + i], im = smim[src + i];
              if (re != T(0) || im != T(0))
                accum_global(blk, kp.packed, &fw[dst + i], std::complex<T>(re, im));
            }
          });
    });
  });
}

template <int DIM, int W, typename T>
void interp_fast(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                 const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                 const std::uint32_t* order) {
  dev.launch_items(pts.M, 256, [&](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M)
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr), order ? order[jj + kPointPrefetch]
                                              : jj + kPointPrefetch);
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTabF<DIM, W, T> tab;
    tab.compute(grid, kp, px);
    // Accumulate per-x-tap lanes across rows/planes (independent FMA lanes,
    // no serial reduction chain), then contract against the x weights once.
    T accre[W] = {}, accim[W] = {};
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < W; ++i0) {
        const std::complex<T> g = fw[tab.idx[0][i0]];
        accre[i0] = g.real();
        accim[i0] = g.imag();
      }
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < W; ++i1) {
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        const T s = tab.vals[1][i1];
        for (int i0 = 0; i0 < W; ++i0) {
          const std::complex<T> g = fw[row + tab.idx[0][i0]];
          accre[i0] += g.real() * s;
          accim[i0] += g.imag() * s;
        }
      }
    } else {
      for (int i2 = 0; i2 < W; ++i2) {
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        for (int i1 = 0; i1 < W; ++i1) {
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          const T s = tab.vals[2][i2] * tab.vals[1][i1];
          for (int i0 = 0; i0 < W; ++i0) {
            const std::complex<T> g = fw[row + tab.idx[0][i0]];
            accre[i0] += g.real() * s;
            accim[i0] += g.imag() * s;
          }
        }
      }
    }
    T re(0), im(0);
    for (int i0 = 0; i0 < W; ++i0) re += accre[i0] * tab.vals[0][i0];
    for (int i0 = 0; i0 < W; ++i0) im += accim[i0] * tab.vals[0][i0];
    c[j] = std::complex<T>(re, im);
  });
}

template <int DIM, int W, typename T>
void interp_sm_fast(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* fw, std::complex<T>* c,
                    const DeviceSort& sort, const SubprobSetup& subs,
                    std::uint32_t msub) {
  constexpr int pad = (W + 1) / 2;
  constexpr int WP = pad_width(W);
  constexpr std::size_t slack = WP - W;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    // Stage the padded bin of fw deinterleaved, so gathers are contiguous
    // real/imag FMA streams; the copy-in itself runs over contiguous
    // wrap-resolved row segments. The slack lanes after the last row are
    // zeroed because the padded gathers below read (and zero-weight) them.
    auto smre = blk.shared<T>(padded + slack);
    auto smim = blk.shared<T>(padded + slack);
    for (std::size_t i = padded; i < padded + slack; ++i) smre[i] = smim[i] = T(0);
    const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
      for_padded_rows<DIM, T>(grid, p, delta, lo, hi,
                              [&](std::size_t dst, std::int64_t src, std::int64_t run) {
                                for (std::int64_t i = 0; i < run; ++i) {
                                  const std::complex<T> v = fw[src + i];
                                  smre[dst + i] = v.real();
                                  smim[dst + i] = v.imag();
                                }
                              });
    });
    blk.sync_threads();

    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t j = sort.order[start + i];
        if (i + kPointPrefetch < cnt)
          prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr), sort.order[start + i + kPointPrefetch]);
        T px[3];
        load_point<DIM>(pts, j, px);
        T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
        std::int64_t li0[DIM];
        li0[0] = es_values_padded<W>(kp, px[0], v0) - delta[0];
        if constexpr (DIM > 1) li0[1] = es_values_fixed<W>(kp, px[1], v1) - delta[1];
        if constexpr (DIM > 2) li0[2] = es_values_fixed<W>(kp, px[2], v2) - delta[2];
        // Lane-wise accumulation over rows (vector FMA streams on the staged
        // contiguous copies), then one contraction against the x weights.
        T accre[WP] = {}, accim[WP] = {};
        if constexpr (DIM == 1) {
          const T* CF_RESTRICT rre = &smre[li0[0]];
          const T* CF_RESTRICT rim = &smim[li0[0]];
          for (int i0 = 0; i0 < WP; ++i0) accre[i0] = rre[i0];
          for (int i0 = 0; i0 < WP; ++i0) accim[i0] = rim[i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < W; ++i1) {
            const std::int64_t row = (li0[1] + i1) * p[0] + li0[0];
            const T* CF_RESTRICT rre = &smre[row];
            const T* CF_RESTRICT rim = &smim[row];
            const T s = v1[i1];
            for (int i0 = 0; i0 < WP; ++i0) accre[i0] += rre[i0] * s;
            for (int i0 = 0; i0 < WP; ++i0) accim[i0] += rim[i0] * s;
          }
        } else {
          for (int i2 = 0; i2 < W; ++i2) {
            const std::int64_t plane = (li0[2] + i2) * p[1];
            for (int i1 = 0; i1 < W; ++i1) {
              const std::int64_t row = (plane + li0[1] + i1) * p[0] + li0[0];
              const T* CF_RESTRICT rre = &smre[row];
              const T* CF_RESTRICT rim = &smim[row];
              const T s = v2[i2] * v1[i1];
              for (int i0 = 0; i0 < WP; ++i0) accre[i0] += rre[i0] * s;
              for (int i0 = 0; i0 < WP; ++i0) accim[i0] += rim[i0] * s;
            }
          }
        }
        T re(0), im(0);
        for (int i0 = 0; i0 < WP; ++i0) re += accre[i0] * v0[i0];
        for (int i0 = 0; i0 < WP; ++i0) im += accim[i0] * v0[i0];
        c[j] = std::complex<T>(re, im);
      }
    });
  });
}

// ---- batch-strided kernels --------------------------------------------------
//
// The many-vector ("ntransf") pipeline: B strength vectors c + b*cstride are
// spread into / interpolated from B stacked fine grids fw + b*fwstride with
// each point's tap weights evaluated ONCE for the whole stack. The GM and
// interp kernels tabulate the weights in registers and loop the batch per
// point; the SM kernels stage them in a global tap table (built in bin-sorted
// order, so every pass streams it contiguously) because the padded-bin
// scratch only holds a few planes at a time — the batch is processed in
// chunks of as many planes as fit the shared-memory arena, reusing the sort
// and subproblem data unchanged.

template <int DIM, int W, typename T>
void spread_gm_batch_fast(vgpu::Device& dev, const GridSpec& grid,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const std::uint32_t* order, int B, std::size_t cstride,
                          std::size_t fwstride) {
  dev.launch_items(pts.M, 256, [&](std::size_t jj, vgpu::BlockCtx& blk) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M) {
      const std::size_t jn =
          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch;
      prefetch_point<DIM>(pts, c, jn);
      for (int b = 1; b < B; ++b) CF_PREFETCH(&c[b * cstride + jn], 0);
    }
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTabF<DIM, W, T> tab;
    tab.compute(grid, kp, px);
    for (int b = 0; b < B; ++b) {
      const std::complex<T> cj = c[b * cstride + j];
      std::complex<T>* fwb = fw + b * fwstride;
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < W; ++i0)
          accum_global(blk, kp.packed, &fwb[tab.idx[0][i0]], cj * tab.vals[0][i0]);
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < W; ++i1) {
          const std::complex<T> c1 = cj * tab.vals[1][i1];
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          for (int i0 = 0; i0 < W; ++i0)
            accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                         c1 * tab.vals[0][i0]);
        }
      } else {
        for (int i2 = 0; i2 < W; ++i2) {
          const std::complex<T> c2 = cj * tab.vals[2][i2];
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          for (int i1 = 0; i1 < W; ++i1) {
            const std::complex<T> c1 = c2 * tab.vals[1][i1];
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            for (int i0 = 0; i0 < W; ++i0)
              accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                           c1 * tab.vals[0][i0]);
          }
        }
      }
    }
  });
}

template <int DIM, typename T>
void spread_gm_batch_impl(vgpu::Device& dev, const GridSpec& grid,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const std::uint32_t* order, int B, std::size_t cstride,
                          std::size_t fwstride) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx& blk) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    for (int b = 0; b < B; ++b) {
      const std::complex<T> cj = c[b * cstride + j];
      std::complex<T>* fwb = fw + b * fwstride;
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < w; ++i0)
          accum_global(blk, kp.packed, &fwb[tab.idx[0][i0]], cj * tab.vals[0][i0]);
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < w; ++i1) {
          const std::complex<T> c1 = cj * tab.vals[1][i1];
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          for (int i0 = 0; i0 < w; ++i0)
            accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                         c1 * tab.vals[0][i0]);
        }
      } else {
        for (int i2 = 0; i2 < w; ++i2) {
          const std::complex<T> c2 = cj * tab.vals[2][i2];
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          for (int i1 = 0; i1 < w; ++i1) {
            const std::complex<T> c1 = c2 * tab.vals[1][i1];
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            for (int i0 = 0; i0 < w; ++i0)
              accum_global(blk, kp.packed, &fwb[row + tab.idx[0][i0]],
                           c1 * tab.vals[0][i0]);
          }
        }
      }
    }
  });
}

template <int DIM, int W, typename T>
void interp_batch_fast(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                       const NuPoints<T>& pts, const std::complex<T>* fw,
                       std::complex<T>* c, const std::uint32_t* order, int B,
                       std::size_t cstride, std::size_t fwstride) {
  dev.launch_items(pts.M, 256, [&](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M) {
      const std::size_t jn =
          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch;
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr), jn);
      for (int b = 0; b < B; ++b) CF_PREFETCH(&c[b * cstride + jn], 1);
    }
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTabF<DIM, W, T> tab;
    tab.compute(grid, kp, px);
    for (int b = 0; b < B; ++b) {
      const std::complex<T>* fwb = fw + b * fwstride;
      T accre[W] = {}, accim[W] = {};
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < W; ++i0) {
          const std::complex<T> g = fwb[tab.idx[0][i0]];
          accre[i0] = g.real();
          accim[i0] = g.imag();
        }
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < W; ++i1) {
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          const T s = tab.vals[1][i1];
          for (int i0 = 0; i0 < W; ++i0) {
            const std::complex<T> g = fwb[row + tab.idx[0][i0]];
            accre[i0] += g.real() * s;
            accim[i0] += g.imag() * s;
          }
        }
      } else {
        for (int i2 = 0; i2 < W; ++i2) {
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          for (int i1 = 0; i1 < W; ++i1) {
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            const T s = tab.vals[2][i2] * tab.vals[1][i1];
            for (int i0 = 0; i0 < W; ++i0) {
              const std::complex<T> g = fwb[row + tab.idx[0][i0]];
              accre[i0] += g.real() * s;
              accim[i0] += g.imag() * s;
            }
          }
        }
      }
      T re(0), im(0);
      for (int i0 = 0; i0 < W; ++i0) re += accre[i0] * tab.vals[0][i0];
      for (int i0 = 0; i0 < W; ++i0) im += accim[i0] * tab.vals[0][i0];
      c[b * cstride + j] = std::complex<T>(re, im);
    }
  });
}

template <int DIM, typename T>
void interp_batch_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                       const NuPoints<T>& pts, const std::complex<T>* fw,
                       std::complex<T>* c, const std::uint32_t* order, int B,
                       std::size_t cstride, std::size_t fwstride) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    for (int b = 0; b < B; ++b) {
      const std::complex<T>* fwb = fw + b * fwstride;
      std::complex<T> acc(0, 0);
      if constexpr (DIM == 1) {
        for (int i0 = 0; i0 < w; ++i0) acc += fwb[tab.idx[0][i0]] * tab.vals[0][i0];
      } else if constexpr (DIM == 2) {
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
          std::complex<T> rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0)
            rowacc += fwb[row + tab.idx[0][i0]] * tab.vals[0][i0];
          acc += rowacc * tab.vals[1][i1];
        }
      } else {
        for (int i2 = 0; i2 < w; ++i2) {
          const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
          std::complex<T> planeacc(0, 0);
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
            std::complex<T> rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0)
              rowacc += fwb[row + tab.idx[0][i0]] * tab.vals[0][i0];
            planeacc += rowacc * tab.vals[1][i1];
          }
          acc += planeacc * tab.vals[2][i2];
        }
      }
      c[b * cstride + j] = acc;
    }
  });
}

/// Per-point tap values (rows of DIM * wpad, zero tail past w) and leftmost
/// grid indices, precomputed once per batched SM spread. Rows are stored at
/// the point's *sorted* position, so the per-subproblem point loops of every
/// batch pass read the table as one contiguous stream.
template <typename T>
struct TapTable {
  vgpu::device_buffer<T> vals;
  vgpu::device_buffer<std::int32_t> l0;
  int wpad = 0;
};

/// W > 0 evaluates through the width-specialized path (identical values to
/// the single-vector fast kernels); W == 0 through the runtime-w scalar path.
template <int DIM, int W, typename T>
TapTable<T> build_tap_table(vgpu::Device& dev, const KernelParams<T>& kp,
                            const NuPoints<T>& pts, const std::uint32_t* order) {
  TapTable<T> tt;
  tt.wpad = W > 0 ? pad_width(W) : pad_width(kp.w);
  tt.vals = vgpu::device_buffer<T>(dev, pts.M * static_cast<std::size_t>(DIM * tt.wpad));
  tt.l0 = vgpu::device_buffer<std::int32_t>(dev, pts.M * static_cast<std::size_t>(DIM));
  const int w = kp.w, wpad = tt.wpad;
  dev.launch_items(pts.M, 256, [&, w, wpad](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    if (jj + kPointPrefetch < pts.M)
      prefetch_point<DIM>(pts, static_cast<const std::complex<T>*>(nullptr),
                          order ? order[jj + kPointPrefetch] : jj + kPointPrefetch);
    T px[3];
    load_point<DIM>(pts, j, px);
    T* row = &tt.vals[jj * static_cast<std::size_t>(DIM * wpad)];
    std::int32_t* lrow = &tt.l0[jj * DIM];
    for (int d = 0; d < DIM; ++d) {
      T* v = row + d * wpad;
      std::int64_t l0;
      if constexpr (W > 0) {
        l0 = es_values_padded<W>(kp, px[d], v);
      } else {
        l0 = es_values(kp, px[d], v);
        for (int i = w; i < wpad; ++i) v[i] = T(0);
      }
      lrow[d] = static_cast<std::int32_t>(l0);
    }
  });
  return tt;
}

template <int DIM, int W, typename T>
void spread_sm_batch_fast(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const DeviceSort& sort, const SubprobSetup& subs,
                          std::uint32_t msub, const TapTable<T>& tt, int B,
                          std::size_t cstride, std::size_t fwstride) {
  constexpr int pad = (W + 1) / 2;
  constexpr int WP = pad_width(W);
  constexpr std::size_t slack = WP - W;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const std::size_t plane = padded + slack;  // per-batch-plane scratch stride
  // Planes held at once: as many deinterleaved padded bins as the arena
  // holds. The batch chunks loop INSIDE each subproblem block, so a
  // subproblem's tap-table slice is streamed from global memory once and hit
  // in cache by the remaining chunks.
  const int nbmax = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(B),
      std::max<std::size_t>(1, dev.props.shared_mem_per_block / (2 * plane * sizeof(T)))));

  dev.launch(subs.nsubprob, 128, [&, padded, plane, nbmax](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc3[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc3[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc3[d] * bins.m[d] - pad;
    const std::uint32_t start = sort.bin_start[b] + off;
    const std::size_t nrows = padded / static_cast<std::size_t>(p[0]);

    auto smre = blk.shared<T>(plane * nbmax);
    auto smim = blk.shared<T>(plane * nbmax);
    for (int b0 = 0; b0 < B; b0 += nbmax) {
      const int nb = std::min(nbmax, B - b0);
      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(plane * nb, t, blk.nthreads);
        for (std::size_t i = lo; i < hi; ++i) smre[i] = T(0);
        for (std::size_t i = lo; i < hi; ++i) smim[i] = T(0);
      });
      blk.sync_threads();

      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(cnt, t, blk.nthreads);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t j = sort.order[start + i];
          if (i + kPointPrefetch < cnt) {
            // The strength reads go through the sort permutation — random
            // access into every active c plane; prefetch them ahead like the
            // single-vector kernel does.
            const std::size_t jn = sort.order[start + i + kPointPrefetch];
            for (int bb = 0; bb < nb; ++bb)
              CF_PREFETCH(&c[(b0 + bb) * cstride + jn], 0);
          }
          const T* row = &tt.vals[(start + i) * static_cast<std::size_t>(DIM * WP)];
          const std::int32_t* lrow = &tt.l0[(start + i) * DIM];
          // Stage the tap row into stack arrays: the accumulation loops then
          // compile exactly like the single-vector kernel's (the in-memory
          // operands otherwise defeat the vectorizer).
          T v0[WP], v1[DIM > 1 ? W : 1], v2[DIM > 2 ? W : 1];
          for (int i0 = 0; i0 < WP; ++i0) v0[i0] = row[i0];
          if constexpr (DIM > 1)
            for (int i1 = 0; i1 < W; ++i1) v1[i1] = row[WP + i1];
          if constexpr (DIM > 2)
            for (int i2 = 0; i2 < W; ++i2) v2[i2] = row[2 * WP + i2];
          std::int64_t li0[DIM];
          for (int d = 0; d < DIM; ++d) li0[d] = lrow[d] - delta[d];
          for (int bb = 0; bb < nb; ++bb) {
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            const T cr = cj.real(), ci = cj.imag();
            T* CF_RESTRICT sre = &smre[plane * bb];
            T* CF_RESTRICT sim = &smim[plane * bb];
            if constexpr (DIM == 1) {
              T* CF_RESTRICT rre = sre + li0[0];
              T* CF_RESTRICT rim = sim + li0[0];
              for (int i0 = 0; i0 < WP; ++i0) rre[i0] += cr * v0[i0];
              for (int i0 = 0; i0 < WP; ++i0) rim[i0] += ci * v0[i0];
            } else if constexpr (DIM == 2) {
              for (int i1 = 0; i1 < W; ++i1) {
                const T wr = cr * v1[i1], wi = ci * v1[i1];
                const std::int64_t rrow = (li0[1] + i1) * p[0] + li0[0];
                T* CF_RESTRICT rre = sre + rrow;
                T* CF_RESTRICT rim = sim + rrow;
                for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
              }
            } else {
              for (int i2 = 0; i2 < W; ++i2) {
                const T c2r = cr * v2[i2], c2i = ci * v2[i2];
                const std::int64_t pl = (li0[2] + i2) * p[1];
                for (int i1 = 0; i1 < W; ++i1) {
                  const T wr = c2r * v1[i1], wi = c2i * v1[i1];
                  const std::int64_t rrow = (pl + li0[1] + i1) * p[0] + li0[0];
                  T* CF_RESTRICT rre = sre + rrow;
                  T* CF_RESTRICT rim = sim + rrow;
                  for (int i0 = 0; i0 < WP; ++i0) rre[i0] += wr * v0[i0];
                  for (int i0 = 0; i0 < WP; ++i0) rim[i0] += wi * v0[i0];
                }
              }
            }
          }
          blk.note_shared_op(static_cast<std::uint64_t>(nb) * W * (DIM > 1 ? W : 1) *
                             (DIM > 2 ? W : 1));
        }
      });
      blk.sync_threads();

      blk.for_each_thread([&](unsigned t) {
        const auto [lo, hi] = thread_chunk(nrows, t, blk.nthreads);
        for (int bb = 0; bb < nb; ++bb) {
          std::complex<T>* fwb = fw + (b0 + bb) * fwstride;
          const T* sre = &smre[plane * bb];
          const T* sim = &smim[plane * bb];
          for_padded_rows<DIM, T>(
              grid, p, delta, lo, hi,
              [&](std::size_t src, std::int64_t dst, std::int64_t run) {
                for (std::int64_t i = 0; i < run; ++i) {
                  const T re = sre[src + i], im = sim[src + i];
                  if (re != T(0) || im != T(0))
                    accum_global(blk, kp.packed, &fwb[dst + i], std::complex<T>(re, im));
                }
              });
        }
      });
      blk.sync_threads();
    }
  });
}

template <int DIM, typename T>
void spread_sm_batch_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                          const KernelParams<T>& kp, const NuPoints<T>& pts,
                          const std::complex<T>* c, std::complex<T>* fw,
                          const DeviceSort& sort, const SubprobSetup& subs,
                          std::uint32_t msub, const TapTable<T>& tt, int B,
                          std::size_t cstride, std::size_t fwstride) {
  const int w = kp.w;
  const int wpad = tt.wpad;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);
  const int nbmax = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(B),
      std::max<std::size_t>(
          1, dev.props.shared_mem_per_block / (padded * sizeof(std::complex<T>)))));

  dev.launch(subs.nsubprob, 128, [&, w, wpad, pad, padded, nbmax](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc3[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc3[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc3[d] * bins.m[d] - pad;
    const std::uint32_t start = sort.bin_start[b] + off;

    // Batch chunks loop inside the block (see the fast variant): one
    // tap-table stream per subproblem, not one per chunk.
    auto sm = blk.shared<std::complex<T>>(padded * nbmax);
    for (int b0 = 0; b0 < B; b0 += nbmax) {
      const int nb = std::min(nbmax, B - b0);
      blk.for_each_thread([&](unsigned t) {
        for (std::size_t i = t; i < padded * nb; i += blk.nthreads)
          sm[i] = std::complex<T>(0, 0);
      });
      blk.sync_threads();

      blk.for_each_thread([&](unsigned t) {
        for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
          const std::size_t j = sort.order[start + i];
          if (i + kPointPrefetch < cnt) {
            const std::size_t jn = sort.order[start + i + kPointPrefetch];
            for (int bb = 0; bb < nb; ++bb)
              CF_PREFETCH(&c[(b0 + bb) * cstride + jn], 0);
          }
          const T* row = &tt.vals[(start + i) * static_cast<std::size_t>(DIM * wpad)];
          const std::int32_t* lrow = &tt.l0[(start + i) * DIM];
          std::int64_t li0[DIM];
          for (int d = 0; d < DIM; ++d) li0[d] = lrow[d] - delta[d];
          for (int bb = 0; bb < nb; ++bb) {
            const std::complex<T> cj = c[(b0 + bb) * cstride + j];
            std::complex<T>* smb = &sm[padded * bb];
            if constexpr (DIM == 1) {
              for (int i0 = 0; i0 < w; ++i0) smb[li0[0] + i0] += cj * row[i0];
            } else if constexpr (DIM == 2) {
              for (int i1 = 0; i1 < w; ++i1) {
                const std::complex<T> c1 = cj * row[wpad + i1];
                const std::int64_t rrow = (li0[1] + i1) * p[0];
                for (int i0 = 0; i0 < w; ++i0)
                  smb[rrow + li0[0] + i0] += c1 * row[i0];
              }
            } else {
              for (int i2 = 0; i2 < w; ++i2) {
                const std::complex<T> c2 = cj * row[2 * wpad + i2];
                const std::int64_t pl = (li0[2] + i2) * p[1];
                for (int i1 = 0; i1 < w; ++i1) {
                  const std::complex<T> c1 = c2 * row[wpad + i1];
                  const std::int64_t rrow = (pl + li0[1] + i1) * p[0];
                  for (int i0 = 0; i0 < w; ++i0)
                    smb[rrow + li0[0] + i0] += c1 * row[i0];
                }
              }
            }
          }
          blk.note_shared_op(static_cast<std::uint64_t>(nb) * w * (DIM > 1 ? w : 1) *
                             (DIM > 2 ? w : 1));
        }
      });
      blk.sync_threads();

      // Writeback: resolve each padded cell's wrap once, then add all planes.
      blk.for_each_thread([&](unsigned t) {
        for (std::size_t i = t; i < padded; i += blk.nthreads) {
          std::int64_t s[3];
          std::int64_t r = static_cast<std::int64_t>(i);
          s[0] = r % p[0];
          r /= p[0];
          s[1] = r % p[1];
          s[2] = r / p[1];
          std::int64_t g[3] = {0, 0, 0};
          for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
          const std::int64_t lin = g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2]);
          for (int bb = 0; bb < nb; ++bb)
            accum_global(blk, kp.packed, &fw[(b0 + bb) * fwstride + lin],
                         sm[padded * bb + i]);
        }
      });
      blk.sync_threads();
    }
  });
}

// ---- dispatch ---------------------------------------------------------------

/// Invokes f(integral_constant<int, w>) for w in [2, kMaxWidth]; returns
/// false (leaving the runtime-w fallback to the caller) otherwise.
template <typename F>
bool dispatch_width(int w, F&& f) {
  switch (w) {
#define CF_WIDTH_CASE(W_)                        \
  case W_:                                       \
    f(std::integral_constant<int, W_>{});        \
    return true;
    CF_WIDTH_CASE(2)
    CF_WIDTH_CASE(3)
    CF_WIDTH_CASE(4)
    CF_WIDTH_CASE(5)
    CF_WIDTH_CASE(6)
    CF_WIDTH_CASE(7)
    CF_WIDTH_CASE(8)
    CF_WIDTH_CASE(9)
    CF_WIDTH_CASE(10)
    CF_WIDTH_CASE(11)
    CF_WIDTH_CASE(12)
    CF_WIDTH_CASE(13)
    CF_WIDTH_CASE(14)
    CF_WIDTH_CASE(15)
    CF_WIDTH_CASE(16)
#undef CF_WIDTH_CASE
  }
  return false;
}

template <typename T, typename F1, typename F2, typename F3>
void dispatch_dim(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 3: f3(); break;
    default: throw std::invalid_argument("spread: dim must be 1..3");
  }
}

}  // namespace

namespace {

/// True if the deinterleaved fast-path scratch — padded bin plus the tap-pad
/// slack its overhanging x-loops write — fits the per-block arena. Same byte
/// budget as sm_fits except for the few slack lanes, so this can only veto
/// the fast path in exact-fit corner cases (the scalar fallback still runs).
template <typename T>
bool sm_scratch_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                     int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  const std::size_t slack = static_cast<std::size_t>(pad_width(w) - w);
  return 2 * (padded + slack) * sizeof(T) <= dev.props.shared_mem_per_block;
}

template <int DIM, typename T>
void spread_gm_any(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                   const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
                   const std::uint32_t* order) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        spread_gm_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, c, fw, order);
      }))
    return;
  spread_gm_impl<DIM>(dev, grid, kp, pts, c, fw, order);
}

template <int DIM, typename T>
void spread_sm_any(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                   const KernelParams<T>& kp, const NuPoints<T>& pts,
                   const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
                   const SubprobSetup& subs, std::uint32_t msub) {
  if (kp.fast && sm_scratch_fits<T>(dev, grid, bins, kp.w) &&
      dispatch_width(kp.w, [&](auto W) {
        spread_sm_fast<DIM, decltype(W)::value>(dev, grid, bins, kp, pts, c, fw, sort,
                                                subs, msub);
      }))
    return;
  spread_sm_impl<DIM>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub);
}

template <int DIM, typename T>
void interp_any(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                const std::uint32_t* order) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        interp_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, fw, c, order);
      }))
    return;
  interp_impl<DIM>(dev, grid, kp, pts, fw, c, order);
}

template <int DIM, typename T>
void interp_sm_any(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                   const KernelParams<T>& kp, const NuPoints<T>& pts,
                   const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
                   const SubprobSetup& subs, std::uint32_t msub) {
  if (kp.fast && sm_scratch_fits<T>(dev, grid, bins, kp.w) &&
      dispatch_width(kp.w, [&](auto W) {
        interp_sm_fast<DIM, decltype(W)::value>(dev, grid, bins, kp, pts, fw, c, sort,
                                                subs, msub);
      }))
    return;
  interp_sm_impl<DIM>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub);
}

template <int DIM, typename T>
void spread_gm_batch_any(vgpu::Device& dev, const GridSpec& grid,
                         const KernelParams<T>& kp, const NuPoints<T>& pts,
                         const std::complex<T>* c, std::complex<T>* fw,
                         const std::uint32_t* order, int B, std::size_t cstride,
                         std::size_t fwstride) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        spread_gm_batch_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, c, fw, order,
                                                      B, cstride, fwstride);
      }))
    return;
  spread_gm_batch_impl<DIM>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride);
}

template <int DIM, typename T>
void spread_sm_batch_any(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                         const KernelParams<T>& kp, const NuPoints<T>& pts,
                         const std::complex<T>* c, std::complex<T>* fw,
                         const DeviceSort& sort, const SubprobSetup& subs,
                         std::uint32_t msub, int B, std::size_t cstride,
                         std::size_t fwstride) {
  if (kp.fast && sm_scratch_fits<T>(dev, grid, bins, kp.w) &&
      dispatch_width(kp.w, [&](auto W) {
        const auto tt = build_tap_table<DIM, decltype(W)::value>(dev, kp, pts,
                                                                 sort.order.data());
        spread_sm_batch_fast<DIM, decltype(W)::value>(dev, grid, bins, kp, pts, c, fw,
                                                      sort, subs, msub, tt, B, cstride,
                                                      fwstride);
      }))
    return;
  const auto tt = build_tap_table<DIM, 0>(dev, kp, pts, sort.order.data());
  spread_sm_batch_impl<DIM>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, tt, B,
                            cstride, fwstride);
}

template <int DIM, typename T>
void interp_batch_any(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                      const NuPoints<T>& pts, const std::complex<T>* fw,
                      std::complex<T>* c, const std::uint32_t* order, int B,
                      std::size_t cstride, std::size_t fwstride) {
  if (kp.fast && dispatch_width(kp.w, [&](auto W) {
        interp_batch_fast<DIM, decltype(W)::value>(dev, grid, kp, pts, fw, c, order, B,
                                                   cstride, fwstride);
      }))
    return;
  interp_batch_impl<DIM>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride);
}

}  // namespace

template <typename T>
void spread_gm(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
               const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
               const std::uint32_t* order) {
  dispatch_dim<T>(
      grid.dim, [&] { spread_gm_any<1>(dev, grid, kp, pts, c, fw, order); },
      [&] { spread_gm_any<2>(dev, grid, kp, pts, c, fw, order); },
      [&] { spread_gm_any<3>(dev, grid, kp, pts, c, fw, order); });
}

template <typename T>
bool sm_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  return padded * sizeof(std::complex<T>) <= dev.props.shared_mem_per_block;
}

template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("spread_sm: padded bin exceeds shared memory (use GM-sort)");
  dispatch_dim<T>(
      grid.dim,
      [&] { spread_sm_any<1>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); },
      [&] { spread_sm_any<2>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); },
      [&] { spread_sm_any<3>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); });
}

template <typename T>
void interp(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
            const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
            const std::uint32_t* order) {
  dispatch_dim<T>(
      grid.dim, [&] { interp_any<1>(dev, grid, kp, pts, fw, c, order); },
      [&] { interp_any<2>(dev, grid, kp, pts, fw, c, order); },
      [&] { interp_any<3>(dev, grid, kp, pts, fw, c, order); });
}

template <typename T>
void interp_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("interp_sm: padded bin exceeds shared memory");
  dispatch_dim<T>(
      grid.dim,
      [&] { interp_sm_any<1>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_any<2>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_any<3>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); });
}

template <typename T>
void spread_gm_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                     const NuPoints<T>& pts, const std::complex<T>* c,
                     std::complex<T>* fw, const std::uint32_t* order, int B,
                     std::size_t cstride, std::size_t fwstride) {
  B = std::max(1, B);
  dispatch_dim<T>(
      grid.dim,
      [&] { spread_gm_batch_any<1>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); },
      [&] { spread_gm_batch_any<2>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); },
      [&] { spread_gm_batch_any<3>(dev, grid, kp, pts, c, fw, order, B, cstride, fwstride); });
}

template <typename T>
void spread_sm_batch(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                     const KernelParams<T>& kp, const NuPoints<T>& pts,
                     const std::complex<T>* c, std::complex<T>* fw,
                     const DeviceSort& sort, const SubprobSetup& subs, std::uint32_t msub,
                     int B, std::size_t cstride, std::size_t fwstride) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("spread_sm: padded bin exceeds shared memory (use GM-sort)");
  B = std::max(1, B);
  dispatch_dim<T>(
      grid.dim,
      [&] {
        spread_sm_batch_any<1>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, B,
                               cstride, fwstride);
      },
      [&] {
        spread_sm_batch_any<2>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, B,
                               cstride, fwstride);
      },
      [&] {
        spread_sm_batch_any<3>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub, B,
                               cstride, fwstride);
      });
}

template <typename T>
void interp_batch(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                  const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                  const std::uint32_t* order, int B, std::size_t cstride,
                  std::size_t fwstride) {
  B = std::max(1, B);
  dispatch_dim<T>(
      grid.dim,
      [&] { interp_batch_any<1>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); },
      [&] { interp_batch_any<2>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); },
      [&] { interp_batch_any<3>(dev, grid, kp, pts, fw, c, order, B, cstride, fwstride); });
}

#define CF_INSTANTIATE(T)                                                                \
  template void spread_gm<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,    \
                             const NuPoints<T>&, const std::complex<T>*,                \
                             std::complex<T>*, const std::uint32_t*);                   \
  template bool sm_fits<T>(const vgpu::Device&, const GridSpec&, const BinSpec&, int);  \
  template void spread_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*, const DeviceSort&,\
                             const SubprobSetup&, std::uint32_t);                       \
  template void interp<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,       \
                          const NuPoints<T>&, const std::complex<T>*, std::complex<T>*, \
                          const std::uint32_t*);                                        \
  template void interp_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*,                  \
                             const DeviceSort&, const SubprobSetup&, std::uint32_t);    \
  template void spread_gm_batch<T>(vgpu::Device&, const GridSpec&,                      \
                                   const KernelParams<T>&, const NuPoints<T>&,          \
                                   const std::complex<T>*, std::complex<T>*,            \
                                   const std::uint32_t*, int, std::size_t, std::size_t);\
  template void spread_sm_batch<T>(vgpu::Device&, const GridSpec&, const BinSpec&,      \
                                   const KernelParams<T>&, const NuPoints<T>&,          \
                                   const std::complex<T>*, std::complex<T>*,            \
                                   const DeviceSort&, const SubprobSetup&,              \
                                   std::uint32_t, int, std::size_t, std::size_t);       \
  template void interp_batch<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&, \
                                const NuPoints<T>&, const std::complex<T>*,             \
                                std::complex<T>*, const std::uint32_t*, int,            \
                                std::size_t, std::size_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
