#include "spreadinterp/spread.hpp"

#include <algorithm>

namespace cf::spread {

namespace {

/// Per-point kernel tabulation: w values and wrapped global indices per axis.
template <int DIM, typename T>
struct PointTab {
  T vals[DIM][kMaxWidth];
  std::int64_t idx[DIM][kMaxWidth];

  void compute(const GridSpec& grid, const KernelParams<T>& kp, const T* px) {
    for (int d = 0; d < DIM; ++d) {
      const std::int64_t l0 = es_values(kp, px[d], vals[d]);
      for (int i = 0; i < kp.w; ++i) idx[d][i] = wrap_index(l0 + i, grid.nf[d]);
    }
  }
};

template <int DIM, typename T>
inline void load_point(const NuPoints<T>& pts, std::size_t j, T* px) {
  px[0] = pts.xg[j];
  if constexpr (DIM > 1) px[1] = pts.yg[j];
  if constexpr (DIM > 2) px[2] = pts.zg[j];
}

template <int DIM, typename T>
void spread_gm_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                    const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
                    const std::uint32_t* order) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx& blk) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    const std::complex<T> cj = c[j];
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < w; ++i0)
        blk.atomic_add(&fw[tab.idx[0][i0]], cj * tab.vals[0][i0]);
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const std::complex<T> c1 = cj * tab.vals[1][i1];
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        for (int i0 = 0; i0 < w; ++i0)
          blk.atomic_add(&fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        const std::complex<T> c2 = cj * tab.vals[2][i2];
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        for (int i1 = 0; i1 < w; ++i1) {
          const std::complex<T> c1 = c2 * tab.vals[1][i1];
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          for (int i0 = 0; i0 < w; ++i0)
            blk.atomic_add(&fw[row + tab.idx[0][i0]], c1 * tab.vals[0][i0]);
        }
      }
    }
  });
}

template <int DIM, typename T>
void spread_sm_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
                    const SubprobSetup& subs, std::uint32_t msub) {
  const int w = kp.w;
  const int pad = (w + 1) / 2;  // ceil(w/2)
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;  // paper eq. (13)
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, w, pad, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    // Bin Cartesian coordinates and padded-bin offset Delta (paper Fig. 1).
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    auto sm = blk.shared<std::complex<T>>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) sm[i] = std::complex<T>(0, 0);
    });
    blk.sync_threads();

    // Step 2: spread this subproblem's points into the shared padded bin.
    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort.order[start + i];
        T px[3];
        load_point<DIM>(pts, j, px);
        const std::complex<T> cj = c[j];
        T vals[DIM][kMaxWidth];
        std::int64_t li0[DIM];
        for (int d = 0; d < DIM; ++d)
          li0[d] = es_values(kp, px[d], vals[d]) - delta[d];  // local, no wrap needed
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0) sm[li0[0] + i0] += cj * vals[0][i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::complex<T> c1 = cj * vals[1][i1];
            const std::int64_t row = (li0[1] + i1) * p[0];
            for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            const std::complex<T> c2 = cj * vals[2][i2];
            const std::int64_t plane = (li0[2] + i2) * p[1];
            for (int i1 = 0; i1 < w; ++i1) {
              const std::complex<T> c1 = c2 * vals[1][i1];
              const std::int64_t row = (plane + li0[1] + i1) * p[0];
              for (int i0 = 0; i0 < w; ++i0) sm[row + li0[0] + i0] += c1 * vals[0][i0];
            }
          }
        }
        blk.note_shared_op(static_cast<std::uint64_t>(w) * (DIM > 1 ? w : 1) *
                           (DIM > 2 ? w : 1));
      }
    });
    blk.sync_threads();

    // Step 3: atomic add the padded bin back into global memory, with
    // periodic wrapping (paper eq. (15)).
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
        const std::int64_t lin = g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2]);
        blk.atomic_add(&fw[lin], sm[i]);
      }
    });
  });
}

template <int DIM, typename T>
void interp_impl(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
                 const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
                 const std::uint32_t* order) {
  const int w = kp.w;
  dev.launch_items(pts.M, 256, [&, w](std::size_t jj, vgpu::BlockCtx&) {
    const std::size_t j = order ? order[jj] : jj;
    T px[3];
    load_point<DIM>(pts, j, px);
    PointTab<DIM, T> tab;
    tab.compute(grid, kp, px);
    std::complex<T> acc(0, 0);
    if constexpr (DIM == 1) {
      for (int i0 = 0; i0 < w; ++i0) acc += fw[tab.idx[0][i0]] * tab.vals[0][i0];
    } else if constexpr (DIM == 2) {
      for (int i1 = 0; i1 < w; ++i1) {
        const std::int64_t row = tab.idx[1][i1] * grid.nf[0];
        std::complex<T> rowacc(0, 0);
        for (int i0 = 0; i0 < w; ++i0) rowacc += fw[row + tab.idx[0][i0]] * tab.vals[0][i0];
        acc += rowacc * tab.vals[1][i1];
      }
    } else {
      for (int i2 = 0; i2 < w; ++i2) {
        const std::int64_t plane = tab.idx[2][i2] * grid.nf[1];
        std::complex<T> planeacc(0, 0);
        for (int i1 = 0; i1 < w; ++i1) {
          const std::int64_t row = (plane + tab.idx[1][i1]) * grid.nf[0];
          std::complex<T> rowacc(0, 0);
          for (int i0 = 0; i0 < w; ++i0)
            rowacc += fw[row + tab.idx[0][i0]] * tab.vals[0][i0];
          planeacc += rowacc * tab.vals[1][i1];
        }
        acc += planeacc * tab.vals[2][i2];
      }
    }
    c[j] = acc;
  });
}

template <int DIM, typename T>
void interp_sm_impl(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
                    const KernelParams<T>& kp, const NuPoints<T>& pts,
                    const std::complex<T>* fw, std::complex<T>* c,
                    const DeviceSort& sort, const SubprobSetup& subs,
                    std::uint32_t msub) {
  const int w = kp.w;
  const int pad = (w + 1) / 2;
  std::int64_t p[3] = {1, 1, 1};
  for (int d = 0; d < DIM; ++d) p[d] = bins.m[d] + 2 * pad;
  const std::size_t padded = static_cast<std::size_t>(p[0] * p[1] * p[2]);

  dev.launch(subs.nsubprob, 128, [&, w, pad, padded](vgpu::BlockCtx& blk) {
    const std::uint32_t k = blk.block_id;
    const std::uint32_t b = subs.subprob_bin[k];
    const std::uint32_t off = subs.subprob_offset[k];
    const std::uint32_t cnt = std::min(msub, sort.bin_counts[b] - off);
    std::int64_t bc[3], delta[3] = {0, 0, 0};
    std::int64_t rem = b;
    for (int d = 0; d < 3; ++d) {
      bc[d] = rem % bins.nbins[d];
      rem /= bins.nbins[d];
    }
    for (int d = 0; d < DIM; ++d) delta[d] = bc[d] * bins.m[d] - pad;

    // Stage the padded bin of the fine grid into shared memory.
    auto sm = blk.shared<std::complex<T>>(padded);
    blk.for_each_thread([&](unsigned t) {
      for (std::size_t i = t; i < padded; i += blk.nthreads) {
        std::int64_t s[3];
        std::int64_t r = static_cast<std::int64_t>(i);
        s[0] = r % p[0];
        r /= p[0];
        s[1] = r % p[1];
        s[2] = r / p[1];
        std::int64_t g[3] = {0, 0, 0};
        for (int d = 0; d < DIM; ++d) g[d] = wrap_index(delta[d] + s[d], grid.nf[d]);
        sm[i] = fw[g[0] + grid.nf[0] * (g[1] + grid.nf[1] * g[2])];
      }
    });
    blk.sync_threads();

    // Gather each point from the staged copy (local coords, no wrap).
    const std::uint32_t start = sort.bin_start[b] + off;
    blk.for_each_thread([&](unsigned t) {
      for (std::uint32_t i = t; i < cnt; i += blk.nthreads) {
        const std::size_t j = sort.order[start + i];
        T px[3];
        load_point<DIM>(pts, j, px);
        T vals[DIM][kMaxWidth];
        std::int64_t li0[DIM];
        for (int d = 0; d < DIM; ++d)
          li0[d] = es_values(kp, px[d], vals[d]) - delta[d];
        std::complex<T> acc(0, 0);
        if constexpr (DIM == 1) {
          for (int i0 = 0; i0 < w; ++i0) acc += sm[li0[0] + i0] * vals[0][i0];
        } else if constexpr (DIM == 2) {
          for (int i1 = 0; i1 < w; ++i1) {
            const std::int64_t row = (li0[1] + i1) * p[0];
            std::complex<T> rowacc(0, 0);
            for (int i0 = 0; i0 < w; ++i0) rowacc += sm[row + li0[0] + i0] * vals[0][i0];
            acc += rowacc * vals[1][i1];
          }
        } else {
          for (int i2 = 0; i2 < w; ++i2) {
            std::complex<T> planeacc(0, 0);
            for (int i1 = 0; i1 < w; ++i1) {
              const std::int64_t row = ((li0[2] + i2) * p[1] + li0[1] + i1) * p[0];
              std::complex<T> rowacc(0, 0);
              for (int i0 = 0; i0 < w; ++i0)
                rowacc += sm[row + li0[0] + i0] * vals[0][i0];
              planeacc += rowacc * vals[1][i1];
            }
            acc += planeacc * vals[2][i2];
          }
        }
        c[j] = acc;
      }
    });
  });
}

template <typename T, typename F1, typename F2, typename F3>
void dispatch_dim(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1: f1(); break;
    case 2: f2(); break;
    case 3: f3(); break;
    default: throw std::invalid_argument("spread: dim must be 1..3");
  }
}

}  // namespace

template <typename T>
void spread_gm(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
               const NuPoints<T>& pts, const std::complex<T>* c, std::complex<T>* fw,
               const std::uint32_t* order) {
  dispatch_dim<T>(
      grid.dim, [&] { spread_gm_impl<1>(dev, grid, kp, pts, c, fw, order); },
      [&] { spread_gm_impl<2>(dev, grid, kp, pts, c, fw, order); },
      [&] { spread_gm_impl<3>(dev, grid, kp, pts, c, fw, order); });
}

template <typename T>
bool sm_fits(const vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins, int w) {
  const int pad = (w + 1) / 2;
  std::size_t padded = 1;
  for (int d = 0; d < grid.dim; ++d)
    padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
  return padded * sizeof(std::complex<T>) <= dev.props.shared_mem_per_block;
}

template <typename T>
void spread_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* c, std::complex<T>* fw, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("spread_sm: padded bin exceeds shared memory (use GM-sort)");
  dispatch_dim<T>(
      grid.dim,
      [&] { spread_sm_impl<1>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); },
      [&] { spread_sm_impl<2>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); },
      [&] { spread_sm_impl<3>(dev, grid, bins, kp, pts, c, fw, sort, subs, msub); });
}

template <typename T>
void interp(vgpu::Device& dev, const GridSpec& grid, const KernelParams<T>& kp,
            const NuPoints<T>& pts, const std::complex<T>* fw, std::complex<T>* c,
            const std::uint32_t* order) {
  dispatch_dim<T>(
      grid.dim, [&] { interp_impl<1>(dev, grid, kp, pts, fw, c, order); },
      [&] { interp_impl<2>(dev, grid, kp, pts, fw, c, order); },
      [&] { interp_impl<3>(dev, grid, kp, pts, fw, c, order); });
}

template <typename T>
void interp_sm(vgpu::Device& dev, const GridSpec& grid, const BinSpec& bins,
               const KernelParams<T>& kp, const NuPoints<T>& pts,
               const std::complex<T>* fw, std::complex<T>* c, const DeviceSort& sort,
               const SubprobSetup& subs, std::uint32_t msub) {
  if (!sm_fits<T>(dev, grid, bins, kp.w))
    throw std::runtime_error("interp_sm: padded bin exceeds shared memory");
  dispatch_dim<T>(
      grid.dim,
      [&] { interp_sm_impl<1>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_impl<2>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); },
      [&] { interp_sm_impl<3>(dev, grid, bins, kp, pts, fw, c, sort, subs, msub); });
}

#define CF_INSTANTIATE(T)                                                                \
  template void spread_gm<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,    \
                             const NuPoints<T>&, const std::complex<T>*,                \
                             std::complex<T>*, const std::uint32_t*);                   \
  template bool sm_fits<T>(const vgpu::Device&, const GridSpec&, const BinSpec&, int);  \
  template void spread_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*, const DeviceSort&,\
                             const SubprobSetup&, std::uint32_t);                       \
  template void interp<T>(vgpu::Device&, const GridSpec&, const KernelParams<T>&,       \
                          const NuPoints<T>&, const std::complex<T>*, std::complex<T>*, \
                          const std::uint32_t*);                                        \
  template void interp_sm<T>(vgpu::Device&, const GridSpec&, const BinSpec&,            \
                             const KernelParams<T>&, const NuPoints<T>&,                \
                             const std::complex<T>*, std::complex<T>*,                  \
                             const DeviceSort&, const SubprobSetup&, std::uint32_t);

CF_INSTANTIATE(float)
CF_INSTANTIATE(double)
#undef CF_INSTANTIATE

}  // namespace cf::spread
