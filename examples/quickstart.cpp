// Quickstart: the plan / set_points / execute lifecycle for a 2D type-1
// NUFFT, mirroring the paper's Python snippet in C++.
//
//   f_k = sum_j c_j exp(+i k . x_j),  k in [-N/2, N/2)^2
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart
#include <complex>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "vgpu/device.hpp"

int main() {
  using cplx = std::complex<float>;

  // 1. A device (the virtual GPU; workers default to all host cores).
  cf::vgpu::Device device;

  // 2. Problem: M random points with random strengths, 256x256 output modes.
  const std::int64_t N[2] = {256, 256};
  const std::size_t M = 100000;
  cf::Rng rng(42);
  std::vector<float> x(M), y(M);
  std::vector<cplx> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
    c[j] = {static_cast<float>(rng.uniform(-1, 1)),
            static_cast<float>(rng.uniform(-1, 1))};
  }

  // 3. Plan a type-1 transform at tolerance 1e-5 (kernel width 6), set the
  //    points once (bin-sorting happens here), then execute. The plan can be
  //    re-executed with new strengths at full speed.
  const double tol = 1e-5;
  cf::core::Plan<float> plan(device, /*type=*/1, std::span(N, 2), /*iflag=*/+1, tol);
  plan.set_points(M, x.data(), y.data(), nullptr);

  std::vector<cplx> f(static_cast<std::size_t>(N[0] * N[1]));
  plan.execute(c.data(), f.data());

  std::printf("cuFINUFFT-sim quickstart\n");
  std::printf("  method    : %s\n", cf::core::method_name(plan.resolved_method()));
  std::printf("  fine grid : %lld x %lld\n", (long long)plan.fine_grid().nf[0],
              (long long)plan.fine_grid().nf[1]);
  std::printf("  f[0,0]    : %+.6f %+.6fi\n", f[f.size() / 2 - N[0] / 2].real(),
              f[f.size() / 2 - N[0] / 2].imag());

  // 4. Check the accuracy against the exact direct sum on a small subsample
  //    of modes by shrinking the problem (full direct would be O(N*M)).
  const std::int64_t Ns[2] = {32, 32};
  cf::core::Plan<float> small(device, 1, std::span(Ns, 2), +1, tol);
  small.set_points(M, x.data(), y.data(), nullptr);
  std::vector<cplx> fs(32 * 32);
  small.execute(c.data(), fs.data());
  cf::ThreadPool pool;
  std::vector<cplx> want(32 * 32);
  cf::cpu::direct_type1<float>(pool, x, y, {}, c, +1, std::span(Ns, 2), want);
  std::printf("  rel l2 err: %.3e (requested %.0e)\n",
              cf::cpu::rel_l2_error<float>(fs, want), tol);
  return 0;
}
