// X-ray single-particle reconstruction example (paper Sec. V).
//
// Runs the NUFFT-heavy steps of an M-TIP iteration on synthetic diffraction
// data: slicing (3D type-2 on Ewald-sphere slices), merging (two 3D type-1s
// with density compensation), and error-reduction phasing under a support
// constraint — then reports the real-space correlation of the reconstruction
// with the ground-truth density, single-rank and multi-rank.
//
// Run: ./build/examples/xray_mtip [--images 80] [--ranks 4] [--nmerge 49]
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "mtip/density.hpp"
#include "mtip/mtip.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  cf::Cli cli(argc, argv);
  const int images = static_cast<int>(cli.get_int("images", 80));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const std::int64_t nmerge = cli.get_int("nmerge", 49);

  std::printf("M-TIP X-ray reconstruction (synthetic LCLS-style data)\n\n");

  cf::mtip::MtipConfig cfg;
  cfg.N_slice = 33;
  cfg.N_merge = nmerge;
  cfg.nimages = images;
  cfg.det.ndet = 24;
  cfg.tol = 1e-12;  // the paper's M-TIP tolerance
  cf::mtip::BlobDensity truth(6, 2.0, 20210325);

  // ---- single rank: the full pipeline ------------------------------------
  cf::vgpu::Device dev;
  cf::mtip::MtipRank rank(dev, cfg, truth);
  const double t_setup = rank.setup();
  const double t_slice = rank.slicing();
  const double t_merge = rank.merging();
  rank.finalize_merge();
  const double corr_merge = rank.real_space_correlation();
  cf::Timer tp;
  const double resid = rank.phasing(10);
  const double t_phase = tp.seconds();
  const double corr_final = rank.real_space_correlation();

  std::printf("single rank: %d images, M = %.2e slice samples, eps = %.0e\n", images,
              double(rank.npoints()), cfg.tol);
  std::printf("  setup (plan+sort+transfer) : %7.3f s\n", t_setup);
  std::printf("  slicing  (3D type-2)       : %7.3f s\n", t_slice);
  std::printf("  merging  (2x 3D type-1)    : %7.3f s\n", t_merge);
  std::printf("  phasing  (10 ER iters)     : %7.3f s\n", t_phase);
  std::printf("  merge correlation with truth : %.3f\n", corr_merge);
  std::printf("  final correlation with truth : %.3f (support residual %.3f)\n\n",
              corr_final, resid);

  // ---- multi-rank weak scaling (one thread per MPI-style rank) -----------
  cf::mtip::NodeSpec node;
  node.ngpus = ranks;
  node.cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("weak scaling, %d devices, fixed per-rank size:\n", ranks);
  std::printf("%7s %12s %12s %12s\n", "ranks", "setup (s)", "slice (s)", "merge (s)");
  for (int r = 1; r <= ranks; r *= 2) {
    const auto p = cf::mtip::run_weak_scaling(r, cfg, node, truth);
    std::printf("%7d %12.3f %12.3f %12.3f\n", p.nranks, p.setup_s, p.slice_s, p.merge_s);
  }
  std::printf("\nFlat rows = ideal weak scaling (paper Fig. 9).\n");
  return 0;
}
