// Type-3 NUFFT example: far-field scattering amplitudes at arbitrary
// wavevectors from an off-grid particle cloud.
//
//   A(k) = sum_j q_j exp(-i k . r_j)
//
// Neither the particle positions r_j nor the observation wavevectors k lie
// on any grid — the type-3 (nonuniform -> nonuniform) transform the paper
// lists as future work, implemented here on top of the same load-balanced
// spreading machinery (spread -> FFT -> deconvolve -> interpolate).
//
// Run: ./build/examples/type3_scattering [--particles 200000] [--dirs 10000]
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/type3.hpp"
#include "cpu/direct.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  cf::Cli cli(argc, argv);
  const std::size_t M = static_cast<std::size_t>(cli.get_int("particles", 200000));
  const std::size_t K = static_cast<std::size_t>(cli.get_int("dirs", 10000));
  const double tol = cli.get_double("tol", 1e-8);

  std::printf("Type-3 NUFFT: far-field scattering from %zu particles at %zu\n"
              "observation wavevectors (tol %.0e)\n\n", M, K, tol);

  // Particle cloud: two off-center clumps inside a box of half-width 2.
  cf::Rng rng(99);
  std::vector<double> x(M), y(M), z(M);
  std::vector<std::complex<double>> q(M);
  for (std::size_t j = 0; j < M; ++j) {
    const bool clump = rng.uniform() < 0.5;
    const double cx = clump ? 0.8 : -0.9, cy = clump ? -0.5 : 0.6;
    x[j] = cx + 0.4 * rng.normal();
    y[j] = cy + 0.4 * rng.normal();
    z[j] = 0.3 * rng.normal();
    q[j] = {rng.uniform(0.5, 1.5), 0.0};
  }

  // Observation wavevectors: shells |k| in [4, 24], random directions.
  std::vector<double> s(K), t(K), u(K);
  for (std::size_t k = 0; k < K; ++k) {
    const double r = rng.uniform(4.0, 24.0);
    const double ct = rng.uniform(-1, 1), ph = rng.uniform(0, 2 * std::numbers::pi);
    const double st = std::sqrt(1 - ct * ct);
    s[k] = r * st * std::cos(ph);
    t[k] = r * st * std::sin(ph);
    u[k] = r * ct;
  }

  cf::vgpu::Device dev;
  cf::core::Type3Plan<double> plan(dev, 3, -1, tol);
  cf::Timer timer;
  plan.set_points(M, x.data(), y.data(), z.data(), K, s.data(), t.data(), u.data());
  const double t_plan = timer.seconds();
  std::vector<std::complex<double>> A(K);
  timer.reset();
  plan.execute(q.data(), A.data());
  const double t_exec = timer.seconds();

  std::printf("fine grid %lld x %lld x %lld, kernel width %d\n",
              (long long)plan.fine_grid().nf[0], (long long)plan.fine_grid().nf[1],
              (long long)plan.fine_grid().nf[2], plan.kernel_width());
  std::printf("setup %.3f s, execute %.3f s (%.1f ns per source point)\n", t_plan,
              t_exec, 1e9 * t_exec / double(M));

  // Verify a random subsample against the exact direct sum.
  const std::size_t nver = 64;
  std::vector<double> sv(nver), tv(nver), uv(nver);
  std::vector<std::size_t> pick(nver);
  for (std::size_t i = 0; i < nver; ++i) {
    pick[i] = rng.below(K);
    sv[i] = s[pick[i]];
    tv[i] = t[pick[i]];
    uv[i] = u[pick[i]];
  }
  cf::ThreadPool pool;
  std::vector<std::complex<double>> want(nver);
  cf::cpu::direct_type3<double>(pool, x, y, z, q, -1, sv, tv, uv, want);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < nver; ++i) {
    num += std::norm(A[pick[i]] - want[i]);
    den += std::norm(want[i]);
  }
  std::printf("verified %zu amplitudes: rel l2 err %.2e (requested %.0e)\n", nver,
              std::sqrt(num / den), tol);
  return 0;
}
