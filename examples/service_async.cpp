// Async NUFFT serving: many independent clients submit transforms to one
// NufftService and await futures, while the service coalesces
// same-signature requests into batched executes and reuses plans and
// set_points work through the signature registry and point fingerprints.
//
// The scenario mirrors an MRI reconstruction farm: every client grids its
// own k-space data (new strengths) on the SAME trajectory (same points), so
// after the first request the service never re-sorts or re-plans — it only
// stacks strengths into batch-strided executes.
//
// Build: cmake --build build --target example_service_async
// Run:   ./build/example_service_async
#include <complex>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "vgpu/device.hpp"

int main() {
  using cplx = std::complex<float>;
  namespace service = cf::service;
  namespace obs = cf::obs;

  // Observability for the whole demo: span tracing ON (normally enabled via
  // CF_TRACE=1; the explicit switch here keeps the example self-contained).
  // Metrics counters/histograms are always on — tracing only adds spans.
  obs::set_enabled(true);

  cf::vgpu::Device device;

  // Shared "trajectory": M nonuniform sample locations, 128x128 image modes.
  const std::vector<std::int64_t> modes{128, 128};
  const std::size_t M = 50000;
  const std::size_t ntot = 128 * 128;
  cf::Rng rng(7);
  std::vector<float> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
  }

  // The service: dispatch threads, an LRU plan registry, and a coalescing
  // window that lets near-simultaneous clients share one batched execute.
  // The fixed (non-adaptive) window keeps this demo deterministic: the
  // adaptive window would dispatch the very first request solo (the service
  // is idle), while a fixed 2 ms hold lets all early arrivals pile up.
  service::ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_batch = 8;
  cfg.coalesce_window = std::chrono::milliseconds(2);
  cfg.adaptive_window = false;
  service::NufftService svc(device, cfg);

  // 12 clients, each with its own k-space strengths and output grid. All
  // buffers must stay alive until the matching future resolves.
  const int kClients = 12;
  std::vector<std::vector<cplx>> data(kClients), image(kClients);
  std::vector<std::future<service::ExecReport>> futures(kClients);
  for (int i = 0; i < kClients; ++i) {
    data[i].resize(M);
    for (auto& v : data[i])
      v = {static_cast<float>(rng.uniform(-1, 1)),
           static_cast<float>(rng.uniform(-1, 1))};
    image[i].assign(ntot, cplx(0, 0));
  }

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      service::Request<float> req;
      req.type = 1;  // nonuniform data -> uniform image modes
      req.modes = modes;
      req.tol = 1e-5;
      req.M = M;
      req.x = x.data();
      req.y = y.data();
      req.input = data[i].data();
      req.output = image[i].data();
      futures[i] = svc.submit(req);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    const auto rep = futures[i].get();  // rethrows on invalid requests
    std::printf("client %2d: served in batch of %d (plane %d)%s%s\n", i, rep.batch,
                rep.batch_index, rep.plan_reused ? ", plan reused" : "",
                rep.points_reused ? ", set_points reused" : "");
  }

  const auto st = svc.stats();
  std::printf("\n%llu requests -> %llu batched executes; plan built %llu time(s); "
              "set_points reused %llu time(s)\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.plan_misses),
              static_cast<unsigned long long>(st.setpts_reuses));
  std::printf("largest coalesced batch: %llu of %d requested\n",
              static_cast<unsigned long long>(st.max_batch_seen), cfg.max_batch);

  // ---- serving quality: bounded admission and priority ---------------------
  // A second service with a small admission cap under the fail-fast Shed
  // policy: a burst past max_outstanding is rejected with OverloadedError
  // instead of queueing without bound. An INTERACTIVE request then shows the
  // other latency lever — it skips the coalescing window entirely.
  service::ServiceConfig qcfg;
  qcfg.threads = 1;
  qcfg.coalesce_window = std::chrono::milliseconds(5);
  qcfg.max_outstanding = 2;
  qcfg.admission = service::Admission::Shed;
  service::NufftService qsvc(device, qcfg);

  auto make_req = [&](int i, service::Priority pri) {
    service::Request<float> req;
    req.type = 1;
    req.modes = modes;
    req.tol = 1e-5;
    req.M = M;
    req.x = x.data();
    req.y = y.data();
    req.input = data[i % kClients].data();
    req.output = image[i % kClients].data();
    req.priority = pri;
    return req;
  };

  std::vector<std::future<service::ExecReport>> burst;
  for (int i = 0; i < 8; ++i)
    burst.push_back(qsvc.submit(make_req(i, service::Priority::Bulk)));
  int served = 0, shed = 0;
  for (auto& f : burst) {
    try {
      f.get();
      ++served;
    } catch (const service::OverloadedError&) {
      ++shed;
    }
  }
  std::printf("\nburst of 8 at max_outstanding=2 (shed policy): %d served, %d shed\n",
              served, shed);

  auto fi = qsvc.submit(make_req(0, service::Priority::Interactive));
  const auto irep = fi.get();
  std::printf("interactive request: batch of %d (skipped the 5 ms window)\n",
              irep.batch);
  const auto qs = qsvc.stats();
  std::printf("admission accounting: submitted %llu == completed %llu + failed %llu "
              "(shed %llu)\n",
              static_cast<unsigned long long>(qs.submitted),
              static_cast<unsigned long long>(qs.completed),
              static_cast<unsigned long long>(qs.failed),
              static_cast<unsigned long long>(qs.shed));

  // ---- scale-out: the sharded tier over two devices -------------------------
  // Two signatures served through a 2-shard ShardedNufftService (each shard
  // owns a private device + plan registry). Sticky routing pins each
  // signature to hash(PlanKey) % 2, so the two mode boxes typically serve
  // from different shards — and each plan is built exactly once no matter
  // how many clients share its signature.
  service::ShardedConfig shcfg;
  shcfg.shards = 2;
  shcfg.shard.threads = 2;
  shcfg.shard.max_batch = 8;
  shcfg.shard.coalesce_window = std::chrono::milliseconds(2);
  shcfg.shard.adaptive_window = false;
  // Keep routing pure-sticky for the demo: the default spill threshold
  // (2 x max_batch outstanding) would let this synchronized 24-request burst
  // trigger migration when both signatures hash to the same home shard.
  shcfg.spill_threshold = 1u << 20;
  service::ShardedNufftService sharded(shcfg);

  const std::vector<std::int64_t> modes_b{96, 96};
  const std::size_t ntot_b = 96 * 96;
  std::vector<std::vector<cplx>> image_b(kClients);
  std::vector<std::future<service::ExecReport>> shfut(2 * kClients);
  std::vector<std::thread> shclients;
  for (int i = 0; i < kClients; ++i) {
    image_b[i].assign(ntot_b, cplx(0, 0));
    shclients.emplace_back([&, i] {
      // Signature A: the 128x128 trajectory from above.
      shfut[2 * i] = sharded.submit(make_req(i, service::Priority::Bulk));
      // Signature B: a 96x96 reconstruction on the same points.
      service::Request<float> req;
      req.type = 1;
      req.modes = modes_b;
      req.tol = 1e-5;
      req.M = M;
      req.x = x.data();
      req.y = y.data();
      req.input = data[i].data();
      req.output = image_b[i].data();
      shfut[2 * i + 1] = sharded.submit(req);
    });
  }
  for (auto& t : shclients) t.join();
  for (auto& f : shfut) f.get();

  const auto ss = sharded.stats();
  std::printf("\nsharded tier: %d shards, %llu requests routed "
              "(%llu sticky hits, %llu migrations)\n",
              sharded.n_shards(), static_cast<unsigned long long>(ss.routed),
              static_cast<unsigned long long>(ss.sticky_hits),
              static_cast<unsigned long long>(ss.migrations));
  for (std::size_t s = 0; s < ss.shards.size(); ++s)
    std::printf("  shard %zu: %llu served, %llu batches, plan built %llu time(s)\n",
                s, static_cast<unsigned long long>(ss.shards[s].completed),
                static_cast<unsigned long long>(ss.shards[s].batches),
                static_cast<unsigned long long>(ss.shards[s].plan_misses));
  std::printf("  2 signatures -> %llu plan build(s) total across the tier\n",
              static_cast<unsigned long long>(ss.total.plan_misses));

  // ---- observability: metrics snapshot + Chrome trace ----------------------
  // Every service above self-registered in the global metrics registry; the
  // sharded front tier's ledger closes over its shards' failures, so the
  // exported snapshot itself proves submitted == completed + failed.
  const auto front = sharded.metrics().snapshot();
  std::printf("\nobservability (sharded front tier '%s'):\n", front.name.c_str());
  std::printf("  ledger: submitted %llu = completed %llu + failed %llu "
              "(consistent: %s)\n",
              static_cast<unsigned long long>(front.ledger.submitted),
              static_cast<unsigned long long>(front.ledger.completed),
              static_cast<unsigned long long>(front.ledger.failed),
              front.ledger.consistent() ? "yes" : "NO");
  // Per-shard latency histograms: log2-bucketed, percentile by interpolation.
  for (std::size_t s = 0; s < ss.shards.size(); ++s) {
    const auto& m = sharded.shard(static_cast<int>(s)).metrics();
    const auto e2e = m.e2e_us->snap();
    const auto bs = m.batch_size->snap();
    std::printf("  shard %zu e2e: n=%llu p50=%.0f us p99=%.0f us; "
                "batch p50=%.1f\n",
                s, static_cast<unsigned long long>(e2e.count),
                e2e.percentile(50), e2e.percentile(99), bs.percentile(50));
  }

  // Machine-readable exports: the full registry as JSON (all services, all
  // counters/histograms) and the span rings as a Chrome trace — open
  // service_async_trace.json in chrome://tracing or ui.perfetto.dev.
  bool consistent = false;
  obs::write_text_file("service_async_metrics.json",
                       obs::json_string(&consistent));
  obs::export_chrome_trace("service_async_trace.json");
  std::printf("  wrote service_async_metrics.json (all ledgers consistent: %s)\n"
              "  wrote service_async_trace.json (chrome://tracing)\n",
              consistent ? "yes" : "NO");
  return 0;
}
