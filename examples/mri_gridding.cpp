// MRI gridding example: iterative image reconstruction from radial k-space.
//
// Off-grid Fourier data (a golden-angle radial trajectory, as in
// non-Cartesian MRI) is inverted with the library's InverseNufft solver —
// conjugate gradients on the normal equations (A^H A) f = A^H y, where A is
// the type-2 NUFFT. This is the paper's motivating "iterative
// reconstruction" use case: the nonuniform points are sorted once in
// set_points, and every CG iteration re-executes the plan pair at "exec"
// speed.
//
// Run: ./build/examples/mri_gridding [--n 128] [--spokes 201] [--iters 15]
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "solver/inverse.hpp"
#include "vgpu/device.hpp"

using cplx = std::complex<double>;

namespace {

/// A Shepp-Logan-flavored phantom built from Gaussian bumps, so its Fourier
/// coefficients are analytic.
struct Phantom {
  struct Bump {
    double cx, cy, sx, sy, amp;
  };
  std::vector<Bump> bumps = {{0.0, 0.0, 1.3, 1.7, 1.0},
                             {0.35, 0.2, 0.35, 0.5, -0.55},
                             {-0.45, -0.1, 0.3, 0.45, -0.45},
                             {0.0, 0.55, 0.18, 0.12, 0.8},
                             {0.1, -0.6, 0.12, 0.2, 0.6}};

  cplx mode(double k1, double k2) const {
    cplx acc(0, 0);
    for (const auto& b : bumps) {
      const double mag = b.amp * 2 * std::numbers::pi * b.sx * b.sy *
                         std::exp(-0.5 * (b.sx * b.sx * k1 * k1 + b.sy * b.sy * k2 * k2));
      const double ph = -(k1 * b.cx + k2 * b.cy);
      acc += cplx(mag * std::cos(ph), mag * std::sin(ph));
    }
    return acc;
  }
};

}  // namespace

int main(int argc, char** argv) {
  cf::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 128);
  const int nspokes = static_cast<int>(cli.get_int("spokes", 201));
  const int nread = static_cast<int>(cli.get_int("readout", 2 * n));
  const int iters = static_cast<int>(cli.get_int("iters", 15));
  const double tol = cli.get_double("tol", 1e-6);

  std::printf("MRI radial-trajectory reconstruction via InverseNufft (CG)\n");
  std::printf("image %lld^2, %d spokes x %d readout points, tol %.0e\n\n", (long long)n,
              nspokes, nread, tol);

  // --- golden-angle radial k-space trajectory ------------------------------
  const std::size_t M = static_cast<std::size_t>(nspokes) * nread;
  std::vector<double> kx(M), ky(M);
  std::size_t j = 0;
  for (int s = 0; s < nspokes; ++s) {
    const double theta = s * 2.39996322972865332;
    for (int r = 0; r < nread; ++r, ++j) {
      const double rad = std::numbers::pi * (2.0 * (r + 0.5) / nread - 1.0);
      kx[j] = rad * std::cos(theta);
      ky[j] = rad * std::sin(theta);
    }
  }

  // --- ground-truth modes and simulated acquisition y = A f_true ----------
  Phantom ph;
  const std::int64_t N[2] = {n, n};
  const std::size_t ntot = static_cast<std::size_t>(n * n);
  std::vector<cplx> f_true(ntot);
  for (std::int64_t i2 = 0; i2 < n; ++i2)
    for (std::int64_t i1 = 0; i1 < n; ++i1)
      f_true[static_cast<std::size_t>(i1 + n * i2)] =
          ph.mode(double(i1 - n / 2), double(i2 - n / 2));

  cf::vgpu::Device dev;
  std::vector<cplx> yv(M);
  {
    cf::core::Plan<double> A(dev, 2, std::span(N, 2), -1, 1e-12);
    A.set_points(M, kx.data(), ky.data(), nullptr);
    auto ft = f_true;
    A.execute(yv.data(), ft.data());
  }
  // Mild complex noise (1% of signal RMS).
  cf::Rng rng(7);
  double yrms = 0;
  for (auto& v : yv) yrms += std::norm(v);
  yrms = std::sqrt(yrms / double(M));
  for (auto& v : yv)
    v += cplx(rng.normal(), rng.normal()) * (0.01 * yrms / std::sqrt(2.0));

  // --- solve with the library's inverse-NUFFT CG ---------------------------
  cf::solver::InverseOptions opts;
  opts.max_iters = iters;
  opts.tol = 1e-12;  // run all requested iterations
  opts.nufft_tol = tol;
  cf::solver::InverseNufft<double> inv(dev, std::span(N, 2), -1, opts);
  inv.set_points(M, kx.data(), ky.data(), nullptr);

  std::vector<cplx> f(ntot, cplx(0, 0));
  cf::Timer timer;
  const auto rep = inv.solve(yv.data(), f.data());
  const double elapsed = timer.seconds();

  std::printf("%4s  %14s\n", "iter", "rel residual");
  for (std::size_t it = 0; it < rep.history.size(); ++it)
    std::printf("%4zu  %14.3e\n", it, rep.history[it]);

  double num = 0, den = 0;
  for (std::size_t i = 0; i < ntot; ++i) {
    num += std::norm(f[i] - f_true[i]);
    den += std::norm(f_true[i]);
  }
  std::printf("\nimage-space relative error: %.3e (1%% noise floor)\n",
              std::sqrt(num / den));
  std::printf("%d CG iterations (2 NUFFT execs each) in %.3f s — %.1f ms/NUFFT\n",
              rep.iters, elapsed, 1e3 * elapsed / (2.0 * std::max(rep.iters, 1)));
  std::printf("Points were sorted once in set_points; every CG step ran at \"exec\"\n"
              "speed — the use case the paper's plan interface targets.\n");
  return 0;
}
