// Virtual-GPU runtime: launch semantics, shared memory, atomics, memory
// accounting, counters, and the data-parallel primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

namespace vgpu = cf::vgpu;
using cf::Rng;

TEST(Device, LaunchRunsEveryBlockOnce) {
  vgpu::Device dev(4);
  const std::size_t nblocks = 1000;
  std::vector<std::atomic<int>> hits(nblocks);
  dev.launch(nblocks, 32, [&](vgpu::BlockCtx& blk) { hits[blk.block_id]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, ForEachThreadCountsBlockDim) {
  vgpu::Device dev(2);
  std::atomic<int> total{0};
  dev.launch(10, 64, [&](vgpu::BlockCtx& blk) {
    blk.for_each_thread([&](unsigned) { total++; });
  });
  EXPECT_EQ(total.load(), 640);
}

TEST(Device, LaunchItemsCoversAllItems) {
  vgpu::Device dev(8);
  const std::size_t n = 100001;  // deliberately not a multiple of block size
  std::vector<std::atomic<int>> hits(n);
  dev.launch_items(n, 256, [&](std::size_t i, vgpu::BlockCtx&) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Device, RejectsBadBlockSize) {
  vgpu::Device dev(1);
  EXPECT_THROW(dev.launch(1, 0, [](vgpu::BlockCtx&) {}), std::invalid_argument);
  EXPECT_THROW(dev.launch(1, 2048, [](vgpu::BlockCtx&) {}), std::invalid_argument);
}

TEST(Device, SharedMemoryIsPerBlockAndIsolated) {
  vgpu::Device dev(4);
  std::atomic<int> bad{0};
  dev.launch(200, 8, [&](vgpu::BlockCtx& blk) {
    auto s = blk.shared<int>(64);
    for (auto& v : s) v = int(blk.block_id);
    for (auto& v : s)
      if (v != int(blk.block_id)) bad++;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Device, SharedMemoryOverflowThrows) {
  vgpu::Device dev(1);
  EXPECT_THROW(
      dev.launch(1, 1, [&](vgpu::BlockCtx& blk) { blk.shared<double>(10000); }),
      std::runtime_error);
}

TEST(Device, SharedMemoryBudgetMatchesV100) {
  vgpu::Device dev(1);
  // 49152 bytes = 6144 doubles exactly; one more must throw.
  dev.launch(1, 1, [&](vgpu::BlockCtx& blk) { blk.shared<double>(6144); });
  EXPECT_THROW(dev.launch(1, 1, [&](vgpu::BlockCtx& blk) { blk.shared<double>(6145); }),
               std::runtime_error);
}

TEST(Device, AtomicAddUnderContentionIsExact) {
  vgpu::Device dev(8);
  double target = 0;
  const std::size_t n = 100000;
  dev.launch_items(n, 128, [&](std::size_t, vgpu::BlockCtx& blk) {
    blk.atomic_add(&target, 1.0);
  });
  EXPECT_EQ(target, double(n));
}

TEST(Device, ComplexAtomicAddIsExact) {
  vgpu::Device dev(8);
  std::complex<float> target(0, 0);
  const std::size_t n = 65536;
  dev.launch_items(n, 128, [&](std::size_t, vgpu::BlockCtx& blk) {
    blk.atomic_add(&target, std::complex<float>(1.0f, -1.0f));
  });
  EXPECT_EQ(target.real(), float(n));
  EXPECT_EQ(target.imag(), -float(n));
}

TEST(Device, CountersTrackAtomicsAndLaunches) {
  vgpu::Device dev(4);
  dev.counters.reset();
  double x = 0;
  dev.launch_items(1000, 256, [&](std::size_t, vgpu::BlockCtx& blk) {
    blk.atomic_add(&x, 1.0);
  });
  EXPECT_EQ(dev.counters.kernels_launched.load(), 1u);
  EXPECT_EQ(dev.counters.global_atomics.load(), 1000u);
  EXPECT_EQ(dev.counters.blocks_executed.load(), (1000 + 255) / 256u);
}

TEST(DeviceBuffer, AccountsBytesAndPeak) {
  vgpu::Device dev(1);
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  {
    vgpu::device_buffer<double> a(dev, 1000);
    EXPECT_EQ(dev.bytes_in_use(), 8000u);
    {
      vgpu::device_buffer<float> b(dev, 500);
      EXPECT_EQ(dev.bytes_in_use(), 10000u);
      EXPECT_EQ(dev.peak_bytes(), 10000u);
    }
    EXPECT_EQ(dev.bytes_in_use(), 8000u);
    EXPECT_EQ(dev.peak_bytes(), 10000u);  // peak persists
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(DeviceBuffer, HostRoundTrip) {
  vgpu::Device dev(1);
  std::vector<int> host(100);
  std::iota(host.begin(), host.end(), 0);
  vgpu::device_buffer<int> buf(dev, std::span<const int>(host));
  auto back = buf.to_host();
  EXPECT_EQ(back, host);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  vgpu::Device dev(1);
  vgpu::device_buffer<int> a(dev, 10);
  vgpu::device_buffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(dev.bytes_in_use(), 40u);
}

TEST(DeviceBuffer, SizeMismatchThrows) {
  vgpu::Device dev(1);
  vgpu::device_buffer<int> buf(dev, 10);
  std::vector<int> small(5);
  EXPECT_THROW(buf.copy_from_host(small), std::invalid_argument);
  EXPECT_THROW(buf.copy_to_host(small), std::invalid_argument);
}

TEST(Primitives, FillSetsEveryElement) {
  vgpu::Device dev(4);
  vgpu::device_buffer<float> buf(dev, 10001);
  vgpu::fill(dev, buf.span(), 3.5f);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 3.5f);
}

TEST(Primitives, HistogramCountsKeys) {
  vgpu::Device dev(4);
  Rng rng(1);
  const std::size_t n = 50000, nkeys = 37;
  std::vector<std::uint32_t> keys(n), want(nkeys, 0);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.below(nkeys));
    want[k]++;
  }
  vgpu::device_buffer<std::uint32_t> counts(dev, nkeys);
  vgpu::fill(dev, counts.span(), 0u);
  vgpu::histogram(dev, keys, counts.span());
  for (std::size_t k = 0; k < nkeys; ++k) EXPECT_EQ(counts[k], want[k]);
}

TEST(Primitives, ExclusiveScanMatchesSerial) {
  vgpu::Device dev(4);
  Rng rng(2);
  const std::size_t n = 23456;
  std::vector<std::uint32_t> in(n);
  for (auto& v : in) v = static_cast<std::uint32_t>(rng.below(10));
  std::vector<std::uint32_t> out(n);
  const std::uint64_t total = vgpu::exclusive_scan(dev, in, out);
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], run) << i;
    run += in[i];
  }
  EXPECT_EQ(total, run);
}

TEST(Primitives, ExclusiveScanEmptyAndSingle) {
  vgpu::Device dev(2);
  std::vector<std::uint32_t> empty_in, empty_out;
  EXPECT_EQ(vgpu::exclusive_scan(dev, empty_in, empty_out), 0u);
  std::vector<std::uint32_t> one_in{7}, one_out(1, 99);
  EXPECT_EQ(vgpu::exclusive_scan(dev, one_in, one_out), 7u);
  EXPECT_EQ(one_out[0], 0u);
}

TEST(Primitives, CountingScatterGroupsByKey) {
  vgpu::Device dev(4);
  Rng rng(3);
  const std::size_t n = 10000, nkeys = 11;
  std::vector<std::uint32_t> keys(n);
  std::vector<std::uint32_t> counts(nkeys, 0);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.below(nkeys));
    counts[k]++;
  }
  std::vector<std::uint32_t> starts(nkeys);
  std::uint32_t run = 0;
  for (std::size_t k = 0; k < nkeys; ++k) {
    starts[k] = run;
    run += counts[k];
  }
  std::vector<std::uint32_t> cursors = starts, order(n);
  vgpu::counting_scatter(dev, keys, cursors, order);
  // Every index appears once, and within each key's range all keys match.
  std::vector<bool> seen(n, false);
  for (std::size_t k = 0; k < nkeys; ++k) {
    const std::uint32_t end = starts[k] + counts[k];
    for (std::uint32_t p = starts[k]; p < end; ++p) {
      EXPECT_LT(order[p], n);
      EXPECT_FALSE(seen[order[p]]);
      seen[order[p]] = true;
      EXPECT_EQ(keys[order[p]], k);
    }
  }
}

TEST(MultiDevice, IndependentDevicesDoNotShareCountersOrMemory) {
  vgpu::Device a(2), b(2);
  vgpu::device_buffer<double> buf(a, 100);
  EXPECT_EQ(a.bytes_in_use(), 800u);
  EXPECT_EQ(b.bytes_in_use(), 0u);
  double x = 0;
  a.launch_items(10, 32, [&](std::size_t, vgpu::BlockCtx& blk) { blk.atomic_add(&x, 1.0); });
  EXPECT_EQ(a.counters.global_atomics.load(), 10u);
  EXPECT_EQ(b.counters.global_atomics.load(), 0u);
}

TEST(Device, ConcurrentLaunchesFromTwoHostThreads) {
  // Two "MPI ranks" sharing one device (the paper's oversubscription case)
  // must interleave safely.
  vgpu::Device dev(4);
  std::vector<std::atomic<int>> a(10000), b(10000);
  std::thread t1([&] {
    dev.launch_items(10000, 128, [&](std::size_t i, vgpu::BlockCtx&) { a[i]++; });
  });
  std::thread t2([&] {
    dev.launch_items(10000, 128, [&](std::size_t i, vgpu::BlockCtx&) { b[i]++; });
  });
  t1.join();
  t2.join();
  for (std::size_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(a[i].load(), 1);
    EXPECT_EQ(b[i].load(), 1);
  }
}

TEST(Device, SharedAllocationsAreAlignedAndDisjoint) {
  vgpu::Device dev(2);
  dev.launch(50, 4, [&](vgpu::BlockCtx& blk) {
    auto bytes = blk.shared<std::byte>(3);  // misalign the arena cursor
    auto doubles = blk.shared<double>(16);
    auto ints = blk.shared<int>(7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) % alignof(double), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints.data()) % alignof(int), 0u);
    // Writes to one span must not alias the others.
    for (auto& v : doubles) v = 1.0;
    for (auto& v : ints) v = 7;
    bytes[0] = std::byte{42};
    for (auto& v : doubles) EXPECT_EQ(v, 1.0);
  });
}

TEST(Device, LaunchZeroItemsIsANoop) {
  vgpu::Device dev(2);
  bool called = false;
  dev.launch_items(0, 256, [&](std::size_t, vgpu::BlockCtx&) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(dev.counters.kernels_launched.load(), 1u);  // launch still recorded
}

TEST(Device, CountersResetClearsEverything) {
  vgpu::Device dev(2);
  double x = 0;
  dev.launch_items(100, 32, [&](std::size_t, vgpu::BlockCtx& blk) {
    blk.atomic_add(&x, 1.0);
    blk.note_shared_op(3);
  });
  EXPECT_GT(dev.counters.global_atomics.load(), 0u);
  EXPECT_EQ(dev.counters.shared_ops.load(), 300u);
  dev.counters.reset();
  EXPECT_EQ(dev.counters.kernels_launched.load(), 0u);
  EXPECT_EQ(dev.counters.blocks_executed.load(), 0u);
  EXPECT_EQ(dev.counters.global_atomics.load(), 0u);
  EXPECT_EQ(dev.counters.shared_ops.load(), 0u);
}

TEST(Primitives, FillEmptySpanIsSafe) {
  vgpu::Device dev(1);
  std::span<float> empty;
  vgpu::fill(dev, empty, 1.0f);  // must not crash
  SUCCEED();
}

TEST(DeviceBuffer, ReleaseFreesAccounting) {
  vgpu::Device dev(1);
  vgpu::device_buffer<double> buf(dev, 100);
  EXPECT_EQ(dev.bytes_in_use(), 800u);
  buf.release();
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Device, PeakResetTracksCurrentUsage) {
  vgpu::Device dev(1);
  {
    vgpu::device_buffer<double> big(dev, 10000);
    EXPECT_EQ(dev.peak_bytes(), 80000u);
  }
  EXPECT_EQ(dev.peak_bytes(), 80000u);  // peak persists after free
  dev.reset_peak();
  EXPECT_EQ(dev.peak_bytes(), 0u);  // reset to current (now zero) usage
  vgpu::device_buffer<double> small(dev, 10);
  EXPECT_EQ(dev.peak_bytes(), 80u);
}

TEST(Device, NestedSharedAllocationsAcrossLaunches) {
  // The arena resets between blocks: repeated launches must not leak space.
  vgpu::Device dev(2);
  for (int rep = 0; rep < 100; ++rep) {
    dev.launch(4, 1, [&](vgpu::BlockCtx& blk) {
      auto a = blk.shared<double>(3000);  // 24000 B of the 49152 budget
      auto b = blk.shared<float>(6000);   // 24000 B more
      a[0] = 1.0;
      b[0] = 2.0f;
    });
  }
  SUCCEED();
}
