// CPU comparator library (FINUFFT-like) and the direct NUDFT reference.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "cpu/direct.hpp"
#include "vgpu/device.hpp"

namespace cpu = cf::cpu;
using cf::Rng;
using cf::ThreadPool;

namespace {

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c, f;
  std::size_t M;

  Problem(std::vector<std::int64_t> modes, std::size_t M_, std::uint64_t seed = 7)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    std::int64_t ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
      if (dim >= 3) z[j] = static_cast<T>(rng.angle());
    }
    c.resize(M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    f.resize(static_cast<std::size_t>(ntot));
    for (auto& v : f)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
};

}  // namespace

TEST(Direct, Type1SinglePointAnalytic) {
  // One point at x=0 with strength 1: f_k = 1 for all k.
  ThreadPool pool(2);
  std::vector<double> x = {0.0};
  std::vector<std::complex<double>> c = {{1, 0}};
  const std::int64_t N[1] = {8};
  std::vector<std::complex<double>> f(8);
  cpu::direct_type1<double>(pool, x, {}, {}, c, +1, std::span(N, 1), f);
  for (auto& v : f) EXPECT_NEAR(std::abs(v - std::complex<double>(1, 0)), 0.0, 1e-14);
}

TEST(Direct, Type1PhaseRamp) {
  // One point at x0: f_k = e^{i k x0}.
  ThreadPool pool(2);
  const double x0 = 0.7;
  std::vector<double> x = {x0};
  std::vector<std::complex<double>> c = {{1, 0}};
  const std::int64_t N[1] = {9};
  std::vector<std::complex<double>> f(9);
  cpu::direct_type1<double>(pool, x, {}, {}, c, +1, std::span(N, 1), f);
  for (std::int64_t i = 0; i < 9; ++i) {
    const double k = double(i - 4);
    EXPECT_NEAR(f[i].real(), std::cos(k * x0), 1e-14);
    EXPECT_NEAR(f[i].imag(), std::sin(k * x0), 1e-14);
  }
}

TEST(Direct, Type2IsTransposeOfType1OnDeltaBasis) {
  ThreadPool pool(4);
  Problem<double> p({6, 5}, 4, 11);
  // Build the dense matrix both ways and compare A^T entries.
  const std::int64_t ntot = 30;
  for (std::size_t j = 0; j < p.M; ++j) {
    std::vector<std::complex<double>> c(p.M, {0, 0});
    c[j] = {1, 0};
    std::vector<std::complex<double>> col(ntot);
    cpu::direct_type1<double>(pool, p.x, p.y, p.z, c, +1, p.N, col);
    // Row j of type 2 applied to a delta in mode i must equal col[i].
    for (std::int64_t i = 0; i < ntot; ++i) {
      std::vector<std::complex<double>> f(ntot, {0, 0});
      f[static_cast<std::size_t>(i)] = {1, 0};
      std::vector<std::complex<double>> out(p.M);
      cpu::direct_type2<double>(pool, p.x, p.y, p.z, out, +1, p.N, f);
      EXPECT_NEAR(std::abs(out[j] - col[static_cast<std::size_t>(i)]), 0.0, 1e-13);
    }
    break;  // one column suffices; the loop documents the property
  }
}

TEST(RelL2Error, BasicProperties) {
  std::vector<std::complex<double>> a = {{1, 0}, {0, 1}};
  std::vector<std::complex<double>> b = {{1, 0}, {0, 1}};
  EXPECT_EQ(cpu::rel_l2_error<double>(a, b), 0.0);
  a[0] = {2, 0};
  EXPECT_NEAR(cpu::rel_l2_error<double>(a, b), 1.0 / std::sqrt(2.0), 1e-15);
}

using CpuCase = std::tuple<int, int, int>;  // dim, type, tol-exponent

namespace {
std::string cpu_case_name(const ::testing::TestParamInfo<CpuCase>& info) {
  return std::to_string(std::get<0>(info.param)) + "d_t" +
         std::to_string(std::get<1>(info.param)) + "_tol1e" +
         std::to_string(std::get<2>(info.param));
}
}  // namespace

class CpuPlanAccuracy : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuPlanAccuracy, MatchesDirect) {
  const auto [dim, type, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{80}
                              : dim == 2 ? std::vector<std::int64_t>{22, 26}
                                         : std::vector<std::int64_t>{10, 11, 12});
  Problem<double> p(N, 1500, 23);
  ThreadPool pool(8);
  cpu::CpuPlan<double> plan(pool, type, p.N, +1, tol);
  plan.set_points(p.M, p.x.data(), dim >= 2 ? p.y.data() : nullptr,
                  dim >= 3 ? p.z.data() : nullptr);
  if (type == 1) {
    std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
    plan.execute(p.c.data(), got.data());
    cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
    EXPECT_LT(cpu::rel_l2_error<double>(got, want), 10 * tol);
  } else {
    std::vector<std::complex<double>> got(p.M), want(p.M);
    plan.execute(got.data(), p.f.data());
    cpu::direct_type2<double>(pool, p.x, p.y, p.z, want, +1, p.N, p.f);
    EXPECT_LT(cpu::rel_l2_error<double>(got, want), 10 * tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuPlanAccuracy,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(2, 6, 10)),
                         cpu_case_name);

class CpuPlanAccuracySigma125 : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuPlanAccuracySigma125, MatchesDirect) {
  const auto [dim, type, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{80}
                              : dim == 2 ? std::vector<std::int64_t>{22, 26}
                                         : std::vector<std::int64_t>{10, 11, 12});
  Problem<double> p(N, 1500, 24);
  ThreadPool pool(8);
  cpu::CpuPlan<double>::Options o;
  o.upsampfac = 1.25;
  cpu::CpuPlan<double> plan(pool, type, p.N, +1, tol, o);
  plan.set_points(p.M, p.x.data(), dim >= 2 ? p.y.data() : nullptr,
                  dim >= 3 ? p.z.data() : nullptr);
  // Same 10x-of-eps heuristic as sigma = 2, floored where the sigma = 1.25
  // widths exceed the dispatch range and double rounding dominates.
  const double bound = std::max(10 * tol, 1e-11);
  if (type == 1) {
    std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
    plan.execute(p.c.data(), got.data());
    cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
    EXPECT_LT(cpu::rel_l2_error<double>(got, want), bound);
  } else {
    std::vector<std::complex<double>> got(p.M), want(p.M);
    plan.execute(got.data(), p.f.data());
    cpu::direct_type2<double>(pool, p.x, p.y, p.z, want, +1, p.N, p.f);
    EXPECT_LT(cpu::rel_l2_error<double>(got, want), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuPlanAccuracySigma125,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(2, 6, 10)),
                         cpu_case_name);

TEST(CpuPlan, Sigma125MatchesDeviceLibraryClosely) {
  // Both libraries share the kernel/width selection, so their sigma = 1.25
  // grids and outputs agree the same way the sigma = 2 ones do.
  ThreadPool pool(4);
  cf::vgpu::Device dev(4);
  Problem<double> p({28, 24}, 2500, 32);
  cpu::CpuPlan<double>::Options co;
  co.upsampfac = 1.25;
  cf::core::Options go;
  go.upsampfac = 1.25;
  cpu::CpuPlan<double> cplan(pool, 1, p.N, +1, 1e-9, co);
  cf::core::Plan<double> gplan(dev, 1, p.N, +1, 1e-9, go);
  EXPECT_EQ(cplan.fine_grid().nf[0], gplan.fine_grid().nf[0]);
  EXPECT_EQ(cplan.kernel_width(), gplan.kernel_width());
  cplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  gplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fc(p.f.size()), fg(p.f.size());
  cplan.execute(p.c.data(), fc.data());
  gplan.execute(p.c.data(), fg.data());
  EXPECT_LT(cpu::rel_l2_error<double>(fg, fc), 1e-9);
}

TEST(CpuPlan, Sigma125RejectsUnsupportedValues) {
  ThreadPool pool(1);
  const std::int64_t n[2] = {16, 16};
  cpu::CpuPlan<double>::Options o;
  o.upsampfac = 3.0;
  EXPECT_THROW(cpu::CpuPlan<double>(pool, 1, std::span(n, 2), +1, 1e-6, o),
               std::invalid_argument);
}

TEST(CpuPlan, SinglePrecision) {
  ThreadPool pool(4);
  Problem<float> p({32, 32}, 3000, 29);
  cpu::CpuPlan<float> plan(pool, 1, p.N, -1, 1e-5);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<float>(pool, p.x, p.y, p.z, p.c, -1, p.N, want);
  EXPECT_LT(cpu::rel_l2_error<float>(got, want), 3e-5);
}

TEST(CpuPlan, MatchesDeviceLibraryClosely) {
  // The CPU and device libraries implement the same math; at a given tol
  // their outputs agree to that tol against each other.
  ThreadPool pool(4);
  cf::vgpu::Device dev(4);
  Problem<double> p({28, 24}, 2500, 31);
  cpu::CpuPlan<double> cplan(pool, 1, p.N, +1, 1e-9);
  cf::core::Plan<double> gplan(dev, 1, p.N, +1, 1e-9);
  cplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  gplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fc(p.f.size()), fg(p.f.size());
  cplan.execute(p.c.data(), fc.data());
  gplan.execute(p.c.data(), fg.data());
  EXPECT_LT(cpu::rel_l2_error<double>(fg, fc), 1e-9);
}

TEST(CpuPlan, BreakdownPopulated) {
  ThreadPool pool(4);
  Problem<double> p({48, 48}, 20000, 37);
  cpu::CpuPlan<double> plan(pool, 1, p.N, +1, 1e-8);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> f(p.f.size());
  plan.execute(p.c.data(), f.data());
  const auto& bd = plan.last_breakdown();
  EXPECT_GT(bd.sort, 0.0);
  EXPECT_GT(bd.spread, 0.0);
  EXPECT_GT(bd.fft, 0.0);
}

TEST(CpuPlan, InvalidArgumentsThrow) {
  ThreadPool pool(1);
  const std::int64_t n[2] = {16, 16};
  EXPECT_THROW(cpu::CpuPlan<double>(pool, 5, std::span(n, 2), +1, 1e-6),
               std::invalid_argument);
  cpu::CpuPlan<double> plan(pool, 1, std::span(n, 2), +1, 1e-6);
  EXPECT_THROW(plan.set_points(10, nullptr, nullptr, nullptr), std::invalid_argument);
}

TEST(CpuPlan, MsubDoesNotChangeResult) {
  ThreadPool pool(4);
  Problem<double> p({40, 40}, 5000, 41);
  std::vector<std::complex<double>> base;
  for (std::uint32_t msub : {64u, 1024u, 16384u, 1000000u}) {
    cpu::CpuPlan<double>::Options o;
    o.msub = msub;
    cpu::CpuPlan<double> plan(pool, 1, p.N, +1, 1e-9, o);
    plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    std::vector<std::complex<double>> f(p.f.size());
    auto c = p.c;
    plan.execute(c.data(), f.data());
    if (base.empty())
      base = f;
    else
      EXPECT_LT(cpu::rel_l2_error<double>(f, base), 1e-12) << "msub=" << msub;
  }
}

TEST(CpuPlan, HornerKerevalMatchesDirect) {
  // kerevalmeth=1 (padded Horner table) must agree with the default exp/sqrt
  // evaluation to below the aliasing error of the requested tolerance, in
  // both precisions and for both transform types.
  ThreadPool pool(4);
  Problem<double> p({48, 48}, 4000, 43);
  for (int type : {1, 2}) {
    cpu::CpuPlan<double>::Options direct;
    cpu::CpuPlan<double>::Options horner;
    horner.kerevalmeth = 1;
    cpu::CpuPlan<double> pd(pool, type, p.N, +1, 1e-9, direct);
    cpu::CpuPlan<double> ph(pool, type, p.N, +1, 1e-9, horner);
    pd.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    ph.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    std::vector<std::complex<double>> fd(p.f.size()), fh(p.f.size());
    auto cd = p.c, ch = p.c;
    if (type == 1) {
      pd.execute(cd.data(), fd.data());
      ph.execute(ch.data(), fh.data());
      EXPECT_LT(cpu::rel_l2_error<double>(fh, fd), 1e-9) << "type 1";
    } else {
      fd = p.f;
      fh = p.f;
      pd.execute(cd.data(), fd.data());
      ph.execute(ch.data(), fh.data());
      EXPECT_LT(cpu::rel_l2_error<double>(ch, cd), 1e-9) << "type 2";
    }
  }
  Problem<float> pf({48, 48}, 4000, 44);
  cpu::CpuPlan<float>::Options horner;
  horner.kerevalmeth = 1;
  cpu::CpuPlan<float> pd(pool, 1, pf.N, +1, 1e-5);
  cpu::CpuPlan<float> ph(pool, 1, pf.N, +1, 1e-5, horner);
  pd.set_points(pf.M, pf.x.data(), pf.y.data(), nullptr);
  ph.set_points(pf.M, pf.x.data(), pf.y.data(), nullptr);
  std::vector<std::complex<float>> fd(pf.f.size()), fh(pf.f.size());
  auto cd = pf.c, ch = pf.c;
  pd.execute(cd.data(), fd.data());
  ph.execute(ch.data(), fh.data());
  EXPECT_LT(cpu::rel_l2_error<float>(fh, fd), 1e-5);
}

TEST(CpuPlan, AdjointPairProperty) {
  ThreadPool pool(4);
  Problem<double> p({22, 18}, 900, 43);
  cpu::CpuPlan<double> t1(pool, 1, p.N, +1, 1e-11);
  cpu::CpuPlan<double> t2(pool, 2, p.N, -1, 1e-11);
  t1.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  t2.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> Ac(p.f.size());
  auto c = p.c;
  t1.execute(c.data(), Ac.data());
  std::vector<std::complex<double>> Atf(p.M);
  auto f = p.f;
  t2.execute(Atf.data(), f.data());
  std::complex<double> lhs(0, 0), rhs(0, 0);
  for (std::size_t i = 0; i < Ac.size(); ++i) lhs += Ac[i] * std::conj(p.f[i]);
  for (std::size_t j = 0; j < p.M; ++j) rhs += p.c[j] * std::conj(Atf[j]);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(lhs));
}

TEST(CpuPlan, ClusteredPointsAccurate) {
  ThreadPool pool(8);
  Rng rng(47);
  const std::size_t M = 4000;
  std::vector<double> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.uniform(-3.14159, -3.1);
    y[j] = rng.uniform(-3.14159, -3.1);
  }
  std::vector<std::complex<double>> c(M);
  for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const std::int64_t N[2] = {24, 24};
  cpu::CpuPlan<double> plan(pool, 1, std::span(N, 2), +1, 1e-9);
  plan.set_points(M, x.data(), y.data(), nullptr);
  std::vector<std::complex<double>> got(24 * 24), want(24 * 24);
  plan.execute(c.data(), got.data());
  cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(N, 2), want);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-8);
}

TEST(CpuPlan, ThreadCountInvariance) {
  Problem<double> p({30, 30}, 3000, 53);
  ThreadPool p1(1), p8(8);
  cpu::CpuPlan<double> a(p1, 1, p.N, +1, 1e-10), b(p8, 1, p.N, +1, 1e-10);
  a.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  b.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fa(p.f.size()), fb(p.f.size());
  auto c = p.c;
  a.execute(c.data(), fa.data());
  b.execute(c.data(), fb.data());
  EXPECT_LT(cpu::rel_l2_error<double>(fb, fa), 1e-13);
}

TEST(CpuPlan, ModeOrderingMatchesDeviceLibrary) {
  ThreadPool pool(4);
  cf::vgpu::Device dev(4);
  Problem<double> p({14, 10}, 700, 61);
  cpu::CpuPlan<double>::Options copts;
  copts.modeord = 1;
  cpu::CpuPlan<double> cplan(pool, 1, p.N, +1, 1e-10, copts);
  cf::core::Options gopts;
  gopts.modeord = 1;
  cf::core::Plan<double> gplan(dev, 1, p.N, +1, 1e-10, gopts);
  cplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  gplan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fc(p.f.size()), fg(p.f.size());
  auto c = p.c;
  cplan.execute(c.data(), fc.data());
  gplan.execute(c.data(), fg.data());
  EXPECT_LT(cpu::rel_l2_error<double>(fg, fc), 1e-10);
}

TEST(CpuPlan, BatchedMatchesSingles) {
  ThreadPool pool(4);
  Problem<double> p({18, 18}, 600, 67);
  const int B = 3;
  Rng rng(68);
  std::vector<std::complex<double>> cbatch(B * p.M);
  for (auto& v : cbatch) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  cpu::CpuPlan<double>::Options o;
  o.ntransf = B;
  cpu::CpuPlan<double> batched(pool, 1, p.N, +1, 1e-9, o);
  batched.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fbatch(B * p.f.size());
  batched.execute(cbatch.data(), fbatch.data());
  cpu::CpuPlan<double> single(pool, 1, p.N, +1, 1e-9);
  single.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<double>> fb(p.f.size());
    single.execute(cbatch.data() + b * p.M, fb.data());
    std::vector<std::complex<double>> got(fbatch.begin() + b * p.f.size(),
                                          fbatch.begin() + (b + 1) * p.f.size());
    EXPECT_LT(cpu::rel_l2_error<double>(got, fb), 1e-13);
  }
}
