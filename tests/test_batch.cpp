// Batched (ntransf = B) execute correctness: for every dimension, precision,
// type, method, and both kernel pipelines, a single batched execute must
// match B independent B=1 executes on the same plan and points — including
// the M=0 zero-fill branch and the C API's ntransf plumbing.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "core/c_api.h"
#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "cpu/direct.hpp"
#include "spreadinterp/spread.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

template <typename T>
struct BatchProblem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c, f;  // B stacked strength / mode vectors
  std::size_t M;
  std::int64_t ntot;

  BatchProblem(std::vector<std::int64_t> modes, std::size_t M_, int B,
               std::uint64_t seed)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
      if (dim >= 3) z[j] = static_cast<T>(rng.angle());
    }
    c.resize(B * M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    f.resize(static_cast<std::size_t>(B * ntot));
    for (auto& v : f)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
};

template <typename T>
double tol_for() {
  return std::is_same_v<T, double> ? 1e-12 : 2e-5;
}

std::vector<std::int64_t> modes_for(int dim) {
  if (dim == 1) return {64};
  if (dim == 2) return {20, 24};
  return {10, 12, 8};
}

/// Batched execute vs B singles, both run on plans sharing the same points.
template <typename T>
void check_batch_matches_singles(int dim, int type, core::Method method, int B,
                                 int fastpath) {
  BatchProblem<T> p(modes_for(dim), 700, B, 100 + dim * 10 + B);
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(4)));
  core::Options opts;
  opts.method = method;
  opts.fastpath = fastpath;
  opts.tiled_spread = cf::test::env_tiled();

  core::Options bopts = opts;
  bopts.ntransf = B;
  core::Plan<T> batched(dev, type, p.N, +1, 1e-6, bopts);
  core::Plan<T> single(dev, type, p.N, +1, 1e-6, opts);
  const T* yp = dim >= 2 ? p.y.data() : nullptr;
  const T* zp = dim >= 3 ? p.z.data() : nullptr;
  batched.set_points(p.M, p.x.data(), yp, zp);
  single.set_points(p.M, p.x.data(), yp, zp);

  if (type == 1) {
    std::vector<std::complex<T>> fbatch(p.f.size());
    batched.execute(p.c.data(), fbatch.data());
    for (int b = 0; b < B; ++b) {
      std::vector<std::complex<T>> fb(static_cast<std::size_t>(p.ntot));
      single.execute(p.c.data() + b * p.M, fb.data());
      std::vector<std::complex<T>> got(fbatch.begin() + b * p.ntot,
                                       fbatch.begin() + (b + 1) * p.ntot);
      EXPECT_LT(cf::cpu::rel_l2_error<T>(got, fb), tol_for<T>())
          << "dim=" << dim << " method=" << core::method_name(method) << " B=" << B
          << " fast=" << fastpath << " batch " << b;
    }
  } else {
    std::vector<std::complex<T>> cbatch(B * p.M);
    batched.execute(cbatch.data(), p.f.data());
    for (int b = 0; b < B; ++b) {
      std::vector<std::complex<T>> cb(p.M);
      single.execute(cb.data(), p.f.data() + b * p.ntot);
      std::vector<std::complex<T>> got(cbatch.begin() + b * p.M,
                                       cbatch.begin() + (b + 1) * p.M);
      EXPECT_LT(cf::cpu::rel_l2_error<T>(got, cb), tol_for<T>())
          << "dim=" << dim << " method=" << core::method_name(method) << " B=" << B
          << " fast=" << fastpath << " batch " << b;
    }
  }
}

template <typename T>
void sweep_batch(int fastpath) {
  vgpu::Device probe(1);
  for (int dim = 1; dim <= 3; ++dim) {
    for (int B : {1, 3, 8}) {
      for (int type : {1, 2}) {
        check_batch_matches_singles<T>(dim, type, core::Method::GM, B, fastpath);
        check_batch_matches_singles<T>(dim, type, core::Method::GMSort, B, fastpath);
      }
      // SM is type-1 only; skip where the padded bin does not fit (3D double).
      core::Options sm;
      sm.method = core::Method::SM;
      try {
        core::Plan<T> trial(probe, 1, std::vector<std::int64_t>(modes_for(dim)), +1,
                            1e-6, sm);
      } catch (const std::invalid_argument&) {
        continue;
      }
      check_batch_matches_singles<T>(dim, 1, core::Method::SM, B, fastpath);
    }
  }
}

}  // namespace

TEST(BatchExecute, MatchesSinglesAllDimsMethodsFastF64) { sweep_batch<double>(1); }
TEST(BatchExecute, MatchesSinglesAllDimsMethodsFastF32) { sweep_batch<float>(1); }
TEST(BatchExecute, MatchesSinglesAllDimsMethodsFallbackF64) { sweep_batch<double>(0); }
TEST(BatchExecute, MatchesSinglesAllDimsMethodsFallbackF32) { sweep_batch<float>(0); }

TEST(BatchExecute, BatchedAccuracyAgainstDirect) {
  // The batched pipeline must hit the requested tolerance, not just match the
  // serial pipeline: check every plane of a type-1 batch against the NUDFT.
  const int B = 3;
  BatchProblem<double> p({18, 20}, 900, B, 42);
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(4)));
  cf::ThreadPool pool(2);
  core::Options opts;
  opts.ntransf = B;
  opts.fastpath = cf::test::env_fastpath();
  opts.tiled_spread = cf::test::env_tiled();
  core::Plan<double> plan(dev, 1, p.N, +1, 1e-9, opts);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fbatch(p.f.size());
  plan.execute(p.c.data(), fbatch.data());
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<double>> cb(p.c.begin() + b * p.M,
                                         p.c.begin() + (b + 1) * p.M);
    std::vector<std::complex<double>> want(static_cast<std::size_t>(p.ntot));
    cf::cpu::direct_type1<double>(pool, p.x, p.y, p.z, cb, +1, p.N, want);
    std::vector<std::complex<double>> got(fbatch.begin() + b * p.ntot,
                                          fbatch.begin() + (b + 1) * p.ntot);
    EXPECT_LT(cf::cpu::rel_l2_error<double>(got, want), 1e-8) << "batch " << b;
  }
}

TEST(BatchExecute, ZeroPointsZeroFillsAllPlanes) {
  const int B = 3;
  const std::vector<std::int64_t> N{12, 14};
  vgpu::Device dev(2);
  core::Options opts;
  opts.ntransf = B;
  core::Plan<double> plan(dev, 1, N, +1, 1e-8, opts);
  double dummy = 0;
  plan.set_points(0, &dummy, &dummy, nullptr);
  const std::size_t ntot = 12 * 14;
  std::vector<std::complex<double>> f(B * ntot, {7.0, -3.0});
  std::vector<std::complex<double>> c;  // unused for M = 0
  plan.execute(c.data(), f.data());
  for (std::size_t i = 0; i < f.size(); ++i)
    ASSERT_EQ(f[i], std::complex<double>(0, 0)) << "i=" << i;
}

TEST(BatchExecute, CpuComparatorBatchMatchesSingles) {
  // The CPU library's ntransf path must agree with its own serial path, for
  // both types and precisions (apples-to-apples with the device batching).
  cf::ThreadPool pool(static_cast<std::size_t>(cf::test::env_workers(4)));
  const int B = 4;
  BatchProblem<double> p({16, 18}, 800, B, 55);
  for (int type : {1, 2}) {
    cf::cpu::CpuPlan<double>::Options opts;
    cf::cpu::CpuPlan<double>::Options bopts;
    bopts.ntransf = B;
    cf::cpu::CpuPlan<double> batched(pool, type, p.N, +1, 1e-9, bopts);
    cf::cpu::CpuPlan<double> single(pool, type, p.N, +1, 1e-9, opts);
    batched.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    single.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    if (type == 1) {
      std::vector<std::complex<double>> fbatch(p.f.size());
      batched.execute(p.c.data(), fbatch.data());
      for (int b = 0; b < B; ++b) {
        std::vector<std::complex<double>> fb(static_cast<std::size_t>(p.ntot));
        single.execute(p.c.data() + b * p.M, fb.data());
        std::vector<std::complex<double>> got(fbatch.begin() + b * p.ntot,
                                              fbatch.begin() + (b + 1) * p.ntot);
        EXPECT_LT(cf::cpu::rel_l2_error<double>(got, fb), 1e-12) << "t1 batch " << b;
      }
    } else {
      std::vector<std::complex<double>> cbatch(B * p.M);
      batched.execute(cbatch.data(), p.f.data());
      for (int b = 0; b < B; ++b) {
        std::vector<std::complex<double>> cb(p.M);
        single.execute(cb.data(), p.f.data() + b * p.ntot);
        std::vector<std::complex<double>> got(cbatch.begin() + b * p.M,
                                              cbatch.begin() + (b + 1) * p.M);
        EXPECT_LT(cf::cpu::rel_l2_error<double>(got, cb), 1e-12) << "t2 batch " << b;
      }
    }
  }
}

TEST(BatchExecute, CApiNtransfPlumbing) {
  // ntransf through the C API, double and float: batched == per-vector runs.
  const int B = 3;
  BatchProblem<double> p({14, 16}, 500, B, 77);
  cfs_device dev = nullptr;
  ASSERT_EQ(cfs_device_create(&dev, 2), CFS_SUCCESS);
  const std::int64_t nmodes[2] = {14, 16};

  cfs_opts opts;
  cfs_default_opts(&opts);
  opts.ntransf = B;
  cfs_plan batched = nullptr;
  ASSERT_EQ(cfs_makeplan(dev, 1, 2, nmodes, +1, 1e-9, &opts, &batched), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(batched, p.M, p.x.data(), p.y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<double>> fbatch(p.f.size());
  ASSERT_EQ(cfs_execute(batched, reinterpret_cast<double*>(p.c.data()),
                        reinterpret_cast<double*>(fbatch.data())),
            CFS_SUCCESS);

  cfs_opts sopts;
  cfs_default_opts(&sopts);
  cfs_plan single = nullptr;
  ASSERT_EQ(cfs_makeplan(dev, 1, 2, nmodes, +1, 1e-9, &sopts, &single), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(single, p.M, p.x.data(), p.y.data(), nullptr), CFS_SUCCESS);
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<double>> fb(static_cast<std::size_t>(p.ntot));
    ASSERT_EQ(cfs_execute(single, reinterpret_cast<double*>(p.c.data() + b * p.M),
                          reinterpret_cast<double*>(fb.data())),
              CFS_SUCCESS);
    std::vector<std::complex<double>> got(fbatch.begin() + b * p.ntot,
                                          fbatch.begin() + (b + 1) * p.ntot);
    EXPECT_LT(cf::cpu::rel_l2_error<double>(got, fb), 1e-12) << "batch " << b;
  }
  cfs_destroy(single);
  cfs_destroy(batched);

  // Float entry points.
  BatchProblem<float> pf({14, 16}, 500, B, 78);
  cfs_planf batchedf = nullptr;
  ASSERT_EQ(cfs_makeplanf(dev, 1, 2, nmodes, +1, 1e-5, &opts, &batchedf), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(batchedf, pf.M, pf.x.data(), pf.y.data(), nullptr),
            CFS_SUCCESS);
  std::vector<std::complex<float>> fbatchf(pf.f.size());
  ASSERT_EQ(cfs_executef(batchedf, reinterpret_cast<float*>(pf.c.data()),
                         reinterpret_cast<float*>(fbatchf.data())),
            CFS_SUCCESS);
  cfs_planf singlef = nullptr;
  ASSERT_EQ(cfs_makeplanf(dev, 1, 2, nmodes, +1, 1e-5, &sopts, &singlef), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(singlef, pf.M, pf.x.data(), pf.y.data(), nullptr), CFS_SUCCESS);
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<float>> fb(static_cast<std::size_t>(pf.ntot));
    ASSERT_EQ(cfs_executef(singlef, reinterpret_cast<float*>(pf.c.data() + b * pf.M),
                           reinterpret_cast<float*>(fb.data())),
              CFS_SUCCESS);
    std::vector<std::complex<float>> got(fbatchf.begin() + b * pf.ntot,
                                         fbatchf.begin() + (b + 1) * pf.ntot);
    EXPECT_LT(cf::cpu::rel_l2_error<float>(got, fb), 2e-5) << "batch " << b;
  }
  cfs_destroyf(singlef);
  cfs_destroyf(batchedf);
  cfs_device_destroy(dev);
}

TEST(BatchExecute, BatchedBreakdownIsPopulatedOnce) {
  // Batched stage timings cover the whole stack (one spread/fft/deconvolve).
  BatchProblem<float> p({32, 32}, 5000, 4, 91);
  vgpu::Device dev(2);
  core::Options opts;
  opts.ntransf = 4;
  core::Plan<float> plan(dev, 1, p.N, +1, 1e-5, opts);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> f(p.f.size());
  plan.execute(p.c.data(), f.data());
  const auto& bd = plan.last_breakdown();
  EXPECT_GT(bd.spread, 0.0);
  EXPECT_GT(bd.fft, 0.0);
  EXPECT_GT(bd.deconvolve, 0.0);
  EXPECT_EQ(bd.interp, 0.0);
}
