// End-to-end transform accuracy for the device library: every (dim, type,
// precision, method, tolerance) combination is validated against the exact
// direct NUDFT, plus plan lifecycle and property tests.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace vgpu = cf::vgpu;
using cf::Rng;
using cf::ThreadPool;

namespace {

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c, f;
  std::size_t M;

  Problem(std::vector<std::int64_t> modes, std::size_t M_, bool cluster = false,
          std::uint64_t seed = 7)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    std::int64_t ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    auto coord = [&]() {
      return static_cast<T>(cluster ? rng.uniform(-3.14159, -3.0) : rng.angle());
    };
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = coord();
      if (dim >= 2) y[j] = coord();
      if (dim >= 3) z[j] = coord();
    }
    c.resize(M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    f.resize(static_cast<std::size_t>(ntot));
    for (auto& v : f)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
};

template <typename T>
double run_type1_error(vgpu::Device& dev, ThreadPool& pool, Problem<T>& p, int iflag,
                       double tol, core::Options opts = {}) {
  core::Plan<T> plan(dev, 1, p.N, iflag, tol, opts);
  plan.set_points(p.M, p.x.data(), p.N.size() >= 2 ? p.y.data() : nullptr,
                  p.N.size() >= 3 ? p.z.data() : nullptr);
  std::vector<std::complex<T>> got(p.f.size());
  plan.execute(p.c.data(), got.data());
  std::vector<std::complex<T>> want(p.f.size());
  cf::cpu::direct_type1<T>(pool, p.x, p.y, p.z, p.c, iflag, p.N, want);
  return cf::cpu::rel_l2_error<T>(got, want);
}

template <typename T>
double run_type2_error(vgpu::Device& dev, ThreadPool& pool, Problem<T>& p, int iflag,
                       double tol, core::Options opts = {}) {
  core::Plan<T> plan(dev, 2, p.N, iflag, tol, opts);
  plan.set_points(p.M, p.x.data(), p.N.size() >= 2 ? p.y.data() : nullptr,
                  p.N.size() >= 3 ? p.z.data() : nullptr);
  std::vector<std::complex<T>> got(p.M);
  plan.execute(got.data(), p.f.data());
  std::vector<std::complex<T>> want(p.M);
  cf::cpu::direct_type2<T>(pool, p.x, p.y, p.z, want, iflag, p.N, p.f);
  return cf::cpu::rel_l2_error<T>(got, want);
}

}  // namespace

// ---- the main accuracy sweep -----------------------------------------------

// (dim, type, method, tol-exponent)
using PlanCase = std::tuple<int, int, core::Method, int>;

namespace {
std::string plan_case_name(const ::testing::TestParamInfo<PlanCase>& info) {
  const int dim = std::get<0>(info.param);
  const int type = std::get<1>(info.param);
  const core::Method method = std::get<2>(info.param);
  const int tole = std::get<3>(info.param);
  std::string m = core::method_name(method);
  for (auto& ch : m)
    if (ch == '-') ch = '_';
  return std::to_string(dim) + "d_t" + std::to_string(type) + "_" + m + "_tol1e" +
         std::to_string(tole);
}
}  // namespace

class PlanAccuracyF64 : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanAccuracyF64, MeetsRequestedTolerance) {
  const auto [dim, type, method, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{90}
                              : dim == 2 ? std::vector<std::int64_t>{24, 30}
                                         : std::vector<std::int64_t>{10, 12, 14});
  Problem<double> p(N, 2000);
  vgpu::Device dev(4);
  ThreadPool pool(8);
  core::Options opts;
  opts.method = method;
  double err = 0;
  if (type == 1) {
    if (method == core::Method::SM && dim == 3) {
      // 3D double SM is rejected per paper Rmk. 2 — verified elsewhere.
      GTEST_SKIP();
    }
    err = run_type1_error<double>(dev, pool, p, +1, tol, opts);
  } else {
    if (method == core::Method::SM) GTEST_SKIP();  // SM is type-1 only
    err = run_type2_error<double>(dev, pool, p, +1, tol, opts);
  }
  // The width rule typically yields errors near eps (paper Sec. II); allow 10x.
  EXPECT_LT(err, 10 * tol) << "dim=" << dim << " type=" << type;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanAccuracyF64,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(core::Method::GM,
                                                              core::Method::GMSort,
                                                              core::Method::SM),
                                            ::testing::Values(2, 5, 9, 12)),
                         plan_case_name);

class PlanAccuracyF32 : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanAccuracyF32, MeetsRequestedTolerance) {
  const auto [dim, type, method, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{90}
                              : dim == 2 ? std::vector<std::int64_t>{24, 30}
                                         : std::vector<std::int64_t>{10, 12, 14});
  Problem<float> p(N, 2000, false, 13);
  vgpu::Device dev(4);
  ThreadPool pool(8);
  core::Options opts;
  opts.method = method;
  double err = 0;
  if (type == 1) {
    err = run_type1_error<float>(dev, pool, p, -1, tol, opts);
  } else {
    if (method == core::Method::SM) GTEST_SKIP();
    err = run_type2_error<float>(dev, pool, p, -1, tol, opts);
  }
  // Single precision floors near 1e-6 from rounding (paper measures against
  // a 6e-8 ground truth); allow that floor.
  EXPECT_LT(err, std::max(10 * tol, 3e-5)) << "dim=" << dim << " type=" << type;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanAccuracyF32,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(core::Method::GMSort,
                                                              core::Method::SM),
                                            ::testing::Values(2, 5)),
                         plan_case_name);

// ---- lifecycle / property tests ---------------------------------------------

TEST(Plan, BothIflagSignsWork) {
  Problem<double> p({20, 20}, 500);
  vgpu::Device dev(2);
  ThreadPool pool(4);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-8), 1e-7);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, -1, 1e-8), 1e-7);
}

TEST(Plan, RepeatedExecuteIsDeterministicEnough) {
  // Re-running execute with the same strengths must give results equal up to
  // atomic reassociation (we verify to near machine precision).
  Problem<double> p({32, 32}, 3000);
  vgpu::Device dev(4);
  core::Plan<double> plan(dev, 1, p.N, +1, 1e-9);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> f1(p.f.size()), f2(p.f.size());
  plan.execute(p.c.data(), f1.data());
  plan.execute(p.c.data(), f2.data());
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f1, f2), 1e-13);
}

TEST(Plan, SetPointsCanBeCalledAgain) {
  Problem<double> pa({24, 24}, 1000, false, 1);
  Problem<double> pb({24, 24}, 1500, false, 2);
  vgpu::Device dev(4);
  ThreadPool pool(4);
  core::Plan<double> plan(dev, 1, pa.N, +1, 1e-8);
  plan.set_points(pa.M, pa.x.data(), pa.y.data(), nullptr);
  std::vector<std::complex<double>> got(pa.f.size()), want(pa.f.size());
  plan.execute(pa.c.data(), got.data());
  // New points on the same plan.
  plan.set_points(pb.M, pb.x.data(), pb.y.data(), nullptr);
  plan.execute(pb.c.data(), got.data());
  cf::cpu::direct_type1<double>(pool, pb.x, pb.y, pb.z, pb.c, +1, pb.N, want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(got, want), 1e-7);
}

TEST(Plan, Type1Type2AreAdjoints) {
  // <type1(c), f> == <c, conj-type2(f)> with matching iflag conventions:
  // type-1 with iflag s and type-2 with iflag -s are conjugate transposes.
  Problem<double> p({18, 22}, 800, false, 3);
  vgpu::Device dev(4);
  core::Plan<double> t1(dev, 1, p.N, +1, 1e-10);
  core::Plan<double> t2(dev, 2, p.N, -1, 1e-10);
  t1.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  t2.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> Ac(p.f.size());
  t1.execute(p.c.data(), Ac.data());
  std::vector<std::complex<double>> Atf(p.M);
  t2.execute(Atf.data(), p.f.data());
  std::complex<double> lhs(0, 0), rhs(0, 0);
  for (std::size_t i = 0; i < Ac.size(); ++i) lhs += Ac[i] * std::conj(p.f[i]);
  for (std::size_t j = 0; j < p.M; ++j) rhs += p.c[j] * std::conj(Atf[j]);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(lhs));
}

TEST(Plan, ErrorDecreasesWithTolerance) {
  Problem<double> p({30, 30}, 1500, false, 4);
  vgpu::Device dev(4);
  ThreadPool pool(4);
  double prev = 1.0;
  for (int e : {2, 4, 6, 8, 10}) {
    const double err = run_type1_error<double>(dev, pool, p, +1, std::pow(10.0, -e));
    EXPECT_LT(err, prev * 2.0) << "tol=1e-" << e;  // monotone modulo noise
    prev = err;
  }
  EXPECT_LT(prev, 1e-9);
}

TEST(Plan, ClusteredDistributionStillAccurate) {
  Problem<double> p({28, 28}, 4000, /*cluster=*/true, 5);
  vgpu::Device dev(4);
  ThreadPool pool(4);
  core::Options opts;
  opts.method = core::Method::SM;
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-6, opts), 1e-5);
}

TEST(Plan, OddAndEvenModeCounts) {
  for (auto n : {std::vector<std::int64_t>{15, 16}, std::vector<std::int64_t>{17, 17},
                 std::vector<std::int64_t>{16, 15}}) {
    Problem<double> p(n, 700, false, 6);
    vgpu::Device dev(2);
    ThreadPool pool(4);
    EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-8), 1e-7);
    EXPECT_LT(run_type2_error<double>(dev, pool, p, +1, 1e-8), 1e-7);
  }
}

TEST(Plan, PointsOutsideCentralBoxAreFolded) {
  // Coordinates in [-3pi, 3pi) must give identical results to their folds.
  Problem<double> p({26, 26}, 400, false, 8);
  auto shifted = p;
  for (std::size_t j = 0; j < p.M; ++j) {
    if (j % 3 == 0) shifted.x[j] += 2 * 3.141592653589793;
    if (j % 3 == 1) shifted.y[j] -= 2 * 3.141592653589793;
  }
  vgpu::Device dev(2);
  core::Plan<double> plan(dev, 1, p.N, +1, 1e-9);
  std::vector<std::complex<double>> f1(p.f.size()), f2(p.f.size());
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  plan.execute(p.c.data(), f1.data());
  plan.set_points(shifted.M, shifted.x.data(), shifted.y.data(), nullptr);
  plan.execute(shifted.c.data(), f2.data());
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f2, f1), 1e-11);
}

TEST(Plan, InvalidArgumentsThrow) {
  vgpu::Device dev(1);
  const std::int64_t n2[2] = {16, 16};
  EXPECT_THROW(core::Plan<double>(dev, 3, std::span(n2, 2), +1, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(core::Plan<double>(dev, 1, std::span(n2, 0), +1, 1e-6),
               std::invalid_argument);
  core::Options bad;
  bad.upsampfac = 1.5;  // only 2.0 and 1.25 are supported
  EXPECT_THROW(core::Plan<double>(dev, 1, std::span(n2, 2), +1, 1e-6, bad),
               std::invalid_argument);
  core::Options low;
  low.upsampfac = 1.25;
  EXPECT_NO_THROW(core::Plan<double>(dev, 1, std::span(n2, 2), +1, 1e-6, low));
  // SM for type 2 is rejected.
  core::Options sm;
  sm.method = core::Method::SM;
  EXPECT_THROW(core::Plan<double>(dev, 2, std::span(n2, 2), +1, 1e-6, sm),
               std::invalid_argument);
  // 3D double SM with default bins is rejected (paper Rmk. 2).
  const std::int64_t n3[3] = {32, 32, 32};
  EXPECT_THROW(core::Plan<double>(dev, 1, std::span(n3, 3), +1, 1e-6, sm),
               std::invalid_argument);
  // ... but fits in single precision.
  core::Plan<float> ok(dev, 1, std::span(n3, 3), +1, 1e-5, sm);
  EXPECT_EQ(ok.resolved_method(), core::Method::SM);
}

TEST(Plan, AutoMethodResolution) {
  vgpu::Device dev(1);
  const std::int64_t n3[3] = {32, 32, 32};
  core::Plan<float> p1(dev, 1, std::span(n3, 3), +1, 1e-5);
  EXPECT_EQ(p1.resolved_method(), core::Method::SM);
  core::Plan<double> p2(dev, 1, std::span(n3, 3), +1, 1e-5);
  EXPECT_EQ(p2.resolved_method(), core::Method::GMSort);  // Rmk. 2 fallback
  core::Plan<float> p3(dev, 2, std::span(n3, 3), +1, 1e-5);
  EXPECT_EQ(p3.resolved_method(), core::Method::GMSort);
}

TEST(Plan, FineGridFollowsNext235Rule) {
  vgpu::Device dev(1);
  const std::int64_t n[2] = {100, 101};
  core::Plan<double> plan(dev, 1, std::span(n, 2), +1, 1e-5);
  EXPECT_EQ(plan.fine_grid().nf[0], 200);  // 2^3 * 5^2
  EXPECT_EQ(plan.fine_grid().nf[1], 216);  // next235(202) = 2^3*27
  EXPECT_EQ(plan.kernel_width(), 6);
}

TEST(Plan, BreakdownTimesArePopulated) {
  Problem<float> p({64, 64}, 20000, false, 9);
  vgpu::Device dev(4);
  core::Plan<float> plan(dev, 1, p.N, +1, 1e-5);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> f(p.f.size());
  plan.execute(p.c.data(), f.data());
  const auto& bd = plan.last_breakdown();
  EXPECT_GT(bd.sort, 0.0);
  EXPECT_GT(bd.spread, 0.0);
  EXPECT_GT(bd.fft, 0.0);
  EXPECT_GT(bd.deconvolve, 0.0);
  EXPECT_EQ(bd.interp, 0.0);
}

TEST(Plan, DeviceRamAccountingScalesWithProblem) {
  vgpu::Device dev(2);
  const std::int64_t small[3] = {16, 16, 16};
  const std::int64_t big[3] = {48, 48, 48};
  std::size_t peak_small, peak_big;
  {
    core::Plan<float> plan(dev, 1, std::span(small, 3), +1, 1e-2);
    peak_small = dev.bytes_in_use();
  }
  {
    core::Plan<float> plan(dev, 1, std::span(big, 3), +1, 1e-2);
    peak_big = dev.bytes_in_use();
  }
  EXPECT_GT(peak_big, 10 * peak_small);
}

TEST(Plan, BatchedExecuteMatchesLoopOfSingles) {
  // ntransf = B stacked vectors must equal B independent executes.
  Problem<double> p({20, 22}, 600, false, 10);
  const int B = 3;
  Rng rng(11);
  std::vector<std::complex<double>> cbatch(B * p.M);
  for (auto& v : cbatch) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  vgpu::Device dev(4);

  core::Options opts;
  opts.ntransf = B;
  core::Plan<double> batched(dev, 1, p.N, +1, 1e-9, opts);
  batched.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fbatch(B * p.f.size());
  batched.execute(cbatch.data(), fbatch.data());

  core::Plan<double> single(dev, 1, p.N, +1, 1e-9);
  single.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<double>> fb(p.f.size());
    single.execute(cbatch.data() + b * p.M, fb.data());
    std::vector<std::complex<double>> got(fbatch.begin() + b * p.f.size(),
                                          fbatch.begin() + (b + 1) * p.f.size());
    EXPECT_LT(cf::cpu::rel_l2_error<double>(got, fb), 1e-13) << "batch " << b;
  }
}

TEST(Plan, BatchedType2) {
  Problem<float> p({24, 24}, 900, false, 12);
  const int B = 2;
  vgpu::Device dev(4);
  core::Options opts;
  opts.ntransf = B;
  core::Plan<float> batched(dev, 2, p.N, -1, 1e-5, opts);
  batched.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> fbatch(B * p.f.size());
  Rng rng(13);
  for (auto& v : fbatch)
    v = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
  std::vector<std::complex<float>> cbatch(B * p.M);
  batched.execute(cbatch.data(), fbatch.data());

  ThreadPool pool(4);
  for (int b = 0; b < B; ++b) {
    std::vector<std::complex<float>> want(p.M);
    std::vector<std::complex<float>> fb(fbatch.begin() + b * p.f.size(),
                                        fbatch.begin() + (b + 1) * p.f.size());
    cf::cpu::direct_type2<float>(pool, p.x, p.y, p.z, want, -1, p.N, fb);
    std::vector<std::complex<float>> got(cbatch.begin() + b * p.M,
                                         cbatch.begin() + (b + 1) * p.M);
    EXPECT_LT(cf::cpu::rel_l2_error<float>(got, want), 3e-5) << "batch " << b;
  }
}

TEST(Plan, FftStyleModeOrderingIsAPermutationOfCmcl) {
  Problem<double> p({10, 12}, 400, false, 14);
  vgpu::Device dev(2);
  core::Plan<double> cmcl(dev, 1, p.N, +1, 1e-9);
  core::Options fftord;
  fftord.modeord = 1;
  core::Plan<double> fstyle(dev, 1, p.N, +1, 1e-9, fftord);
  cmcl.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  fstyle.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fc(p.f.size()), ff(p.f.size());
  cmcl.execute(p.c.data(), fc.data());
  fstyle.execute(p.c.data(), ff.data());
  // fstyle index i maps to mode k = i < (N+1)/2 ? i : i - N; the same mode
  // sits at k + N/2 in CMCL ordering.
  const std::int64_t N0 = 10, N1 = 12;
  for (std::int64_t i1 = 0; i1 < N1; ++i1) {
    for (std::int64_t i0 = 0; i0 < N0; ++i0) {
      const std::int64_t k0 = i0 < (N0 + 1) / 2 ? i0 : i0 - N0;
      const std::int64_t k1 = i1 < (N1 + 1) / 2 ? i1 : i1 - N1;
      const auto a = ff[static_cast<std::size_t>(i0 + N0 * i1)];
      const auto b = fc[static_cast<std::size_t>((k0 + N0 / 2) + N0 * (k1 + N1 / 2))];
      EXPECT_NEAR(std::abs(a - b), 0.0, 1e-13) << i0 << "," << i1;
    }
  }
}

TEST(Plan, FftStyleModeOrderingType2RoundTripsWithType1) {
  // Type 2 in modeord=1 must consume exactly what type 1 in modeord=1
  // produces: run an adjoint-consistency inner-product check in that order.
  Problem<double> p({14, 14}, 500, false, 15);
  vgpu::Device dev(2);
  core::Options fftord;
  fftord.modeord = 1;
  core::Plan<double> t1(dev, 1, p.N, +1, 1e-10, fftord);
  core::Plan<double> t2(dev, 2, p.N, -1, 1e-10, fftord);
  t1.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  t2.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> Ac(p.f.size());
  t1.execute(p.c.data(), Ac.data());
  std::vector<std::complex<double>> Atf(p.M);
  t2.execute(Atf.data(), p.f.data());
  std::complex<double> lhs(0, 0), rhs(0, 0);
  for (std::size_t i = 0; i < Ac.size(); ++i) lhs += Ac[i] * std::conj(p.f[i]);
  for (std::size_t j = 0; j < p.M; ++j) rhs += p.c[j] * std::conj(Atf[j]);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(lhs));
}

TEST(Plan, HornerKernelMatchesDirectEvaluation) {
  // kerevalmeth=1 must agree with the exp/sqrt path to near the tolerance.
  for (int tole : {3, 6, 9}) {
    const double tol = std::pow(10.0, -tole);
    Problem<double> p({26, 28}, 1500, false, 16);
    vgpu::Device dev(4);
    core::Plan<double> direct(dev, 1, p.N, +1, tol);
    core::Options horner;
    horner.kerevalmeth = 1;
    core::Plan<double> fast(dev, 1, p.N, +1, tol, horner);
    direct.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    fast.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    std::vector<std::complex<double>> fd(p.f.size()), fh(p.f.size());
    direct.execute(p.c.data(), fd.data());
    fast.execute(p.c.data(), fh.data());
    EXPECT_LT(cf::cpu::rel_l2_error<double>(fh, fd), tol) << "tol=1e-" << tole;
  }
}

TEST(Plan, HornerKernelMeetsToleranceEndToEnd) {
  Problem<float> p({30, 30}, 2000, false, 17);
  vgpu::Device dev(4);
  ThreadPool pool(4);
  core::Options horner;
  horner.kerevalmeth = 1;
  EXPECT_LT(run_type1_error<float>(dev, pool, p, +1, 1e-5, horner), 3e-5);
  EXPECT_LT(run_type2_error<float>(dev, pool, p, +1, 1e-5, horner), 3e-5);
}

TEST(Plan, HornerWorksWithSmAndAllWidths) {
  vgpu::Device dev(4);
  ThreadPool pool(4);
  for (int tole : {2, 5, 9, 12}) {
    Problem<double> p({24, 24}, 1000, false, 18);
    core::Options o;
    o.kerevalmeth = 1;
    o.method = core::Method::SM;
    const double tol = std::pow(10.0, -tole);
    EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, tol, o), 10 * tol)
        << "tol=1e-" << tole;
  }
}

TEST(Plan, TinyModeCountsWork) {
  // N as small as 1 or 2 per axis must still be valid (heavily padded grid).
  vgpu::Device dev(2);
  ThreadPool pool(4);
  for (auto modes : {std::vector<std::int64_t>{1}, std::vector<std::int64_t>{2, 3},
                     std::vector<std::int64_t>{1, 5}}) {
    Problem<double> p(modes, 200, false, 70);
    EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-8), 1e-6)
        << "dims " << modes.size();
    EXPECT_LT(run_type2_error<double>(dev, pool, p, +1, 1e-8), 1e-6);
  }
}

TEST(Plan, SinglePointTransform) {
  vgpu::Device dev(1);
  ThreadPool pool(2);
  Problem<double> p({12, 12}, 1, false, 71);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-10), 1e-9);
  EXPECT_LT(run_type2_error<double>(dev, pool, p, +1, 1e-10), 1e-9);
}

TEST(Plan, HighAspectRatioGrids) {
  vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({128, 4}, 1500, false, 72);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-8), 1e-7);
  Problem<double> p3({4, 6, 48}, 1200, false, 73);
  EXPECT_LT(run_type1_error<double>(dev, pool, p3, +1, 1e-6), 1e-5);
}

TEST(Plan, MaxWidthClampAt1eMinus14) {
  // Tolerances beyond double precision clamp w (at 16 for sigma = 2, where
  // w = 16 already means eps ~ 1e-15) and still work.
  vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({20, 20}, 800, false, 74);
  core::Plan<double> plan(dev, 1, p.N, +1, 1e-15);
  EXPECT_EQ(plan.kernel_width(), 16);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-15), 1e-11);
}

// ---- low-upsampling mode (sigma = 1.25) -------------------------------------

class PlanAccuracySigma125F64 : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanAccuracySigma125F64, MeetsRequestedTolerance) {
  const auto [dim, type, method, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{90}
                              : dim == 2 ? std::vector<std::int64_t>{24, 30}
                                         : std::vector<std::int64_t>{10, 12, 14});
  Problem<double> p(N, 2000, false, 21);
  vgpu::Device dev(4);
  ThreadPool pool(8);
  core::Options opts;
  opts.method = method;
  opts.upsampfac = 1.25;
  double err = 0;
  try {
    if (type == 1) {
      err = run_type1_error<double>(dev, pool, p, +1, tol, opts);
    } else {
      if (method == core::Method::SM) GTEST_SKIP();  // SM is type-1 only
      err = run_type2_error<double>(dev, pool, p, +1, tol, opts);
    }
  } catch (const std::invalid_argument&) {
    // The wider sigma = 1.25 kernel can push SM's padded bin past shared
    // memory where the sigma = 2 width fit; the clean reject is correct.
    ASSERT_EQ(method, core::Method::SM);
    GTEST_SKIP();
  }
  // Same heuristic as sigma = 2 (errors near eps, allow 10x), with a floor
  // for the widest kernels (w > 16 at tol <= 1e-12) where double rounding
  // across many taps dominates.
  EXPECT_LT(err, std::max(10 * tol, 1e-11)) << "dim=" << dim << " type=" << type;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanAccuracySigma125F64,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(core::Method::GM,
                                                              core::Method::GMSort,
                                                              core::Method::SM),
                                            ::testing::Values(2, 5, 9, 12)),
                         plan_case_name);

class PlanAccuracySigma125F32 : public ::testing::TestWithParam<PlanCase> {};

TEST_P(PlanAccuracySigma125F32, MeetsRequestedTolerance) {
  const auto [dim, type, method, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  std::vector<std::int64_t> N(dim == 1   ? std::vector<std::int64_t>{90}
                              : dim == 2 ? std::vector<std::int64_t>{24, 30}
                                         : std::vector<std::int64_t>{10, 12, 14});
  Problem<float> p(N, 2000, false, 22);
  vgpu::Device dev(4);
  ThreadPool pool(8);
  core::Options opts;
  opts.method = method;
  opts.upsampfac = 1.25;
  double err = 0;
  try {
    if (type == 1) {
      err = run_type1_error<float>(dev, pool, p, -1, tol, opts);
    } else {
      if (method == core::Method::SM) GTEST_SKIP();
      err = run_type2_error<float>(dev, pool, p, -1, tol, opts);
    }
  } catch (const std::invalid_argument&) {
    ASSERT_EQ(method, core::Method::SM);
    GTEST_SKIP();
  }
  EXPECT_LT(err, std::max(10 * tol, 3e-5)) << "dim=" << dim << " type=" << type;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanAccuracySigma125F32,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(core::Method::GMSort,
                                                              core::Method::SM),
                                            ::testing::Values(2, 5)),
                         plan_case_name);

TEST(Plan, Sigma125WidthRuleIsWiderButGridIsSmaller) {
  vgpu::Device dev(1);
  const std::int64_t n[2] = {100, 101};
  core::Options low;
  low.upsampfac = 1.25;
  core::Plan<double> plan(dev, 1, std::span(n, 2), +1, 1e-5, low);
  // w = ceil(ln(1e5) / (pi * sqrt(1 - 1/1.25))) = ceil(8.19) = 9 vs 6 at
  // sigma = 2; the fine grid shrinks from 200x216 to next235-rounded 1.25N.
  EXPECT_EQ(plan.kernel_width(), 9);
  EXPECT_EQ(plan.fine_grid().nf[0], 125);  // 5^3
  EXPECT_EQ(plan.fine_grid().nf[1], 128);  // next235(ceil(126.25))
}

TEST(Plan, Sigma125CutsFineGridBytesBelow40Percent) {
  // The acceptance bar for the mode: at equal 3D modes, a sigma = 1.25 plan
  // allocates at most 0.4x the sigma = 2 fine-grid (fw_) bytes.
  vgpu::Device dev(2);
  const std::int64_t n3[3] = {32, 32, 32};
  std::size_t bytes2, bytes125;
  std::int64_t vol2, vol125;
  {
    core::Plan<float> plan(dev, 1, std::span(n3, 3), +1, 1e-5);
    bytes2 = dev.bytes_in_use();
    vol2 = plan.fine_grid().total();
  }
  {
    core::Options low;
    low.upsampfac = 1.25;
    core::Plan<float> plan(dev, 1, std::span(n3, 3), +1, 1e-5, low);
    bytes125 = dev.bytes_in_use();
    vol125 = plan.fine_grid().total();
  }
  EXPECT_LE(double(vol125), 0.4 * double(vol2));    // 40^3 vs 64^3
  EXPECT_LE(double(bytes125), 0.4 * double(bytes2));
}

TEST(Plan, Sigma125WideWidthRunsThroughRuntimeFallback) {
  // tol = 1e-12 at sigma = 1.25 needs w = 20 > 16, beyond the compile-time
  // width dispatch: the runtime-width path must carry the transform.
  vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({20, 20}, 800, false, 76);
  core::Options low;
  low.upsampfac = 1.25;
  core::Plan<double> plan(dev, 1, p.N, +1, 1e-12, low);
  EXPECT_EQ(plan.kernel_width(), 20);
  EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-12, low), 1e-10);
}

TEST(Plan, CustomBinSizesStillCorrect) {
  vgpu::Device dev(4);
  ThreadPool pool(4);
  for (int m : {8, 16, 32}) {
    Problem<double> p({28, 28}, 2000, false, 75);
    core::Options o;
    o.binsize = {m, m, 1};
    o.method = core::Method::SM;
    EXPECT_LT(run_type1_error<double>(dev, pool, p, +1, 1e-8, o), 1e-7) << "m=" << m;
  }
  // 64x64 double-precision bins with w=9 blow the 48 KiB budget: clean reject.
  core::Options big;
  big.binsize = {64, 64, 1};
  big.method = core::Method::SM;
  const std::int64_t n2[2] = {28, 28};
  EXPECT_THROW(core::Plan<double>(dev, 1, std::span(n2, 2), +1, 1e-8, big),
               std::invalid_argument);
}
