// ES kernel properties, the width rule, fold-rescale, and the kernel
// Fourier-transform quadrature that feeds the deconvolution step.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/kernel_ft.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/device.hpp"

namespace spread = cf::spread;

TEST(WidthRule, PaperEquation6) {
  // w = ceil(log10(1/eps)) + 1 (clamped to >= 2).
  EXPECT_EQ(spread::width_from_tol(1e-1), 2);
  EXPECT_EQ(spread::width_from_tol(1e-2), 3);
  EXPECT_EQ(spread::width_from_tol(1e-5), 6);   // the paper's fp32 benchmark w
  EXPECT_EQ(spread::width_from_tol(1e-12), 13); // the M-TIP tolerance
  EXPECT_EQ(spread::width_from_tol(1e-14), 15);
}

TEST(WidthRule, BetaIs2Point3W) {
  auto p = spread::KernelParams<double>::from_width(6);
  EXPECT_DOUBLE_EQ(p.beta, 2.30 * 6);
  EXPECT_DOUBLE_EQ(p.half_w, 3.0);
  EXPECT_DOUBLE_EQ(p.inv_half_w, 2.0 / 6.0);
}

TEST(WidthRule, LowUpsamplingFinufftRule) {
  // sigma != 2 switches to w = ceil(ln(1/eps) / (pi sqrt(1 - 1/sigma))):
  // roughly 1.6x the sigma = 2 width at equal tolerance, clamped to
  // kMaxWidth (24) rather than the paper's 16.
  EXPECT_EQ(spread::width_from_tol(1e-2, 1.25), 4);
  EXPECT_EQ(spread::width_from_tol(1e-5, 1.25), 9);
  EXPECT_EQ(spread::width_from_tol(1e-9, 1.25), 15);
  EXPECT_EQ(spread::width_from_tol(1e-12, 1.25), 20);
  EXPECT_EQ(spread::width_from_tol(1e-14, 1.25), 23);
  EXPECT_EQ(spread::width_from_tol(1e-16, 1.25), spread::kMaxWidth);
  // sigma <= 1 has no aliasing headroom at all; the rule must refuse rather
  // than divide by zero (the plan constructors call it before validating).
  EXPECT_THROW(spread::width_from_tol(1e-5, 1.0), std::invalid_argument);
}

TEST(WidthRule, BetaGeneralizesAcrossSigma) {
  // beta(w, sigma) = 0.976 pi w (1 - 1/(2 sigma)); at sigma = 2 the exact
  // historical 2.30 w is preserved bit-for-bit, not approximated.
  EXPECT_DOUBLE_EQ(spread::es_beta(6, 2.0), 2.30 * 6);
  EXPECT_DOUBLE_EQ(spread::es_beta(9, 1.25),
                   0.976 * std::numbers::pi * 9 * (1.0 - 1.0 / 2.5));
  auto p = spread::KernelParams<double>::from_width(9, 1.25);
  EXPECT_DOUBLE_EQ(p.beta, spread::es_beta(9, 1.25));
  // Narrower beta per unit width than sigma = 2 (2.30w): the sigma = 1.25
  // kernel is flatter, which is why it needs more taps for the same eps.
  EXPECT_LT(p.beta, 2.30 * 9);
  EXPECT_THROW(spread::KernelParams<double>::from_width(6, 1.0),
               std::invalid_argument);
}

TEST(EsKernel, SupportAndPeak) {
  const double beta = 2.30 * 6;
  EXPECT_DOUBLE_EQ(spread::es_eval(0.0, beta), 1.0);  // phi(0) = e^0
  EXPECT_EQ(spread::es_eval(1.0, beta), std::exp(-beta));
  EXPECT_EQ(spread::es_eval(1.5, beta), 0.0);
  EXPECT_EQ(spread::es_eval(-2.0, beta), 0.0);
}

TEST(EsKernel, EvenSymmetry) {
  const double beta = 2.30 * 8;
  for (double z = 0; z <= 1.0; z += 0.01)
    EXPECT_DOUBLE_EQ(spread::es_eval(z, beta), spread::es_eval(-z, beta));
}

TEST(EsKernel, MonotoneDecreasingOnPositiveHalf) {
  const double beta = 2.30 * 5;
  double prev = spread::es_eval(0.0, beta);
  for (double z = 0.01; z <= 1.0; z += 0.01) {
    const double v = spread::es_eval(z, beta);
    EXPECT_LE(v, prev + 1e-15);
    prev = v;
  }
}

TEST(EsValues, CoversPointAndSumsNearKernelMass) {
  const auto p = spread::KernelParams<double>::from_width(7);
  double vals[spread::kMaxWidth];
  const double x = 123.456;
  const std::int64_t l0 = spread::es_values(p, x, vals);
  // The point lies within the covered index window [l0, l0+w-1].
  EXPECT_LE(double(l0), x + p.half_w);
  EXPECT_GE(double(l0 + p.w - 1), x - p.half_w);
  // All values are in (0, 1]; ends are small.
  for (int i = 0; i < p.w; ++i) {
    EXPECT_GE(vals[i], 0.0);
    EXPECT_LE(vals[i], 1.0);
  }
  EXPECT_LT(vals[0], 0.05);
  EXPECT_LT(vals[p.w - 1], 0.05);
}

TEST(EsValues, TranslationInvariance) {
  const auto p = spread::KernelParams<double>::from_width(6);
  double v1[spread::kMaxWidth], v2[spread::kMaxWidth];
  const std::int64_t l1 = spread::es_values(p, 10.3, v1);
  const std::int64_t l2 = spread::es_values(p, 42.3, v2);
  EXPECT_EQ(l2 - l1, 32);
  for (int i = 0; i < p.w; ++i) EXPECT_NEAR(v1[i], v2[i], 1e-12);
}

TEST(FoldRescale, GridIndexMatchesPosition) {
  // Grid coordinate g satisfies x = g*h (mod 2*pi): x=0 -> 0, x=-pi -> nf/2.
  const std::int64_t nf = 128;
  const double h = 2.0 * std::numbers::pi / nf;
  EXPECT_NEAR(spread::fold_rescale(0.0, nf), 0.0, 1e-12);
  EXPECT_NEAR(spread::fold_rescale(-std::numbers::pi, nf), 64.0, 1e-9);
  EXPECT_NEAR(spread::fold_rescale(5 * h, nf), 5.0, 1e-9);
  EXPECT_NEAR(spread::fold_rescale(-5 * h, nf), 123.0, 1e-9);
}

TEST(FoldRescale, PeriodicFolding) {
  const std::int64_t nf = 100;
  const double x = 0.7;
  const double base = spread::fold_rescale(x, nf);
  EXPECT_NEAR(spread::fold_rescale(x + 2 * std::numbers::pi, nf), base, 1e-8);
  EXPECT_NEAR(spread::fold_rescale(x - 2 * std::numbers::pi, nf), base, 1e-8);
}

TEST(FoldRescale, AlwaysInRange) {
  const std::int64_t nf = 64;
  for (double x = -9.0; x < 9.0; x += 0.0137) {
    const double g = spread::fold_rescale(x, nf);
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, double(nf));
  }
  // float path too
  for (float x = -9.0f; x < 9.0f; x += 0.0137f) {
    const float g = spread::fold_rescale(x, nf);
    EXPECT_GE(g, 0.0f);
    EXPECT_LT(g, float(nf));
  }
}

TEST(WrapIndex, HandlesNegativesAndOverflow) {
  EXPECT_EQ(spread::wrap_index(0, 10), 0);
  EXPECT_EQ(spread::wrap_index(-1, 10), 9);
  EXPECT_EQ(spread::wrap_index(-10, 10), 0);
  EXPECT_EQ(spread::wrap_index(13, 10), 3);
  EXPECT_EQ(spread::wrap_index(-13, 10), 7);
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  std::vector<double> x, w;
  spread::gauss_legendre(8, x, w);
  // Degree <= 15 polynomials are exact with 8 nodes.
  double s0 = 0, s2 = 0, s14 = 0;
  for (int i = 0; i < 8; ++i) {
    s0 += w[i];
    s2 += w[i] * x[i] * x[i];
    s14 += w[i] * std::pow(x[i], 14);
  }
  EXPECT_NEAR(s0, 2.0, 1e-13);
  EXPECT_NEAR(s2, 2.0 / 3.0, 1e-13);
  EXPECT_NEAR(s14, 2.0 / 15.0, 1e-12);
}

TEST(KernelFt, MatchesDenseRiemannIntegration) {
  const int w = 6;
  const double beta = 2.30 * w;
  auto kernel = [beta](double z) { return double(spread::es_eval(z, beta)); };
  std::vector<double> xis = {0.0, 1.0, 3.7, 10.0, 17.5};
  auto got = spread::kernel_ft(kernel, 2 + 2 * w + 8, xis);
  // Dense trapezoid reference.
  const int n = 200000;
  for (std::size_t j = 0; j < xis.size(); ++j) {
    double acc = 0;
    for (int i = 0; i < n; ++i) {
      const double z = (i + 0.5) / n;
      acc += kernel(z) * std::cos(xis[j] * z);
    }
    acc *= 2.0 / n;
    EXPECT_NEAR(got[j], acc, 1e-9 * std::abs(got[0])) << "xi=" << xis[j];
  }
}

TEST(CorrectionFactors, SymmetricAndPositive) {
  const int w = 6;
  const double beta = 2.30 * w;
  auto kernel = [beta](double z) { return double(spread::es_eval(z, beta)); };
  const std::size_t N = 64, nf = 128;
  auto p = spread::correction_factors(N, nf, w, kernel);
  ASSERT_EQ(p.size(), N);
  for (std::size_t i = 0; i < N; ++i) EXPECT_GT(p[i], 0.0);
  // p_k = p_{-k}: index i=N/2 is k=0; i and N-i mirror for i>0.
  for (std::size_t i = 1; i < N; ++i) EXPECT_NEAR(p[i], p[N - i], 1e-12 * p[i]);
  // Factors grow away from DC (kernel FT decays).
  EXPECT_GT(p[0], p[N / 2]);
}

// ---- Horner-vs-direct parity across every dispatchable width ----------------

template <typename T>
void check_horner_parity_all_widths(double sigma = 2.0) {
  for (int w = 2; w <= spread::kMaxWidth; ++w) {
    auto kp = spread::KernelParams<T>::from_width(w, sigma);
    auto kph = kp;
    spread::HornerTable<T> horner(kp);
    horner.attach(kph);
    // The polynomial only needs to sit below the width-w aliasing error:
    // ~10^{-(w-1)} at sigma = 2, exp(-pi w sqrt(1 - 1/sigma)) in general; the
    // sqrt cusp at |z|=1 caps what it can do for tiny widths, and the working
    // precision floors the achievable error (float exp/sqrt rounding scales
    // like beta * eps_f32 ~ 4e-6 at the widest taps).
    const double floor = sizeof(T) == 4 ? 4e-6 : 2e-11;
    const double bound =
        sigma == 2.0 ? std::max(floor, 5e-2 * std::pow(10.0, -(w - 1)))
                     : std::max(floor, 0.2 * spread::kernel_alias_eps(w, sigma));
    T vd[spread::kMaxWidth], vh[spread::kMaxWidth];
    for (double x = 10.0; x < 90.0; x += 0.377) {
      const auto l0d = spread::es_values(kp, static_cast<T>(x), vd);
      const auto l0h = spread::es_values(kph, static_cast<T>(x), vh);
      ASSERT_EQ(l0d, l0h) << "w=" << w << " x=" << x;
      for (int i = 0; i < w; ++i)
        EXPECT_NEAR(double(vh[i]), double(vd[i]), bound) << "w=" << w << " i=" << i;
    }
  }
}

TEST(HornerParity, EveryWidthDouble) { check_horner_parity_all_widths<double>(); }
TEST(HornerParity, EveryWidthFloat) { check_horner_parity_all_widths<float>(); }
TEST(HornerParity, EveryWidthDoubleSigma125) {
  check_horner_parity_all_widths<double>(1.25);
}
TEST(HornerParity, EveryWidthFloatSigma125) {
  check_horner_parity_all_widths<float>(1.25);
}

// ---- the per-(width, sigma) process-wide fit cache ---------------------------

TEST(HornerCache, OneTablePerWidthSigmaPrecision) {
  const auto& a = spread::horner_cache<float>(9, 1.25);
  const auto& b = spread::horner_cache<float>(9, 1.25);
  EXPECT_EQ(&a, &b);  // refit happens once per process, not once per plan
  const auto& c = spread::horner_cache<float>(9, 2.0);
  EXPECT_NE(&a, &c);
  const auto& d = spread::horner_cache<double>(9, 1.25);
  EXPECT_NE(static_cast<const void*>(&a), static_cast<const void*>(&d));
  // The cached fit meets the residual target the cache itself enforces.
  const auto base = spread::KernelParams<double>::from_width(9, 1.25);
  EXPECT_LE(d.max_residual(base),
            std::max(1e-13, 0.05 * spread::kernel_alias_eps(9, 1.25)));
}

// ---- fixed-width evaluation matches the runtime-width path ------------------

template <int W, typename T>
void check_fixed_width_once() {
  auto kp = spread::KernelParams<T>::from_width(W);
  spread::HornerTable<T> horner(kp);
  auto kph = kp;
  horner.attach(kph);
  T vr[spread::kMaxWidth], vf[spread::kMaxWidth];
  // Direct exp/sqrt and Horner: es_values_fixed computes the same expressions
  // as es_values with unrolled/padded loops; agreement is to rounding.
  const double tol = sizeof(T) == 4 ? 1e-6 : 1e-14;
  for (double x = 5.0; x < 60.0; x += 0.731) {
    const auto l0r = spread::es_values(kp, static_cast<T>(x), vr);
    const auto l0f = spread::es_values_fixed<W>(kp, static_cast<T>(x), vf);
    ASSERT_EQ(l0r, l0f) << "W=" << W;
    for (int i = 0; i < W; ++i)
      EXPECT_NEAR(double(vf[i]), double(vr[i]), tol) << "direct W=" << W << " i=" << i;
    const auto l0rh = spread::es_values(kph, static_cast<T>(x), vr);
    const auto l0fh = spread::es_values_fixed<W>(kph, static_cast<T>(x), vf);
    ASSERT_EQ(l0rh, l0fh) << "W=" << W;
    for (int i = 0; i < W; ++i)
      EXPECT_NEAR(double(vf[i]), double(vr[i]), tol) << "horner W=" << W << " i=" << i;
    // The padded variant appends exact zeros.
    T vp[spread::kMaxWidth + spread::kTapPad];
    const auto l0p = spread::es_values_padded<W>(kph, static_cast<T>(x), vp);
    ASSERT_EQ(l0p, l0fh);
    for (int i = W; i < spread::pad_width(W); ++i) EXPECT_EQ(vp[i], T(0));
  }
}

template <typename T, int... Ws>
void check_fixed_width_all(std::integer_sequence<int, Ws...>) {
  (check_fixed_width_once<Ws + 2, T>(), ...);
}

// Widths 2..24: the sigma = 1.25 deep-tolerance range 17..24 included, so
// every width the compile-time dispatch can select is parity-checked here
// (w = 20 is the sigma = 1.25, tol = 1e-12 width asserted above).
TEST(EsValuesFixed, EveryWidthMatchesRuntimeDouble) {
  check_fixed_width_all<double>(std::make_integer_sequence<int, 23>{});
}
TEST(EsValuesFixed, EveryWidthMatchesRuntimeFloat) {
  check_fixed_width_all<float>(std::make_integer_sequence<int, 23>{});
}

TEST(SmFits, Paper3dDoubleLimitationReproduced) {
  // Rmk. 2: 3D double precision with default bins exceeds 48 KiB shared for
  // the fp32-design bin size, so SM must be rejected there.
  cf::vgpu::Device dev(1);
  spread::GridSpec g3;
  g3.dim = 3;
  g3.nf = {256, 256, 256};
  auto bins = spread::BinSpec::make(g3, spread::BinSpec::default_size(3));
  EXPECT_TRUE(cf::spread::sm_fits<float>(dev, g3, bins, 6));
  EXPECT_FALSE(cf::spread::sm_fits<double>(dev, g3, bins, 6));
  // 2D fits in both precisions even at the largest width.
  spread::GridSpec g2;
  g2.dim = 2;
  g2.nf = {2048, 2048, 1};
  auto bins2 = spread::BinSpec::make(g2, spread::BinSpec::default_size(2));
  EXPECT_TRUE(cf::spread::sm_fits<float>(dev, g2, bins2, 16));
  EXPECT_TRUE(cf::spread::sm_fits<double>(dev, g2, bins2, 16));
}
