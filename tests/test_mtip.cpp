// M-TIP application substrate: geometry, synthetic density, and the
// slicing/merging NUFFT steps.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "cpu/direct.hpp"
#include "mtip/density.hpp"
#include "mtip/geometry.hpp"
#include "mtip/mtip.hpp"
#include "vgpu/device.hpp"

namespace mtip = cf::mtip;
using cf::Rng;
using cf::ThreadPool;

TEST(Rotation, IsOrthonormal) {
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    const auto R = mtip::random_rotation(rng);
    // R R^T = I and det = +1.
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        double dot = 0;
        for (int k = 0; k < 3; ++k) dot += R.m[i][k] * R.m[j][k];
        EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-12);
      }
    const auto& m = R.m;
    const double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                       m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                       m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    EXPECT_NEAR(det, 1.0, 1e-12);
  }
}

TEST(Rotation, PreservesLength) {
  Rng rng(6);
  const auto R = mtip::random_rotation(rng);
  const auto v = R.apply({1.0, 2.0, -0.5});
  EXPECT_NEAR(v[0] * v[0] + v[1] * v[1] + v[2] * v[2], 1 + 4 + 0.25, 1e-12);
}

TEST(RandomRotations, DeterministicAndDistinct) {
  auto a = mtip::random_rotations(5, 99);
  auto b = mtip::random_rotations(5, 99);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(a[i].m, b[i].m);
  EXPECT_NE(a[0].m, a[1].m);
}

TEST(EwaldSlice, PointsLieOnRotatedParaboloidInBand) {
  mtip::DetectorSpec det;
  det.ndet = 16;
  Rng rng(7);
  const auto R = mtip::random_rotation(rng);
  std::vector<double> x, y, z;
  mtip::ewald_slice_points(R, det, x, y, z);
  ASSERT_EQ(x.size(), 256u);
  // Rotate back and verify the Ewald relation q_z = |q_t|^2 / (2 k_beam).
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double u = R.m[0][0] * x[j] + R.m[1][0] * y[j] + R.m[2][0] * z[j];
    const double v = R.m[0][1] * x[j] + R.m[1][1] * y[j] + R.m[2][1] * z[j];
    const double w = R.m[0][2] * x[j] + R.m[1][2] * y[j] + R.m[2][2] * z[j];
    EXPECT_NEAR(w, (u * u + v * v) / (2 * det.k_beam), 1e-10);
    EXPECT_LT(std::abs(x[j]), std::numbers::pi);
    EXPECT_LT(std::abs(y[j]), std::numbers::pi);
    EXPECT_LT(std::abs(z[j]), std::numbers::pi);
  }
}

TEST(BlobDensity, PositiveInsideSupportAndDecays) {
  mtip::BlobDensity rho(8, 2.0, 123);
  EXPECT_GT(rho.real_space(0, 0, 0), 0.0);
  // Far outside the support the density is negligible.
  EXPECT_LT(rho.real_space(3.1, 3.1, 3.1), 1e-6);
}

TEST(BlobDensity, FourierAtZeroIsTotalMass) {
  mtip::BlobDensity rho(5, 2.0, 124);
  // rho_hat(0) = integral of rho = sum of blob masses.
  double mass = 0;
  for (const auto& b : rho.blobs())
    mass += b.amp * std::pow(2 * std::numbers::pi, 1.5) * b.sigma * b.sigma * b.sigma;
  const auto f0 = rho.fourier(0, 0, 0);
  EXPECT_NEAR(f0.real(), mass, 1e-10 * mass);
  EXPECT_NEAR(f0.imag(), 0.0, 1e-12 * mass);
}

TEST(BlobDensity, FourierHermitianSymmetry) {
  // Real density => rho_hat(-k) = conj(rho_hat(k)).
  mtip::BlobDensity rho(6, 2.0, 125);
  for (double k = 0.5; k < 5; k += 1.1) {
    const auto a = rho.fourier(k, 2 * k, -k);
    const auto b = rho.fourier(-k, -2 * k, k);
    EXPECT_NEAR(a.real(), b.real(), 1e-12);
    EXPECT_NEAR(a.imag(), -b.imag(), 1e-12);
  }
}

TEST(BlobDensity, SampleGridMatchesRealSpace) {
  mtip::BlobDensity rho(4, 2.0, 126);
  const std::int64_t N = 8;
  auto g = rho.sample_grid(N);
  ASSERT_EQ(g.size(), 512u);
  const double h = 2 * std::numbers::pi / N;
  const double x = -std::numbers::pi + h * 3, y = -std::numbers::pi + h * 5,
               z = -std::numbers::pi + h * 2;
  EXPECT_NEAR(g[3 + 8 * (5 + 8 * 2)].real(), rho.real_space(x, y, z), 1e-12);
}

TEST(MtipRank, SetupProducesExpectedPointCount) {
  cf::vgpu::Device dev(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 17;
  cfg.N_merge = 25;
  cfg.nimages = 5;
  cfg.det.ndet = 12;
  cfg.tol = 1e-8;
  mtip::BlobDensity rho(4, 2.0, 200);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  EXPECT_EQ(rank.npoints(), 5u * 12 * 12);
}

TEST(MtipRank, MergedModelCorrelatesWithTrueDensity) {
  // The density-compensated adjoint reconstruction from many random slices
  // must correlate strongly with the true real-space density.
  cf::vgpu::Device dev(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 17;
  cfg.N_merge = 33;
  cfg.nimages = 120;
  cfg.det.ndet = 24;
  cfg.tol = 1e-10;
  mtip::BlobDensity rho(4, 2.0, 201);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  rank.merging();
  rank.finalize_merge();
  EXPECT_GT(rank.real_space_correlation(), 0.6);
}

TEST(MtipRank, SlicingMatchesDirectNudft) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 13;
  cfg.nimages = 3;
  cfg.det.ndet = 10;
  cfg.tol = 1e-10;
  mtip::BlobDensity rho(3, 2.0, 202);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  rank.slicing();  // with a zero model this gives zeros — checks plumbing
  // The slicing NUFFT itself is validated end-to-end in test_plan; here we
  // check the pipeline wiring doesn't throw and sizes line up.
  SUCCEED();
}

TEST(MtipRank, PhasingReducesOutOfSupportMass) {
  cf::vgpu::Device dev(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 17;
  cfg.N_merge = 33;
  cfg.nimages = 150;
  cfg.det.ndet = 24;
  cfg.tol = 1e-10;
  mtip::BlobDensity rho(4, 1.8, 203);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  rank.merging();
  rank.finalize_merge();
  const double r1 = rank.phasing(1);
  const double r5 = rank.phasing(5);
  EXPECT_LE(r5, r1 + 0.05);  // ER is monotone-ish in support residual
  EXPECT_LT(r5, 0.9);
}

TEST(WeakScaling, RunsMultiRankAndStaysFlatWithinGpuCount) {
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 17;
  cfg.nimages = 8;
  cfg.det.ndet = 12;
  cfg.tol = 1e-6;
  mtip::BlobDensity rho(3, 2.0, 204);
  mtip::NodeSpec node;
  node.ngpus = 2;
  node.cores = 4;  // 2 workers per device
  const auto p1 = mtip::run_weak_scaling(1, cfg, node, rho);
  const auto p2 = mtip::run_weak_scaling(2, cfg, node, rho);
  EXPECT_EQ(p1.nranks, 1);
  EXPECT_EQ(p2.nranks, 2);
  EXPECT_GT(p1.slice_s, 0.0);
  EXPECT_GT(p2.merge_s, 0.0);
  // Weak scaling: times should be same order of magnitude up to ngpus ranks.
  EXPECT_LT(p2.merge_s, p1.merge_s * 5);
}

TEST(MtipRank, MergeIsLinearInMeasurements) {
  // Doubling the blob amplitudes doubles the merged numerator exactly.
  cf::vgpu::Device dev(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 17;
  cfg.nimages = 10;
  cfg.det.ndet = 10;
  cfg.tol = 1e-8;
  mtip::BlobDensity rho(3, 2.0, 301);
  mtip::MtipRank r1(dev, cfg, rho);
  r1.setup();
  r1.merging();
  r1.finalize_merge();
  auto m1 = r1.model();

  // A density with doubled amplitudes (same geometry/seed scaled by hand is
  // not constructible; instead scale the model linearity through strengths:
  // run the same rank twice and check determinism + scaling by re-merge).
  mtip::MtipRank r2(dev, cfg, rho);
  r2.setup();
  r2.merging();
  r2.finalize_merge();
  auto m2 = r2.model();
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i)
    EXPECT_NEAR(std::abs(m1[i] - m2[i]), 0.0, 1e-12);
}

TEST(MtipRank, WeightsGridHasPositiveDcTerm) {
  cf::vgpu::Device dev(2);
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 17;
  cfg.nimages = 6;
  cfg.det.ndet = 8;
  cfg.tol = 1e-8;
  mtip::BlobDensity rho(3, 2.0, 302);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  rank.merging();
  // The weight transform at n=0 equals sum of weights > 0.
  const auto& den = rank.merged_weights();
  const std::int64_t N = cfg.N_merge;
  const auto dc = den[static_cast<std::size_t>(N / 2 + N * (N / 2 + N * (N / 2)))];
  EXPECT_GT(dc.real(), 0.0);
  EXPECT_NEAR(dc.imag() / dc.real(), 0.0, 1e-9);
}

TEST(MtipRank, PhasingResidualIsAFraction) {
  cf::vgpu::Device dev(2);
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 21;
  cfg.nimages = 40;
  cfg.det.ndet = 16;
  cfg.tol = 1e-9;
  mtip::BlobDensity rho(3, 1.8, 303);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();
  rank.merging();
  rank.finalize_merge();
  const double r = rank.phasing(3);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST(WeakScaling, OversubscriptionDegrades) {
  mtip::MtipConfig cfg;
  cfg.N_slice = 13;
  cfg.N_merge = 21;
  cfg.nimages = 16;
  cfg.det.ndet = 12;
  cfg.tol = 1e-8;
  mtip::BlobDensity rho(3, 2.0, 304);
  mtip::NodeSpec node;
  node.ngpus = 2;
  node.cores = 4;
  const auto p2 = mtip::run_weak_scaling(2, cfg, node, rho);  // 1 rank/device
  const auto p4 = mtip::run_weak_scaling(4, cfg, node, rho);  // 2 ranks/device
  // Oversubscribed merge time should grow measurably (at least 1.2x).
  EXPECT_GT(p4.merge_s, p2.merge_s * 1.2);
}

TEST(MtipRank, SlicingWithRealModelMatchesDirectType2) {
  // Build the slice geometry exactly as the rank does, load an arbitrary
  // Fourier model onto the slicing grid, run the type-2 slicing, and verify
  // against the exact direct sum at the slice points.
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  mtip::MtipConfig cfg;
  cfg.N_slice = 11;
  cfg.N_merge = 11;
  cfg.nimages = 4;
  cfg.det.ndet = 8;
  cfg.tol = 1e-10;
  mtip::BlobDensity rho(3, 2.0, 401);
  mtip::MtipRank rank(dev, cfg, rho);
  rank.setup();

  const auto rots = mtip::random_rotations(4, cfg.seed);
  std::vector<double> x, y, z;
  for (const auto& R : rots) mtip::ewald_slice_points(R, cfg.det, x, y, z);
  const std::size_t M = x.size();
  ASSERT_EQ(M, rank.npoints());

  const std::int64_t N = cfg.N_slice;
  const std::int64_t N3[3] = {N, N, N};
  Rng rng(402);
  std::vector<std::complex<double>> model(static_cast<std::size_t>(N * N * N));
  for (auto& v : model) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  cf::core::Plan<double> t2(dev, 2, std::span(N3, 3), -1, cfg.tol);
  t2.set_points(M, x.data(), y.data(), z.data());
  std::vector<std::complex<double>> got(M);
  auto m = model;
  t2.execute(got.data(), m.data());

  std::vector<std::complex<double>> want(M);
  cf::cpu::direct_type2<double>(pool, x, y, z, want, -1, std::span(N3, 3), model);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(got, want), 1e-8);
}

TEST(EwaldSlice, FlatDetectorLimit) {
  // As k_beam -> infinity the Ewald sphere flattens: q_z -> 0 in the
  // detector frame.
  mtip::DetectorSpec det;
  det.ndet = 8;
  det.k_beam = 1e9;
  Rng rng(403);
  const auto R = mtip::random_rotation(rng);
  std::vector<double> x, y, z;
  mtip::ewald_slice_points(R, det, x, y, z);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double w = R.m[0][2] * x[j] + R.m[1][2] * y[j] + R.m[2][2] * z[j];
    EXPECT_NEAR(w, 0.0, 1e-6);
  }
}
