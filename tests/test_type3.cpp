// Type-3 transform (nonuniform -> nonuniform): accuracy against the direct
// sum across dims, precisions, iflags, and geometries, plus structural
// properties of the two-kernel reduction.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/type3.hpp"
#include "cpu/direct.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
using cf::Rng;
using cf::ThreadPool;

namespace {

struct T3Problem {
  std::vector<double> x, y, z;  // sources
  std::vector<double> s, t, u;  // target frequencies
  std::vector<std::complex<double>> c;

  T3Problem(int dim, std::size_t M, std::size_t K, double X, double S,
            std::uint64_t seed = 3, double xoff = 0.0, double soff = 0.0) {
    Rng rng(seed);
    x.resize(M);
    s.resize(K);
    if (dim >= 2) {
      y.resize(M);
      t.resize(K);
    }
    if (dim >= 3) {
      z.resize(M);
      u.resize(K);
    }
    c.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = xoff + rng.uniform(-X, X);
      if (dim >= 2) y[j] = xoff + rng.uniform(-X, X);
      if (dim >= 3) z[j] = xoff + rng.uniform(-X, X);
      c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    for (std::size_t k = 0; k < K; ++k) {
      s[k] = soff + rng.uniform(-S, S);
      if (dim >= 2) t[k] = soff + rng.uniform(-S, S);
      if (dim >= 3) u[k] = soff + rng.uniform(-S, S);
    }
  }
};

template <typename T>
double run_type3(int dim, const T3Problem& p, int iflag, double tol,
                 core::Options opts = {}) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(8);
  const std::size_t M = p.x.size(), K = p.s.size();
  std::vector<T> x(M), y, z, s(K), t, u;
  for (std::size_t j = 0; j < M; ++j) x[j] = static_cast<T>(p.x[j]);
  for (std::size_t k = 0; k < K; ++k) s[k] = static_cast<T>(p.s[k]);
  if (dim >= 2) {
    y.resize(M);
    t.resize(K);
    for (std::size_t j = 0; j < M; ++j) y[j] = static_cast<T>(p.y[j]);
    for (std::size_t k = 0; k < K; ++k) t[k] = static_cast<T>(p.t[k]);
  }
  if (dim >= 3) {
    z.resize(M);
    u.resize(K);
    for (std::size_t j = 0; j < M; ++j) z[j] = static_cast<T>(p.z[j]);
    for (std::size_t k = 0; k < K; ++k) u[k] = static_cast<T>(p.u[k]);
  }
  std::vector<std::complex<T>> c(M);
  for (std::size_t j = 0; j < M; ++j)
    c[j] = {static_cast<T>(p.c[j].real()), static_cast<T>(p.c[j].imag())};

  core::Type3Plan<T> plan(dev, dim, iflag, tol, opts);
  plan.set_points(M, x.data(), dim >= 2 ? y.data() : nullptr,
                  dim >= 3 ? z.data() : nullptr, K, s.data(),
                  dim >= 2 ? t.data() : nullptr, dim >= 3 ? u.data() : nullptr);
  std::vector<std::complex<T>> f(K);
  plan.execute(c.data(), f.data());

  std::vector<std::complex<T>> want(K);
  cf::cpu::direct_type3<T>(pool, x, y, z, c, iflag, s, t, u, want);
  return cf::cpu::rel_l2_error<T>(f, want);
}

}  // namespace

using T3Case = std::tuple<int, int>;  // dim, tol-exponent

namespace {
std::string t3_case_name(const ::testing::TestParamInfo<T3Case>& info) {
  return std::to_string(std::get<0>(info.param)) + "d_tol1e" +
         std::to_string(std::get<1>(info.param));
}
}  // namespace

class Type3Accuracy : public ::testing::TestWithParam<T3Case> {};

TEST_P(Type3Accuracy, MeetsToleranceDouble) {
  const auto [dim, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  T3Problem p(dim, 1500, 1200, /*X=*/3.0, /*S=*/dim == 3 ? 8.0 : 20.0, 100 + dim);
  EXPECT_LT(run_type3<double>(dim, p, +1, tol), 30 * tol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Type3Accuracy,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 5, 8, 11)),
                         t3_case_name);

class Type3AccuracySigma125 : public ::testing::TestWithParam<T3Case> {};

TEST_P(Type3AccuracySigma125, MeetsToleranceDouble) {
  // The low-upsampling fine grid: sigma = 1.25 shrinks nf (8/5 per dim —
  // sources stay packed in [-pi/2, pi/2], see type3.cpp), so the whole
  // two-kernel reduction runs on the smaller grid with the wider kernel.
  const auto [dim, tole] = GetParam();
  const double tol = std::pow(10.0, -tole);
  T3Problem p(dim, 1500, 1200, /*X=*/3.0, /*S=*/dim == 3 ? 8.0 : 20.0, 200 + dim);
  core::Options low;
  low.upsampfac = 1.25;
  EXPECT_LT(run_type3<double>(dim, p, +1, tol, low), std::max(30 * tol, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Type3AccuracySigma125,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 5, 8, 11)),
                         t3_case_name);

TEST(Type3, Sigma125SinglePrecision) {
  T3Problem p(2, 2000, 1500, 3.0, 15.0, 19);
  core::Options low;
  low.upsampfac = 1.25;
  EXPECT_LT(run_type3<float>(2, p, +1, 1e-4, low), 1e-3);
}

TEST(Type3, Sigma125ShrinksFineGrid) {
  // Same geometry, two sigmas: the sigma = 1.25 inner grid must be smaller
  // per axis (the 2x-oversampled band shrinks to 1.25x) even though the
  // kernel is wider.
  cf::vgpu::Device dev(1);
  T3Problem p(1, 400, 400, 3.0, 40.0, 20);
  core::Type3Plan<double> p2(dev, 1, +1, 1e-6);
  core::Options low;
  low.upsampfac = 1.25;
  core::Type3Plan<double> p125(dev, 1, +1, 1e-6, low);
  p2.set_points(400, p.x.data(), nullptr, nullptr, 400, p.s.data(), nullptr, nullptr);
  p125.set_points(400, p.x.data(), nullptr, nullptr, 400, p.s.data(), nullptr,
                  nullptr);
  EXPECT_LT(p125.fine_grid().nf[0], p2.fine_grid().nf[0]);
}

TEST(Type3, Sigma125RejectsUnsupportedValues) {
  cf::vgpu::Device dev(1);
  core::Options bad;
  bad.upsampfac = 1.5;
  EXPECT_THROW(core::Type3Plan<double>(dev, 1, +1, 1e-6, bad),
               std::invalid_argument);
}

TEST(Type3, SinglePrecision) {
  T3Problem p(2, 2000, 1500, 3.0, 15.0, 7);
  EXPECT_LT(run_type3<float>(2, p, +1, 1e-4), 1e-3);
}

TEST(Type3, BothIflags) {
  T3Problem p(2, 800, 700, 2.0, 12.0, 8);
  EXPECT_LT(run_type3<double>(2, p, +1, 1e-8), 1e-6);
  EXPECT_LT(run_type3<double>(2, p, -1, 1e-8), 1e-6);
}

TEST(Type3, OffCenterClouds) {
  // Centers far from the origin exercise the phase-shift bookkeeping.
  T3Problem p(2, 800, 700, 1.5, 8.0, 9, /*xoff=*/50.0, /*soff=*/-30.0);
  EXPECT_LT(run_type3<double>(2, p, +1, 1e-9), 1e-7);
}

TEST(Type3, AsymmetricSourceTargetScales) {
  // Tiny source spread against wide frequency band, and vice versa.
  T3Problem narrow_x(1, 1000, 900, 0.05, 300.0, 10);
  EXPECT_LT(run_type3<double>(1, narrow_x, +1, 1e-8), 1e-6);
  T3Problem narrow_s(1, 1000, 900, 40.0, 0.2, 11);
  EXPECT_LT(run_type3<double>(1, narrow_s, +1, 1e-8), 1e-6);
}

TEST(Type3, SingleSourceAnalytic) {
  // One source at x0 with unit strength: f_k = e^{i s_k x0} exactly.
  cf::vgpu::Device dev(2);
  const double x0 = 0.83;
  std::vector<double> x = {x0};
  std::vector<std::complex<double>> c = {{1, 0}};
  Rng rng(12);
  const std::size_t K = 200;
  std::vector<double> s(K);
  for (auto& v : s) v = rng.uniform(-25, 25);
  core::Type3Plan<double> plan(dev, 1, +1, 1e-10);
  plan.set_points(1, x.data(), nullptr, nullptr, K, s.data(), nullptr, nullptr);
  std::vector<std::complex<double>> f(K);
  plan.execute(c.data(), f.data());
  for (std::size_t k = 0; k < K; ++k) {
    EXPECT_NEAR(f[k].real(), std::cos(s[k] * x0), 1e-8);
    EXPECT_NEAR(f[k].imag(), std::sin(s[k] * x0), 1e-8);
  }
}

TEST(Type3, LinearityInStrengths) {
  T3Problem p(2, 500, 400, 2.0, 10.0, 13);
  cf::vgpu::Device dev(4);
  core::Type3Plan<double> plan(dev, 2, +1, 1e-9);
  plan.set_points(p.x.size(), p.x.data(), p.y.data(), nullptr, p.s.size(), p.s.data(),
                  p.t.data(), nullptr);
  std::vector<std::complex<double>> c1 = p.c, f1(p.s.size()), f2(p.s.size());
  plan.execute(c1.data(), f1.data());
  for (auto& v : c1) v *= std::complex<double>(2.0, -1.0);
  plan.execute(c1.data(), f2.data());
  for (std::size_t k = 0; k < f1.size(); ++k)
    EXPECT_NEAR(std::abs(f2[k] - std::complex<double>(2.0, -1.0) * f1[k]), 0.0,
                1e-9 * (1.0 + std::abs(f1[k])));
}

TEST(Type3, RepeatedExecuteAfterOneSetpts) {
  T3Problem p(1, 600, 500, 2.0, 15.0, 14);
  cf::vgpu::Device dev(2);
  core::Type3Plan<double> plan(dev, 1, +1, 1e-9);
  plan.set_points(p.x.size(), p.x.data(), nullptr, nullptr, p.s.size(), p.s.data(),
                  nullptr, nullptr);
  std::vector<std::complex<double>> c = p.c, f1(p.s.size()), f2(p.s.size());
  plan.execute(c.data(), f1.data());
  plan.execute(c.data(), f2.data());
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f1, f2), 1e-13);
}

TEST(Type3, HornerKernelAgrees) {
  T3Problem p(2, 700, 600, 2.5, 12.0, 15);
  core::Options horner;
  horner.kerevalmeth = 1;
  const double e_direct = run_type3<double>(2, p, +1, 1e-8);
  const double e_horner = run_type3<double>(2, p, +1, 1e-8, horner);
  EXPECT_LT(e_horner, 10 * std::max(e_direct, 1e-9));
}

TEST(Type3, ScalarFallbackAgrees) {
  // fastpath=0 must route the type-3 pipeline through the runtime-width
  // scalar kernels and agree with the width-specialized default.
  T3Problem p(2, 700, 600, 2.5, 12.0, 17);
  core::Options scalar;
  scalar.fastpath = 0;
  const double e_fast = run_type3<double>(2, p, +1, 1e-8);
  const double e_scalar = run_type3<double>(2, p, +1, 1e-8, scalar);
  EXPECT_LT(e_fast, 1e-6);
  EXPECT_LT(e_scalar, 1e-6);
  EXPECT_NEAR(e_fast, e_scalar, 1e-7);
}

TEST(Type3, GmMethodAlsoWorks) {
  T3Problem p(2, 700, 600, 2.5, 12.0, 16);
  core::Options gm;
  gm.method = core::Method::GM;
  EXPECT_LT(run_type3<double>(2, p, +1, 1e-7, gm), 1e-5);
}

TEST(Type3, InvalidUseThrows) {
  cf::vgpu::Device dev(1);
  EXPECT_THROW(core::Type3Plan<double>(dev, 0, +1, 1e-6), std::invalid_argument);
  EXPECT_THROW(core::Type3Plan<double>(dev, 4, +1, 1e-6), std::invalid_argument);
  core::Type3Plan<double> plan(dev, 2, +1, 1e-6);
  std::vector<double> x(5, 0.0);
  EXPECT_THROW(plan.set_points(5, x.data(), nullptr, nullptr, 5, x.data(), x.data(),
                               nullptr),
               std::invalid_argument);  // missing y
  std::vector<std::complex<double>> c(5), f(5);
  EXPECT_THROW(plan.execute(c.data(), f.data()), std::logic_error);  // no setpts
}

TEST(Type3, FineGridScalesWithSpaceBandwidthProduct) {
  cf::vgpu::Device dev(1);
  T3Problem small(1, 100, 100, 1.0, 5.0, 17);
  T3Problem large(1, 100, 100, 4.0, 40.0, 18);
  core::Type3Plan<double> ps(dev, 1, +1, 1e-6), pl(dev, 1, +1, 1e-6);
  ps.set_points(100, small.x.data(), nullptr, nullptr, 100, small.s.data(), nullptr,
                nullptr);
  pl.set_points(100, large.x.data(), nullptr, nullptr, 100, large.s.data(), nullptr,
                nullptr);
  EXPECT_GT(pl.fine_grid().nf[0], 10 * ps.fine_grid().nf[0]);
}
TEST(Type3, ClusteredSourcesStillAccurate) {
  // All sources in a tiny blob (extreme X clustering) with wide targets.
  T3Problem p(2, 1500, 1000, 0.01, 30.0, 55);
  EXPECT_LT(run_type3<double>(2, p, +1, 1e-8), 1e-6);
}

TEST(Type3, Works3dSinglePrecision) {
  T3Problem p(3, 1500, 800, 2.0, 6.0, 56);
  EXPECT_LT(run_type3<float>(3, p, -1, 1e-4), 5e-3);
}

TEST(Type3, ManySourcesFewTargetsAndViceVersa) {
  T3Problem big_m(1, 20000, 50, 3.0, 20.0, 57);
  EXPECT_LT(run_type3<double>(1, big_m, +1, 1e-9), 1e-7);
  T3Problem big_k(1, 50, 20000, 3.0, 20.0, 58);
  EXPECT_LT(run_type3<double>(1, big_k, +1, 1e-9), 1e-7);
}
