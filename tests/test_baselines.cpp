// Comparator libraries: CUNFFT-like and gpuNUFFT-like must be *correct* at
// their own accuracy envelopes, and must exhibit the structural properties
// the paper attributes to them (wider Gaussian kernel; accuracy floor).
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "baselines/cunfft_like.hpp"
#include "baselines/gpunufft_like.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "cpu/direct.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "vgpu/device.hpp"

namespace baselines = cf::baselines;
namespace cpu = cf::cpu;
using cf::Rng;
using cf::ThreadPool;

namespace {

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c, f;
  std::size_t M;

  Problem(std::vector<std::int64_t> modes, std::size_t M_, std::uint64_t seed = 7)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    std::int64_t ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    y.resize(dim >= 2 ? M : 0);
    z.resize(dim >= 3 ? M : 0);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
      if (dim >= 3) z[j] = static_cast<T>(rng.angle());
    }
    c.resize(M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    f.resize(static_cast<std::size_t>(ntot));
    for (auto& v : f)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
};

}  // namespace

TEST(GaussianWidth, RoughlyDoubleTheEsWidth) {
  // The structural reason CUNFFT loses at matched accuracy.
  EXPECT_GE(baselines::gaussian_width_from_tol(1e-5), 12);
  EXPECT_LE(baselines::gaussian_width_from_tol(1e-5), 14);
  EXPECT_GE(baselines::gaussian_width_from_tol(1e-2), 5);
}

TEST(CunfftLike, Type1MatchesDirectAtTolerance) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  for (double tol : {1e-2, 1e-4, 1e-6}) {
    Problem<double> p({20, 24}, 1200, 41);
    baselines::CunfftPlan<double> plan(dev, 1, p.N, +1, tol);
    plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
    plan.execute(p.c.data(), got.data());
    cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
    EXPECT_LT(cpu::rel_l2_error<double>(got, want), 20 * tol) << "tol=" << tol;
  }
}

TEST(CunfftLike, Type2MatchesDirect) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({18, 20}, 900, 43);
  baselines::CunfftPlan<double> plan(dev, 2, p.N, -1, 1e-5);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> got(p.M), want(p.M);
  plan.execute(got.data(), p.f.data());
  cpu::direct_type2<double>(pool, p.x, p.y, p.z, want, -1, p.N, p.f);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-4);
}

TEST(CunfftLike, Works3d) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({10, 11, 12}, 800, 47);
  baselines::CunfftPlan<double> plan(dev, 1, p.N, +1, 1e-4);
  plan.set_points(p.M, p.x.data(), p.y.data(), p.z.data());
  std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-3);
}

TEST(CunfftLike, SinglePrecision) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<float> p({24, 24}, 1500, 53);
  baselines::CunfftPlan<float> plan(dev, 1, p.N, +1, 1e-4);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<float>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
  EXPECT_LT(cpu::rel_l2_error<float>(got, want), 5e-3);
}

TEST(GpunufftLike, Type1MatchesDirectAtItsFloor) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({20, 22}, 1200, 59);
  baselines::GpunufftPlan<double> plan(dev, 1, p.N, +1, 1e-3);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-2);
}

TEST(GpunufftLike, AccuracyFloorsRegardlessOfTolerance) {
  // Asking for 1e-9 cannot beat the width cap: the error stalls above ~1e-5
  // (the paper's observation that gpuNUFFT's eps always exceeds 1e-3).
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({20, 22}, 1200, 61);
  baselines::GpunufftPlan<double> plan(dev, 1, p.N, +1, 1e-9);
  EXPECT_EQ(plan.kernel_width(), baselines::kMaxKbWidth);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
  const double err = cpu::rel_l2_error<double>(got, want);
  EXPECT_GT(err, 1e-7);  // cannot reach the requested 1e-9
  EXPECT_LT(err, 1e-2);  // still a working transform
}

TEST(GpunufftLike, Type2MatchesDirect) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<double> p({18, 18}, 700, 67);
  baselines::GpunufftPlan<double> plan(dev, 2, p.N, +1, 1e-3);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> got(p.M), want(p.M);
  plan.execute(got.data(), p.f.data());
  cpu::direct_type2<double>(pool, p.x, p.y, p.z, want, +1, p.N, p.f);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-2);
}

TEST(GpunufftLike, Works3dSingle) {
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Problem<float> p({10, 10, 12}, 900, 71);
  baselines::GpunufftPlan<float> plan(dev, 1, p.N, +1, 1e-3);
  plan.set_points(p.M, p.x.data(), p.y.data(), p.z.data());
  std::vector<std::complex<float>> got(p.f.size()), want(p.f.size());
  plan.execute(p.c.data(), got.data());
  cpu::direct_type1<float>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
  EXPECT_LT(cpu::rel_l2_error<float>(got, want), 1e-2);
}

TEST(GpunufftLike, Rejects1d) {
  cf::vgpu::Device dev(1);
  const std::int64_t n[1] = {64};
  EXPECT_THROW(baselines::GpunufftPlan<double>(dev, 1, std::span(n, 1), +1, 1e-3),
               std::invalid_argument);
}

TEST(Baselines, ClusteredStillCorrect) {
  // Load-imbalance hurts speed, never correctness.
  cf::vgpu::Device dev(4);
  ThreadPool pool(4);
  Rng rng(73);
  const std::size_t M = 2000;
  std::vector<double> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.uniform(-3.14159, -3.0);
    y[j] = rng.uniform(-3.14159, -3.0);
  }
  std::vector<std::complex<double>> c(M);
  for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const std::int64_t N[2] = {24, 24};
  std::vector<std::complex<double>> want(24 * 24);
  cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(N, 2), want);

  baselines::CunfftPlan<double> cu(dev, 1, std::span(N, 2), +1, 1e-4);
  cu.set_points(M, x.data(), y.data(), nullptr);
  std::vector<std::complex<double>> got(24 * 24);
  cu.execute(c.data(), got.data());
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-3);

  baselines::GpunufftPlan<double> gp(dev, 1, std::span(N, 2), +1, 1e-3);
  gp.set_points(M, x.data(), y.data(), nullptr);
  gp.execute(c.data(), got.data());
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-2);
}

TEST(CunfftLike, AdjointPair) {
  cf::vgpu::Device dev(4);
  Problem<double> p({20, 20}, 800, 79);
  baselines::CunfftPlan<double> t1(dev, 1, p.N, +1, 1e-6);
  baselines::CunfftPlan<double> t2(dev, 2, p.N, -1, 1e-6);
  t1.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  t2.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> Ac(p.f.size());
  auto c = p.c;
  t1.execute(c.data(), Ac.data());
  std::vector<std::complex<double>> Atf(p.M);
  auto f = p.f;
  t2.execute(Atf.data(), f.data());
  std::complex<double> lhs(0, 0), rhs(0, 0);
  for (std::size_t i = 0; i < Ac.size(); ++i) lhs += Ac[i] * std::conj(p.f[i]);
  for (std::size_t j = 0; j < p.M; ++j) rhs += p.c[j] * std::conj(Atf[j]);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-6 * std::abs(lhs));
}

TEST(CunfftLike, RepeatedExecuteDeterministicEnough) {
  cf::vgpu::Device dev(4);
  Problem<double> p({32, 32}, 3000, 83);
  baselines::CunfftPlan<double> plan(dev, 1, p.N, +1, 1e-5);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> f1(p.f.size()), f2(p.f.size());
  auto c = p.c;
  plan.execute(c.data(), f1.data());
  plan.execute(c.data(), f2.data());
  EXPECT_LT(cpu::rel_l2_error<double>(f1, f2), 1e-12);
}

TEST(CunfftLike, WiderKernelAtTighterTolerance) {
  cf::vgpu::Device dev(1);
  const std::int64_t N[2] = {16, 16};
  baselines::CunfftPlan<double> loose(dev, 1, std::span(N, 2), +1, 1e-2);
  baselines::CunfftPlan<double> tight(dev, 1, std::span(N, 2), +1, 1e-8);
  EXPECT_GT(tight.kernel_width(), loose.kernel_width());
  EXPECT_GE(tight.kernel_width(), 2 * cf::spread::width_from_tol(1e-8) - 4);
}

TEST(GpunufftLike, SectorLoadImbalanceVisibleInBlockTiming) {
  // Clustered points concentrate into a handful of sectors; the block count
  // the device executes stays the same (one per sector), demonstrating the
  // output-driven structure (correctness unaffected; speed tested in bench).
  cf::vgpu::Device dev(4);
  Problem<double> rand_p({32, 32}, 4000, 89);
  baselines::GpunufftPlan<double> plan(dev, 1, rand_p.N, +1, 1e-3);
  plan.set_points(rand_p.M, rand_p.x.data(), rand_p.y.data(), nullptr);
  std::vector<std::complex<double>> f(32 * 32);
  dev.counters.reset();
  auto c = rand_p.c;
  plan.execute(c.data(), f.data());
  EXPECT_GT(dev.counters.shared_ops.load(), 0u);  // sector buffers in use
}

TEST(GpunufftLike, SinglePointMatchesDirect) {
  cf::vgpu::Device dev(1);
  cf::ThreadPool pool(2);
  std::vector<double> x = {0.3}, y = {-1.2};
  std::vector<std::complex<double>> c = {{2, 1}};
  const std::int64_t N[2] = {12, 12};
  baselines::GpunufftPlan<double> plan(dev, 1, std::span(N, 2), +1, 1e-3);
  plan.set_points(1, x.data(), y.data(), nullptr);
  std::vector<std::complex<double>> got(144), want(144);
  plan.execute(c.data(), got.data());
  cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(N, 2), want);
  EXPECT_LT(cpu::rel_l2_error<double>(got, want), 1e-2);
}
