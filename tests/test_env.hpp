// Environment overrides for the test suites: CI re-runs ctest with
// CF_WORKERS (device worker count), CF_FASTPATH (0 = runtime-width scalar
// fallback), and CF_TILED (0 = atomic spread writeback) set, so multi-worker
// atomic contention, the fallback pipeline, and the atomic writeback all
// stay covered without recompiling. Unset variables keep the defaults.
#pragma once

#include <cstdlib>

namespace cf::test {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::atoi(v) : fallback;
}

/// Device worker count for suites that don't sweep it themselves.
inline int env_workers(int fallback) { return env_int("CF_WORKERS", fallback); }

/// Options::fastpath override (default 1 = width-specialized kernels).
inline int env_fastpath(int fallback = 1) { return env_int("CF_FASTPATH", fallback); }

/// Options::tiled_spread override (default 1 = tile-owned atomic-free
/// writeback; 0 = atomic writeback baseline).
inline int env_tiled(int fallback = 1) { return env_int("CF_TILED", fallback); }

}  // namespace cf::test
