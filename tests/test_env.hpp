// Environment overrides for the test suites: CI re-runs ctest with
// CF_WORKERS (device worker count), CF_FASTPATH (0 = runtime-width scalar
// fallback), CF_TILED (0 = atomic spread writeback), and CF_TILE_CHUNK
// (forced tiled-spread chunk cap) set, so multi-worker atomic contention,
// the fallback pipeline, the atomic writeback, and the chunked stealing
// scheduler all stay covered without recompiling. Unset variables keep the
// defaults.
#pragma once

#include <cstdlib>

namespace cf::test {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::atoi(v) : fallback;
}

/// Device worker count for suites that don't sweep it themselves.
inline int env_workers(int fallback) { return env_int("CF_WORKERS", fallback); }

/// Options::fastpath override (default 1 = width-specialized kernels).
inline int env_fastpath(int fallback = 1) { return env_int("CF_FASTPATH", fallback); }

/// Options::tiled_spread override (default 1 = tile-owned atomic-free
/// writeback; 0 = atomic writeback baseline).
inline int env_tiled(int fallback = 1) { return env_int("CF_TILED", fallback); }

/// Options::tile_chunk_cap override (default 0 = auto). The library itself
/// also honors CF_TILE_CHUNK at the auto setting, so plans created by suites
/// that never touch the option still pick the forced cap up; this helper is
/// for tests that want the value explicitly.
inline int env_tile_chunk(int fallback = 0) {
  return env_int("CF_TILE_CHUNK", fallback);
}

}  // namespace cf::test
