// Environment overrides for the test suites: CI re-runs ctest with
// CF_WORKERS (device worker count), CF_FASTPATH (0 = runtime-width scalar
// fallback), CF_TILED (0 = atomic spread writeback), CF_TILE_CHUNK (forced
// tiled-spread chunk cap), and CF_UPSAMP (fine-grid sigma) set, so
// multi-worker atomic contention, the fallback pipeline, the atomic
// writeback, the chunked stealing scheduler, and the low-upsampling grid all
// stay covered without recompiling. Unset variables keep the defaults.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cf::test {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::atoi(v) : fallback;
}

/// Device worker count for suites that don't sweep it themselves.
inline int env_workers(int fallback) { return env_int("CF_WORKERS", fallback); }

/// Options::fastpath override (default 1 = width-specialized kernels).
inline int env_fastpath(int fallback = 1) { return env_int("CF_FASTPATH", fallback); }

/// Options::tiled_spread override (default 1 = tile-owned atomic-free
/// writeback; 0 = atomic writeback baseline).
inline int env_tiled(int fallback = 1) { return env_int("CF_TILED", fallback); }

/// Options::tile_chunk_cap override (default 0 = auto). The library itself
/// also honors CF_TILE_CHUNK at the auto setting, so plans created by suites
/// that never touch the option still pick the forced cap up; this helper is
/// for tests that want the value explicitly.
inline int env_tile_chunk(int fallback = 0) {
  return env_int("CF_TILE_CHUNK", fallback);
}

/// Options::upsampfac override (default 2.0; CI sets CF_UPSAMP=1.25 for the
/// low-upsampling pass). Parsed strictly, same policy as the service layer's
/// CF_SERVICE_WINDOW_US: anything that is not a whole double in a sane range
/// gets a one-line diagnostic and the fallback, so a typo never silently
/// runs the default configuration while looking like an override.
inline double env_upsampfac(double fallback = 2.0) {
  const char* v = std::getenv("CF_UPSAMP");
  if (!v || !*v) return fallback;
  char* end = nullptr;
  errno = 0;
  const double s = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0' || !(s >= 1.0) || !(s <= 4.0)) {
    std::fprintf(stderr,
                 "tests: ignoring invalid CF_UPSAMP='%s' (want a double in "
                 "[1, 4]); using %g\n",
                 v, fallback);
    return fallback;
  }
  return s;
}

}  // namespace cf::test
