// Packed 8-byte complex<float> atomic writeback vs the CUDA-style two-float
// form, on adversarially colliding points (every point in one bin) in both GM
// and GM-sort methods. With one worker the execution order is identical, so
// the two forms must agree bitwise; under contention they must agree to
// reassociation-level tolerance. The counters record what the hardware does:
// ONE global atomic per packed complex write versus two for the two-float
// form — exactly half.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "test_env.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

namespace core = cf::core;
namespace spread = cf::spread;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Points packed into the first bin of a 2D grid: fold-rescaled coordinates
/// land in [0, eps), so every tap of every point collides in one bin
/// neighborhood — the worst case for atomic writeback.
template <typename T>
struct CollidingPoints {
  std::vector<T> x, y;
  std::vector<std::complex<T>> c;
  std::size_t M;

  explicit CollidingPoints(std::size_t M_, std::uint64_t seed) : M(M_) {
    Rng rng(seed);
    x.resize(M);
    y.resize(M);
    c.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.uniform(-3.14159265, -3.13));
      y[j] = static_cast<T>(rng.uniform(-3.14159265, -3.13));
      c[j] = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    }
  }
};

/// Raw spread_gm run (GM or GM-sort by `sorted`), returning the fine grid and
/// the global-atomic count.
std::vector<std::complex<float>> spread_once(std::size_t workers, bool sorted,
                                             bool packed, const CollidingPoints<float>& p,
                                             std::uint64_t* atomics) {
  vgpu::Device dev(workers);
  auto kp = spread::KernelParams<float>::from_width(6);
  kp.fast = cf::test::env_fastpath() != 0;
  kp.packed = packed;
  spread::GridSpec grid;
  grid.dim = 2;
  grid.nf = {64, 64, 1};
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(2));

  vgpu::device_buffer<float> xg(dev, p.M), yg(dev, p.M);
  dev.launch_items(p.M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(p.x[j], grid.nf[0]);
    yg[j] = spread::fold_rescale(p.y[j], grid.nf[1]);
  });
  spread::NuPoints<float> pts{xg.data(), yg.data(), nullptr, p.M};

  spread::DeviceSort sort;
  if (sorted)
    spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), nullptr, p.M, sort);

  vgpu::device_buffer<std::complex<float>> fw(dev,
                                              static_cast<std::size_t>(grid.total()));
  vgpu::fill(dev, fw.span(), std::complex<float>(0, 0));
  dev.counters.reset();
  spread::spread_gm<float>(dev, grid, kp, pts, p.c.data(), fw.data(),
                           sorted ? sort.order.data() : nullptr);
  if (atomics) *atomics = dev.counters.global_atomics.load();
  return fw.to_host();
}

}  // namespace

TEST(PackedAtomic, SingleWorkerBitwiseParityOnCollidingPoints) {
  // One worker => identical accumulation order => the packed CAS and the
  // two-float adds perform the same float additions: bitwise-equal grids.
  CollidingPoints<float> p(2000, 11);
  for (bool sorted : {false, true}) {
    std::uint64_t at_plain = 0, at_packed = 0;
    const auto plain = spread_once(1, sorted, /*packed=*/false, p, &at_plain);
    const auto packed = spread_once(1, sorted, /*packed=*/true, p, &at_packed);
    ASSERT_EQ(plain.size(), packed.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(plain[i], packed[i]) << (sorted ? "GM-sort" : "GM") << " cell " << i;
    // Counter model: the packed path collapses each complex write into one
    // 8-byte CAS, so it must record exactly half the two-float form's count.
    EXPECT_EQ(at_packed * 2, at_plain) << (sorted ? "GM-sort" : "GM");
    EXPECT_GT(at_packed, 0u);
  }
}

TEST(PackedAtomic, ContendedParityOnCollidingPoints) {
  // Multi-worker runs reassociate the sums; packed and two-float writeback
  // must still agree to float reassociation level on fully colliding points.
  CollidingPoints<float> p(4000, 12);
  const std::size_t workers = std::max(2, cf::test::env_workers(4));
  for (bool sorted : {false, true}) {
    const auto plain = spread_once(workers, sorted, false, p, nullptr);
    const auto packed = spread_once(workers, sorted, true, p, nullptr);
    EXPECT_LT(cf::cpu::rel_l2_error<float>(packed, plain), 1e-4)
        << (sorted ? "GM-sort" : "GM");
  }
}

TEST(PackedAtomic, PlanLevelToggleMatchesAndStaysAccurate) {
  // End to end through Options::packed_atomics, including the SM writeback
  // path, against the exact NUDFT.
  CollidingPoints<float> p(1500, 13);
  const std::vector<std::int64_t> N{24, 24};
  cf::ThreadPool pool(2);
  std::vector<std::complex<double>> want(24 * 24);
  {
    std::vector<std::complex<double>> cd(p.M);
    std::vector<double> xd(p.M), yd(p.M);
    for (std::size_t j = 0; j < p.M; ++j) {
      // Use the float coordinates/strengths as the ground-truth inputs.
      xd[j] = p.x[j];
      yd[j] = p.y[j];
      cd[j] = {p.c[j].real(), p.c[j].imag()};
    }
    cf::cpu::direct_type1<double>(pool, xd, yd, {}, cd, +1, N, want);
  }
  for (core::Method m : {core::Method::GM, core::Method::GMSort, core::Method::SM}) {
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(4)));
    core::Options opts;
    opts.method = m;
    opts.packed_atomics = 1;
    opts.fastpath = cf::test::env_fastpath();
    core::Plan<float> plan(dev, 1, N, +1, 1e-5, opts);
    plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
    std::vector<std::complex<float>> f(24 * 24);
    plan.execute(p.c.data(), f.data());
    std::vector<std::complex<double>> got(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) got[i] = {f[i].real(), f[i].imag()};
    EXPECT_LT(cf::cpu::rel_l2_error<double>(got, want), 3e-4)
        << core::method_name(m);
  }
}
