// C API surface: lifecycle, both precisions, error codes, and agreement with
// the C++ plan.
#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/c_api.h"
#include "cpu/direct.hpp"

using cf::Rng;

namespace {

struct DeviceGuard {
  cfs_device dev = nullptr;
  DeviceGuard() { cfs_device_create(&dev, 4); }
  ~DeviceGuard() { cfs_device_destroy(dev); }
};

}  // namespace

TEST(CApi, DefaultOptsAreAuto) {
  cfs_opts opts;
  cfs_default_opts(&opts);
  EXPECT_EQ(opts.gpu_method, CFS_METHOD_AUTO);
  EXPECT_EQ(opts.gpu_maxsubprobsize, 0);
  EXPECT_EQ(opts.gpu_binsizex, 0);
}

TEST(CApi, DeviceLifecycle) {
  cfs_device dev = nullptr;
  ASSERT_EQ(cfs_device_create(&dev, 2), CFS_SUCCESS);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(cfs_device_bytes_in_use(dev), 0u);
  EXPECT_EQ(cfs_device_destroy(dev), CFS_SUCCESS);
  EXPECT_EQ(cfs_device_create(nullptr, 2), CFS_ERR_INVALID_ARG);
}

TEST(CApi, DoubleType1MatchesDirect) {
  DeviceGuard g;
  const std::size_t M = 800;
  const int64_t nmodes[2] = {20, 24};
  Rng rng(5);
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  cfs_plan plan = nullptr;
  ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, nmodes, +1, 1e-9, nullptr, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<double>> f(20 * 24);
  ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                        reinterpret_cast<double*>(f.data())),
            CFS_SUCCESS);
  EXPECT_EQ(cfs_destroy(plan), CFS_SUCCESS);

  cf::ThreadPool pool(4);
  std::vector<std::complex<double>> want(20 * 24);
  cf::cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(nmodes, 2), want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-8);
}

TEST(CApi, FloatType2MatchesDirect) {
  DeviceGuard g;
  const std::size_t M = 700;
  const int64_t nmodes[2] = {18, 18};
  Rng rng(6);
  std::vector<float> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
  }
  std::vector<std::complex<float>> f(18 * 18);
  for (auto& v : f)
    v = {static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1))};
  cfs_planf plan = nullptr;
  ASSERT_EQ(cfs_makeplanf(g.dev, 2, 2, nmodes, -1, 1e-5, nullptr, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<float>> c(M);
  ASSERT_EQ(cfs_executef(plan, reinterpret_cast<float*>(c.data()),
                         reinterpret_cast<float*>(f.data())),
            CFS_SUCCESS);
  EXPECT_EQ(cfs_destroyf(plan), CFS_SUCCESS);

  cf::ThreadPool pool(4);
  std::vector<std::complex<float>> want(M);
  cf::cpu::direct_type2<float>(pool, x, y, {}, want, -1, std::span(nmodes, 2), f);
  EXPECT_LT(cf::cpu::rel_l2_error<float>(c, want), 3e-5);
}

TEST(CApi, MethodOptionIsHonoredAndRmk2Rejected) {
  DeviceGuard g;
  cfs_opts opts;
  cfs_default_opts(&opts);
  opts.gpu_method = CFS_METHOD_SM;
  const int64_t n3[3] = {24, 24, 24};
  // SM in 3D double violates shared memory (paper Rmk. 2): a clean error.
  cfs_plan plan = nullptr;
  EXPECT_EQ(cfs_makeplan(g.dev, 1, 3, n3, +1, 1e-6, &opts, &plan),
            CFS_ERR_INVALID_ARG);
  // Works in single precision.
  cfs_planf planf = nullptr;
  EXPECT_EQ(cfs_makeplanf(g.dev, 1, 3, n3, +1, 1e-5, &opts, &planf), CFS_SUCCESS);
  cfs_destroyf(planf);
}

TEST(CApi, InvalidArgumentsReturnErrorCodes) {
  DeviceGuard g;
  const int64_t n2[2] = {16, 16};
  cfs_plan plan = nullptr;
  EXPECT_EQ(cfs_makeplan(nullptr, 1, 2, n2, +1, 1e-6, nullptr, &plan),
            CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_makeplan(g.dev, 1, 4, n2, +1, 1e-6, nullptr, &plan),
            CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_makeplan(g.dev, 7, 2, n2, +1, 1e-6, nullptr, &plan),
            CFS_ERR_INVALID_ARG);
  ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, n2, +1, 1e-6, nullptr, &plan), CFS_SUCCESS);
  EXPECT_EQ(cfs_setpts(plan, 10, nullptr, nullptr, nullptr), CFS_ERR_INVALID_ARG);
  std::vector<double> x(10, 0.0);
  EXPECT_EQ(cfs_setpts(plan, 10, x.data(), nullptr, nullptr), CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_execute(nullptr, nullptr, nullptr), CFS_ERR_INVALID_ARG);
  cfs_destroy(plan);
}

TEST(CApi, CustomBinSizeAndMsub) {
  DeviceGuard g;
  cfs_opts opts;
  cfs_default_opts(&opts);
  opts.gpu_method = CFS_METHOD_SM;
  opts.gpu_binsizex = 16;
  opts.gpu_binsizey = 16;
  opts.gpu_maxsubprobsize = 256;
  const int64_t n2[2] = {32, 32};
  Rng rng(9);
  const std::size_t M = 2000;
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  cfs_plan plan = nullptr;
  ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, n2, +1, 1e-8, &opts, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<double>> f(32 * 32);
  ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                        reinterpret_cast<double*>(f.data())),
            CFS_SUCCESS);
  cfs_destroy(plan);
  cf::ThreadPool pool(4);
  std::vector<std::complex<double>> want(32 * 32);
  cf::cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(n2, 2), want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-7);
}

TEST(CApi, PointCacheInteriorAndTiledOptions) {
  // gpu_point_cache / gpu_interior_fastpath / gpu_tiled_spread follow the
  // gpu_fastpath convention (0 = default-on, -1 = off). Every combination
  // must run and agree with the defaults to accumulation-reassociation level
  // (the toggles change execution strategy, not the transform).
  DeviceGuard g;
  cfs_opts defaults;
  cfs_default_opts(&defaults);
  EXPECT_EQ(defaults.gpu_point_cache, 0);
  EXPECT_EQ(defaults.gpu_interior_fastpath, 0);
  EXPECT_EQ(defaults.gpu_tiled_spread, 0);

  const int64_t nmodes[2] = {40, 36};
  Rng rng(17);
  const std::size_t M = 1500;
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  auto run = [&](const cfs_opts& opts, std::vector<std::complex<double>>& f) {
    cfs_plan plan = nullptr;
    ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, nmodes, +1, 1e-9, &opts, &plan), CFS_SUCCESS);
    ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
    f.assign(40 * 36, {0, 0});
    ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                          reinterpret_cast<double*>(f.data())),
              CFS_SUCCESS);
    EXPECT_EQ(cfs_destroy(plan), CFS_SUCCESS);
  };
  std::vector<std::complex<double>> ref;
  run(defaults, ref);
  for (int pc : {0, -1})
    for (int interior : {0, -1})
      for (int tiled : {0, -1}) {
        cfs_opts opts = defaults;
        opts.gpu_point_cache = pc;
        opts.gpu_interior_fastpath = interior;
        opts.gpu_tiled_spread = tiled;
        std::vector<std::complex<double>> f;
        run(opts, f);
        EXPECT_LT(cf::cpu::rel_l2_error<double>(f, ref), 1e-11)
            << "pc=" << pc << " interior=" << interior << " tiled=" << tiled;
      }
}

TEST(CApi, TileChunkCapAndPlanStats) {
  // gpu_tile_chunk_cap mirrors Options::tile_chunk_cap (0 = auto, > 0 =
  // explicit, -1 = never split); cfs_plan_stats exposes the chunked
  // scheduler's counters. A small explicit cap must split uniform bins into
  // more work items than tiles, -1 must reproduce the unsplit schedule, and
  // every cap agrees with the defaults to reassociation level.
  DeviceGuard g;
  cfs_opts defaults;
  cfs_default_opts(&defaults);
  EXPECT_EQ(defaults.gpu_tile_chunk_cap, 0);
  EXPECT_EQ(cfs_plan_stats(nullptr, nullptr, nullptr, nullptr, nullptr, nullptr),
            CFS_ERR_INVALID_ARG);

  const int64_t nmodes[2] = {40, 36};
  Rng rng(43);
  const std::size_t M = 1500;
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  struct Stats {
    uint64_t chunks = 0, steals = 0, maxpts = 0, tiles = 0;
    int tiled = -1;
  };
  auto run = [&](int cap, std::vector<std::complex<double>>& f, Stats& st) {
    cfs_opts opts = defaults;
    opts.gpu_method = CFS_METHOD_GMSORT;
    opts.gpu_tile_chunk_cap = cap;
    cfs_plan plan = nullptr;
    ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, nmodes, +1, 1e-9, &opts, &plan), CFS_SUCCESS);
    ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
    f.assign(40 * 36, {0, 0});
    ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                          reinterpret_cast<double*>(f.data())),
              CFS_SUCCESS);
    ASSERT_EQ(cfs_plan_stats(plan, &st.chunks, &st.steals, &st.maxpts, &st.tiles,
                             &st.tiled),
              CFS_SUCCESS);
    // NULL-tolerant outparams.
    EXPECT_EQ(cfs_plan_stats(plan, nullptr, nullptr, nullptr, nullptr, nullptr),
              CFS_SUCCESS);
    EXPECT_EQ(cfs_destroy(plan), CFS_SUCCESS);
  };
  std::vector<std::complex<double>> ref, f;
  Stats st_nosplit, st_split;
  run(-1, ref, st_nosplit);
  ASSERT_EQ(st_nosplit.tiled, 1);
  EXPECT_GT(st_nosplit.tiles, 0u);
  EXPECT_EQ(st_nosplit.chunks, st_nosplit.tiles);
  EXPECT_GT(st_nosplit.maxpts, 0u);
  run(16, f, st_split);
  ASSERT_EQ(st_split.tiled, 1);
  EXPECT_GT(st_split.chunks, st_split.tiles) << "explicit cap did not split";
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, ref), 1e-11);
  Stats st_auto;
  run(0, f, st_auto);
  EXPECT_GE(st_auto.chunks, st_auto.tiles);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, ref), 1e-11);

  // Single-precision mirror.
  EXPECT_EQ(cfs_plan_statsf(nullptr, nullptr, nullptr, nullptr, nullptr, nullptr),
            CFS_ERR_INVALID_ARG);
  std::vector<float> xf(x.begin(), x.end()), yf(y.begin(), y.end());
  std::vector<std::complex<float>> cfl(M), ff(40 * 36);
  for (std::size_t j = 0; j < M; ++j)
    cfl[j] = {static_cast<float>(c[j].real()), static_cast<float>(c[j].imag())};
  cfs_opts fopts = defaults;
  fopts.gpu_method = CFS_METHOD_GMSORT;
  fopts.gpu_tile_chunk_cap = 16;
  cfs_planf planf = nullptr;
  ASSERT_EQ(cfs_makeplanf(g.dev, 1, 2, nmodes, +1, 1e-5, &fopts, &planf), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(planf, M, xf.data(), yf.data(), nullptr), CFS_SUCCESS);
  ASSERT_EQ(cfs_executef(planf, reinterpret_cast<float*>(cfl.data()),
                         reinterpret_cast<float*>(ff.data())),
            CFS_SUCCESS);
  Stats stf;
  ASSERT_EQ(cfs_plan_statsf(planf, &stf.chunks, &stf.steals, &stf.maxpts, &stf.tiles,
                            &stf.tiled),
            CFS_SUCCESS);
  EXPECT_EQ(stf.tiled, 1);
  EXPECT_GT(stf.chunks, stf.tiles);
  EXPECT_EQ(cfs_destroyf(planf), CFS_SUCCESS);
}

TEST(CApi, UpsampfacLowUpsamplingPlanAndService) {
  // cfs_opts.upsampfac: 0 is "library default" (sigma 2), 1.25 selects the
  // low-upsampling grid, anything else is a clean error. The sigma = 1.25
  // plan must hit the tolerance against the exact DFT, run the deterministic
  // tiled pipeline, and split the service plan registry from sigma = 2.
  DeviceGuard g;
  cfs_opts opts;
  cfs_default_opts(&opts);
  EXPECT_EQ(opts.upsampfac, 0.0);

  const int64_t n2[2] = {40, 40};
  cfs_plan plan = nullptr;
  opts.upsampfac = 1.5;
  EXPECT_EQ(cfs_makeplan(g.dev, 1, 2, n2, +1, 1e-9, &opts, &plan),
            CFS_ERR_INVALID_ARG);

  const std::size_t M = 800;
  Rng rng(7);
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  opts.upsampfac = 1.25;
  ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, n2, +1, 1e-9, &opts, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<double>> f(40 * 40);
  ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                        reinterpret_cast<double*>(f.data())),
            CFS_SUCCESS);
  int tiled = -1;
  ASSERT_EQ(cfs_plan_stats(plan, nullptr, nullptr, nullptr, nullptr, &tiled),
            CFS_SUCCESS);
  EXPECT_EQ(tiled, 1) << "sigma = 1.25 grid must still pass the tile gate here";
  EXPECT_EQ(cfs_destroy(plan), CFS_SUCCESS);

  cf::ThreadPool pool(4);
  std::vector<std::complex<double>> want(40 * 40);
  cf::cpu::direct_type1<double>(pool, x, y, {}, c, +1, std::span(n2, 2), want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-8);

  // Service layer: two sigmas are two registry entries; same-signature
  // requests ride one cached plan and reproduce the direct plan's bits (the
  // tiled pipeline is deterministic).
  cfs_service svc = nullptr;
  ASSERT_EQ(cfs_service_create(&svc, g.dev, 2, 4, 4), CFS_SUCCESS);
  cfs_opts sigma2;
  cfs_default_opts(&sigma2);
  std::vector<std::complex<double>> o1(40 * 40), o2(40 * 40), o3(40 * 40);
  cfs_request r1, r2, r3;
  ASSERT_EQ(cfs_service_submit(svc, 1, 2, n2, +1, 1e-9, &sigma2, M, x.data(),
                               y.data(), nullptr,
                               reinterpret_cast<const double*>(c.data()),
                               reinterpret_cast<double*>(o1.data()), &r1),
            CFS_SUCCESS);
  ASSERT_EQ(cfs_service_submit(svc, 1, 2, n2, +1, 1e-9, &opts, M, x.data(),
                               y.data(), nullptr,
                               reinterpret_cast<const double*>(c.data()),
                               reinterpret_cast<double*>(o2.data()), &r2),
            CFS_SUCCESS);
  ASSERT_EQ(cfs_service_submit(svc, 1, 2, n2, +1, 1e-9, &opts, M, x.data(),
                               y.data(), nullptr,
                               reinterpret_cast<const double*>(c.data()),
                               reinterpret_cast<double*>(o3.data()), &r3),
            CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, r1), CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, r2), CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, r3), CFS_SUCCESS);
  uint64_t misses = 0;
  ASSERT_EQ(cfs_service_stats(svc, nullptr, nullptr, &misses, nullptr),
            CFS_SUCCESS);
  EXPECT_EQ(misses, 2u) << "sigma must split the plan signature, once per value";
  for (std::size_t i = 0; i < o2.size(); ++i) {
    ASSERT_EQ(o2[i], o3[i]) << i;
    ASSERT_EQ(o2[i], f[i]) << i;
  }
  EXPECT_EQ(cfs_service_destroy(svc), CFS_SUCCESS);
}

TEST(CApi, Type3MatchesDirect) {
  DeviceGuard g;
  Rng rng(21);
  const std::size_t M = 600, K = 500;
  std::vector<double> x(M), y(M), s(K), t(K);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.uniform(-2, 2);
    y[j] = rng.uniform(-2, 2);
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  for (std::size_t k = 0; k < K; ++k) {
    s[k] = rng.uniform(-12, 12);
    t[k] = rng.uniform(-12, 12);
  }
  cfs_plan3 plan = nullptr;
  ASSERT_EQ(cfs_makeplan3(g.dev, 2, +1, 1e-8, nullptr, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts3(plan, M, x.data(), y.data(), nullptr, K, s.data(), t.data(),
                        nullptr),
            CFS_SUCCESS);
  std::vector<std::complex<double>> f(K);
  ASSERT_EQ(cfs_execute3(plan, reinterpret_cast<double*>(c.data()),
                         reinterpret_cast<double*>(f.data())),
            CFS_SUCCESS);
  EXPECT_EQ(cfs_destroy3(plan), CFS_SUCCESS);

  cf::ThreadPool pool(4);
  std::vector<std::complex<double>> want(K);
  cf::cpu::direct_type3<double>(pool, x, y, {}, c, +1, s, t, {}, want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-6);
}

TEST(CApi, Type3InvalidArgs) {
  DeviceGuard g;
  cfs_plan3 plan = nullptr;
  EXPECT_EQ(cfs_makeplan3(nullptr, 2, +1, 1e-6, nullptr, &plan), CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_makeplan3(g.dev, 5, +1, 1e-6, nullptr, &plan), CFS_ERR_INVALID_ARG);
  ASSERT_EQ(cfs_makeplan3(g.dev, 2, +1, 1e-6, nullptr, &plan), CFS_SUCCESS);
  std::vector<double> x(3, 0.0);
  EXPECT_EQ(cfs_setpts3(plan, 3, x.data(), nullptr, nullptr, 3, x.data(), x.data(),
                        nullptr),
            CFS_ERR_INVALID_ARG);  // y missing for dim 2
  cfs_destroy3(plan);
}

TEST(CApi, NtransfAndModeordOptions) {
  DeviceGuard g;
  cfs_opts opts;
  cfs_default_opts(&opts);
  EXPECT_EQ(opts.ntransf, 0);
  EXPECT_EQ(opts.gpu_kerevalmeth, 0);
  EXPECT_EQ(opts.modeord, 0);
  opts.ntransf = 2;
  opts.gpu_kerevalmeth = 1;
  const int64_t nmodes[2] = {12, 12};
  Rng rng(31);
  const std::size_t M = 300;
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(2 * M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
  }
  for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  cfs_plan plan = nullptr;
  ASSERT_EQ(cfs_makeplan(g.dev, 1, 2, nmodes, +1, 1e-8, &opts, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setpts(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  std::vector<std::complex<double>> f(2 * 144);
  ASSERT_EQ(cfs_execute(plan, reinterpret_cast<double*>(c.data()),
                        reinterpret_cast<double*>(f.data())),
            CFS_SUCCESS);
  cfs_destroy(plan);
  // Each batch must match the direct sum of its own strengths.
  cf::ThreadPool pool(4);
  for (int b = 0; b < 2; ++b) {
    std::vector<std::complex<double>> cb(c.begin() + b * M, c.begin() + (b + 1) * M);
    std::vector<std::complex<double>> want(144);
    cf::cpu::direct_type1<double>(pool, x, y, {}, cb, +1, std::span(nmodes, 2), want);
    std::vector<std::complex<double>> got(f.begin() + b * 144, f.begin() + (b + 1) * 144);
    EXPECT_LT(cf::cpu::rel_l2_error<double>(got, want), 1e-7) << "batch " << b;
  }
}

// ---- serving-quality surface: admission, priority, shed accounting ----------

TEST(CApi, ServiceAdmissionShedAndPriority) {
  DeviceGuard g;

  // Invalid admission / priority arguments are rejected up front.
  cfs_service bad = nullptr;
  EXPECT_EQ(cfs_service_create_ex(&bad, g.dev, 1, 4, 4, 1, 99, 0),
            CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_service_create_ex(&bad, g.dev, 1, 4, 4, -1, CFS_ADMIT_SHED, 0),
            CFS_ERR_INVALID_ARG);

  cfs_service svc = nullptr;
  ASSERT_EQ(cfs_service_create_ex(&svc, g.dev, 1, 4, 4, /*max_outstanding=*/1,
                                  CFS_ADMIT_SHED, /*window_us=*/0),
            CFS_SUCCESS);

  const int64_t nmodes2[2] = {32, 24};
  Rng rng(41);
  const std::size_t MB = 300000, MS = 300;
  std::vector<float> xb(MB), yb(MB), xs(MS), ys(MS);
  for (std::size_t j = 0; j < MB; ++j) {
    xb[j] = static_cast<float>(rng.angle());
    yb[j] = static_cast<float>(rng.angle());
  }
  for (std::size_t j = 0; j < MS; ++j) {
    xs[j] = static_cast<float>(rng.angle());
    ys[j] = static_cast<float>(rng.angle());
  }
  std::vector<float> cb(2 * MB), cs(2 * MS);
  for (auto& v : cb) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : cs) v = static_cast<float>(rng.uniform(-1, 1));
  const std::size_t ntot = 32 * 24;

  // A big blocker fills the 1-deep cap; small submissions shed with the
  // dedicated error code until the dispatcher frees the slot.
  std::vector<float> fb(2 * ntot);
  cfs_request rb = 0;
  ASSERT_EQ(cfs_service_submitf(svc, 1, 2, nmodes2, +1, 1e-5, nullptr, MB, xb.data(),
                                yb.data(), nullptr, cb.data(), fb.data(), &rb),
            CFS_SUCCESS);
  int shed = 0, served = 0;
  std::vector<std::vector<float>> fs;
  fs.reserve(4000);
  for (int i = 0; i < 4000 && shed < 3; ++i) {
    fs.emplace_back(2 * ntot);
    cfs_request r = 0;
    ASSERT_EQ(cfs_service_submitf(svc, 1, 2, nmodes2, +1, 1e-5, nullptr, MS,
                                  xs.data(), ys.data(), nullptr, cs.data(),
                                  fs.back().data(), &r),
              CFS_SUCCESS);
    const int rc = cfs_service_wait(svc, r);
    if (rc == CFS_ERR_OVERLOADED)
      ++shed;
    else if (rc == CFS_SUCCESS)
      ++served;
    else
      FAIL() << "unexpected wait status " << rc;
  }
  EXPECT_EQ(cfs_service_wait(svc, rb), CFS_SUCCESS);
  EXPECT_GE(shed, 3);

  // iflag = 0 is rejected through the future, not folded to +1.
  {
    std::vector<float> f0(2 * ntot);
    cfs_request r0 = 0;
    ASSERT_EQ(cfs_service_submitf(svc, 1, 2, nmodes2, 0, 1e-5, nullptr, MS,
                                  xs.data(), ys.data(), nullptr, cs.data(),
                                  f0.data(), &r0),
              CFS_SUCCESS);
    EXPECT_EQ(cfs_service_wait(svc, r0), CFS_ERR_INVALID_ARG);
  }

  uint64_t submitted = 0, completed = 0, failed = 0, shed_ctr = 0;
  ASSERT_EQ(cfs_service_stats_ex(svc, &submitted, &completed, &failed, &shed_ctr),
            CFS_SUCCESS);
  EXPECT_EQ(submitted, completed + failed);  // every request waited on above
  EXPECT_EQ(shed_ctr, static_cast<uint64_t>(shed));
  EXPECT_GE(failed, shed_ctr + 1);  // the sheds plus the iflag rejection
  EXPECT_EQ(completed, static_cast<uint64_t>(served) + 1);  // smalls + blocker
  cfs_service_destroy(svc);

  // Block policy at the same cap never sheds, and the priority submits are
  // served like any other request.
  ASSERT_EQ(cfs_service_create_ex(&svc, g.dev, 1, 4, 4, 1, CFS_ADMIT_BLOCK, -1),
            CFS_SUCCESS);
  const int kReq = 6;
  std::vector<std::vector<float>> outs(kReq, std::vector<float>(2 * ntot));
  std::vector<cfs_request> reqs(kReq);
  for (int i = 0; i < kReq; ++i) {
    const int pri = i % 2 == 0 ? CFS_PRIORITY_INTERACTIVE : CFS_PRIORITY_BULK;
    ASSERT_EQ(cfs_service_submitf_pri(svc, 1, 2, nmodes2, +1, 1e-5, nullptr, MS,
                                      xs.data(), ys.data(), nullptr, cs.data(),
                                      outs[i].data(), pri, &reqs[i]),
              CFS_SUCCESS);
  }
  cfs_request rbad = 0;
  EXPECT_EQ(cfs_service_submitf_pri(svc, 1, 2, nmodes2, +1, 1e-5, nullptr, MS,
                                    xs.data(), ys.data(), nullptr, cs.data(),
                                    outs[0].data(), 42, &rbad),
            CFS_ERR_INVALID_ARG);
  for (int i = 0; i < kReq; ++i)
    EXPECT_EQ(cfs_service_wait(svc, reqs[i]), CFS_SUCCESS);
  ASSERT_EQ(cfs_service_stats_ex(svc, &submitted, &completed, &failed, &shed_ctr),
            CFS_SUCCESS);
  EXPECT_EQ(shed_ctr, 0u);
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(submitted, completed);
  EXPECT_EQ(completed, static_cast<uint64_t>(kReq));
  // All six shared one point set and strengths: identical outputs.
  for (int i = 1; i < kReq; ++i) EXPECT_EQ(outs[i], outs[0]);
  cfs_service_destroy(svc);
}

TEST(CApi, ShardedServiceRoundTripAndStats) {
  cfs_sharded svc = nullptr;
  EXPECT_EQ(cfs_sharded_create(nullptr, 2, 1, 1, 8, 4), CFS_ERR_INVALID_ARG);
  // 2 shards, 1 device worker and 1 dispatch thread each: serial shards, so
  // every comparison below is bitwise.
  ASSERT_EQ(cfs_sharded_create(&svc, 2, 1, 1, 8, 4), CFS_SUCCESS);

  // ---- type 1, float: one hot signature -> one shard, one plan ----
  const int64_t nmodes[2] = {32, 24};
  const std::size_t M = 300, ntot = 32 * 24;
  Rng rng(33);
  std::vector<float> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
  }
  const int kReq = 4;
  std::vector<std::vector<float>> cin(kReq), fout(kReq, std::vector<float>(2 * ntot));
  for (auto& ci : cin) {
    ci.resize(2 * M);
    for (auto& v : ci) v = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<cfs_request> reqs(kReq);
  for (int i = 0; i < kReq; ++i)
    ASSERT_EQ(cfs_sharded_submitf(svc, 1, 2, nmodes, +1, 1e-5, nullptr, M, x.data(),
                                  y.data(), nullptr, cin[i].data(), fout[i].data(),
                                  &reqs[i]),
              CFS_SUCCESS);
  for (int i = 0; i < kReq; ++i)
    EXPECT_EQ(cfs_sharded_wait(svc, reqs[i]), CFS_SUCCESS);
  EXPECT_EQ(cfs_sharded_wait(svc, 987654), CFS_ERR_INVALID_ARG);  // unknown handle

  int nsh = 0;
  uint64_t routed = 0, sticky = 0, migrations = 0, misses = 0, reuses = 0;
  ASSERT_EQ(cfs_sharded_stats(svc, &nsh, &routed, &sticky, &migrations, &misses,
                              &reuses),
            CFS_SUCCESS);
  EXPECT_EQ(nsh, 2);
  EXPECT_EQ(routed, static_cast<uint64_t>(kReq));
  EXPECT_EQ(sticky, static_cast<uint64_t>(kReq - 1));
  EXPECT_EQ(migrations, 0u);
  EXPECT_EQ(misses, 1u);  // sticky routing: one plan across both shards

  // Reference on a private serial device, with the throughput point cache a
  // service plan runs under (batching is batch-strided, so ntransf = 1
  // executes are bit-identical to the coalesced ones and keep the reference
  // buffers single-vector).
  cfs_device rdev = nullptr;
  ASSERT_EQ(cfs_device_create(&rdev, 1), CFS_SUCCESS);
  cfs_opts ropts;
  cfs_default_opts(&ropts);
  ropts.gpu_point_cache = 2;
  {
    cfs_planf plan = nullptr;
    ASSERT_EQ(cfs_makeplanf(rdev, 1, 2, nmodes, +1, 1e-5, &ropts, &plan),
              CFS_SUCCESS);
    ASSERT_EQ(cfs_setptsf(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
    for (int i = 0; i < kReq; ++i) {
      std::vector<float> want(2 * ntot), c = cin[i];
      ASSERT_EQ(cfs_executef(plan, c.data(), want.data()), CFS_SUCCESS);
      EXPECT_EQ(fout[i], want) << "sharded type-1 req " << i;
    }
    cfs_destroyf(plan);
  }

  // ---- type 3, double, through the same tier ----
  const std::size_t M3 = 220, K3 = 160;
  std::vector<double> x3(M3), y3(M3), s3(K3), t3(K3);
  std::vector<double> c3(2 * M3);
  for (std::size_t j = 0; j < M3; ++j) {
    x3[j] = rng.uniform(-2, 2);
    y3[j] = rng.uniform(-2, 2);
  }
  for (std::size_t k = 0; k < K3; ++k) {
    s3[k] = rng.uniform(-12, 12);
    t3[k] = rng.uniform(-12, 12);
  }
  for (auto& v : c3) v = rng.uniform(-1, 1);
  const int k3Req = 3;
  std::vector<std::vector<double>> f3(k3Req, std::vector<double>(2 * K3));
  std::vector<cfs_request> reqs3(k3Req);
  for (int i = 0; i < k3Req; ++i)
    ASSERT_EQ(cfs_sharded_submit3(svc, 2, +1, 1e-8, nullptr, M3, x3.data(),
                                  y3.data(), nullptr, K3, s3.data(), t3.data(),
                                  nullptr, c3.data(), f3[i].data(), &reqs3[i]),
              CFS_SUCCESS);
  for (int i = 0; i < k3Req; ++i)
    EXPECT_EQ(cfs_sharded_wait(svc, reqs3[i]), CFS_SUCCESS);
  {
    cfs_plan3 plan = nullptr;
    ASSERT_EQ(cfs_makeplan3(rdev, 2, +1, 1e-8, &ropts, &plan), CFS_SUCCESS);
    ASSERT_EQ(cfs_setpts3(plan, M3, x3.data(), y3.data(), nullptr, K3, s3.data(),
                          t3.data(), nullptr),
              CFS_SUCCESS);
    std::vector<double> want(2 * K3), c = c3;
    ASSERT_EQ(cfs_execute3(plan, c.data(), want.data()), CFS_SUCCESS);
    for (int i = 0; i < k3Req; ++i)
      EXPECT_EQ(f3[i], want) << "sharded type-3 req " << i;
    cfs_destroy3(plan);
  }
  cfs_device_destroy(rdev);

  // ---- ledger + per-shard counters ----
  uint64_t submitted = 0, completed = 0, failed = 0, shed = 0;
  ASSERT_EQ(cfs_sharded_stats_ex(svc, &submitted, &completed, &failed, &shed),
            CFS_SUCCESS);
  EXPECT_EQ(submitted, static_cast<uint64_t>(kReq + k3Req));
  EXPECT_EQ(completed, submitted);
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(shed, 0u);

  uint64_t sum_sub = 0;
  for (int i = 0; i < nsh; ++i) {
    uint64_t ssub = 0, scomp = 0, sbatches = 0, smisses = 0;
    ASSERT_EQ(cfs_sharded_shard_stats(svc, i, &ssub, &scomp, &sbatches, &smisses),
              CFS_SUCCESS);
    EXPECT_EQ(ssub, scomp);
    sum_sub += ssub;
  }
  EXPECT_EQ(sum_sub, submitted);  // every admitted request reached one shard
  uint64_t dummy = 0;
  EXPECT_EQ(cfs_sharded_shard_stats(svc, nsh, &dummy, nullptr, nullptr, nullptr),
            CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_sharded_shard_stats(svc, -1, &dummy, nullptr, nullptr, nullptr),
            CFS_ERR_INVALID_ARG);

  EXPECT_EQ(cfs_sharded_destroy(svc), CFS_SUCCESS);
  EXPECT_EQ(cfs_sharded_destroy(nullptr), CFS_SUCCESS);  // no-op, like the others
}

TEST(CApi, ObservabilityExportsAndErrors) {
  // Save/restore the process-global trace switch so suite order (and an
  // external CF_TRACE=1 CI pass) never leaks between tests.
  const int was = cfs_obs_enabled();
  EXPECT_EQ(cfs_obs_enable(1), CFS_SUCCESS);
  EXPECT_EQ(cfs_obs_enabled(), 1);

  // NULL paths are argument errors, not crashes.
  EXPECT_EQ(cfs_obs_snapshot_json(nullptr), CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_obs_prometheus(nullptr), CFS_ERR_INVALID_ARG);
  EXPECT_EQ(cfs_obs_trace_export(nullptr), CFS_ERR_INVALID_ARG);

  // Push a small workload through the service tier so the registry and the
  // rings have content worth exporting.
  DeviceGuard g;
  const std::size_t M = 400;
  const int64_t n2[2] = {20, 24};
  Rng rng(91);
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  cfs_service svc = nullptr;
  ASSERT_EQ(cfs_service_create(&svc, g.dev, 1, 4, 0), CFS_SUCCESS);
  std::vector<std::complex<double>> out(20 * 24);
  cfs_request r;
  ASSERT_EQ(cfs_service_submit(svc, 1, 2, n2, +1, 1e-6, nullptr, M, x.data(),
                               y.data(), nullptr,
                               reinterpret_cast<const double*>(c.data()),
                               reinterpret_cast<double*>(out.data()), &r),
            CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, r), CFS_SUCCESS);

  auto slurp = [](const char* path) {
    std::string text;
    if (std::FILE* f = std::fopen(path, "rb")) {
      char buf[4096];
      for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
        text.append(buf, n);
      std::fclose(f);
    }
    std::remove(path);
    return text;
  };

  // The service is drained (wait returned) but still ALIVE: its metrics
  // deregister from the global registry on destroy, so exports run first.
  // The ledger is settled, so the snapshot reports consistent and succeeds.
  ASSERT_EQ(cfs_obs_snapshot_json("c_api_obs.json"), CFS_SUCCESS);
  const std::string json = slurp("c_api_obs.json");
  EXPECT_NE(json.find("\"services\""), std::string::npos);
  EXPECT_NE(json.find("\"consistent\":true"), std::string::npos);

  ASSERT_EQ(cfs_obs_prometheus("c_api_obs.prom"), CFS_SUCCESS);
  const std::string prom = slurp("c_api_obs.prom");
  EXPECT_NE(prom.find("cf_submitted_total{"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  ASSERT_EQ(cfs_obs_trace_export("c_api_obs_trace.json"), CFS_SUCCESS);
  const std::string trace = slurp("c_api_obs_trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"execute\""), std::string::npos);

  EXPECT_EQ(cfs_service_destroy(svc), CFS_SUCCESS);
  EXPECT_EQ(cfs_obs_trace_reset(), CFS_SUCCESS);
  EXPECT_EQ(cfs_obs_enable(was), CFS_SUCCESS);
  EXPECT_EQ(cfs_obs_enabled(), was);
}
