// Multi-worker parity sweep: type-1 spreading runs under real atomic
// contention only when the vgpu Device has more than one worker. Every
// spreading method (and the packed-atomic and batched paths) is executed at
// worker counts {1, 2, hardware_concurrency, $CF_WORKERS} and compared
// against the single-worker reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

template <typename T>
struct Problem {
  std::vector<std::int64_t> N{28, 26};
  std::vector<T> x, y;
  std::vector<std::complex<T>> c;
  std::size_t M;

  explicit Problem(std::size_t M_, bool cluster, std::uint64_t seed) : M(M_) {
    Rng rng(seed);
    x.resize(M);
    y.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      // Clustered points maximize bin collisions, the worst case for atomics.
      x[j] = static_cast<T>(cluster ? rng.uniform(-3.14159, -3.0) : rng.angle());
      y[j] = static_cast<T>(cluster ? rng.uniform(-3.14159, -3.0) : rng.angle());
    }
    c.resize(M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
};

std::vector<std::size_t> worker_counts() {
  std::vector<std::size_t> counts{1, 2,
                                  std::max(1u, std::thread::hardware_concurrency())};
  const int env = cf::test::env_int("CF_WORKERS", 0);
  if (env > 0) counts.push_back(static_cast<std::size_t>(env));
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

template <typename T>
std::vector<std::complex<T>> run_type1(std::size_t workers, const Problem<T>& p,
                                       core::Options opts, int ntransf = 1) {
  vgpu::Device dev(workers);
  opts.ntransf = ntransf;
  core::Plan<T> plan(dev, 1, p.N, +1, std::is_same_v<T, double> ? 1e-9 : 1e-5, opts);
  plan.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<T>> f(static_cast<std::size_t>(ntransf * p.N[0] * p.N[1]));
  std::vector<std::complex<T>> c = p.c;
  if (ntransf > 1) {
    // Reuse the strengths with per-plane phase flips so planes differ.
    c.resize(ntransf * p.M);
    for (int b = 1; b < ntransf; ++b)
      for (std::size_t j = 0; j < p.M; ++j)
        c[b * p.M + j] = p.c[j] * T(b % 2 ? -1 : 1);
  }
  plan.execute(c.data(), f.data());
  return f;
}

template <typename T>
void sweep_methods(bool cluster, double sigma = cf::test::env_upsampfac()) {
  const double tol = std::is_same_v<T, double> ? 1e-11 : 1e-4;
  Problem<T> p(4000, cluster, cluster ? 31 : 32);
  for (core::Method m : {core::Method::GM, core::Method::GMSort, core::Method::SM}) {
    core::Options opts;
    opts.method = m;
    opts.fastpath = cf::test::env_fastpath();
    opts.tiled_spread = cf::test::env_tiled();
    opts.upsampfac = sigma;
    const auto ref = run_type1<T>(1, p, opts);
    for (std::size_t wc : worker_counts()) {
      const auto got = run_type1<T>(wc, p, opts);
      EXPECT_LT(cf::cpu::rel_l2_error<T>(got, ref), tol)
          << core::method_name(m) << " workers=" << wc << " cluster=" << cluster
          << " sigma=" << sigma;
    }
  }
}

}  // namespace

TEST(MultiWorker, Type1ParityAcrossWorkerCountsF64) {
  sweep_methods<double>(false);
  sweep_methods<double>(true);
}

TEST(MultiWorker, Type1ParityAcrossWorkerCountsF32) {
  sweep_methods<float>(false);
  sweep_methods<float>(true);
}

TEST(MultiWorker, Type1ParitySigma125) {
  // Same contention sweep on the low-upsampling grid: the wider kernel (w = 9
  // float / w = 15 double) touches more cells per point, so the collision
  // profile is harsher while nf is smaller. Forced regardless of CF_UPSAMP so
  // the default ctest run covers both grids.
  sweep_methods<double>(true, 1.25);
  sweep_methods<float>(true, 1.25);
}

TEST(MultiWorker, PackedAtomicsStableUnderContention) {
  // The packed 8-byte CAS must survive real multi-worker contention: compare
  // every worker count against the single-worker packed reference on
  // clustered (maximally colliding) points.
  Problem<float> p(6000, /*cluster=*/true, 33);
  for (core::Method m : {core::Method::GM, core::Method::GMSort}) {
    core::Options opts;
    opts.method = m;
    opts.packed_atomics = 1;
    opts.fastpath = cf::test::env_fastpath();
    opts.tiled_spread = cf::test::env_tiled();
    opts.upsampfac = cf::test::env_upsampfac();
    const auto ref = run_type1<float>(1, p, opts);
    for (std::size_t wc : worker_counts()) {
      const auto got = run_type1<float>(wc, p, opts);
      EXPECT_LT(cf::cpu::rel_l2_error<float>(got, ref), 1e-4)
          << core::method_name(m) << " workers=" << wc;
    }
  }
}

TEST(MultiWorker, BatchedExecuteParityAcrossWorkerCounts) {
  // The batched pipeline's atomic contention profile differs from the serial
  // one (B planes live at once); sweep it too.
  Problem<float> p(3000, /*cluster=*/false, 34);
  const int B = 3;
  core::Options opts;
  opts.fastpath = cf::test::env_fastpath();
  opts.tiled_spread = cf::test::env_tiled();
  opts.upsampfac = cf::test::env_upsampfac();
  const auto ref = run_type1<float>(1, p, opts, B);
  for (std::size_t wc : worker_counts()) {
    const auto got = run_type1<float>(wc, p, opts, B);
    EXPECT_LT(cf::cpu::rel_l2_error<float>(got, ref), 1e-4) << "workers=" << wc;
  }
}
