// Thread pool, RNG, and table utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

using cf::Rng;
using cf::Table;
using cf::ThreadPool;

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i, std::size_t) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for(0, 10000, [&](std::size_t, std::size_t wid) {
    if (wid >= 3) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, ParallelChunksPartitionIsDisjointAndComplete) {
  ThreadPool pool(6);
  const std::size_t n = 12345;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_chunks(0, n, 40, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&](std::size_t) { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no atomics needed: single worker
  pool.parallel_for(0, 1000, [&](std::size_t i, std::size_t) { sum += i; });
  EXPECT_EQ(sum, 999u * 1000 / 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i)
    if (a.next_u64() != b.next_u64()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, AngleInDomain) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, -3.14159266);
    EXPECT_LT(a, 3.14159266);
  }
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Table, AlignsAndFormats) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"xxxx", "y"});
  const std::string s = t.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_sci(12345.0, 1), "1.2e+04");
}
