// Concurrent NUFFT service layer (src/service):
//  * results through the service are identical to serial per-request Plan
//    executes — bitwise on the (default) deterministic tiled pipeline —
//    regardless of coalescing batch composition, submission order, and
//    service/worker thread counts, across mixed signatures submitted from
//    many threads at once;
//  * the signature-keyed LRU plan registry counts hits, misses, and
//    evictions, and point-set fingerprinting reuses set_points;
//  * request failures (bad type / modes / method, missing buffers, iflag 0)
//    propagate through the futures as the exceptions a direct Plan would
//    throw, and the ledger invariant submitted == completed + failed holds
//    after a drain under every admission policy;
//  * serving quality: the max_outstanding admission cap (Block backpressure
//    vs Shed fail-fast with OverloadedError), the adaptive coalescing window
//    (early-close on batch-full / interactive / idle), and interactive
//    priority (queue jumping) — none of which may change a response's bits;
//  * CF_SERVICE_THREADS and CF_SERVICE_WINDOW_US size the dispatch pool and
//    window, with strict (diagnosed, non-silent) parsing of garbage values
//    (the CI contention pass runs this suite at CF_SERVICE_THREADS=4
//    CF_WORKERS=2, and a window pass at CF_SERVICE_WINDOW_US=5000);
//  * the cfs_service_* C API drives the same machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <cstdlib>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/c_api.h"
#include "core/plan.hpp"
#include "core/type3.hpp"
#include "cpu/cpu_plan.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace service = cf::service;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Whether service outputs must be bitwise equal to serial references: type-2
/// pipelines (gather interp, no atomics) and one-worker devices always are;
/// type 1 is when the deterministic tiled spread actually ran (`ref_tiled` —
/// the geometry gate or CF_TILED=0 can leave a plan on the atomic fallback,
/// whose float summation order varies with worker scheduling).
bool expect_bitwise(std::size_t workers, int type, int ref_tiled) {
  return workers <= 1 || type == 2 || ref_tiled == 1;
}

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  int type;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> input;   // c (type 1) or f (type 2)
  std::size_t M;
  std::int64_t ntot;

  Problem(std::vector<std::int64_t> modes, int type_, std::size_t M_,
          std::uint64_t seed)
      : N(std::move(modes)), type(type_), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
      if (dim >= 3) z[j] = static_cast<T>(rng.angle());
    }
    input.resize(type == 1 ? M : static_cast<std::size_t>(ntot));
    for (auto& v : input)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }

  std::size_t out_len() const {
    return type == 1 ? static_cast<std::size_t>(ntot) : M;
  }
  const T* yp() const { return y.empty() ? nullptr : y.data(); }
  const T* zp() const { return z.empty() ? nullptr : z.data(); }

  service::Request<T> request(core::Options opts,
                              std::vector<std::complex<T>>& out) const {
    service::Request<T> r;
    r.type = type;
    r.modes = N;
    r.tol = 1e-5;
    r.opts = opts;
    r.M = M;
    r.x = x.data();
    r.y = yp();
    r.z = zp();
    r.input = input.data();
    r.output = out.data();
    return r;
  }

  /// Serial reference: one B = 1 Plan execute on a fresh device. `tiled`
  /// reports whether the spread ran on the deterministic tiled engine.
  std::vector<std::complex<T>> reference(std::size_t workers, core::Options opts,
                                         int* tiled = nullptr) const {
    vgpu::Device dev(workers);
    core::Plan<T> plan(dev, type, N, +1, 1e-5, opts);
    plan.set_points(M, x.data(), yp(), zp());
    std::vector<std::complex<T>> out(out_len());
    if (type == 1) {
      std::vector<std::complex<T>> c = input;
      plan.execute(c.data(), out.data());
    } else {
      std::vector<std::complex<T>> f = input;
      plan.execute(out.data(), f.data());
    }
    if (tiled) *tiled = plan.last_breakdown().tiled;
    return out;
  }
};

core::Options env_opts() {
  core::Options o;
  o.fastpath = cf::test::env_fastpath();
  o.tiled_spread = cf::test::env_tiled();
  o.upsampfac = cf::test::env_upsampfac();
  return o;
}

/// Per-dim request options: 1D needs an explicit bin size (the 1024-point
/// default bin always fails the tile-geometry gate on test-sized grids).
core::Options opts_for(int dim) {
  core::Options o = env_opts();
  if (dim == 1) o.binsize = {32, 1, 1};
  return o;
}

/// 2D/3D type-1 shapes sized so the tile-geometry gate passes — sigma = 1.25
/// kernels are wider, so the low-upsampling run (CF_UPSAMP=1.25) needs larger
/// modes for the padded bin to fit the fine grid (as in test_tiled_spread).
std::vector<std::int64_t> modes_2d() {
  return cf::test::env_upsampfac() != 2.0 ? std::vector<std::int64_t>{40, 40}
                                          : std::vector<std::int64_t>{20, 24};
}
std::vector<std::int64_t> modes_3d() {
  return cf::test::env_upsampfac() != 2.0 ? std::vector<std::int64_t>{28, 28, 26}
                                          : std::vector<std::int64_t>{16, 16, 12};
}

template <typename T>
void expect_same(const std::vector<std::complex<T>>& got,
                 const std::vector<std::complex<T>>& want, bool bitwise,
                 const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  double worst = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (bitwise) {
      ASSERT_EQ(got[i], want[i]) << what << " i=" << i;
    } else {
      worst = std::max(worst, std::abs(std::complex<double>(got[i]) -
                                       std::complex<double>(want[i])));
    }
  }
  if (!bitwise) EXPECT_LT(worst, 1e-3) << what;
}

/// 2D type-3 problem: arbitrary source coordinates and target frequencies
/// (neither periodic nor integer), served through Request::type = 3.
struct T3Problem {
  std::size_t M, K;
  std::vector<double> x, y, s, t;
  std::vector<std::complex<double>> c;

  explicit T3Problem(std::uint64_t seed, std::size_t M_ = 240, std::size_t K_ = 180)
      : M(M_), K(K_), x(M_), y(M_), s(K_), t(K_), c(M_) {
    Rng rng(seed);
    for (auto& v : x) v = rng.uniform(-3, 3);
    for (auto& v : y) v = rng.uniform(-3, 3);
    for (auto& v : s) v = rng.uniform(-10, 10);
    for (auto& v : t) v = rng.uniform(-10, 10);
    for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }

  service::Request<double> request(core::Options opts,
                                   std::vector<std::complex<double>>& out) const {
    service::Request<double> r;
    r.type = 3;
    r.modes = {1, 1};  // type 3 has no mode grid: modes only fixes dim
    r.tol = 1e-9;
    r.opts = opts;
    r.M = M;
    r.x = x.data();
    r.y = y.data();
    r.K = K;
    r.s = s.data();
    r.t = t.data();
    r.input = c.data();
    r.output = out.data();
    return r;
  }

  /// Direct Type3Plan on the options a service plan actually runs with
  /// (point cache promoted, ntransf = coalescing cap).
  std::vector<std::complex<double>> reference(std::size_t workers, core::Options opts,
                                              int max_batch = 8) const {
    vgpu::Device dev(workers);
    opts.point_cache = 2;
    opts.ntransf = max_batch;
    core::Type3Plan<double> plan(dev, 2, +1, 1e-9, opts);
    plan.set_points(M, x.data(), y.data(), nullptr, K, s.data(), t.data(), nullptr);
    std::vector<std::complex<double>> out(K), cc = c;
    plan.execute(cc.data(), out.data());
    return out;
  }
};

}  // namespace

// ---- N submitter threads x mixed signatures ---------------------------------

TEST(Service, MixedSignaturesFromManyThreadsMatchSerial) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::NufftService svc(dev);  // threads from CF_SERVICE_THREADS (else 2)

  // Mixed signatures: every dim, both types, both precisions (3D modes sized
  // so the tile-geometry gate passes, as in test_tiled_spread).
  std::vector<Problem<float>> pf;
  std::vector<Problem<double>> pd;
  pf.emplace_back(std::vector<std::int64_t>{64}, 1, 500, 11);
  pf.emplace_back(modes_2d(), 1, 600, 12);
  pf.emplace_back(modes_3d(), 1, 700, 13);
  pf.emplace_back(std::vector<std::int64_t>{20, 24}, 2, 600, 14);
  pd.emplace_back(modes_3d(), 1, 700, 15);
  pd.emplace_back(std::vector<std::int64_t>{64}, 2, 500, 16);

  std::vector<core::Options> optf, optd;
  for (const auto& p : pf) optf.push_back(opts_for(static_cast<int>(p.N.size())));
  for (const auto& p : pd) optd.push_back(opts_for(static_cast<int>(p.N.size())));

  std::vector<std::vector<std::complex<float>>> reff(pf.size());
  std::vector<std::vector<std::complex<double>>> refd(pd.size());
  std::vector<int> tiledf(pf.size(), 0), tiledd(pd.size(), 0);
  for (std::size_t i = 0; i < pf.size(); ++i)
    reff[i] = pf[i].reference(workers, optf[i], &tiledf[i]);
  for (std::size_t i = 0; i < pd.size(); ++i)
    refd[i] = pd[i].reference(workers, optd[i], &tiledd[i]);

  // 4 submitter threads x 3 rounds x every signature, all in flight at once.
  const int kThreads = 4, kRounds = 3;
  struct Slot {
    std::vector<std::vector<std::complex<float>>> outf;
    std::vector<std::vector<std::complex<double>>> outd;
    std::vector<std::future<service::ExecReport>> futs;
  };
  std::vector<Slot> slots(kThreads);
  for (auto& s : slots) {
    s.outf.resize(kRounds * pf.size());
    s.outd.resize(kRounds * pd.size());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& s = slots[t];
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t i = 0; i < pf.size(); ++i) {
          auto& out = s.outf[r * pf.size() + i];
          out.assign(pf[i].out_len(), {});
          s.futs.push_back(svc.submit(pf[i].request(optf[i], out)));
        }
        for (std::size_t i = 0; i < pd.size(); ++i) {
          auto& out = s.outd[r * pd.size() + i];
          out.assign(pd[i].out_len(), {});
          s.futs.push_back(svc.submit(pd[i].request(optd[i], out)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (auto& s : slots) {
    for (auto& f : s.futs) {
      const auto rep = f.get();
      EXPECT_GE(rep.batch, 1);
      EXPECT_LT(rep.batch_index, rep.batch);
    }
    for (int r = 0; r < kRounds; ++r) {
      for (std::size_t i = 0; i < pf.size(); ++i)
        expect_same(s.outf[r * pf.size() + i], reff[i],
                    expect_bitwise(workers, pf[i].type, tiledf[i]), "float signature");
      for (std::size_t i = 0; i < pd.size(); ++i)
        expect_same(s.outd[r * pd.size() + i], refd[i],
                    expect_bitwise(workers, pd[i].type, tiledd[i]), "double signature");
    }
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads) * kRounds *
                              (pf.size() + pd.size()));
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.failed, 0u);
  // Six signatures, many requests each: plans were reused, not rebuilt...
  EXPECT_EQ(st.plan_misses, pf.size() + pd.size());
  // ...and every dispatch after the first per signature reused set_points.
  EXPECT_EQ(st.setpts_builds, pf.size() + pd.size());
  EXPECT_GT(st.setpts_reuses, 0u);
}

// ---- coalescing: bitwise-identical across batch composition -----------------

TEST(Service, ResponsesBitwiseIdenticalAcrossCoalescingAndThreadCounts) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  const core::Options opts = env_opts();
  // Modes sized so the tile-geometry gate passes (test_tiled_spread's 3D
  // shape): the coalescing guarantee under test is the bitwise one.
  Problem<float> p(modes_3d(), 1, 900, 42);

  // 8 distinct strength vectors over one point set / signature.
  const int kReq = 8;
  std::vector<Problem<float>> reqs;
  reqs.reserve(kReq);
  Rng rng(77);
  for (int i = 0; i < kReq; ++i) {
    reqs.push_back(p);
    for (auto& v : reqs.back().input)
      v = {static_cast<float>(rng.uniform(-1, 1)),
           static_cast<float>(rng.uniform(-1, 1))};
  }
  std::vector<std::vector<std::complex<float>>> ref(kReq);
  int ref_tiled = 0;
  for (int i = 0; i < kReq; ++i) ref[i] = reqs[i].reference(workers, opts, &ref_tiled);
  if (cf::test::env_tiled()) {
    ASSERT_EQ(ref_tiled, 1);  // the shape above must exercise the tiled path
  }

  // Service shapes that force different batch compositions: one dispatcher
  // with a window (full 8-batch), several dispatchers with max_batch 3
  // (ragged 3+3+2 or racier), reversed submission order, and every serving
  // policy — admission caps (both policies), adaptive windows, priority
  // mixes. The bitwise guarantee must survive ALL of them.
  struct Shape {
    int threads, max_batch;
    std::chrono::microseconds window;
    bool reverse;
    bool adaptive = false;
    service::Admission admission = service::Admission::Block;
    std::size_t cap = 0;       // max_outstanding; 0 = unbounded
    bool priority_mix = false; // every other request interactive
  } shapes[] = {
      // Fixed window, one dispatcher: all 8 land in one full batch.
      {1, 8, std::chrono::microseconds(20000), false},
      // Same window, adaptive: early-closes may split the batch arbitrarily.
      {1, 8, std::chrono::microseconds(20000), false, true},
      {1, 3, std::chrono::microseconds(0), false},
      {4, 3, std::chrono::microseconds(0), true},
      {2, 1, std::chrono::microseconds(0), false},  // no coalescing
      // Backpressure: submissions block at a 2-deep admission cap.
      {2, 4, std::chrono::microseconds(0), false, true,
       service::Admission::Block, 2},
      // Shed policy with headroom (cap 16 > 8 in flight): nothing sheds.
      {2, 4, std::chrono::microseconds(5000), false, true,
       service::Admission::Shed, 16},
      // Interactive/bulk mix under a cap: jumps must not change the bits.
      {2, 4, std::chrono::microseconds(2000), false, true,
       service::Admission::Block, 3, true},
  };

  const bool bitwise = expect_bitwise(workers, 1, ref_tiled);
  for (const auto& sh : shapes) {
    vgpu::Device dev(workers);
    service::ServiceConfig cfg;
    cfg.threads = sh.threads;
    cfg.max_batch = sh.max_batch;
    cfg.coalesce_window = sh.window;
    cfg.adaptive_window = sh.adaptive;
    cfg.admission = sh.admission;
    cfg.max_outstanding = sh.cap;
    service::NufftService svc(dev, cfg);

    std::vector<std::vector<std::complex<float>>> out(kReq);
    std::vector<std::future<service::ExecReport>> futs(kReq);
    for (int i = 0; i < kReq; ++i) {
      const int k = sh.reverse ? kReq - 1 - i : i;
      out[k].assign(reqs[k].out_len(), {});
      auto r = reqs[k].request(opts, out[k]);
      if (sh.priority_mix && i % 2 == 0) r.priority = service::Priority::Interactive;
      futs[k] = svc.submit(r);
    }
    int max_batch_got = 0;
    for (int i = 0; i < kReq; ++i)
      max_batch_got = std::max(max_batch_got, futs[i].get().batch);
    EXPECT_LE(max_batch_got, sh.max_batch);
    for (int i = 0; i < kReq; ++i)
      expect_same(out[i], ref[i], bitwise, "coalesced response");

    const auto st = svc.stats();
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kReq));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.shed, 0u);  // Block never sheds; the Shed shape has headroom
    if (sh.window.count() > 0 && !sh.adaptive) {
      // The fixed window lets all 8 near-simultaneous submissions land in
      // one batched execute on the single dispatcher.
      EXPECT_EQ(st.max_batch_seen, static_cast<std::uint64_t>(kReq));
      EXPECT_EQ(st.batches, 1u);
    }
    EXPECT_EQ(st.setpts_builds, 1u);  // one point set, fingerprint-shared
  }
}

// ---- shutdown: residual coalescing windows must not stall destruction ------

TEST(Service, DestructionWithQueuedRequestsSkipsResidualWindows) {
  // Four distinct-signature groups queued behind ONE dispatcher with a 200 ms
  // coalescing window, destroyed immediately: pre-fix, pop_ready slept the
  // window out per pop even after shutdown(), so destruction stalled at least
  // one full window (and up to window x groups with staggered arrivals). The
  // wait must be interrupted by shutdown, every future still fulfilled.
  std::vector<Problem<float>> ps;
  ps.emplace_back(std::vector<std::int64_t>{24}, 1, 200, 31);
  ps.emplace_back(std::vector<std::int64_t>{32}, 1, 200, 32);
  ps.emplace_back(std::vector<std::int64_t>{20, 16}, 1, 200, 33);
  ps.emplace_back(std::vector<std::int64_t>{16, 12}, 2, 200, 34);

  std::vector<std::vector<std::complex<float>>> out(ps.size());
  std::vector<std::future<service::ExecReport>> futs(ps.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
    service::ServiceConfig cfg;
    cfg.threads = 1;
    cfg.coalesce_window = std::chrono::milliseconds(200);
    service::NufftService svc(dev, cfg);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i].assign(ps[i].out_len(), {});
      futs[i] = svc.submit(
          ps[i].request(opts_for(static_cast<int>(ps[i].N.size())), out[i]));
    }
  }  // destruction with the window pending
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // all flushed, none dropped
  // Generous bound: the transforms take milliseconds; only an un-interrupted
  // 200 ms window could push past this.
  EXPECT_LT(elapsed.count(), 150);
}

// ---- shutdown under load: every future fulfilled under both policies --------

TEST(Service, ShutdownUnderLoadFulfillsEveryFutureUnderBothPolicies) {
  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 400, 36);
  const core::Options opts = opts_for(2);
  for (const auto adm : {service::Admission::Block, service::Admission::Shed}) {
    const int kThreads = 2, kPer = 8;
    std::vector<std::vector<std::complex<float>>> out(kThreads * kPer);
    std::vector<std::future<service::ExecReport>> futs(kThreads * kPer);
    {
      vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
      service::ServiceConfig cfg;
      cfg.threads = 2;
      cfg.coalesce_window = std::chrono::milliseconds(20);
      cfg.max_outstanding = 4;
      cfg.admission = adm;
      service::NufftService svc(dev, cfg);
      std::vector<std::thread> subs;
      for (int t = 0; t < kThreads; ++t)
        subs.emplace_back([&, t] {
          for (int i = 0; i < kPer; ++i) {
            const int k = t * kPer + i;
            out[k].assign(p.out_len(), {});
            futs[k] = svc.submit(p.request(opts, out[k]));
          }
        });
      for (auto& th : subs) th.join();
    }  // destruction with requests still queued / windows pending
    // Every future resolves: a result, or OverloadedError under Shed — never
    // a broken promise (which would surface as std::future_error).
    int ok = 0, shed = 0;
    for (auto& f : futs) {
      try {
        f.get();
        ++ok;
      } catch (const service::OverloadedError&) {
        ++shed;
      }
    }
    EXPECT_EQ(ok + shed, kThreads * kPer);
    if (adm == service::Admission::Block) EXPECT_EQ(shed, 0);
  }
}

// ---- adaptive coalescing window ---------------------------------------------

TEST(Service, AdaptiveWindowClosesEarlyWhenIdle) {
  // One request into an otherwise idle service with a 300 ms window: the
  // adaptive policy notices nothing else is queued or executing and closes
  // the window immediately, while the fixed ablation waits it out. (The
  // acceptance bound is generous for one noisy CPU core.)
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 300, 61);
  const core::Options opts = opts_for(2);
  auto one_request_ms = [&](bool adaptive) {
    service::ServiceConfig cfg;
    cfg.threads = 1;
    cfg.coalesce_window = std::chrono::milliseconds(300);
    cfg.adaptive_window = adaptive;
    service::NufftService svc(dev, cfg);
    std::vector<std::complex<float>> out(p.out_len());
    const auto t0 = std::chrono::steady_clock::now();
    svc.submit(p.request(opts, out)).get();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  EXPECT_LT(one_request_ms(true), 150);
  EXPECT_GE(one_request_ms(false), 200);  // the ablation still pays the window
}

// ---- priority: interactive jumps the bulk queue -----------------------------

TEST(Service, InteractiveRequestsJumpTheBulkQueue) {
  // One dispatcher parked in a FIXED 250 ms warmup window while the real
  // queue is assembled behind it — the only way to make ready-FIFO order
  // deterministic without reaching into the queue. Then: five bulk groups,
  // one standalone interactive request, and one interactive rider on bulk[3]
  // (same signature and points, fresh strengths). Expected dispatch order
  // after the warmup: bulk[3]+rider (promoted last, so frontmost), the
  // standalone interactive, then bulk 0, 1, 2, 4.
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 8;
  cfg.coalesce_window = std::chrono::milliseconds(250);
  cfg.adaptive_window = false;
  service::NufftService svc(dev, cfg);

  Problem<float> warm(std::vector<std::int64_t>{16, 12}, 1, 150, 70);
  std::vector<std::complex<float>> wout(warm.out_len());
  auto fwarm = svc.submit(warm.request(opts_for(2), wout));

  // Bulk groups sized so several milliseconds of execute separate the
  // ordering checks from scheduler noise.
  std::vector<Problem<float>> bulk;
  bulk.emplace_back(std::vector<std::int64_t>{20, 16}, 1, 30000, 71);
  bulk.emplace_back(std::vector<std::int64_t>{24, 16}, 1, 30000, 72);
  bulk.emplace_back(std::vector<std::int64_t>{20, 24}, 1, 30000, 73);
  bulk.emplace_back(std::vector<std::int64_t>{16, 16}, 1, 30000, 74);
  bulk.emplace_back(std::vector<std::int64_t>{24, 24}, 1, 30000, 75);
  std::vector<std::vector<std::complex<float>>> bout(bulk.size());
  std::vector<std::future<service::ExecReport>> bfut(bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bout[i].assign(bulk[i].out_len(), {});
    bfut[i] = svc.submit(bulk[i].request(opts_for(2), bout[i]));
  }

  Problem<float> inter(std::vector<std::int64_t>{32}, 1, 500, 80);
  std::vector<std::complex<float>> iout(inter.out_len());
  auto ireq = inter.request(opts_for(1), iout);
  ireq.priority = service::Priority::Interactive;
  auto fi = svc.submit(ireq);

  Problem<float> rider = bulk[3];
  Rng rng(81);
  for (auto& v : rider.input)
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  std::vector<std::complex<float>> rout(rider.out_len());
  auto rreq = rider.request(opts_for(2), rout);
  rreq.priority = service::Priority::Interactive;
  auto fr = svc.submit(rreq);

  // The rider coalesced with bulk[3] in the promoted group's batch of 2.
  const auto rep_r = fr.get();
  EXPECT_EQ(rep_r.batch, 2);
  EXPECT_EQ(bfut[3].get().batch, 2);

  // Both interactive groups finished while bulk 0..2 and 4 still wait; the
  // queue behind the standalone interactive holds three executes' worth of
  // work, so bulk[4] cannot be ready the instant it resolves.
  fi.get();
  EXPECT_EQ(bfut[4].wait_for(std::chrono::seconds(0)), std::future_status::timeout);

  for (std::size_t i = 0; i < bulk.size(); ++i)
    if (i != 3) EXPECT_NO_THROW(bfut[i].wait());
  EXPECT_NO_THROW(fwarm.get());
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(bulk.size()) + 3);
  EXPECT_EQ(st.failed, 0u);
}

// ---- admission: shed policy -------------------------------------------------

TEST(Service, ShedPolicyFailsFastWithOverloadedError) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_outstanding = 2;
  cfg.admission = service::Admission::Shed;
  service::NufftService svc(dev, cfg);

  // A large blocker occupies the single dispatcher for tens of milliseconds
  // while small same-group requests pile into the 2-deep admission cap.
  Problem<float> blocker(std::vector<std::int64_t>{16, 16, 12}, 1, 300000, 90);
  std::vector<std::complex<float>> bout(blocker.out_len());
  auto fb = svc.submit(blocker.request(opts_for(3), bout));

  Problem<float> small(std::vector<std::int64_t>{20, 16}, 1, 400, 91);
  const core::Options sopts = opts_for(2);
  int ref_tiled = 0;
  const auto ref = small.reference(workers, sopts, &ref_tiled);

  std::deque<std::vector<std::complex<float>>> outs;
  std::vector<std::future<service::ExecReport>> futs;
  std::int64_t worst_submit_us = 0;
  for (int i = 0; i < 10000 && svc.stats().shed < 3; ++i) {
    outs.emplace_back(small.out_len());
    const auto t0 = std::chrono::steady_clock::now();
    futs.push_back(svc.submit(small.request(sopts, outs.back())));
    worst_submit_us = std::max(
        worst_submit_us, std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
  // Shed never blocks: even on a loaded single-core box no submit call may
  // have waited anything like an execute out.
  EXPECT_LT(worst_submit_us, 100000);

  int ok = 0, shed = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    try {
      futs[i].get();
      // Admitted requests are served exactly, overload or not.
      expect_same(outs[i], ref, expect_bitwise(workers, 1, ref_tiled),
                  "admitted under overload");
      ++ok;
    } catch (const service::OverloadedError&) {
      ++shed;
    }
  }
  EXPECT_NO_THROW(fb.get());
  EXPECT_GE(shed, 3);
  EXPECT_GE(ok, 1);  // the cap admits work while shedding the excess

  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, st.completed + st.failed);
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(shed));
  EXPECT_GE(st.failed, st.shed);
}

// ---- admission: block policy ------------------------------------------------

TEST(Service, BlockPolicyBackpressuresWithoutShedding) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_outstanding = 2;  // far below the 20 requests in flight
  cfg.admission = service::Admission::Block;
  service::NufftService svc(dev, cfg);

  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 400, 92);
  const core::Options opts = opts_for(2);
  int ref_tiled = 0;
  const auto ref = p.reference(workers, opts, &ref_tiled);

  const int kThreads = 4, kPer = 5;
  std::vector<std::vector<std::complex<float>>> out(kThreads * kPer);
  std::vector<std::future<service::ExecReport>> futs(kThreads * kPer);
  std::vector<std::thread> subs;
  for (int t = 0; t < kThreads; ++t)
    subs.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const int k = t * kPer + i;
        out[k].assign(p.out_len(), {});
        futs[k] = svc.submit(p.request(opts, out[k]));
      }
    });
  for (auto& th : subs) th.join();

  const bool bitwise = expect_bitwise(workers, 1, ref_tiled);
  for (int k = 0; k < kThreads * kPer; ++k) {
    EXPECT_NO_THROW(futs[k].get());
    expect_same(out[k], ref, bitwise, "backpressured request");
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.shed, 0u);  // Block never sheds
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.failed, 0u);
}

// ---- stats invariant: submitted == completed + failed -----------------------

TEST(Service, StatsInvariantHoldsAcrossFailuresAndSheds) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_outstanding = 1;
  cfg.admission = service::Admission::Shed;
  service::NufftService svc(dev, cfg);

  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 3000, 95);
  const core::Options opts = opts_for(2);

  // Mix every fulfillment path: served, shed at the cap, rejected eagerly
  // (dim 0, iflag 0), and failed in dispatch (bad type).
  std::deque<std::vector<std::complex<float>>> outs;
  std::vector<std::future<service::ExecReport>> futs;
  for (int i = 0; i < 10000 && svc.stats().shed < 2; ++i) {
    outs.emplace_back(p.out_len());
    futs.push_back(svc.submit(p.request(opts, outs.back())));
  }
  int ok = 0, shed = 0;
  for (auto& f : futs) {
    try {
      f.get();
      ++ok;
    } catch (const service::OverloadedError&) {
      ++shed;
    }
  }
  EXPECT_GE(shed, 2);
  svc.drain();  // free the admission slot: the failures below must not shed
  {
    std::vector<std::complex<float>> out(p.out_len());
    auto bad = p.request(opts, out);
    bad.modes.clear();
    EXPECT_THROW(svc.submit(bad).get(), std::invalid_argument);
    auto bad2 = p.request(opts, out);
    bad2.iflag = 0;
    EXPECT_THROW(svc.submit(bad2).get(), std::invalid_argument);
    auto bad3 = p.request(opts, out);
    bad3.type = 7;  // admitted, fails in dispatch
    EXPECT_THROW(svc.submit(bad3).get(), std::invalid_argument);
  }

  svc.drain();
  const auto st = svc.stats();
  // The ledger balances after a drain under EVERY policy: sheds count in
  // failed (refined by `shed`), eager rejections and dispatch failures in
  // failed, and nothing is ever dropped from the books.
  EXPECT_EQ(st.submitted, st.completed + st.failed);
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(st.failed, st.shed + 3);
}

// ---- iflag = 0 is rejected, not silently folded -----------------------------

TEST(Service, IflagZeroRejectedInsteadOfSilentlyFoldedToPlusOne) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::NufftService svc(dev);
  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 300, 62);
  const core::Options opts = opts_for(2);

  std::vector<std::complex<float>> out(p.out_len());
  auto req = p.request(opts, out);
  req.iflag = 0;
  EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);

  // Both explicit directions still serve (and are distinct signatures).
  auto plus = p.request(opts, out);
  plus.iflag = +1;
  EXPECT_NO_THROW(svc.submit(plus).get());
  auto minus = p.request(opts, out);
  minus.iflag = -1;
  EXPECT_NO_THROW(svc.submit(minus).get());
  EXPECT_EQ(svc.stats().plan_misses, 2u);
}

// ---- plan key: backend-dead fields are normalized ---------------------------

TEST(Service, CpuPlanKeyNormalizesDeviceOnlyOptions) {
  // Direct key check: under Backend::Cpu the device-only knobs (method,
  // fastpath, packed_atomics, point_cache, interior_fastpath) are dead —
  // CpuBackendPlan never reads them — so they must not split the signature.
  const std::int64_t N[2] = {18, 14};
  core::Options noisy;
  noisy.method = core::Method::GMSort;
  noisy.fastpath = -1;
  noisy.packed_atomics = 1;
  noisy.point_cache = -1;
  noisy.interior_fastpath = -1;
  const core::Options plain;
  const auto k_noisy = service::make_plan_key<double>(service::Backend::Cpu, 1, 2, N,
                                                      +1, 1e-9, noisy);
  const auto k_plain = service::make_plan_key<double>(service::Backend::Cpu, 1, 2, N,
                                                      +1, 1e-9, plain);
  EXPECT_EQ(k_noisy, k_plain);

  // Options the CPU backend DOES consume still split the key...
  core::Options tiled_off = plain;
  tiled_off.tiled_spread = -1;
  EXPECT_FALSE(service::make_plan_key<double>(service::Backend::Cpu, 1, 2, N, +1,
                                              1e-9, tiled_off) == k_plain);
  // ...and on the device backend the same knobs are live signature bits.
  EXPECT_FALSE(service::make_plan_key<double>(service::Backend::Device, 1, 2, N, +1,
                                              1e-9, noisy) ==
               service::make_plan_key<double>(service::Backend::Device, 1, 2, N, +1,
                                              1e-9, plain));

  // Service-level: the two CPU requests share one registry entry (before the
  // normalization they built two plans that could never coalesce).
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);
  Problem<double> p(std::vector<std::int64_t>{18, 14}, 1, 400, 63);
  for (const auto& o : {noisy, plain}) {
    std::vector<std::complex<double>> out(p.out_len());
    auto req = p.request(o, out);
    req.backend = service::Backend::Cpu;
    EXPECT_NO_THROW(svc.submit(req).get());
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.plan_misses, 1u);
  EXPECT_EQ(st.plan_hits, 1u);
}

// ---- plan key: tile_chunk_cap is result-affecting ---------------------------

TEST(Service, TileChunkCapIsPartOfThePlanKey) {
  // The chunk cap decides the tiled spread's summation split, which decides
  // the output BITS. Before the fix it was missing from PlanKey: a request
  // with an explicit cap could be served by a cached auto-cap plan and get
  // bits that its own serial plan would never produce.
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);

  Problem<float> p(modes_3d(), 1, 900, 97);
  core::Options auto_cap = opts_for(3);
  core::Options capped = auto_cap;
  capped.tile_chunk_cap = 4;  // force maximal splitting

  int tiled_auto = 0, tiled_capped = 0;
  const auto ref_auto = p.reference(workers, auto_cap, &tiled_auto);
  const auto ref_capped = p.reference(workers, capped, &tiled_capped);

  std::vector<std::complex<float>> out_auto(p.out_len()), out_capped(p.out_len());
  EXPECT_NO_THROW(svc.submit(p.request(auto_cap, out_auto)).get());
  EXPECT_NO_THROW(svc.submit(p.request(capped, out_capped)).get());

  // Distinct plans (the cap is signature), each bitwise-faithful to the
  // serial plan built with ITS cap.
  EXPECT_EQ(svc.stats().plan_misses, 2u);
  expect_same(out_auto, ref_auto, expect_bitwise(workers, 1, tiled_auto),
              "auto chunk cap");
  expect_same(out_capped, ref_capped, expect_bitwise(workers, 1, tiled_capped),
              "explicit chunk cap");
}

// ---- plan key: upsampfac is part of the signature ---------------------------

TEST(Service, UpsampfacIsPartOfThePlanKey) {
  // Two sigma values are two plans: the fine grid, kernel width, and Horner
  // table all differ, so a sigma = 1.25 request must never be served by a
  // cached sigma = 2 plan (or vice versa).
  const std::int64_t N[2] = {20, 16};
  core::Options two = opts_for(2);
  // Pin both sigmas explicitly: under CF_UPSAMP=1.25 the env default would
  // otherwise make the "two" options identical to "low" and collapse the pair.
  two.upsampfac = 2.0;
  core::Options low = two;
  low.upsampfac = 1.25;
  EXPECT_FALSE(service::make_plan_key<float>(service::Backend::Device, 1, 2, N,
                                             +1, 1e-5, two) ==
               service::make_plan_key<float>(service::Backend::Device, 1, 2, N,
                                             +1, 1e-5, low));
  // The sigma survives the CPU normalization too: CpuPlan honors it, so it
  // must stay a live signature bit on that backend.
  EXPECT_FALSE(service::make_plan_key<float>(service::Backend::Cpu, 1, 2, N, +1,
                                             1e-5, two) ==
               service::make_plan_key<float>(service::Backend::Cpu, 1, 2, N, +1,
                                             1e-5, low));

  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);
  // {40, 40} passes the tile-geometry gate at both sigmas, so both round
  // trips below get the bitwise (tiled, atomic-free) comparison.
  Problem<float> p(std::vector<std::int64_t>{40, 40}, 1, 700, 98);

  int tiled_two = 0, tiled_low = 0;
  const auto ref_two = p.reference(workers, two, &tiled_two);
  const auto ref_low = p.reference(workers, low, &tiled_low);
  std::vector<std::complex<float>> out_two(p.out_len()), out_low(p.out_len());
  EXPECT_NO_THROW(svc.submit(p.request(two, out_two)).get());
  EXPECT_NO_THROW(svc.submit(p.request(low, out_low)).get());

  // Distinct plans, each faithful to the serial plan built with ITS sigma.
  EXPECT_EQ(svc.stats().plan_misses, 2u);
  expect_same(out_two, ref_two, expect_bitwise(workers, 1, tiled_two), "sigma 2");
  expect_same(out_low, ref_low, expect_bitwise(workers, 1, tiled_low),
              "sigma 1.25");

  // Re-submitting either signature is a registry hit, not a rebuild.
  EXPECT_NO_THROW(svc.submit(p.request(two, out_two)).get());
  EXPECT_NO_THROW(svc.submit(p.request(low, out_low)).get());
  EXPECT_EQ(svc.stats().plan_misses, 2u);
  EXPECT_EQ(svc.stats().plan_hits, 2u);
}

// ---- registry: LRU eviction + fingerprint reuse -----------------------------

TEST(Service, RegistryLruEvictionAndPointFingerprintReuse) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::ServiceConfig cfg;
  cfg.threads = 1;    // deterministic dispatch order
  cfg.max_plans = 2;  // tiny LRU so eviction is observable
  service::NufftService svc(dev, cfg);
  const core::Options opts = env_opts();

  Problem<float> a(std::vector<std::int64_t>{32}, 1, 300, 1);
  Problem<float> b(std::vector<std::int64_t>{20, 16}, 1, 300, 2);
  Problem<float> c(std::vector<std::int64_t>{8, 10, 8}, 1, 300, 3);

  auto run = [&](const Problem<float>& p) {
    std::vector<std::complex<float>> out(p.out_len());
    auto fut = svc.submit(p.request(opts, out));
    return fut.get();
  };

  auto r1 = run(a);
  EXPECT_FALSE(r1.plan_reused);
  EXPECT_FALSE(r1.points_reused);
  auto r2 = run(a);  // same signature AND same points
  EXPECT_TRUE(r2.plan_reused);
  EXPECT_TRUE(r2.points_reused);
  auto st = svc.stats();
  EXPECT_EQ(st.plan_misses, 1u);
  EXPECT_EQ(st.plan_hits, 1u);
  EXPECT_EQ(st.setpts_builds, 1u);
  EXPECT_EQ(st.setpts_reuses, 1u);

  // New points under the same signature: plan reused, set_points rebuilt.
  Problem<float> a2(std::vector<std::int64_t>{32}, 1, 300, 99);
  auto r3 = run(a2);
  EXPECT_TRUE(r3.plan_reused);
  EXPECT_FALSE(r3.points_reused);
  EXPECT_EQ(svc.stats().setpts_builds, 2u);

  run(b);             // registry now {a, b}
  run(c);             // capacity 2: evicts a
  st = svc.stats();
  EXPECT_EQ(st.plan_evictions, 1u);
  auto r4 = run(a);   // a was evicted: rebuilt from scratch
  EXPECT_FALSE(r4.plan_reused);
  EXPECT_FALSE(r4.points_reused);
  EXPECT_EQ(svc.stats().plan_misses, 4u);  // a, b, c, a-again
}

// ---- future error propagation ----------------------------------------------

TEST(Service, FutureErrorPropagation) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::NufftService svc(dev);
  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 200, 5);
  const core::Options opts = env_opts();

  {
    // Bad type: fails in plan construction ON THE DISPATCH THREAD and
    // reaches the caller through the future.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.type = 7;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Bad modes (dim 0): rejected eagerly, still a future.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.modes.clear();
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Method constraint: SM is type-1-only; the Plan's own invalid_argument
    // comes back identically.
    std::vector<std::complex<float>> out(p.M);
    auto req = p.request(opts, out);
    req.type = 2;
    req.opts.method = core::Method::SM;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Missing buffers.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.output = nullptr;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 4u);
  EXPECT_EQ(st.completed, 0u);

  // The service stays healthy after failures.
  std::vector<std::complex<float>> out(p.out_len());
  auto fut = svc.submit(p.request(opts, out));
  EXPECT_NO_THROW(fut.get());
}

// ---- CF_SERVICE_THREADS ------------------------------------------------------

TEST(Service, ServiceThreadsEnvHonored) {
  vgpu::Device dev(1);
  {
    ::setenv("CF_SERVICE_THREADS", "3", 1);
    service::NufftService svc(dev);
    EXPECT_EQ(svc.n_threads(), 3);
    ::unsetenv("CF_SERVICE_THREADS");
  }
  {
    // Explicit config wins over the environment.
    ::setenv("CF_SERVICE_THREADS", "3", 1);
    service::ServiceConfig cfg;
    cfg.threads = 5;
    service::NufftService svc(dev, cfg);
    EXPECT_EQ(svc.n_threads(), 5);
    ::unsetenv("CF_SERVICE_THREADS");
  }
  {
    // Garbage values fall back to the documented defaults (with a stderr
    // diagnostic) — they are NOT silently treated as "unset-like" partial
    // parses (the old atoi path accepted "3abc" as 3).
    ::setenv("CF_SERVICE_THREADS", "four", 1);
    service::NufftService svc(dev);
    EXPECT_EQ(svc.n_threads(), 2);
    ::unsetenv("CF_SERVICE_THREADS");
  }
  {
    ::setenv("CF_SERVICE_THREADS", "3abc", 1);
    service::NufftService svc(dev);
    EXPECT_EQ(svc.n_threads(), 2);
    ::unsetenv("CF_SERVICE_THREADS");
  }
}

// ---- CF_SERVICE_WINDOW_US ---------------------------------------------------

TEST(Service, ServiceWindowEnvHonored) {
  vgpu::Device dev(1);
  {
    ::setenv("CF_SERVICE_WINDOW_US", "7000", 1);
    service::NufftService svc(dev);  // default config: window auto
    EXPECT_EQ(svc.config().coalesce_window.count(), 7000);
    ::unsetenv("CF_SERVICE_WINDOW_US");
  }
  {
    // An explicit window (even 0) wins over the environment.
    ::setenv("CF_SERVICE_WINDOW_US", "7000", 1);
    service::ServiceConfig cfg;
    cfg.coalesce_window = std::chrono::microseconds(0);
    service::NufftService svc(dev, cfg);
    EXPECT_EQ(svc.config().coalesce_window.count(), 0);
    ::unsetenv("CF_SERVICE_WINDOW_US");
  }
  {
    // Garbage (units, negatives) is diagnosed and ignored, not mangled.
    ::setenv("CF_SERVICE_WINDOW_US", "10ms", 1);
    service::NufftService svc(dev);
    EXPECT_EQ(svc.config().coalesce_window.count(), 0);
    ::unsetenv("CF_SERVICE_WINDOW_US");
  }
}

// ---- CPU backend through the same interface ---------------------------------

TEST(Service, CpuBackendMatchesDirectCpuPlan) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::NufftService svc(dev);
  Problem<double> p(std::vector<std::int64_t>{18, 14}, 1, 400, 21);

  core::Options opts;  // CPU backend: only the shared option subset applies
  opts.tiled_spread = cf::test::env_tiled();
  std::vector<std::complex<double>> out(p.out_len());
  auto req = p.request(opts, out);
  req.backend = service::Backend::Cpu;
  req.tol = 1e-9;
  svc.submit(req).get();

  cf::cpu::CpuPlan<double>::Options copts;
  copts.tiled_spread = cf::test::env_tiled();
  cf::cpu::CpuPlan<double> plan(dev.pool(), 1, p.N, +1, 1e-9, copts);
  plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
  std::vector<std::complex<double>> want(p.out_len());
  std::vector<std::complex<double>> c = p.input;
  plan.execute(c.data(), want.data());

  // The small grid fails the CPU tile gate, so multi-worker spreads ride the
  // atomic merge: assert bitwise only where that is deterministic.
  expect_same(out, want, /*bitwise=*/workers <= 1, "CPU backend");
}

// ---- C API -------------------------------------------------------------------

TEST(Service, CApiServiceCoalescesAndMatchesPlan) {
  cfs_device dev = nullptr;
  ASSERT_EQ(cfs_device_create(&dev, 2), CFS_SUCCESS);
  cfs_service svc = nullptr;
  ASSERT_EQ(cfs_service_create(&svc, dev, 2, 4, 8), CFS_SUCCESS);

  // Modes sized so the tile-geometry gate passes (fine grid 64 x 48 against
  // 38-cell padded bins), keeping the default pipeline deterministic.
  const std::int64_t nmodes[2] = {32, 24};
  const std::size_t M = 300, ntot = 32 * 24;
  Rng rng(9);
  std::vector<float> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
  }
  const int kReq = 4;
  std::vector<std::vector<float>> cin(kReq), fout(kReq, std::vector<float>(2 * ntot));
  for (auto& ci : cin) {
    ci.resize(2 * M);
    for (auto& v : ci) v = static_cast<float>(rng.uniform(-1, 1));
  }

  cfs_opts opts;
  cfs_default_opts(&opts);
  opts.gpu_fastpath = cf::test::env_fastpath() ? 0 : -1;
  opts.gpu_tiled_spread = cf::test::env_tiled() ? 0 : -1;

  std::vector<cfs_request> reqs(kReq);
  for (int i = 0; i < kReq; ++i)
    ASSERT_EQ(cfs_service_submitf(svc, 1, 2, nmodes, +1, 1e-5, &opts, M, x.data(),
                                  y.data(), nullptr, cin[i].data(), fout[i].data(),
                                  &reqs[i]),
              CFS_SUCCESS);
  for (int i = 0; i < kReq; ++i)
    EXPECT_EQ(cfs_service_wait(svc, reqs[i]), CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, 123456), CFS_ERR_INVALID_ARG);  // unknown handle

  uint64_t batches = 0, brequests = 0, misses = 0, reuses = 0;
  ASSERT_EQ(cfs_service_stats(svc, &batches, &brequests, &misses, &reuses),
            CFS_SUCCESS);
  EXPECT_EQ(brequests, static_cast<uint64_t>(kReq));
  EXPECT_EQ(misses, 1u);  // one signature, one plan
  EXPECT_GE(batches, 1u);

  // Reference through the C plan API on the same options.
  cfs_planf plan = nullptr;
  ASSERT_EQ(cfs_makeplanf(dev, 1, 2, nmodes, +1, 1e-5, &opts, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  const bool bitwise = cf::test::env_tiled() != 0;
  for (int i = 0; i < kReq; ++i) {
    std::vector<float> want(2 * ntot);
    std::vector<float> c = cin[i];
    ASSERT_EQ(cfs_executef(plan, c.data(), want.data()), CFS_SUCCESS);
    for (std::size_t k = 0; k < want.size(); ++k) {
      if (bitwise)
        ASSERT_EQ(fout[i][k], want[k]) << "req " << i << " k=" << k;
      else
        ASSERT_NEAR(fout[i][k], want[k], 1e-3) << "req " << i << " k=" << k;
    }
  }
  cfs_destroyf(plan);
  cfs_service_destroy(svc);
  cfs_device_destroy(dev);
}

// ---- type 3 through the service ---------------------------------------------

TEST(Service, Type3CoalescesSetPointsAndMatchesDirectPlan) {
  vgpu::Device dev(1);  // one worker: serial device, bitwise unconditionally
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);

  T3Problem p(321);
  const core::Options opts = env_opts();
  const auto ref = p.reference(1, opts, cfg.max_batch);

  const int kReq = 5;
  std::vector<std::vector<std::complex<double>>> out(
      kReq, std::vector<std::complex<double>>(p.K));
  std::vector<std::future<service::ExecReport>> futs;
  futs.reserve(kReq);
  for (int i = 0; i < kReq; ++i) futs.push_back(svc.submit(p.request(opts, out[i])));
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  for (int i = 0; i < kReq; ++i)
    expect_same(out[i], ref, /*bitwise=*/true, "type-3 response");

  svc.drain();
  auto st = svc.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kReq));
  EXPECT_EQ(st.plan_misses, 1u);    // one signature, one Type3BackendPlan
  EXPECT_EQ(st.setpts_builds, 1u);  // source+target fingerprint shared by all
  EXPECT_EQ(st.failed, 0u);

  // Type-3 structural validation: target frequencies are required per dim,
  // and the CPU comparator backend does not implement type 3.
  std::vector<std::complex<double>> scratch(p.K);
  auto no_s = p.request(opts, scratch);
  no_s.s = nullptr;
  EXPECT_THROW(svc.submit(no_s).get(), std::invalid_argument);
  auto no_k = p.request(opts, scratch);
  no_k.K = 0;
  EXPECT_THROW(svc.submit(no_k).get(), std::invalid_argument);
  auto on_cpu = p.request(opts, scratch);
  on_cpu.backend = service::Backend::Cpu;
  EXPECT_THROW(svc.submit(on_cpu).get(), std::invalid_argument);

  svc.drain();
  st = svc.stats();
  EXPECT_EQ(st.submitted, st.completed + st.failed);
  EXPECT_EQ(st.failed, 3u);
}

// ---- sharded tier: sticky routing is placement, never bits ------------------

TEST(Sharded, StickyRoutingBitwiseAcrossShardCounts) {
  // The same mixed-signature stream through 1, 2, and 4 shards: every
  // response must be bitwise-identical to the serial per-request reference
  // wherever the tiled pipeline ran (routing picks placement, never bits),
  // each signature's plan must be built exactly ONCE (sticky: one home
  // shard, zero duplicate plan constructions), and the front-tier roll-up
  // must balance against the per-shard ledgers.
  std::vector<Problem<float>> sigs;
  sigs.emplace_back(modes_2d(), 1, 500, 71);
  sigs.emplace_back(modes_3d(), 1, 600, 72);
  sigs.emplace_back(modes_2d(), 2, 400, 73);
  const std::size_t workers = 2;
  std::vector<core::Options> opts;
  std::vector<std::vector<std::complex<float>>> refs;
  std::vector<int> tiled(sigs.size(), 0);
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    opts.push_back(opts_for(static_cast<int>(sigs[i].N.size())));
    refs.push_back(sigs[i].reference(workers, opts[i], &tiled[i]));
  }

  const std::size_t kRounds = 6;
  for (int nsh : {1, 2, 4}) {
    service::ShardedConfig cfg;
    cfg.shards = nsh;
    cfg.device_workers = workers;
    cfg.shard.threads = 2;
    cfg.spill_threshold = std::size_t{1} << 20;  // routing stays pure-sticky
    service::ShardedNufftService svc(cfg);
    ASSERT_EQ(svc.n_shards(), nsh);

    std::vector<std::vector<std::complex<float>>> out(kRounds * sigs.size());
    std::vector<std::future<service::ExecReport>> futs(out.size());
    for (std::size_t r = 0; r < kRounds; ++r)
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        const std::size_t k = r * sigs.size() + i;
        out[k].assign(sigs[i].out_len(), {});
        futs[k] = svc.submit(sigs[i].request(opts[i], out[k]));
      }
    for (auto& f : futs) EXPECT_NO_THROW(f.get());
    svc.drain();
    for (std::size_t r = 0; r < kRounds; ++r)
      for (std::size_t i = 0; i < sigs.size(); ++i)
        expect_same(out[r * sigs.size() + i], refs[i],
                    expect_bitwise(workers, sigs[i].type, tiled[i]),
                    "sharded response");

    const auto st = svc.stats();
    EXPECT_EQ(st.total.submitted, out.size());
    EXPECT_EQ(st.total.completed, out.size());
    EXPECT_EQ(st.total.failed, 0u);
    EXPECT_EQ(st.routed, out.size());
    EXPECT_EQ(st.migrations, 0u);
    EXPECT_EQ(st.total.plan_misses, sigs.size());
    EXPECT_EQ(st.sticky_hits, out.size() - sigs.size());
    ASSERT_EQ(static_cast<int>(st.shards.size()), nsh);
    std::uint64_t sub = 0, comp = 0, misses = 0;
    for (const auto& sh : st.shards) {
      sub += sh.submitted;
      comp += sh.completed;
      misses += sh.plan_misses;
    }
    EXPECT_EQ(sub, st.routed);
    EXPECT_EQ(comp, st.total.completed);
    EXPECT_EQ(misses, st.total.plan_misses);
    for (auto o : st.shard_outstanding) EXPECT_EQ(o, 0u);  // post-drain snapshot
  }
}

// ---- sharded tier: global admission -----------------------------------------

TEST(Sharded, ShedPolicyIsGlobalAcrossShards) {
  service::ShardedConfig cfg;
  cfg.shards = 2;
  cfg.device_workers = 1;
  cfg.shard.threads = 1;
  cfg.max_outstanding = 2;
  cfg.admission = service::Admission::Shed;
  cfg.spill_threshold = std::size_t{1} << 20;
  service::ShardedNufftService svc(cfg);

  // The blocker and the flood may land on DIFFERENT shards: the cap still
  // applies, because admission is enforced at the front tier against the
  // global outstanding count, not per shard.
  Problem<float> blocker(std::vector<std::int64_t>{16, 16, 12}, 1, 300000, 96);
  std::vector<std::complex<float>> bout(blocker.out_len());
  auto fb = svc.submit(blocker.request(opts_for(3), bout));

  Problem<float> small(std::vector<std::int64_t>{20, 16}, 1, 400, 97);
  const core::Options sopts = opts_for(2);
  const auto ref = small.reference(1, sopts);

  std::deque<std::vector<std::complex<float>>> outs;
  std::vector<std::future<service::ExecReport>> futs;
  std::int64_t worst_submit_us = 0;
  for (int i = 0; i < 10000 && svc.stats().front_shed < 3; ++i) {
    outs.emplace_back(small.out_len());
    const auto t0 = std::chrono::steady_clock::now();
    futs.push_back(svc.submit(small.request(sopts, outs.back())));
    worst_submit_us = std::max(
        worst_submit_us, std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
  EXPECT_LT(worst_submit_us, 100000);  // Shed never blocks the submitter

  int ok = 0, shed = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    try {
      futs[i].get();
      expect_same(outs[i], ref, /*bitwise=*/true, "admitted under global overload");
      ++ok;
    } catch (const service::OverloadedError&) {
      ++shed;
    }
  }
  EXPECT_NO_THROW(fb.get());
  EXPECT_GE(shed, 3);
  EXPECT_GE(ok, 1);

  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.total.submitted, st.total.completed + st.total.failed);
  EXPECT_EQ(st.front_shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(st.total.shed, st.front_shed);
  for (const auto& sh : st.shards) EXPECT_EQ(sh.shed, 0u);  // shards run unbounded
}

TEST(Sharded, BlockPolicyBackpressuresGloballyWithoutShedding) {
  service::ShardedConfig cfg;
  cfg.shards = 2;
  cfg.device_workers = 1;
  cfg.shard.threads = 1;
  cfg.max_outstanding = 2;  // far below the 20 requests in flight
  cfg.admission = service::Admission::Block;
  cfg.spill_threshold = std::size_t{1} << 20;
  service::ShardedNufftService svc(cfg);

  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 400, 98);
  const core::Options opts = opts_for(2);
  const auto ref = p.reference(1, opts);

  const int kThreads = 4, kPer = 5;
  std::vector<std::vector<std::complex<float>>> out(kThreads * kPer);
  std::vector<std::future<service::ExecReport>> futs(kThreads * kPer);
  std::vector<std::thread> subs;
  for (int t = 0; t < kThreads; ++t)
    subs.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const int k = t * kPer + i;
        out[k].assign(p.out_len(), {});
        futs[k] = svc.submit(p.request(opts, out[k]));
      }
    });
  for (auto& th : subs) th.join();

  for (int k = 0; k < kThreads * kPer; ++k) {
    EXPECT_NO_THROW(futs[k].get());
    expect_same(out[k], ref, /*bitwise=*/true, "globally backpressured request");
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.total.shed, 0u);
  EXPECT_EQ(st.front_shed, 0u);
  EXPECT_EQ(st.total.submitted, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_EQ(st.total.completed, st.total.submitted);
  EXPECT_EQ(st.total.failed, 0u);
}

// ---- sharded tier: migration under load -------------------------------------

TEST(Sharded, MigrationUnderLoadKeepsResponsesBitwise) {
  // Signature A floods its home shard; signature B homes to the SAME shard,
  // finds it saturated by load it does not own, and migrates to the idle
  // one. Migration moves placement only: every response — A's and B's, before
  // and after the move — must stay bitwise-identical to the serial reference.
  const core::Options opts = opts_for(2);

  // Three distinct 2D signatures have three homes in {0, 1}: two collide.
  std::vector<Problem<float>> cand;
  cand.emplace_back(std::vector<std::int64_t>{20, 16}, 1, 50000, 101);
  cand.emplace_back(std::vector<std::int64_t>{20, 18}, 1, 50000, 102);
  cand.emplace_back(std::vector<std::int64_t>{22, 16}, 1, 50000, 103);
  auto home_of = [&](const Problem<float>& p) {
    std::vector<std::complex<float>> scratch(p.out_len());
    const auto key = service::make_group_key(p.request(opts, scratch));
    return static_cast<int>(service::PlanKeyHash{}(key.plan) % 2);
  };
  int a = 0, b = -1;
  for (int j = 1; j < 3 && b < 0; ++j)
    if (home_of(cand[j]) == home_of(cand[0])) b = j;
  if (b < 0) {
    a = 1;  // 1 and 2 both differ from 0, so they share the other home
    b = 2;
  }
  const Problem<float>& A = cand[a];
  const Problem<float>& B = cand[b];
  ASSERT_EQ(home_of(A), home_of(B));

  service::ShardedConfig cfg;
  cfg.shards = 2;
  cfg.device_workers = 1;
  cfg.shard.threads = 1;
  cfg.spill_threshold = 1;  // any outstanding load counts as saturation
  service::ShardedNufftService svc(cfg);

  const auto refA = A.reference(1, opts);
  const auto refB = B.reference(1, opts);

  const int kA = 4, kB = 4;
  std::vector<std::vector<std::complex<float>>> outA(kA), outB(kB);
  std::vector<std::future<service::ExecReport>> futs;
  for (int i = 0; i < kA; ++i) {
    outA[i].assign(A.out_len(), {});
    futs.push_back(svc.submit(A.request(opts, outA[i])));
  }
  for (int i = 0; i < kB; ++i) {
    outB[i].assign(B.out_len(), {});
    futs.push_back(svc.submit(B.request(opts, outB[i])));
  }
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  svc.drain();

  for (int i = 0; i < kA; ++i)
    expect_same(outA[i], refA, /*bitwise=*/true, "resident signature");
  for (int i = 0; i < kB; ++i)
    expect_same(outB[i], refB, /*bitwise=*/true, "migrated signature");

  const auto st = svc.stats();
  EXPECT_GE(st.migrations, 1u);  // B spilled off A's saturated shard
  EXPECT_EQ(st.total.submitted, static_cast<std::uint64_t>(kA + kB));
  EXPECT_EQ(st.total.completed, st.total.submitted);
  // B's plan exists wherever B ran: once if it spilled before its first
  // dispatch, plus one rebuild per shard it actually executed on.
  EXPECT_GE(st.total.plan_misses, 2u);
  EXPECT_LE(st.total.plan_misses, 2u + st.migrations);
}

// ---- CF_SERVICE_SHARDS ------------------------------------------------------

TEST(Sharded, ShardsEnvHonored) {
  {
    ::setenv("CF_SERVICE_SHARDS", "3", 1);
    service::ShardedNufftService svc;
    EXPECT_EQ(svc.n_shards(), 3);
    ::unsetenv("CF_SERVICE_SHARDS");
  }
  {
    // Explicit config wins over the environment.
    ::setenv("CF_SERVICE_SHARDS", "3", 1);
    service::ShardedConfig cfg;
    cfg.shards = 2;
    service::ShardedNufftService svc(cfg);
    EXPECT_EQ(svc.n_shards(), 2);
    ::unsetenv("CF_SERVICE_SHARDS");
  }
  {
    // Garbage falls back to the default (1 shard) with a diagnostic; strict
    // parsing, like CF_SERVICE_THREADS ("2abc" is not 2).
    ::setenv("CF_SERVICE_SHARDS", "two", 1);
    service::ShardedNufftService svc;
    EXPECT_EQ(svc.n_shards(), 1);
    ::unsetenv("CF_SERVICE_SHARDS");
  }
  {
    ::setenv("CF_SERVICE_SHARDS", "2abc", 1);
    service::ShardedNufftService svc;
    EXPECT_EQ(svc.n_shards(), 1);
    ::unsetenv("CF_SERVICE_SHARDS");
  }
}

// ---- sharded tier: type 3 ---------------------------------------------------

TEST(Sharded, Type3RoutesThroughTheTier) {
  service::ShardedConfig cfg;
  cfg.shards = 2;
  cfg.device_workers = 1;
  cfg.shard.threads = 1;
  cfg.spill_threshold = std::size_t{1} << 20;
  service::ShardedNufftService svc(cfg);

  // Same type-3 signature, two different point/frequency sets: sticky
  // routing keeps both on one shard and one plan; each set fingerprints
  // separately.
  const core::Options opts = env_opts();
  T3Problem p(555), q(556);
  const auto refp = p.reference(1, opts);
  const auto refq = q.reference(1, opts);

  const int kEach = 3;
  std::vector<std::vector<std::complex<double>>> outp(kEach), outq(kEach);
  std::vector<std::future<service::ExecReport>> futs;
  for (int i = 0; i < kEach; ++i) {
    outp[i].assign(p.K, {});
    futs.push_back(svc.submit(p.request(opts, outp[i])));
  }
  for (int i = 0; i < kEach; ++i) {
    outq[i].assign(q.K, {});
    futs.push_back(svc.submit(q.request(opts, outq[i])));
  }
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  svc.drain();

  for (int i = 0; i < kEach; ++i) {
    expect_same(outp[i], refp, /*bitwise=*/true, "sharded type-3 (set p)");
    expect_same(outq[i], refq, /*bitwise=*/true, "sharded type-3 (set q)");
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.total.completed, static_cast<std::uint64_t>(2 * kEach));
  EXPECT_EQ(st.total.plan_misses, 1u);      // one signature, one shard, one plan
  EXPECT_GE(st.total.setpts_builds, 2u);    // two fingerprints each bound once+
  EXPECT_EQ(st.migrations, 0u);
}
