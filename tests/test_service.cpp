// Concurrent NUFFT service layer (src/service):
//  * results through the service are identical to serial per-request Plan
//    executes — bitwise on the (default) deterministic tiled pipeline —
//    regardless of coalescing batch composition, submission order, and
//    service/worker thread counts, across mixed signatures submitted from
//    many threads at once;
//  * the signature-keyed LRU plan registry counts hits, misses, and
//    evictions, and point-set fingerprinting reuses set_points;
//  * request failures (bad type / modes / method, missing buffers) propagate
//    through the futures as the exceptions a direct Plan would throw;
//  * CF_SERVICE_THREADS sizes the dispatch pool (the CI contention pass runs
//    this suite at CF_SERVICE_THREADS=4 CF_WORKERS=2);
//  * the cfs_service_* C API drives the same machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/c_api.h"
#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "service/service.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace service = cf::service;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Whether service outputs must be bitwise equal to serial references: type-2
/// pipelines (gather interp, no atomics) and one-worker devices always are;
/// type 1 is when the deterministic tiled spread actually ran (`ref_tiled` —
/// the geometry gate or CF_TILED=0 can leave a plan on the atomic fallback,
/// whose float summation order varies with worker scheduling).
bool expect_bitwise(std::size_t workers, int type, int ref_tiled) {
  return workers <= 1 || type == 2 || ref_tiled == 1;
}

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  int type;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> input;   // c (type 1) or f (type 2)
  std::size_t M;
  std::int64_t ntot;

  Problem(std::vector<std::int64_t> modes, int type_, std::size_t M_,
          std::uint64_t seed)
      : N(std::move(modes)), type(type_), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
      if (dim >= 3) z[j] = static_cast<T>(rng.angle());
    }
    input.resize(type == 1 ? M : static_cast<std::size_t>(ntot));
    for (auto& v : input)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }

  std::size_t out_len() const {
    return type == 1 ? static_cast<std::size_t>(ntot) : M;
  }
  const T* yp() const { return y.empty() ? nullptr : y.data(); }
  const T* zp() const { return z.empty() ? nullptr : z.data(); }

  service::Request<T> request(core::Options opts,
                              std::vector<std::complex<T>>& out) const {
    service::Request<T> r;
    r.type = type;
    r.modes = N;
    r.tol = 1e-5;
    r.opts = opts;
    r.M = M;
    r.x = x.data();
    r.y = yp();
    r.z = zp();
    r.input = input.data();
    r.output = out.data();
    return r;
  }

  /// Serial reference: one B = 1 Plan execute on a fresh device. `tiled`
  /// reports whether the spread ran on the deterministic tiled engine.
  std::vector<std::complex<T>> reference(std::size_t workers, core::Options opts,
                                         int* tiled = nullptr) const {
    vgpu::Device dev(workers);
    core::Plan<T> plan(dev, type, N, +1, 1e-5, opts);
    plan.set_points(M, x.data(), yp(), zp());
    std::vector<std::complex<T>> out(out_len());
    if (type == 1) {
      std::vector<std::complex<T>> c = input;
      plan.execute(c.data(), out.data());
    } else {
      std::vector<std::complex<T>> f = input;
      plan.execute(out.data(), f.data());
    }
    if (tiled) *tiled = plan.last_breakdown().tiled;
    return out;
  }
};

core::Options env_opts() {
  core::Options o;
  o.fastpath = cf::test::env_fastpath();
  o.tiled_spread = cf::test::env_tiled();
  return o;
}

/// Per-dim request options: 1D needs an explicit bin size (the 1024-point
/// default bin always fails the tile-geometry gate on test-sized grids).
core::Options opts_for(int dim) {
  core::Options o = env_opts();
  if (dim == 1) o.binsize = {32, 1, 1};
  return o;
}

template <typename T>
void expect_same(const std::vector<std::complex<T>>& got,
                 const std::vector<std::complex<T>>& want, bool bitwise,
                 const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  double worst = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (bitwise) {
      ASSERT_EQ(got[i], want[i]) << what << " i=" << i;
    } else {
      worst = std::max(worst, std::abs(std::complex<double>(got[i]) -
                                       std::complex<double>(want[i])));
    }
  }
  if (!bitwise) EXPECT_LT(worst, 1e-3) << what;
}

}  // namespace

// ---- N submitter threads x mixed signatures ---------------------------------

TEST(Service, MixedSignaturesFromManyThreadsMatchSerial) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::NufftService svc(dev);  // threads from CF_SERVICE_THREADS (else 2)

  // Mixed signatures: every dim, both types, both precisions (3D modes sized
  // so the tile-geometry gate passes, as in test_tiled_spread).
  std::vector<Problem<float>> pf;
  std::vector<Problem<double>> pd;
  pf.emplace_back(std::vector<std::int64_t>{64}, 1, 500, 11);
  pf.emplace_back(std::vector<std::int64_t>{20, 24}, 1, 600, 12);
  pf.emplace_back(std::vector<std::int64_t>{16, 16, 12}, 1, 700, 13);
  pf.emplace_back(std::vector<std::int64_t>{20, 24}, 2, 600, 14);
  pd.emplace_back(std::vector<std::int64_t>{16, 16, 12}, 1, 700, 15);
  pd.emplace_back(std::vector<std::int64_t>{64}, 2, 500, 16);

  std::vector<core::Options> optf, optd;
  for (const auto& p : pf) optf.push_back(opts_for(static_cast<int>(p.N.size())));
  for (const auto& p : pd) optd.push_back(opts_for(static_cast<int>(p.N.size())));

  std::vector<std::vector<std::complex<float>>> reff(pf.size());
  std::vector<std::vector<std::complex<double>>> refd(pd.size());
  std::vector<int> tiledf(pf.size(), 0), tiledd(pd.size(), 0);
  for (std::size_t i = 0; i < pf.size(); ++i)
    reff[i] = pf[i].reference(workers, optf[i], &tiledf[i]);
  for (std::size_t i = 0; i < pd.size(); ++i)
    refd[i] = pd[i].reference(workers, optd[i], &tiledd[i]);

  // 4 submitter threads x 3 rounds x every signature, all in flight at once.
  const int kThreads = 4, kRounds = 3;
  struct Slot {
    std::vector<std::vector<std::complex<float>>> outf;
    std::vector<std::vector<std::complex<double>>> outd;
    std::vector<std::future<service::ExecReport>> futs;
  };
  std::vector<Slot> slots(kThreads);
  for (auto& s : slots) {
    s.outf.resize(kRounds * pf.size());
    s.outd.resize(kRounds * pd.size());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& s = slots[t];
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t i = 0; i < pf.size(); ++i) {
          auto& out = s.outf[r * pf.size() + i];
          out.assign(pf[i].out_len(), {});
          s.futs.push_back(svc.submit(pf[i].request(optf[i], out)));
        }
        for (std::size_t i = 0; i < pd.size(); ++i) {
          auto& out = s.outd[r * pd.size() + i];
          out.assign(pd[i].out_len(), {});
          s.futs.push_back(svc.submit(pd[i].request(optd[i], out)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (auto& s : slots) {
    for (auto& f : s.futs) {
      const auto rep = f.get();
      EXPECT_GE(rep.batch, 1);
      EXPECT_LT(rep.batch_index, rep.batch);
    }
    for (int r = 0; r < kRounds; ++r) {
      for (std::size_t i = 0; i < pf.size(); ++i)
        expect_same(s.outf[r * pf.size() + i], reff[i],
                    expect_bitwise(workers, pf[i].type, tiledf[i]), "float signature");
      for (std::size_t i = 0; i < pd.size(); ++i)
        expect_same(s.outd[r * pd.size() + i], refd[i],
                    expect_bitwise(workers, pd[i].type, tiledd[i]), "double signature");
    }
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads) * kRounds *
                              (pf.size() + pd.size()));
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.failed, 0u);
  // Six signatures, many requests each: plans were reused, not rebuilt...
  EXPECT_EQ(st.plan_misses, pf.size() + pd.size());
  // ...and every dispatch after the first per signature reused set_points.
  EXPECT_EQ(st.setpts_builds, pf.size() + pd.size());
  EXPECT_GT(st.setpts_reuses, 0u);
}

// ---- coalescing: bitwise-identical across batch composition -----------------

TEST(Service, ResponsesBitwiseIdenticalAcrossCoalescingAndThreadCounts) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  const core::Options opts = env_opts();
  // Modes sized so the tile-geometry gate passes (test_tiled_spread's 3D
  // shape): the coalescing guarantee under test is the bitwise one.
  Problem<float> p(std::vector<std::int64_t>{16, 16, 12}, 1, 900, 42);

  // 8 distinct strength vectors over one point set / signature.
  const int kReq = 8;
  std::vector<Problem<float>> reqs;
  reqs.reserve(kReq);
  Rng rng(77);
  for (int i = 0; i < kReq; ++i) {
    reqs.push_back(p);
    for (auto& v : reqs.back().input)
      v = {static_cast<float>(rng.uniform(-1, 1)),
           static_cast<float>(rng.uniform(-1, 1))};
  }
  std::vector<std::vector<std::complex<float>>> ref(kReq);
  int ref_tiled = 0;
  for (int i = 0; i < kReq; ++i) ref[i] = reqs[i].reference(workers, opts, &ref_tiled);
  if (cf::test::env_tiled()) {
    ASSERT_EQ(ref_tiled, 1);  // the shape above must exercise the tiled path
  }

  // Service shapes that force different batch compositions: one dispatcher
  // with a window (full 8-batch), several dispatchers with max_batch 3
  // (ragged 3+3+2 or racier), and reversed submission order.
  struct Shape {
    int threads, max_batch;
    std::chrono::microseconds window;
    bool reverse;
  } shapes[] = {{1, 8, std::chrono::microseconds(20000), false},
                {1, 3, std::chrono::microseconds(0), false},
                {4, 3, std::chrono::microseconds(0), true},
                {2, 1, std::chrono::microseconds(0), false}};  // no coalescing

  const bool bitwise = expect_bitwise(workers, 1, ref_tiled);
  for (const auto& sh : shapes) {
    vgpu::Device dev(workers);
    service::ServiceConfig cfg;
    cfg.threads = sh.threads;
    cfg.max_batch = sh.max_batch;
    cfg.coalesce_window = sh.window;
    service::NufftService svc(dev, cfg);

    std::vector<std::vector<std::complex<float>>> out(kReq);
    std::vector<std::future<service::ExecReport>> futs(kReq);
    for (int i = 0; i < kReq; ++i) {
      const int k = sh.reverse ? kReq - 1 - i : i;
      out[k].assign(reqs[k].out_len(), {});
      futs[k] = svc.submit(reqs[k].request(opts, out[k]));
    }
    int max_batch_got = 0;
    for (int i = 0; i < kReq; ++i)
      max_batch_got = std::max(max_batch_got, futs[i].get().batch);
    EXPECT_LE(max_batch_got, sh.max_batch);
    for (int i = 0; i < kReq; ++i)
      expect_same(out[i], ref[i], bitwise, "coalesced response");

    const auto st = svc.stats();
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kReq));
    if (sh.window.count() > 0) {
      // The window lets all 8 near-simultaneous submissions land in one
      // batched execute on the single dispatcher.
      EXPECT_EQ(st.max_batch_seen, static_cast<std::uint64_t>(kReq));
      EXPECT_EQ(st.batches, 1u);
    }
    EXPECT_EQ(st.setpts_builds, 1u);  // one point set, fingerprint-shared
  }
}

// ---- shutdown: residual coalescing windows must not stall destruction ------

TEST(Service, DestructionWithQueuedRequestsSkipsResidualWindows) {
  // Four distinct-signature groups queued behind ONE dispatcher with a 200 ms
  // coalescing window, destroyed immediately: pre-fix, pop_ready slept the
  // window out per pop even after shutdown(), so destruction stalled at least
  // one full window (and up to window x groups with staggered arrivals). The
  // wait must be interrupted by shutdown, every future still fulfilled.
  std::vector<Problem<float>> ps;
  ps.emplace_back(std::vector<std::int64_t>{24}, 1, 200, 31);
  ps.emplace_back(std::vector<std::int64_t>{32}, 1, 200, 32);
  ps.emplace_back(std::vector<std::int64_t>{20, 16}, 1, 200, 33);
  ps.emplace_back(std::vector<std::int64_t>{16, 12}, 2, 200, 34);

  std::vector<std::vector<std::complex<float>>> out(ps.size());
  std::vector<std::future<service::ExecReport>> futs(ps.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
    service::ServiceConfig cfg;
    cfg.threads = 1;
    cfg.coalesce_window = std::chrono::milliseconds(200);
    service::NufftService svc(dev, cfg);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i].assign(ps[i].out_len(), {});
      futs[i] = svc.submit(
          ps[i].request(opts_for(static_cast<int>(ps[i].N.size())), out[i]));
    }
  }  // destruction with the window pending
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // all flushed, none dropped
  // Generous bound: the transforms take milliseconds; only an un-interrupted
  // 200 ms window could push past this.
  EXPECT_LT(elapsed.count(), 150);
}

// ---- registry: LRU eviction + fingerprint reuse -----------------------------

TEST(Service, RegistryLruEvictionAndPointFingerprintReuse) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::ServiceConfig cfg;
  cfg.threads = 1;    // deterministic dispatch order
  cfg.max_plans = 2;  // tiny LRU so eviction is observable
  service::NufftService svc(dev, cfg);
  const core::Options opts = env_opts();

  Problem<float> a(std::vector<std::int64_t>{32}, 1, 300, 1);
  Problem<float> b(std::vector<std::int64_t>{20, 16}, 1, 300, 2);
  Problem<float> c(std::vector<std::int64_t>{8, 10, 8}, 1, 300, 3);

  auto run = [&](const Problem<float>& p) {
    std::vector<std::complex<float>> out(p.out_len());
    auto fut = svc.submit(p.request(opts, out));
    return fut.get();
  };

  auto r1 = run(a);
  EXPECT_FALSE(r1.plan_reused);
  EXPECT_FALSE(r1.points_reused);
  auto r2 = run(a);  // same signature AND same points
  EXPECT_TRUE(r2.plan_reused);
  EXPECT_TRUE(r2.points_reused);
  auto st = svc.stats();
  EXPECT_EQ(st.plan_misses, 1u);
  EXPECT_EQ(st.plan_hits, 1u);
  EXPECT_EQ(st.setpts_builds, 1u);
  EXPECT_EQ(st.setpts_reuses, 1u);

  // New points under the same signature: plan reused, set_points rebuilt.
  Problem<float> a2(std::vector<std::int64_t>{32}, 1, 300, 99);
  auto r3 = run(a2);
  EXPECT_TRUE(r3.plan_reused);
  EXPECT_FALSE(r3.points_reused);
  EXPECT_EQ(svc.stats().setpts_builds, 2u);

  run(b);             // registry now {a, b}
  run(c);             // capacity 2: evicts a
  st = svc.stats();
  EXPECT_EQ(st.plan_evictions, 1u);
  auto r4 = run(a);   // a was evicted: rebuilt from scratch
  EXPECT_FALSE(r4.plan_reused);
  EXPECT_FALSE(r4.points_reused);
  EXPECT_EQ(svc.stats().plan_misses, 4u);  // a, b, c, a-again
}

// ---- future error propagation ----------------------------------------------

TEST(Service, FutureErrorPropagation) {
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
  service::NufftService svc(dev);
  Problem<float> p(std::vector<std::int64_t>{20, 16}, 1, 200, 5);
  const core::Options opts = env_opts();

  {
    // Bad type: fails in plan construction ON THE DISPATCH THREAD and
    // reaches the caller through the future.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.type = 7;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Bad modes (dim 0): rejected eagerly, still a future.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.modes.clear();
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Method constraint: SM is type-1-only; the Plan's own invalid_argument
    // comes back identically.
    std::vector<std::complex<float>> out(p.M);
    auto req = p.request(opts, out);
    req.type = 2;
    req.opts.method = core::Method::SM;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }
  {
    // Missing buffers.
    std::vector<std::complex<float>> out(p.out_len());
    auto req = p.request(opts, out);
    req.output = nullptr;
    EXPECT_THROW(svc.submit(req).get(), std::invalid_argument);
  }

  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 4u);
  EXPECT_EQ(st.completed, 0u);

  // The service stays healthy after failures.
  std::vector<std::complex<float>> out(p.out_len());
  auto fut = svc.submit(p.request(opts, out));
  EXPECT_NO_THROW(fut.get());
}

// ---- CF_SERVICE_THREADS ------------------------------------------------------

TEST(Service, ServiceThreadsEnvHonored) {
  vgpu::Device dev(1);
  {
    ::setenv("CF_SERVICE_THREADS", "3", 1);
    service::NufftService svc(dev);
    EXPECT_EQ(svc.n_threads(), 3);
    ::unsetenv("CF_SERVICE_THREADS");
  }
  {
    // Explicit config wins over the environment.
    ::setenv("CF_SERVICE_THREADS", "3", 1);
    service::ServiceConfig cfg;
    cfg.threads = 5;
    service::NufftService svc(dev, cfg);
    EXPECT_EQ(svc.n_threads(), 5);
    ::unsetenv("CF_SERVICE_THREADS");
  }
}

// ---- CPU backend through the same interface ---------------------------------

TEST(Service, CpuBackendMatchesDirectCpuPlan) {
  const auto workers = static_cast<std::size_t>(cf::test::env_workers(2));
  vgpu::Device dev(workers);
  service::NufftService svc(dev);
  Problem<double> p(std::vector<std::int64_t>{18, 14}, 1, 400, 21);

  core::Options opts;  // CPU backend: only the shared option subset applies
  opts.tiled_spread = cf::test::env_tiled();
  std::vector<std::complex<double>> out(p.out_len());
  auto req = p.request(opts, out);
  req.backend = service::Backend::Cpu;
  req.tol = 1e-9;
  svc.submit(req).get();

  cf::cpu::CpuPlan<double>::Options copts;
  copts.tiled_spread = cf::test::env_tiled();
  cf::cpu::CpuPlan<double> plan(dev.pool(), 1, p.N, +1, 1e-9, copts);
  plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
  std::vector<std::complex<double>> want(p.out_len());
  std::vector<std::complex<double>> c = p.input;
  plan.execute(c.data(), want.data());

  // The small grid fails the CPU tile gate, so multi-worker spreads ride the
  // atomic merge: assert bitwise only where that is deterministic.
  expect_same(out, want, /*bitwise=*/workers <= 1, "CPU backend");
}

// ---- C API -------------------------------------------------------------------

TEST(Service, CApiServiceCoalescesAndMatchesPlan) {
  cfs_device dev = nullptr;
  ASSERT_EQ(cfs_device_create(&dev, 2), CFS_SUCCESS);
  cfs_service svc = nullptr;
  ASSERT_EQ(cfs_service_create(&svc, dev, 2, 4, 8), CFS_SUCCESS);

  // Modes sized so the tile-geometry gate passes (fine grid 64 x 48 against
  // 38-cell padded bins), keeping the default pipeline deterministic.
  const std::int64_t nmodes[2] = {32, 24};
  const std::size_t M = 300, ntot = 32 * 24;
  Rng rng(9);
  std::vector<float> x(M), y(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = static_cast<float>(rng.angle());
    y[j] = static_cast<float>(rng.angle());
  }
  const int kReq = 4;
  std::vector<std::vector<float>> cin(kReq), fout(kReq, std::vector<float>(2 * ntot));
  for (auto& ci : cin) {
    ci.resize(2 * M);
    for (auto& v : ci) v = static_cast<float>(rng.uniform(-1, 1));
  }

  cfs_opts opts;
  cfs_default_opts(&opts);
  opts.gpu_fastpath = cf::test::env_fastpath() ? 0 : -1;
  opts.gpu_tiled_spread = cf::test::env_tiled() ? 0 : -1;

  std::vector<cfs_request> reqs(kReq);
  for (int i = 0; i < kReq; ++i)
    ASSERT_EQ(cfs_service_submitf(svc, 1, 2, nmodes, +1, 1e-5, &opts, M, x.data(),
                                  y.data(), nullptr, cin[i].data(), fout[i].data(),
                                  &reqs[i]),
              CFS_SUCCESS);
  for (int i = 0; i < kReq; ++i)
    EXPECT_EQ(cfs_service_wait(svc, reqs[i]), CFS_SUCCESS);
  EXPECT_EQ(cfs_service_wait(svc, 123456), CFS_ERR_INVALID_ARG);  // unknown handle

  uint64_t batches = 0, brequests = 0, misses = 0, reuses = 0;
  ASSERT_EQ(cfs_service_stats(svc, &batches, &brequests, &misses, &reuses),
            CFS_SUCCESS);
  EXPECT_EQ(brequests, static_cast<uint64_t>(kReq));
  EXPECT_EQ(misses, 1u);  // one signature, one plan
  EXPECT_GE(batches, 1u);

  // Reference through the C plan API on the same options.
  cfs_planf plan = nullptr;
  ASSERT_EQ(cfs_makeplanf(dev, 1, 2, nmodes, +1, 1e-5, &opts, &plan), CFS_SUCCESS);
  ASSERT_EQ(cfs_setptsf(plan, M, x.data(), y.data(), nullptr), CFS_SUCCESS);
  const bool bitwise = cf::test::env_tiled() != 0;
  for (int i = 0; i < kReq; ++i) {
    std::vector<float> want(2 * ntot);
    std::vector<float> c = cin[i];
    ASSERT_EQ(cfs_executef(plan, c.data(), want.data()), CFS_SUCCESS);
    for (std::size_t k = 0; k < want.size(); ++k) {
      if (bitwise)
        ASSERT_EQ(fout[i][k], want[k]) << "req " << i << " k=" << k;
      else
        ASSERT_NEAR(fout[i][k], want[k], 1e-3) << "req " << i << " k=" << k;
    }
  }
  cfs_destroyf(plan);
  cfs_service_destroy(svc);
  cfs_device_destroy(dev);
}
