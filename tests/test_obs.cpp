// Observability layer (src/obs):
//  * the ledger invariant submitted == completed + failed + outstanding
//    holds on snapshots taken DURING concurrent submit/shed storms — for
//    both the single-service and sharded tiers — not just after a drain;
//  * log-bucketed histograms: bucket counts sum to the recorded count, the
//    end-to-end histogram counts every fulfilled request, the batch-size
//    histogram counts every dispatched batch, and percentiles are monotone;
//  * trace spans: IDs are only minted when tracing is enabled, per-thread
//    rings stay bounded at their configured capacity (oldest-wins), the
//    Chrome trace export is well-formed JSON, and ExecReport carries the
//    request's trace ID across the service;
//  * metrics surface: the JSON and Prometheus expositions contain the
//    ledger/counter/histogram series, and the slow-request log prints a
//    span chain when the threshold trips;
//  * none of it changes output bits (test_service re-checks bitwise results
//    under CF_TRACE=1 in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <complex>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace obs = cf::obs;
namespace service = cf::service;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Restores the process-global trace switch on scope exit, so suites stay
/// order-independent and honor an external CF_TRACE=1 CI pass.
struct TraceGuard {
  bool was = obs::enabled();
  ~TraceGuard() { obs::set_enabled(was); }
};

// ---- minimal JSON validator -------------------------------------------------
// Recursive-descent syntax check (no semantics): enough to prove the trace
// and metrics exports are loadable by a real parser.

class JsonCheck {
 public:
  explicit JsonCheck(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string::traits_type::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return false;
            else
              ++pos_;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
      skip_ws();
    } while (eat(','));
    return eat(']');
  }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Small 2D type-1 workload all tests share (explicit binsize so test-sized
/// grids pass the tile-geometry gate, as in test_service).
struct Workload {
  std::vector<std::int64_t> N{20, 24};
  std::size_t M = 400;
  std::vector<double> x, y;
  std::vector<std::complex<double>> c;

  explicit Workload(std::uint64_t seed) : x(M), y(M), c(M) {
    Rng rng(seed);
    for (auto& v : x) v = rng.angle();
    for (auto& v : y) v = rng.angle();
    for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }

  service::Request<double> request(std::vector<std::complex<double>>& out) const {
    service::Request<double> r;
    r.type = 1;
    r.modes = N;
    r.tol = 1e-5;
    r.M = M;
    r.x = x.data();
    r.y = y.data();
    r.input = c.data();
    r.output = out.data();
    return r;
  }
};

}  // namespace

// ---- histogram unit ---------------------------------------------------------

TEST(ObsHistogram, BucketEdgesAndSums) {
  obs::Histogram h;
  h.record(0.0);    // bucket 0: [0, 1)
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 1: [1, 2)
  h.record(3.0);    // bucket 2: [2, 4)
  h.record(1000);   // bucket 10: [512, 1024)
  h.record(-7.0);   // clamped into bucket 0
  const auto s = h.snap();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.bucket_total(), 6u);
  EXPECT_EQ(s.buckets[0], 3u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0 + 0.5 + 1.0 + 3.0 + 1000.0 + 0.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(0), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(10), 1024.0);
}

TEST(ObsHistogram, PercentilesMonotoneAndBracketed) {
  obs::Histogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(0, 1 << 16));
  const auto s = h.snap();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.bucket_total(), s.count);
  double prev = 0;
  for (double q : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const double p = s.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  EXPECT_LE(s.percentile(100), 1 << 16);
  EXPECT_EQ(obs::Histogram().snap().percentile(50), 0.0);  // empty histogram
}

// ---- ledger unit ------------------------------------------------------------

TEST(ObsLedger, TransitionsKeepTheInvariant) {
  obs::Ledger led;
  EXPECT_TRUE(led.admit(0, false));   // unbounded
  EXPECT_TRUE(led.admit(2, false));   // 1 < 2
  EXPECT_FALSE(led.admit(2, false));  // at cap: shed
  led.reject();                       // validation failure
  auto s = led.snap();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.outstanding, 2u);
  EXPECT_EQ(s.failed, 2u);  // shed + reject
  EXPECT_EQ(s.shed, 1u);
  EXPECT_TRUE(s.consistent());
  led.fulfill(2, 1);
  s = led.snap();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 3u);
  EXPECT_TRUE(s.consistent());
  EXPECT_EQ(s.submitted, s.completed + s.failed);
  led.wait_drained();  // returns immediately at outstanding == 0
}

// ---- ledger consistency under concurrent storms -----------------------------

TEST(ObsService, LedgerConsistentDuringShedStorm) {
  Workload wl(21);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 2;
  cfg.max_outstanding = 4;
  cfg.admission = service::Admission::Shed;  // storms actually shed
  service::NufftService svc(dev, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0}, samples{0};
  // Sampler: hammer snapshots while submitters race admission/shed/fulfill.
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s = svc.metrics().ledger().snap();
      ++samples;
      if (!s.consistent()) ++torn;
    }
  });

  const int kThreads = 4, kPerThread = 60;
  std::vector<std::thread> subs;
  for (int t = 0; t < kThreads; ++t)
    subs.emplace_back([&, t] {
      Workload mine(100 + static_cast<std::uint64_t>(t));
      std::vector<std::vector<std::complex<double>>> outs(
          kPerThread, std::vector<std::complex<double>>(20 * 24));
      std::vector<std::future<service::ExecReport>> futs;
      for (int i = 0; i < kPerThread; ++i)
        futs.push_back(svc.submit(mine.request(outs[static_cast<std::size_t>(i)])));
      for (auto& f : futs) {
        try {
          f.get();
        } catch (const service::OverloadedError&) {
        }
      }
    });
  for (auto& th : subs) th.join();
  svc.drain();
  stop = true;
  sampler.join();

  EXPECT_EQ(torn.load(), 0u) << "inconsistent ledger snapshots mid-storm";
  EXPECT_GT(samples.load(), 0u);
  const auto fin = svc.metrics().ledger().snap();
  EXPECT_TRUE(fin.consistent());
  EXPECT_EQ(fin.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(fin.outstanding, 0u);
  EXPECT_EQ(fin.submitted, fin.completed + fin.failed);
  EXPECT_GT(fin.shed, 0u) << "storm never hit the cap; raise the load";
  // The stats() view rides the same snapshot.
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, st.completed + st.failed);
  EXPECT_EQ(st.shed, fin.shed);
}

TEST(ObsSharded, FrontLedgerConsistentDuringStorm) {
  service::ShardedConfig cfg;
  cfg.shards = 2;
  cfg.device_workers = 1;
  cfg.shard.threads = 1;
  cfg.max_outstanding = 4;
  cfg.admission = service::Admission::Shed;
  service::ShardedNufftService svc(cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!svc.metrics().ledger().snap().consistent()) ++torn;
      // Also exercise the rolled-up stats() path concurrently.
      const auto st = svc.stats();
      (void)st;
    }
  });

  const int kThreads = 4, kPerThread = 40;
  std::vector<std::thread> subs;
  for (int t = 0; t < kThreads; ++t)
    subs.emplace_back([&, t] {
      // Two signatures (different point seeds -> different fingerprints but
      // same plan; different mode sets -> different shards).
      Workload mine(200 + static_cast<std::uint64_t>(t));
      std::vector<std::vector<std::complex<double>>> outs(
          kPerThread, std::vector<std::complex<double>>(20 * 24));
      std::vector<std::future<service::ExecReport>> futs;
      for (int i = 0; i < kPerThread; ++i)
        futs.push_back(svc.submit(mine.request(outs[static_cast<std::size_t>(i)])));
      for (auto& f : futs) {
        try {
          f.get();
        } catch (const service::OverloadedError&) {
        }
      }
    });
  for (auto& th : subs) th.join();
  svc.drain();
  stop = true;
  sampler.join();

  EXPECT_EQ(torn.load(), 0u) << "inconsistent front-ledger snapshots mid-storm";
  const auto fin = svc.metrics().ledger().snap();
  EXPECT_TRUE(fin.consistent());
  EXPECT_EQ(fin.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(fin.submitted, fin.completed + fin.failed);
  const auto st = svc.stats();
  EXPECT_EQ(st.total.submitted, st.total.completed + st.total.failed);
  EXPECT_EQ(st.total.shed, st.front_shed);
}

// ---- histogram / counter wiring through the service -------------------------

TEST(ObsService, HistogramBucketCountsSumToRequestCount) {
  Workload wl(33);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);

  const int kN = 24;
  std::vector<std::vector<std::complex<double>>> outs(
      kN, std::vector<std::complex<double>>(20 * 24));
  std::vector<std::future<service::ExecReport>> futs;
  for (int i = 0; i < kN; ++i)
    futs.push_back(svc.submit(wl.request(outs[static_cast<std::size_t>(i)])));
  for (auto& f : futs) f.get();
  svc.drain();

  const auto& m = svc.metrics();
  const auto e2e = m.e2e_us->snap();
  EXPECT_EQ(e2e.count, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(e2e.bucket_total(), e2e.count);
  const auto qw = m.queue_wait_us->snap();
  EXPECT_EQ(qw.count, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(qw.bucket_total(), qw.count);
  const auto bs = m.batch_size->snap();
  EXPECT_EQ(bs.count, m.batches->value());
  EXPECT_EQ(bs.bucket_total(), bs.count);
  EXPECT_EQ(m.batched_requests->value(), static_cast<std::uint64_t>(kN));
  const auto ex = m.execute_us->snap();
  EXPECT_EQ(ex.count, m.batches->value());
  // One signature, one geometry: exactly one set_points build.
  EXPECT_EQ(m.setpts_builds->value(), 1u);
  EXPECT_EQ(m.setpts_us->snap().count, 1u);
  // Stage histograms: the 2D type-1 pipeline ran spread/fft/deconvolve every
  // batch and sort exactly once (on the build).
  EXPECT_EQ(m.stage_spread_us->snap().count, m.batches->value());
  EXPECT_EQ(m.stage_fft_us->snap().count, m.batches->value());
  EXPECT_LE(m.stage_sort_us->snap().count, 1u);
}

// ---- trace spans ------------------------------------------------------------

TEST(ObsTrace, DisabledMintsNoIds) {
  TraceGuard guard;
  obs::set_enabled(false);
  EXPECT_EQ(obs::trace_begin(), 0u);
  obs::span(obs::SpanKind::Execute, 1, 0, 10);  // must be a no-op, not a crash
}

TEST(ObsTrace, EnabledMintsUniqueIdsAndExecReportCarriesThem) {
  TraceGuard guard;
  obs::set_enabled(true);
  const std::uint64_t a = obs::trace_begin();
  const std::uint64_t b = obs::trace_begin();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);

  Workload wl(44);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);
  std::vector<std::complex<double>> out(20 * 24);
  const auto rep = svc.submit(wl.request(out)).get();
  EXPECT_NE(rep.trace, 0u);
  // The request's chain has at least queue-enter, execute, and resolve.
  const auto chain = obs::collect_trace(rep.trace);
  EXPECT_GE(chain.size(), 3u);
  bool saw_resolve = false;
  for (const auto& s : chain)
    saw_resolve = saw_resolve || s.kind == obs::SpanKind::FutureResolve;
  EXPECT_TRUE(saw_resolve);
}

TEST(ObsTrace, RingIsBoundedOldestWins) {
  TraceGuard guard;
  obs::set_enabled(true);
  obs::TraceConfig tc;
  tc.ring_capacity = 64;
  obs::configure(tc);
  // A FRESH thread allocates its ring at the configured capacity.
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 1000; ++i)
      obs::span(obs::SpanKind::Execute, 0, static_cast<double>(i), 1,
                static_cast<std::int64_t>(i));
  });
  writer.join();
  tc.ring_capacity = 8192;
  obs::configure(tc);  // restore for later suites

  bool found = false;
  for (const auto& [tid, spans] : obs::collect()) {
    (void)tid;
    // Identify the writer's ring by its newest span (arg 999).
    if (spans.empty() || spans.back().arg != 999) continue;
    found = true;
    EXPECT_EQ(spans.size(), 64u) << "ring not bounded at its capacity";
    EXPECT_EQ(spans.front().arg, 1000 - 64) << "oldest span should be evicted";
  }
  EXPECT_TRUE(found) << "writer thread's ring not collected";
}

TEST(ObsTrace, ChromeExportIsWellFormedJson) {
  TraceGuard guard;
  obs::set_enabled(true);

  Workload wl(55);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  {
    service::NufftService svc(dev, cfg);
    std::vector<std::vector<std::complex<double>>> outs(
        6, std::vector<std::complex<double>>(20 * 24));
    std::vector<std::future<service::ExecReport>> futs;
    for (auto& out : outs) futs.push_back(svc.submit(wl.request(out)));
    for (auto& f : futs) f.get();
  }

  const std::string path = "obs_trace_test.json";
  ASSERT_TRUE(obs::export_chrome_trace(path));
  const std::string text = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonCheck(text).valid()) << "trace export is not valid JSON";
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"execute\""), std::string::npos);
}

// ---- export surfaces --------------------------------------------------------

TEST(ObsExport, JsonAndPrometheusCarryTheRegistry) {
  Workload wl(66);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  service::NufftService svc(dev, cfg);
  std::vector<std::complex<double>> out(20 * 24);
  svc.submit(wl.request(out)).get();
  svc.drain();

  bool consistent = false;
  const std::string json = obs::json_string(&consistent);
  EXPECT_TRUE(consistent) << json;
  EXPECT_TRUE(JsonCheck(json).valid()) << "metrics JSON is not valid JSON";
  EXPECT_NE(json.find("\"ledger\""), std::string::npos);
  EXPECT_NE(json.find("\"consistent\":true"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_us\""), std::string::npos);
  EXPECT_NE(json.find("\"batches\""), std::string::npos);

  const std::string prom = obs::prometheus_string();
  EXPECT_NE(prom.find("cf_submitted_total{service=\""), std::string::npos);
  EXPECT_NE(prom.find("cf_e2e_us_bucket{"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("cf_e2e_us_count{"), std::string::npos);
}

TEST(ObsSlowLog, ThresholdEmitsSpanChain) {
  TraceGuard guard;
  obs::set_enabled(true);
  Workload wl(77);
  vgpu::Device dev(1);
  service::ServiceConfig cfg;
  cfg.threads = 1;
  cfg.observability.slow_request_ms = 1e-6;  // everything is "slow"
  service::NufftService svc(dev, cfg);
  std::vector<std::complex<double>> out(20 * 24);

  testing::internal::CaptureStderr();
  svc.submit(wl.request(out)).get();
  svc.drain();
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("SLOW request"), std::string::npos);
  EXPECT_NE(log.find("resolve"), std::string::npos) << log;
}
