// FFT substrate tests: correctness against the direct DFT for all radix
// mixtures and Bluestein sizes, algebraic properties, and N-d plans.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fft/fft.hpp"
#include "fft/fftnd.hpp"

using cf::Rng;
using cf::ThreadPool;
namespace fft = cf::fft;

namespace {

template <typename T>
std::vector<std::complex<T>> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<T>> v(n);
  for (auto& x : v)
    x = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  return v;
}

/// Direct DFT in double for reference.
template <typename T>
std::vector<std::complex<double>> direct_dft(const std::vector<std::complex<T>>& in,
                                             int sign) {
  const std::size_t n = in.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi * double(j * k % n) / double(n);
      acc += std::complex<double>(in[j].real(), in[j].imag()) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

template <typename T>
double max_err(const std::vector<std::complex<T>>& got,
               const std::vector<std::complex<double>>& want) {
  double m = 0, scale = 0;
  for (const auto& w : want) scale = std::max(scale, std::abs(w));
  for (std::size_t i = 0; i < got.size(); ++i)
    m = std::max(m, std::abs(std::complex<double>(got[i].real(), got[i].imag()) - want[i]));
  return m / std::max(scale, 1e-300);
}

}  // namespace

TEST(Next235, KnownValues) {
  EXPECT_EQ(fft::next235(1), 1u);
  EXPECT_EQ(fft::next235(2), 2u);
  EXPECT_EQ(fft::next235(7), 8u);
  EXPECT_EQ(fft::next235(11), 12u);
  EXPECT_EQ(fft::next235(121), 125u);
  EXPECT_EQ(fft::next235(2000), 2000u);  // 2^4 * 5^3
  EXPECT_EQ(fft::next235(257), 270u);    // 2*3^3*5
}

TEST(Next235, AlwaysFactors235AndGeq) {
  for (std::size_t n = 1; n < 2000; n += 7) {
    const std::size_t m = fft::next235(n);
    EXPECT_GE(m, n);
    EXPECT_TRUE(fft::is_235(m));
  }
}

class Fft1dSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1dSizes, MatchesDirectDftDouble) {
  const std::size_t n = GetParam();
  auto in = random_signal<double>(n, 100 + n);
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> out(n), work(plan.workspace_size());
  for (int sign : {-1, +1}) {
    plan.exec(in.data(), 1, out.data(), sign, work.data());
    auto want = direct_dft(in, sign);
    EXPECT_LT(max_err(out, want), 1e-11) << "n=" << n << " sign=" << sign;
  }
}

TEST_P(Fft1dSizes, MatchesDirectDftSingle) {
  const std::size_t n = GetParam();
  auto in = random_signal<float>(n, 200 + n);
  fft::Fft1d<float> plan(n);
  std::vector<std::complex<float>> out(n), work(plan.workspace_size());
  plan.exec(in.data(), 1, out.data(), -1, work.data());
  auto want = direct_dft(in, -1);
  EXPECT_LT(max_err(out, want), 2e-4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(AllRadixMixes, Fft1dSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24,
                                           25, 27, 30, 32, 45, 60, 64, 81, 100, 120, 125,
                                           128, 135, 240, 243, 256, 360, 625, 729, 1024));

INSTANTIATE_TEST_SUITE_P(BluesteinSizes, Fft1dSizes,
                         ::testing::Values(7, 11, 13, 17, 23, 31, 41, 61, 97, 101, 127,
                                           211, 251, 509));

TEST(Fft1d, InverseRoundTrip) {
  for (std::size_t n : {16u, 60u, 101u, 240u}) {
    auto in = random_signal<double>(n, 7 * n);
    fft::Fft1d<double> plan(n);
    std::vector<std::complex<double>> mid(n), out(n), work(plan.workspace_size());
    plan.exec(in.data(), 1, mid.data(), -1, work.data());
    plan.exec(mid.data(), 1, out.data(), +1, work.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(out[i] / double(n) - in[i]), 0.0, 1e-12);
  }
}

TEST(Fft1d, Linearity) {
  const std::size_t n = 120;
  auto a = random_signal<double>(n, 1), b = random_signal<double>(n, 2);
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> fa(n), fb(n), fab(n), ab(n),
      work(plan.workspace_size());
  const std::complex<double> alpha(1.5, -0.5);
  for (std::size_t i = 0; i < n; ++i) ab[i] = a[i] + alpha * b[i];
  plan.exec(a.data(), 1, fa.data(), -1, work.data());
  plan.exec(b.data(), 1, fb.data(), -1, work.data());
  plan.exec(ab.data(), 1, fab.data(), -1, work.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fab[i] - (fa[i] + alpha * fb[i])), 0.0, 1e-10);
}

TEST(Fft1d, ParsevalHolds) {
  const std::size_t n = 360;
  auto in = random_signal<double>(n, 3);
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> out(n), work(plan.workspace_size());
  plan.exec(in.data(), 1, out.data(), -1, work.data());
  double e_time = 0, e_freq = 0;
  for (auto& v : in) e_time += std::norm(v);
  for (auto& v : out) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq, e_time * double(n), 1e-8 * e_freq);
}

TEST(Fft1d, StridedInputMatchesContiguous) {
  const std::size_t n = 64, stride = 3;
  auto base = random_signal<double>(n * stride, 4);
  std::vector<std::complex<double>> packed(n);
  for (std::size_t i = 0; i < n; ++i) packed[i] = base[i * stride];
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> o1(n), o2(n), work(plan.workspace_size());
  plan.exec(base.data(), stride, o1.data(), -1, work.data());
  plan.exec(packed.data(), 1, o2.data(), -1, work.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(o1[i], o2[i]);
}

TEST(Fft1d, DeltaGivesConstantSpectrum) {
  const std::size_t n = 100;
  std::vector<std::complex<double>> in(n, {0, 0}), out(n);
  in[0] = {1, 0};
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> work(plan.workspace_size());
  plan.exec(in.data(), 1, out.data(), -1, work.data());
  for (auto& v : out) EXPECT_NEAR(std::abs(v - std::complex<double>(1, 0)), 0.0, 1e-12);
}

TEST(FftNd, Fft2dMatchesDirect) {
  ThreadPool pool(4);
  const std::size_t n1 = 12, n2 = 10;
  auto in = random_signal<double>(n1 * n2, 5);
  auto data = in;
  fft::FftNd<double> plan(pool, {n1, n2});
  plan.exec(data.data(), -1);
  // Direct 2D DFT.
  for (std::size_t k2 = 0; k2 < n2; ++k2)
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      std::complex<double> acc(0, 0);
      for (std::size_t j2 = 0; j2 < n2; ++j2)
        for (std::size_t j1 = 0; j1 < n1; ++j1) {
          const double ang = -2.0 * std::numbers::pi *
                             (double(j1 * k1) / n1 + double(j2 * k2) / n2);
          acc += in[j1 + n1 * j2] * std::complex<double>(std::cos(ang), std::sin(ang));
        }
      EXPECT_NEAR(std::abs(data[k1 + n1 * k2] - acc), 0.0, 1e-9);
    }
}

TEST(FftNd, Fft3dRoundTrip) {
  ThreadPool pool(8);
  const std::size_t n1 = 8, n2 = 6, n3 = 5;
  auto in = random_signal<double>(n1 * n2 * n3, 6);
  auto data = in;
  fft::FftNd<double> plan(pool, {n1, n2, n3});
  plan.exec(data.data(), -1);
  plan.exec(data.data(), +1);
  const double scale = 1.0 / double(n1 * n2 * n3);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] * scale - in[i]), 0.0, 1e-12);
}

TEST(FftNd, SeparableDeltaPlane) {
  // A delta at the origin of a 3D grid transforms to the all-ones grid.
  ThreadPool pool(4);
  const std::size_t n = 10;
  std::vector<std::complex<double>> data(n * n * n, {0, 0});
  data[0] = {1, 0};
  fft::FftNd<double> plan(pool, {n, n, n});
  plan.exec(data.data(), -1);
  for (auto& v : data) EXPECT_NEAR(std::abs(v - std::complex<double>(1, 0)), 0.0, 1e-12);
}

TEST(FftNd, RejectsBadDims) {
  ThreadPool pool(2);
  EXPECT_THROW(fft::FftNd<double>(pool, {}), std::invalid_argument);
  EXPECT_THROW(fft::FftNd<double>(pool, {4, 4, 4, 4}), std::invalid_argument);
  EXPECT_THROW(fft::FftNd<double>(pool, {0}), std::invalid_argument);
}

TEST(Fft1d, RejectsBadSign) {
  fft::Fft1d<double> plan(8);
  std::vector<std::complex<double>> in(8), out(8), work(plan.workspace_size());
  EXPECT_THROW(plan.exec(in.data(), 1, out.data(), 0, work.data()), std::invalid_argument);
  EXPECT_THROW(plan.exec(in.data(), 1, out.data(), 2, work.data()), std::invalid_argument);
}

TEST(Fft1d, ShiftTheorem) {
  // Circular shift by m multiplies spectrum by e^{-2*pi*i*m*k/n}.
  const std::size_t n = 90, shift = 7;
  auto in = random_signal<double>(n, 9);
  std::vector<std::complex<double>> shifted(n);
  for (std::size_t j = 0; j < n; ++j) shifted[(j + shift) % n] = in[j];
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> fa(n), fb(n), work(plan.workspace_size());
  plan.exec(in.data(), 1, fa.data(), -1, work.data());
  plan.exec(shifted.data(), 1, fb.data(), -1, work.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -2.0 * std::numbers::pi * double(shift * k % n) / double(n);
    const auto want = fa[k] * std::complex<double>(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(fb[k] - want), 0.0, 1e-10);
  }
}

TEST(Fft1d, RealInputConjugateSymmetry) {
  const std::size_t n = 128;
  Rng rng(10);
  std::vector<std::complex<double>> in(n);
  for (auto& v : in) v = {rng.uniform(-1, 1), 0.0};
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> out(n), work(plan.workspace_size());
  plan.exec(in.data(), 1, out.data(), -1, work.data());
  for (std::size_t k = 1; k < n; ++k)
    EXPECT_NEAR(std::abs(out[k] - std::conj(out[n - k])), 0.0, 1e-11) << k;
}

TEST(Fft1d, BluesteinPrimeRoundTrip) {
  for (std::size_t n : {7u, 127u, 509u}) {
    auto in = random_signal<double>(n, 11 * n);
    fft::Fft1d<double> plan(n);
    std::vector<std::complex<double>> mid(n), out(n), work(plan.workspace_size());
    plan.exec(in.data(), 1, mid.data(), -1, work.data());
    plan.exec(mid.data(), 1, out.data(), +1, work.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(out[i] / double(n) - in[i]), 0.0, 1e-11);
  }
}

TEST(Fft1d, WorkspaceIsStateless) {
  // Two transforms sharing one workspace buffer must not interfere.
  const std::size_t n = 60;
  auto a = random_signal<double>(n, 12), b = random_signal<double>(n, 13);
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> fa1(n), fb1(n), fa2(n), work(plan.workspace_size());
  plan.exec(a.data(), 1, fa1.data(), -1, work.data());
  plan.exec(b.data(), 1, fb1.data(), -1, work.data());
  plan.exec(a.data(), 1, fa2.data(), -1, work.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fa1[i], fa2[i]);
}

TEST(FftNd, AnisotropicDims) {
  ThreadPool pool(4);
  const std::size_t n1 = 4, n2 = 27, n3 = 10;
  auto in = random_signal<double>(n1 * n2 * n3, 14);
  auto data = in;
  fft::FftNd<double> plan(pool, {n1, n2, n3});
  plan.exec(data.data(), -1);
  plan.exec(data.data(), +1);
  const double s = 1.0 / double(n1 * n2 * n3);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] * s - in[i]), 0.0, 1e-11);
}

TEST(FftNd, AxisTransformMatchesManualLoop) {
  // 2D plan equals running 1D transforms along rows then columns.
  ThreadPool pool(2);
  const std::size_t n1 = 8, n2 = 6;
  auto in = random_signal<double>(n1 * n2, 15);
  auto nd = in;
  fft::FftNd<double> plan2(pool, {n1, n2});
  plan2.exec(nd.data(), -1);

  auto manual = in;
  fft::Fft1d<double> p1(n1), p2(n2);
  std::vector<std::complex<double>> line(std::max(n1, n2)),
      work(std::max(p1.workspace_size(), p2.workspace_size()));
  for (std::size_t r = 0; r < n2; ++r) {
    p1.exec(manual.data() + r * n1, 1, line.data(), -1, work.data());
    std::copy(line.begin(), line.begin() + n1, manual.begin() + r * n1);
  }
  for (std::size_t col = 0; col < n1; ++col) {
    p2.exec(manual.data() + col, std::ptrdiff_t(n1), line.data(), -1, work.data());
    for (std::size_t r = 0; r < n2; ++r) manual[col + r * n1] = line[r];
  }
  for (std::size_t i = 0; i < nd.size(); ++i)
    EXPECT_NEAR(std::abs(nd[i] - manual[i]), 0.0, 1e-10);
}

TEST(FftNd, SingleElementDims) {
  ThreadPool pool(2);
  auto in = random_signal<double>(16, 16);
  auto data = in;
  fft::FftNd<double> plan(pool, {16, 1, 1});  // degenerate trailing axes
  plan.exec(data.data(), -1);
  fft::Fft1d<double> p1(16);
  std::vector<std::complex<double>> want(16), work(p1.workspace_size());
  p1.exec(in.data(), 1, want.data(), -1, work.data());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(data[i], want[i]);
}

TEST(FftNd, SinglePrecision3dRoundTrip) {
  ThreadPool pool(4);
  const std::size_t n = 12;
  auto in = random_signal<float>(n * n * n, 77);
  auto data = in;
  fft::FftNd<float> plan(pool, {n, n, n});
  plan.exec(data.data(), -1);
  plan.exec(data.data(), +1);
  const float s = 1.0f / float(n * n * n);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] * s - in[i]), 0.0f, 1e-4f);
}

TEST(Fft1d, LargeSizeSmoke) {
  // A paper-scale fine-grid line (2^20) transforms and round-trips.
  const std::size_t n = 1 << 20;
  fft::Fft1d<double> plan(n);
  std::vector<std::complex<double>> in(n), mid(n), out(n),
      work(plan.workspace_size());
  Rng rng(78);
  for (auto& v : in) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  plan.exec(in.data(), 1, mid.data(), -1, work.data());
  plan.exec(mid.data(), 1, out.data(), +1, work.data());
  double maxerr = 0;
  for (std::size_t i = 0; i < n; i += 997)
    maxerr = std::max(maxerr, std::abs(out[i] / double(n) - in[i]));
  EXPECT_LT(maxerr, 1e-10);
}
